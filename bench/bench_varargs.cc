// E7 — §5: variable-arity queries,
// sub_select(printf(?* LargeData ?* LargeData ?*))(T).
//
// Sweeps the fanout of the variable-arity nodes and the number of calls;
// the children-sequence regex must absorb arbitrary argument counts.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

/// A synthetic C-like parse forest: a root block with `calls` printf nodes,
/// each with `fanout` arguments, a fraction of which are LargeData.
Result<Tree> MakeProgram(ObjectStore& store, size_t calls, size_t fanout,
                         uint64_t seed) {
  AQUA_RETURN_IF_ERROR(RegisterItemType(store));
  std::mt19937_64 rng(seed);
  auto item = [&](const std::string& name) -> Result<Oid> {
    return store.Create("Item", {{"name", Value::String(name)},
                                 {"val", Value::Int(0)}});
  };
  AQUA_ASSIGN_OR_RETURN(Oid block, item("block"));
  std::vector<Tree> call_trees;
  for (size_t c = 0; c < calls; ++c) {
    AQUA_ASSIGN_OR_RETURN(Oid printf_node, item("printf"));
    std::vector<Tree> args;
    for (size_t a = 0; a < fanout; ++a) {
      bool large = rng() % 5 == 0;  // ~20% of arguments are LargeData
      AQUA_ASSIGN_OR_RETURN(Oid arg,
                            item(large ? "LargeData"
                                       : "arg" + std::to_string(a)));
      args.push_back(Tree::Leaf(NodePayload::Cell(arg)));
    }
    call_trees.push_back(Tree::Node(NodePayload::Cell(printf_node), args));
  }
  return Tree::Node(NodePayload::Cell(block), call_trees);
}

void BM_Varargs_TwoLargeData(benchmark::State& state) {
  const size_t calls = static_cast<size_t>(state.range(0));
  const size_t fanout = static_cast<size_t>(state.range(1));
  ObjectStore store;
  Tree program = OrDie(MakeProgram(store, calls, fanout, 4242));
  TreePatternRef pattern =
      OrDie(ParseTreePattern("printf(?* LargeData ?* LargeData ?*)"));
  size_t hits = 0;
  for (auto _ : state) {
    hits = OrDie(TreeSubSelect(store, program, pattern)).size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["nodes"] = static_cast<double>(program.size());
}
BENCHMARK(BM_Varargs_TwoLargeData)
    ->Args({100, 4})->Args({100, 8})->Args({100, 16})->Args({100, 32})
    ->Args({1000, 8})->Args({4000, 8});

void BM_Varargs_BooleanOnly(benchmark::State& state) {
  // The boolean variant ("is there any such call?") short-circuits.
  const size_t calls = static_cast<size_t>(state.range(0));
  ObjectStore store;
  Tree program = OrDie(MakeProgram(store, calls, 8, 4242));
  TreePatternRef pattern =
      OrDie(ParseTreePattern("printf(?* LargeData ?* LargeData ?*)"));
  bool any = false;
  for (auto _ : state) {
    TreeMatcher matcher(store, program);
    any = OrDie(matcher.MatchesAnywhere(pattern));
    benchmark::DoNotOptimize(any);
  }
  state.counters["any"] = any ? 1 : 0;
}
BENCHMARK(BM_Varargs_BooleanOnly)->Arg(100)->Arg(1000)->Arg(4000);

void BM_Varargs_ThreeLargeData(benchmark::State& state) {
  // A longer pattern over the same data: three occurrences.
  ObjectStore store;
  Tree program = OrDie(MakeProgram(store, 1000, 16, 4242));
  TreePatternRef pattern = OrDie(ParseTreePattern(
      "printf(?* LargeData ?* LargeData ?* LargeData ?*)"));
  size_t hits = 0;
  for (auto _ : state) {
    hits = OrDie(TreeSubSelect(store, program, pattern)).size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_Varargs_ThreeLargeData);

}  // namespace
}  // namespace aqua
