// E2 — list pattern matching engines over songs (§3.2/§6).
//
// The same boolean query ("does this song contain the melody?") through
// three engines: the backtracking matcher, Thompson NFA simulation, and the
// lazily-determinized DFA (compiled once, amortized across the corpus).
// Sweeps song length and pattern complexity. Expected shape: backtracking
// is fine for short patterns, NFA is robustly linear, DFA wins on corpus
// scans once its transitions are hot.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

AnchoredListPattern Melody() {
  static PredicateEnv* env = [] {
    auto* e = new PredicateEnv();
    for (const char* p : {"A", "B", "C", "D", "E", "F", "G"}) {
      e->Bind(p, Predicate::AttrEquals("pitch", Value::String(p)));
    }
    return e;
  }();
  PatternParserOptions popts;
  popts.env = env;
  return OrDie(ParseListPattern("A ? ? F", popts));
}

AnchoredListPattern ComplexMelody() {
  static PredicateEnv* env = [] {
    auto* e = new PredicateEnv();
    for (const char* p : {"A", "B", "C", "D", "E", "F", "G"}) {
      e->Bind(p, Predicate::AttrEquals("pitch", Value::String(p)));
    }
    return e;
  }();
  PatternParserOptions popts;
  popts.env = env;
  // A, then a run of non-F notes, then F, then C or D.
  return OrDie(ParseListPattern(
      "A [[{pitch != \"F\"}]]* F [[C | D]]", popts));
}

std::vector<List> MakeCorpus(ObjectStore& store, size_t songs,
                             size_t notes) {
  std::vector<List> corpus;
  for (size_t i = 0; i < songs; ++i) {
    SongSpec spec;
    spec.num_notes = notes;
    spec.seed = 1000 + i;
    corpus.push_back(OrDie(MakeSong(store, spec)));
  }
  return corpus;
}

const AnchoredListPattern& PatternFor(int id) {
  static AnchoredListPattern simple = Melody();
  static AnchoredListPattern complex_pattern = ComplexMelody();
  return id == 0 ? simple : complex_pattern;
}

void BM_ListMatch_Backtracking(benchmark::State& state) {
  ObjectStore store;
  auto corpus = MakeCorpus(store, 32, static_cast<size_t>(state.range(0)));
  const AnchoredListPattern& pattern = PatternFor(state.range(1));
  ListMatchOptions opts;
  opts.max_matches = 1;  // boolean question: any match?
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const List& song : corpus) {
      ListMatcher matcher(store, song);
      if (!OrDie(matcher.FindAll(pattern, opts)).empty()) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
}

void BM_ListMatch_Nfa(benchmark::State& state) {
  ObjectStore store;
  auto corpus = MakeCorpus(store, 32, static_cast<size_t>(state.range(0)));
  Nfa nfa = OrDie(Nfa::CompileSearch(PatternFor(state.range(1)).body));
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const List& song : corpus) {
      if (nfa.ExistsMatch(store, song)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["states"] = static_cast<double>(nfa.num_states());
}

void BM_ListMatch_LazyDfa(benchmark::State& state) {
  ObjectStore store;
  auto corpus = MakeCorpus(store, 32, static_cast<size_t>(state.range(0)));
  Nfa nfa = OrDie(Nfa::CompileSearch(PatternFor(state.range(1)).body));
  LazyDfa dfa = OrDie(LazyDfa::Make(&nfa));
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const List& song : corpus) {
      if (dfa.ExistsMatch(store, song)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["dfa_states"] = static_cast<double>(dfa.num_states());
}

// {song length, pattern id (0 = A??F, 1 = closure/alt pattern)}
#define LIST_MATCH_ARGS                                               \
  ->Args({64, 0})->Args({256, 0})->Args({1024, 0})->Args({4096, 0})  \
      ->Args({64, 1})->Args({256, 1})->Args({1024, 1})->Args({4096, 1})

BENCHMARK(BM_ListMatch_Backtracking) LIST_MATCH_ARGS;
BENCHMARK(BM_ListMatch_Nfa) LIST_MATCH_ARGS;
BENCHMARK(BM_ListMatch_LazyDfa) LIST_MATCH_ARGS;

void BM_ListMatch_EnumerateAll(benchmark::State& state) {
  // Full enumeration (the operator path): all matches with extents.
  ObjectStore store;
  SongSpec spec;
  spec.num_notes = static_cast<size_t>(state.range(0));
  List song = OrDie(MakeSong(store, spec));
  const AnchoredListPattern& pattern = PatternFor(0);
  size_t matches = 0;
  for (auto _ : state) {
    ListMatcher matcher(store, song);
    matches = OrDie(matcher.FindAll(pattern)).size();
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_ListMatch_EnumerateAll)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
