// E6 — §2: equality as an operator parameter.
//
// Measures the base set algebra under identity equality (pointer-style,
// O(1) per comparison) vs shallow value equality (attribute-wise), the
// knob AQUA exposes instead of hard-coding one notion of equality.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

struct Workload {
  ObjectStore store;
  OidSet s1;
  OidSet s2;
};

std::unique_ptr<Workload> MakeWorkload(size_t n) {
  auto w = std::make_unique<Workload>();
  Check(RegisterItemType(w->store));
  // Half the values overlap between the two sets (so value equality finds
  // duplicates identity equality does not).
  for (size_t i = 0; i < n; ++i) {
    w->s1.push_back(bench::OrDie(w->store.Create(
        "Item", {{"name", Value::String("n" + std::to_string(i))},
                 {"val", Value::Int(static_cast<int64_t>(i))}})));
    w->s2.push_back(bench::OrDie(w->store.Create(
        "Item", {{"name", Value::String("n" + std::to_string(i + n / 2))},
                 {"val", Value::Int(static_cast<int64_t>(i + n / 2))}})));
  }
  return w;
}

void BM_SetUnion_Identity(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  EqFn eq = IdentityEq();
  size_t n = 0;
  for (auto _ : state) {
    n = SetUnion(w->s1, w->s2, eq).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["out"] = static_cast<double>(n);
}
BENCHMARK(BM_SetUnion_Identity)->Arg(64)->Arg(256)->Arg(1024);

void BM_SetUnion_ValueEq(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  EqFn eq = ShallowValueEq(&w->store);
  size_t n = 0;
  for (auto _ : state) {
    n = SetUnion(w->s1, w->s2, eq).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["out"] = static_cast<double>(n);
}
BENCHMARK(BM_SetUnion_ValueEq)->Arg(64)->Arg(256)->Arg(1024);

void BM_SetIntersect_Identity(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  EqFn eq = IdentityEq();
  size_t n = 0;
  for (auto _ : state) {
    n = SetIntersect(w->s1, w->s2, eq).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["out"] = static_cast<double>(n);
}
BENCHMARK(BM_SetIntersect_Identity)->Arg(64)->Arg(256)->Arg(1024);

void BM_SetIntersect_ValueEq(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  EqFn eq = ShallowValueEq(&w->store);
  size_t n = 0;
  for (auto _ : state) {
    n = SetIntersect(w->s1, w->s2, eq).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["out"] = static_cast<double>(n);
}
BENCHMARK(BM_SetIntersect_ValueEq)->Arg(64)->Arg(256)->Arg(1024);

void BM_SetSelect(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  PredicateRef pred =
      Predicate::Compare("val", CmpOp::kLt,
                         Value::Int(static_cast<int64_t>(state.range(0) / 4)));
  size_t n = 0;
  for (auto _ : state) {
    n = SetSelect(w->store, w->s1, pred).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["out"] = static_cast<double>(n);
}
BENCHMARK(BM_SetSelect)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BagOps(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  EqFn eq = IdentityEq();
  OidBag doubled = BagUnion(w->s1, w->s1);
  size_t n = 0;
  for (auto _ : state) {
    n = BagIntersect(doubled, w->s1, eq).size() +
        BagDifference(doubled, w->s1, eq).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["out"] = static_cast<double>(n);
}
BENCHMARK(BM_BagOps)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
