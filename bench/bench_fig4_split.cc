// F3/F4 — Figures 3 and 4: the family tree and
// split(Brazil(!?* USA !?*), λ(x,y,z)⟨x,y,z⟩)(T).
//
// Regenerates the exact figure output once, then measures split over random
// genealogies of growing size, including the piece construction and the
// x ∘α y ∘αi zi reassembly invariant.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/compile.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

TreePatternRef BrazilUsaPattern() {
  static PredicateEnv* env = [] {
    auto* e = new PredicateEnv();
    e->Bind("Brazil",
            Predicate::AttrEquals("citizen", Value::String("Brazil")));
    e->Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));
    return e;
  }();
  PatternParserOptions popts;
  popts.env = env;
  return OrDie(ParseTreePattern("Brazil(!?* USA !?*)", popts));
}

void PrintFigure4Once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  ObjectStore store;
  Tree family = OrDie(MakePaperFamilyTree(store));
  LabelFn name = AttrLabelFn(&store, "name");
  Datum result = OrDie(TreeSplit(
      store, family, BrazilUsaPattern(),
      [](const Tree& x, const Tree& y,
         const std::vector<Tree>& z) -> Result<Datum> {
        std::vector<Datum> zs;
        for (const Tree& t : z) zs.push_back(Datum::Of(t));
        return Datum::Tuple(
            {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
      }));
  std::cout << "Figure 4 split result: " << result.ToString(name) << "\n";
}

void BM_Fig4_SplitOnFamilyTrees(benchmark::State& state) {
  PrintFigure4Once();
  const size_t people = static_cast<size_t>(state.range(0));
  ObjectStore store;
  FamilyTreeSpec spec;
  spec.num_people = people;
  spec.brazil_fraction = 0.15;
  Tree family = OrDie(MakeFamilyTree(store, spec));
  TreePatternRef pattern = BrazilUsaPattern();
  size_t tuples = 0;
  for (auto _ : state) {
    Datum result = OrDie(TreeSplit(
        store, family, pattern,
        [](const Tree& x, const Tree& y,
           const std::vector<Tree>& z) -> Result<Datum> {
          std::vector<Datum> zs;
          for (const Tree& t : z) zs.push_back(Datum::Of(t));
          return Datum::Tuple(
              {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
        }));
    tuples = result.size();
    benchmark::DoNotOptimize(tuples);
  }
  state.counters["matches"] = static_cast<double>(tuples);
  state.counters["nodes"] = static_cast<double>(family.size());
}
BENCHMARK(BM_Fig4_SplitOnFamilyTrees)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)->
    Arg(4096);

void BM_Fig4_SplitReassembly(benchmark::State& state) {
  const size_t people = static_cast<size_t>(state.range(0));
  ObjectStore store;
  FamilyTreeSpec spec;
  spec.num_people = people;
  spec.brazil_fraction = 0.15;
  Tree family = OrDie(MakeFamilyTree(store, spec));
  TreePatternRef pattern = BrazilUsaPattern();
  TreeMatcher matcher(store, family);
  auto matches = OrDie(matcher.FindAll(pattern));
  if (matches.empty()) {
    state.SkipWithError("no matches at this size/seed");
    return;
  }
  for (auto _ : state) {
    for (const TreeMatch& m : matches) {
      SplitPieces pieces = OrDie(MakeSplitPieces(family, m, {}));
      Tree reassembled = ReassembleSplit(pieces);
      if (!reassembled.StructurallyEquals(family)) {
        state.SkipWithError("reassembly mismatch");
        return;
      }
      benchmark::DoNotOptimize(reassembled.size());
    }
  }
  state.counters["matches"] = static_cast<double>(matches.size());
}
BENCHMARK(BM_Fig4_SplitReassembly)->Arg(64)->Arg(256)->Arg(1024);

void BM_Fig4_ForestFanOutThreads(benchmark::State& state) {
  // Thread sweep over the morsel-parallel fan-out. The registered tree is a
  // sentinel root over 48 equal-size family subtrees; select drops only the
  // sentinel, yielding a balanced forest, and sub_select then runs a nested
  // closure pattern over every piece. Per-piece backtracking dominates the
  // one O(n) select pass, so the speedup at `threads` measures the physical
  // pipeline's fan-out scaling; results are byte-identical at every thread
  // count (see tests/exec/determinism_test).
  const size_t people = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  constexpr size_t kFamilies = 48;
  Database db;
  Check(RegisterPersonType(db.store()));
  std::vector<Tree> families;
  for (size_t i = 0; i < kFamilies; ++i) {
    FamilyTreeSpec spec;
    spec.num_people = people / kFamilies;
    spec.brazil_fraction = 0.35;
    spec.seed = 1000 + i;
    families.push_back(OrDie(MakeFamilyTree(db.store(), spec)));
  }
  Oid sentinel = OrDie(
      db.store().Create("Person", {{"name", Value::String("forest")},
                                   {"citizen", Value::String("none")},
                                   {"eyes", Value::String("blue")},
                                   {"education", Value::String("HS")},
                                   {"age", Value::Int(0)}}));
  Check(db.RegisterTree(
      "family", Tree::Node(NodePayload::Cell(sentinel), families)));
  PredicateEnv env;
  env.Bind("Brazil",
           Predicate::AttrEquals("citizen", Value::String("Brazil")));
  PatternParserOptions popts;
  popts.env = &env;
  auto plan = Q::TreeSubSelect(
      Q::TreeSelect(
          Q::ScanTree("family"),
          Predicate::Not(
              Predicate::AttrEquals("citizen", Value::String("none")))),
      OrDie(ParseTreePattern("Brazil(?* Brazil(?* Brazil ?*) ?*)", popts)));
  Executor exec(&db);
  exec.set_threads(threads);
  size_t results = 0;
  size_t pieces = 0;
  for (auto _ : state) {
    results = OrDie(exec.Execute(plan)).size();
    pieces = exec.stats().trees_processed;
    benchmark::DoNotOptimize(results);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["pieces"] = static_cast<double>(pieces);
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Fig4_ForestFanOutThreads)
    ->Args({4096, 1})->Args({4096, 2})->Args({4096, 4})->Args({4096, 8})
    ->Args({16384, 1})->Args({16384, 2})->Args({16384, 4})->Args({16384, 8})
    ->UseRealTime();

void BM_Fig4_CertifiedApplyThreads(benchmark::State& state) {
  // Apply-heavy thread sweep. The lint effect analysis certifies the
  // choose-expression below as read-only, so compile.cc plans the apply
  // morsel-parallel (see src/lint/effects.h); an opaque std::function on
  // the same plan would stay serial. select drops the sentinel, yielding
  // 48 equal family trees, and the certified apply rebuilds each piece
  // node-by-node (a predicate probe plus a cell swap per person), which
  // dominates the single O(n) select pass — so the speedup at `threads`
  // measures the certified apply path. Output stays byte-identical at
  // every thread count (tests/exec/apply_parallel_test).
  const size_t people = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  constexpr size_t kFamilies = 48;
  Database db;
  Check(RegisterPersonType(db.store()));
  std::vector<Tree> families;
  for (size_t i = 0; i < kFamilies; ++i) {
    FamilyTreeSpec spec;
    spec.num_people = people / kFamilies;
    spec.brazil_fraction = 0.35;
    spec.seed = 1000 + i;
    families.push_back(OrDie(MakeFamilyTree(db.store(), spec)));
  }
  Oid sentinel = OrDie(
      db.store().Create("Person", {{"name", Value::String("forest")},
                                   {"citizen", Value::String("none")},
                                   {"eyes", Value::String("blue")},
                                   {"education", Value::String("HS")},
                                   {"age", Value::Int(0)}}));
  Check(db.RegisterTree(
      "family", Tree::Node(NodePayload::Cell(sentinel), families)));
  Oid marker = OrDie(
      db.store().Create("Person", {{"name", Value::String("MARK")},
                                   {"citizen", Value::String("none")},
                                   {"eyes", Value::String("blue")},
                                   {"education", Value::String("HS")},
                                   {"age", Value::Int(-1)}}));
  // A composed chain of guarded probes: still read-only end to end (the
  // effect lattice takes the max over the chain), and heavy enough per
  // node that the certified apply dominates the serial select pass.
  FnExprRef expr =
      FnExpr::Choose(Predicate::AttrEquals("citizen", Value::String("Brazil")),
                     FnExpr::Const(marker), nullptr);
  for (int probe = 0; probe < 16; ++probe) {
    expr = FnExpr::Compose(
        FnExpr::Choose(
            Predicate::AttrEquals("eyes", Value::String("violet")),
            FnExpr::Const(marker), nullptr),
        expr);
  }
  auto plan = Q::TreeApplyExpr(
      Q::TreeSelect(
          Q::ScanTree("family"),
          Predicate::Not(
              Predicate::AttrEquals("citizen", Value::String("none")))),
      expr);
  Check(exec::ApplyParallelCertified(plan)
            ? Status::OK()
            : Status::Internal("apply failed to certify"));
  Executor exec(&db);
  exec.set_threads(threads);
  size_t results = 0;
  for (auto _ : state) {
    results = OrDie(exec.Execute(plan)).size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Fig4_CertifiedApplyThreads)
    ->Args({16384, 1})->Args({16384, 2})->Args({16384, 4})->Args({16384, 8})
    ->UseRealTime();

void BM_Fig4_MutatingApplyThreads(benchmark::State& state) {
  // Store-mutating thread sweep. The guarded set_attr below reads `citizen`
  // and `eyes` but writes only `education`, so the snapshot order-dependence
  // analysis certifies it: each morsel worker evaluates against the query's
  // pinned epoch into a thread-local delta, and the item-order fold commits
  // one new store version per execute. Writes land in place (no object
  // growth), so every iteration mutates the same store. Output and final
  // store state stay byte-identical to serial at every thread count
  // (tests/exec/snapshot_apply_test).
  const size_t people = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  constexpr size_t kFamilies = 48;
  Database db;
  Check(RegisterPersonType(db.store()));
  std::vector<Tree> families;
  for (size_t i = 0; i < kFamilies; ++i) {
    FamilyTreeSpec spec;
    spec.num_people = people / kFamilies;
    spec.brazil_fraction = 0.35;
    spec.seed = 1000 + i;
    families.push_back(OrDie(MakeFamilyTree(db.store(), spec)));
  }
  Oid sentinel = OrDie(
      db.store().Create("Person", {{"name", Value::String("forest")},
                                   {"citizen", Value::String("none")},
                                   {"eyes", Value::String("blue")},
                                   {"education", Value::String("HS")},
                                   {"age", Value::Int(0)}}));
  Check(db.RegisterTree(
      "family", Tree::Node(NodePayload::Cell(sentinel), families)));
  Oid marker = OrDie(
      db.store().Create("Person", {{"name", Value::String("MARK")},
                                   {"citizen", Value::String("none")},
                                   {"eyes", Value::String("blue")},
                                   {"education", Value::String("HS")},
                                   {"age", Value::Int(-1)}}));
  // The same 16-probe read chain as the certified read-only sweep, with a
  // guarded in-place write at the end — per-node weight is comparable, the
  // only extra cost is the buffered delta and its commit.
  FnExprRef expr = FnExpr::Choose(
      Predicate::AttrEquals("citizen", Value::String("Brazil")),
      FnExpr::SetAttr({{"education", Value::String("Emigrated")}}), nullptr);
  for (int probe = 0; probe < 16; ++probe) {
    expr = FnExpr::Compose(
        FnExpr::Choose(
            Predicate::AttrEquals("eyes", Value::String("violet")),
            FnExpr::Const(marker), nullptr),
        expr);
  }
  auto plan = Q::TreeApplyExpr(
      Q::TreeSelect(
          Q::ScanTree("family"),
          Predicate::Not(
              Predicate::AttrEquals("citizen", Value::String("none")))),
      expr);
  Check(exec::ApplySnapshotWriteCertified(plan)
            ? Status::OK()
            : Status::Internal("mutating apply failed to certify"));
  Executor exec(&db);
  exec.set_threads(threads);
  size_t results = 0;
  for (auto _ : state) {
    results = OrDie(exec.Execute(plan)).size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["results"] = static_cast<double>(results);
  state.counters["store.epoch"] = static_cast<double>(db.store().epoch());
  state.counters["store.cow_copies"] =
      static_cast<double>(db.store().cow_copies());
}
BENCHMARK(BM_Fig4_MutatingApplyThreads)
    ->Args({16384, 1})->Args({16384, 2})->Args({16384, 4})->Args({16384, 8})
    ->UseRealTime();

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
