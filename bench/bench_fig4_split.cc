// F3/F4 — Figures 3 and 4: the family tree and
// split(Brazil(!?* USA !?*), λ(x,y,z)⟨x,y,z⟩)(T).
//
// Regenerates the exact figure output once, then measures split over random
// genealogies of growing size, including the piece construction and the
// x ∘α y ∘αi zi reassembly invariant.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

TreePatternRef BrazilUsaPattern() {
  static PredicateEnv* env = [] {
    auto* e = new PredicateEnv();
    e->Bind("Brazil",
            Predicate::AttrEquals("citizen", Value::String("Brazil")));
    e->Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));
    return e;
  }();
  PatternParserOptions popts;
  popts.env = env;
  return OrDie(ParseTreePattern("Brazil(!?* USA !?*)", popts));
}

void PrintFigure4Once() {
  static bool printed = false;
  if (printed) return;
  printed = true;
  ObjectStore store;
  Tree family = OrDie(MakePaperFamilyTree(store));
  LabelFn name = AttrLabelFn(&store, "name");
  Datum result = OrDie(TreeSplit(
      store, family, BrazilUsaPattern(),
      [](const Tree& x, const Tree& y,
         const std::vector<Tree>& z) -> Result<Datum> {
        std::vector<Datum> zs;
        for (const Tree& t : z) zs.push_back(Datum::Of(t));
        return Datum::Tuple(
            {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
      }));
  std::cout << "Figure 4 split result: " << result.ToString(name) << "\n";
}

void BM_Fig4_SplitOnFamilyTrees(benchmark::State& state) {
  PrintFigure4Once();
  const size_t people = static_cast<size_t>(state.range(0));
  ObjectStore store;
  FamilyTreeSpec spec;
  spec.num_people = people;
  spec.brazil_fraction = 0.15;
  Tree family = OrDie(MakeFamilyTree(store, spec));
  TreePatternRef pattern = BrazilUsaPattern();
  size_t tuples = 0;
  for (auto _ : state) {
    Datum result = OrDie(TreeSplit(
        store, family, pattern,
        [](const Tree& x, const Tree& y,
           const std::vector<Tree>& z) -> Result<Datum> {
          std::vector<Datum> zs;
          for (const Tree& t : z) zs.push_back(Datum::Of(t));
          return Datum::Tuple(
              {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
        }));
    tuples = result.size();
    benchmark::DoNotOptimize(tuples);
  }
  state.counters["matches"] = static_cast<double>(tuples);
  state.counters["nodes"] = static_cast<double>(family.size());
}
BENCHMARK(BM_Fig4_SplitOnFamilyTrees)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)->
    Arg(4096);

void BM_Fig4_SplitReassembly(benchmark::State& state) {
  const size_t people = static_cast<size_t>(state.range(0));
  ObjectStore store;
  FamilyTreeSpec spec;
  spec.num_people = people;
  spec.brazil_fraction = 0.15;
  Tree family = OrDie(MakeFamilyTree(store, spec));
  TreePatternRef pattern = BrazilUsaPattern();
  TreeMatcher matcher(store, family);
  auto matches = OrDie(matcher.FindAll(pattern));
  if (matches.empty()) {
    state.SkipWithError("no matches at this size/seed");
    return;
  }
  for (auto _ : state) {
    for (const TreeMatch& m : matches) {
      SplitPieces pieces = OrDie(MakeSplitPieces(family, m, {}));
      Tree reassembled = ReassembleSplit(pieces);
      if (!reassembled.StructurallyEquals(family)) {
        state.SkipWithError("reassembly mismatch");
        return;
      }
      benchmark::DoNotOptimize(reassembled.size());
    }
  }
  state.counters["matches"] = static_cast<double>(matches.size());
}
BENCHMARK(BM_Fig4_SplitReassembly)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
