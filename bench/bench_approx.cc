// E8 (extension) — §7: distance-based approximate tree queries.
//
// "Give me all the subtrees of T which almost satisfy pattern P" via the
// Zhang–Shasha ordered edit distance. Measures the metric itself across
// tree sizes and the approximate sub_select with its size-bound pruning.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::Labels;
using bench::OrDie;

void BM_EditDistance(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  ObjectStore store;
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(4);
  spec.seed = 21;
  Tree a = OrDie(MakeRandomTree(store, spec));
  spec.seed = 22;
  Tree b = OrDie(MakeRandomTree(store, spec));
  EditCosts costs = AttrEditCosts(&store, "name");
  double dist = 0;
  for (auto _ : state) {
    dist = OrDie(TreeEditDistance(a, b, costs));
    benchmark::DoNotOptimize(&dist);
  }
  state.counters["distance"] = dist;
}
BENCHMARK(BM_EditDistance)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_EditDistance_ChainsWorstCase(benchmark::State& state) {
  // Chains maximize keyroot depth — the min(depth, leaves)^2 factor.
  const size_t nodes = static_cast<size_t>(state.range(0));
  ObjectStore store;
  Tree a = OrDie(MakeChain(store, {"a", "b"}, nodes));
  Tree b = OrDie(MakeChain(store, {"a", "c"}, nodes));
  EditCosts costs = AttrEditCosts(&store, "name");
  double dist = 0;
  for (auto _ : state) {
    dist = OrDie(TreeEditDistance(a, b, costs));
    benchmark::DoNotOptimize(&dist);
  }
  state.counters["distance"] = dist;
}
BENCHMARK(BM_EditDistance_ChainsWorstCase)->Arg(16)->Arg(64)->Arg(128);

void BM_ApproxSubSelect(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1));
  ObjectStore store;
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(4);
  spec.seed = 33;
  Tree tree = OrDie(MakeRandomTree(store, spec));
  AtomFn atom = MakeInterningAtomFn(&store, "Item", "name");
  Tree query = OrDie(ParseTreeLiteral("t0(t1 t2)", atom));
  EditCosts costs = AttrEditCosts(&store, "name");
  size_t results = 0;
  for (auto _ : state) {
    results =
        OrDie(TreeSubSelectApprox(store, tree, query, threshold, costs))
            .size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_ApproxSubSelect)
    ->Args({200, 0})->Args({200, 1})->Args({200, 2})->Args({200, 4})
    ->Args({800, 1})->Args({3200, 1});

void BM_NearestSubtrees(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  ObjectStore store;
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(4);
  spec.seed = 34;
  Tree tree = OrDie(MakeRandomTree(store, spec));
  AtomFn atom = MakeInterningAtomFn(&store, "Item", "name");
  Tree query = OrDie(ParseTreeLiteral("t0(t1 t2 t3)", atom));
  EditCosts costs = AttrEditCosts(&store, "name");
  double best = 0;
  for (auto _ : state) {
    auto ranked = OrDie(NearestSubtrees(store, tree, query, 5, costs));
    best = ranked.empty() ? -1 : ranked[0].distance;
    benchmark::DoNotOptimize(&best);
  }
  state.counters["best_distance"] = best;
}
BENCHMARK(BM_NearestSubtrees)->Arg(200)->Arg(800);

}  // namespace
}  // namespace aqua
