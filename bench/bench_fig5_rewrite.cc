// F5 — Figure 5 / §5: rewriting query parse trees with the algebra itself.
//
// Measures the split-based rule select(R, and(p1,p2)) → select(select(R,p1),
// p2) applied to a fixpoint over random parse trees of growing size.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

TreePatternRef SelectAndPattern() {
  static PredicateEnv* env = [] {
    auto* e = new PredicateEnv();
    e->Bind("select", Predicate::AttrEquals("op", Value::String("select")));
    e->Bind("and", Predicate::AttrEquals("op", Value::String("and")));
    return e;
  }();
  PatternParserOptions popts;
  popts.env = env;
  return OrDie(ParseTreePattern("select(!? and)", popts));
}

Result<Tree> RewriteToFixpoint(ObjectStore& store, Tree parse_tree,
                               const TreePatternRef& pattern,
                               size_t* passes) {
  *passes = 0;
  while (true) {
    TreeMatcher matcher(store, parse_tree);
    AQUA_ASSIGN_OR_RETURN(std::vector<TreeMatch> matches,
                          matcher.FindAll(pattern));
    bool rewritten = false;
    for (const TreeMatch& m : matches) {
      AQUA_ASSIGN_OR_RETURN(SplitPieces p,
                            MakeSplitPieces(parse_tree, m, {}));
      if (p.z.size() != 3) continue;
      AQUA_ASSIGN_OR_RETURN(
          Oid select_op,
          store.Create("ParseNode", {{"op", Value::String("select")}}));
      Tree piece = Tree::Node(
          NodePayload::Cell(select_op),
          {Tree::Node(NodePayload::Cell(select_op),
                      {Tree::Point("a1"), Tree::Point("a2")}),
           Tree::Point("a3")});
      Tree out = ConcatAt(p.x, "a", piece);
      for (size_t i = 0; i < p.z.size(); ++i) {
        out = ConcatAt(out, "a" + std::to_string(i + 1), p.z[i]);
      }
      parse_tree = std::move(out);
      rewritten = true;
      ++*passes;
      break;  // re-match against the rewritten tree
    }
    if (!rewritten) return parse_tree;
    if (*passes > 10000) return Status::Internal("rewrite did not converge");
  }
}

void BM_Fig5_RewriteToFixpoint(benchmark::State& state) {
  const size_t exprs = static_cast<size_t>(state.range(0));
  ParseTreeSpec spec;
  spec.num_exprs = exprs;
  spec.and_fraction = 0.7;
  TreePatternRef pattern = SelectAndPattern();
  size_t passes = 0, final_nodes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ObjectStore store;  // fresh store per iteration: rewrites create objects
    Tree parse_tree = OrDie(MakeQueryParseTree(store, spec));
    state.ResumeTiming();
    Tree out = OrDie(RewriteToFixpoint(store, parse_tree, pattern, &passes));
    final_nodes = out.size();
    benchmark::DoNotOptimize(final_nodes);
  }
  state.counters["passes"] = static_cast<double>(passes);
  state.counters["final_nodes"] = static_cast<double>(final_nodes);
}
BENCHMARK(BM_Fig5_RewriteToFixpoint)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->
    Arg(128);

void BM_Fig5_MatchOnly(benchmark::State& state) {
  // The matching half of the rewrite in isolation: how fast can the pattern
  // select(!? and) be found in a parse tree?
  const size_t exprs = static_cast<size_t>(state.range(0));
  ObjectStore store;
  ParseTreeSpec spec;
  spec.num_exprs = exprs;
  spec.and_fraction = 0.7;
  Tree parse_tree = OrDie(MakeQueryParseTree(store, spec));
  TreePatternRef pattern = SelectAndPattern();
  size_t matches = 0;
  for (auto _ : state) {
    TreeMatcher matcher(store, parse_tree);
    matches = OrDie(matcher.FindAll(pattern)).size();
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["nodes"] = static_cast<double>(parse_tree.size());
}
BENCHMARK(BM_Fig5_MatchOnly)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// --- Planner-driven match, cold vs stats-warmed ----------------------------
//
// The matching half again, but end-to-end through the optimizer: the parse
// tree is a registered collection with an index on `op`, so the rewriter
// can (and should) choose the indexed split-anchor form. The A/B pair
// measures that decision with a cold stats warehouse vs one warmed by
// prior executions of both candidates.

struct PlannedMatchWorkload {
  Database db;
  TreePatternRef pattern;
  PlanRef plan;
};

std::unique_ptr<PlannedMatchWorkload> MakePlannedMatchWorkload(size_t exprs) {
  auto w = std::make_unique<PlannedMatchWorkload>();
  ParseTreeSpec spec;
  spec.num_exprs = exprs;
  spec.and_fraction = 0.7;
  Check(w->db.RegisterTree(
      "parse", OrDie(MakeQueryParseTree(w->db.store(), spec))));
  Check(w->db.CreateIndex("parse", "op"));
  w->pattern = SelectAndPattern();
  w->plan = Q::TreeSubSelect(Q::ScanTree("parse"), w->pattern);
  return w;
}

size_t PlannedMatchOnce(PlannedMatchWorkload& w, bool* used_index) {
  Rewriter rewriter(&w.db, &obs::StatsWarehouse::Global());
  rewriter.AddDefaultRules();
  PlanRef plan = OrDie(rewriter.Optimize(w.plan));
  *used_index = plan->op == PlanOp::kIndexedSubSelect;
  Executor exec(&w.db);
  return OrDie(exec.Execute(plan)).size();
}

void BM_Fig5_PlannedMatch_Cold(benchmark::State& state) {
  auto w = MakePlannedMatchWorkload(static_cast<size_t>(state.range(0)));
  size_t matches = 0;
  bool used_index = false;
  for (auto _ : state) {
    state.PauseTiming();
    obs::StatsWarehouse::Global().Reset();
    state.ResumeTiming();
    matches = PlannedMatchOnce(*w, &used_index);
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["used_index"] = used_index ? 1 : 0;
}

void BM_Fig5_PlannedMatch_Warmed(benchmark::State& state) {
  auto w = MakePlannedMatchWorkload(static_cast<size_t>(state.range(0)));
  obs::StatsWarehouse::Global().Reset();
  {
    Rewriter cold(&w->db);
    cold.AddDefaultRules();
    PlanRef alt = OrDie(cold.Optimize(w->plan));
    Executor exec(&w->db);
    for (int i = 0; i < 3; ++i) {
      OrDie(exec.Execute(w->plan));
      OrDie(exec.Execute(alt));
    }
  }
  size_t matches = 0;
  bool used_index = false;
  for (auto _ : state) {
    matches = PlannedMatchOnce(*w, &used_index);
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["used_index"] = used_index ? 1 : 0;
}

BENCHMARK(BM_Fig5_PlannedMatch_Cold)->Arg(64)->Arg(256);
BENCHMARK(BM_Fig5_PlannedMatch_Warmed)->Arg(64)->Arg(256);

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
