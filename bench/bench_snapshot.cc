// Versioned-store micro-benchmarks: what a snapshot costs to take, and what
// the snapshot read path costs relative to direct head access.
//
// The contract the CI asserts from these numbers: resolving objects through
// a pinned `StoreView` must be within 5% of (in practice, faster than)
// going through the head's mutex-guarded accessors — queries pay nothing
// for running against an epoch instead of the live store.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

void FillStore(ObjectStore& store, size_t n) {
  Check(RegisterPersonType(store));
  for (size_t i = 0; i < n; ++i) {
    OrDie(store.Create(
        "Person",
        {{"name", Value::String("p" + std::to_string(i))},
         {"citizen", Value::String(i % 3 == 0 ? "Brazil" : "USA")},
         {"age", Value::Int(static_cast<int64_t>(i % 97))}}));
  }
}

size_t AgeIndex(const ObjectStore& store) {
  TypeId type = OrDie(store.schema().TypeIdOf("Person"));
  const TypeDef* def = OrDie(store.schema().GetType(type));
  return OrDie(def->AttrIndex("age"));
}

void BM_Snapshot_TakeCachedHead(benchmark::State& state) {
  // The per-query cost: an unchanged head hands out its cached version, so
  // this is one shared_ptr copy.
  ObjectStore store;
  FillStore(store, 4096);
  for (auto _ : state) {
    StoreView view = store.Snapshot();
    benchmark::DoNotOptimize(view.epoch());
  }
}
BENCHMARK(BM_Snapshot_TakeCachedHead);

void BM_Snapshot_TakeAfterWrite(benchmark::State& state) {
  // Worst case: every snapshot follows a head write, so the version (chunk
  // and extent pointer lists) is materialized fresh each time.
  const size_t n = static_cast<size_t>(state.range(0));
  ObjectStore store;
  FillStore(store, n);
  int64_t i = 0;
  for (auto _ : state) {
    Check(store.SetAttr(Oid(1), "age", Value::Int(i++ % 97)));
    StoreView view = store.Snapshot();
    benchmark::DoNotOptimize(view.epoch());
  }
  state.counters["objects"] = static_cast<double>(n);
}
BENCHMARK(BM_Snapshot_TakeAfterWrite)->Arg(4096)->Arg(65536);

void BM_Snapshot_ReadThroughView(benchmark::State& state) {
  // The query read path: oid resolution against a pinned version, lock-free.
  const size_t n = static_cast<size_t>(state.range(0));
  ObjectStore store;
  FillStore(store, n);
  size_t age = AgeIndex(store);
  StoreView view = store.Snapshot();
  ExtentRef extent = OrDie(view.Extent("Person"));
  for (auto _ : state) {
    int64_t sum = 0;
    for (Oid oid : *extent) {
      sum += OrDie(view.Get(oid))->attr_at(age).int_value();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Snapshot_ReadThroughView)->Arg(4096)->Arg(65536);

void BM_Snapshot_ReadThroughHead(benchmark::State& state) {
  // Baseline: the same scan through the head's mutex-guarded Get.
  const size_t n = static_cast<size_t>(state.range(0));
  ObjectStore store;
  FillStore(store, n);
  size_t age = AgeIndex(store);
  ExtentRef extent = OrDie(store.Extent("Person"));
  for (auto _ : state) {
    int64_t sum = 0;
    for (Oid oid : *extent) {
      sum += OrDie(store.Get(oid))->attr_at(age).int_value();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Snapshot_ReadThroughHead)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
