// F1 — Figure 1: concatenation points in tree patterns.
//
// Regenerates the figure's identity
//   a(b(d(f g) e) c) = [[a(α1 α2) ∘α1 b(d(f g) e)]] ∘α2 c
// and measures instance concatenation (∘α) and pattern matching of the
// composed pattern, as composition depth grows.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

/// Verifies the exact Figure 1 identity once per benchmark run.
void VerifyFigure1(ObjectStore& store) {
  AtomFn atom = MakeInterningAtomFn(&store, "Item", "name");
  Tree direct = OrDie(ParseTreeLiteral("a(b(d(f g) e) c)", atom));
  Tree composed = ConcatAt(
      ConcatAt(OrDie(ParseTreeLiteral("a(@1 @2)", atom)), "1",
               OrDie(ParseTreeLiteral("b(d(f g) e)", atom))),
      "2", OrDie(ParseTreeLiteral("c", atom)));
  if (!direct.StructurallyEquals(composed)) {
    std::cerr << "Figure 1 identity FAILED\n";
    std::exit(1);
  }
}

void BM_Fig1_InstanceConcat(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  ObjectStore store;
  Check(RegisterItemType(store));
  VerifyFigure1(store);
  AtomFn atom = MakeInterningAtomFn(&store, "Item", "name");
  // base = a(@p c); attachment = b(d(f g) e); chain `depth` concatenations.
  Tree base = OrDie(ParseTreeLiteral("a(@p c)", atom));
  Tree attachment = OrDie(ParseTreeLiteral("b(d(f g) e @p)", atom));
  for (auto _ : state) {
    Tree t = base;
    for (size_t i = 0; i < depth; ++i) t = ConcatAt(t, "p", attachment);
    t = ConcatNilAt(t, "p");
    benchmark::DoNotOptimize(t.size());
    state.counters["nodes"] = static_cast<double>(t.size());
  }
}
BENCHMARK(BM_Fig1_InstanceConcat)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_Fig1_ComposedPatternMatch(benchmark::State& state) {
  ObjectStore store;
  Check(RegisterItemType(store));
  AtomFn atom = MakeInterningAtomFn(&store, "Item", "name");
  Tree subject = OrDie(ParseTreeLiteral("a(b(d(f g) e) c)", atom));
  TreePatternRef composed =
      OrDie(ParseTreePattern("[[a(@1 @2) .@1 [[b(d(f g) e)]]]] .@2 c"));
  TreePatternRef direct = OrDie(ParseTreePattern("a(b(d(f g) e) c)"));
  size_t matches = 0;
  for (auto _ : state) {
    TreeMatcher matcher(store, subject);
    auto found = OrDie(matcher.FindAll(composed));
    auto found_direct = OrDie(matcher.FindAll(direct));
    matches = found.size();
    if (found.size() != found_direct.size()) {
      std::cerr << "composed and direct patterns disagree\n";
      std::exit(1);
    }
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_Fig1_ComposedPatternMatch);

}  // namespace
}  // namespace aqua
