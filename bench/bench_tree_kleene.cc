// E3 — §3.3 footnote 3: "The inclusion of these operations means that some
// tree queries will be exponential. The performance of many such queries
// can be improved using our optimizations."
//
// Workload: boolean closure matching of [[a(b(@x))]]*@x-style patterns over
// deep chains, and prune-heavy patterns whose boolean subtree checks repeat.
// The ablation is the matcher's memoization of (pattern, environment, node)
// boolean results — the optimization that collapses the repeated work.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

void BM_Kleene_ChainClosure(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  const bool memoize = state.range(1) != 0;
  ObjectStore store;
  Tree chain = OrDie(MakeChain(store, {"a", "b"}, depth));
  // The chain alternates a,b — in the closure's language when the depth is
  // even, rooted at the top.
  TreePatternRef closure = OrDie(ParseTreePattern("^[[a(b(@x))]]*@x"));
  TreeMatchOptions opts;
  opts.memoize = memoize;
  size_t matches = 0, steps = 0;
  for (auto _ : state) {
    TreeMatcher matcher(store, chain, opts);
    matches = OrDie(matcher.FindAll(closure)).size();
    steps = matcher.steps();
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_Kleene_ChainClosure)
    ->Args({64, 0})->Args({64, 1})
    ->Args({256, 0})->Args({256, 1})
    ->Args({1024, 0})->Args({1024, 1});

/// A chain of `depth` nodes named "a" with a final node named "z" — the
/// poisoned tail makes every closure decomposition fail at the very end.
Result<Tree> MakePoisonedChain(ObjectStore& store, size_t depth) {
  AQUA_RETURN_IF_ERROR(RegisterItemType(store));
  Tree t;
  NodeId prev = kInvalidNode;
  for (size_t i = 0; i <= depth; ++i) {
    const char* name = i == depth ? "z" : "a";
    AQUA_ASSIGN_OR_RETURN(
        Oid oid, store.Create("Item", {{"name", Value::String(name)},
                                       {"val", Value::Int(0)}}));
    NodeId node = t.AddNode(NodePayload::Cell(oid));
    if (prev == kInvalidNode) {
      AQUA_RETURN_IF_ERROR(t.SetRoot(node));
    } else {
      AQUA_RETURN_IF_ERROR(t.AddChild(prev, node));
    }
    prev = node;
  }
  return t;
}

void BM_Kleene_AmbiguousClosure(benchmark::State& state) {
  // [[a(@x) | a(a(@x))]]*@x over an all-a chain with a poisoned tail: every
  // 1-or-2-step decomposition fails only at the end, so the number of
  // explored derivations is Fibonacci in the depth. The paper's footnote 3
  // concedes this exponentiality; memoizing boolean subtree answers (the
  // ablation knob) collapses it to linear.
  const size_t depth = static_cast<size_t>(state.range(0));
  const bool memoize = state.range(1) != 0;
  ObjectStore store;
  Tree chain = OrDie(MakePoisonedChain(store, depth));
  TreePatternRef closure =
      OrDie(ParseTreePattern("^[[a(@x) | a(a(@x))]]*@x"));
  TreeMatchOptions opts;
  opts.memoize = memoize;
  bool matched = false;
  size_t steps = 0;
  for (auto _ : state) {
    TreeMatcher matcher(store, chain, opts);
    matched = OrDie(matcher.MatchesAt(closure, chain.root()));
    steps = matcher.steps();
    benchmark::DoNotOptimize(matched);
  }
  state.counters["matched"] = matched ? 1 : 0;
  state.counters["steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_Kleene_AmbiguousClosure)
    ->Args({16, 0})->Args({16, 1})
    ->Args({24, 0})->Args({24, 1})
    ->Args({32, 0})->Args({32, 1})
    ->Args({200, 1})->Args({2000, 1});

void BM_Kleene_PruneChecks(benchmark::State& state) {
  // Prune-heavy pattern over a random tree: every pruned atom triggers a
  // boolean subtree check; memoization dedupes repeats across derivations.
  const size_t nodes = static_cast<size_t>(state.range(0));
  const bool memoize = state.range(1) != 0;
  ObjectStore store;
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = {"a", "b", "c"};
  spec.seed = 77;
  Tree tree = OrDie(MakeRandomTree(store, spec));
  TreePatternRef pattern = OrDie(ParseTreePattern("a(!?* b !?*)"));
  TreeMatchOptions opts;
  opts.memoize = memoize;
  size_t matches = 0, steps = 0;
  for (auto _ : state) {
    TreeMatcher matcher(store, tree, opts);
    matches = OrDie(matcher.FindAll(pattern)).size();
    steps = matcher.steps();
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_Kleene_PruneChecks)
    ->Args({500, 0})->Args({500, 1})
    ->Args({2000, 0})->Args({2000, 1})
    ->Args({8000, 0})->Args({8000, 1});

void BM_Kleene_FanOutThreads(benchmark::State& state) {
  // The footnote-3 workload fanned out across pool workers: 48 poisoned
  // chains under a sentinel root, select drops the sentinel (a balanced
  // 48-piece forest, near-zero serial work), and sub_select burns the
  // unmemoized Fibonacci search in every piece. Per-piece work is identical
  // and embarrassingly parallel, so real-time speedup at `threads` is the
  // pipeline's fan-out scaling ceiling.
  const size_t depth = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  constexpr size_t kChains = 48;
  Database db;
  Check(RegisterItemType(db.store()));
  std::vector<Tree> chains;
  for (size_t i = 0; i < kChains; ++i) {
    chains.push_back(OrDie(MakePoisonedChain(db.store(), depth)));
  }
  Oid sentinel = OrDie(db.store().Create(
      "Item", {{"name", Value::String("root")}, {"val", Value::Int(0)}}));
  Check(db.RegisterTree("chains",
                        Tree::Node(NodePayload::Cell(sentinel), chains)));
  SplitOptions opts;
  opts.match.memoize = false;
  auto plan = Q::TreeSubSelect(
      Q::TreeSelect(
          Q::ScanTree("chains"),
          Predicate::Not(
              Predicate::AttrEquals("name", Value::String("root")))),
      OrDie(ParseTreePattern("^[[a(@x) | a(a(@x))]]*@x")), opts);
  Executor exec(&db);
  exec.set_threads(threads);
  size_t pieces = 0;
  for (auto _ : state) {
    size_t n = OrDie(exec.Execute(plan)).size();
    pieces = exec.stats().trees_processed;
    benchmark::DoNotOptimize(n);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["pieces"] = static_cast<double>(pieces);
}
BENCHMARK(BM_Kleene_FanOutThreads)
    ->Args({20, 1})->Args({20, 2})->Args({20, 4})->Args({20, 8})
    ->UseRealTime();

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
