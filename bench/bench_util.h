#ifndef AQUA_BENCH_BENCH_UTIL_H_
#define AQUA_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <utility>

#include "aqua.h"

namespace aqua::bench {

/// Unwraps a Result in benchmark setup code; aborts on error (a benchmark
/// with broken setup must not silently measure garbage).
template <typename T>
T OrDie(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "bench setup error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

inline void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "bench setup error: " << status << "\n";
    std::exit(1);
  }
}

/// Standard label alphabets of several sizes; the anchor label "t0" has
/// selectivity 1/size.
inline std::vector<std::string> Labels(size_t size) {
  std::vector<std::string> out;
  out.reserve(size);
  for (size_t i = 0; i < size; ++i) out.push_back("t" + std::to_string(i));
  return out;
}

}  // namespace aqua::bench

#endif  // AQUA_BENCH_BENCH_UTIL_H_
