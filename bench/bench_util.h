#ifndef AQUA_BENCH_BENCH_UTIL_H_
#define AQUA_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "aqua.h"

namespace aqua::bench {

/// Unwraps a Result in benchmark setup code; aborts on error (a benchmark
/// with broken setup must not silently measure garbage).
template <typename T>
T OrDie(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "bench setup error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

inline void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "bench setup error: " << status << "\n";
    std::exit(1);
  }
}

/// Standard label alphabets of several sizes; the anchor label "t0" has
/// selectivity 1/size.
inline std::vector<std::string> Labels(size_t size) {
  std::vector<std::string> out;
  out.reserve(size);
  for (size_t i = 0; i < size; ++i) out.push_back("t" + std::to_string(i));
  return out;
}

/// One benchmark measurement destined for the `--json` report.
struct JsonRecord {
  std::string name;
  uint64_t iterations = 0;
  double ns_per_iter = 0;
  /// Registry counter delta attributed to this benchmark's run group.
  obs::Snapshot counters;
};

/// Collector behind `ReportJson`; flushed by `WriteJson`.
inline std::vector<JsonRecord>& JsonRecords() {
  static std::vector<JsonRecord> records;
  return records;
}

/// Appends one result record to the JSON report. The reporter installed by
/// `BenchMain` calls this for every google-benchmark run; hand-rolled
/// drivers may call it directly.
inline void ReportJson(const std::string& name, uint64_t iterations,
                       double ns_per_iter, obs::Snapshot counters = {}) {
  JsonRecords().push_back(
      JsonRecord{name, iterations, ns_per_iter, std::move(counters)});
}

inline void WriteSnapshotFields(obs::JsonWriter& w, const obs::Snapshot& s) {
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : s.counters) w.Key(name).Uint(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : s.gauges) w.Key(name).Int(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const obs::HistogramSnapshot& h : s.histograms) {
    w.Key(h.name).BeginObject();
    w.Key("count").Uint(h.count);
    w.Key("sum").Uint(h.sum);
    w.EndObject();
  }
  w.EndObject();
}

/// Writes every record reported so far, plus the final process-wide
/// registry snapshot, as one JSON document at `path`.
inline Status WriteJson(const std::string& path) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("benchmarks").BeginArray();
  for (const JsonRecord& r : JsonRecords()) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("iterations").Uint(r.iterations);
    w.Key("ns_per_iter").Double(r.ns_per_iter);
    WriteSnapshotFields(w, r.counters);
    w.EndObject();
  }
  w.EndArray();
  WriteSnapshotFields(w, obs::Registry::Global().Snap());
  w.EndObject();
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  out << w.str() << "\n";
  return Status::OK();
}

/// Console reporter that additionally feeds every run into `ReportJson`,
/// attributing the registry counter delta since the previous run group.
class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    last_snap_ = obs::Registry::Global().Snap();
    return ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    obs::Snapshot now = obs::Registry::Global().Snap();
    obs::Snapshot delta = now.DeltaSince(last_snap_);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      double ns = run.iterations == 0
                      ? 0.0
                      : run.real_accumulated_time * 1e9 /
                            static_cast<double>(run.iterations);
      ReportJson(run.benchmark_name(),
                 static_cast<uint64_t>(run.iterations), ns, delta);
    }
    last_snap_ = std::move(now);
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::Snapshot last_snap_;
};

/// Drop-in replacement for BENCHMARK_MAIN() that understands
/// `--json <path>` (or `--json=<path>`) and `--threads <n>` (or
/// `--threads=<n>`) in addition to the standard google-benchmark flags:
/// results and registry counters are written as a JSON document on top of
/// the usual console output, and `--threads` sets the default executor
/// parallelism (equivalent to running under `AQUA_THREADS=<n>`).
inline int BenchMain(int argc, char** argv) {
  std::string json_path;
  std::string threads;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (a.substr(0, 7) == "--json=") {
      json_path = std::string(a.substr(7));
    } else if (a == "--threads" && i + 1 < argc) {
      threads = argv[++i];
    } else if (a.substr(0, 10) == "--threads=") {
      threads = std::string(a.substr(10));
    } else {
      args.push_back(argv[i]);
    }
  }
  // Before any Executor or ThreadPool is touched, so DefaultThreads() and
  // the shared pool size both honor the flag.
  if (!threads.empty()) setenv("AQUA_THREADS", threads.c_str(), 1);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  JsonForwardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    Status st = WriteJson(json_path);
    if (!st.ok()) {
      std::cerr << "error writing " << json_path << ": " << st << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace aqua::bench

/// Use instead of BENCHMARK_MAIN() to get `--json <path>` support.
#define AQUA_BENCH_MAIN()                        \
  int main(int argc, char** argv) {              \
    return ::aqua::bench::BenchMain(argc, argv); \
  }

#endif  // AQUA_BENCH_BENCH_UTIL_H_
