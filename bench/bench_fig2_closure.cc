// F2 — Figure 2: iterative self-concatenation [[a(b c α)]]*α.
//
// Regenerates the figure's language elements (k = 0..3 and beyond) and
// measures (a) element construction and (b) root-anchored closure matching
// against the k-th element.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

void BM_Fig2_ElementConstruction(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  ObjectStore store;
  Check(RegisterItemType(store));
  AtomFn atom = MakeInterningAtomFn(&store, "Item", "name");
  Tree body = OrDie(ParseTreeLiteral("a(b c @x)", atom));

  // Regenerate and print the four figure elements once.
  static bool printed = false;
  if (!printed) {
    printed = true;
    LabelFn label = AttrLabelFn(&store, "name");
    for (size_t i = 0; i < 4; ++i) {
      std::cout << "[[a(b c @x)]]*@x element " << i << ": "
                << PrintTree(SelfConcatElement(body, "x", i), label) << "\n";
    }
  }

  for (auto _ : state) {
    Tree element = SelfConcatElement(body, "x", k);
    benchmark::DoNotOptimize(element.size());
  }
  state.counters["nodes"] =
      static_cast<double>(SelfConcatElement(body, "x", k).size());
}
BENCHMARK(BM_Fig2_ElementConstruction)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->
    Arg(16)->Arg(64)->Arg(256);

void BM_Fig2_ClosureMatch(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  ObjectStore store;
  Check(RegisterItemType(store));
  AtomFn atom = MakeInterningAtomFn(&store, "Item", "name");
  Tree body = OrDie(ParseTreeLiteral("a(b c @x)", atom));
  Tree element = SelfConcatElement(body, "x", k);
  TreePatternRef closure = OrDie(ParseTreePattern("^[[a(b c @x)]]*@x"));
  size_t matches = 0;
  for (auto _ : state) {
    TreeMatcher matcher(store, element);
    matches = OrDie(matcher.FindAll(closure)).size();
    benchmark::DoNotOptimize(matches);
  }
  // Every element of the language matches exactly once at the root.
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["nodes"] = static_cast<double>(element.size());
}
BENCHMARK(BM_Fig2_ClosureMatch)->Arg(1)->Arg(2)->Arg(3)->Arg(16)->Arg(64)->
    Arg(256);

}  // namespace
}  // namespace aqua
