// E9 (extension) — storage substrate: database dump/load round-trips.
//
// Measures serialization and reconstruction throughput over databases of
// growing size (objects + collections + index rebuild on load), and
// verifies the round-trip produces an identical dump.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::Labels;
using bench::OrDie;

std::unique_ptr<Database> MakeDatabase(size_t nodes) {
  auto db = std::make_unique<Database>();
  Check(RegisterItemType(db->store()));
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(8);
  spec.seed = 9;
  Check(db->RegisterTree("t", OrDie(MakeRandomTree(db->store(), spec))));
  Check(db->RegisterList(
      "l", OrDie(MakeRandomList(db->store(), nodes / 2, Labels(8), 10))));
  Check(db->CreateIndex("t", "name"));
  Check(db->CreateIndex("l", "name"));
  return db;
}

void BM_Storage_Dump(benchmark::State& state) {
  auto db = MakeDatabase(static_cast<size_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string text = OrDie(DumpDatabase(*db));
    bytes = text.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_Storage_Dump)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Storage_Load(benchmark::State& state) {
  auto db = MakeDatabase(static_cast<size_t>(state.range(0)));
  std::string text = OrDie(DumpDatabase(*db));
  size_t objects = 0;
  for (auto _ : state) {
    Database loaded;
    Check(LoadDatabase(text, &loaded));
    objects = loaded.store().num_objects();
    benchmark::DoNotOptimize(objects);
  }
  state.counters["objects"] = static_cast<double>(objects);
  state.SetBytesProcessed(static_cast<int64_t>(text.size()) *
                          state.iterations());
}
BENCHMARK(BM_Storage_Load)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Storage_RoundTripStability(benchmark::State& state) {
  auto db = MakeDatabase(2000);
  for (auto _ : state) {
    std::string once = OrDie(DumpDatabase(*db));
    Database loaded;
    Check(LoadDatabase(once, &loaded));
    std::string twice = OrDie(DumpDatabase(loaded));
    if (once != twice) {
      state.SkipWithError("round-trip is not stable");
      return;
    }
    benchmark::DoNotOptimize(twice.size());
  }
}
BENCHMARK(BM_Storage_RoundTripStability);

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
