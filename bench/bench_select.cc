// E4 — §4 select: order-preserving, ancestry-contracting filter.
//
// Measures select over random trees across size and predicate selectivity,
// and the cascade equivalence select(p1 ∧ p2) = select(p2)(select(p1)) that
// the plan rewriter exploits.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::Labels;
using bench::OrDie;

void BM_TreeSelect(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const size_t alphabet = static_cast<size_t>(state.range(1));
  ObjectStore store;
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(alphabet);
  Tree tree = OrDie(MakeRandomTree(store, spec));
  // Keep one label out of `alphabet` — selectivity 1/alphabet.
  PredicateRef pred = Predicate::AttrEquals("name", Value::String("t0"));
  size_t kept = 0, pieces = 0;
  for (auto _ : state) {
    auto forest = OrDie(TreeSelect(store, tree, pred));
    pieces = forest.size();
    kept = 0;
    for (const Tree& t : forest) kept += t.size();
    benchmark::DoNotOptimize(kept);
  }
  state.counters["forest_pieces"] = static_cast<double>(pieces);
  state.counters["kept_nodes"] = static_cast<double>(kept);
}
BENCHMARK(BM_TreeSelect)
    ->Args({1000, 4})->Args({10000, 4})->Args({100000, 4})
    ->Args({10000, 2})->Args({10000, 16})->Args({10000, 64});

void BM_TreeSelect_ConjunctiveVsCascade(benchmark::State& state) {
  // Equivalent formulations; the cascade evaluates the cheap predicate
  // against fewer nodes in its second stage.
  const bool cascade = state.range(0) != 0;
  ObjectStore store;
  RandomTreeSpec spec;
  spec.num_nodes = 20000;
  spec.labels = Labels(8);
  Tree tree = OrDie(MakeRandomTree(store, spec));
  PredicateRef cheap = Predicate::AttrEquals("name", Value::String("t0"));
  PredicateRef rare = Predicate::Compare("val", CmpOp::kLt, Value::Int(10));
  size_t kept = 0;
  for (auto _ : state) {
    kept = 0;
    if (cascade) {
      for (const Tree& stage1 : OrDie(TreeSelect(store, tree, cheap))) {
        for (const Tree& stage2 : OrDie(TreeSelect(store, stage1, rare))) {
          kept += stage2.size();
        }
      }
    } else {
      for (const Tree& piece :
           OrDie(TreeSelect(store, tree, Predicate::And(cheap, rare)))) {
        kept += piece.size();
      }
    }
    benchmark::DoNotOptimize(kept);
  }
  state.counters["kept_nodes"] = static_cast<double>(kept);
  state.SetLabel(cascade ? "cascade" : "conjunctive");
}
BENCHMARK(BM_TreeSelect_ConjunctiveVsCascade)->Arg(0)->Arg(1);

void BM_ListSelect(benchmark::State& state) {
  const size_t items = static_cast<size_t>(state.range(0));
  ObjectStore store;
  List list = OrDie(MakeRandomList(store, items, Labels(8), 5));
  PredicateRef pred = Predicate::AttrEquals("name", Value::String("t0"));
  size_t kept = 0;
  for (auto _ : state) {
    kept = OrDie(ListSelect(store, list, pred)).size();
    benchmark::DoNotOptimize(kept);
  }
  state.counters["kept"] = static_cast<double>(kept);
}
BENCHMARK(BM_ListSelect)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TreeApply(benchmark::State& state) {
  // apply is the other bulk-generic operator; isomorphic copy + map.
  const size_t nodes = static_cast<size_t>(state.range(0));
  ObjectStore store;
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  Tree tree = OrDie(MakeRandomTree(store, spec));
  NodeFn identity = [](ObjectStore&, Oid oid) -> Result<Oid> { return oid; };
  for (auto _ : state) {
    Tree mapped = OrDie(TreeApply(store, tree, identity));
    benchmark::DoNotOptimize(mapped.size());
  }
}
BENCHMARK(BM_TreeApply)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
