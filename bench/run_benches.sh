#!/usr/bin/env bash
# Thread-sweep benchmark runner: runs the fan-out benches across thread
# counts and merges the per-bench JSON reports (including the registry
# counters/gauges attributed to each run) into one document, BENCH_PR5.json
# at the repo root by default.
#
#   bash bench/run_benches.sh
#   BUILD_DIR=build-release OUT=/tmp/sweep.json bash bench/run_benches.sh
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_PR5.json}"
MIN_TIME="${MIN_TIME:-0.05}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

"$BUILD_DIR/bench/bench_fig4_split" \
  --benchmark_filter='BM_Fig4_ForestFanOutThreads' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/fig4_fanout.json"

"$BUILD_DIR/bench/bench_fig4_split" \
  --benchmark_filter='BM_Fig4_CertifiedApplyThreads' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/apply_fanout.json"

"$BUILD_DIR/bench/bench_fig4_split" \
  --benchmark_filter='BM_Fig4_MutatingApplyThreads' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/mutating_fanout.json"

"$BUILD_DIR/bench/bench_tree_kleene" \
  --benchmark_filter='BM_Kleene_FanOutThreads' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/kleene_fanout.json"

"$BUILD_DIR/bench/bench_snapshot" \
  --benchmark_filter='BM_Snapshot_' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/snapshot_overhead.json"

"$BUILD_DIR/bench/bench_multi_query" \
  --benchmark_filter='BM_MultiQuery_' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/multi_query.json"

# Standalone copy: CI asserts the batched-vs-sequential speedup from it.
cp "$tmpdir/multi_query.json" "${MULTI_OUT:-BENCH_MULTI.json}"

python3 - "$tmpdir" "$OUT" <<'EOF'
import glob, json, os, sys

tmpdir, out = sys.argv[1], sys.argv[2]
merged = {"benchmarks": [], "sources": []}
for path in sorted(glob.glob(os.path.join(tmpdir, "*.json"))):
    doc = json.load(open(path))
    src = os.path.splitext(os.path.basename(path))[0]
    merged["sources"].append(src)
    for rec in doc["benchmarks"]:
        rec["source"] = src
        merged["benchmarks"].append(rec)
    # Final process-wide registry state of the last bench binary run.
    for key in ("counters", "gauges", "histograms"):
        if key in doc:
            merged[key] = doc[key]
assert merged["benchmarks"], "no benchmark records collected"
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out}: {len(merged['benchmarks'])} records "
      f"from {len(merged['sources'])} benches")
EOF
