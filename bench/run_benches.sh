#!/usr/bin/env bash
# Benchmark runner: thread-sweeps the fan-out benches, runs the stats-
# warehouse plan-choice A/B sweeps (cold vs warmed optimizer), and merges
# the per-bench JSON reports (including the registry counters/gauges
# attributed to each run) into:
#
#   BENCH_PR5.json    the thread-sweep subset (kept for older tooling)
#   BENCH_MULTI.json  the batched multi-query subset (CI asserts on it)
#   BENCH.json        everything above plus the plan-choice sweeps; CI's
#                     plan-choice regression gate reads this one
#
#   bash bench/run_benches.sh
#   BUILD_DIR=build-release OUT=/tmp/sweep.json bash bench/run_benches.sh
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_PR5.json}"
MERGED_OUT="${MERGED_OUT:-BENCH.json}"
MIN_TIME="${MIN_TIME:-0.05}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
mkdir -p "$tmpdir/sweep" "$tmpdir/stats"

"$BUILD_DIR/bench/bench_fig4_split" \
  --benchmark_filter='BM_Fig4_ForestFanOutThreads' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/sweep/fig4_fanout.json"

"$BUILD_DIR/bench/bench_fig4_split" \
  --benchmark_filter='BM_Fig4_CertifiedApplyThreads' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/sweep/apply_fanout.json"

"$BUILD_DIR/bench/bench_fig4_split" \
  --benchmark_filter='BM_Fig4_MutatingApplyThreads' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/sweep/mutating_fanout.json"

"$BUILD_DIR/bench/bench_tree_kleene" \
  --benchmark_filter='BM_Kleene_FanOutThreads' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/sweep/kleene_fanout.json"

"$BUILD_DIR/bench/bench_snapshot" \
  --benchmark_filter='BM_Snapshot_' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/sweep/snapshot_overhead.json"

"$BUILD_DIR/bench/bench_multi_query" \
  --benchmark_filter='BM_MultiQuery_' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/sweep/multi_query.json"

# Standalone copy: CI asserts the batched-vs-sequential speedup from it.
cp "$tmpdir/sweep/multi_query.json" "${MULTI_OUT:-BENCH_MULTI.json}"

# Plan-choice A/B: forced baselines bracket the optimizer's pick; Cold
# decides from static constants, Warmed from learned runtime statistics.
"$BUILD_DIR/bench/bench_split_rewrite" \
  --benchmark_filter='BM_PlanChoice_' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/stats/plan_choice.json"

"$BUILD_DIR/bench/bench_fig5_rewrite" \
  --benchmark_filter='BM_Fig5_PlannedMatch_' \
  --benchmark_min_time="$MIN_TIME" \
  --json "$tmpdir/stats/fig5_planned.json"

merge() {
  python3 - "$1" "$2" <<'EOF'
import glob, json, os, sys

indir, out = sys.argv[1], sys.argv[2]
merged = {"benchmarks": [], "sources": []}
for path in sorted(glob.glob(os.path.join(indir, "**", "*.json"),
                             recursive=True)):
    doc = json.load(open(path))
    src = os.path.splitext(os.path.basename(path))[0]
    merged["sources"].append(src)
    for rec in doc["benchmarks"]:
        rec["source"] = src
        merged["benchmarks"].append(rec)
    # Final process-wide registry state of the last bench binary run.
    for key in ("counters", "gauges", "histograms"):
        if key in doc:
            merged[key] = doc[key]
assert merged["benchmarks"], "no benchmark records collected"
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out}: {len(merged['benchmarks'])} records "
      f"from {len(merged['sources'])} benches")
EOF
}

merge "$tmpdir/sweep" "$OUT"
merge "$tmpdir" "$MERGED_OUT"
