// E1 — §4 "Why Split?": the index-assisted decomposition of sub_select.
//
//   sub_select(tp)(T)  vs
//   apply(sub_select(⊤tp))(split(anchor)(T))   [literal rewrite]  vs
//   fused index probe + anchored matching      [physical operator]
//
// Sweeps tree size and anchor selectivity (label-alphabet size). The
// paper's claim: the split form "drastically narrows the search space";
// expect the indexed forms to win by roughly the selectivity factor, with
// the literal rewrite paying subtree materialization on top.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::Labels;
using bench::OrDie;

struct Workload {
  ObjectStore store;
  Tree tree;
  TreePatternRef pattern;
  AttributeIndex index;
};

/// Pattern anchored at label t0 with a t1 child somewhere:
/// {name=="t0"}(?* {name=="t1"} ?*).
std::unique_ptr<Workload> MakeWorkload(size_t nodes, size_t alphabet) {
  auto w = std::make_unique<Workload>();
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(alphabet);
  spec.seed = 1234;
  w->tree = OrDie(MakeRandomTree(w->store, spec));
  w->pattern =
      OrDie(ParseTreePattern("{name == \"t0\"}(?* {name == \"t1\"} ?*)"));
  w->index = OrDie(AttributeIndex::BuildForTree(w->store, w->tree, "name"));
  return w;
}

void BM_SubSelect_Naive(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)),
                        static_cast<size_t>(state.range(1)));
  size_t results = 0;
  for (auto _ : state) {
    results = OrDie(TreeSubSelect(w->store, w->tree, w->pattern)).size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["selectivity"] = 1.0 / static_cast<double>(state.range(1));
}

void BM_SubSelect_SplitRewrite(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)),
                        static_cast<size_t>(state.range(1)));
  size_t results = 0;
  for (auto _ : state) {
    results = OrDie(TreeSubSelectSplitRewrite(w->store, w->tree, w->pattern,
                                              w->index))
                  .size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

void BM_SubSelect_Indexed(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)),
                        static_cast<size_t>(state.range(1)));
  size_t results = 0;
  for (auto _ : state) {
    results =
        OrDie(TreeSubSelectIndexed(w->store, w->tree, w->pattern, w->index))
            .size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

// Size sweep at fixed selectivity 1/8, then selectivity sweep at 8k nodes.
#define SPLIT_REWRITE_ARGS                                        \
  ->Args({1000, 8})->Args({4000, 8})->Args({16000, 8})            \
      ->Args({8000, 2})->Args({8000, 4})->Args({8000, 16})        \
      ->Args({8000, 64})

BENCHMARK(BM_SubSelect_Naive) SPLIT_REWRITE_ARGS;
BENCHMARK(BM_SubSelect_SplitRewrite) SPLIT_REWRITE_ARGS;
BENCHMARK(BM_SubSelect_Indexed) SPLIT_REWRITE_ARGS;

void BM_SubSelect_PlannerChoice(benchmark::State& state) {
  // End-to-end: the rewriter decides; measures the optimized plan through
  // the executor (optimizer time included once per iteration).
  const size_t nodes = static_cast<size_t>(state.range(0));
  Database db;
  Check(RegisterItemType(db.store()));
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(8);
  spec.seed = 1234;
  Check(db.RegisterTree("t", OrDie(MakeRandomTree(db.store(), spec))));
  Check(db.CreateIndex("t", "name"));
  auto tp =
      OrDie(ParseTreePattern("{name == \"t0\"}(?* {name == \"t1\"} ?*)"));
  size_t results = 0;
  bool rewritten = false;
  for (auto _ : state) {
    Rewriter rewriter(&db);
    rewriter.AddDefaultRules();
    PlanRef plan =
        OrDie(rewriter.Optimize(Q::TreeSubSelect(Q::ScanTree("t"), tp)));
    rewritten = plan->op == PlanOp::kIndexedSubSelect;
    Executor exec(&db);
    results = OrDie(exec.Execute(plan)).size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["used_index"] = rewritten ? 1 : 0;
}
BENCHMARK(BM_SubSelect_PlannerChoice)->Arg(1000)->Arg(8000);

// --- Stats-warehouse A/B ---------------------------------------------------
//
// The same planner decision with a cold stats warehouse (static cost-model
// constants) vs one warmed by prior executions of both candidate plans
// (learned selectivities + observed candidates-per-probe). The forced
// variants below bracket the choice; CI's plan-choice gate asserts the
// warmed planner never lands >2x slower than the best forced alternative.

struct PlanChoiceWorkload {
  Database db;
  TreePatternRef pattern;
  PlanRef naive;
  PlanRef indexed;
};

std::unique_ptr<PlanChoiceWorkload> MakePlanChoiceWorkload(size_t nodes) {
  auto w = std::make_unique<PlanChoiceWorkload>();
  Check(RegisterItemType(w->db.store()));
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(8);
  spec.seed = 1234;
  Check(w->db.RegisterTree("t", OrDie(MakeRandomTree(w->db.store(), spec))));
  Check(w->db.CreateIndex("t", "name"));
  w->pattern =
      OrDie(ParseTreePattern("{name == \"t0\"}(?* {name == \"t1\"} ?*)"));
  w->naive = Q::TreeSubSelect(Q::ScanTree("t"), w->pattern);
  w->indexed = Q::IndexedSubSelect(
      "t", "name", Predicate::AttrEquals("name", Value::String("t0")),
      w->pattern);
  return w;
}

/// Executes `plan` once through a fresh executor; the forced baselines.
void RunForcedPlan(benchmark::State& state, const PlanRef& plan,
                   PlanChoiceWorkload& w) {
  size_t results = 0;
  for (auto _ : state) {
    Executor exec(&w.db);
    results = OrDie(exec.Execute(plan)).size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

void BM_PlanChoice_Naive(benchmark::State& state) {
  auto w = MakePlanChoiceWorkload(static_cast<size_t>(state.range(0)));
  RunForcedPlan(state, w->naive, *w);
}

void BM_PlanChoice_Indexed(benchmark::State& state) {
  auto w = MakePlanChoiceWorkload(static_cast<size_t>(state.range(0)));
  RunForcedPlan(state, w->indexed, *w);
}

/// Optimize-then-execute with the stats-informed rewriter against `w`.
size_t OptimizeAndRun(PlanChoiceWorkload& w, bool* used_index) {
  Rewriter rewriter(&w.db, &obs::StatsWarehouse::Global());
  rewriter.AddDefaultRules();
  PlanRef plan = OrDie(rewriter.Optimize(w.naive));
  *used_index = plan->op == PlanOp::kIndexedSubSelect;
  Executor exec(&w.db);
  return OrDie(exec.Execute(plan)).size();
}

void BM_PlanChoice_Cold(benchmark::State& state) {
  auto w = MakePlanChoiceWorkload(static_cast<size_t>(state.range(0)));
  size_t results = 0;
  bool used_index = false;
  for (auto _ : state) {
    state.PauseTiming();
    // Every iteration decides from static constants: no learned records.
    obs::StatsWarehouse::Global().Reset();
    state.ResumeTiming();
    results = OptimizeAndRun(*w, &used_index);
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["used_index"] = used_index ? 1 : 0;
}

void BM_PlanChoice_Warmed(benchmark::State& state) {
  auto w = MakePlanChoiceWorkload(static_cast<size_t>(state.range(0)));
  // Warm the warehouse past kMinConfidence with both alternatives: the
  // naive plan and whatever the static rewriter picks (so the learned
  // fingerprints match the candidates the measured rewriter will rank).
  obs::StatsWarehouse::Global().Reset();
  {
    Rewriter cold(&w->db);
    cold.AddDefaultRules();
    PlanRef alt = OrDie(cold.Optimize(w->naive));
    Executor exec(&w->db);
    for (int i = 0; i < 3; ++i) {
      OrDie(exec.Execute(w->naive));
      OrDie(exec.Execute(alt));
      OrDie(exec.Execute(w->indexed));
    }
  }
  size_t results = 0;
  bool used_index = false;
  for (auto _ : state) {
    results = OptimizeAndRun(*w, &used_index);
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["used_index"] = used_index ? 1 : 0;
}

BENCHMARK(BM_PlanChoice_Naive)->Arg(1000)->Arg(8000);
BENCHMARK(BM_PlanChoice_Indexed)->Arg(1000)->Arg(8000);
BENCHMARK(BM_PlanChoice_Cold)->Arg(1000)->Arg(8000);
BENCHMARK(BM_PlanChoice_Warmed)->Arg(1000)->Arg(8000);

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
