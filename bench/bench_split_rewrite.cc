// E1 — §4 "Why Split?": the index-assisted decomposition of sub_select.
//
//   sub_select(tp)(T)  vs
//   apply(sub_select(⊤tp))(split(anchor)(T))   [literal rewrite]  vs
//   fused index probe + anchored matching      [physical operator]
//
// Sweeps tree size and anchor selectivity (label-alphabet size). The
// paper's claim: the split form "drastically narrows the search space";
// expect the indexed forms to win by roughly the selectivity factor, with
// the literal rewrite paying subtree materialization on top.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::Labels;
using bench::OrDie;

struct Workload {
  ObjectStore store;
  Tree tree;
  TreePatternRef pattern;
  AttributeIndex index;
};

/// Pattern anchored at label t0 with a t1 child somewhere:
/// {name=="t0"}(?* {name=="t1"} ?*).
std::unique_ptr<Workload> MakeWorkload(size_t nodes, size_t alphabet) {
  auto w = std::make_unique<Workload>();
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(alphabet);
  spec.seed = 1234;
  w->tree = OrDie(MakeRandomTree(w->store, spec));
  w->pattern =
      OrDie(ParseTreePattern("{name == \"t0\"}(?* {name == \"t1\"} ?*)"));
  w->index = OrDie(AttributeIndex::BuildForTree(w->store, w->tree, "name"));
  return w;
}

void BM_SubSelect_Naive(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)),
                        static_cast<size_t>(state.range(1)));
  size_t results = 0;
  for (auto _ : state) {
    results = OrDie(TreeSubSelect(w->store, w->tree, w->pattern)).size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["selectivity"] = 1.0 / static_cast<double>(state.range(1));
}

void BM_SubSelect_SplitRewrite(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)),
                        static_cast<size_t>(state.range(1)));
  size_t results = 0;
  for (auto _ : state) {
    results = OrDie(TreeSubSelectSplitRewrite(w->store, w->tree, w->pattern,
                                              w->index))
                  .size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

void BM_SubSelect_Indexed(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)),
                        static_cast<size_t>(state.range(1)));
  size_t results = 0;
  for (auto _ : state) {
    results =
        OrDie(TreeSubSelectIndexed(w->store, w->tree, w->pattern, w->index))
            .size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}

// Size sweep at fixed selectivity 1/8, then selectivity sweep at 8k nodes.
#define SPLIT_REWRITE_ARGS                                        \
  ->Args({1000, 8})->Args({4000, 8})->Args({16000, 8})            \
      ->Args({8000, 2})->Args({8000, 4})->Args({8000, 16})        \
      ->Args({8000, 64})

BENCHMARK(BM_SubSelect_Naive) SPLIT_REWRITE_ARGS;
BENCHMARK(BM_SubSelect_SplitRewrite) SPLIT_REWRITE_ARGS;
BENCHMARK(BM_SubSelect_Indexed) SPLIT_REWRITE_ARGS;

void BM_SubSelect_PlannerChoice(benchmark::State& state) {
  // End-to-end: the rewriter decides; measures the optimized plan through
  // the executor (optimizer time included once per iteration).
  const size_t nodes = static_cast<size_t>(state.range(0));
  Database db;
  Check(RegisterItemType(db.store()));
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(8);
  spec.seed = 1234;
  Check(db.RegisterTree("t", OrDie(MakeRandomTree(db.store(), spec))));
  Check(db.CreateIndex("t", "name"));
  auto tp =
      OrDie(ParseTreePattern("{name == \"t0\"}(?* {name == \"t1\"} ?*)"));
  size_t results = 0;
  bool rewritten = false;
  for (auto _ : state) {
    Rewriter rewriter(&db);
    rewriter.AddDefaultRules();
    PlanRef plan =
        OrDie(rewriter.Optimize(Q::TreeSubSelect(Q::ScanTree("t"), tp)));
    rewritten = plan->op == PlanOp::kIndexedSubSelect;
    Executor exec(&db);
    results = OrDie(exec.Execute(plan)).size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["used_index"] = rewritten ? 1 : 0;
}
BENCHMARK(BM_SubSelect_PlannerChoice)->Arg(1000)->Arg(8000);

}  // namespace
}  // namespace aqua
