// E5 — derived operators vs the split primitive (§4).
//
// sub_select / all_anc / all_desc have direct implementations that build
// only the pieces they return; the paper defines them via split, which
// materializes all three pieces. Both must agree (tests check that); this
// bench quantifies what the primitive's generality costs.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace aqua {
namespace {

using bench::Check;
using bench::Labels;
using bench::OrDie;

struct Workload {
  ObjectStore store;
  Tree tree;
  TreePatternRef pattern;
};

std::unique_ptr<Workload> MakeWorkload(size_t nodes) {
  auto w = std::make_unique<Workload>();
  RandomTreeSpec spec;
  spec.num_nodes = nodes;
  spec.labels = Labels(6);
  spec.seed = 99;
  w->tree = OrDie(MakeRandomTree(w->store, spec));
  w->pattern =
      OrDie(ParseTreePattern("{name == \"t0\"}(?* {name == \"t1\"} ?*)"));
  return w;
}

void BM_SubSelect_Direct(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  size_t n = 0;
  for (auto _ : state) {
    n = OrDie(TreeSubSelect(w->store, w->tree, w->pattern)).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["results"] = static_cast<double>(n);
}
BENCHMARK(BM_SubSelect_Direct)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SubSelect_ViaSplit(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  size_t n = 0;
  for (auto _ : state) {
    n = OrDie(TreeSubSelectViaSplit(w->store, w->tree, w->pattern)).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["results"] = static_cast<double>(n);
}
BENCHMARK(BM_SubSelect_ViaSplit)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_AllAnc_Direct(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  AncFn fn = [](const Tree& x, const Tree& y) -> Result<Datum> {
    return Datum::Tuple({Datum::Of(x), Datum::Of(y)});
  };
  size_t n = 0;
  for (auto _ : state) {
    n = OrDie(TreeAllAnc(w->store, w->tree, w->pattern, fn)).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["results"] = static_cast<double>(n);
}
BENCHMARK(BM_AllAnc_Direct)->Arg(1000)->Arg(4000);

void BM_AllAnc_ViaSplit(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  AncFn fn = [](const Tree& x, const Tree& y) -> Result<Datum> {
    return Datum::Tuple({Datum::Of(x), Datum::Of(y)});
  };
  size_t n = 0;
  for (auto _ : state) {
    n = OrDie(TreeAllAncViaSplit(w->store, w->tree, w->pattern, fn)).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["results"] = static_cast<double>(n);
}
BENCHMARK(BM_AllAnc_ViaSplit)->Arg(1000)->Arg(4000);

void BM_AllDesc_Direct(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  DescFn fn = [](const Tree& y, const std::vector<Tree>& z) -> Result<Datum> {
    return Datum::Tuple({Datum::Of(y), Datum::Scalar(Value::Int(
                                           static_cast<int64_t>(z.size())))});
  };
  size_t n = 0;
  for (auto _ : state) {
    n = OrDie(TreeAllDesc(w->store, w->tree, w->pattern, fn)).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["results"] = static_cast<double>(n);
}
BENCHMARK(BM_AllDesc_Direct)->Arg(1000)->Arg(4000);

void BM_AllDesc_ViaSplit(benchmark::State& state) {
  auto w = MakeWorkload(static_cast<size_t>(state.range(0)));
  DescFn fn = [](const Tree& y, const std::vector<Tree>& z) -> Result<Datum> {
    return Datum::Tuple({Datum::Of(y), Datum::Scalar(Value::Int(
                                           static_cast<int64_t>(z.size())))});
  };
  size_t n = 0;
  for (auto _ : state) {
    n = OrDie(TreeAllDescViaSplit(w->store, w->tree, w->pattern, fn)).size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["results"] = static_cast<double>(n);
}
BENCHMARK(BM_AllDesc_ViaSplit)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace aqua
