// bench_multi_query — the batched-pattern headline number: one merged
// product-automaton scan (shared predicate alphabet, columnar kernels, see
// src/pattern/multi.h) answering N pattern queries against N independent
// scans of the same collection.
//
// The tree sweep reuses the fig4 forest workload (48 equal family subtrees
// under a sentinel root); each query is a rare conjunction
// `{name == "P<k>" && citizen == <rare country>}`, so the columnar
// necessary-predicate gate rules most (family, pattern) pairs out without
// running the matcher. The list sweep probes a 100k-note song with
// two-note motif patterns. Sequential = one `Execute` per plan; batched =
// one `ExecuteBatch` over the identical plans — tests/exec/batched_match
// proves the outputs byte-identical, this file measures the price.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "query/builder.h"
#include "query/executor.h"

namespace aqua {
namespace {

using bench::Check;
using bench::OrDie;

const char* kRareCountry[] = {"France", "Japan", "India", "Kenya"};
const char* kPitches[] = {"A", "B", "C", "D", "E", "F", "G"};

// The fig4 forest: 48 equal-size random families under a sentinel root the
// select drops, yielding a balanced 48-item fan-out.
void RegisterFig4Forest(Database* db, size_t people) {
  constexpr size_t kFamilies = 48;
  Check(RegisterPersonType(db->store()));
  std::vector<Tree> families;
  for (size_t i = 0; i < kFamilies; ++i) {
    FamilyTreeSpec spec;
    spec.num_people = people / kFamilies;
    spec.brazil_fraction = 0.15;
    spec.seed = 1000 + i;
    families.push_back(OrDie(MakeFamilyTree(db->store(), spec)));
  }
  Oid sentinel = OrDie(
      db->store().Create("Person", {{"name", Value::String("forest")},
                                    {"citizen", Value::String("none")},
                                    {"eyes", Value::String("blue")},
                                    {"education", Value::String("HS")},
                                    {"age", Value::Int(0)}}));
  Check(db->RegisterTree(
      "family", Tree::Node(NodePayload::Cell(sentinel), families)));
}

// N sub_selects over one shared forest child. Pattern j looks for one rare
// (name, citizen) conjunction; the names exist in every family, the rare
// citizenship in few, so each pattern matches a handful of people forest-
// wide.
std::vector<PlanRef> TreePatternPlans(size_t n) {
  PlanRef child = Q::TreeSelect(
      Q::ScanTree("family"),
      Predicate::Not(Predicate::AttrEquals("citizen",
                                           Value::String("none"))));
  std::vector<PlanRef> plans;
  for (size_t j = 0; j < n; ++j) {
    auto pred = Predicate::And(
        Predicate::AttrEquals("name",
                              Value::String("P" + std::to_string(3 + j))),
        Predicate::AttrEquals("citizen",
                              Value::String(kRareCountry[j % 4])));
    plans.push_back(Q::TreeSubSelect(child, TreePattern::Leaf(pred)));
  }
  return plans;
}

size_t RunBatched(Executor& exec, const std::vector<PlanRef>& plans,
                  benchmark::State& state) {
  std::vector<Result<Datum>> out = exec.ExecuteBatch(plans);
  size_t total = 0;
  for (const auto& r : out) {
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return total;
    }
    total += r->size();
  }
  return total;
}

size_t RunSequential(Executor& exec, const std::vector<PlanRef>& plans,
                     benchmark::State& state) {
  size_t total = 0;
  for (const auto& p : plans) {
    Result<Datum> r = exec.Execute(p);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return total;
    }
    total += r->size();
  }
  return total;
}

constexpr size_t kForestPeople = 16384;

void BM_MultiQuery_TreeBatched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  Database db;
  RegisterFig4Forest(&db, kForestPeople);
  std::vector<PlanRef> plans = TreePatternPlans(n);
  Executor exec(&db);
  exec.set_threads(threads);
  size_t matches = 0;
  for (auto _ : state) {
    matches = RunBatched(exec, plans, state);
    benchmark::DoNotOptimize(matches);
  }
  state.counters["patterns"] = static_cast<double>(n);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_MultiQuery_TreeBatched)
    ->Args({2, 1})->Args({8, 1})->Args({16, 1})
    ->Args({2, 4})->Args({8, 4})->Args({16, 4})
    ->UseRealTime();

void BM_MultiQuery_TreeSequential(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  Database db;
  RegisterFig4Forest(&db, kForestPeople);
  std::vector<PlanRef> plans = TreePatternPlans(n);
  Executor exec(&db);
  exec.set_threads(threads);
  size_t matches = 0;
  for (auto _ : state) {
    matches = RunSequential(exec, plans, state);
    benchmark::DoNotOptimize(matches);
  }
  state.counters["patterns"] = static_cast<double>(n);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_MultiQuery_TreeSequential)
    ->Args({2, 1})->Args({8, 1})->Args({16, 1})
    ->Args({2, 4})->Args({8, 4})->Args({16, 4})
    ->UseRealTime();

// N two-note motif queries over one long song. Each motif is a rare
// (pitch, duration) pair sequence, so the merged existence scan answers
// most patterns negatively from one columnar pass instead of N independent
// per-note store walks.
std::vector<PlanRef> SongPatternPlans(size_t n) {
  PlanRef child = Q::ScanList("song");
  std::vector<PlanRef> plans;
  for (size_t j = 0; j < n; ++j) {
    auto first = Predicate::And(
        Predicate::AttrEquals("pitch", Value::String(kPitches[j % 7])),
        Predicate::AttrEquals("duration", Value::Int(7)));
    auto second = Predicate::And(
        Predicate::AttrEquals("pitch",
                              Value::String(kPitches[(j + 3) % 7])),
        Predicate::AttrEquals("duration", Value::Int(8)));
    AnchoredListPattern lp;
    lp.body = ListPattern::Concat(
        {ListPattern::Pred(first), ListPattern::Pred(second)});
    plans.push_back(Q::ListSubSelect(child, lp));
  }
  return plans;
}

constexpr size_t kSongNotes = 100000;

void BM_MultiQuery_ListBatched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  Database db;
  SongSpec spec;
  spec.num_notes = kSongNotes;
  Check(db.RegisterList("song", OrDie(MakeSong(db.store(), spec))));
  std::vector<PlanRef> plans = SongPatternPlans(n);
  Executor exec(&db);
  exec.set_threads(threads);
  size_t matches = 0;
  for (auto _ : state) {
    matches = RunBatched(exec, plans, state);
    benchmark::DoNotOptimize(matches);
  }
  state.counters["patterns"] = static_cast<double>(n);
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_MultiQuery_ListBatched)
    ->Args({2, 1})->Args({8, 1})->Args({16, 1})
    ->UseRealTime();

void BM_MultiQuery_ListSequential(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  Database db;
  SongSpec spec;
  spec.num_notes = kSongNotes;
  Check(db.RegisterList("song", OrDie(MakeSong(db.store(), spec))));
  std::vector<PlanRef> plans = SongPatternPlans(n);
  Executor exec(&db);
  exec.set_threads(threads);
  size_t matches = 0;
  for (auto _ : state) {
    matches = RunSequential(exec, plans, state);
    benchmark::DoNotOptimize(matches);
  }
  state.counters["patterns"] = static_cast<double>(n);
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_MultiQuery_ListSequential)
    ->Args({2, 1})->Args({8, 1})->Args({16, 1})
    ->UseRealTime();

}  // namespace
}  // namespace aqua

AQUA_BENCH_MAIN()
