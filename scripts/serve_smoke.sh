#!/usr/bin/env bash
# Exercises the shell's embedded scrape endpoint (`\serve`) under
# concurrent query traffic, then validates a scraped /metrics body with
# `aqua_metricsd --check`. Used by the TSan CI job to shake out races
# between the accept thread and query threads.
#
#   bash scripts/serve_smoke.sh
#   SHELL_BIN=build-tsan/tools/aqua_shell PORT=9491 bash scripts/serve_smoke.sh
set -euo pipefail

SHELL_BIN="${SHELL_BIN:-build/tools/aqua_shell}"
CHECK_BIN="${CHECK_BIN:-build/tools/aqua_metricsd}"
PORT="${PORT:-9477}"
ROUNDS="${ROUNDS:-50}"

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# The feed subshell keeps the shell (and its server) alive with a trailing
# sleep so the scraper below always finds a live endpoint.
{
  echo "\\threads 4"
  echo "tree t r(b(d e) x(b(d f)))"
  echo "list l [a x a y]"
  echo "\\serve $PORT"
  for _ in $(seq "$ROUNDS"); do
    echo "subselect t b(d ?)"
    echo "subselect l a ?"
  done
  sleep 3
  echo "quit"
} | "$SHELL_BIN" >"$out/shell.log" 2>&1 &
shell_pid=$!

url="http://127.0.0.1:$PORT"
up=0
for _ in $(seq 50); do
  if curl -sf "$url/healthz" -o /dev/null 2>/dev/null; then
    up=1
    break
  fi
  sleep 0.2
done
if [ "$up" != 1 ]; then
  echo "serve smoke FAILED: endpoint never came up" >&2
  cat "$out/shell.log" >&2
  exit 1
fi

# Hammer the endpoint while queries are still flowing.
for _ in $(seq 20); do
  curl -sf "$url/metrics" -o /dev/null
  curl -sf "$url/flight" -o /dev/null
done

# Canonical scrape for the conformance check (server is still up inside
# the feed's trailing sleep).
curl -sf "$url/metrics" -o "$out/metrics.txt"
curl -sf "$url/digests" -o "$out/digests.json"

wait "$shell_pid"

"$CHECK_BIN" --check "$out/metrics.txt"
grep -Eq 'aqua_exec_executes_total [1-9]' "$out/metrics.txt"
grep -q 'aqua_digest_calls_total{digest=' "$out/metrics.txt"
grep -q '"digests"' "$out/digests.json"
echo "serve smoke OK: $((ROUNDS * 2)) queries served alongside scrapes"
