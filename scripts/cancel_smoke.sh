#!/usr/bin/env bash
# Cancellation storm under TSan: runs the CancellationStorm test — several
# concurrent runaway (unmemoized Kleene closure) executions hammered by a
# killer thread issuing `Kill` and by deadline expiries — with an 8-thread
# fan-out, so the cancel/checkpoint/accounting paths are exercised across
# pool workers. Clean output under `-fsanitize=thread` is the acceptance
# bar for the lifecycle layer's thread-safety.
#
#   bash scripts/cancel_smoke.sh
#   BUILD_DIR=build-tsan bash scripts/cancel_smoke.sh
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
TEST_BIN="$BUILD_DIR/tests/exec_cancel_test"

if [ ! -x "$TEST_BIN" ]; then
  echo "cancel smoke FAILED: $TEST_BIN not built" >&2
  exit 1
fi

# The storm plus the per-thread-count kill-latency tests; 8 pool helpers so
# morsel workers, the killer, and the watchdog sweep genuinely interleave.
AQUA_THREADS=8 "$TEST_BIN" \
  --gtest_filter='CancelTest.CancellationStorm:CancelTest.KillReturns*'

echo "cancel smoke OK"
