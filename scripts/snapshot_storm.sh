#!/usr/bin/env bash
# Snapshot reader/writer storm under TSan: hammers the versioned store from
# both ends at once — writer threads creating objects, writing attributes in
# place, and folding batch commits while reader threads continuously open
# snapshots and check each one is internally frozen — plus the query-level
# storm where certified mutating applies commit against the head while
# read-only queries keep answering from their pinned epochs. Clean output
# under `-fsanitize=thread` is the acceptance bar for the MVCC layer.
#
#   bash scripts/snapshot_storm.sh
#   BUILD_DIR=build-tsan bash scripts/snapshot_storm.sh
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
STORE_BIN="$BUILD_DIR/tests/object_store_version_test"
EXEC_BIN="$BUILD_DIR/tests/exec_snapshot_apply_test"

for bin in "$STORE_BIN" "$EXEC_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "snapshot storm FAILED: $bin not built" >&2
    exit 1
  fi
done

# gtest exits 0 on a filter that matches nothing, which would let a renamed
# test silently hollow out the storm — fail unless the filter selected a test.
run_storm() {
  local out
  out="$("$@" 2>&1)" || { printf '%s\n' "$out"; exit 1; }
  printf '%s\n' "$out"
  if ! grep -q '1 test from' <<<"$out"; then
    echo "snapshot storm FAILED: filter matched no test in $1" >&2
    exit 1
  fi
}

# Store-level storm: raw Snapshot/Create/SetAttr/CommitBatch interleaving.
run_storm "$STORE_BIN" \
  --gtest_filter='StoreVersionTest.ConcurrentReadersAndWritersStorm'

# Query-level storm: morsel-parallel mutating applies vs concurrent readers,
# with an 8-thread pool so commits and snapshot reads genuinely overlap.
AQUA_THREADS=8 run_storm "$EXEC_BIN" \
  --gtest_filter='SnapshotApplyTest.ConcurrentQueryStorm'

echo "snapshot storm OK"
