// aqua_metricsd — standalone OpenMetrics scrape endpoint over a demo AQUA
// workload.
//
//   aqua_metricsd [--port N] [--queries N]   serve /metrics until SIGINT
//   aqua_metricsd --dump [--queries N]       print the exposition and exit
//   aqua_metricsd --check <file|->           validate an exposition, exit 0/1
//
// Serve mode registers synthetic collections (a random genealogy and a
// random song), runs a demo query mix through the executor so the registry,
// digest table, stats warehouse, and flight recorder are populated, then
// serves
//
//   http://127.0.0.1:<port>/metrics   (plus /digests /stats /flight /healthz)
//
// When AQUA_STATS_FILE is set, the stats warehouse is loaded from it at
// startup (warm cost model from the first query) and saved back on clean
// shutdown.
//
// `--check` is the OpenMetrics conformance checker CI runs against the
// scraped output: HELP/TYPE before samples, `_total` counter suffixes,
// monotone histogram buckets ending at `+Inf` == `_count`, final `# EOF`.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "aqua.h"
#include "obs/tasks.h"
#include "query/builder.h"

namespace aqua {
namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

/// Registers the demo collections and runs `queries` executions of a small
/// query mix (tree subselect, tree split, list subselect) so every
/// observability surface has data before the first scrape.
Status RunDemoWorkload(Database& db, size_t queries) {
  AQUA_RETURN_IF_ERROR(RegisterPersonType(db.store()));
  FamilyTreeSpec fspec;
  fspec.num_people = 2000;
  fspec.brazil_fraction = 0.15;
  AQUA_ASSIGN_OR_RETURN(Tree family, MakeFamilyTree(db.store(), fspec));
  AQUA_RETURN_IF_ERROR(db.RegisterTree("family", std::move(family)));

  AQUA_RETURN_IF_ERROR(RegisterNoteType(db.store()));
  SongSpec sspec;
  sspec.num_notes = 4000;
  AQUA_ASSIGN_OR_RETURN(List song, MakeSong(db.store(), sspec));
  AQUA_RETURN_IF_ERROR(db.RegisterList("song", std::move(song)));

  PredicateEnv env;
  env.Bind("Brazil",
           Predicate::AttrEquals("citizen", Value::String("Brazil")));
  env.Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));
  env.Bind("A", Predicate::AttrEquals("pitch", Value::String("A")));
  env.Bind("F", Predicate::AttrEquals("pitch", Value::String("F")));
  PatternParserOptions popts;
  popts.env = &env;
  AQUA_ASSIGN_OR_RETURN(TreePatternRef brazil_usa,
                        ParseTreePattern("Brazil(!?* USA !?*)", popts));
  AQUA_ASSIGN_OR_RETURN(AnchoredListPattern melody,
                        ParseListPattern("A ? ? F", popts));

  auto tuple3 = [](const Tree& x, const Tree& y,
                   const std::vector<Tree>& z) -> Result<Datum> {
    std::vector<Datum> zs;
    for (const Tree& t : z) zs.push_back(Datum::Of(t));
    return Datum::Tuple(
        {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
  };
  PlanRef plans[] = {
      Q::TreeSubSelect(Q::ScanTree("family"), brazil_usa),
      Q::TreeSplit(Q::ScanTree("family"), brazil_usa, tuple3),
      Q::ListSubSelect(Q::ScanList("song"), melody),
  };

  Executor exec(&db);
  for (size_t i = 0; i < queries; ++i) {
    AQUA_RETURN_IF_ERROR(
        exec.Execute(plans[i % (sizeof(plans) / sizeof(plans[0]))]).status());
  }
  return Status::OK();
}

int CheckFile(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "aqua_metricsd: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  Status st = obs::CheckOpenMetrics(text);
  if (!st.ok()) {
    std::cerr << "aqua_metricsd: " << st << "\n";
    return 1;
  }
  std::cout << "openmetrics ok (" << text.size() << " bytes)\n";
  return 0;
}

int Main(int argc, char** argv) {
  uint16_t port = 9464;
  size_t queries = 32;
  bool dump = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check" && i + 1 < argc) {
      return CheckFile(argv[++i]);
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--queries" && i + 1 < argc) {
      queries = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--dump") {
      dump = true;
    } else {
      std::cerr << "usage: aqua_metricsd [--port N] [--queries N] [--dump] | "
                   "--check <file|->\n";
      return 2;
    }
  }

  // Warm the stats warehouse across runs: load is best-effort (a missing
  // file just means a cold start), save happens on clean shutdown below.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const bool stats_file_set = std::getenv("AQUA_STATS_FILE") != nullptr;
  if (stats_file_set) {
    Status loaded = obs::LoadStats();
    if (loaded.ok()) {
      std::cout << "aqua_metricsd: loaded "
                << obs::StatsWarehouse::Global().size()
                << " stats records\n";
    } else if (!loaded.IsNotFound()) {
      std::cerr << "aqua_metricsd: stats load: " << loaded << "\n";
    }
  }

  Database db;
  Status st = RunDemoWorkload(db, queries);
  if (!st.ok()) {
    std::cerr << "aqua_metricsd: demo workload failed: " << st << "\n";
    return 1;
  }

  if (dump) {
    obs::OpenMetricsOptions opts;
    opts.digests = &obs::DigestTable::Global();
    opts.stats = &obs::StatsWarehouse::Global();
    std::cout << obs::ToOpenMetrics(obs::Registry::Global().Snap(), opts);
    return 0;
  }

  obs::MetricsHttpServer server;
  st = server.Start(port);
  if (!st.ok()) {
    std::cerr << "aqua_metricsd: " << st << "\n";
    return 1;
  }
  std::cout << "aqua_metricsd serving http://127.0.0.1:" << server.port()
            << "/metrics (" << queries << " demo queries, "
            << obs::DigestTable::Global().size() << " digests)\n"
            << std::flush;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // Watchdog: sweep the live task table so deadlines and memory limits hold
  // even when a query's own workers are wedged between checkpoints.
  std::thread watchdog([] {
    while (!g_stop.load()) {
      obs::TaskRegistry::Global().EnforceLimits();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  watchdog.join();
  server.Stop();
  if (stats_file_set) {
    Status saved = obs::SaveStats();
    if (!saved.ok()) {
      std::cerr << "aqua_metricsd: stats save: " << saved << "\n";
    }
  }
  std::cout << "aqua_metricsd stopped\n";
  return 0;
}

}  // namespace
}  // namespace aqua

int main(int argc, char** argv) { return aqua::Main(argc, argv); }
