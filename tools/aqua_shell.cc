// aqua_shell — an interactive REPL over the AQUA algebra.
//
//   ./build/tools/aqua_shell
//   aqua> tree family Ted(Ann Gen(Joe(Bob) John(Mary)) Ray)
//   aqua> subselect family Gen(?*)
//   aqua> split family Gen(!?* John !?*)
//
// Atoms in literals are interned as `Item` objects keyed by `name`; richer
// schemas can be declared with `type` / `new` and queried with `{...}`
// predicates. `help` lists everything.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <string>
#include <vector>

#include "aqua.h"
#include "common/str_util.h"
#include "obs/query_context.h"
#include "obs/tasks.h"
#include "query/builder.h"

namespace aqua {
namespace {

/// Fixed-width table renderer shared by `\hot` and `\stats`: collect header
/// and pre-formatted cells, then pad each column to its widest entry.
/// Numeric-looking columns end up effectively aligned because every cell is
/// formatted with the same precision; the last column is left ragged (it
/// holds plan text of unbounded width).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
  }

  std::string ToString() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    std::string out;
    auto append_row = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < cells.size(); ++c) {
        if (c + 1 == cells.size()) {
          out += cells[c];  // ragged last column
        } else {
          out.append(widths[c] - cells[c].size(), ' ');
          out += cells[c];
          out += "  ";
        }
      }
      out += '\n';
    };
    append_row(headers_);
    for (const auto& row : rows_) append_row(row);
    return out;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

class Shell {
 public:
  Shell() {
    Status st = RegisterItemType(db().store());
    if (!st.ok()) std::cerr << "init: " << st << "\n";
    atom_ = MakeInterningAtomFn(&db().store(), "Item", "name");
    label_attr_ = "name";
  }

  ~Shell() { JoinBackground(); }

  int Run(std::istream& in, bool interactive) {
    std::string line;
    if (interactive) std::cout << "aqua> " << std::flush;
    while (std::getline(in, line)) {
      std::string_view trimmed = StripWhitespace(line);
      if (!trimmed.empty() && trimmed[0] != '#') {
        if (trimmed == "quit" || trimmed == "exit") break;
        Status st = Dispatch(std::string(trimmed));
        if (!st.ok()) std::cout << "error: " << st << "\n";
      }
      if (interactive) std::cout << "aqua> " << std::flush;
    }
    JoinBackground();
    if (interactive) std::cout << "\n";
    return 0;
  }

 private:
  LabelFn Label() { return AttrLabelFn(&db().store(), label_attr_); }

  PatternParserOptions PatternOpts() {
    PatternParserOptions opts;
    opts.env = &env_;
    opts.default_attr = label_attr_;
    return opts;
  }

  static std::pair<std::string, std::string> SplitFirst(
      const std::string& s) {
    size_t sp = s.find(' ');
    if (sp == std::string::npos) return {s, ""};
    return {s.substr(0, sp),
            std::string(StripWhitespace(s.substr(sp + 1)))};
  }

  Status Dispatch(const std::string& line) {
    auto [cmd, rest] = SplitFirst(line);
    if (cmd == "help") return Help();
    if (cmd == "tree") return CmdTree(rest);
    if (cmd == "list") return CmdList(rest);
    if (cmd == "bind") return CmdBind(rest);
    if (cmd == "index") return CmdIndex(rest);
    if (cmd == "show") return CmdShow(rest);
    if (cmd == "collections") return CmdCollections();
    if (cmd == "stats") return CmdStats(rest);
    if (cmd == "label") return CmdLabel(rest);
    if (cmd == "select") return CmdSelect(rest);
    if (cmd == "subselect") return CmdSubSelect(rest);
    if (cmd == "split") return CmdSplit(rest);
    if (cmd == "allanc") return CmdAllAnc(rest);
    if (cmd == "alldesc") return CmdAllDesc(rest);
    if (cmd == "explain") return CmdExplain(rest);
    if (cmd == "approx") return CmdApprox(rest);
    if (cmd == "nearest") return CmdNearest(rest);
    if (cmd == "dump") return DumpDatabaseToFile(db(), rest);
    if (cmd == "load") return CmdLoad(rest);
    if (cmd == "\\metrics") return CmdObsMetrics(rest);
    if (cmd == "\\stats") return CmdRuntimeStats(rest);
    if (cmd == "\\trace") return CmdTrace(rest);
    if (cmd == "\\threads") return CmdThreads(rest);
    if (cmd == "\\lint") return CmdLint(rest);
    if (cmd == "\\flight") return CmdFlight(rest);
    if (cmd == "\\digests") return CmdDigests(rest);
    if (cmd == "\\hot") return CmdHot(rest);
    if (cmd == "\\serve") return CmdServe(rest);
    if (cmd == "\\slowlog") return CmdSlowLog(rest);
    if (cmd == "\\profile") return CmdProfile(rest);
    if (cmd == "\\tasks") return CmdTasks(rest);
    if (cmd == "\\snapshot") return CmdSnapshot(rest);
    if (cmd == "\\kill") return CmdKill(rest);
    if (cmd == "\\timeout") return CmdTimeout(rest);
    if (cmd == "\\memoize") return CmdMemoize(rest);
    return Status::InvalidArgument("unknown command '" + cmd +
                                   "' (try `help`)");
  }

  Status Help() {
    std::cout <<
        "commands:\n"
        "  tree <name> <literal>       register a tree, e.g. a(b c(@p))\n"
        "  list <name> <literal>       register a list, e.g. [a b @x c]\n"
        "  bind <name> <predicate>     name a predicate, e.g. bind Old "
        "{age > 60}\n"
        "  index <coll> <attr>         build an attribute index\n"
        "  label <attr>                display/atom attribute (default "
        "name)\n"
        "  show <coll>                 print a collection\n"
        "  collections                 list registered collections\n"
        "  stats <coll>                structural statistics\n"
        "  select <coll> <pred>        order-stable select\n"
        "  subselect <coll> <pattern>  pattern retrieval (list or tree)\n"
        "  split <coll> <pattern>      the primitive: <x, y, z> pieces\n"
        "  allanc <coll> <pattern>     match + ancestors context\n"
        "  alldesc <coll> <pattern>    match + descendants\n"
        "  explain <coll> <pattern>    plan before/after the optimizer\n"
        "  approx <coll> <literal> <k> subtrees within edit distance k\n"
        "  nearest <coll> <literal> <n> top-n closest subtrees\n"
        "  dump <file> / load <file>   serialize / restore the database\n"
        "  \\metrics [json|reset]       process-wide metrics registry\n"
        "  \\stats [fp|json|reset]      runtime statistics warehouse: "
        "per-op observed rows + learned selectivities\n"
        "  \\stats save|load [path]     persist/restore the warehouse "
        "(default path AQUA_STATS_FILE)\n"
        "  \\trace on|off               per-query span trees (subselect/"
        "split)\n"
        "  \\threads [n]                show/set executor fan-out "
        "parallelism (0 = default)\n"
        "  \\lint <coll> <pattern>      static diagnostics with source "
        "carets, inferred facts, effects\n"
        "  \\lint on|off                toggle the automatic warning banner "
        "(default on)\n"
        "  \\lint level [off|warn|error] show/set enforcement (error "
        "refuses flagged plans; AQUA_LINT env)\n"
        "  \\flight [json|clear]        flight recorder: recent executes + "
        "morsels\n"
        "  \\digests [json|reset]       per-plan-shape digest table "
        "(calls, p50/p95/p99)\n"
        "  \\hot [n]                    top-n plan shapes by total time "
        "(default 10)\n"
        "  \\serve <port>|off           OpenMetrics scrape endpoint on "
        "127.0.0.1\n"
        "  \\slowlog <ms> [path]        slow-query log threshold (0 "
        "disables)\n"
        "  \\profile <n> <query>        run a subselect/split n times, "
        "report quantiles\n"
        "  \\tasks [json]               live task table: in-flight queries\n"
        "  \\snapshot                   versioned store: epoch, live "
        "versions, pins, retained bytes\n"
        "  \\kill <id>                  cancel a running query by task id\n"
        "  \\timeout [ms]               per-query deadline (0 = env default "
        "AQUA_QUERY_TIMEOUT_MS)\n"
        "  \\memoize on|off             tree-match memoization (off shows "
        "unmemoized closure cost)\n"
        "  subselect/split ... &       run the query in the background "
        "(watch with \\tasks)\n"
        "  quit\n";
    return Status::OK();
  }

  Status CmdTree(const std::string& rest) {
    auto [name, literal] = SplitFirst(rest);
    if (name.empty() || literal.empty()) {
      return Status::InvalidArgument("usage: tree <name> <literal>");
    }
    AQUA_ASSIGN_OR_RETURN(Tree tree, ParseTreeLiteral(literal, atom_));
    AQUA_RETURN_IF_ERROR(db().RegisterTree(name, std::move(tree)));
    std::cout << "tree '" << name << "' registered\n";
    return Status::OK();
  }

  Status CmdList(const std::string& rest) {
    auto [name, literal] = SplitFirst(rest);
    if (name.empty() || literal.empty()) {
      return Status::InvalidArgument("usage: list <name> <literal>");
    }
    AQUA_ASSIGN_OR_RETURN(List list, ParseListLiteral(literal, atom_));
    AQUA_RETURN_IF_ERROR(db().RegisterList(name, std::move(list)));
    std::cout << "list '" << name << "' registered\n";
    return Status::OK();
  }

  Status CmdBind(const std::string& rest) {
    auto [name, text] = SplitFirst(rest);
    if (name.empty() || text.empty()) {
      return Status::InvalidArgument("usage: bind <name> <predicate>");
    }
    AQUA_ASSIGN_OR_RETURN(PredicateRef pred, ParsePredicate(text));
    env_.Bind(name, std::move(pred));
    std::cout << "bound " << name << "\n";
    return Status::OK();
  }

  Status CmdIndex(const std::string& rest) {
    auto [coll, attr] = SplitFirst(rest);
    if (coll.empty() || attr.empty()) {
      return Status::InvalidArgument("usage: index <collection> <attr>");
    }
    AQUA_RETURN_IF_ERROR(db().CreateIndex(coll, attr));
    std::cout << "index on " << coll << "." << attr << " built\n";
    return Status::OK();
  }

  Status CmdShow(const std::string& name) {
    if (db().HasTree(name)) {
      AQUA_ASSIGN_OR_RETURN(const Tree* tree, db().GetTree(name));
      std::cout << PrintTree(*tree, Label()) << "\n";
      return Status::OK();
    }
    AQUA_ASSIGN_OR_RETURN(const List* list, db().GetList(name));
    std::cout << PrintList(*list, Label()) << "\n";
    return Status::OK();
  }

  Status CmdCollections() {
    for (const std::string& name : db().TreeNames()) {
      AQUA_ASSIGN_OR_RETURN(const Tree* tree, db().GetTree(name));
      std::cout << "tree  " << name << " (" << tree->size() << " nodes)\n";
    }
    for (const std::string& name : db().ListNames()) {
      AQUA_ASSIGN_OR_RETURN(const List* list, db().GetList(name));
      std::cout << "list  " << name << " (" << list->size()
                << " elements)\n";
    }
    return Status::OK();
  }

  Status CmdStats(const std::string& name) {
    if (db().HasList(name)) {
      AQUA_ASSIGN_OR_RETURN(const List* list, db().GetList(name));
      std::cout << "elements: " << list->size() << "\n";
      return Status::OK();
    }
    AQUA_ASSIGN_OR_RETURN(const Tree* tree, db().GetTree(name));
    TreeStats stats = ComputeTreeStats(*tree);
    std::cout << "nodes: " << stats.num_nodes
              << "  leaves: " << stats.num_leaves
              << "  points: " << stats.num_points
              << "  height: " << stats.height
              << "  max arity: " << stats.max_arity
              << (stats.fixed_arity ? "  (fixed-arity)" : "") << "\n";
    return Status::OK();
  }

  Status CmdLabel(const std::string& attr) {
    if (attr.empty()) return Status::InvalidArgument("usage: label <attr>");
    label_attr_ = attr;
    std::cout << "display attribute: " << attr << "\n";
    return Status::OK();
  }

  Status CmdSelect(const std::string& rest) {
    auto [coll, text] = SplitFirst(rest);
    PredicateRef pred;
    if (env_.Has(text)) {
      AQUA_ASSIGN_OR_RETURN(pred, env_.Lookup(text));
    } else {
      AQUA_ASSIGN_OR_RETURN(pred, ParsePredicate(text));
    }
    if (db().HasList(coll)) {
      AQUA_ASSIGN_OR_RETURN(const List* list, db().GetList(coll));
      LintBanner(Q::ListSelect(Q::ScanList(coll), pred),
                 env_.Has(text) ? "" : text);
      AQUA_ASSIGN_OR_RETURN(List out, ListSelect(db().store(), *list, pred));
      std::cout << PrintList(out, Label()) << "\n";
      return Status::OK();
    }
    AQUA_ASSIGN_OR_RETURN(const Tree* tree, db().GetTree(coll));
    LintBanner(Q::TreeSelect(Q::ScanTree(coll), pred),
               env_.Has(text) ? "" : text);
    AQUA_ASSIGN_OR_RETURN(auto forest, TreeSelect(db().store(), *tree, pred));
    for (const Tree& piece : forest) {
      std::cout << PrintTree(piece, Label()) << "\n";
    }
    if (forest.empty()) std::cout << "(empty forest)\n";
    return Status::OK();
  }

  /// Builds the subselect plan for "<coll> <pattern>" (list or tree).
  Result<PlanRef> MakeSubSelectPlan(const std::string& rest) {
    auto [coll, pattern] = SplitFirst(rest);
    if (db().HasList(coll)) {
      AQUA_ASSIGN_OR_RETURN(AnchoredListPattern lp,
                            ParseListPattern(pattern, PatternOpts()));
      return Q::ListSubSelect(Q::ScanList(coll), lp);
    }
    AQUA_RETURN_IF_ERROR(db().GetTree(coll).status());
    AQUA_ASSIGN_OR_RETURN(TreePatternRef tp,
                          ParseTreePattern(pattern, PatternOpts()));
    SplitOptions sopts;
    sopts.match.memoize = memoize_;
    return Q::TreeSubSelect(Q::ScanTree(coll), tp, sopts);
  }

  /// Builds the split plan for "<coll> <pattern>" (list or tree), with the
  /// standard <x, y, z> tuple combiner.
  Result<PlanRef> MakeSplitPlan(const std::string& rest) {
    auto [coll, pattern] = SplitFirst(rest);
    if (db().HasList(coll)) {
      AQUA_ASSIGN_OR_RETURN(AnchoredListPattern lp,
                            ParseListPattern(pattern, PatternOpts()));
      auto ltuple3 = [](const List& x, const List& y,
                        const std::vector<List>& z) -> Result<Datum> {
        std::vector<Datum> zs;
        for (const List& piece : z) zs.push_back(Datum::Of(piece));
        return Datum::Tuple(
            {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
      };
      return Q::ListSplit(Q::ScanList(coll), lp, ltuple3);
    }
    AQUA_RETURN_IF_ERROR(db().GetTree(coll).status());
    AQUA_ASSIGN_OR_RETURN(TreePatternRef tp,
                          ParseTreePattern(pattern, PatternOpts()));
    auto tuple3 = [](const Tree& x, const Tree& y,
                     const std::vector<Tree>& z) -> Result<Datum> {
      std::vector<Datum> zs;
      for (const Tree& t : z) zs.push_back(Datum::Of(t));
      return Datum::Tuple(
          {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
    };
    SplitOptions sopts;
    sopts.match.memoize = memoize_;
    return Q::TreeSplit(Q::ScanTree(coll), tp, tuple3, sopts);
  }

  // subselect/split always run through the Executor (results are
  // byte-identical to the direct algebra calls; see the determinism tests),
  // so every shell query populates the digest table and flight recorder.
  /// Strips a trailing ` &` (background marker) from `rest`; returns
  /// whether it was present.
  static bool StripBackground(std::string* rest) {
    if (rest->empty() || rest->back() != '&') return false;
    rest->pop_back();
    *rest = std::string(StripWhitespace(*rest));
    return true;
  }

  Status CmdSubSelect(std::string rest) {
    bool background = StripBackground(&rest);
    auto [coll, pattern] = SplitFirst(rest);
    (void)coll;
    AQUA_ASSIGN_OR_RETURN(PlanRef plan, MakeSubSelectPlan(rest));
    LintBanner(plan, pattern);
    if (background) return RunPlanBackground(plan);
    return RunPlan(plan);
  }

  Status CmdSplit(std::string rest) {
    bool background = StripBackground(&rest);
    auto [coll, pattern] = SplitFirst(rest);
    (void)coll;
    AQUA_ASSIGN_OR_RETURN(PlanRef plan, MakeSplitPlan(rest));
    LintBanner(plan, pattern);
    if (background) return RunPlanBackground(plan);
    return RunPlan(plan);
  }

  Status CmdAllAnc(const std::string& rest) {
    auto [coll, pattern] = SplitFirst(rest);
    AQUA_ASSIGN_OR_RETURN(const Tree* tree, db().GetTree(coll));
    AQUA_ASSIGN_OR_RETURN(TreePatternRef tp,
                          ParseTreePattern(pattern, PatternOpts()));
    LintBanner(Q::TreeSubSelect(Q::ScanTree(coll), tp), pattern);
    AQUA_ASSIGN_OR_RETURN(
        Datum out,
        TreeAllAnc(db().store(), *tree, tp,
                   [](const Tree& x, const Tree& y) -> Result<Datum> {
                     return Datum::Tuple({Datum::Of(x), Datum::Of(y)});
                   }));
    std::cout << out.ToString(Label()) << "\n";
    return Status::OK();
  }

  Status CmdAllDesc(const std::string& rest) {
    auto [coll, pattern] = SplitFirst(rest);
    AQUA_ASSIGN_OR_RETURN(const Tree* tree, db().GetTree(coll));
    AQUA_ASSIGN_OR_RETURN(TreePatternRef tp,
                          ParseTreePattern(pattern, PatternOpts()));
    LintBanner(Q::TreeSubSelect(Q::ScanTree(coll), tp), pattern);
    AQUA_ASSIGN_OR_RETURN(
        Datum out,
        TreeAllDesc(db().store(), *tree, tp,
                    [](const Tree& y,
                       const std::vector<Tree>& z) -> Result<Datum> {
                      std::vector<Datum> zs;
                      for (const Tree& t : z) zs.push_back(Datum::Of(t));
                      return Datum::Tuple(
                          {Datum::Of(y), Datum::Tuple(std::move(zs))});
                    }));
    std::cout << out.ToString(Label()) << "\n";
    return Status::OK();
  }

  Status CmdExplain(const std::string& rest) {
    auto [coll, pattern] = SplitFirst(rest);
    AQUA_RETURN_IF_ERROR(db().GetTree(coll).status());
    AQUA_ASSIGN_OR_RETURN(TreePatternRef tp,
                          ParseTreePattern(pattern, PatternOpts()));
    PlanRef plan = Q::TreeSubSelect(Q::ScanTree(coll), tp);
    LintBanner(plan, pattern);
    std::cout << "plan:\n" << Explain(plan);
    Rewriter rewriter(&db());
    rewriter.AddDefaultRules();
    AQUA_ASSIGN_OR_RETURN(PlanRef optimized, rewriter.Optimize(plan));
    std::cout << "optimized:\n" << Explain(optimized);
    Executor exec(&db());
    exec.set_threads(threads_);
    AQUA_ASSIGN_OR_RETURN(Datum out, exec.Execute(optimized));
    std::cout << "result: " << out.ToString(Label()) << "\n";
    return Status::OK();
  }

  Status CmdApprox(const std::string& rest) {
    auto [coll, tail] = SplitFirst(rest);
    size_t sp = tail.rfind(' ');
    if (sp == std::string::npos) {
      return Status::InvalidArgument("usage: approx <coll> <literal> <k>");
    }
    std::string literal = tail.substr(0, sp);
    double k = std::strtod(tail.substr(sp + 1).c_str(), nullptr);
    AQUA_ASSIGN_OR_RETURN(const Tree* tree, db().GetTree(coll));
    AQUA_ASSIGN_OR_RETURN(Tree query, ParseTreeLiteral(literal, atom_));
    AQUA_ASSIGN_OR_RETURN(
        Datum out,
        TreeSubSelectApprox(db().store(), *tree, query, k,
                            AttrEditCosts(&db().store(), label_attr_)));
    std::cout << out.ToString(Label()) << "\n";
    return Status::OK();
  }

  Status CmdNearest(const std::string& rest) {
    auto [coll, tail] = SplitFirst(rest);
    size_t sp = tail.rfind(' ');
    if (sp == std::string::npos) {
      return Status::InvalidArgument("usage: nearest <coll> <literal> <n>");
    }
    std::string literal = tail.substr(0, sp);
    size_t n = std::strtoull(tail.substr(sp + 1).c_str(), nullptr, 10);
    AQUA_ASSIGN_OR_RETURN(const Tree* tree, db().GetTree(coll));
    AQUA_ASSIGN_OR_RETURN(Tree query, ParseTreeLiteral(literal, atom_));
    AQUA_ASSIGN_OR_RETURN(
        auto ranked,
        NearestSubtrees(db().store(), *tree, query, n,
                        AttrEditCosts(&db().store(), label_attr_)));
    for (const auto& scored : ranked) {
      std::cout << scored.distance << "  "
                << PrintTree(scored.subtree, Label()) << "\n";
    }
    return Status::OK();
  }

  Status CmdObsMetrics(const std::string& arg) {
    if (arg == "reset") {
      obs::Registry::Global().ResetAll();
      std::cout << "metrics reset\n";
      return Status::OK();
    }
    obs::Snapshot snap = obs::Registry::Global().Snap();
    if (arg == "json") {
      std::cout << snap.ToJson() << "\n";
    } else if (arg.empty()) {
      std::cout << snap.ToText();
    } else {
      return Status::InvalidArgument("usage: \\metrics [json|reset]");
    }
    return Status::OK();
  }

  Status CmdRuntimeStats(const std::string& rest) {
    auto [arg, tail] = SplitFirst(rest);
    obs::StatsWarehouse& wh = obs::StatsWarehouse::Global();
    if (arg == "json") {
      std::cout << wh.ToJson() << "\n";
      return Status::OK();
    }
    if (arg == "reset") {
      wh.Reset();
      std::cout << "stats warehouse reset\n";
      return Status::OK();
    }
    if (arg == "save") {
      AQUA_RETURN_IF_ERROR(obs::SaveStats(tail));
      std::cout << "stats saved\n";
      return Status::OK();
    }
    if (arg == "load") {
      AQUA_RETURN_IF_ERROR(obs::LoadStats(tail));
      std::cout << "stats loaded (" << wh.size() << " records)\n";
      return Status::OK();
    }
    std::vector<obs::OpStatsRow> rows;
    if (arg.empty()) {
      rows = wh.Rows();
      if (rows.size() > 32) rows.resize(32);
    } else {
      char* end = nullptr;
      uint64_t fp = std::strtoull(arg.c_str(), &end, 16);
      if (end == arg.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            "usage: \\stats [fingerprint|json|reset|save [path]|load "
            "[path]]");
      }
      rows = wh.RowsFor(fp);
    }
    if (rows.empty()) {
      std::cout << "stats warehouse empty (run some queries first)\n";
      return Status::OK();
    }
    TextTable table({"plan", "path", "op", "calls", "in_rows", "out_rows",
                     "sel", "cand/probe", "wall_ms"});
    char cell[32];
    for (const obs::OpStatsRow& r : rows) {
      std::vector<std::string> cells;
      std::snprintf(cell, sizeof(cell), "%016llx",
                    static_cast<unsigned long long>(r.plan_fp));
      cells.emplace_back(cell);
      cells.push_back(r.path);
      cells.push_back(r.op_name);
      cells.push_back(std::to_string(r.calls));
      std::snprintf(cell, sizeof(cell), "%.1f", r.in_rows);
      cells.emplace_back(cell);
      std::snprintf(cell, sizeof(cell), "%.1f", r.out_rows);
      cells.emplace_back(cell);
      std::snprintf(cell, sizeof(cell), "%.3f", r.selectivity);
      cells.emplace_back(cell);
      if (r.candidates_per_probe < 0) {
        cells.emplace_back("-");
      } else {
        std::snprintf(cell, sizeof(cell), "%.1f", r.candidates_per_probe);
        cells.emplace_back(cell);
      }
      std::snprintf(cell, sizeof(cell), "%.3f", r.wall_ns / 1e6);
      cells.emplace_back(cell);
      table.AddRow(std::move(cells));
    }
    std::cout << table.ToString();
    return Status::OK();
  }

  /// Runs the static-analysis pass on `plan` and prints one line per
  /// warning/error finding. Called before executing every query command
  /// (the on-by-default banner; `\lint off` or AQUA_LINT=off silences it;
  /// notes are reserved for the explicit \lint command to keep the banner
  /// quiet on every uncertified apply).
  void LintBanner(const PlanRef& plan, const std::string& source) {
    if (!lint_banner_) return;
    if (lint::EnforcementLevel() == lint::Level::kOff) return;
    lint::PlanLintOptions opts;
    opts.pattern_source = source;
    for (const lint::Diagnostic& d : lint::LintPlan(db(), plan, opts)) {
      if (d.severity == lint::Severity::kNote) continue;
      std::cout << "lint: " << lint::FormatDiagnostic(d) << "\n";
    }
  }

  Status CmdLint(const std::string& rest) {
    if (rest == "on" || rest == "off") {
      lint_banner_ = rest == "on";
      std::cout << "lint banner " << rest << "\n";
      return Status::OK();
    }
    if (rest == "level" || StartsWith(rest, "level ")) {
      std::string arg = rest == "level" ? "" : rest.substr(6);
      if (!arg.empty()) {
        lint::Level level;
        if (!lint::ParseLevel(arg, &level)) {
          return Status::InvalidArgument(
              "usage: \\lint level [off|warn|error]");
        }
        lint::set_enforcement_level(level);
      }
      std::cout << "lint level "
                << lint::LevelToString(lint::EnforcementLevel()) << "\n";
      return Status::OK();
    }
    auto [coll, pattern] = SplitFirst(rest);
    if (coll.empty() || pattern.empty()) {
      return Status::InvalidArgument(
          "usage: \\lint <coll> <pattern>  or  \\lint on|off  or  "
          "\\lint level [off|warn|error]");
    }
    PlanRef plan;
    if (db().HasList(coll)) {
      AQUA_ASSIGN_OR_RETURN(AnchoredListPattern lp,
                            ParseListPattern(pattern, PatternOpts()));
      plan = Q::ListSubSelect(Q::ScanList(coll), lp);
    } else {
      AQUA_ASSIGN_OR_RETURN(TreePatternRef tp,
                            ParseTreePattern(pattern, PatternOpts()));
      plan = Q::TreeSubSelect(Q::ScanTree(coll), tp);
    }
    lint::PlanLintOptions opts;
    opts.pattern_source = pattern;
    std::vector<lint::Diagnostic> diags = lint::LintPlan(db(), plan, opts);
    if (diags.empty()) {
      std::cout << "no diagnostics\n";
    } else {
      std::cout << lint::RenderDiagnostics(diags);
    }
    // The inferred facts behind those diagnostics: per-node cardinality and
    // kind flow, plus the effect summary that decides parallel fan-out.
    std::cout << "facts:\n" << lint::RenderFacts(db(), plan);
    std::cout << lint::AnalyzeEffects(plan).ToString() << "\n";
    return Status::OK();
  }

  Status CmdThreads(const std::string& arg) {
    if (!arg.empty()) {
      threads_ = std::strtoull(arg.c_str(), nullptr, 10);
    }
    Executor probe(&db());
    probe.set_threads(threads_);
    std::cout << "threads: " << probe.threads()
              << (threads_ == 0 ? " (default)" : "") << "\n";
    return Status::OK();
  }

  Status CmdTrace(const std::string& arg) {
    if (arg == "on") {
      trace_on_ = true;
    } else if (arg == "off") {
      trace_on_ = false;
    } else {
      return Status::InvalidArgument("usage: \\trace on|off");
    }
    std::cout << "tracing " << (trace_on_ ? "on" : "off") << "\n";
    return Status::OK();
  }

  /// Executes `plan` through the pipeline and prints the result; with
  /// `\trace on` the span-tree report and the counter deltas follow.
  Status RunPlan(const PlanRef& plan) {
    Executor exec(&db());
    exec.set_threads(threads_);
    exec.set_trace_enabled(trace_on_);
    exec.set_timeout_ms(timeout_ms_);
    AQUA_ASSIGN_OR_RETURN(Datum out, exec.Execute(plan));
    std::cout << out.ToString(Label()) << "\n";
    if (trace_on_) {
      std::cout << exec.TraceReport() << exec.last_counters().ToText();
    }
    return Status::OK();
  }

  /// Launches `plan` on a detached worker thread; the query registers
  /// itself in the live task table, so `\tasks` shows it and `\kill <id>`
  /// cancels it. Completion prints asynchronously.
  Status RunPlanBackground(PlanRef plan) {
    size_t threads = threads_;
    uint64_t timeout_ms = timeout_ms_;
    Database* database = &db();
    bg_threads_.emplace_back([database, plan = std::move(plan), threads,
                              timeout_ms]() {
      Executor exec(database);
      exec.set_threads(threads);
      exec.set_timeout_ms(timeout_ms);
      obs::Span timer(nullptr, "");
      Result<Datum> out = exec.Execute(plan);
      double ms = static_cast<double>(timer.ElapsedNs()) / 1e6;
      std::ostringstream os;
      os << "[bg q" << exec.stats().query_id << "] ";
      if (out.ok()) {
        os << "done in " << ms << " ms\n";
      } else {
        os << "error: " << out.status() << "\n";
      }
      std::cout << os.str() << std::flush;
    });
    std::cout << "running in background (watch with \\tasks, cancel with "
                 "\\kill <id>)\n";
    return Status::OK();
  }

  void JoinBackground() {
    if (bg_threads_.empty()) return;
#ifndef AQUA_OBS_DISABLED
    // A background query with no deadline would block exit forever; keep
    // killing whatever is in flight until the joins complete (a sweep can
    // race a just-launched query that has not registered yet).
    std::atomic<bool> joined{false};
    std::thread reaper([&joined] {
      while (!joined.load()) {
        for (const obs::TaskRow& row :
             obs::TaskRegistry::Global().Snapshot()) {
          (void)obs::TaskRegistry::Global().Kill(
              row.id, "was cancelled at shell exit");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
#endif
    for (std::thread& t : bg_threads_) {
      if (t.joinable()) t.join();
    }
    bg_threads_.clear();
#ifndef AQUA_OBS_DISABLED
    joined.store(true);
    reaper.join();
#endif
  }

  Status CmdFlight(const std::string& arg) {
    obs::FlightRecorder& rec = obs::FlightRecorder::Global();
    if (arg == "clear") {
      rec.Clear();
      std::cout << "flight recorder cleared\n";
    } else if (arg == "json") {
      std::cout << rec.ToJson() << "\n";
    } else if (arg.empty()) {
      std::cout << rec.ToText();
    } else {
      return Status::InvalidArgument("usage: \\flight [json|clear]");
    }
    return Status::OK();
  }

  Status CmdDigests(const std::string& arg) {
    obs::DigestTable& table = obs::DigestTable::Global();
    if (arg == "reset") {
      table.Reset();
      std::cout << "digest table reset\n";
    } else if (arg == "json") {
      std::cout << table.ToJson() << "\n";
    } else if (arg.empty()) {
      std::cout << table.ToText();
    } else {
      return Status::InvalidArgument("usage: \\digests [json|reset]");
    }
    return Status::OK();
  }

  Status CmdHot(const std::string& arg) {
    size_t top_n = 10;
    if (!arg.empty()) {
      char* end = nullptr;
      unsigned long n = std::strtoul(arg.c_str(), &end, 10);
      if (end == arg.c_str() || *end != '\0' || n == 0) {
        return Status::InvalidArgument("usage: \\hot [n]");
      }
      top_n = static_cast<size_t>(n);
    }
    std::vector<obs::DigestRow> rows = obs::DigestTable::Global().Rows();
    if (rows.empty()) {
      std::cout << "digest table empty (run some queries first)\n";
      return Status::OK();
    }
    if (rows.size() > top_n) rows.resize(top_n);
    std::cout << "hottest plan shapes by total time:\n";
    TextTable table(
        {"#", "calls", "total_ms", "mean_ms", "p95_ms", "fingerprint",
         "plan"});
    char cell[32];
    for (size_t i = 0; i < rows.size(); ++i) {
      const obs::DigestRow& r = rows[i];
      std::vector<std::string> cells;
      cells.push_back(std::to_string(i + 1));
      cells.push_back(std::to_string(r.calls));
      std::snprintf(cell, sizeof(cell), "%.3f",
                    static_cast<double>(r.total_ns) / 1e6);
      cells.emplace_back(cell);
      std::snprintf(cell, sizeof(cell), "%.3f", r.mean_ns() / 1e6);
      cells.emplace_back(cell);
      std::snprintf(cell, sizeof(cell), "%.3f", r.p95_ns() / 1e6);
      cells.emplace_back(cell);
      std::snprintf(cell, sizeof(cell), "%016llx",
                    static_cast<unsigned long long>(r.fingerprint));
      cells.emplace_back(cell);
      cells.push_back(r.text);
      table.AddRow(std::move(cells));
    }
    std::cout << table.ToString();
    return Status::OK();
  }

  Status CmdServe(const std::string& arg) {
    if (arg == "off") {
      if (!server_.running()) {
        std::cout << "metrics server not running\n";
        return Status::OK();
      }
      server_.Stop();
      std::cout << "metrics server stopped\n";
      return Status::OK();
    }
    if (arg.empty()) {
      if (server_.running()) {
        std::cout << "serving on http://127.0.0.1:" << server_.port()
                  << "/metrics\n";
        return Status::OK();
      }
      return Status::InvalidArgument("usage: \\serve <port>|off");
    }
    if (server_.running()) {
      return Status::InvalidArgument(
          "already serving on port " + std::to_string(server_.port()) +
          " (`\\serve off` first)");
    }
    uint16_t port =
        static_cast<uint16_t>(std::strtoul(arg.c_str(), nullptr, 10));
    AQUA_RETURN_IF_ERROR(server_.Start(port));
    std::cout << "serving on http://127.0.0.1:" << server_.port()
              << "/metrics (also /digests /stats /flight /tasks /healthz)\n";
    return Status::OK();
  }

  Status CmdSlowLog(const std::string& rest) {
    obs::FlightRecorder& rec = obs::FlightRecorder::Global();
    if (rest.empty()) {
      uint64_t ns = rec.slow_query_threshold_ns();
      if (ns == 0) {
        std::cout << "slow-query log off\n";
      } else {
        std::cout << "slow-query threshold " << static_cast<double>(ns) / 1e6
                  << " ms -> " << rec.slow_query_log_path() << " ("
                  << rec.slow_queries_logged() << " logged)\n";
      }
      return Status::OK();
    }
    auto [ms_str, path] = SplitFirst(rest);
    char* end = nullptr;
    double ms = std::strtod(ms_str.c_str(), &end);
    if (end == ms_str.c_str() || ms < 0) {
      return Status::InvalidArgument("usage: \\slowlog <ms> [path]");
    }
    rec.set_slow_query_threshold_ns(static_cast<uint64_t>(ms * 1e6));
    if (!path.empty()) rec.set_slow_query_log_path(path);
    if (ms == 0) {
      std::cout << "slow-query log off\n";
    } else {
      std::cout << "logging queries >= " << ms << " ms to "
                << rec.slow_query_log_path() << "\n";
    }
    return Status::OK();
  }

  Status CmdProfile(const std::string& rest) {
    auto [n_str, query] = SplitFirst(rest);
    size_t n = std::strtoull(n_str.c_str(), nullptr, 10);
    if (n == 0 || query.empty()) {
      return Status::InvalidArgument(
          "usage: \\profile <n> <subselect|split query>");
    }
    auto [qcmd, qrest] = SplitFirst(query);
    PlanRef plan;
    if (qcmd == "subselect") {
      AQUA_ASSIGN_OR_RETURN(plan, MakeSubSelectPlan(qrest));
    } else if (qcmd == "split") {
      AQUA_ASSIGN_OR_RETURN(plan, MakeSplitPlan(qrest));
    } else {
      return Status::InvalidArgument(
          "\\profile runs `subselect` or `split` queries");
    }
    Executor exec(&db());
    exec.set_threads(threads_);
    std::vector<uint64_t> samples;
    samples.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      obs::Span timer(nullptr, "");
      AQUA_RETURN_IF_ERROR(exec.Execute(plan).status());
      samples.push_back(timer.ElapsedNs());
    }
    std::sort(samples.begin(), samples.end());
    auto quantile = [&](double q) {
      size_t idx = static_cast<size_t>(q * static_cast<double>(n));
      return samples[std::min(idx, n - 1)];
    };
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%zu runs: min %.3f  p50 %.3f  p95 %.3f  p99 %.3f  max "
                  "%.3f ms\n",
                  n, static_cast<double>(samples.front()) / 1e6,
                  static_cast<double>(quantile(0.50)) / 1e6,
                  static_cast<double>(quantile(0.95)) / 1e6,
                  static_cast<double>(quantile(0.99)) / 1e6,
                  static_cast<double>(samples.back()) / 1e6);
    std::cout << buf;
    uint64_t fp = obs::FingerprintPlan(plan);
    obs::DigestRow row = obs::DigestTable::Global().Row(fp);
    if (row.calls > 0) {
      std::snprintf(buf, sizeof(buf),
                    "digest %016llx: %llu calls, total %.3f ms, p50 %.3f  "
                    "p95 %.3f  p99 %.3f ms\n",
                    static_cast<unsigned long long>(fp),
                    static_cast<unsigned long long>(row.calls),
                    static_cast<double>(row.total_ns) / 1e6,
                    row.p50_ns() / 1e6, row.p95_ns() / 1e6,
                    row.p99_ns() / 1e6);
      std::cout << buf;
    }
    return Status::OK();
  }

  Status CmdTasks(const std::string& arg) {
    obs::TaskRegistry& reg = obs::TaskRegistry::Global();
    if (arg == "json") {
      std::cout << reg.ToJson() << "\n";
    } else if (arg.empty()) {
      std::cout << reg.ToText();
    } else {
      return Status::InvalidArgument("usage: \\tasks [json]");
    }
    return Status::OK();
  }

  Status CmdSnapshot(const std::string& arg) {
    if (!arg.empty()) {
      return Status::InvalidArgument("usage: \\snapshot");
    }
    const ObjectStore& store = db().store();
    std::cout << "epoch:           " << store.epoch() << "\n"
              << "versions live:   " << store.versions_live() << "\n"
              << "snapshot pins:   " << store.snapshot_pins() << "\n"
              << "cow copies:      " << store.cow_copies() << "\n"
              << "retained bytes:  " << store.retained_bytes() << "\n";
    std::vector<obs::TaskRow> tasks = obs::TaskRegistry::Global().Snapshot();
    if (tasks.empty()) {
      std::cout << "(no queries pinning a snapshot)\n";
      return Status::OK();
    }
    std::cout << "pinned by:\n";
    for (const obs::TaskRow& t : tasks) {
      std::cout << "  task " << t.id << "  epoch " << t.pinned_epoch << "  "
                << t.plan << "\n";
    }
    return Status::OK();
  }

  Status CmdKill(const std::string& arg) {
    char* end = nullptr;
    uint64_t id = std::strtoull(arg.c_str(), &end, 10);
    if (arg.empty() || end == arg.c_str()) {
      return Status::InvalidArgument("usage: \\kill <task id>");
    }
    AQUA_RETURN_IF_ERROR(obs::TaskRegistry::Global().Kill(id));
    std::cout << "task " << id << " cancelled\n";
    return Status::OK();
  }

  Status CmdTimeout(const std::string& arg) {
    if (!arg.empty()) {
      timeout_ms_ = std::strtoull(arg.c_str(), nullptr, 10);
    }
    if (timeout_ms_ == 0) {
      std::cout << "timeout: env default (AQUA_QUERY_TIMEOUT_MS)\n";
    } else {
      std::cout << "timeout: " << timeout_ms_ << " ms\n";
    }
    return Status::OK();
  }

  Status CmdMemoize(const std::string& arg) {
    if (arg == "on") {
      memoize_ = true;
    } else if (arg == "off") {
      memoize_ = false;
    } else if (!arg.empty()) {
      return Status::InvalidArgument("usage: \\memoize on|off");
    }
    std::cout << "tree-match memoization " << (memoize_ ? "on" : "off")
              << "\n";
    return Status::OK();
  }

  Status CmdLoad(const std::string& path) {
    auto fresh = std::make_unique<Database>();
    AQUA_RETURN_IF_ERROR(LoadDatabaseFromFile(path, fresh.get()));
    db_holder_ = std::move(fresh);
    // Literal atoms must intern into the loaded store from now on.
    if (!db().store().schema().TypeIdOf("Item").ok()) {
      AQUA_RETURN_IF_ERROR(RegisterItemType(db().store()));
    }
    atom_ = MakeInterningAtomFn(&db().store(), "Item", "name");
    std::cout << "loaded " << path << " ("
              << db_holder_->store().num_objects() << " objects)\n";
    return Status::OK();
  }

  // The active database: either the initial one or the last loaded one.
  Database& db() { return db_holder_ ? *db_holder_ : db_; }

  Database db_;
  std::unique_ptr<Database> db_holder_;
  PredicateEnv env_;
  AtomFn atom_;
  std::string label_attr_;
  bool trace_on_ = false;
  bool lint_banner_ = true;
  bool memoize_ = true;
  uint64_t timeout_ms_ = 0;
  std::vector<std::thread> bg_threads_;
  obs::MetricsHttpServer server_;

 public:
  /// 0 = executor default (`AQUA_THREADS` or hardware concurrency).
  void set_threads(size_t n) { threads_ = n; }

 private:
  size_t threads_ = 0;
};

}  // namespace
}  // namespace aqua

int main(int argc, char** argv) {
  bool interactive = isatty(0);
  aqua::Shell shell;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      shell.set_threads(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      shell.set_threads(
          std::strtoull(arg.c_str() + sizeof("--threads=") - 1, nullptr, 10));
    } else {
      std::cerr << "usage: aqua_shell [--threads N]\n";
      return 2;
    }
  }
  return shell.Run(std::cin, interactive);
}
