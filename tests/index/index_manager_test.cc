#include "index/index_manager.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class IndexManagerTest : public testing::AquaTestBase {
 protected:
  void SetUp() override {
    AquaTestBase::SetUp();
    tree_ = T("a(b c)");
    list_ = L("[a b]");
  }

  Tree tree_;
  List list_;
  IndexManager manager_;
};

TEST_F(IndexManagerTest, CreateAndGet) {
  ASSERT_OK(manager_.CreateTreeIndex("t", store_, tree_, "name"));
  ASSERT_OK(manager_.CreateListIndex("l", store_, list_, "name"));
  EXPECT_EQ(manager_.num_indexes(), 2u);
  EXPECT_TRUE(manager_.Has("t", "name"));
  EXPECT_FALSE(manager_.Has("t", "val"));
  ASSERT_OK_AND_ASSIGN(const AttributeIndex* idx, manager_.Get("t", "name"));
  EXPECT_EQ(idx->size(), 3u);
}

TEST_F(IndexManagerTest, DuplicateRejected) {
  ASSERT_OK(manager_.CreateTreeIndex("t", store_, tree_, "name"));
  EXPECT_TRUE(manager_.CreateTreeIndex("t", store_, tree_, "name")
                  .IsAlreadyExists());
}

TEST_F(IndexManagerTest, GetMissing) {
  EXPECT_TRUE(manager_.Get("t", "name").status().IsNotFound());
}

TEST_F(IndexManagerTest, IndexedAttrs) {
  ASSERT_OK(manager_.CreateTreeIndex("t", store_, tree_, "name"));
  ASSERT_OK(manager_.CreateTreeIndex("t", store_, tree_, "val"));
  ASSERT_OK(manager_.CreateListIndex("other", store_, list_, "name"));
  auto attrs = manager_.IndexedAttrs("t");
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0], "name");
  EXPECT_EQ(attrs[1], "val");
}

TEST_F(IndexManagerTest, Drop) {
  ASSERT_OK(manager_.CreateTreeIndex("t", store_, tree_, "name"));
  ASSERT_OK(manager_.Drop("t", "name"));
  EXPECT_FALSE(manager_.Has("t", "name"));
  EXPECT_TRUE(manager_.Drop("t", "name").IsNotFound());
  // Recreating after a drop works.
  ASSERT_OK(manager_.CreateTreeIndex("t", store_, tree_, "name"));
}

}  // namespace
}  // namespace aqua
