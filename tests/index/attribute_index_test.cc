#include "index/attribute_index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class AttributeIndexTest : public testing::AquaTestBase {
 protected:
  void SetUp() override {
    AquaTestBase::SetUp();
    tree_ = T("a(b(a c) b a)");  // names: a,b,a,c,b,a
    ASSERT_OK_AND_ASSIGN(
        index_, AttributeIndex::BuildForTree(store_, tree_, "name"));
    // val index over a list with known values.
    ASSERT_OK(RegisterItemType(store_));
    List l;
    for (int v : {5, 3, 9, 3, 7}) {
      auto oid = store_.Create("Item", {{"name", Value::String("n")},
                                        {"val", Value::Int(v)}});
      ASSERT_OK(oid);
      l.Append(NodePayload::Cell(*oid));
    }
    list_ = l;
    ASSERT_OK_AND_ASSIGN(val_index_,
                         AttributeIndex::BuildForList(store_, list_, "val"));
  }

  Tree tree_;
  List list_;
  AttributeIndex index_;
  AttributeIndex val_index_;
};

TEST_F(AttributeIndexTest, BuildStats) {
  EXPECT_EQ(index_.attr(), "name");
  EXPECT_EQ(index_.size(), 6u);
  EXPECT_EQ(index_.collection_size(), 6u);
  EXPECT_EQ(index_.num_distinct(), 3u);
  EXPECT_EQ(val_index_.num_distinct(), 4u);
}

TEST_F(AttributeIndexTest, PointLookup) {
  auto as = index_.Lookup(Value::String("a"));
  EXPECT_EQ(as.size(), 3u);
  // NodeIds ascend.
  for (size_t i = 1; i < as.size(); ++i) EXPECT_LT(as[i - 1], as[i]);
  EXPECT_EQ(index_.Lookup(Value::String("zzz")).size(), 0u);
}

TEST_F(AttributeIndexTest, LookupReturnsActualMatchingNodes) {
  for (NodeId v : index_.Lookup(Value::String("b"))) {
    auto name = store_.GetAttr(tree_.payload(v).oid(), "name");
    ASSERT_TRUE(name.ok());
    EXPECT_EQ(name->string_value(), "b");
  }
}

TEST_F(AttributeIndexTest, RangeLookup) {
  Value lo = Value::Int(3), hi = Value::Int(7);
  EXPECT_EQ(val_index_.LookupRange(&lo, true, &hi, true).size(), 4u);
  EXPECT_EQ(val_index_.LookupRange(&lo, false, &hi, true).size(), 2u);
  EXPECT_EQ(val_index_.LookupRange(&lo, true, &hi, false).size(), 3u);
  EXPECT_EQ(val_index_.LookupRange(nullptr, false, &hi, false).size(), 3u);
  EXPECT_EQ(val_index_.LookupRange(&lo, false, nullptr, false).size(), 3u);
  EXPECT_EQ(val_index_.LookupRange(nullptr, false, nullptr, false).size(), 5u);
}

TEST_F(AttributeIndexTest, ProbeSupportedOps) {
  auto eq = Predicate::AttrEquals("val", Value::Int(3));
  ASSERT_OK_AND_ASSIGN(auto eq_nodes, val_index_.Probe(*eq));
  EXPECT_EQ(eq_nodes.size(), 2u);

  auto lt = Predicate::Compare("val", CmpOp::kLt, Value::Int(7));
  ASSERT_OK_AND_ASSIGN(auto lt_nodes, val_index_.Probe(*lt));
  EXPECT_EQ(lt_nodes.size(), 3u);

  auto ge = Predicate::Compare("val", CmpOp::kGe, Value::Int(7));
  ASSERT_OK_AND_ASSIGN(auto ge_nodes, val_index_.Probe(*ge));
  EXPECT_EQ(ge_nodes.size(), 2u);
}

TEST_F(AttributeIndexTest, CanProbeRules) {
  EXPECT_TRUE(val_index_.CanProbe(
      *Predicate::AttrEquals("val", Value::Int(1))));
  // Wrong attribute.
  EXPECT_FALSE(val_index_.CanProbe(
      *Predicate::AttrEquals("name", Value::String("x"))));
  // != is not a contiguous range.
  EXPECT_FALSE(val_index_.CanProbe(
      *Predicate::Compare("val", CmpOp::kNe, Value::Int(1))));
  // Boolean structure is not probe-able directly.
  EXPECT_FALSE(val_index_.CanProbe(*Predicate::And(
      Predicate::AttrEquals("val", Value::Int(1)), Predicate::True())));
  EXPECT_TRUE(val_index_.Probe(*Predicate::True()).status().IsInvalidArgument());
}

TEST_F(AttributeIndexTest, SelectivityExactForProbes) {
  auto eq = Predicate::AttrEquals("val", Value::Int(3));
  EXPECT_DOUBLE_EQ(val_index_.Selectivity(*eq), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(val_index_.Selectivity(*Predicate::True()), 1.0);
}

TEST_F(AttributeIndexTest, HeterogeneousCollectionsSkipMissingAttrs) {
  // Mix Person and Item cells; index on "citizen" covers only Persons.
  ASSERT_OK(RegisterPersonType(store_));
  ASSERT_OK_AND_ASSIGN(Oid person,
                       store_.Create("Person", {{"name", Value::String("P")},
                                                {"citizen",
                                                 Value::String("USA")}}));
  Tree mixed = Tree::Node(NodePayload::Cell(person), {T("a")});
  ASSERT_OK_AND_ASSIGN(
      AttributeIndex idx,
      AttributeIndex::BuildForTree(store_, mixed, "citizen"));
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx.collection_size(), 2u);
}

TEST_F(AttributeIndexTest, PointsAreNotIndexed) {
  Tree t = T("a(@p b)");
  ASSERT_OK_AND_ASSIGN(AttributeIndex idx,
                       AttributeIndex::BuildForTree(store_, t, "name"));
  EXPECT_EQ(idx.size(), 2u);  // a and b, not @p
}

TEST_F(AttributeIndexTest, NullAttributesAreSkipped) {
  ASSERT_OK_AND_ASSIGN(Oid no_val,
                       store_.Create("Item", {{"name", Value::String("nv")}}));
  List l;
  l.Append(NodePayload::Cell(no_val));
  ASSERT_OK_AND_ASSIGN(AttributeIndex idx,
                       AttributeIndex::BuildForList(store_, l, "val"));
  EXPECT_EQ(idx.size(), 0u);
}

}  // namespace
}  // namespace aqua
