#include "workload/generators.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class GeneratorsTest : public ::testing::Test {
 protected:
  ObjectStore store_;
};

TEST_F(GeneratorsTest, TypeRegistrationIsIdempotent) {
  ASSERT_OK(RegisterPersonType(store_));
  ASSERT_OK(RegisterPersonType(store_));
  ASSERT_OK(RegisterNoteType(store_));
  ASSERT_OK(RegisterParseNodeType(store_));
  ASSERT_OK(RegisterItemType(store_));
  EXPECT_EQ(store_.schema().num_types(), 4u);
}

TEST_F(GeneratorsTest, PaperFamilyTreeShape) {
  ASSERT_OK_AND_ASSIGN(Tree t, MakePaperFamilyTree(store_));
  EXPECT_OK(t.Validate());
  EXPECT_EQ(t.size(), 8u);
  LabelFn name = AttrLabelFn(&store_, "name");
  EXPECT_EQ(PrintTree(t, name), "Ted(Ann Gen(Joe(Bob) John(Mary)) Ray)");
  LabelFn citizen = AttrLabelFn(&store_, "citizen");
  EXPECT_EQ(PrintTree(t, citizen),
            "USA(USA Brazil(Brazil(Brazil) USA(USA)) USA)");
}

TEST_F(GeneratorsTest, FamilyTreeDeterministicAndSized) {
  FamilyTreeSpec spec;
  spec.num_people = 50;
  spec.seed = 99;
  ASSERT_OK_AND_ASSIGN(Tree t1, MakeFamilyTree(store_, spec));
  EXPECT_OK(t1.Validate());
  EXPECT_EQ(t1.size(), 50u);
  EXPECT_LE(t1.MaxArity(), spec.max_children);

  ObjectStore other;
  ASSERT_OK_AND_ASSIGN(Tree t2, MakeFamilyTree(other, spec));
  LabelFn n1 = AttrLabelFn(&store_, "citizen");
  LabelFn n2 = AttrLabelFn(&other, "citizen");
  EXPECT_EQ(PrintTree(t1, n1), PrintTree(t2, n2));
}

TEST_F(GeneratorsTest, SongGeneration) {
  SongSpec spec;
  spec.num_notes = 30;
  ASSERT_OK_AND_ASSIGN(List song, MakeSong(store_, spec));
  EXPECT_EQ(song.size(), 30u);
  for (size_t i = 0; i < song.size(); ++i) {
    ASSERT_TRUE(song.at(i).is_cell());
    auto pitch = store_.GetAttr(song.at(i).oid(), "pitch");
    ASSERT_TRUE(pitch.ok());
    auto dur = store_.GetAttr(song.at(i).oid(), "duration");
    ASSERT_TRUE(dur.ok());
    EXPECT_GE(dur->int_value(), 1);
    EXPECT_LE(dur->int_value(), spec.max_duration);
  }
}

TEST_F(GeneratorsTest, ParseTreeHasRewriteTargets) {
  ParseTreeSpec spec;
  spec.num_exprs = 60;
  spec.and_fraction = 0.9;
  ASSERT_OK_AND_ASSIGN(Tree t, MakeQueryParseTree(store_, spec));
  EXPECT_OK(t.Validate());
  // There must be select nodes whose predicate root is `and`.
  auto tp = ParseTreePattern("{op == \"select\"}(!? {op == \"and\"})");
  ASSERT_TRUE(tp.ok());
  TreeMatcher matcher(store_, t);
  ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(*tp));
  EXPECT_GT(matches.size(), 0u);
}

TEST_F(GeneratorsTest, RandomTreeRespectsSpec) {
  RandomTreeSpec spec;
  spec.num_nodes = 200;
  spec.max_children = 3;
  spec.labels = {"x", "y"};
  ASSERT_OK_AND_ASSIGN(Tree t, MakeRandomTree(store_, spec));
  EXPECT_OK(t.Validate());
  EXPECT_EQ(t.size(), 200u);
  EXPECT_LE(t.MaxArity(), 3u);
  for (NodeId v : t.Preorder()) {
    auto name = store_.GetAttr(t.payload(v).oid(), "name");
    ASSERT_TRUE(name.ok());
    EXPECT_TRUE(name->string_value() == "x" || name->string_value() == "y");
  }
}

TEST_F(GeneratorsTest, RandomListAndChain) {
  ASSERT_OK_AND_ASSIGN(List l, MakeRandomList(store_, 40, {"a", "b"}, 3));
  EXPECT_EQ(l.size(), 40u);
  ASSERT_OK_AND_ASSIGN(Tree chain, MakeChain(store_, {"a", "b", "c"}, 10));
  EXPECT_OK(chain.Validate());
  EXPECT_EQ(chain.size(), 10u);
  EXPECT_EQ(chain.Height(), 9u);
  EXPECT_LE(chain.MaxArity(), 1u);
}

TEST_F(GeneratorsTest, EmptySpecsYieldEmptyCollections) {
  FamilyTreeSpec people;
  people.num_people = 0;
  ASSERT_OK_AND_ASSIGN(Tree t, MakeFamilyTree(store_, people));
  EXPECT_TRUE(t.empty());
  ASSERT_OK_AND_ASSIGN(Tree chain, MakeChain(store_, {"a"}, 0));
  EXPECT_TRUE(chain.empty());
}

TEST_F(GeneratorsTest, InterningAtomFnInterns) {
  ASSERT_OK(RegisterItemType(store_));
  AtomFn atom = MakeInterningAtomFn(&store_, "Item", "name");
  ASSERT_OK_AND_ASSIGN(Oid a1, atom("tok"));
  ASSERT_OK_AND_ASSIGN(Oid a2, atom("tok"));
  ASSERT_OK_AND_ASSIGN(Oid b, atom("other"));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

}  // namespace
}  // namespace aqua
