#include "pattern/nfa.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class NfaTest : public testing::AquaTestBase {
 protected:
  bool Whole(const std::string& list_lit, const std::string& pattern) {
    List l = L(list_lit);
    auto nfa = Nfa::Compile(LP(pattern).body);
    EXPECT_TRUE(nfa.ok()) << nfa.status().ToString();
    return nfa.ok() && nfa->MatchesWhole(store_, l);
  }

  bool Exists(const std::string& list_lit, const std::string& pattern,
              bool search_mode) {
    List l = L(list_lit);
    auto nfa = search_mode ? Nfa::CompileSearch(LP(pattern).body)
                           : Nfa::Compile(LP(pattern).body);
    EXPECT_TRUE(nfa.ok()) << nfa.status().ToString();
    return nfa.ok() && nfa->ExistsMatch(store_, l);
  }
};

TEST_F(NfaTest, WholeMatchBasics) {
  EXPECT_TRUE(Whole("[a b c]", "a b c"));
  EXPECT_FALSE(Whole("[a b c]", "a b"));
  EXPECT_FALSE(Whole("[a b]", "a b c"));
  EXPECT_TRUE(Whole("[]", "[[a]]*"));
  EXPECT_FALSE(Whole("[]", "a"));
}

TEST_F(NfaTest, ClosuresAndAlternation) {
  EXPECT_TRUE(Whole("[a a a]", "a+"));
  EXPECT_TRUE(Whole("[a b a b]", "[[a b]]*"));
  EXPECT_FALSE(Whole("[a b a]", "[[a b]]*"));
  EXPECT_TRUE(Whole("[c]", "a | b | c"));
  EXPECT_TRUE(Whole("[a x x b]", "a ?* b"));
}

TEST_F(NfaTest, PruneIsTransparentToTheLanguage) {
  EXPECT_TRUE(Whole("[a b c]", "a !? c"));
  EXPECT_TRUE(Whole("[a b c]", "!a ? c"));
}

TEST_F(NfaTest, PointsEpsilonOrConsume) {
  EXPECT_TRUE(Whole("[a @x b]", "a @x b"));
  EXPECT_TRUE(Whole("[a b]", "a @x b"));
  EXPECT_FALSE(Whole("[a @y b]", "a @x b"));
  // Predicates and ? do not see instance points.
  EXPECT_FALSE(Whole("[a @x b]", "a ? b"));
}

TEST_F(NfaTest, ExistsMatchBothModes) {
  for (bool search : {false, true}) {
    EXPECT_TRUE(Exists("[x a b y]", "a b", search)) << search;
    EXPECT_FALSE(Exists("[x a y]", "a b", search)) << search;
    EXPECT_TRUE(Exists("[x]", "a*", search)) << search;  // empty match
    EXPECT_TRUE(Exists("[a]", "a", search)) << search;
  }
}

TEST_F(NfaTest, AgreesWithBacktrackingMatcher) {
  // Cross-check the two list-matching engines over a pattern battery.
  const char* kPatterns[] = {"a b",   "a ?* c", "[[a | b]]+", "a+ b*",
                             "?* c ?*", "[[a b]]* c"};
  const char* kLists[] = {"[a b c]", "[c b a]", "[a a b b c c]",
                          "[a b a b c]", "[]", "[c]"};
  for (const char* pat : kPatterns) {
    auto anchored = LP(pat);
    ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::Compile(anchored.body));
    for (const char* lst : kLists) {
      List l = L(lst);
      ListMatcher matcher(store_, l);
      ASSERT_OK_AND_ASSIGN(bool expected, matcher.MatchesWhole(anchored.body));
      EXPECT_EQ(nfa.MatchesWhole(store_, l), expected)
          << pat << " over " << lst;
    }
  }
}

TEST_F(NfaTest, CountMatchEnds) {
  ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::CompileSearch(LP("a").body));
  List l = L("[a b a a]");
  EXPECT_EQ(nfa.CountMatchEnds(store_, l), 3u);
}

TEST_F(NfaTest, CompileRejectsTreeAtomsAndNull) {
  auto bad = ListPattern::TreeAtom(TreePattern::AnyLeaf());
  EXPECT_TRUE(Nfa::Compile(bad).status().IsInvalidArgument());
  EXPECT_TRUE(Nfa::Compile(nullptr).status().IsInvalidArgument());
}

TEST_F(NfaTest, StateCountIsLinearInPattern) {
  ASSERT_OK_AND_ASSIGN(Nfa small, Nfa::Compile(LP("a b").body));
  ASSERT_OK_AND_ASSIGN(Nfa big, Nfa::Compile(LP("a b c d e f g h").body));
  EXPECT_LT(small.num_states(), big.num_states());
  EXPECT_LT(big.num_states(), 64u);
}

}  // namespace
}  // namespace aqua
