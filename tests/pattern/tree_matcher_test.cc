#include "pattern/tree_matcher.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class TreeMatcherTest : public testing::AquaTestBase {
 protected:
  std::vector<TreeMatch> Find(const std::string& tree_lit,
                              const std::string& pattern,
                              TreeMatchOptions opts = {}) {
    tree_ = T(tree_lit);
    TreeMatcher matcher(store_, tree_, opts);
    auto matches = matcher.FindAll(TP(pattern));
    EXPECT_TRUE(matches.ok()) << matches.status().ToString() << " for "
                              << pattern << " over " << tree_lit;
    return matches.ok() ? *matches : std::vector<TreeMatch>{};
  }

  std::string NameOf(NodeId v) const {
    const NodePayload& p = tree_.payload(v);
    return p.is_cell() ? label_(p.oid()) : "@" + p.label();
  }

  std::string MatchedNames(const TreeMatch& m) const {
    std::string out;
    for (NodeId v : m.matched) {
      if (!out.empty()) out += " ";
      out += NameOf(v);
    }
    return out;
  }

  std::string CutNames(const TreeMatch& m) const {
    std::string out;
    for (const TreeCut& c : m.cuts) {
      if (!out.empty()) out += " ";
      out += NameOf(c.node);
      if (c.from_prune) out += "!";
    }
    return out;
  }

  Tree tree_;
};

TEST_F(TreeMatcherTest, LeafPatternMatchesEveryNodeWithThatName) {
  auto matches = Find("a(b a(b))", "b");
  ASSERT_EQ(matches.size(), 2u);
  for (const auto& m : matches) EXPECT_EQ(MatchedNames(m), "b");
}

TEST_F(TreeMatcherTest, LeafPatternCutsChildrenAsDescendants) {
  auto matches = Find("a(b(c d))", "b");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(MatchedNames(matches[0]), "b");
  EXPECT_EQ(CutNames(matches[0]), "c d");  // descendants, not prunes
}

TEST_F(TreeMatcherTest, NodePatternRequiresFullChildCoverage) {
  // b(d e) matches only a b-node whose children are exactly d, e.
  auto exact = Find("a(b(d e))", "b(d e)");
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(MatchedNames(exact[0]), "b d e");

  EXPECT_TRUE(Find("a(b(d e f))", "b(d e)").empty());
  EXPECT_TRUE(Find("a(b(d))", "b(d e)").empty());
  // Padding with ?* restores partial matching, as the paper's examples do.
  EXPECT_EQ(Find("a(b(d e f))", "b(d e ?*)").size(), 1u);
}

TEST_F(TreeMatcherTest, PaperMatExample) {
  // Figure 4's shape: "Mat"(? "Ed") — a node with exactly two children.
  tree_ = T("root(mat(x ed(deep)) mat(y))");
  TreeMatcher matcher(store_, tree_);
  auto matches = matcher.FindAll(TP("mat(? ed)"));
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ(MatchedNames((*matches)[0]), "mat x ed");
  // ed's child `deep` is a descendant cut.
  EXPECT_EQ(CutNames((*matches)[0]), "deep");
}

TEST_F(TreeMatcherTest, FamilyTreeSplitPattern) {
  ASSERT_OK_AND_ASSIGN(Tree family, MakePaperFamilyTree(store_));
  TreeMatcher matcher(store_, family);
  PatternParserOptions popts;
  PredicateEnv env;
  env.Bind("Brazil", Predicate::AttrEquals("citizen", Value::String("Brazil")));
  env.Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));
  popts.env = &env;
  ASSERT_OK_AND_ASSIGN(TreePatternRef tp,
                       ParseTreePattern("Brazil(!?* USA !?*)", popts));
  ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(tp));
  ASSERT_EQ(matches.size(), 1u);
  const TreeMatch& m = matches[0];
  LabelFn name = AttrLabelFn(&store_, "name");
  EXPECT_EQ(name(family.payload(m.root).oid()), "Gen");
  ASSERT_EQ(m.matched.size(), 2u);  // Gen and John
  ASSERT_EQ(m.cuts.size(), 2u);    // Joe (pruned), Mary (descendant)
  EXPECT_TRUE(m.cuts[0].from_prune);
  EXPECT_FALSE(m.cuts[1].from_prune);
  EXPECT_EQ(name(family.payload(m.cuts[0].node).oid()), "Joe");
  EXPECT_EQ(name(family.payload(m.cuts[1].node).oid()), "Mary");
}

TEST_F(TreeMatcherTest, Disjunction) {
  auto matches = Find("a(b c)", "b | c");
  EXPECT_EQ(matches.size(), 2u);
}

TEST_F(TreeMatcherTest, RootAnchor) {
  auto anchored = Find("a(b a(c))", "^a");
  ASSERT_EQ(anchored.size(), 1u);
  EXPECT_EQ(anchored[0].root, tree_.root());
  EXPECT_EQ(Find("a(b a(c))", "a").size(), 2u);
}

TEST_F(TreeMatcherTest, LeafAnchor) {
  // b(d e)⊥ requires d and e to be tree leaves.
  EXPECT_EQ(Find("a(b(d e))", "[[b(d e)]]$").size(), 1u);
  EXPECT_TRUE(Find("a(b(d(x) e))", "[[b(d e)]]$").empty());
  // Without the anchor, the deeper tree matches with a cut.
  EXPECT_EQ(Find("a(b(d(x) e))", "b(d e)").size(), 1u);
}

TEST_F(TreeMatcherTest, PaperLeafAnchorExample) {
  // §3.3: b(d e⊥) matches in b(d(f g) e) — wait, the paper's ⊥ applies to
  // the whole pattern; both ⊤b(d e) and b(d e)⊥ match inside the second
  // tree of Figure 1 at its root. Here: the root-anchored form.
  tree_ = T("b(d(f g) e)");
  TreeMatcher matcher(store_, tree_);
  ASSERT_OK_AND_ASSIGN(auto top, matcher.FindAll(TP("^b(d e)")));
  EXPECT_EQ(top.size(), 1u);
  // Leaf-anchored fails (d has children f g).
  ASSERT_OK_AND_ASSIGN(auto leaf, matcher.FindAll(TP("[[b(d e)]]$")));
  EXPECT_TRUE(leaf.empty());
}

TEST_F(TreeMatcherTest, VariableArity) {
  // §5: printf(?* LargeData ?* LargeData ?*).
  tree_ = T("root(printf(x LargeData y LargeData) printf(LargeData z))");
  TreeMatcher matcher(store_, tree_);
  ASSERT_OK_AND_ASSIGN(
      auto matches,
      matcher.FindAll(TP("printf(?* LargeData ?* LargeData ?*)")));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(MatchedNames(matches[0]), "printf x LargeData y LargeData");
}

TEST_F(TreeMatcherTest, PruneWholePattern) {
  auto matches = Find("a(b(c))", "!b");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(matches[0].matched.empty());
  EXPECT_EQ(CutNames(matches[0]), "b!");
}

TEST_F(TreeMatcherTest, PruneInsideChildren) {
  // select(!? and): keep select and and, cut the first child's subtree.
  tree_ = T("select(R(s t) and(p q))");
  TreeMatcher matcher(store_, tree_);
  ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(TP("select(!? and)")));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(MatchedNames(matches[0]), "select and");
  // Cuts in match order: R (pruned), then and's children p, q.
  EXPECT_EQ(CutNames(matches[0]), "R! p q");
}

TEST_F(TreeMatcherTest, ConcatAtComposition) {
  // Figure 1: [[a(@1 @2) .@1 b(d(f g) e)]] .@2 c over the composed tree.
  tree_ = T("a(b(d(f g) e) c)");
  TreeMatcher matcher(store_, tree_);
  ASSERT_OK_AND_ASSIGN(
      auto matches,
      matcher.FindAll(TP("[[a(@1 @2) .@1 [[b(d(f g) e)]]]] .@2 c")));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].root, tree_.root());
  EXPECT_EQ(matches[0].matched.size(), 7u);
  EXPECT_TRUE(matches[0].cuts.empty());
}

TEST_F(TreeMatcherTest, ConcatAtWithoutPointIsFirstOperand) {
  // §3.3: no α in the first tree -> the concatenation is just the first.
  auto matches = Find("a(b)", "[[a(b)]] .@zz c");
  EXPECT_EQ(matches.size(), 1u);
}

TEST_F(TreeMatcherTest, StarClosureUnrolls) {
  // [[a(b c @x)]]*@x — Figure 2's language members appear as matches.
  for (const char* lit : {"a(b c)", "a(b c a(b c))", "a(b c a(b c a(b c)))"}) {
    tree_ = T(lit);
    TreeMatcher matcher(store_, tree_);
    ASSERT_OK_AND_ASSIGN(auto matches,
                         matcher.FindAll(TP("^[[a(b c @x)]]*@x")));
    EXPECT_EQ(matches.size(), 1u) << lit;
  }
  // A tree outside the language does not match at the root.
  tree_ = T("a(b a(b c))");
  TreeMatcher matcher(store_, tree_);
  ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(TP("^[[a(b c @x)]]*@x")));
  EXPECT_TRUE(matches.empty());
}

TEST_F(TreeMatcherTest, PlusClosureRequiresOneIteration) {
  tree_ = T("a(b c)");
  TreeMatcher matcher(store_, tree_);
  ASSERT_OK_AND_ASSIGN(auto one, matcher.FindAll(TP("^[[a(b c @x)]]+@x")));
  EXPECT_EQ(one.size(), 1u);
  // The zero-iteration case (nil) never matches a nonempty root, so + and *
  // agree on nonempty trees rooted in the language.
  ASSERT_OK_AND_ASSIGN(auto star, matcher.FindAll(TP("^[[a(b c @x)]]*@x")));
  EXPECT_EQ(star.size(), one.size());
}

TEST_F(TreeMatcherTest, ListLikeClosureChain) {
  // §6: [d [[a c]]* b] as d(@1) ∘@1 [[a(c(@2))]]*@2 ∘@2 b over chains.
  const char* pattern = "[[d(@1) .@1 [[a(c(@2))]]*@2]] .@2 b";
  for (const char* lit : {"d(b)", "d(a(c(b)))", "d(a(c(a(c(b)))))"}) {
    tree_ = T(lit);
    TreeMatcher matcher(store_, tree_);
    ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(TP(pattern)));
    EXPECT_EQ(matches.size(), 1u) << lit;
    if (!matches.empty()) EXPECT_EQ(matches[0].root, tree_.root());
  }
  for (const char* lit : {"d(a(b))", "d(a(c(a(b))))", "b"}) {
    tree_ = T(lit);
    TreeMatcher matcher(store_, tree_);
    ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(TP(pattern)));
    for (const auto& m : matches) EXPECT_NE(m.root, tree_.root()) << lit;
  }
}

TEST_F(TreeMatcherTest, InstancePointMatchesPatternPoint) {
  auto matches = Find("a(@x b)", "a(@x b)");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(MatchedNames(matches[0]), "a @x b");
}

TEST_F(TreeMatcherTest, FreePointClosesWithNull) {
  // a(@x b) also matches a node with just the b child (point -> NULL).
  auto matches = Find("a(b)", "a(@x b)");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(MatchedNames(matches[0]), "a b");
}

TEST_F(TreeMatcherTest, MatchesAtAndAnywhere) {
  tree_ = T("a(b(c))");
  TreeMatcher matcher(store_, tree_);
  NodeId b = tree_.children(tree_.root())[0];
  ASSERT_OK_AND_ASSIGN(bool at_b, matcher.MatchesAt(TP("b(c)"), b));
  EXPECT_TRUE(at_b);
  ASSERT_OK_AND_ASSIGN(bool at_root, matcher.MatchesAt(TP("b(c)"),
                                                       tree_.root()));
  EXPECT_FALSE(at_root);
  ASSERT_OK_AND_ASSIGN(bool anywhere, matcher.MatchesAnywhere(TP("c")));
  EXPECT_TRUE(anywhere);
  ASSERT_OK_AND_ASSIGN(bool nowhere, matcher.MatchesAnywhere(TP("zz")));
  EXPECT_FALSE(nowhere);
  EXPECT_TRUE(matcher.MatchesAt(TP("a"), 999).status().IsOutOfRange());
}

TEST_F(TreeMatcherTest, FindAllAtRootsRestricts) {
  tree_ = T("a(b b)");
  TreeMatcher matcher(store_, tree_);
  NodeId second_b = tree_.children(tree_.root())[1];
  ASSERT_OK_AND_ASSIGN(auto matches,
                       matcher.FindAllAtRoots(TP("b"), {second_b}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].root, second_b);
  EXPECT_TRUE(
      matcher.FindAllAtRoots(TP("b"), {9999}).status().IsOutOfRange());
}

TEST_F(TreeMatcherTest, MemoizationPreservesResults) {
  TreeMatchOptions memo_on;
  TreeMatchOptions memo_off;
  memo_off.memoize = false;
  auto with = Find("a(b(c d) b(c))", "b(!?* c !?*)", memo_on);
  auto without = Find("a(b(c d) b(c))", "b(!?* c !?*)", memo_off);
  EXPECT_EQ(with.size(), without.size());
}

TEST_F(TreeMatcherTest, IdenticalDerivationsAreDeduplicated) {
  // `b(!?* !?*)` decomposes {c, d} between the two pruned stars in three
  // ways, but every decomposition yields the same cuts — one match.
  auto all = Find("a(b(c d))", "b(!?* !?*)");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(CutNames(all[0]), "c! d!");
}

TEST_F(TreeMatcherTest, FirstDerivationPerRootOption) {
  // `b(!?* ?*)` has genuinely distinct decompositions: the boundary between
  // pruned and matched children moves.
  auto all = Find("a(b(c d))", "b(!?* ?*)");
  EXPECT_EQ(all.size(), 3u);
  TreeMatchOptions opts;
  opts.first_derivation_per_root = true;
  auto first = Find("a(b(c d))", "b(!?* ?*)", opts);
  EXPECT_EQ(first.size(), 1u);
}

TEST_F(TreeMatcherTest, MaxMatchesBound) {
  TreeMatchOptions opts;
  opts.max_matches = 2;
  auto matches = Find("a(b b b b b)", "b", opts);
  EXPECT_EQ(matches.size(), 2u);
}

TEST_F(TreeMatcherTest, EmptyTreeHasNoMatches) {
  Tree empty;
  TreeMatcher matcher(store_, empty);
  ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(TP("a")));
  EXPECT_TRUE(matches.empty());
  ASSERT_OK_AND_ASSIGN(bool anywhere, matcher.MatchesAnywhere(TP("a")));
  EXPECT_FALSE(anywhere);
}

TEST_F(TreeMatcherTest, NullPatternRejected) {
  tree_ = T("a");
  TreeMatcher matcher(store_, tree_);
  EXPECT_TRUE(matcher.FindAll(nullptr).status().IsInvalidArgument());
}

TEST_F(TreeMatcherTest, StepsCounterAdvances) {
  tree_ = T("a(b c)");
  TreeMatcher matcher(store_, tree_);
  ASSERT_OK(matcher.FindAll(TP("a(?*)")).status());
  EXPECT_GT(matcher.steps(), 0u);
}

}  // namespace
}  // namespace aqua
