#include "pattern/list_matcher.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class ListMatcherTest : public testing::AquaTestBase {
 protected:
  std::vector<ListMatch> Find(const std::string& list_lit,
                              const std::string& pattern,
                              ListMatchOptions opts = {}) {
    list_ = L(list_lit);
    ListMatcher matcher(store_, list_);
    auto matches = matcher.FindAll(LP(pattern), opts);
    EXPECT_TRUE(matches.ok()) << matches.status().ToString();
    return matches.ok() ? *matches : std::vector<ListMatch>{};
  }

  bool Whole(const std::string& list_lit, const std::string& pattern) {
    list_ = L(list_lit);
    ListMatcher matcher(store_, list_);
    auto r = matcher.MatchesWhole(LP(pattern).body);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && *r;
  }

  List list_;
};

TEST_F(ListMatcherTest, SingleAtom) {
  auto matches = Find("[a b a]", "a");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].begin, 0u);
  EXPECT_EQ(matches[0].end, 1u);
  EXPECT_EQ(matches[1].begin, 2u);
}

TEST_F(ListMatcherTest, MelodyFixedPattern) {
  // §6: sub_select([A??F]) — the melody query shape.
  auto matches = Find("[a x y f b a q r f]", "a ? ? f");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].begin, 0u);
  EXPECT_EQ(matches[0].end, 4u);
  EXPECT_EQ(matches[1].begin, 5u);
  EXPECT_EQ(matches[1].end, 9u);
}

TEST_F(ListMatcherTest, Disjunction) {
  auto matches = Find("[a b c]", "a | c");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].begin, 0u);
  EXPECT_EQ(matches[1].begin, 2u);
}

TEST_F(ListMatcherTest, StarEnumeratesAllExtents) {
  auto matches = Find("[a a]", "a*");
  // Extents: [0,0) [0,1) [0,2) [1,1) [1,2) [2,2).
  EXPECT_EQ(matches.size(), 6u);
}

TEST_F(ListMatcherTest, PlusRequiresOne) {
  auto matches = Find("[a a b]", "a+");
  // [0,1) [0,2) [1,2).
  EXPECT_EQ(matches.size(), 3u);
}

TEST_F(ListMatcherTest, AnchorsRestrictExtents) {
  auto begin_anchored = Find("[a b a]", "^a");
  ASSERT_EQ(begin_anchored.size(), 1u);
  EXPECT_EQ(begin_anchored[0].begin, 0u);

  auto end_anchored = Find("[a b a]", "a$");
  ASSERT_EQ(end_anchored.size(), 1u);
  EXPECT_EQ(end_anchored[0].begin, 2u);

  auto both = Find("[a b a]", "^a ? a$");
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].end, 3u);
}

TEST_F(ListMatcherTest, WholeListMembership) {
  EXPECT_TRUE(Whole("[a b c]", "a b c"));
  EXPECT_TRUE(Whole("[a b c]", "a ?* c"));
  EXPECT_FALSE(Whole("[a b c]", "a b"));
  EXPECT_TRUE(Whole("[]", "a*"));
  EXPECT_FALSE(Whole("[]", "a+"));
}

TEST_F(ListMatcherTest, PredicateAtoms) {
  ASSERT_OK(RegisterNoteType(store_));
  List song;
  for (const char* pitch : {"A", "C", "E", "F"}) {
    auto note = store_.Create("Note", {{"pitch", Value::String(pitch)},
                                       {"duration", Value::Int(4)}});
    ASSERT_OK(note);
    song.Append(NodePayload::Cell(*note));
  }
  ListMatcher matcher(store_, song);
  ASSERT_OK_AND_ASSIGN(
      auto matches,
      matcher.FindAll(LP("{pitch == \"A\"} ? ? {pitch == \"F\"}")));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].begin, 0u);
  EXPECT_EQ(matches[0].end, 4u);
}

TEST_F(ListMatcherTest, PruneRecordsPositions) {
  auto matches = Find("[x a b c y]", "a !?* c");
  // Only one derivation reaches c: !?* consumes b.
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].begin, 1u);
  EXPECT_EQ(matches[0].end, 4u);
  ASSERT_EQ(matches[0].pruned.size(), 1u);
  EXPECT_EQ(matches[0].pruned[0], 2u);
}

TEST_F(ListMatcherTest, PruneRanges) {
  ListMatch m;
  m.begin = 0;
  m.end = 8;
  m.pruned = {1, 2, 3, 5, 7};
  auto ranges = m.PruneRanges();
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{1, 4}));
  EXPECT_EQ(ranges[1], (std::pair<size_t, size_t>{5, 6}));
  EXPECT_EQ(ranges[2], (std::pair<size_t, size_t>{7, 8}));
}

TEST_F(ListMatcherTest, DistinctPruneDecompositionsAreDistinctMatches) {
  auto matches = Find("[a a]", "!a* a*");
  // Extent [0,2) admits prunes {}, {0}, {0,1}; plus extents of length 0/1.
  size_t with_two = 0;
  for (const auto& m : matches) {
    if (m.begin == 0 && m.end == 2) ++with_two;
  }
  EXPECT_EQ(with_two, 3u);
}

TEST_F(ListMatcherTest, DistinctExtentsOnlyOption) {
  ListMatchOptions opts;
  opts.distinct_extents_only = true;
  auto matches = Find("[a a]", "!a* a*", opts);
  size_t with_two = 0;
  for (const auto& m : matches) {
    if (m.begin == 0 && m.end == 2) ++with_two;
  }
  EXPECT_EQ(with_two, 1u);
}

TEST_F(ListMatcherTest, MaxMatchesBound) {
  ListMatchOptions opts;
  opts.max_matches = 2;
  auto matches = Find("[a a a a a a]", "a", opts);
  EXPECT_EQ(matches.size(), 2u);
}

TEST_F(ListMatcherTest, InstancePointsAreInvisibleToPredicates) {
  // §3.5: only concatenation sees labeled NULLs; `?` skips them too.
  auto matches = Find("[a @x b]", "a ? b");
  EXPECT_TRUE(matches.empty());
  auto with_point = Find("[a @x b]", "a @x b");
  ASSERT_EQ(with_point.size(), 1u);
  EXPECT_EQ(with_point[0].end, 3u);
}

TEST_F(ListMatcherTest, PatternPointMayCloseWithNull) {
  // `@x` consumes an instance point or nothing.
  auto matches = Find("[a b]", "a @x b");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].end, 2u);
}

TEST_F(ListMatcherTest, PointLabelMustAgree) {
  EXPECT_TRUE(Find("[a @y b]", "a @x b").empty());
}

TEST_F(ListMatcherTest, GroupingAndNesting) {
  auto matches = Find("[a b a b c]", "[[a b]]+ c");
  // Two iterations from 0, or one iteration from 2.
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].begin, 0u);
  EXPECT_EQ(matches[0].end, 5u);
  EXPECT_EQ(matches[1].begin, 2u);
  EXPECT_EQ(matches[1].end, 5u);
}

TEST_F(ListMatcherTest, NullableStarOfNullableDoesNotLoop) {
  // [[a*]]* must terminate despite its nullable body.
  auto matches = Find("[a]", "[[a*]]*");
  EXPECT_FALSE(matches.empty());
}

TEST_F(ListMatcherTest, TreeAtomRejected) {
  list_ = L("[a]");
  ListMatcher matcher(store_, list_);
  AnchoredListPattern bad;
  bad.body = ListPattern::TreeAtom(TreePattern::AnyLeaf());
  EXPECT_TRUE(matcher.FindAll(bad).status().IsInvalidArgument());
  AnchoredListPattern null_pattern;
  EXPECT_TRUE(matcher.FindAll(null_pattern).status().IsInvalidArgument());
}

TEST_F(ListMatcherTest, FindAllAtBeginsRestricts) {
  list_ = L("[a b a b]");
  ListMatcher matcher(store_, list_);
  ASSERT_OK_AND_ASSIGN(auto matches,
                       matcher.FindAllAtBegins(LP("a b"), {2}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].begin, 2u);
  // Begin anchor restricts further.
  ASSERT_OK_AND_ASSIGN(auto anchored,
                       matcher.FindAllAtBegins(LP("^a b"), {0, 2}));
  ASSERT_EQ(anchored.size(), 1u);
  EXPECT_EQ(anchored[0].begin, 0u);
  EXPECT_TRUE(
      matcher.FindAllAtBegins(LP("a"), {99}).status().IsOutOfRange());
}

TEST_F(ListMatcherTest, StepsCounterAdvances) {
  list_ = L("[a b c d]");
  ListMatcher matcher(store_, list_);
  ASSERT_OK(matcher.FindAll(LP("?*")).status());
  EXPECT_GT(matcher.steps(), 0u);
}

}  // namespace
}  // namespace aqua
