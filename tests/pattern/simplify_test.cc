#include "pattern/simplify.h"

#include <gtest/gtest.h>

#include "pattern/alphabet.h"
#include "test_util.h"

namespace aqua {
namespace {

class SimplifyTest : public testing::AquaTestBase {
 protected:
  std::string SimplifiedList(const std::string& pattern) {
    auto lp = LP(pattern);
    return SimplifyListPattern(lp.body)->ToString();
  }
  std::string SimplifiedTree(const std::string& pattern) {
    return SimplifyTreePattern(TP(pattern))->ToString();
  }
};

TEST_F(SimplifyTest, ConcatFlattening) {
  auto nested = ListPattern::Concat(
      {ListPattern::Any(),
       ListPattern::Concat({ListPattern::Any(), ListPattern::Any()})});
  auto flat = SimplifyListPattern(nested);
  ASSERT_EQ(flat->kind(), ListPattern::Kind::kConcat);
  EXPECT_EQ(flat->parts().size(), 3u);
}

TEST_F(SimplifyTest, SingletonUnwrap) {
  auto single = ListPattern::Concat({ListPattern::Any()});
  EXPECT_EQ(SimplifyListPattern(single)->kind(), ListPattern::Kind::kAny);
  auto single_alt = ListPattern::Alt({ListPattern::Any()});
  EXPECT_EQ(SimplifyListPattern(single_alt)->kind(), ListPattern::Kind::kAny);
}

TEST_F(SimplifyTest, AltDeduplication) {
  EXPECT_EQ(SimplifiedList("a | a | b"),
            "[[{name == \"a\"} | {name == \"b\"}]]");
  EXPECT_EQ(SimplifiedList("a | a"), "{name == \"a\"}");
}

TEST_F(SimplifyTest, ClosureCollapses) {
  EXPECT_EQ(SimplifiedList("[[a*]]*"), "{name == \"a\"}*");
  EXPECT_EQ(SimplifiedList("[[a+]]*"), "{name == \"a\"}*");
  EXPECT_EQ(SimplifiedList("[[a*]]+"), "{name == \"a\"}*");
  EXPECT_EQ(SimplifiedList("[[a+]]+"), "{name == \"a\"}+");
  EXPECT_EQ(SimplifiedList("!!a"), "!{name == \"a\"}");
}

TEST_F(SimplifyTest, TreeAltAndAnchors) {
  EXPECT_EQ(SimplifiedTree("a | a"), "{name == \"a\"}");
  EXPECT_EQ(SimplifiedTree("!!a"), "!{name == \"a\"}");
  // Double anchors (buildable only through the API) collapse.
  auto double_root = TreePattern::RootAnchor(TreePattern::RootAnchor(TP("a")));
  EXPECT_EQ(SimplifyTreePattern(double_root)->ToString(),
            "^{name == \"a\"}");
  auto double_leaf = TreePattern::LeafAnchor(TreePattern::LeafAnchor(TP("a")));
  EXPECT_EQ(SimplifyTreePattern(double_leaf)->ToString(),
            "[[{name == \"a\"}]]$");
}

TEST_F(SimplifyTest, ConcatAtWithoutFreePointDropsSecond) {
  // §3.3's identity becomes a static simplification.
  EXPECT_EQ(SimplifiedTree("a(b) .@zz c"), "{name == \"a\"}({name == \"b\"})");
  // With a free point the concatenation stays.
  EXPECT_EQ(SimplifiedTree("a(@zz) .@zz c"),
            "[[{name == \"a\"}(@zz) .@zz {name == \"c\"}]]");
}

TEST_F(SimplifyTest, ChildrenSequencesSimplifiedRecursively) {
  EXPECT_EQ(SimplifiedTree("r([[a*]]* b)"),
            "{name == \"r\"}({name == \"a\"}* {name == \"b\"})");
}

TEST_F(SimplifyTest, DuplicatePredicatesCollapseToOneNode) {
  // Two structurally equal predicate atoms: after simplification the later
  // occurrence aliases the first (pointer identity), so pointer-keyed
  // downstream caches see one predicate.
  auto p1 = Predicate::AttrEquals("name", Value::String("a"));
  auto p2 = Predicate::AttrEquals("name", Value::String("a"));
  ASSERT_NE(p1.get(), p2.get());
  auto pattern = ListPattern::Concat(
      {ListPattern::Pred(p1), ListPattern::Any(), ListPattern::Pred(p2)});
  auto simplified = SimplifyListPattern(pattern);
  ASSERT_EQ(simplified->kind(), ListPattern::Kind::kConcat);
  ASSERT_EQ(simplified->parts().size(), 3u);
  // The first occurrence is untouched; the duplicate now shares its node.
  EXPECT_EQ(simplified->parts()[0]->pred().get(), p1.get());
  EXPECT_EQ(simplified->parts()[2]->pred().get(), p1.get());
}

TEST_F(SimplifyTest, TreePredicatesDedupeAcrossLeavesAndNodes) {
  auto p1 = Predicate::AttrEquals("name", Value::String("a"));
  auto p2 = Predicate::AttrEquals("name", Value::String("a"));
  auto pattern = TreePattern::Node(
      p1, ListPattern::Concat({ListPattern::Pred(
               Predicate::AttrEquals("name", Value::String("b"))),
           ListPattern::TreeAtom(TreePattern::Leaf(p2))}));
  auto simplified = SimplifyTreePattern(pattern);
  ASSERT_EQ(simplified->kind(), TreePattern::Kind::kNode);
  const auto& parts = simplified->children()->parts();
  ASSERT_EQ(parts.size(), 2u);
  // The node predicate and the structurally equal leaf predicate collapse
  // to one canonical node (whichever the traversal saw first).
  EXPECT_EQ(simplified->pred().get(), parts[1]->tree_atom()->pred().get());
  EXPECT_TRUE(simplified->pred().get() == p1.get() ||
              simplified->pred().get() == p2.get());
}

TEST_F(SimplifyTest, SharedInternerDedupesAcrossPatterns) {
  // The batch compiler passes one interner across a query group: the
  // second pattern's predicates alias the first pattern's.
  PredicateInterner interner;
  auto a1 = SimplifyListPattern(LP("a b").body, &interner);
  auto a2 = SimplifyListPattern(LP("a c").body, &interner);
  EXPECT_EQ(a1->parts()[0]->pred().get(), a2->parts()[0]->pred().get());
  EXPECT_NE(a1->parts()[1]->pred().get(), a2->parts()[1]->pred().get());
  // A null interner disables deduplication: the two structurally equal
  // predicates stay distinct nodes.
  auto lp = LP("a ? a");
  auto kept = SimplifyListPattern(lp.body, nullptr);
  EXPECT_EQ(kept->parts()[0]->pred().get(), lp.body->parts()[0]->pred().get());
  EXPECT_NE(kept->parts()[0]->pred().get(), kept->parts()[2]->pred().get());
}

TEST_F(SimplifyTest, NullPatternsPassThrough) {
  EXPECT_EQ(SimplifyListPattern(nullptr), nullptr);
  EXPECT_EQ(SimplifyTreePattern(nullptr), nullptr);
}

TEST_F(SimplifyTest, SimplificationPreservesListLanguage) {
  const char* kPatterns[] = {"[[a*]]* b", "a | a | b", "!!a ?", "[[a+]]+",
                             "[[a [[b c]]]] d"};
  const char* kLists[] = {"[a b]", "[a a a b]", "[b]", "[a b c d]", "[]"};
  for (const char* pat : kPatterns) {
    auto original = LP(pat);
    AnchoredListPattern simplified{SimplifyListPattern(original.body),
                                   original.anchor_begin,
                                   original.anchor_end};
    for (const char* lst : kLists) {
      List l = L(lst);
      ListMatcher m1(store_, l), m2(store_, l);
      ASSERT_OK_AND_ASSIGN(bool before, m1.MatchesWhole(original.body));
      ASSERT_OK_AND_ASSIGN(bool after, m2.MatchesWhole(simplified.body));
      EXPECT_EQ(before, after) << pat << " over " << lst;
    }
  }
}

TEST_F(SimplifyTest, SimplificationPreservesTreeMatches) {
  Tree t = T("r(a(b) a(b(c)) d)");
  std::vector<TreePatternRef> patterns = {
      TP("a | a"), TP("a(b) .@zz c"), TP("!!a"),
      TreePattern::RootAnchor(TreePattern::RootAnchor(TP("r(?*)")))};
  for (const auto& original : patterns) {
    auto simplified = SimplifyTreePattern(original);
    TreeMatcher m1(store_, t), m2(store_, t);
    ASSERT_OK_AND_ASSIGN(auto before, m1.FindAll(original));
    ASSERT_OK_AND_ASSIGN(auto after, m2.FindAll(simplified));
    EXPECT_EQ(before.size(), after.size()) << original->ToString();
  }
}

}  // namespace
}  // namespace aqua
