#include "pattern/simplify.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class SimplifyTest : public testing::AquaTestBase {
 protected:
  std::string SimplifiedList(const std::string& pattern) {
    auto lp = LP(pattern);
    return SimplifyListPattern(lp.body)->ToString();
  }
  std::string SimplifiedTree(const std::string& pattern) {
    return SimplifyTreePattern(TP(pattern))->ToString();
  }
};

TEST_F(SimplifyTest, ConcatFlattening) {
  auto nested = ListPattern::Concat(
      {ListPattern::Any(),
       ListPattern::Concat({ListPattern::Any(), ListPattern::Any()})});
  auto flat = SimplifyListPattern(nested);
  ASSERT_EQ(flat->kind(), ListPattern::Kind::kConcat);
  EXPECT_EQ(flat->parts().size(), 3u);
}

TEST_F(SimplifyTest, SingletonUnwrap) {
  auto single = ListPattern::Concat({ListPattern::Any()});
  EXPECT_EQ(SimplifyListPattern(single)->kind(), ListPattern::Kind::kAny);
  auto single_alt = ListPattern::Alt({ListPattern::Any()});
  EXPECT_EQ(SimplifyListPattern(single_alt)->kind(), ListPattern::Kind::kAny);
}

TEST_F(SimplifyTest, AltDeduplication) {
  EXPECT_EQ(SimplifiedList("a | a | b"),
            "[[{name == \"a\"} | {name == \"b\"}]]");
  EXPECT_EQ(SimplifiedList("a | a"), "{name == \"a\"}");
}

TEST_F(SimplifyTest, ClosureCollapses) {
  EXPECT_EQ(SimplifiedList("[[a*]]*"), "{name == \"a\"}*");
  EXPECT_EQ(SimplifiedList("[[a+]]*"), "{name == \"a\"}*");
  EXPECT_EQ(SimplifiedList("[[a*]]+"), "{name == \"a\"}*");
  EXPECT_EQ(SimplifiedList("[[a+]]+"), "{name == \"a\"}+");
  EXPECT_EQ(SimplifiedList("!!a"), "!{name == \"a\"}");
}

TEST_F(SimplifyTest, TreeAltAndAnchors) {
  EXPECT_EQ(SimplifiedTree("a | a"), "{name == \"a\"}");
  EXPECT_EQ(SimplifiedTree("!!a"), "!{name == \"a\"}");
  // Double anchors (buildable only through the API) collapse.
  auto double_root = TreePattern::RootAnchor(TreePattern::RootAnchor(TP("a")));
  EXPECT_EQ(SimplifyTreePattern(double_root)->ToString(),
            "^{name == \"a\"}");
  auto double_leaf = TreePattern::LeafAnchor(TreePattern::LeafAnchor(TP("a")));
  EXPECT_EQ(SimplifyTreePattern(double_leaf)->ToString(),
            "[[{name == \"a\"}]]$");
}

TEST_F(SimplifyTest, ConcatAtWithoutFreePointDropsSecond) {
  // §3.3's identity becomes a static simplification.
  EXPECT_EQ(SimplifiedTree("a(b) .@zz c"), "{name == \"a\"}({name == \"b\"})");
  // With a free point the concatenation stays.
  EXPECT_EQ(SimplifiedTree("a(@zz) .@zz c"),
            "[[{name == \"a\"}(@zz) .@zz {name == \"c\"}]]");
}

TEST_F(SimplifyTest, ChildrenSequencesSimplifiedRecursively) {
  EXPECT_EQ(SimplifiedTree("r([[a*]]* b)"),
            "{name == \"r\"}({name == \"a\"}* {name == \"b\"})");
}

TEST_F(SimplifyTest, NullPatternsPassThrough) {
  EXPECT_EQ(SimplifyListPattern(nullptr), nullptr);
  EXPECT_EQ(SimplifyTreePattern(nullptr), nullptr);
}

TEST_F(SimplifyTest, SimplificationPreservesListLanguage) {
  const char* kPatterns[] = {"[[a*]]* b", "a | a | b", "!!a ?", "[[a+]]+",
                             "[[a [[b c]]]] d"};
  const char* kLists[] = {"[a b]", "[a a a b]", "[b]", "[a b c d]", "[]"};
  for (const char* pat : kPatterns) {
    auto original = LP(pat);
    AnchoredListPattern simplified{SimplifyListPattern(original.body),
                                   original.anchor_begin,
                                   original.anchor_end};
    for (const char* lst : kLists) {
      List l = L(lst);
      ListMatcher m1(store_, l), m2(store_, l);
      ASSERT_OK_AND_ASSIGN(bool before, m1.MatchesWhole(original.body));
      ASSERT_OK_AND_ASSIGN(bool after, m2.MatchesWhole(simplified.body));
      EXPECT_EQ(before, after) << pat << " over " << lst;
    }
  }
}

TEST_F(SimplifyTest, SimplificationPreservesTreeMatches) {
  Tree t = T("r(a(b) a(b(c)) d)");
  std::vector<TreePatternRef> patterns = {
      TP("a | a"), TP("a(b) .@zz c"), TP("!!a"),
      TreePattern::RootAnchor(TreePattern::RootAnchor(TP("r(?*)")))};
  for (const auto& original : patterns) {
    auto simplified = SimplifyTreePattern(original);
    TreeMatcher m1(store_, t), m2(store_, t);
    ASSERT_OK_AND_ASSIGN(auto before, m1.FindAll(original));
    ASSERT_OK_AND_ASSIGN(auto after, m2.FindAll(simplified));
    EXPECT_EQ(before.size(), after.size()) << original->ToString();
  }
}

}  // namespace
}  // namespace aqua
