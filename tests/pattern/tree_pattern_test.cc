#include "pattern/tree_pattern.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class TreePatternTest : public testing::AquaTestBase {};

TEST_F(TreePatternTest, FactoriesSetKinds) {
  EXPECT_EQ(TreePattern::AnyLeaf()->kind(), TreePattern::Kind::kLeaf);
  EXPECT_TRUE(TreePattern::AnyLeaf()->is_any());
  auto pred = Predicate::AttrEquals("name", Value::String("a"));
  auto leaf = TreePattern::Leaf(pred);
  EXPECT_FALSE(leaf->is_any());
  EXPECT_EQ(leaf->pred(), pred);

  auto node = TreePattern::Node(pred, ListPattern::AnyStar());
  EXPECT_EQ(node->kind(), TreePattern::Kind::kNode);
  EXPECT_EQ(node->children()->kind(), ListPattern::Kind::kStar);

  auto point = TreePattern::Point("x");
  EXPECT_EQ(point->kind(), TreePattern::Kind::kPoint);
  EXPECT_EQ(point->label(), "x");
}

TEST_F(TreePatternTest, PlusAtPrebuildsStarForm) {
  auto plus = TreePattern::PlusAt(TreePattern::AnyLeaf(), "x");
  ASSERT_NE(plus->star_form(), nullptr);
  EXPECT_EQ(plus->star_form()->kind(), TreePattern::Kind::kStarAt);
  EXPECT_EQ(plus->star_form()->label(), "x");
  EXPECT_EQ(plus->star_form()->inner(), plus->inner());
}

TEST_F(TreePatternTest, AltAccessors) {
  auto alt = TreePattern::Alt({TP("a"), TP("b"), TP("c")});
  ASSERT_EQ(alt->alts().size(), 3u);
  EXPECT_EQ(alt->alts()[0]->ToString(), "{name == \"a\"}");
}

TEST_F(TreePatternTest, ConcatAtAccessors) {
  auto cat = TreePattern::ConcatAt(TP("a(@x)"), "x", TP("b"));
  EXPECT_EQ(cat->label(), "x");
  EXPECT_EQ(cat->first()->ToString(), "{name == \"a\"}(@x)");
  EXPECT_EQ(cat->second()->ToString(), "{name == \"b\"}");
}

TEST_F(TreePatternTest, SizeInNodesCountsChildrenSequences) {
  EXPECT_EQ(TP("a")->SizeInNodes(), 1u);
  EXPECT_GT(TP("a(b c)")->SizeInNodes(), 3u);  // node + seq structure
  EXPECT_GT(TP("a(b(c))")->SizeInNodes(), TP("a(b)")->SizeInNodes());
}

TEST_F(TreePatternTest, HasFreePointThroughStructures) {
  EXPECT_TRUE(TP("@x")->HasFreePoint("x"));
  EXPECT_FALSE(TP("@x")->HasFreePoint("y"));
  EXPECT_TRUE(TP("a(b(@deep))")->HasFreePoint("deep"));
  EXPECT_TRUE(TP("a | b(@x)")->HasFreePoint("x"));
  EXPECT_TRUE(TP("!a(@x)")->HasFreePoint("x"));
  EXPECT_TRUE(TP("^a(@x)")->HasFreePoint("x"));
  // A closure's own label passes through; a bound inner label does not.
  EXPECT_TRUE(TP("[[a(@x)]]*@x")->HasFreePoint("x"));
  EXPECT_FALSE(TP("[[a(@y) .@y b]]")->HasFreePoint("y"));
}

TEST_F(TreePatternTest, ToStringIsStable) {
  for (const char* pat :
       {"{name == \"a\"}", "?", "@p", "!{name == \"a\"}",
        "^{name == \"a\"}({name == \"b\"} ?*)"}) {
    auto tp = ParseTreePattern(pat);
    ASSERT_TRUE(tp.ok()) << pat;
    EXPECT_EQ((*tp)->ToString(), pat);
  }
}

}  // namespace
}  // namespace aqua
