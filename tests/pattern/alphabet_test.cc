#include "pattern/alphabet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "test_util.h"

namespace aqua {
namespace {

// ---------------------------------------------------------------------------
// Structural hash / equality / interning.
// ---------------------------------------------------------------------------

TEST(PredicateStructuralTest, EqualPredicatesHashEqual) {
  auto a = Predicate::Compare("age", CmpOp::kGt, Value::Int(60));
  auto b = Predicate::Compare("age", CmpOp::kGt, Value::Int(60));
  EXPECT_NE(a.get(), b.get());
  EXPECT_TRUE(PredicateStructuralEquals(*a, *b));
  EXPECT_EQ(PredicateStructuralHash(*a), PredicateStructuralHash(*b));
}

TEST(PredicateStructuralTest, DistinctPredicatesCompareUnequal) {
  auto base = Predicate::Compare("age", CmpOp::kGt, Value::Int(60));
  // A different attribute, operator, or constant each breaks equality.
  auto variants = {
      Predicate::Compare("val", CmpOp::kGt, Value::Int(60)),
      Predicate::Compare("age", CmpOp::kGe, Value::Int(60)),
      Predicate::Compare("age", CmpOp::kGt, Value::Int(61)),
  };
  for (const auto& v : variants) {
    EXPECT_FALSE(PredicateStructuralEquals(*base, *v)) << v->ToString();
  }
  // Kind matters: `x && y` != `x || y`, and both differ from `!x`.
  auto x = Predicate::AttrEquals("a", Value::Int(1));
  auto y = Predicate::AttrEquals("b", Value::Int(2));
  EXPECT_FALSE(PredicateStructuralEquals(*Predicate::And(x, y),
                                         *Predicate::Or(x, y)));
  EXPECT_FALSE(PredicateStructuralEquals(*Predicate::And(x, y),
                                         *Predicate::Not(x)));
  EXPECT_TRUE(PredicateStructuralEquals(*Predicate::And(x, y),
                                        *Predicate::And(x, y)));
}

TEST(PredicateStructuralTest, IntAndDoubleConstantsStayDistinct) {
  // Value::Equals(Int(1), Double(1.0)) is true, but the columnar kernels
  // compile per constant type, so interning keeps them distinct slots.
  auto as_int = Predicate::AttrEquals("val", Value::Int(1));
  auto as_double = Predicate::AttrEquals("val", Value::Double(1.0));
  EXPECT_FALSE(PredicateStructuralEquals(*as_int, *as_double));
}

TEST(PredicateInternerTest, DuplicatesCollapseToFirstSeen) {
  PredicateInterner interner;
  auto first = Predicate::Compare("age", CmpOp::kGt, Value::Int(60));
  auto dup = Predicate::Compare("age", CmpOp::kGt, Value::Int(60));
  // The first occurrence is its own canonical node.
  EXPECT_EQ(interner.Intern(first).get(), first.get());
  // A structurally equal later predicate aliases it.
  EXPECT_EQ(interner.Intern(dup).get(), first.get());
  EXPECT_EQ(interner.size(), 1u);
}

TEST(PredicateInternerTest, SharedSubtreesCollapseInsideCombinations) {
  PredicateInterner interner;
  auto brazil1 = Predicate::AttrEquals("citizen", Value::String("Brazil"));
  auto brazil2 = Predicate::AttrEquals("citizen", Value::String("Brazil"));
  auto old1 = Predicate::Compare("age", CmpOp::kGt, Value::Int(60));
  auto and1 = Predicate::And(brazil1, old1);
  auto and2 = Predicate::And(brazil2,
                             Predicate::Compare("age", CmpOp::kGt,
                                                Value::Int(60)));
  PredicateRef canon1 = interner.Intern(and1);
  PredicateRef canon2 = interner.Intern(and2);
  EXPECT_EQ(canon1.get(), and1.get());
  EXPECT_EQ(canon2.get(), canon1.get());
  // Only the three distinct nodes (leaf, leaf, and) were interned.
  EXPECT_EQ(interner.size(), 3u);
}

// ---------------------------------------------------------------------------
// Columnar batch evaluation vs the scalar interpreter.
// ---------------------------------------------------------------------------

class AlphabetEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A type exercising every value family, plus Item (which lacks the
    // attributes entirely) for the missing-attribute path.
    ASSERT_OK_AND_ASSIGN(
        rnd_type_,
        store_.schema().RegisterType("Rnd", {{"i", ValueType::kInt, true},
                                             {"d", ValueType::kDouble, true},
                                             {"s", ValueType::kString, true},
                                             {"b", ValueType::kBool, true}}));
    ASSERT_OK(RegisterItemType(store_));
  }

  /// Checks that the packed batch signature of every alphabet slot equals
  /// `Predicate::Eval` of that slot's predicate, item by item.
  void CheckBatchAgainstEval(const std::vector<PredicateRef>& preds,
                             const std::vector<Oid>& oids) {
    PredicateAlphabet alphabet;
    std::vector<uint32_t> slots;
    for (const auto& p : preds) slots.push_back(alphabet.Intern(p));
    alphabet.Seal();
    ASSERT_TRUE(alphabet.sealed());
    const size_t stride = alphabet.sig_stride();

    AlphabetScratch scratch;
    alphabet.EvalBatch(store_, oids.data(), oids.size(), &scratch);
    ASSERT_EQ(scratch.sigs.size(), oids.size() * stride);

    StoreView view(store_);
    for (size_t i = 0; i < oids.size(); ++i) {
      for (size_t k = 0; k < preds.size(); ++k) {
        uint32_t slot = slots[k];
        bool batch_bit =
            (scratch.sigs[i * stride + (slot >> 6)] >> (slot & 63)) & 1;
        bool scalar = preds[k]->Eval(view, oids[i]);
        ASSERT_EQ(batch_bit, scalar)
            << "pred " << preds[k]->ToString() << " over item " << i;
      }
    }
  }

  ObjectStore store_;
  TypeId rnd_type_ = 0;
};

TEST_F(AlphabetEvalTest, RandomizedBatchMatchesScalarEval) {
  std::mt19937_64 rng(20260809);
  std::uniform_int_distribution<int> coin(0, 3);
  std::uniform_int_distribution<int64_t> ints(-3, 3);
  std::uniform_real_distribution<double> doubles(-2.0, 2.0);
  const std::vector<std::string> strings = {"", "a", "ab", "b", "zz"};

  // 200 objects: random attribute values with frequent nulls, plus Items
  // that lack the attributes, plus a NaN payload.
  std::vector<Oid> oids;
  for (int n = 0; n < 200; ++n) {
    if (n % 17 == 0) {
      ASSERT_OK_AND_ASSIGN(
          Oid item, store_.Create("Item", {{"name", Value::String("x")}}));
      oids.push_back(item);
      continue;
    }
    std::vector<AttrValue> attrs;
    if (coin(rng) != 0) attrs.push_back({"i", Value::Int(ints(rng))});
    if (coin(rng) != 0) {
      double v = (n % 23 == 0) ? std::nan("") : doubles(rng);
      attrs.push_back({"d", Value::Double(v)});
    }
    if (coin(rng) != 0) {
      attrs.push_back(
          {"s", Value::String(strings[rng() % strings.size()])});
    }
    if (coin(rng) != 0) attrs.push_back({"b", Value::Bool(rng() % 2 == 0)});
    ASSERT_OK_AND_ASSIGN(Oid oid, store_.Create("Rnd", std::move(attrs)));
    oids.push_back(oid);
  }

  // A predicate battery: every operator, every constant family, cross-type
  // comparisons (int column vs double constant and vice versa), null
  // constants, and random boolean combinations.
  const CmpOp kOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                        CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  std::vector<PredicateRef> leaves;
  for (CmpOp op : kOps) {
    leaves.push_back(Predicate::Compare("i", op, Value::Int(1)));
    leaves.push_back(Predicate::Compare("i", op, Value::Double(0.5)));
    leaves.push_back(Predicate::Compare("d", op, Value::Double(0.0)));
    leaves.push_back(Predicate::Compare("d", op, Value::Int(1)));
    leaves.push_back(Predicate::Compare("s", op, Value::String("ab")));
    leaves.push_back(Predicate::Compare("i", op, Value::Null()));
    leaves.push_back(Predicate::Compare("i", op, Value::String("nope")));
  }
  leaves.push_back(Predicate::AttrEquals("b", Value::Bool(true)));
  leaves.push_back(Predicate::Compare("b", CmpOp::kNe, Value::Bool(false)));
  leaves.push_back(Predicate::True());

  std::vector<PredicateRef> preds = leaves;
  std::uniform_int_distribution<size_t> pick(0, leaves.size() - 1);
  for (int n = 0; n < 24; ++n) {
    auto l = leaves[pick(rng)];
    auto r = leaves[pick(rng)];
    switch (coin(rng)) {
      case 0:
        preds.push_back(Predicate::And(l, r));
        break;
      case 1:
        preds.push_back(Predicate::Or(l, r));
        break;
      case 2:
        preds.push_back(Predicate::Not(l));
        break;
      default:
        preds.push_back(Predicate::And(Predicate::Or(l, r),
                                       Predicate::Not(r)));
        break;
    }
  }

  CheckBatchAgainstEval(preds, oids);
}

TEST_F(AlphabetEvalTest, InterningAssignsOneSlotPerDistinctPredicate) {
  PredicateAlphabet alphabet;
  auto p1 = Predicate::Compare("i", CmpOp::kGt, Value::Int(0));
  auto p2 = Predicate::Compare("i", CmpOp::kGt, Value::Int(0));
  auto p3 = Predicate::Compare("i", CmpOp::kGt, Value::Int(1));
  EXPECT_EQ(alphabet.Intern(p1), alphabet.Intern(p2));
  EXPECT_NE(alphabet.Intern(p1), alphabet.Intern(p3));
  EXPECT_EQ(alphabet.size(), 2u);
  EXPECT_EQ(alphabet.sig_stride(), 1u);
}

TEST_F(AlphabetEvalTest, WideAlphabetsPackAcrossWordBoundaries) {
  // 70 distinct predicates force a two-word signature stride; the bit for
  // slot 64+ must land in the second word.
  std::vector<PredicateRef> preds;
  for (int k = 0; k < 70; ++k) {
    preds.push_back(Predicate::Compare("i", CmpOp::kEq, Value::Int(k - 35)));
  }
  std::vector<Oid> oids;
  for (int64_t v : {-35, 0, 30, 34}) {
    ASSERT_OK_AND_ASSIGN(Oid oid,
                         store_.Create("Rnd", {{"i", Value::Int(v)}}));
    oids.push_back(oid);
  }
  CheckBatchAgainstEval(preds, oids);
}

TEST_F(AlphabetEvalTest, MissingObjectsEvaluateFalse) {
  // An oid the store has never seen: every non-negated predicate is false,
  // `!p` is true — same as Predicate::Eval.
  std::vector<Oid> oids = {Oid{0xdeadbeef}};
  std::vector<PredicateRef> preds = {
      Predicate::AttrEquals("i", Value::Int(0)),
      Predicate::Not(Predicate::AttrEquals("i", Value::Int(0))),
      Predicate::True(),
  };
  CheckBatchAgainstEval(preds, oids);
}

}  // namespace
}  // namespace aqua
