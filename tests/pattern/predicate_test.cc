#include "pattern/predicate.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterPersonType(store_));
    ASSERT_OK_AND_ASSIGN(
        person_, store_.Create("Person", {{"name", Value::String("Ann")},
                                          {"citizen", Value::String("Brazil")},
                                          {"eyes", Value::String("brown")},
                                          {"age", Value::Int(30)}}));
  }

  ObjectStore store_;
  Oid person_;
};

TEST_F(PredicateTest, TrueMatchesEverything) {
  EXPECT_TRUE(Predicate::True()->Eval(store_, person_));
}

TEST_F(PredicateTest, EqualityComparison) {
  auto brazil = Predicate::AttrEquals("citizen", Value::String("Brazil"));
  auto usa = Predicate::AttrEquals("citizen", Value::String("USA"));
  EXPECT_TRUE(brazil->Eval(store_, person_));
  EXPECT_FALSE(usa->Eval(store_, person_));
}

TEST_F(PredicateTest, OrderingComparisons) {
  EXPECT_TRUE(Predicate::Compare("age", CmpOp::kGt, Value::Int(25))
                  ->Eval(store_, person_));
  EXPECT_FALSE(Predicate::Compare("age", CmpOp::kGt, Value::Int(30))
                   ->Eval(store_, person_));
  EXPECT_TRUE(Predicate::Compare("age", CmpOp::kGe, Value::Int(30))
                  ->Eval(store_, person_));
  EXPECT_TRUE(Predicate::Compare("age", CmpOp::kLt, Value::Int(31))
                  ->Eval(store_, person_));
  EXPECT_TRUE(Predicate::Compare("age", CmpOp::kLe, Value::Int(30))
                  ->Eval(store_, person_));
  EXPECT_TRUE(Predicate::Compare("age", CmpOp::kNe, Value::Int(29))
                  ->Eval(store_, person_));
}

TEST_F(PredicateTest, BooleanCombinations) {
  auto brazil = Predicate::AttrEquals("citizen", Value::String("Brazil"));
  auto old = Predicate::Compare("age", CmpOp::kGt, Value::Int(60));
  EXPECT_FALSE(Predicate::And(brazil, old)->Eval(store_, person_));
  EXPECT_TRUE(Predicate::Or(brazil, old)->Eval(store_, person_));
  EXPECT_FALSE(Predicate::Not(brazil)->Eval(store_, person_));
  EXPECT_TRUE(Predicate::Not(old)->Eval(store_, person_));
}

TEST_F(PredicateTest, MissingAttributeMeansNoMatch) {
  // A non-Person object simply does not satisfy (λ(Person) ...) — §3.1.
  ASSERT_OK(RegisterItemType(store_));
  ASSERT_OK_AND_ASSIGN(Oid item,
                       store_.Create("Item", {{"name", Value::String("x")}}));
  auto by_citizen = Predicate::AttrEquals("citizen", Value::String("Brazil"));
  EXPECT_FALSE(by_citizen->Eval(store_, item));
  // But negation flips it: the item is "not a Brazilian".
  EXPECT_TRUE(Predicate::Not(by_citizen)->Eval(store_, item));
}

TEST_F(PredicateTest, NullAttributeNeverMatches) {
  ASSERT_OK_AND_ASSIGN(Oid p,
                       store_.Create("Person", {{"name", Value::String("N")}}));
  EXPECT_FALSE(Predicate::AttrEquals("citizen", Value::String("Brazil"))
                   ->Eval(store_, p));
  EXPECT_FALSE(Predicate::Compare("citizen", CmpOp::kNe, Value::String("x"))
                   ->Eval(store_, p));
}

TEST_F(PredicateTest, IncomparableTypesNeverMatch) {
  EXPECT_FALSE(Predicate::Compare("age", CmpOp::kGt, Value::String("ten"))
                   ->Eval(store_, person_));
  EXPECT_FALSE(Predicate::AttrEquals("age", Value::String("30"))
                   ->Eval(store_, person_));
}

TEST_F(PredicateTest, ValidateAgainstChecksStoredAttributes) {
  Schema schema;
  ASSERT_OK_AND_ASSIGN(
      TypeId id,
      schema.RegisterType("T", {{"stored_a", ValueType::kInt, true},
                                {"computed_b", ValueType::kInt, false}}));
  ASSERT_OK_AND_ASSIGN(const TypeDef* def, schema.GetType(id));
  auto on_stored = Predicate::Compare("stored_a", CmpOp::kGt, Value::Int(0));
  auto on_computed =
      Predicate::Compare("computed_b", CmpOp::kGt, Value::Int(0));
  EXPECT_OK(on_stored->ValidateAgainst(*def));
  // §3.1 footnote 2: computed attributes are rejected by the validator.
  EXPECT_TRUE(on_computed->ValidateAgainst(*def).IsInvalidArgument());
  EXPECT_TRUE(Predicate::AttrEquals("zzz", Value::Int(0))
                  ->ValidateAgainst(*def)
                  .IsNotFound());
  EXPECT_TRUE(Predicate::And(on_stored, on_computed)
                  ->ValidateAgainst(*def)
                  .IsInvalidArgument());
  EXPECT_OK(Predicate::True()->ValidateAgainst(*def));
}

TEST_F(PredicateTest, CollectAttrsAndSize) {
  auto p = Predicate::And(
      Predicate::AttrEquals("a", Value::Int(1)),
      Predicate::Not(Predicate::AttrEquals("b", Value::Int(2))));
  std::vector<std::string> attrs;
  p->CollectAttrs(&attrs);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0], "a");
  EXPECT_EQ(attrs[1], "b");
  EXPECT_EQ(p->SizeInNodes(), 4u);
  EXPECT_EQ(Predicate::True()->SizeInNodes(), 1u);
}

TEST_F(PredicateTest, ToStringRendering) {
  auto p = Predicate::Or(
      Predicate::Compare("age", CmpOp::kGt, Value::Int(25)),
      Predicate::Not(Predicate::AttrEquals("eyes", Value::String("blue"))));
  EXPECT_EQ(p->ToString(), "(age > 25 || !(eyes == \"blue\"))");
}

TEST(PredicateEnvTest, BindLookupRebind) {
  PredicateEnv env;
  env.Bind("Brazil",
           Predicate::AttrEquals("citizen", Value::String("Brazil")));
  EXPECT_TRUE(env.Has("Brazil"));
  EXPECT_FALSE(env.Has("USA"));
  ASSERT_TRUE(env.Lookup("Brazil").ok());
  EXPECT_TRUE(env.Lookup("USA").status().IsNotFound());
  // Rebinding replaces.
  env.Bind("Brazil", Predicate::True());
  ASSERT_TRUE(env.Lookup("Brazil").ok());
  EXPECT_EQ((*env.Lookup("Brazil"))->kind(), Predicate::Kind::kTrue);
}

}  // namespace
}  // namespace aqua
