#include "pattern/multi.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "pattern/nfa.h"
#include "test_util.h"

namespace aqua {
namespace {

class MultiNfaTest : public testing::AquaTestBase {
 protected:
  std::vector<ListPatternRef> Bodies(const std::vector<std::string>& pats) {
    std::vector<ListPatternRef> bodies;
    for (const auto& p : pats) bodies.push_back(LP(p).body);
    return bodies;
  }

  /// The reference answer: one independent search-mode NFA per pattern.
  uint64_t SequentialMatchAll(const std::vector<ListPatternRef>& bodies,
                              const List& l) {
    uint64_t mask = 0;
    for (size_t j = 0; j < bodies.size(); ++j) {
      auto nfa = Nfa::CompileSearch(bodies[j]);
      EXPECT_TRUE(nfa.ok()) << nfa.status().ToString();
      if (nfa.ok() && nfa->ExistsMatch(store_, l)) mask |= 1ULL << j;
    }
    return mask;
  }

  /// Asserts NFA and lazy-DFA agree with N independent scans on `list_lit`.
  void CheckAgainstSequential(const std::vector<std::string>& pats,
                              const std::string& list_lit) {
    std::vector<ListPatternRef> bodies = Bodies(pats);
    List l = L(list_lit);
    uint64_t expected = SequentialMatchAll(bodies, l);

    ASSERT_OK_AND_ASSIGN(MultiNfa multi, MultiNfa::CompileSearch(bodies));
    AlphabetScratch scratch;
    EXPECT_EQ(multi.MatchAll(store_, l, &scratch), expected) << list_lit;

    ASSERT_OK_AND_ASSIGN(LazyMultiDfa dfa, LazyMultiDfa::Make(&multi));
    EXPECT_EQ(dfa.MatchAll(store_, l, &scratch), expected) << list_lit;
  }
};

TEST_F(MultiNfaTest, GoldenAcceptMasksOnOverlappingPatterns) {
  // Three patterns sharing a prefix: the per-list result masks are exactly
  // the per-pattern existence answers, bit j = pattern j.
  std::vector<std::string> pats = {"a b", "a b c", "a"};
  std::vector<ListPatternRef> bodies = Bodies(pats);
  ASSERT_OK_AND_ASSIGN(MultiNfa multi, MultiNfa::CompileSearch(bodies));
  EXPECT_EQ(multi.num_patterns(), 3u);
  EXPECT_EQ(multi.full_mask(), 0b111u);
  AlphabetScratch scratch;
  EXPECT_EQ(multi.MatchAll(store_, L("[a b c]"), &scratch), 0b111u);
  EXPECT_EQ(multi.MatchAll(store_, L("[a b]"), &scratch), 0b101u);
  EXPECT_EQ(multi.MatchAll(store_, L("[a]"), &scratch), 0b100u);
  EXPECT_EQ(multi.MatchAll(store_, L("[x a b y]"), &scratch), 0b101u);
  EXPECT_EQ(multi.MatchAll(store_, L("[x]"), &scratch), 0u);
  EXPECT_EQ(multi.MatchAll(store_, L("[]"), &scratch), 0u);
}

TEST_F(MultiNfaTest, TrieMergesCommonPrefixes) {
  // "a b" + "a b c" + "a d": the second pattern rides the first's two
  // states, the third rides one — three shared-state hits total — and the
  // shared alphabet interns `a` once across all three patterns.
  ASSERT_OK_AND_ASSIGN(MultiNfa multi,
                       MultiNfa::CompileSearch(Bodies({"a b", "a b c",
                                                       "a d"})));
  EXPECT_EQ(multi.trie_shared_states(), 3u);
  EXPECT_EQ(multi.alphabet().size(), 4u);  // a, b, c, d

  // No sharing when every pattern starts differently.
  ASSERT_OK_AND_ASSIGN(MultiNfa disjoint,
                       MultiNfa::CompileSearch(Bodies({"a", "b", "c"})));
  EXPECT_EQ(disjoint.trie_shared_states(), 0u);

  // The merged automaton is smaller than the sum of the parts.
  size_t solo_states = 0;
  for (const auto& body : Bodies({"a b", "a b c", "a d"})) {
    ASSERT_OK_AND_ASSIGN(Nfa solo, Nfa::CompileSearch(body));
    solo_states += solo.num_states();
  }
  EXPECT_LT(multi.num_states(), solo_states);
}

TEST_F(MultiNfaTest, IdenticalPatternsShareEverything) {
  ASSERT_OK_AND_ASSIGN(MultiNfa multi,
                       MultiNfa::CompileSearch(Bodies({"a b", "a b"})));
  EXPECT_EQ(multi.alphabet().size(), 2u);
  AlphabetScratch scratch;
  // Both bits always agree.
  EXPECT_EQ(multi.MatchAll(store_, L("[a b]"), &scratch), 0b11u);
  EXPECT_EQ(multi.MatchAll(store_, L("[b a]"), &scratch), 0u);
}

TEST_F(MultiNfaTest, PointsAndClosuresMatchSequential) {
  std::vector<std::string> pats = {"a @x b", "a ?* c", "[[a | b]]+", "a+ b*",
                                   "@x", "?* c"};
  for (const char* lst :
       {"[a b c]", "[a @x b]", "[a @y b]", "[c]", "[]", "[@x]",
        "[a a b b c]", "[x y z]"}) {
    CheckAgainstSequential(pats, lst);
  }
}

TEST_F(MultiNfaTest, RandomizedAgreementWithIndependentScans) {
  // Random pattern groups over random lists: the merged automaton's mask
  // must be bit-for-bit the N independent existence scans, for both the
  // NFA simulation and the lazy DFA.
  const std::vector<std::string> kPatternPool = {
      "a",        "a b",      "a b c", "b c",      "a ?* c", "[[a | b]] c",
      "a+",       "b* c",     "?* c",  "a @x b",   "c | d",  "[[a b]]+",
      "!a b",     "a !? c",   "d",     "a [[b | c]]"};
  const std::vector<std::string> kAtoms = {"a", "b", "c", "d", "@x", "@y"};
  std::mt19937_64 rng(7);
  for (int round = 0; round < 40; ++round) {
    std::vector<std::string> pats;
    size_t n_pats = 2 + rng() % 8;
    for (size_t j = 0; j < n_pats; ++j) {
      pats.push_back(kPatternPool[rng() % kPatternPool.size()]);
    }
    std::string lst = "[";
    size_t len = rng() % 12;
    for (size_t i = 0; i < len; ++i) {
      if (i > 0) lst += ' ';
      lst += kAtoms[rng() % kAtoms.size()];
    }
    lst += ']';
    CheckAgainstSequential(pats, lst);
  }
}

TEST_F(MultiNfaTest, LazyDfaCachesTransitions) {
  ASSERT_OK_AND_ASSIGN(MultiNfa multi,
                       MultiNfa::CompileSearch(Bodies({"a b", "b c"})));
  ASSERT_OK_AND_ASSIGN(LazyMultiDfa dfa, LazyMultiDfa::Make(&multi));
  AlphabetScratch scratch;
  List l = L("[a b c a b c a b c]");
  uint64_t first = dfa.MatchAll(store_, l, &scratch);
  uint64_t misses_after_first = dfa.cache_misses();
  uint64_t second = dfa.MatchAll(store_, l, &scratch);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, 0b11u);
  // The second scan replays cached transitions only.
  EXPECT_EQ(dfa.cache_misses(), misses_after_first);
  EXPECT_GT(dfa.cache_hits(), 0u);
}

TEST_F(MultiNfaTest, CompileRejectsBadGroups) {
  EXPECT_TRUE(MultiNfa::CompileSearch({}).status().IsInvalidArgument());
  std::vector<ListPatternRef> many(65, LP("a").body);
  EXPECT_TRUE(MultiNfa::CompileSearch(many).status().IsInvalidArgument());
  // Tree atoms are the matcher's job, as in Nfa::Compile.
  std::vector<ListPatternRef> with_tree = {
      ListPattern::TreeAtom(TreePattern::AnyLeaf())};
  EXPECT_TRUE(
      MultiNfa::CompileSearch(with_tree).status().IsInvalidArgument());
}

TEST_F(MultiNfaTest, LazyDfaRejectsWideAlphabets) {
  // 59 distinct predicates exceed the 58-bit signature budget: the NFA
  // still answers, the DFA refuses.
  std::vector<ListPatternRef> bodies;
  for (int k = 0; k < 59; ++k) {
    bodies.push_back(
        ListPattern::Pred(Predicate::Compare("val", CmpOp::kEq,
                                             Value::Int(k))));
  }
  // 59 patterns of one predicate each (<= 64 patterns, > 58 predicates).
  ASSERT_OK_AND_ASSIGN(MultiNfa multi, MultiNfa::CompileSearch(bodies));
  EXPECT_EQ(multi.alphabet().size(), 59u);
  EXPECT_TRUE(LazyMultiDfa::Make(&multi).status().IsInvalidArgument());
  AlphabetScratch scratch;
  List l = L("[a]");  // Items carry val; `a` has val null -> no matches
  EXPECT_EQ(multi.MatchAll(store_, l, &scratch), 0u);
}

TEST_F(MultiNfaTest, SixtyFourPatternsFillTheMask) {
  std::vector<ListPatternRef> bodies(64, LP("a").body);
  ASSERT_OK_AND_ASSIGN(MultiNfa multi, MultiNfa::CompileSearch(bodies));
  EXPECT_EQ(multi.full_mask(), ~0ULL);
  AlphabetScratch scratch;
  EXPECT_EQ(multi.MatchAll(store_, L("[a]"), &scratch), ~0ULL);
  EXPECT_EQ(multi.MatchAll(store_, L("[b]"), &scratch), 0u);
}

}  // namespace
}  // namespace aqua
