#include "pattern/predicate_parser.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

std::string Parsed(const std::string& text) {
  auto p = ParsePredicate(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << " in " << text;
  return p.ok() ? (*p)->ToString() : "<error>";
}

TEST(PredicateParserTest, Comparisons) {
  EXPECT_EQ(Parsed("age > 25"), "age > 25");
  EXPECT_EQ(Parsed("age>=25"), "age >= 25");
  EXPECT_EQ(Parsed("age < 25"), "age < 25");
  EXPECT_EQ(Parsed("age <= 25"), "age <= 25");
  EXPECT_EQ(Parsed("age != 25"), "age != 25");
  EXPECT_EQ(Parsed("name == \"Ann\""), "name == \"Ann\"");
}

TEST(PredicateParserTest, Literals) {
  EXPECT_EQ(Parsed("x == -3"), "x == -3");
  EXPECT_EQ(Parsed("x == 2.5"), "x == 2.5");
  EXPECT_EQ(Parsed("x == true"), "x == true");
  EXPECT_EQ(Parsed("x == false"), "x == false");
  EXPECT_EQ(Parsed("x == null"), "x == null");
}

TEST(PredicateParserTest, BooleanStructure) {
  EXPECT_EQ(Parsed("a > 1 && b < 2"), "(a > 1 && b < 2)");
  EXPECT_EQ(Parsed("a > 1 || b < 2 && c == 3"),
            "(a > 1 || (b < 2 && c == 3))");  // && binds tighter
  EXPECT_EQ(Parsed("(a > 1 || b < 2) && c == 3"),
            "((a > 1 || b < 2) && c == 3)");
  EXPECT_EQ(Parsed("!(a > 1)"), "!(a > 1)");
  EXPECT_EQ(Parsed("!!(a > 1)"), "!(!(a > 1))");
}

TEST(PredicateParserTest, BareIdentifierIsBoolShorthand) {
  EXPECT_EQ(Parsed("flag"), "flag == true");
  EXPECT_EQ(Parsed("flag && a > 1"), "(flag == true && a > 1)");
}

TEST(PredicateParserTest, TrueKeyword) { EXPECT_EQ(Parsed("true"), "true"); }

TEST(PredicateParserTest, BracedForm) {
  EXPECT_EQ(Parsed("{age > 25}"), "age > 25");
}

TEST(PredicateParserTest, Whitespace) {
  EXPECT_EQ(Parsed("  a   ==   1  "), "a == 1");
}

TEST(PredicateParserTest, Errors) {
  EXPECT_TRUE(ParsePredicate("").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("a >").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("a == ").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("== 3").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("a == 1 extra").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("(a == 1").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("{a == 1").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("a == \"unterminated").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("a == bogus_literal").status().IsParseError());
  EXPECT_TRUE(ParsePredicate("!= 3").status().IsParseError());
}

class PredicateParserEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterPersonType(store_));
    ASSERT_OK_AND_ASSIGN(
        ann_, store_.Create("Person", {{"name", Value::String("Ann")},
                                       {"citizen", Value::String("USA")},
                                       {"age", Value::Int(40)}}));
  }
  ObjectStore store_;
  Oid ann_;
};

TEST_F(PredicateParserEvalTest, ParsedPredicatesEvaluate) {
  ASSERT_OK_AND_ASSIGN(PredicateRef p1,
                       ParsePredicate("citizen == \"USA\" && age > 25"));
  EXPECT_TRUE(p1->Eval(store_, ann_));
  ASSERT_OK_AND_ASSIGN(PredicateRef p2,
                       ParsePredicate("citizen == \"Brazil\" || age < 30"));
  EXPECT_FALSE(p2->Eval(store_, ann_));
}

}  // namespace
}  // namespace aqua
