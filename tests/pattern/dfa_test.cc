#include "pattern/dfa.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class DfaTest : public testing::AquaTestBase {};

TEST_F(DfaTest, AgreesWithNfaOnWholeMatch) {
  const char* kPatterns[] = {"a b c", "a ?* c", "[[a | b]]+", "a* b* c*",
                             "a @x b"};
  const char* kLists[] = {"[a b c]", "[a c]",  "[b b b]", "[a @x b]",
                          "[a b]",   "[c]",    "[]"};
  for (const char* pat : kPatterns) {
    ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::Compile(LP(pat).body));
    ASSERT_OK_AND_ASSIGN(LazyDfa dfa, LazyDfa::Make(&nfa));
    for (const char* lst : kLists) {
      List l = L(lst);
      EXPECT_EQ(dfa.MatchesWhole(store_, l), nfa.MatchesWhole(store_, l))
          << pat << " over " << lst;
    }
  }
}

TEST_F(DfaTest, AgreesWithNfaOnExistsSearchMode) {
  const char* kPatterns[] = {"a b", "a ?* c", "b+"};
  const char* kLists[] = {"[x a b y]", "[a x c]", "[x y z]", "[b]", "[]"};
  for (const char* pat : kPatterns) {
    ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::CompileSearch(LP(pat).body));
    ASSERT_OK_AND_ASSIGN(LazyDfa dfa, LazyDfa::Make(&nfa));
    for (const char* lst : kLists) {
      List l = L(lst);
      EXPECT_EQ(dfa.ExistsMatch(store_, l), nfa.ExistsMatch(store_, l))
          << pat << " over " << lst;
    }
  }
}

TEST_F(DfaTest, AgreesWithNfaOnExistsRestartMode) {
  ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::Compile(LP("a b").body));
  ASSERT_OK_AND_ASSIGN(LazyDfa dfa, LazyDfa::Make(&nfa));
  for (const char* lst : {"[x a b y]", "[a x b]", "[a b]", "[]"}) {
    List l = L(lst);
    EXPECT_EQ(dfa.ExistsMatch(store_, l), nfa.ExistsMatch(store_, l)) << lst;
  }
}

TEST_F(DfaTest, TransitionsAreCachedAcrossCalls) {
  ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::CompileSearch(LP("a ? f").body));
  ASSERT_OK_AND_ASSIGN(LazyDfa dfa, LazyDfa::Make(&nfa));
  List l = L("[a b f a c f]");
  ASSERT_TRUE(dfa.ExistsMatch(store_, l));
  size_t after_first = dfa.num_transitions();
  EXPECT_GT(after_first, 0u);
  // The same input signature set re-uses cached transitions.
  ASSERT_TRUE(dfa.ExistsMatch(store_, l));
  EXPECT_EQ(dfa.num_transitions(), after_first);
}

TEST_F(DfaTest, RejectsNullAndTooManyPredicates) {
  EXPECT_TRUE(LazyDfa::Make(nullptr).status().IsInvalidArgument());

  // 59 distinct predicates exceed the 58-bit signature budget.
  std::vector<ListPatternRef> parts;
  for (int i = 0; i < 59; ++i) {
    parts.push_back(ListPattern::Pred(
        Predicate::AttrEquals("name", Value::String("x" + std::to_string(i)))));
  }
  ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::Compile(ListPattern::Concat(parts)));
  EXPECT_TRUE(LazyDfa::Make(&nfa).status().IsInvalidArgument());
}

}  // namespace
}  // namespace aqua
