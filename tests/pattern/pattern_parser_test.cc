#include "pattern/pattern_parser.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class PatternParserTest : public testing::AquaTestBase {};

TEST_F(PatternParserTest, ListPatternBasics) {
  auto lp = LP("a ? b");
  EXPECT_FALSE(lp.anchor_begin);
  EXPECT_FALSE(lp.anchor_end);
  ASSERT_NE(lp.body, nullptr);
  EXPECT_EQ(lp.body->kind(), ListPattern::Kind::kConcat);
  ASSERT_EQ(lp.body->parts().size(), 3u);
  EXPECT_EQ(lp.body->parts()[1]->kind(), ListPattern::Kind::kAny);
}

TEST_F(PatternParserTest, ListAnchors) {
  auto lp = LP("^a b$");
  EXPECT_TRUE(lp.anchor_begin);
  EXPECT_TRUE(lp.anchor_end);
}

TEST_F(PatternParserTest, ListClosuresAndPrune) {
  auto lp = LP("!?* a+ [[b | c]]*");
  ASSERT_EQ(lp.body->parts().size(), 3u);
  EXPECT_EQ(lp.body->parts()[0]->kind(), ListPattern::Kind::kPrune);
  EXPECT_EQ(lp.body->parts()[0]->inner()->kind(), ListPattern::Kind::kStar);
  EXPECT_EQ(lp.body->parts()[1]->kind(), ListPattern::Kind::kPlus);
  EXPECT_EQ(lp.body->parts()[2]->kind(), ListPattern::Kind::kStar);
  EXPECT_EQ(lp.body->parts()[2]->inner()->kind(), ListPattern::Kind::kAlt);
}

TEST_F(PatternParserTest, ListPoints) {
  auto lp = LP("a @x1 b");
  EXPECT_EQ(lp.body->parts()[1]->kind(), ListPattern::Kind::kPoint);
  EXPECT_EQ(lp.body->parts()[1]->label(), "x1");
}

TEST_F(PatternParserTest, BracedPredicatesInListPatterns) {
  auto lp = LP("{pitch == \"A\" && duration > 2}");
  ASSERT_EQ(lp.body->kind(), ListPattern::Kind::kPred);
  EXPECT_EQ(lp.body->pred()->ToString(),
            "(pitch == \"A\" && duration > 2)");
}

TEST_F(PatternParserTest, NamedPredicatesResolveThroughEnv) {
  env_.Bind("Old", Predicate::Compare("age", CmpOp::kGt, Value::Int(60)));
  auto lp = LP("Old");
  ASSERT_EQ(lp.body->kind(), ListPattern::Kind::kPred);
  EXPECT_EQ(lp.body->pred()->ToString(), "age > 60");
}

TEST_F(PatternParserTest, UnboundIdentUsesDefaultAttr) {
  auto lp = LP("xyz");
  ASSERT_EQ(lp.body->kind(), ListPattern::Kind::kPred);
  EXPECT_EQ(lp.body->pred()->ToString(), "name == \"xyz\"");
}

TEST_F(PatternParserTest, EmptyDefaultAttrMakesUnboundAnError) {
  PatternParserOptions opts;
  opts.default_attr = "";
  EXPECT_TRUE(ParseListPattern("xyz", opts).status().IsParseError());
}

TEST_F(PatternParserTest, TreePatternShapes) {
  EXPECT_EQ(TP("a")->kind(), TreePattern::Kind::kLeaf);
  EXPECT_EQ(TP("?")->kind(), TreePattern::Kind::kLeaf);
  EXPECT_TRUE(TP("?")->is_any());
  EXPECT_EQ(TP("a(b c)")->kind(), TreePattern::Kind::kNode);
  EXPECT_EQ(TP("@x")->kind(), TreePattern::Kind::kPoint);
  EXPECT_EQ(TP("a | b")->kind(), TreePattern::Kind::kAlt);
  EXPECT_EQ(TP("^a")->kind(), TreePattern::Kind::kRootAnchor);
  EXPECT_EQ(TP("a$")->kind(), TreePattern::Kind::kLeafAnchor);
  EXPECT_EQ(TP("!a")->kind(), TreePattern::Kind::kPrune);
  EXPECT_EQ(TP("a .@x b")->kind(), TreePattern::Kind::kConcatAt);
  EXPECT_EQ(TP("[[a]]*@x")->kind(), TreePattern::Kind::kStarAt);
  EXPECT_EQ(TP("[[a]]+@x")->kind(), TreePattern::Kind::kPlusAt);
}

TEST_F(PatternParserTest, ChildrenSequencesMixListAndTreeLevels) {
  auto tp = TP("a(?* b(c) @x !d)");
  ASSERT_EQ(tp->kind(), TreePattern::Kind::kNode);
  const auto& seq = tp->children();
  ASSERT_EQ(seq->kind(), ListPattern::Kind::kConcat);
  ASSERT_EQ(seq->parts().size(), 4u);
  EXPECT_EQ(seq->parts()[0]->kind(), ListPattern::Kind::kStar);
  EXPECT_EQ(seq->parts()[1]->kind(), ListPattern::Kind::kTreeAtom);
  EXPECT_EQ(seq->parts()[2]->kind(), ListPattern::Kind::kPoint);
  EXPECT_EQ(seq->parts()[3]->kind(), ListPattern::Kind::kPrune);
}

TEST_F(PatternParserTest, ConcatAtIsLeftAssociative) {
  auto tp = TP("a .@1 b .@2 c");
  ASSERT_EQ(tp->kind(), TreePattern::Kind::kConcatAt);
  EXPECT_EQ(tp->label(), "2");
  EXPECT_EQ(tp->first()->kind(), TreePattern::Kind::kConcatAt);
  EXPECT_EQ(tp->first()->label(), "1");
}

TEST_F(PatternParserTest, TreeClosureInsideChildren) {
  auto tp = TP("r([[a(@x)]]*@x b)");
  const auto& seq = tp->children();
  ASSERT_EQ(seq->parts().size(), 2u);
  ASSERT_EQ(seq->parts()[0]->kind(), ListPattern::Kind::kTreeAtom);
  EXPECT_EQ(seq->parts()[0]->tree_atom()->kind(),
            TreePattern::Kind::kStarAt);
}

TEST_F(PatternParserTest, PaperPatterns) {
  env_.Bind("Brazil",
            Predicate::AttrEquals("citizen", Value::String("Brazil")));
  env_.Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));
  EXPECT_NE(TP("Brazil(!?* USA !?*)"), nullptr);
  EXPECT_NE(TP("select(!? and)"), nullptr);
  EXPECT_NE(TP("printf(?* LargeData ?* LargeData ?*)"), nullptr);
  EXPECT_NE(TP("[[a(@1 @2) .@1 [[b(d(f g) e)]]]] .@2 c"), nullptr);
  EXPECT_NE(TP("[[a(b c @x)]]*@x"), nullptr);
}

TEST_F(PatternParserTest, RoundTripThroughToString) {
  // ToString output re-parses to the same rendering.
  for (const char* pat :
       {"a(b c)", "a | b", "!a", "^a(?*)", "[[a]]*@x", "a .@1 b"}) {
    auto tp1 = TP(pat);
    ASSERT_NE(tp1, nullptr) << pat;
    std::string printed = tp1->ToString();
    PatternParserOptions opts;
    auto tp2 = ParseTreePattern(printed, opts);
    ASSERT_TRUE(tp2.ok()) << printed << ": " << tp2.status().ToString();
    EXPECT_EQ((*tp2)->ToString(), printed);
  }
}

TEST_F(PatternParserTest, HasFreePoint) {
  EXPECT_TRUE(TP("a(@x)")->HasFreePoint("x"));
  EXPECT_FALSE(TP("a(@x)")->HasFreePoint("y"));
  // ∘ binds its label inside the first operand...
  EXPECT_FALSE(TP("a(@x) .@x b")->HasFreePoint("x"));
  // ...but the second operand's points stay free.
  EXPECT_TRUE(TP("a(@x) .@x b(@x)")->HasFreePoint("x"));
  // A closure passes its own point through.
  EXPECT_TRUE(TP("[[a(@x)]]*@x")->HasFreePoint("x"));
}

TEST_F(PatternParserTest, TreeParseErrors) {
  PatternParserOptions opts;
  EXPECT_TRUE(ParseTreePattern("", opts).status().IsParseError());
  EXPECT_TRUE(ParseTreePattern("a(b", opts).status().IsParseError());
  EXPECT_TRUE(ParseTreePattern("[[a", opts).status().IsParseError());
  EXPECT_TRUE(ParseTreePattern("a .@", opts).status().IsParseError());
  EXPECT_TRUE(ParseTreePattern("a)", opts).status().IsParseError());
  EXPECT_TRUE(ParseTreePattern("{unclosed", opts).status().IsParseError());
  EXPECT_TRUE(ParseListPattern("a ]]", opts).status().IsParseError());
}

TEST_F(PatternParserTest, AnchoredListToString) {
  auto lp = LP("^a ? b$");
  EXPECT_EQ(lp.ToString(), "^{name == \"a\"} ? {name == \"b\"}$");
}

}  // namespace
}  // namespace aqua
