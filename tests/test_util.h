#ifndef AQUA_TESTS_TEST_UTIL_H_
#define AQUA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "aqua.h"

/// Asserts that a Status or Result is OK.
#define ASSERT_OK(expr)                                               \
  do {                                                                \
    auto _st = (expr);                                         \
    ASSERT_TRUE(_st.ok()) << "expected OK, got " << StatusOf(_st);    \
  } while (false)

#define EXPECT_OK(expr)                                               \
  do {                                                                \
    auto _st = (expr);                                         \
    EXPECT_TRUE(_st.ok()) << "expected OK, got " << StatusOf(_st);    \
  } while (false)

/// Unwraps a Result into `lhs`, failing the test on error.
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                                  \
  ASSERT_OK_AND_ASSIGN_IMPL(AQUA_CONCAT(_res_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)                        \
  auto tmp = (rexpr);                                                     \
  ASSERT_TRUE(tmp.ok()) << "expected OK, got " << tmp.status().ToString(); \
  lhs = std::move(tmp).ValueUnsafe()

namespace aqua {

inline std::string StatusOf(const Status& s) { return s.ToString(); }
template <typename T>
std::string StatusOf(const Result<T>& r) {
  return r.status().ToString();
}

namespace testing {

/// Base fixture: an object store with the generic `Item` type, literal
/// parsing helpers (atoms intern `Item`s by their `name`), and printers.
///
/// With these helpers a test reads like the paper:
///
///   Tree t = T("b(d(f g) e)");
///   auto tp = TP("b(d ?)");
///   EXPECT_EQ(Str(t), "b(d(f g) e)");
class AquaTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(store_));
    atom_ = MakeInterningAtomFn(&store_, "Item", "name");
    label_ = AttrLabelFn(&store_, "name");
  }

  /// Parses a tree literal like `a(b c)`; fails the test on parse errors.
  Tree T(const std::string& literal) {
    auto tree = ParseTreeLiteral(literal, atom_);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString() << " in " << literal;
    return tree.ok() ? *tree : Tree();
  }

  /// Parses a list literal like `[a b c]`.
  List L(const std::string& literal) {
    auto list = ParseListLiteral(literal, atom_);
    EXPECT_TRUE(list.ok()) << list.status().ToString() << " in " << literal;
    return list.ok() ? *list : List();
  }

  /// Parses a tree pattern (bare identifiers mean `{name == "<id>"}`).
  TreePatternRef TP(const std::string& pattern) {
    PatternParserOptions opts;
    opts.env = &env_;
    auto tp = ParseTreePattern(pattern, opts);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString() << " in " << pattern;
    return tp.ok() ? *tp : nullptr;
  }

  /// Parses a list pattern.
  AnchoredListPattern LP(const std::string& pattern) {
    PatternParserOptions opts;
    opts.env = &env_;
    auto lp = ParseListPattern(pattern, opts);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString() << " in " << pattern;
    return lp.ok() ? *lp : AnchoredListPattern{};
  }

  /// Parses a predicate like `val > 10`.
  PredicateRef P(const std::string& text) {
    auto pred = ParsePredicate(text);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString() << " in " << text;
    return pred.ok() ? *pred : nullptr;
  }

  std::string Str(const Tree& t) const { return PrintTree(t, label_); }
  std::string Str(const List& l) const { return PrintList(l, label_); }
  std::string Str(const Datum& d) const { return d.ToString(label_); }

  ObjectStore store_;
  AtomFn atom_;
  LabelFn label_;
  PredicateEnv env_;
};

}  // namespace testing
}  // namespace aqua

#endif  // AQUA_TESTS_TEST_UTIL_H_
