#include "lint/diagnostic.h"

#include <gtest/gtest.h>

namespace aqua::lint {
namespace {

TEST(DiagnosticTest, CodeIdsAndNamesAreStable) {
  EXPECT_STREQ(DiagCodeId(DiagCode::kEmptyPattern), "AQL001");
  EXPECT_STREQ(DiagCodeId(DiagCode::kUnknownCollection), "AQL012");
  EXPECT_STREQ(DiagCodeName(DiagCode::kDivergentClosure),
               "divergent-closure");
  EXPECT_STREQ(DiagCodeName(DiagCode::kContradictoryPredicate),
               "contradictory-predicate");
}

TEST(DiagnosticTest, DefaultSeverities) {
  // Plan-level inconsistencies are errors; pattern smells are warnings.
  EXPECT_EQ(DefaultSeverity(DiagCode::kUnreachableAnchor), Severity::kError);
  EXPECT_EQ(DefaultSeverity(DiagCode::kOperatorParamMismatch),
            Severity::kError);
  EXPECT_EQ(DefaultSeverity(DiagCode::kComputedAttribute), Severity::kError);
  EXPECT_EQ(DefaultSeverity(DiagCode::kUnknownCollection), Severity::kError);
  EXPECT_EQ(DefaultSeverity(DiagCode::kEmptyPattern), Severity::kWarning);
  EXPECT_EQ(DefaultSeverity(DiagCode::kIneffectivePrune), Severity::kWarning);
}

TEST(DiagnosticTest, FormatIncludesCodeNameContextAndSpan) {
  Diagnostic d;
  d.code = DiagCode::kDivergentClosure;
  d.severity = Severity::kWarning;
  d.message = "closure over a nullable body";
  d.source = "((a*)*)xyz";  // the span indexes this text
  d.span = {3, 10};
  d.context = "ListSubSelect";
  std::string line = FormatDiagnostic(d);
  EXPECT_NE(line.find("warning"), std::string::npos) << line;
  EXPECT_NE(line.find("AQL003"), std::string::npos) << line;
  EXPECT_NE(line.find("divergent-closure"), std::string::npos) << line;
  EXPECT_NE(line.find("ListSubSelect"), std::string::npos) << line;
  EXPECT_NE(line.find("3..10"), std::string::npos) << line;
}

TEST(DiagnosticTest, FormatOmitsOffsetsWithoutSource) {
  // A span with no source (builder-API plans parse predicates internally)
  // points into text the caller never saw: no offsets, no caret block.
  Diagnostic d;
  d.code = DiagCode::kContradictoryPredicate;
  d.severity = Severity::kWarning;
  d.message = "unsatisfiable";
  d.span = {3, 10};
  EXPECT_FALSE(SpanAddressesSource(d));
  std::string line = FormatDiagnostic(d);
  EXPECT_EQ(line.find("at "), std::string::npos) << line;
  EXPECT_EQ(line.find("3..10"), std::string::npos) << line;
  EXPECT_EQ(RenderDiagnostic(d), line);
}

TEST(DiagnosticTest, RenderRefusesSpanPastSourceEnd) {
  // A span reaching past the attached text cannot belong to it; caret
  // rendering into the wrong string would mislocate the finding.
  Diagnostic d;
  d.code = DiagCode::kContradictoryPredicate;
  d.message = "unsatisfiable";
  d.source = "short";
  d.span = {2, 40};
  EXPECT_FALSE(SpanAddressesSource(d));
  EXPECT_EQ(RenderDiagnostic(d), FormatDiagnostic(d));
  EXPECT_EQ(RenderDiagnostic(d).find('^'), std::string::npos);
}

TEST(DiagnosticTest, RenderUnderlinesTheSpan) {
  Diagnostic d;
  d.code = DiagCode::kContradictoryPredicate;
  d.severity = Severity::kWarning;
  d.message = "unsatisfiable";
  d.source = "{x > 3 && x < 1}";
  d.span = {1, 15};
  std::string rendered = RenderDiagnostic(d);
  EXPECT_NE(rendered.find("| {x > 3 && x < 1}"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("^~"), std::string::npos) << rendered;
}

TEST(DiagnosticTest, RenderFallsBackWithoutSourceOrSpan) {
  Diagnostic d;
  d.code = DiagCode::kEmptyPattern;
  d.message = "no match";
  EXPECT_EQ(RenderDiagnostic(d), FormatDiagnostic(d));
}

}  // namespace
}  // namespace aqua::lint
