// Golden tests for the abstract-interpretation pass: one test per new
// diagnostic code AQL013–AQL020, plus the fact domains themselves
// (cardinality intervals, element kinds, effects) and the rewrite-safety
// checker feeding the rewriter's veto.
#include "lint/absint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "lint/lint.h"
#include "query/builder.h"
#include "query/executor.h"
#include "query/rewriter.h"
#include "test_util.h"

namespace aqua::lint {
namespace {

bool Has(const std::vector<Diagnostic>& diags, DiagCode code) {
  return std::any_of(diags.begin(), diags.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& Get(const std::vector<Diagnostic>& diags, DiagCode code) {
  auto it = std::find_if(diags.begin(), diags.end(),
                         [code](const Diagnostic& d) { return d.code == code; });
  EXPECT_NE(it, diags.end()) << "missing " << DiagCodeId(code);
  return *it;
}

class AbsIntTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.store()
                  .schema()
                  .RegisterType("Doc", {{"title", ValueType::kString, true},
                                        {"val", ValueType::kInt, true}})
                  .status());
    ASSERT_OK_AND_ASSIGN(
        a_, db_.store().Create("Doc", {{"title", Value::String("a")},
                                       {"val", Value::Int(1)}}));
    ASSERT_OK_AND_ASSIGN(
        b_, db_.store().Create("Doc", {{"title", Value::String("b")},
                                       {"val", Value::Int(2)}}));
    Tree t = Tree::Node(NodePayload::Cell(a_),
                        {Tree::Leaf(NodePayload::Cell(b_))});
    ASSERT_OK(db_.RegisterTree("docs", std::move(t)));
    List l;
    l.Append(NodePayload::Cell(a_));
    l.Append(NodePayload::Cell(b_));
    ASSERT_OK(db_.RegisterList("doclist", std::move(l)));
  }

  TreePatternRef TP(const std::string& p) {
    PatternParserOptions opts;
    opts.default_attr = "title";
    auto tp = ParseTreePattern(p, opts);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    PatternParserOptions opts;
    opts.default_attr = "title";
    auto lp = ParseListPattern(p, opts);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }
  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }

  Database db_;
  Oid a_, b_;
};

// ---------------------------------------------------------------------------
// Fact domains.

TEST_F(AbsIntTest, CardIntervalBasics) {
  EXPECT_EQ(CardInterval::Exact(1).ToString(), "1");
  EXPECT_EQ(CardInterval::Empty().ToString(), "0");
  EXPECT_EQ(CardInterval::AtMost(48).ToString(), "0..48");
  EXPECT_EQ(CardInterval::Unknown().ToString(), "0..*");
  EXPECT_TRUE(CardInterval::Empty().provably_empty());
  EXPECT_FALSE(CardInterval::Unknown().provably_empty());
  EXPECT_TRUE(CardInterval::Exact(1).Disjoint(CardInterval::Empty()));
  EXPECT_FALSE(CardInterval::AtMost(3).Disjoint(CardInterval::Exact(2)));
}

TEST_F(AbsIntTest, ScanFactsAreExact) {
  auto r = AnalyzePlan(db_, Q::ScanTree("docs"));
  EXPECT_FALSE(r.root.is_set);
  EXPECT_EQ(r.root.elem, ElemKind::kTree);
  EXPECT_EQ(r.root.card.ToString(), "1");
  EXPECT_EQ(r.root.nodes_hi, 2u);  // the docs tree has two nodes
  EXPECT_TRUE(r.diags.empty());
}

TEST_F(AbsIntTest, SubSelectFactsAreBoundedByInputNodes) {
  auto r = AnalyzePlan(db_, Q::TreeSubSelect(Q::ScanTree("docs"), TP("?")));
  EXPECT_TRUE(r.root.is_set);
  EXPECT_EQ(r.root.elem, ElemKind::kTree);
  // At most one match piece per input node.
  EXPECT_EQ(r.root.card.ToString(), "0..2");
}

TEST_F(AbsIntTest, CertifiedApplyFactsCarryEffect) {
  auto plan = Q::TreeApplyExpr(
      Q::ScanTree("docs"),
      FnExpr::Choose(P("val > 1"), FnExpr::Const(a_), nullptr));
  auto r = AnalyzePlan(db_, plan);
  EXPECT_EQ(r.root.effect, FnEffect::kReadOnly);
  EXPECT_TRUE(r.root.parallel_certified);
  EXPECT_NE(r.root.ToString().find("parallel-certified"), std::string::npos)
      << r.root.ToString();
}

TEST_F(AbsIntTest, RenderFactsAnnotatesEveryNode) {
  std::string out =
      RenderFacts(db_, Q::TreeSubSelect(Q::ScanTree("docs"), TP("?")));
  EXPECT_NE(out.find("ScanTree"), std::string::npos) << out;
  EXPECT_NE(out.find(":: single tree, card 1"), std::string::npos) << out;
  EXPECT_NE(out.find(":: set of trees"), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// AQL013 — kind-flow mismatch.

TEST_F(AbsIntTest, AQL013TreeOpOverListFlow) {
  // The sub_select output is a *set of lists*; feeding it to a tree select
  // is only visible through the inferred element kind (the child is not a
  // scan, so AQL010 stays silent).
  auto plan = Q::TreeSelect(
      Q::ListSubSelect(Q::ScanList("doclist"), LP("?")), P("val > 0"));
  auto diags = Lint(db_, plan);
  ASSERT_TRUE(Has(diags, DiagCode::kKindFlowMismatch));
  const Diagnostic& d = Get(diags, DiagCode::kKindFlowMismatch);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.context, "TreeSelect");
  EXPECT_NE(d.message.find("list elements"), std::string::npos) << d.message;
}

TEST_F(AbsIntTest, AQL013ListOpOverTreeFlow) {
  auto plan = Q::ListSelect(
      Q::TreeSubSelect(Q::ScanTree("docs"), TP("?")), P("val > 0"));
  auto diags = Lint(db_, plan);
  ASSERT_TRUE(Has(diags, DiagCode::kKindFlowMismatch));
  EXPECT_EQ(Get(diags, DiagCode::kKindFlowMismatch).context, "ListSelect");
}

TEST_F(AbsIntTest, AQL013SilentOnDirectScans) {
  // Scan mismatches are AQL010's finding; the flow rule must not double-
  // report them.
  auto diags = Lint(db_, Q::TreeSubSelect(Q::ScanList("doclist"), TP("?")));
  EXPECT_TRUE(Has(diags, DiagCode::kOperatorParamMismatch));
  EXPECT_FALSE(Has(diags, DiagCode::kKindFlowMismatch));
}

// ---------------------------------------------------------------------------
// AQL014 — provably empty input flow.

TEST_F(AbsIntTest, AQL014EmptyInputFlow) {
  auto plan = Q::TreeSelect(Q::EmptySet(), P("val > 0"));
  auto diags = Lint(db_, plan);
  ASSERT_TRUE(Has(diags, DiagCode::kEmptyInputFlow));
  EXPECT_EQ(Get(diags, DiagCode::kEmptyInputFlow).severity,
            Severity::kWarning);
}

TEST_F(AbsIntTest, AQL014FiresAtFirstConsumerOnly) {
  // Select(EmptySet) is flagged; the apply above it consumes the *same*
  // propagated emptiness and must not repeat the finding.
  auto plan = Q::TreeApplyExpr(Q::TreeSelect(Q::EmptySet(), P("val > 0")),
                               FnExpr::Const(a_));
  auto diags = Lint(db_, plan);
  size_t count = static_cast<size_t>(
      std::count_if(diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.code == DiagCode::kEmptyInputFlow;
      }));
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(Get(diags, DiagCode::kEmptyInputFlow).context, "TreeSelect");
}

// ---------------------------------------------------------------------------
// AQL015 — tautological select.

TEST_F(AbsIntTest, AQL015TautologicalSelect) {
  // A derived tautology: NOT of a structural contradiction.
  auto plan = Q::TreeSelect(Q::ScanTree("docs"),
                            P("!(val == 1 && val != 1)"));
  auto diags = Lint(db_, plan);
  ASSERT_TRUE(Has(diags, DiagCode::kTautologicalSelect));
  EXPECT_EQ(Get(diags, DiagCode::kTautologicalSelect).severity,
            Severity::kWarning);
}

TEST_F(AbsIntTest, AQL015SilentOnExplicitTrue) {
  // A literal `true` is the idiomatic "no filter" and stays clean.
  auto diags = Lint(db_, Q::TreeSelect(Q::ScanTree("docs"), P("true")));
  EXPECT_FALSE(Has(diags, DiagCode::kTautologicalSelect));
}

// ---------------------------------------------------------------------------
// AQL016 / AQL017 — degenerate applies.

TEST_F(AbsIntTest, AQL016IdentityApply) {
  auto diags =
      Lint(db_, Q::TreeApplyExpr(Q::ScanTree("docs"), FnExpr::Identity()));
  ASSERT_TRUE(Has(diags, DiagCode::kIdentityApply));
  EXPECT_EQ(Get(diags, DiagCode::kIdentityApply).severity,
            Severity::kWarning);
}

TEST_F(AbsIntTest, AQL017ConstantApplyCollapsesSetInput) {
  // sub_select yields up to two pieces; a constant apply maps both onto
  // the same image, so the output set holds at most one element.
  auto plan = Q::TreeApplyExpr(
      Q::TreeSubSelect(Q::ScanTree("docs"), TP("?")), FnExpr::Const(a_));
  auto diags = Lint(db_, plan);
  ASSERT_TRUE(Has(diags, DiagCode::kConstantApplyCollapse));
  auto r = AnalyzePlan(db_, plan);
  EXPECT_EQ(r.root.card.hi, 1u);
}

TEST_F(AbsIntTest, AQL017SilentOverSingleInput) {
  // A constant apply over one tree maps one collection to one collection:
  // nothing collapses.
  auto diags =
      Lint(db_, Q::TreeApplyExpr(Q::ScanTree("docs"), FnExpr::Const(a_)));
  EXPECT_FALSE(Has(diags, DiagCode::kConstantApplyCollapse));
}

// ---------------------------------------------------------------------------
// AQL018 — uncertified (serial) apply.

TEST_F(AbsIntTest, AQL018OpaqueFunctionNote) {
  auto plan = Q::TreeApply(Q::ScanTree("docs"),
                           [](ObjectStore&, Oid oid) -> Result<Oid> {
                             return oid;
                           });
  auto diags = Lint(db_, plan);
  ASSERT_TRUE(Has(diags, DiagCode::kUncertifiedSerialFn));
  const Diagnostic& d = Get(diags, DiagCode::kUncertifiedSerialFn);
  EXPECT_EQ(d.severity, Severity::kNote);
  EXPECT_NE(d.message.find("opaque"), std::string::npos) << d.message;
}

TEST_F(AbsIntTest, AQL018SilentOnSnapshotWriteCertified) {
  // A bare update writes the store but has no order dependence, so it is
  // snapshot-write-certified: neither AQL018 nor AQL021 fires.
  auto plan = Q::TreeApplyExpr(
      Q::ScanTree("docs"),
      FnExpr::Update({{"title", Value::String("x")}}));
  auto diags = Lint(db_, plan);
  EXPECT_FALSE(Has(diags, DiagCode::kUncertifiedSerialFn));
  EXPECT_FALSE(Has(diags, DiagCode::kSnapshotWriteConflict));
}

// ---------------------------------------------------------------------------
// AQL021 — order-dependent store write (stays serial).

TEST_F(AbsIntTest, AQL021GuardReadsWrittenAttr) {
  // The guard reads `title`, the set_attr writes it in place: under a
  // parallel snapshot fold every item would see the pre-apply value,
  // diverging from the serial left-to-right evaluation.
  auto plan = Q::TreeApplyExpr(
      Q::ScanTree("docs"),
      FnExpr::Choose(P("title == \"x\""),
                     FnExpr::SetAttr({{"title", Value::String("y")}}),
                     nullptr));
  auto diags = Lint(db_, plan);
  ASSERT_TRUE(Has(diags, DiagCode::kSnapshotWriteConflict));
  const Diagnostic& d = Get(diags, DiagCode::kSnapshotWriteConflict);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("order dependence"), std::string::npos)
      << d.message;
  EXPECT_FALSE(Has(diags, DiagCode::kUncertifiedSerialFn));
}

TEST_F(AbsIntTest, AQL021UpdateReadsEverySetAttrWrite) {
  // `update` copies every attribute of its input, so composing it with an
  // in-place write is always order-dependent.
  auto plan = Q::TreeApplyExpr(
      Q::ScanTree("docs"),
      FnExpr::Compose(FnExpr::Update({{"title", Value::String("y")}}),
                      FnExpr::SetAttr({{"val", Value::Int(1)}})));
  auto diags = Lint(db_, plan);
  ASSERT_TRUE(Has(diags, DiagCode::kSnapshotWriteConflict));
  EXPECT_FALSE(Has(diags, DiagCode::kUncertifiedSerialFn));
}

TEST_F(AbsIntTest, AQL021SilentOnDisjointReadWrite) {
  // Guard reads `title`, set_attr writes `val`: disjoint, so the parallel
  // snapshot fold matches serial and the apply is certified.
  auto plan = Q::TreeApplyExpr(
      Q::ScanTree("docs"),
      FnExpr::Choose(P("title == \"x\""),
                     FnExpr::SetAttr({{"val", Value::Int(1)}}), nullptr));
  auto diags = Lint(db_, plan);
  EXPECT_FALSE(Has(diags, DiagCode::kSnapshotWriteConflict));
  EXPECT_FALSE(Has(diags, DiagCode::kUncertifiedSerialFn));
}

TEST_F(AbsIntTest, AQL018SilentOnCertifiedApply) {
  auto diags = Lint(
      db_, Q::TreeApplyExpr(Q::ScanTree("docs"),
                            FnExpr::Choose(P("val > 1"), FnExpr::Const(a_),
                                           nullptr)));
  EXPECT_FALSE(Has(diags, DiagCode::kUncertifiedSerialFn));
}

// ---------------------------------------------------------------------------
// AQL019 — emptiness reaches the root.

TEST_F(AbsIntTest, AQL019EmptyResultFlow) {
  auto plan = Q::TreeApplyExpr(Q::TreeSelect(Q::EmptySet(), P("val > 0")),
                               FnExpr::Identity());
  auto diags = Lint(db_, plan);
  ASSERT_TRUE(Has(diags, DiagCode::kEmptyResultFlow));
  EXPECT_EQ(Get(diags, DiagCode::kEmptyResultFlow).context, "TreeApply");
}

TEST_F(AbsIntTest, AQL019SilentWhenRootOriginatesTheEmptiness) {
  // An unsatisfiable predicate at the root is AQL009's finding (the
  // operator itself is empty); the flow rule needs a child to blame.
  auto plan =
      Q::TreeSelect(Q::ScanTree("docs"), P("val == 1 && val != 1"));
  auto diags = Lint(db_, plan);
  EXPECT_TRUE(Has(diags, DiagCode::kEmptyOperator));
  EXPECT_FALSE(Has(diags, DiagCode::kEmptyResultFlow));
}

// ---------------------------------------------------------------------------
// AQL020 — rewrite safety.

TEST_F(AbsIntTest, AQL020DisjointCardinality) {
  // Both sides are sets of trees, but [1,1] vs [0,0] cannot agree.
  auto diags = CheckRewriteSafety(
      db_, Q::TreeSelect(Q::ScanTree("docs"), P("true")), Q::EmptySet(),
      "bad-rule");
  ASSERT_TRUE(Has(diags, DiagCode::kUnsafeRewrite));
  const Diagnostic& d = Get(diags, DiagCode::kUnsafeRewrite);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.context, "bad-rule");
  EXPECT_NE(d.message.find("cardinality"), std::string::npos) << d.message;
}

TEST_F(AbsIntTest, AQL020ElementKindChange) {
  auto before = Q::TreeSubSelect(Q::ScanTree("docs"), TP("?"));
  auto after = Q::ListSubSelect(Q::ScanList("doclist"), LP("?"));
  auto diags = CheckRewriteSafety(db_, before, after, "kind-flip");
  ASSERT_TRUE(Has(diags, DiagCode::kUnsafeRewrite));
  EXPECT_NE(Get(diags, DiagCode::kUnsafeRewrite).message.find("element kind"),
            std::string::npos);
}

TEST_F(AbsIntTest, AQL020ShapeChange) {
  auto before = Q::TreeSubSelect(Q::ScanTree("docs"), TP("?"));
  auto diags =
      CheckRewriteSafety(db_, before, Q::ScanTree("docs"), "shape-flip");
  ASSERT_TRUE(Has(diags, DiagCode::kUnsafeRewrite));
  EXPECT_NE(Get(diags, DiagCode::kUnsafeRewrite).message.find("shape"),
            std::string::npos);
}

TEST_F(AbsIntTest, CertifiesTheRealSplitAnchorRewrite) {
  // The §4 rewrite the checker exists to guard: its genuine instances must
  // come back clean.
  ASSERT_OK(db_.CreateIndex("docs", "title"));
  auto before = Q::TreeSubSelect(Q::ScanTree("docs"),
                                 TP("{title == \"a\"}(?*)"));
  auto after = Q::IndexedSubSelect("docs", "title", P("title == \"a\""),
                                   TP("{title == \"a\"}(?*)"), {});
  EXPECT_TRUE(CheckRewriteSafety(db_, before, after, "split-anchor").empty());
}

TEST_F(AbsIntTest, RewriterVetoesUnsafeCandidates) {
  // A deliberately broken rule: folds any scan to the empty set. The cost
  // model loves it (cost 0); the safety checker must veto it.
  class EmptyScanRule : public RewriteRule {
   public:
    std::string name() const override { return "break-scans"; }
    Result<PlanRef> Apply(const PlanRef& node,
                          const Database& db) const override {
      (void)db;
      if (node->op != PlanOp::kScanTree) return PlanRef(nullptr);
      return Q::EmptySet();
    }
  };
  Rewriter rewriter(&db_);
  rewriter.AddRule(std::make_unique<EmptyScanRule>());
  auto plan = Q::ScanTree("docs");
  ASSERT_OK_AND_ASSIGN(PlanRef out, rewriter.Optimize(plan));
  EXPECT_TRUE(PlanEquals(out, plan)) << Explain(out);
  EXPECT_TRUE(rewriter.applied().empty());
  ASSERT_FALSE(rewriter.rejections().empty());
  EXPECT_EQ(rewriter.rejections().front().code, DiagCode::kUnsafeRewrite);
  EXPECT_EQ(rewriter.rejections().front().context, "break-scans");
}

TEST_F(AbsIntTest, RewriterStillAppliesSafeRules) {
  // Sanity: the veto must not block the genuine split-anchor rewrite.
  ASSERT_OK(db_.CreateIndex("docs", "title"));
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  auto plan = Q::TreeSubSelect(Q::ScanTree("docs"),
                               TP("{title == \"a\"}(?*)"));
  ASSERT_OK_AND_ASSIGN(PlanRef out, rewriter.Optimize(plan));
  EXPECT_EQ(out->op, PlanOp::kIndexedSubSelect) << Explain(out);
  EXPECT_TRUE(rewriter.rejections().empty());
}

// ---------------------------------------------------------------------------
// Spanless diagnostics (builder-API plans) render without carets.

TEST_F(AbsIntTest, BuilderPlanDiagnosticsRenderSpanless) {
  // The predicate was parsed internally: its span indexes text the lint
  // caller never supplied, so neither offsets nor a caret block may
  // render.
  auto plan =
      Q::TreeSelect(Q::ScanTree("docs"), P("val == 1 && val != 1"));
  auto diags = Lint(db_, plan);
  ASSERT_TRUE(Has(diags, DiagCode::kContradictoryPredicate));
  const Diagnostic& d = Get(diags, DiagCode::kContradictoryPredicate);
  EXPECT_TRUE(d.span.valid());    // the span exists...
  EXPECT_TRUE(d.source.empty());  // ...but addresses no visible source
  std::string rendered = RenderDiagnostic(d);
  EXPECT_EQ(rendered.find('^'), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("at offset"), std::string::npos) << rendered;
}

TEST_F(AbsIntTest, ShellPlanDiagnosticsKeepCarets) {
  // With the source supplied (the shell's case), carets still render.
  PlanLintOptions opts;
  opts.pattern_source = "val == 1 && val != 1";
  auto plan = Q::TreeSelect(Q::ScanTree("docs"),
                            P(opts.pattern_source));
  auto diags = LintPlan(db_, plan, opts);
  ASSERT_TRUE(Has(diags, DiagCode::kContradictoryPredicate));
  std::string rendered =
      RenderDiagnostic(Get(diags, DiagCode::kContradictoryPredicate));
  EXPECT_NE(rendered.find('^'), std::string::npos) << rendered;
}

// ---------------------------------------------------------------------------
// Enforcement level knob.

TEST_F(AbsIntTest, LevelParsingAndNames) {
  Level level = Level::kOff;
  EXPECT_TRUE(ParseLevel("warn", &level));
  EXPECT_EQ(level, Level::kWarn);
  EXPECT_TRUE(ParseLevel("error", &level));
  EXPECT_EQ(level, Level::kError);
  EXPECT_TRUE(ParseLevel("off", &level));
  EXPECT_EQ(level, Level::kOff);
  EXPECT_FALSE(ParseLevel("loud", &level));
  EXPECT_STREQ(LevelToString(Level::kError), "error");
}

TEST_F(AbsIntTest, SetEnforcementLevelOverridesEnvironment) {
  set_enforcement_level(Level::kError);
  EXPECT_EQ(EnforcementLevel(), Level::kError);
  set_enforcement_level(Level::kWarn);
  EXPECT_EQ(EnforcementLevel(), Level::kWarn);
}

TEST_F(AbsIntTest, ErrorLevelRefusesErrorPlans) {
  set_enforcement_level(Level::kError);
  Executor exec(&db_);

  // Error-severity finding (unknown collection): refused before compile.
  auto bad = Q::TreeSubSelect(Q::ScanTree("missing"), TP("?"));
  Result<Datum> refused = exec.Execute(bad);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().ToString().find("lint refuses"),
            std::string::npos)
      << refused.status().ToString();
  EXPECT_NE(refused.status().ToString().find("AQL012"), std::string::npos);

  // Warnings (identity apply) do not block even at `error`.
  auto warn_only =
      Q::TreeApplyExpr(Q::ScanTree("docs"), FnExpr::Identity());
  EXPECT_TRUE(exec.Execute(warn_only).ok());

  // Back at `warn` the same broken plan reaches the executor and fails
  // with the ordinary runtime error, not the lint gate.
  set_enforcement_level(Level::kWarn);
  Result<Datum> runtime = exec.Execute(bad);
  ASSERT_FALSE(runtime.ok());
  EXPECT_EQ(runtime.status().ToString().find("lint refuses"),
            std::string::npos);
}

}  // namespace
}  // namespace aqua::lint
