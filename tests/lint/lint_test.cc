#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/obs.h"
#include "query/builder.h"
#include "test_util.h"

namespace aqua::lint {
namespace {

bool Has(const std::vector<Diagnostic>& diags, DiagCode code) {
  return std::any_of(diags.begin(), diags.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

class LintPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One stored and one computed attribute (§3.1 footnote 2).
    ASSERT_OK(db_.store()
                  .schema()
                  .RegisterType("Doc", {{"title", ValueType::kString, true},
                                        {"word_count", ValueType::kInt,
                                         /*stored=*/false}})
                  .status());
    ASSERT_OK_AND_ASSIGN(
        Oid a, db_.store().Create("Doc", {{"title", Value::String("a")}}));
    ASSERT_OK_AND_ASSIGN(
        Oid b, db_.store().Create("Doc", {{"title", Value::String("b")}}));
    Tree t = Tree::Node(NodePayload::Cell(a),
                        {Tree::Leaf(NodePayload::Cell(b))});
    ASSERT_OK(db_.RegisterTree("docs", std::move(t)));
    List l;
    l.Append(NodePayload::Cell(a));
    l.Append(NodePayload::Cell(b));
    ASSERT_OK(db_.RegisterList("doclist", std::move(l)));
  }

  TreePatternRef TP(const std::string& p) {
    PatternParserOptions opts;
    opts.default_attr = "title";
    auto tp = ParseTreePattern(p, opts);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    PatternParserOptions opts;
    opts.default_attr = "title";
    auto lp = ParseListPattern(p, opts);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }
  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }

  Database db_;
};

TEST_F(LintPlanTest, CleanPlanHasNoDiagnostics) {
  auto plan = Q::TreeSubSelect(Q::ScanTree("docs"), TP("a(?*)"));
  EXPECT_TRUE(Lint(db_, plan).empty());
}

TEST_F(LintPlanTest, AQL012UnknownCollection) {
  auto diags = Lint(db_, Q::TreeSubSelect(Q::ScanTree("missing"), TP("a")));
  ASSERT_TRUE(Has(diags, DiagCode::kUnknownCollection));
  EXPECT_EQ(diags.front().severity, Severity::kError);
  EXPECT_EQ(diags.front().context, "ScanTree");
}

TEST_F(LintPlanTest, AQL010TreeOpOverListCollection) {
  // `docs` is a tree; scanning it as a list (and vice versa) is a
  // parameter mismatch, as is feeding a tree operator from a list scan.
  EXPECT_TRUE(Has(Lint(db_, Q::ScanList("docs")),
                  DiagCode::kOperatorParamMismatch));
  EXPECT_TRUE(Has(Lint(db_, Q::ScanTree("doclist")),
                  DiagCode::kOperatorParamMismatch));
  EXPECT_TRUE(
      Has(Lint(db_, Q::TreeSubSelect(Q::ScanList("doclist"), TP("a"))),
          DiagCode::kOperatorParamMismatch));
}

TEST_F(LintPlanTest, AQL010IndexedOpWithoutIndex) {
  auto plan = Q::IndexedSubSelect("docs", "title",
                                  P("title == \"a\""), TP("a(?*)"), {});
  EXPECT_TRUE(Has(Lint(db_, plan), DiagCode::kOperatorParamMismatch));
  // With the index built, the same plan is clean.
  ASSERT_OK(db_.CreateIndex("docs", "title"));
  EXPECT_TRUE(Lint(db_, plan).empty());
}

TEST_F(LintPlanTest, AQL009AndAQL005ForUnsatisfiableSelect) {
  auto diags =
      Lint(db_, Q::TreeSelect(Q::ScanTree("docs"),
                              P("title == \"a\" && title == \"b\"")));
  EXPECT_TRUE(Has(diags, DiagCode::kContradictoryPredicate));
  EXPECT_TRUE(Has(diags, DiagCode::kEmptyOperator));
}

TEST_F(LintPlanTest, AQL009ForEmptyPatternOperator) {
  auto diags = Lint(
      db_, Q::ListSubSelect(Q::ScanList("doclist"),
                            LP("{x > 3 && x < 1}")));
  EXPECT_TRUE(Has(diags, DiagCode::kEmptyOperator));
  EXPECT_TRUE(Has(diags, DiagCode::kEmptyPattern));
}

TEST_F(LintPlanTest, AQL011ComputedAttribute) {
  auto diags = Lint(db_, Q::TreeSubSelect(Q::ScanTree("docs"),
                                          TP("{word_count > 10}")));
  ASSERT_TRUE(Has(diags, DiagCode::kComputedAttribute));
  for (const Diagnostic& d : diags) {
    if (d.code != DiagCode::kComputedAttribute) continue;
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_NE(d.message.find("word_count"), std::string::npos);
  }
}

TEST_F(LintPlanTest, PatternSourceRendersCarets) {
  PlanLintOptions opts;
  opts.pattern_source = "{title == \"a\" && title == \"b\"}";
  auto diags = LintPlan(
      db_,
      Q::TreeSubSelect(Q::ScanTree("docs"),
                       TP("{title == \"a\" && title == \"b\"}")),
      opts);
  ASSERT_FALSE(diags.empty());
  std::string rendered = RenderDiagnostics(diags);
  EXPECT_NE(rendered.find("^"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("title"), std::string::npos) << rendered;
}

TEST_F(LintPlanTest, EmitsObsCounters) {
  obs::Registry::Global().ResetAll();
  obs::Registry::set_enabled(true);
  auto diags = Lint(db_, Q::TreeSubSelect(Q::ScanTree("missing"), TP("a")));
  ASSERT_FALSE(diags.empty());
#ifndef AQUA_OBS_DISABLED
  // The count macros expand to nothing when observability is compiled out.
  EXPECT_GE(obs::Registry::Global().GetCounter("lint.diag_emitted")->value(),
            diags.size());
  EXPECT_GE(obs::Registry::Global().GetCounter("lint.diag.AQL012")->value(),
            1u);
#endif
}

}  // namespace
}  // namespace aqua::lint
