#include "lint/automaton.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua::lint {
namespace {

AutomatonFacts Facts(const std::string& pattern) {
  auto lp = ParseListPattern(pattern);
  EXPECT_TRUE(lp.ok()) << lp.status().ToString() << " in " << pattern;
  return lp.ok() ? AnalyzeListPatternAutomaton(lp->body) : AutomatonFacts{};
}

TEST(AutomatonTest, PlainConcatenation) {
  AutomatonFacts f = Facts("a b");
  EXPECT_TRUE(f.compiled);
  EXPECT_FALSE(f.language_empty);
  EXPECT_FALSE(f.accepts_empty);
  EXPECT_FALSE(f.has_live_eps_cycle);
}

TEST(AutomatonTest, StarAcceptsEmpty) {
  AutomatonFacts f = Facts("[[a]]*");
  EXPECT_TRUE(f.compiled);
  EXPECT_FALSE(f.language_empty);
  EXPECT_TRUE(f.accepts_empty);
  EXPECT_FALSE(f.has_live_eps_cycle);
}

TEST(AutomatonTest, UnsatisfiablePredicateKillsItsEdge) {
  AutomatonFacts f = Facts("{x > 3 && x < 1}");
  EXPECT_TRUE(f.compiled);
  EXPECT_TRUE(f.language_empty);
  // A dead mandatory element also kills the whole concatenation.
  EXPECT_TRUE(Facts("a {x > 3 && x < 1} b").language_empty);
  // ...but not an alternation with a live branch.
  EXPECT_FALSE(Facts("a | {x > 3 && x < 1}").language_empty);
}

TEST(AutomatonTest, ClosureOverNullableBodyHasLiveEpsCycle) {
  AutomatonFacts f = Facts("[[[[a]]*]]+");
  EXPECT_TRUE(f.compiled);
  EXPECT_TRUE(f.has_live_eps_cycle);
  EXPECT_TRUE(f.accepts_empty);
  EXPECT_FALSE(f.language_empty);
}

TEST(AutomatonTest, DeadClosureHasNoLiveCycle) {
  // The inner closure diverges, but behind a dead predicate its states are
  // unreachable over live edges, so the cycle is not live.
  AutomatonFacts f = Facts("{x > 3 && x < 1} [[[[a]]*]]+ b");
  EXPECT_TRUE(f.compiled);
  EXPECT_TRUE(f.language_empty);
  EXPECT_FALSE(f.has_live_eps_cycle);
}

}  // namespace
}  // namespace aqua::lint
