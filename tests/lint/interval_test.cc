#include "lint/interval.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua::lint {
namespace {

PredSat Sat(const std::string& text) {
  auto pred = ParsePredicate(text);
  EXPECT_TRUE(pred.ok()) << pred.status().ToString() << " in " << text;
  return pred.ok() ? AnalyzePredicateSat(*pred)
                   : PredSat::kSatisfiable;
}

TEST(IntervalTest, TrueAndNullRefAreTautological) {
  EXPECT_EQ(AnalyzePredicateSat(nullptr), PredSat::kTautological);
  EXPECT_EQ(AnalyzePredicateSat(Predicate::True()), PredSat::kTautological);
}

TEST(IntervalTest, BareComparisonIsSatisfiableNotTautological) {
  // A comparison fails on objects lacking the attribute, so it is never a
  // tautology — and alone it is always satisfiable.
  EXPECT_EQ(Sat("x > 3"), PredSat::kSatisfiable);
  EXPECT_EQ(Sat("x != 3"), PredSat::kSatisfiable);
  EXPECT_EQ(Sat("name == \"a\""), PredSat::kSatisfiable);
}

TEST(IntervalTest, EmptyIntervalIsUnsatisfiable) {
  EXPECT_EQ(Sat("x > 3 && x < 1"), PredSat::kUnsatisfiable);
  EXPECT_EQ(Sat("x >= 6 && x <= 2"), PredSat::kUnsatisfiable);
  EXPECT_EQ(Sat("x > 3 && x < 4"), PredSat::kSatisfiable);
  EXPECT_EQ(Sat("x >= 3 && x <= 3"), PredSat::kSatisfiable);
  EXPECT_EQ(Sat("x > 3 && x <= 3"), PredSat::kUnsatisfiable);
}

TEST(IntervalTest, EqualityPinning) {
  EXPECT_EQ(Sat("x == 3 && x > 7"), PredSat::kUnsatisfiable);
  EXPECT_EQ(Sat("x == 1 && x == 2"), PredSat::kUnsatisfiable);
  EXPECT_EQ(Sat("x == 3 && x >= 3"), PredSat::kSatisfiable);
  EXPECT_EQ(Sat("x == \"a\" && x == \"b\""), PredSat::kUnsatisfiable);
}

TEST(IntervalTest, IncomparableFamilySplit) {
  // One stored value cannot satisfy comparisons against constants of
  // incomparable families (Value::Compare type-errors evaluate to false).
  EXPECT_EQ(Sat("x == \"a\" && x < 3"), PredSat::kUnsatisfiable);
  EXPECT_EQ(Sat("x > 1 && x > \"a\""), PredSat::kUnsatisfiable);
  // kNe is cross-type total, so it does not pin a family.
  EXPECT_EQ(Sat("x != \"a\" && x < 3"), PredSat::kSatisfiable);
}

TEST(IntervalTest, PointIntervalExclusion) {
  EXPECT_EQ(Sat("x >= 3 && x <= 3 && x != 3"), PredSat::kUnsatisfiable);
  EXPECT_EQ(Sat("x >= 3 && x <= 4 && x != 3"), PredSat::kSatisfiable);
}

TEST(IntervalTest, StructuralComplement) {
  EXPECT_EQ(Sat("x > 3 && !(x > 3)"), PredSat::kUnsatisfiable);
  EXPECT_EQ(Sat("x > 5 && !(x > 3)"), PredSat::kUnsatisfiable);
  EXPECT_EQ(Sat("x > 3 && !(x > 5)"), PredSat::kSatisfiable);
}

TEST(IntervalTest, EqualsNullNeverMatches) {
  // Null attribute values never satisfy a comparison at match time.
  EXPECT_EQ(Sat("x == null"), PredSat::kUnsatisfiable);
  EXPECT_EQ(Sat("x != null"), PredSat::kSatisfiable);
}

TEST(IntervalTest, BooleanCombinators) {
  EXPECT_EQ(Sat("true"), PredSat::kTautological);
  EXPECT_EQ(Sat("!true"), PredSat::kUnsatisfiable);
  // OR is unsatisfiable only when both arms are.
  EXPECT_EQ(Sat("x > 3 && x < 1 || y == 1 && y == 2"),
            PredSat::kUnsatisfiable);
  EXPECT_EQ(Sat("x > 3 && x < 1 || y == 1"), PredSat::kSatisfiable);
  // AND is unsatisfiable when either arm is.
  EXPECT_EQ(Sat("y == 1 && (x > 3 && x < 1)"), PredSat::kUnsatisfiable);
  // NOT flips tautological and unsatisfiable.
  EXPECT_EQ(Sat("!(x > 3 && x < 1)"), PredSat::kTautological);
}

TEST(IntervalTest, ConservativeOnIndependentAttributes) {
  EXPECT_EQ(Sat("x > 3 && y < 1"), PredSat::kSatisfiable);
  EXPECT_EQ(Sat("x == 1 && y == 2"), PredSat::kSatisfiable);
}

}  // namespace
}  // namespace aqua::lint
