#include "lint/pattern_lint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace aqua::lint {
namespace {

std::vector<Diagnostic> LintL(const std::string& pattern) {
  auto lp = ParseListPattern(pattern);
  EXPECT_TRUE(lp.ok()) << lp.status().ToString() << " in " << pattern;
  if (!lp.ok()) return {};
  PatternLintOptions opts;
  opts.source = pattern;
  return LintListPattern(*lp, opts);
}

std::vector<Diagnostic> LintT(const std::string& pattern) {
  auto tp = ParseTreePattern(pattern);
  EXPECT_TRUE(tp.ok()) << tp.status().ToString() << " in " << pattern;
  if (!tp.ok()) return {};
  PatternLintOptions opts;
  opts.source = pattern;
  return LintTreePattern(*tp, opts);
}

bool Has(const std::vector<Diagnostic>& diags, DiagCode code) {
  return std::any_of(diags.begin(), diags.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

/// The finding with `code`, failing the test when absent.
Diagnostic Find(const std::vector<Diagnostic>& diags, DiagCode code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return d;
  }
  ADD_FAILURE() << "no " << DiagCodeId(code) << " in "
                << RenderDiagnostics(diags);
  return Diagnostic{};
}

// ---------------------------------------------------------------------------
// Golden tests: one per diagnostic code, checking the source span.

TEST(PatternLintTest, AQL001EmptyPattern) {
  const std::string src = "a {x > 3 && x < 1} b";
  Diagnostic d = Find(LintL(src), DiagCode::kEmptyPattern);
  EXPECT_EQ(d.severity, Severity::kWarning);

  // Tree-level: an unsatisfiable root predicate empties the language.
  Diagnostic t = Find(LintT("{x == 1 && x == 2}(?*)"),
                      DiagCode::kEmptyPattern);
  EXPECT_EQ(std::string(DiagCodeId(t.code)), "AQL001");
}

TEST(PatternLintTest, AQL002VacuousPattern) {
  // Unanchored `?*` matches (a sublist of) every list.
  Diagnostic d = Find(LintL("?*"), DiagCode::kVacuousPattern);
  EXPECT_EQ(d.severity, Severity::kWarning);

  // A bare any-node matches some subtree of every tree.
  EXPECT_TRUE(Has(LintT("?"), DiagCode::kVacuousPattern));
  // ...but a labeled leaf does not.
  EXPECT_FALSE(Has(LintT("a"), DiagCode::kVacuousPattern));
  // Anchored, `?*` is no longer trivially true of a sub-sequence.
  EXPECT_FALSE(Has(LintL("^a ?*"), DiagCode::kVacuousPattern));
}

TEST(PatternLintTest, AQL003DivergentClosure) {
  const std::string src = "[[[[a]]*]]+";
  Diagnostic d = Find(LintL(src), DiagCode::kDivergentClosure);
  EXPECT_TRUE(d.span.valid());
  EXPECT_EQ(SpanText(src, d.span), src);
  // A closure over a non-nullable body is fine.
  EXPECT_FALSE(Has(LintL("[[a]]+"), DiagCode::kDivergentClosure));
}

TEST(PatternLintTest, AQL004DeadAltBranch) {
  // Duplicate branch: the second `a` can never contribute a new match.
  Diagnostic d = Find(LintL("a | a"), DiagCode::kDeadAltBranch);
  EXPECT_TRUE(d.span.valid());
  // Empty-language branch.
  EXPECT_TRUE(Has(LintL("a | {x > 3 && x < 1}"), DiagCode::kDeadAltBranch));
  EXPECT_FALSE(Has(LintL("a | b"), DiagCode::kDeadAltBranch));
}

TEST(PatternLintTest, AQL005ContradictoryPredicate) {
  const std::string src = "{duration >= 6 && duration <= 2}";
  Diagnostic d = Find(LintL(src), DiagCode::kContradictoryPredicate);
  EXPECT_TRUE(d.span.valid());
  EXPECT_EQ(SpanText(src, d.span), "duration >= 6 && duration <= 2");
  // The per-element sequence from examples/music_db.cpp is NOT
  // contradictory: the two comparisons constrain different elements.
  EXPECT_FALSE(Has(LintL("{duration >= 6} {duration <= 2}"),
                   DiagCode::kContradictoryPredicate));
}

TEST(PatternLintTest, AQL006PointArityMismatch) {
  // Closure at `x` whose body has no free point `x` cannot iterate.
  Diagnostic d = Find(LintT("[[a(b)]]*@x"), DiagCode::kPointArityMismatch);
  EXPECT_EQ(d.severity, Severity::kWarning);
  // Concatenation at `x` whose left side has no free `x` to fill.
  EXPECT_TRUE(Has(LintT("a(b) .@x c"), DiagCode::kPointArityMismatch));
  // The well-formed versions are clean.
  EXPECT_FALSE(Has(LintT("[[a(b @x)]]*@x"), DiagCode::kPointArityMismatch));
  EXPECT_FALSE(Has(LintT("a(b @x) .@x c"), DiagCode::kPointArityMismatch));
}

TEST(PatternLintTest, AQL007UnreachableAnchor) {
  // A root anchor below the root can never hold. The parser only accepts
  // `^` outermost, so the ill-formed pattern is built programmatically —
  // `a(^b)` in the surface syntax, were it expressible.
  auto inner = TreePattern::RootAnchor(
      TreePattern::Leaf(Predicate::AttrEquals("name", Value::String("b"))));
  auto tp = TreePattern::Node(
      Predicate::AttrEquals("name", Value::String("a")),
      ListPattern::TreeAtom(std::move(inner)));
  Diagnostic d =
      Find(LintTreePattern(tp), DiagCode::kUnreachableAnchor);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_FALSE(Has(LintT("^a(b)"), DiagCode::kUnreachableAnchor));
}

TEST(PatternLintTest, AQL008IneffectivePrune) {
  // Pruning the whole match leaves nothing to return.
  EXPECT_TRUE(Has(LintL("!a"), DiagCode::kIneffectivePrune));
  EXPECT_TRUE(Has(LintT("!a(b)"), DiagCode::kIneffectivePrune));
  // A prune of a proper part is the intended §3.2 use.
  EXPECT_FALSE(Has(LintL("!a b"), DiagCode::kIneffectivePrune));
  EXPECT_FALSE(Has(LintT("a(!b c)"), DiagCode::kIneffectivePrune));
}

// ---------------------------------------------------------------------------
// Sub-pattern findings do not leak query-level codes.

TEST(PatternLintTest, SubPatternLevelSkipsWholePatternFindings) {
  PatternLintOptions opts;
  opts.query_level = false;
  auto lp = ParseListPattern("?*");
  ASSERT_TRUE(lp.ok());
  EXPECT_FALSE(Has(LintListPattern(*lp, opts), DiagCode::kVacuousPattern));
}

// ---------------------------------------------------------------------------
// Regression: every pattern shipped in examples/ lints clean.

TEST(PatternLintTest, ExamplesTreePatternsAreClean) {
  const char* kTreePatterns[] = {
      "section(?* figure caption ?*)",  // document_store.cpp
      "section(?* figure)",             // document_store.cpp
      "{words > 250}",                  // document_store.cpp
      "Brazil(!?* USA !?*)",            // family_tree.cpp
      "USA(?+)",                        // family_tree.cpp
      "select(!? and)",                 // parse_tree_optimizer.cpp
      "a(?*)",                          // quickstart.cpp
      "a",                              // quickstart.cpp
      "M([[S(H)]]+)",                   // rna_structures.cpp
      "B(S(I(?*)))",                    // rna_structures.cpp
  };
  for (const char* p : kTreePatterns) {
    std::vector<Diagnostic> diags = LintT(p);
    EXPECT_TRUE(diags.empty())
        << "pattern '" << p << "' is not clean:\n" << RenderDiagnostics(diags);
  }
}

TEST(PatternLintTest, ExamplesListPatternsAreClean) {
  const char* kListPatterns[] = {
      "figure caption",                  // document_store.cpp
      "A ? ? F",                         // music_db.cpp
      "{duration >= 6} {duration <= 2}", // music_db.cpp
      "a ? a",                           // quickstart.cpp
  };
  for (const char* p : kListPatterns) {
    std::vector<Diagnostic> diags = LintL(p);
    EXPECT_TRUE(diags.empty())
        << "pattern '" << p << "' is not clean:\n" << RenderDiagnostics(diags);
  }
}

}  // namespace
}  // namespace aqua::lint
