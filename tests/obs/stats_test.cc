#include "obs/stats.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "test_util.h"

namespace aqua::obs {
namespace {

/// One-op sample with the fields the warehouse folds.
OpSample Sample(const std::string& path, uint64_t node_fp, uint64_t in,
                uint64_t out, uint64_t wall_ns = 1000,
                uint64_t probes = 0, uint64_t candidates = 0) {
  OpSample s;
  s.op_name = "sub_select";
  s.path = path;
  s.node_fp = node_fp;
  s.calls = 1;
  s.in_rows = in;
  s.out_rows = out;
  s.wall_ns = wall_ns;
  s.cpu_ns = wall_ns;
  s.probes = probes;
  s.candidates = candidates;
  return s;
}

#ifndef AQUA_OBS_DISABLED

TEST(StatsWarehouseTest, HarvestCreatesRecordsAndLearnedEntries) {
  StatsWarehouse wh(/*capacity=*/64);
  wh.Harvest(0xabc, {Sample("0", 0x1, 100, 10), Sample("0.0", 0x2, 100, 100)});
  EXPECT_EQ(wh.size(), 2u);

  std::vector<OpStatsRow> rows = wh.RowsFor(0xabc);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].path, "0");  // sorted by path
  EXPECT_EQ(rows[0].op_name, "sub_select");
  EXPECT_EQ(rows[0].calls, 1u);
  EXPECT_DOUBLE_EQ(rows[0].in_rows, 100.0);
  EXPECT_DOUBLE_EQ(rows[0].out_rows, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].selectivity, 0.1);
  EXPECT_EQ(rows[1].path, "0.0");

  double sel = 0;
  uint64_t calls = 0;
  EXPECT_TRUE(wh.LearnedSelectivity(0x1, &sel, &calls));
  EXPECT_DOUBLE_EQ(sel, 0.1);
  EXPECT_EQ(calls, 1u);
  EXPECT_FALSE(wh.LearnedSelectivity(0x999, &sel, &calls));
}

TEST(StatsWarehouseTest, EwmaSmoothsAcrossHarvests) {
  StatsWarehouse wh(/*capacity=*/64);
  // First harvest sets the value directly; later ones blend at kAlpha.
  wh.Harvest(0xabc, {Sample("0", 0x1, 100, 10)});   // sel 0.10
  wh.Harvest(0xabc, {Sample("0", 0x1, 100, 60)});   // sel 0.60
  std::vector<OpStatsRow> rows = wh.RowsFor(0xabc);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].calls, 2u);
  // 0.8 * 0.10 + 0.2 * 0.60 = 0.20
  EXPECT_NEAR(rows[0].selectivity, 0.2, 1e-9);
  double sel = 0;
  uint64_t calls = 0;
  ASSERT_TRUE(wh.LearnedSelectivity(0x1, &sel, &calls));
  EXPECT_NEAR(sel, 0.2, 1e-9);
  EXPECT_EQ(calls, 2u);
}

TEST(StatsWarehouseTest, CandidatesPerProbeOnlyForIndexedOps) {
  StatsWarehouse wh(/*capacity=*/64);
  wh.Harvest(0x1, {Sample("0", 0xa, 100, 10)});  // no probes
  wh.Harvest(0x2, {Sample("0", 0xb, 40, 10, 1000, /*probes=*/4,
                          /*candidates=*/40)});
  double cpp = 0;
  uint64_t calls = 0;
  EXPECT_FALSE(wh.LearnedCandidates(0xa, &cpp, &calls));
  ASSERT_TRUE(wh.LearnedCandidates(0xb, &cpp, &calls));
  EXPECT_DOUBLE_EQ(cpp, 10.0);  // 40 candidates / 4 probes
  std::vector<OpStatsRow> rows = wh.RowsFor(0x1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_LT(rows[0].candidates_per_probe, 0.0);  // never observed
}

TEST(StatsWarehouseTest, EvictsLeastRecentlyUpdatedAtCapacity) {
  StatsWarehouse wh(/*capacity=*/3);
  EXPECT_EQ(wh.capacity(), 3u);
  wh.Harvest(0x1, {Sample("0", 0xa, 10, 1)});
  wh.Harvest(0x2, {Sample("0", 0xb, 10, 1)});
  wh.Harvest(0x3, {Sample("0", 0xc, 10, 1)});
  EXPECT_EQ(wh.size(), 3u);
  // Touch 0x1 so 0x2 is the least-recently-updated record.
  wh.Harvest(0x1, {Sample("0", 0xa, 10, 1)});
  wh.Harvest(0x4, {Sample("0", 0xd, 10, 1)});
  EXPECT_EQ(wh.size(), 3u);
  EXPECT_TRUE(wh.RowsFor(0x2).empty());   // evicted
  EXPECT_EQ(wh.RowsFor(0x1).size(), 1u);  // survived
  EXPECT_EQ(wh.RowsFor(0x4).size(), 1u);
}

TEST(StatsWarehouseTest, ShrinkingCapacityEvictsImmediately) {
  StatsWarehouse wh(/*capacity=*/8);
  for (uint64_t fp = 1; fp <= 6; ++fp) {
    wh.Harvest(fp, {Sample("0", fp + 0x100, 10, 1)});
  }
  EXPECT_EQ(wh.size(), 6u);
  wh.set_capacity(2);
  EXPECT_EQ(wh.size(), 2u);
  EXPECT_EQ(wh.RowsFor(5).size(), 1u);  // most recent survive
  EXPECT_EQ(wh.RowsFor(6).size(), 1u);
  EXPECT_TRUE(wh.RowsFor(1).empty());
}

TEST(StatsWarehouseTest, CapacityDefaultsToEnvOrFourThousand) {
  ::setenv("AQUA_STATS_CAP", "2", 1);
  StatsWarehouse wh;  // capacity 0 -> read env per operation
  EXPECT_EQ(wh.capacity(), 2u);
  wh.Harvest(0x1, {Sample("0", 0xa, 10, 1)});
  wh.Harvest(0x2, {Sample("0", 0xb, 10, 1)});
  wh.Harvest(0x3, {Sample("0", 0xc, 10, 1)});
  EXPECT_EQ(wh.size(), 2u);
  EXPECT_TRUE(wh.RowsFor(0x1).empty());  // oldest went first
  ::unsetenv("AQUA_STATS_CAP");
  EXPECT_EQ(wh.capacity(), 4096u);
}

TEST(StatsWarehouseTest, RowsSortByWallTimeDescending) {
  StatsWarehouse wh(/*capacity=*/64);
  wh.Harvest(0x1, {Sample("0", 0xa, 10, 1, /*wall_ns=*/100)});
  wh.Harvest(0x2, {Sample("0", 0xb, 10, 1, /*wall_ns=*/90000)});
  wh.Harvest(0x3, {Sample("0", 0xc, 10, 1, /*wall_ns=*/5000)});
  std::vector<OpStatsRow> rows = wh.Rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].plan_fp, 0x2u);
  EXPECT_EQ(rows[1].plan_fp, 0x3u);
  EXPECT_EQ(rows[2].plan_fp, 0x1u);
}

TEST(StatsWarehouseTest, TextAndJsonRenderings) {
  StatsWarehouse wh(/*capacity=*/64);
  wh.Harvest(0x1234, {Sample("0", 0xa, 100, 10, 2000000, 2, 20)});
  std::string text = wh.ToText();
  EXPECT_NE(text.find("0000000000001234"), std::string::npos) << text;
  EXPECT_NE(text.find("sub_select"), std::string::npos);
  EXPECT_NE(text.find("cand/probe"), std::string::npos);
  std::string json = wh.ToJson();
  EXPECT_NE(json.find("\"stats\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"0000000000001234\""), std::string::npos);
  EXPECT_NE(json.find("\"selectivity\":0.1"), std::string::npos);
  EXPECT_NE(json.find("\"candidates_per_probe\":10"), std::string::npos);
}

TEST(StatsWarehouseTest, SaveLoadRoundTripsRecordsAndLearned) {
  std::string path =
      ::testing::TempDir() + "/aqua_stats_roundtrip.txt";
  StatsWarehouse wh(/*capacity=*/64);
  wh.Harvest(0x1, {Sample("0", 0xa, 100, 10, 5000, 2, 20),
                   Sample("0.0", 0xb, 100, 100)});
  wh.Harvest(0x1, {Sample("0", 0xa, 100, 30, 7000, 2, 24)});
  ASSERT_OK(wh.Save(path));

  StatsWarehouse other(/*capacity=*/64);
  ASSERT_OK(other.Load(path));
  EXPECT_EQ(other.size(), wh.size());
  std::vector<OpStatsRow> want = wh.RowsFor(0x1);
  std::vector<OpStatsRow> got = other.RowsFor(0x1);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].path, want[i].path);
    EXPECT_EQ(got[i].op_name, want[i].op_name);
    EXPECT_EQ(got[i].node_fp, want[i].node_fp);
    EXPECT_EQ(got[i].calls, want[i].calls);
    EXPECT_NEAR(got[i].selectivity, want[i].selectivity, 1e-6);
    EXPECT_NEAR(got[i].candidates_per_probe, want[i].candidates_per_probe,
                1e-6);
  }
  double sel = 0, cpp = 0;
  uint64_t calls = 0;
  ASSERT_TRUE(other.LearnedSelectivity(0xa, &sel, &calls));
  EXPECT_EQ(calls, 2u);
  ASSERT_TRUE(other.LearnedCandidates(0xa, &cpp, &calls));
  EXPECT_GT(cpp, 0.0);
  std::remove(path.c_str());
}

TEST(StatsWarehouseTest, LoadMergesAndRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/aqua_stats_merge.txt";
  StatsWarehouse a(/*capacity=*/64);
  a.Harvest(0x1, {Sample("0", 0xa, 100, 10)});
  ASSERT_OK(a.Save(path));

  StatsWarehouse b(/*capacity=*/64);
  b.Harvest(0x2, {Sample("0", 0xb, 10, 5)});
  ASSERT_OK(b.Load(path));
  EXPECT_EQ(b.size(), 2u);  // merged, not replaced
  EXPECT_EQ(b.RowsFor(0x2).size(), 1u);

  EXPECT_TRUE(b.Load(path + ".does-not-exist").IsNotFound());

  std::string bad = ::testing::TempDir() + "/aqua_stats_bad.txt";
  {
    std::FILE* f = std::fopen(bad.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not-a-stats-file v9\n", f);
    std::fclose(f);
  }
  EXPECT_TRUE(b.Load(bad).IsParseError());
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

TEST(StatsWarehouseTest, SaveLoadStatsResolveEnvFile) {
  std::string path = ::testing::TempDir() + "/aqua_stats_env.txt";
  // With no argument and no env var there is nowhere to write.
  ::unsetenv("AQUA_STATS_FILE");
  EXPECT_TRUE(SaveStats().IsInvalidArgument());
  EXPECT_TRUE(LoadStats().IsInvalidArgument());

  ::setenv("AQUA_STATS_FILE", path.c_str(), 1);
  StatsWarehouse& wh = StatsWarehouse::Global();
  wh.Reset();
  wh.Harvest(0x77, {Sample("0", 0xe, 10, 5)});
  ASSERT_OK(SaveStats());
  wh.Reset();
  EXPECT_EQ(wh.size(), 0u);
  ASSERT_OK(LoadStats());
  EXPECT_EQ(wh.size(), 1u);
  EXPECT_EQ(wh.RowsFor(0x77).size(), 1u);
  ::unsetenv("AQUA_STATS_FILE");
  wh.Reset();
  std::remove(path.c_str());
}

TEST(StatsWarehouseTest, HarvestBumpsRegistryCountersAndGauge) {
  Registry& reg = Registry::Global();
  Snapshot before = reg.Snap();
  StatsWarehouse wh(/*capacity=*/1);
  wh.Harvest(0x1, {Sample("0", 0xa, 10, 1)});
  wh.Harvest(0x2, {Sample("0", 0xb, 10, 1)});  // evicts 0x1's record
  Snapshot delta = reg.Snap().DeltaSince(before);
  EXPECT_GE(delta.CounterValue("stats.harvests"), 2u);
  EXPECT_GE(delta.CounterValue("stats.evictions"), 1u);
}

#else  // AQUA_OBS_DISABLED

TEST(StatsWarehouseStubTest, EverythingIsInertWhenCompiledOut) {
  StatsWarehouse& wh = StatsWarehouse::Global();
  wh.Harvest(0x1, {Sample("0", 0xa, 100, 10)});
  EXPECT_EQ(wh.size(), 0u);
  EXPECT_TRUE(wh.Rows().empty());
  double sel = 0;
  uint64_t calls = 0;
  EXPECT_FALSE(wh.LearnedSelectivity(0xa, &sel, &calls));
  EXPECT_FALSE(wh.LearnedCandidates(0xa, &sel, &calls));
  EXPECT_NE(wh.ToText().find("compiled out"), std::string::npos);
  EXPECT_EQ(wh.ToJson(), "{\"stats\":[]}");
  EXPECT_OK(wh.Save("/nonexistent/dir/file"));
  EXPECT_OK(wh.Load("/nonexistent/dir/file"));
  EXPECT_OK(SaveStats());
  EXPECT_OK(LoadStats());
}

#endif  // AQUA_OBS_DISABLED

}  // namespace
}  // namespace aqua::obs
