#include "obs/query_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/status.h"

namespace aqua::obs {
namespace {

#ifndef AQUA_OBS_DISABLED

TEST(QueryContextTest, IdsAreProcessUniqueAndMonotonic) {
  QueryContext a;
  QueryContext b;
  EXPECT_GT(a.id(), 0u);
  EXPECT_GT(b.id(), a.id());
}

TEST(QueryContextTest, CheckPointIsOkWithoutLimits) {
  QueryContext q;
  EXPECT_TRUE((q.CheckPoint()).ok());
  EXPECT_FALSE(q.cancel_requested());
  EXPECT_TRUE((q.CancelStatus()).ok());
}

TEST(QueryContextTest, CancelFirstCallerWins) {
  QueryContext q;
  q.Cancel(StatusCode::kCancelled, "was killed");
  q.Cancel(StatusCode::kDeadlineExceeded, "too late, already dead");
  EXPECT_TRUE(q.cancel_requested());
  Status st = q.CancelStatus();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("was killed"), std::string::npos)
      << st.ToString();
  // The id is baked into the message for log correlation.
  EXPECT_NE(st.message().find(std::to_string(q.id())), std::string::npos);
  // CheckPoint reports the same status from now on.
  EXPECT_EQ(q.CheckPoint().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, CancelWithOkCodeIsIgnored) {
  QueryContext q;
  q.Cancel(StatusCode::kOk, "not a cancellation");
  EXPECT_FALSE(q.cancel_requested());
  EXPECT_TRUE((q.CheckPoint()).ok());
}

TEST(QueryContextTest, DeadlineExpiryBecomesDeadlineExceeded) {
  QueryContext q;
  q.set_deadline_after_ns(1);  // effectively already expired
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Status st = q.CheckPoint();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_TRUE(q.cancel_requested());
}

TEST(QueryContextTest, DeadlineZeroDisarms) {
  QueryContext q;
  q.set_deadline_after_ns(1);
  q.set_deadline_after_ns(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE((q.CheckPoint()).ok());
}

TEST(QueryContextTest, MemLimitBreachCancels) {
  QueryContext q;
  q.set_mem_limit_bytes(1000);
  q.AddMem(999);
  EXPECT_TRUE((q.CheckPoint()).ok());
  q.AddMem(500);
  Status st = q.CheckPoint();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
  EXPECT_NE(st.message().find("memory limit"), std::string::npos);
}

TEST(QueryContextTest, MemAccountingTracksCurrentAndPeak) {
  QueryContext q;
  q.AddMem(2000);
  q.AddMem(-1500);
  EXPECT_EQ(q.mem_bytes(), 500u);
  EXPECT_EQ(q.mem_peak_bytes(), 2000u);
  q.AddMem(300);
  EXPECT_EQ(q.mem_bytes(), 800u);
  EXPECT_EQ(q.mem_peak_bytes(), 2000u);  // peak is sticky
}

TEST(QueryContextTest, CountersAccumulate) {
  QueryContext q;
  q.AddCpuNs(100);
  q.AddCpuNs(23);
  q.AddRows(7);
  q.AddNodes(512);
  q.AddMorselsTotal(4);
  q.AddMorselsDone(1);
  q.AddMorselsDone(3);
  EXPECT_EQ(q.cpu_ns(), 123u);
  EXPECT_EQ(q.rows(), 7u);
  EXPECT_EQ(q.nodes(), 512u);
  EXPECT_EQ(q.morsels_total(), 4u);
  EXPECT_EQ(q.morsels_done(), 4u);
}

TEST(QueryContextTest, ScopeInstallsAndNests) {
  EXPECT_EQ(QueryContext::Current(), nullptr);
  QueryContext outer;
  {
    QueryContext::Scope a(&outer);
    EXPECT_EQ(QueryContext::Current(), &outer);
    QueryContext inner;
    {
      QueryContext::Scope b(&inner);
      EXPECT_EQ(QueryContext::Current(), &inner);
    }
    EXPECT_EQ(QueryContext::Current(), &outer);
  }
  EXPECT_EQ(QueryContext::Current(), nullptr);
}

TEST(QueryContextTest, ScopeIsPerThread) {
  QueryContext q;
  QueryContext::Scope scope(&q);
  QueryContext* seen = &q;  // overwritten below
  std::thread other([&] { seen = QueryContext::Current(); });
  other.join();
  EXPECT_EQ(seen, nullptr);
  EXPECT_EQ(QueryContext::Current(), &q);
}

TEST(QueryContextTest, EnvKnobsAreReadPerCall) {
  ::setenv("AQUA_QUERY_TIMEOUT_MS", "250", 1);
  EXPECT_EQ(DefaultQueryTimeoutNs(), 250ull * 1000000ull);
  ::setenv("AQUA_QUERY_TIMEOUT_MS", "nonsense", 1);
  EXPECT_EQ(DefaultQueryTimeoutNs(), 0u);
  ::unsetenv("AQUA_QUERY_TIMEOUT_MS");
  EXPECT_EQ(DefaultQueryTimeoutNs(), 0u);

  ::setenv("AQUA_QUERY_MEM_LIMIT_MB", "2", 1);
  EXPECT_EQ(DefaultQueryMemLimitBytes(), 2ull * 1024 * 1024);
  ::unsetenv("AQUA_QUERY_MEM_LIMIT_MB");
  EXPECT_EQ(DefaultQueryMemLimitBytes(), 0u);
}

TEST(QueryContextTest, ClocksAdvance) {
  uint64_t t0 = QueryContext::NowNs();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(QueryContext::NowNs(), t0);
  // Burn a little CPU so the thread clock moves.
  volatile uint64_t sink = 0;
  uint64_t c0 = QueryContext::ThreadCpuNs();
  for (int i = 0; i < 100000; ++i) sink += static_cast<uint64_t>(i);
  EXPECT_GE(QueryContext::ThreadCpuNs(), c0);
}

#else  // AQUA_OBS_DISABLED

TEST(QueryContextStubTest, EverythingIsInert) {
  QueryContext q;
  EXPECT_EQ(q.id(), 0u);
  q.Cancel(StatusCode::kCancelled, "ignored");
  EXPECT_FALSE(q.cancel_requested());
  EXPECT_TRUE(q.CheckPoint().ok());
  q.AddMem(1000);
  EXPECT_EQ(q.mem_bytes(), 0u);
  EXPECT_EQ(QueryContext::Current(), nullptr);
  QueryContext::Scope scope(&q);
  EXPECT_EQ(QueryContext::Current(), nullptr);
  EXPECT_EQ(DefaultQueryTimeoutNs(), 0u);
  EXPECT_EQ(DefaultQueryMemLimitBytes(), 0u);
}

#endif  // AQUA_OBS_DISABLED

}  // namespace
}  // namespace aqua::obs
