#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace aqua::obs {
namespace {

FlightEvent MakeEvent(uint64_t wall_ns, uint64_t fingerprint = 0x42) {
  FlightEvent e;
  e.kind = static_cast<uint32_t>(FlightEventKind::kExecute);
  e.fingerprint = fingerprint;
  e.wall_ns = wall_ns;
  e.threads = 1;
  return e;
}

TEST(FlightRecorderTest, RecordAndDumpRoundTrip) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
  rec.Record(MakeEvent(100, 0xaa));
  rec.Record(MakeEvent(200, 0xbb));
  rec.Record(MakeEvent(300, 0xcc));
  std::vector<FlightEvent> events = rec.Dump();
  ASSERT_EQ(events.size(), 3u);
  // Oldest first, seq strictly increasing.
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[0].fingerprint, 0xaau);
  EXPECT_EQ(events[0].wall_ns, 100u);
  EXPECT_EQ(events[2].fingerprint, 0xccu);
  // Event timestamps are monotone within a thread.
  EXPECT_LE(events[0].t_ns, events[2].t_ns);
  EXPECT_EQ(rec.retained(), 3u);
}

TEST(FlightRecorderTest, CapacityBoundsRetention) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
  const size_t n = FlightRecorder::kRingCapacity + 100;
  for (size_t i = 0; i < n; ++i) {
    rec.Record(MakeEvent(i));
  }
  std::vector<FlightEvent> events = rec.Dump();
  // This thread's ring holds at most kRingCapacity events; the overwritten
  // prefix is gone and the newest event survives.
  ASSERT_LE(events.size(), FlightRecorder::kRingCapacity);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().wall_ns, n - 1);
  EXPECT_LE(rec.retained(), FlightRecorder::kRingCapacity);
}

TEST(FlightRecorderTest, PerThreadRingsMergeBySeq) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 50;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        rec.Record(MakeEvent(i, /*fingerprint=*/t));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  std::vector<FlightEvent> events = rec.Dump();
  EXPECT_EQ(events.size(), kThreads * kPerThread);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  EXPECT_GE(rec.rings(), kThreads);
}

TEST(FlightRecorderTest, ConcurrentDumpNeverTearsEvents) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
  std::atomic<bool> stop{false};
  // Writers fill their rings (wrapping repeatedly) while a reader dumps:
  // every event a dump returns must be internally consistent (a torn slot
  // would mix the marker fields).
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 2; ++t) {
    writers.emplace_back([&] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        FlightEvent e = MakeEvent(i, /*fingerprint=*/i);
        e.tree_steps = i;  // mirror marker: must match wall_ns/fingerprint
        rec.Record(e);
        ++i;
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    for (const FlightEvent& e : rec.Dump()) {
      EXPECT_EQ(e.wall_ns, e.fingerprint);
      EXPECT_EQ(e.wall_ns, e.tree_steps);
    }
  }
  stop.store(true);
  for (std::thread& th : writers) th.join();
}

TEST(FlightRecorderTest, TextAndJsonRenderings) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
  FlightEvent e = MakeEvent(1500000, 0xbeef);
  e.morsels = 8;
  e.max_morsel_ns = 400000;
  rec.Record(e);
  std::string text = rec.ToText();
  EXPECT_NE(text.find("execute"), std::string::npos) << text;
  EXPECT_NE(text.find("000000000000beef"), std::string::npos) << text;
  std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"morsels\":8"), std::string::npos);
  rec.Clear();
  EXPECT_EQ(rec.retained(), 0u);
  EXPECT_TRUE(rec.Dump().empty());
  EXPECT_NE(rec.ToText().find("no events"), std::string::npos);
}

TEST(FlightRecorderTest, SlowQueryLogAppendsStructuredBlock) {
  FlightRecorder& rec = FlightRecorder::Global();
  std::string path =
      ::testing::TempDir() + "/aqua_slow_query_test.log";
  std::remove(path.c_str());
  std::string saved_path = rec.slow_query_log_path();
  uint64_t saved_threshold = rec.slow_query_threshold_ns();
  rec.set_slow_query_log_path(path);
  rec.set_slow_query_threshold_ns(1000000);

  uint64_t logged_before = rec.slow_queries_logged();
  Snapshot delta;
  delta.counters.emplace_back("pattern.tree_steps", 123);
  rec.AppendSlowQuery(5000000, 0xf00d, "sub_select [t]\n  scan [t]\n",
                      "Execute  5.0 ms\n", delta);
  EXPECT_EQ(rec.slow_queries_logged(), logged_before + 1);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string log = buf.str();
  EXPECT_NE(log.find("slow query: 5.000 ms"), std::string::npos) << log;
  EXPECT_NE(log.find("000000000000f00d"), std::string::npos);
  EXPECT_NE(log.find("plan:"), std::string::npos);
  EXPECT_NE(log.find("sub_select [t]"), std::string::npos);
  EXPECT_NE(log.find("spans:"), std::string::npos);
  EXPECT_NE(log.find("counters:"), std::string::npos);
  EXPECT_NE(log.find("pattern.tree_steps"), std::string::npos);

  rec.set_slow_query_log_path(saved_path);
  rec.set_slow_query_threshold_ns(saved_threshold);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, OccupancyGaugeTracksRetention) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Clear();
#ifndef AQUA_OBS_DISABLED
  EXPECT_EQ(Registry::Global().Snap().GaugeValue("obs.recorder_occupancy"),
            0);
  rec.Record(MakeEvent(1));
  rec.Record(MakeEvent(2));
  EXPECT_EQ(Registry::Global().Snap().GaugeValue("obs.recorder_occupancy"),
            2);
#endif
  rec.Clear();
}

}  // namespace
}  // namespace aqua::obs
