#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace aqua::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter* c = Registry::Global().GetCounter("test.counter_arith");
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(c->name(), "test.counter_arith");
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket b holds values of bit width b: 0 -> 0, [2^(b-1), 2^b) -> b.
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 64u);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);
  // Every nonzero value lands in the bucket whose range covers it. (Zero is
  // its own bucket; bucket 1's lower bound is reported as 0 as well.)
  for (uint64_t v : {uint64_t{1}, uint64_t{7}, uint64_t{4096}}) {
    size_t b = Histogram::BucketOf(v);
    EXPECT_GE(v, Histogram::BucketLowerBound(b)) << v;
    if (b + 1 < Histogram::kNumBuckets) {
      EXPECT_LT(v, Histogram::BucketLowerBound(b + 1)) << v;
    }
  }
}

TEST(HistogramTest, RecordAccumulates) {
  Histogram* h = Registry::Global().GetHistogram("test.hist_arith");
  h->Reset();
  h->Record(0);
  h->Record(5);
  h->Record(5);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 10u);
  EXPECT_DOUBLE_EQ(h->mean(), 10.0 / 3.0);
  EXPECT_EQ(h->bucket(Histogram::BucketOf(0)), 1u);
  EXPECT_EQ(h->bucket(Histogram::BucketOf(5)), 2u);
  h->Reset();
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0u);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge* g = Registry::Global().GetGauge("test.gauge_arith");
  g->Reset();
  EXPECT_EQ(g->value(), 0);
  g->Set(10);
  EXPECT_EQ(g->value(), 10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->Add(5);
  EXPECT_EQ(g->value(), 12);
  g->Reset();
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->name(), "test.gauge_arith");
}

TEST(GaugeTest, SnapshotAndDeltaPassGaugesThrough) {
  Gauge* g = Registry::Global().GetGauge("test.gauge_delta");
  g->Set(100);
  Snapshot before = Registry::Global().Snap();
  g->Set(42);
  Snapshot after = Registry::Global().Snap();
  EXPECT_EQ(before.GaugeValue("test.gauge_delta"), 100);
  EXPECT_EQ(after.GaugeValue("test.gauge_delta"), 42);
  // A gauge is a level, not a rate: the delta carries the latest value, not
  // the difference.
  Snapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.GaugeValue("test.gauge_delta"), 42);
  EXPECT_EQ(delta.GaugeValue("test.gauge_never_registered"), 0);
  g->Reset();
}

TEST(GaugeTest, JsonAndTextCarryGauges) {
  Gauge* g = Registry::Global().GetGauge("test.gauge_json");
  g->Set(-7);
  Snapshot snap = Registry::Global().Snap();
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge_json\":-7"), std::string::npos);
  EXPECT_NE(snap.ToText().find("test.gauge_json"), std::string::npos);
  g->Reset();
}

TEST(GaugeTest, PoolGaugesArePreRegistered) {
  Snapshot snap = Registry::Global().Snap();
  bool workers = false;
  bool queue = false;
  bool occupancy = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "exec.pool_workers_active") workers = true;
    if (name == "exec.pool_queue_depth") queue = true;
    if (name == "obs.recorder_occupancy") occupancy = true;
  }
  EXPECT_TRUE(workers);
  EXPECT_TRUE(queue);
  EXPECT_TRUE(occupancy);
}

TEST(MacroTest, GaugeMacrosFlowIntoRegistry) {
  Gauge* g = Registry::Global().GetGauge("test.gauge_macro");
  g->Reset();
  AQUA_OBS_GAUGE_SET("test.gauge_macro", 9);
  AQUA_OBS_GAUGE_ADD("test.gauge_macro", -2);
#ifndef AQUA_OBS_DISABLED
  EXPECT_EQ(g->value(), 7);
#else
  EXPECT_EQ(g->value(), 0);
#endif
  Registry::set_enabled(false);
  AQUA_OBS_GAUGE_SET("test.gauge_macro", 1000);
  Registry::set_enabled(true);
#ifndef AQUA_OBS_DISABLED
  EXPECT_EQ(g->value(), 7);
#endif
  g->Reset();
}

TEST(RegistryTest, GetReturnsStablePointers) {
  Counter* a = Registry::Global().GetCounter("test.stable");
  Counter* b = Registry::Global().GetCounter("test.stable");
  EXPECT_EQ(a, b);
  Histogram* ha = Registry::Global().GetHistogram("test.stable_hist");
  Histogram* hb = Registry::Global().GetHistogram("test.stable_hist");
  EXPECT_EQ(ha, hb);
}

TEST(RegistryTest, WellKnownNamesArePreRegistered) {
  Snapshot snap = Registry::Global().Snap();
  // Even a fresh process that never ran a matcher carries the schema.
  bool found_nfa = false;
  bool found_probes = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "pattern.nfa_steps") found_nfa = true;
    if (name == "index.probes") found_probes = true;
  }
  EXPECT_TRUE(found_nfa);
  EXPECT_TRUE(found_probes);
}

TEST(SnapshotTest, DeltaSinceSubtractsAndClamps) {
  Counter* c = Registry::Global().GetCounter("test.delta");
  c->Reset();
  c->Add(10);
  Snapshot before = Registry::Global().Snap();
  c->Add(32);
  Snapshot after = Registry::Global().Snap();
  Snapshot delta = after.DeltaSince(before);
  EXPECT_EQ(delta.CounterValue("test.delta"), 32u);
  // A reset between snapshots clamps at zero instead of underflowing.
  c->Reset();
  Snapshot reset_snap = Registry::Global().Snap();
  EXPECT_EQ(reset_snap.DeltaSince(before).CounterValue("test.delta"), 0u);
  // Absent counters read as zero.
  EXPECT_EQ(delta.CounterValue("test.never_registered"), 0u);
}

TEST(SnapshotTest, JsonCarriesCountersAndHistograms) {
  Counter* c = Registry::Global().GetCounter("test.json_counter");
  c->Reset();
  c->Add(7);
  Histogram* h = Registry::Global().GetHistogram("test.json_hist");
  h->Reset();
  h->Record(3);
  std::string json = Registry::Global().Snap().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":3"), std::string::npos);
}

TEST(MacroTest, CountAndRecordFlowIntoRegistry) {
  ASSERT_TRUE(Registry::enabled());
  Counter* c = Registry::Global().GetCounter("test.macro_counter");
  c->Reset();
  AQUA_OBS_COUNT("test.macro_counter", 3);
  AQUA_OBS_COUNT("test.macro_counter", 4);
#ifndef AQUA_OBS_DISABLED
  EXPECT_EQ(c->value(), 7u);
#else
  EXPECT_EQ(c->value(), 0u);
#endif
}

TEST(MacroTest, RuntimeDisableMakesSitesNoOps) {
  Counter* c = Registry::Global().GetCounter("test.macro_disabled");
  c->Reset();
  Registry::set_enabled(false);
  AQUA_OBS_COUNT("test.macro_disabled", 100);
  AQUA_OBS_RECORD("test.macro_disabled_hist", 100);
  Registry::set_enabled(true);
  EXPECT_EQ(c->value(), 0u);
  Histogram* h = Registry::Global().GetHistogram("test.macro_disabled_hist");
  EXPECT_EQ(h->count(), 0u);
}

}  // namespace
}  // namespace aqua::obs
