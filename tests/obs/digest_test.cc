#include "obs/digest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "query/builder.h"
#include "test_util.h"

namespace aqua::obs {
namespace {

using aqua::testing::AquaTestBase;

TEST(Fnv1aTest, KnownVectors) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(Fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a("foobar"), 0x85944171f73967e8ull);
  EXPECT_NE(Fnv1a("abc"), Fnv1a("acb"));
}

class DigestPlanTest : public AquaTestBase {};

TEST_F(DigestPlanTest, ConstantsAreElided) {
  // Same shape, different comparison constants -> same fingerprint.
  PlanRef p1 = Q::TreeSubSelect(Q::ScanTree("t"), TP("{val > 60}(?*)"));
  PlanRef p2 = Q::TreeSubSelect(Q::ScanTree("t"), TP("{val > 21}(?*)"));
  EXPECT_EQ(NormalizePlan(p1), NormalizePlan(p2));
  EXPECT_EQ(FingerprintPlan(p1), FingerprintPlan(p2));
  // The constant must not appear in the normalized text.
  EXPECT_EQ(NormalizePlan(p1).find("60"), std::string::npos)
      << NormalizePlan(p1);
  EXPECT_NE(NormalizePlan(p1).find("$"), std::string::npos);
}

TEST_F(DigestPlanTest, ShapeDifferencesStayDistinct) {
  PlanRef gt = Q::TreeSubSelect(Q::ScanTree("t"), TP("{val > 60}(?*)"));
  PlanRef eq = Q::TreeSubSelect(Q::ScanTree("t"), TP("{val == 60}(?*)"));
  PlanRef attr = Q::TreeSubSelect(Q::ScanTree("t"), TP("{age > 60}(?*)"));
  PlanRef coll = Q::TreeSubSelect(Q::ScanTree("u"), TP("{val > 60}(?*)"));
  EXPECT_NE(FingerprintPlan(gt), FingerprintPlan(eq));   // operator differs
  EXPECT_NE(FingerprintPlan(gt), FingerprintPlan(attr)); // attribute differs
  EXPECT_NE(FingerprintPlan(gt), FingerprintPlan(coll)); // collection differs
}

TEST_F(DigestPlanTest, ListPatternsNormalize) {
  PlanRef p1 = Q::ListSubSelect(Q::ScanList("l"), LP("a ? a"));
  PlanRef p2 = Q::ListSubSelect(Q::ScanList("l"), LP("b ? b"));
  // Different literal atoms compare against different constants -> same
  // shape after eliding ({name == $} ? {name == $}).
  EXPECT_EQ(NormalizePlan(p1), NormalizePlan(p2));
  PlanRef star = Q::ListSubSelect(Q::ScanList("l"), LP("a ?* a"));
  EXPECT_NE(FingerprintPlan(p1), FingerprintPlan(star));
}

// --- quantile estimator golden tests -------------------------------------

/// Buckets a sample set into the 65-bucket log scheme.
std::array<uint64_t, Histogram::kNumBuckets> BucketsOf(
    const std::vector<uint64_t>& samples) {
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
  for (uint64_t v : samples) buckets[Histogram::BucketOf(v)]++;
  return buckets;
}

/// Exact nearest-rank quantile of `samples` (sorted copy).
uint64_t ExactQuantile(std::vector<uint64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (rank < 1) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

/// The estimator's guarantee: the estimate lands in the same log-scale
/// bucket as the exact sample quantile (within one bucket at boundaries).
void ExpectWithinOneBucket(const std::vector<uint64_t>& samples, double q) {
  double est = EstimateQuantile(BucketsOf(samples), samples.size(), q);
  uint64_t exact = ExactQuantile(samples, q);
  size_t est_bucket = Histogram::BucketOf(static_cast<uint64_t>(est));
  size_t exact_bucket = Histogram::BucketOf(exact);
  size_t diff = est_bucket > exact_bucket ? est_bucket - exact_bucket
                                          : exact_bucket - est_bucket;
  EXPECT_LE(diff, 1u) << "q=" << q << " est=" << est << " exact=" << exact;
}

TEST(EstimateQuantileTest, UniformDistribution) {
  std::vector<uint64_t> samples;
  for (uint64_t v = 1; v <= 1000; ++v) samples.push_back(v);
  for (double q : {0.50, 0.95, 0.99}) ExpectWithinOneBucket(samples, q);
}

TEST(EstimateQuantileTest, ConstantDistribution) {
  std::vector<uint64_t> samples(200, 42);
  for (double q : {0.50, 0.95, 0.99}) {
    double est = EstimateQuantile(BucketsOf(samples), samples.size(), q);
    // Every sample is 42, so every quantile lives in 42's bucket [32, 64).
    EXPECT_GE(est, 32.0);
    EXPECT_LT(est, 64.0);
  }
}

TEST(EstimateQuantileTest, SkewedDistribution) {
  // 99 fast queries and one catastrophic one: p50/p95/p99 must stay in the
  // fast bucket, not get dragged toward the outlier.
  std::vector<uint64_t> samples(99, 3);
  samples.push_back(1000000);
  for (double q : {0.50, 0.95, 0.99}) ExpectWithinOneBucket(samples, q);
  double p50 = EstimateQuantile(BucketsOf(samples), samples.size(), 0.50);
  EXPECT_LT(p50, 8.0);
}

TEST(EstimateQuantileTest, PowersOfTwo) {
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20; ++i) {
    for (int rep = 0; rep < 5; ++rep) {
      samples.push_back(uint64_t{1} << i);
    }
  }
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    ExpectWithinOneBucket(samples, q);
  }
}

TEST(EstimateQuantileTest, EdgeCases) {
  std::array<uint64_t, Histogram::kNumBuckets> empty{};
  EXPECT_EQ(EstimateQuantile(empty, 0, 0.5), 0.0);
  std::vector<uint64_t> one{7};
  double est = EstimateQuantile(BucketsOf(one), 1, 0.99);
  EXPECT_EQ(Histogram::BucketOf(static_cast<uint64_t>(est)),
            Histogram::BucketOf(7));
}

TEST(EstimateQuantileTest, ZeroCountIsZeroAtEveryQuantile) {
  std::array<uint64_t, Histogram::kNumBuckets> empty{};
  for (double q : {0.0, 0.01, 0.50, 0.99, 1.0}) {
    EXPECT_EQ(EstimateQuantile(empty, 0, q), 0.0) << "q=" << q;
  }
}

TEST(EstimateQuantileTest, SingleSampleAtEveryQuantile) {
  // With one sample, every quantile IS that sample (to within its bucket),
  // including out-of-range q which clamps to [0, 1].
  std::vector<uint64_t> one{300};
  for (double q : {-0.5, 0.0, 0.01, 0.50, 0.99, 1.0, 2.0}) {
    double est = EstimateQuantile(BucketsOf(one), 1, q);
    EXPECT_EQ(Histogram::BucketOf(static_cast<uint64_t>(est)),
              Histogram::BucketOf(300))
        << "q=" << q << " est=" << est;
  }
}

TEST(EstimateQuantileTest, AllMassInOneBucketInterpolatesInside) {
  // 1000 samples of 100 all land in bucket [64, 127]: every quantile must
  // interpolate inside that range, p-low near the lower edge, p-high near
  // the upper, monotone in q.
  std::vector<uint64_t> samples(1000, 100);
  double prev = 0.0;
  for (double q : {0.01, 0.25, 0.50, 0.75, 0.99}) {
    double est = EstimateQuantile(BucketsOf(samples), samples.size(), q);
    EXPECT_GE(est, 64.0) << "q=" << q;
    EXPECT_LE(est, 127.0) << "q=" << q;
    EXPECT_GE(est, prev) << "quantiles must be monotone in q";
    prev = est;
  }
}

TEST(EstimateQuantileTest, CapBucketHoldsHugeValues) {
  // UINT64_MAX has bit width 64 -> the cap bucket (index 64, the last of
  // the 65). The estimate must stay finite and inside [2^63, 2^64).
  ASSERT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kNumBuckets - 1);
  std::vector<uint64_t> samples(10, UINT64_MAX);
  for (double q : {0.50, 0.99}) {
    double est = EstimateQuantile(BucketsOf(samples), samples.size(), q);
    EXPECT_GE(est, std::ldexp(1.0, 63)) << "q=" << q;
    EXPECT_LE(est, std::ldexp(1.0, 64)) << "q=" << q;
  }
}

TEST(EstimateQuantileTest, RankBeyondBucketMassFallsBackToLastUpper) {
  // A count larger than the bucket mass (e.g. a racing snapshot) must not
  // run off the array: ranks past the last sample clamp to the upper bound
  // of the last non-empty bucket.
  std::vector<uint64_t> samples(4, 7);
  double est = EstimateQuantile(BucketsOf(samples), /*count=*/1000, 0.99);
  EXPECT_EQ(est, 7.0);
}

// --- digest table --------------------------------------------------------

TEST(DigestTableTest, RecordAccumulatesPerFingerprint) {
  DigestTable& table = DigestTable::Global();
  table.Reset();
  table.Record(0xabc, "plan A", 100);
  table.Record(0xabc, "ignored-on-repeat", 300);
  table.Record(0xdef, "plan B", 50);
  EXPECT_EQ(table.size(), 2u);

  DigestRow a = table.Row(0xabc);
  EXPECT_EQ(a.calls, 2u);
  EXPECT_EQ(a.total_ns, 400u);
  EXPECT_EQ(a.min_ns, 100u);
  EXPECT_EQ(a.max_ns, 300u);
  EXPECT_EQ(a.text, "plan A");  // first-seen text wins
  EXPECT_DOUBLE_EQ(a.mean_ns(), 200.0);

  // Rows are sorted by total time descending.
  std::vector<DigestRow> rows = table.Rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].fingerprint, 0xabcu);
  EXPECT_EQ(rows[1].fingerprint, 0xdefu);

  // Absent fingerprints read as empty.
  EXPECT_EQ(table.Row(0x999).calls, 0u);
  table.Reset();
  EXPECT_EQ(table.size(), 0u);
}

TEST(DigestTableTest, RecordsPeakMemoryAndLifecycleOutcomes) {
  DigestTable table(/*capacity=*/16);
  table.Record(0x1, "plan", 100, /*mem_peak_bytes=*/5000);
  table.Record(0x1, "plan", 200, /*mem_peak_bytes=*/3000);
  table.Record(0x1, "plan", 50, /*mem_peak_bytes=*/0, StatusCode::kCancelled);
  table.Record(0x1, "plan", 50, /*mem_peak_bytes=*/0,
               StatusCode::kDeadlineExceeded);
  DigestRow r = table.Row(0x1);
  EXPECT_EQ(r.calls, 4u);
  EXPECT_EQ(r.peak_mem_bytes, 5000u);  // max across calls
  EXPECT_EQ(r.cancelled, 1u);
  EXPECT_EQ(r.deadline_exceeded, 1u);
  std::string json = table.ToJson();
  EXPECT_NE(json.find("\"peak_mem_bytes\":5000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cancelled\":1"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_exceeded\":1"), std::string::npos);
}

TEST(DigestTableTest, EvictsLeastRecentlyUpdatedAtCapacity) {
  DigestTable table(/*capacity=*/3);
  EXPECT_EQ(table.capacity(), 3u);
  table.Record(0x1, "one", 10);
  table.Record(0x2, "two", 10);
  table.Record(0x3, "three", 10);
  EXPECT_EQ(table.size(), 3u);
  // Touch 0x1 so 0x2 becomes the least-recently-updated row.
  table.Record(0x1, "one", 10);
  // Inserting a fourth shape evicts 0x2, not the freshly-touched 0x1.
  table.Record(0x4, "four", 10);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.Row(0x2).calls, 0u);  // evicted
  EXPECT_EQ(table.Row(0x1).calls, 2u);  // survived
  EXPECT_EQ(table.Row(0x3).calls, 1u);
  EXPECT_EQ(table.Row(0x4).calls, 1u);

  // Eviction repeats as more shapes arrive: now 0x3 is the oldest.
  table.Record(0x5, "five", 10);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.Row(0x3).calls, 0u);
}

TEST(DigestTableTest, ShrinkingCapacityEvictsImmediately) {
  DigestTable table(/*capacity=*/8);
  for (uint64_t fp = 1; fp <= 6; ++fp) table.Record(fp, "p", 10);
  EXPECT_EQ(table.size(), 6u);
  table.set_capacity(2);
  EXPECT_EQ(table.size(), 2u);
  // The two most recently updated fingerprints survive.
  EXPECT_EQ(table.Row(5).calls, 1u);
  EXPECT_EQ(table.Row(6).calls, 1u);
  EXPECT_EQ(table.Row(1).calls, 0u);
}

TEST(DigestTableTest, CapacityDefaultsToEnvOrFourThousand) {
  ::setenv("AQUA_DIGEST_CAP", "2", 1);
  DigestTable table;  // capacity 0 -> read env per operation
  EXPECT_EQ(table.capacity(), 2u);
  table.Record(0x1, "one", 10);
  table.Record(0x2, "two", 10);
  table.Record(0x3, "three", 10);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Row(0x1).calls, 0u);  // oldest row went first
  ::unsetenv("AQUA_DIGEST_CAP");
  EXPECT_EQ(table.capacity(), 4096u);
}

TEST(DigestTableTest, TextAndJsonRenderings) {
  DigestTable& table = DigestTable::Global();
  table.Reset();
  table.Record(0x1234, "sub_select\n  scan [t]", 2000000);
  std::string text = table.ToText();
  EXPECT_NE(text.find("0000000000001234"), std::string::npos) << text;
  EXPECT_NE(text.find("calls"), std::string::npos);
  std::string json = table.ToJson();
  EXPECT_NE(json.find("\"digests\""), std::string::npos);
  EXPECT_NE(json.find("\"0000000000001234\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  table.Reset();
}

}  // namespace
}  // namespace aqua::obs
