#include "obs/export.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "obs/digest.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace aqua::obs {
namespace {

TEST(ToOpenMetricsTest, CountersGaugesAndEof) {
  Snapshot snap;
  snap.counters.emplace_back("exec.executes", 7);
  snap.gauges.emplace_back("exec.pool_queue_depth", 3);
  std::string text = ToOpenMetrics(snap);
  EXPECT_NE(text.find("# TYPE aqua_exec_executes counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("aqua_exec_executes_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aqua_exec_pool_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("aqua_exec_pool_queue_depth 3"), std::string::npos);
  // The exposition must end with the OpenMetrics terminator.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(ToOpenMetricsTest, HistogramBucketsAreCumulativeLogBounds) {
  Snapshot snap;
  HistogramSnapshot h;
  h.name = "exec.execute_ns";
  h.count = 3;
  h.sum = 12;
  h.buckets.emplace_back(Histogram::BucketOf(1), 1);  // bucket 1, le="1"
  h.buckets.emplace_back(Histogram::BucketOf(5), 2);  // bucket 3, le="7"
  snap.histograms.push_back(h);
  std::string text = ToOpenMetrics(snap);
  EXPECT_NE(text.find("# TYPE aqua_exec_execute_ns histogram"),
            std::string::npos)
      << text;
  // le bounds are the log buckets' inclusive upper bounds (2^b - 1) and
  // counts are cumulative.
  EXPECT_NE(text.find("aqua_exec_execute_ns_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("aqua_exec_execute_ns_bucket{le=\"7\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("aqua_exec_execute_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("aqua_exec_execute_ns_sum 12"), std::string::npos);
  EXPECT_NE(text.find("aqua_exec_execute_ns_count 3"), std::string::npos);
  EXPECT_OK(CheckOpenMetrics(text));
}

TEST(ToOpenMetricsTest, DigestRowsExportAsLabeledSeries) {
  DigestTable& table = DigestTable::Global();
  table.Reset();
  table.Record(0x1234, "sub_select [t]", 1000);
  table.Record(0x1234, "sub_select [t]", 3000);
  Snapshot snap;
  OpenMetricsOptions opts;
  opts.digests = &table;
  std::string text = ToOpenMetrics(snap, opts);
  EXPECT_NE(
      text.find("aqua_digest_calls_total{digest=\"0000000000001234\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("aqua_digest_ns_total{digest=\"0000000000001234\"} 4000"),
      std::string::npos);
  EXPECT_NE(text.find("aqua_digest_p50_ns{digest="), std::string::npos);
  EXPECT_NE(text.find("aqua_digest_p99_ns{digest="), std::string::npos);
  EXPECT_OK(CheckOpenMetrics(text));
  table.Reset();
}

TEST(ToOpenMetricsTest, NamesAreMangledToValidCharset) {
  Snapshot snap;
  snap.counters.emplace_back("weird.name-with chars", 1);
  std::string text = ToOpenMetrics(snap);
  EXPECT_NE(text.find("aqua_weird_name_with_chars_total 1"),
            std::string::npos)
      << text;
  EXPECT_OK(CheckOpenMetrics(text));
}

TEST(ToOpenMetricsTest, FullRegistrySnapshotPassesTheChecker) {
  // The real pre-registered schema plus live digest rows round-trips
  // through the checker — the same invariant CI asserts on a scraped body.
  Registry::Global().GetCounter("test.export_roundtrip")->Add(5);
  Registry::Global().GetHistogram("test.export_roundtrip_ns")->Record(1234);
  OpenMetricsOptions opts;
  opts.digests = &DigestTable::Global();
  std::string text = ToOpenMetrics(Registry::Global().Snap(), opts);
  EXPECT_OK(CheckOpenMetrics(text));
}

TEST(CheckOpenMetricsTest, RejectsMalformedExpositions) {
  // Accepts the minimal valid document.
  EXPECT_OK(CheckOpenMetrics(
      "# TYPE aqua_x counter\naqua_x_total 1\n# EOF\n"));
  // Missing the EOF terminator.
  EXPECT_FALSE(
      CheckOpenMetrics("# TYPE aqua_x counter\naqua_x_total 1\n").ok());
  // Missing trailing newline.
  EXPECT_FALSE(
      CheckOpenMetrics("# TYPE aqua_x counter\naqua_x_total 1\n# EOF").ok());
  // Content after EOF.
  EXPECT_FALSE(CheckOpenMetrics(
                   "# TYPE aqua_x counter\naqua_x_total 1\n# EOF\nextra 1\n")
                   .ok());
  // Counter sample without the mandatory _total suffix.
  EXPECT_FALSE(
      CheckOpenMetrics("# TYPE aqua_x counter\naqua_x 1\n# EOF\n").ok());
  // Sample with no TYPE declaration.
  EXPECT_FALSE(CheckOpenMetrics("aqua_mystery_total 1\n# EOF\n").ok());
  // Duplicate TYPE lines for one family.
  EXPECT_FALSE(CheckOpenMetrics("# TYPE aqua_x counter\n"
                                "# TYPE aqua_x counter\n"
                                "aqua_x_total 1\n# EOF\n")
                   .ok());
}

TEST(CheckOpenMetricsTest, EnforcesHistogramMonotonicity) {
  // Non-monotone cumulative counts.
  EXPECT_FALSE(CheckOpenMetrics("# TYPE aqua_h histogram\n"
                                "aqua_h_bucket{le=\"1\"} 5\n"
                                "aqua_h_bucket{le=\"3\"} 4\n"
                                "aqua_h_bucket{le=\"+Inf\"} 5\n"
                                "aqua_h_sum 9\n"
                                "aqua_h_count 5\n# EOF\n")
                   .ok());
  // le bounds out of order.
  EXPECT_FALSE(CheckOpenMetrics("# TYPE aqua_h histogram\n"
                                "aqua_h_bucket{le=\"3\"} 1\n"
                                "aqua_h_bucket{le=\"1\"} 2\n"
                                "aqua_h_bucket{le=\"+Inf\"} 2\n"
                                "aqua_h_sum 4\n"
                                "aqua_h_count 2\n# EOF\n")
                   .ok());
  // +Inf bucket disagrees with _count.
  EXPECT_FALSE(CheckOpenMetrics("# TYPE aqua_h histogram\n"
                                "aqua_h_bucket{le=\"+Inf\"} 2\n"
                                "aqua_h_sum 4\n"
                                "aqua_h_count 3\n# EOF\n")
                   .ok());
  // A well-formed histogram passes.
  EXPECT_OK(CheckOpenMetrics("# TYPE aqua_h histogram\n"
                             "aqua_h_bucket{le=\"1\"} 1\n"
                             "aqua_h_bucket{le=\"+Inf\"} 2\n"
                             "aqua_h_sum 4\n"
                             "aqua_h_count 2\n# EOF\n"));
}

/// Blocking loopback HTTP GET; returns the full response (headers + body).
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                    "Connection: close\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(MetricsHttpServerTest, ServesMetricsDigestsFlightAndHealth) {
  Registry::Global().GetCounter("exec.executes")->Add(1);
  DigestTable::Global().Record(0xfeed, "scan [t]", 500);

  MetricsHttpServer server;
  ASSERT_OK(server.Start(0));  // ephemeral port
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("application/openmetrics-text"), std::string::npos);
  std::string body = BodyOf(metrics);
  EXPECT_OK(CheckOpenMetrics(body));
  EXPECT_NE(body.find("aqua_exec_executes_total"), std::string::npos);
  EXPECT_NE(body.find("aqua_digest_calls_total{digest="), std::string::npos);

  std::string digests = BodyOf(HttpGet(server.port(), "/digests"));
  EXPECT_NE(digests.find("\"digests\""), std::string::npos);
  std::string flight = BodyOf(HttpGet(server.port(), "/flight"));
  EXPECT_NE(flight.find("\"events\""), std::string::npos);
  std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "ok\n");
  std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  DigestTable::Global().Reset();
}

TEST(ParseHttpRequestPathTest, AcceptsWellFormedRequestLines) {
  std::string path;
  EXPECT_OK(ParseHttpRequestPath("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
                                 &path));
  EXPECT_EQ(path, "/metrics");
  EXPECT_OK(ParseHttpRequestPath("GET / HTTP/1.0\r\n\r\n", &path));
  EXPECT_EQ(path, "/");
}

TEST(ParseHttpRequestPathTest, RejectsTruncatedAndMalformedLines) {
  std::string path;
  // A client that died mid-send: no \r\n terminator yet.
  EXPECT_FALSE(ParseHttpRequestPath("GET /metr", &path).ok());
  EXPECT_FALSE(ParseHttpRequestPath("GET ", &path).ok());
  EXPECT_FALSE(ParseHttpRequestPath("GET", &path).ok());
  EXPECT_FALSE(ParseHttpRequestPath("", &path).ok());
  // Missing the HTTP-version field after the path.
  EXPECT_FALSE(ParseHttpRequestPath("GET /metrics\r\n", &path).ok());
  // Empty request-target.
  EXPECT_FALSE(ParseHttpRequestPath("GET  HTTP/1.1\r\n", &path).ok());
  // Not a GET.
  EXPECT_FALSE(ParseHttpRequestPath("POST /metrics HTTP/1.1\r\n", &path).ok());
  // A garbage greeting (not HTTP at all).
  EXPECT_FALSE(ParseHttpRequestPath("SSH-2.0-OpenSSH_9.6\r\n", &path).ok());
}

/// Sends `raw` over a fresh connection — optionally one byte per send with
/// a tiny pause, the short-read torture case — and returns the response.
std::string RawRequest(uint16_t port, const std::string& raw,
                       bool byte_at_a_time) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  if (byte_at_a_time) {
    for (char c : raw) {
      if (::send(fd, &c, 1, 0) != 1) break;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  } else {
    (void)!::send(fd, raw.data(), raw.size(), 0);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServerTest, ByteAtATimeClientStillGetsServed) {
  MetricsHttpServer server;
  ASSERT_OK(server.Start(0));
  // The request-line arrives one byte per read; the server must keep
  // reading until the line is complete instead of parsing a prefix.
  std::string response = RawRequest(
      server.port(),
      "GET /healthz HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n",
      /*byte_at_a_time=*/true);
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_EQ(BodyOf(response), "ok\n");
  server.Stop();
}

TEST(MetricsHttpServerTest, TruncatedAndGarbageRequestsGet400) {
  MetricsHttpServer server;
  ASSERT_OK(server.Start(0));
  // Connection closed mid-request-line: never serveable, never "/" either.
  std::string truncated = RawRequest(server.port(), "GET /metr",
                                     /*byte_at_a_time=*/false);
  EXPECT_NE(truncated.find("400"), std::string::npos) << truncated;
  // A non-HTTP greeting.
  std::string garbage = RawRequest(server.port(), "hello\r\n",
                                   /*byte_at_a_time=*/false);
  EXPECT_NE(garbage.find("400"), std::string::npos) << garbage;
  // An empty connection (client connects and immediately closes).
  std::string empty = RawRequest(server.port(), "",
                                 /*byte_at_a_time=*/false);
  EXPECT_NE(empty.find("400"), std::string::npos) << empty;
  server.Stop();
}

TEST(MetricsHttpServerTest, TasksEndpointServesLiveTable) {
  MetricsHttpServer server;
  ASSERT_OK(server.Start(0));
  std::string response = HttpGet(server.port(), "/tasks");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(BodyOf(response).find("\"tasks\""), std::string::npos);
  server.Stop();
}

TEST(MetricsHttpServerTest, StartFailsOnPortInUseAndStopIsIdempotent) {
  MetricsHttpServer a;
  ASSERT_OK(a.Start(0));
  MetricsHttpServer b;
  EXPECT_FALSE(b.Start(a.port()).ok());
  EXPECT_FALSE(b.running());
  a.Stop();
  a.Stop();  // second Stop is a no-op
  EXPECT_FALSE(a.running());
}

}  // namespace
}  // namespace aqua::obs
