#include "obs/tasks.h"

#include <gtest/gtest.h>

#include <string>

#include "common/status.h"
#include "obs/query_context.h"

namespace aqua::obs {
namespace {

#ifndef AQUA_OBS_DISABLED

TEST(TaskRegistryTest, GuardRegistersAndUnregisters) {
  TaskRegistry& reg = TaskRegistry::Global();
  size_t before = reg.active();
  {
    QueryContext q;
    TaskRegistry::Guard guard(&q);
    EXPECT_EQ(reg.active(), before + 1);
    bool found = false;
    for (const TaskRow& row : reg.Snapshot()) {
      if (row.id == q.id()) found = true;
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(reg.active(), before);
}

TEST(TaskRegistryTest, SnapshotCarriesDescriptorAndCounters) {
  QueryContext q;
  q.set_fingerprint(0xfeed);
  q.set_plan_text("sub_select\n  scan [t]");
  q.set_threads(4);
  q.AddRows(11);
  q.AddMem(4096);
  TaskRegistry::Guard guard(&q);
  TaskRow mine;
  for (const TaskRow& row : TaskRegistry::Global().Snapshot()) {
    if (row.id == q.id()) mine = row;
  }
  ASSERT_EQ(mine.id, q.id());
  EXPECT_EQ(mine.fingerprint, 0xfeedu);
  // The multi-line normalized plan flattens to one line.
  EXPECT_EQ(mine.plan, "sub_select > scan [t]");
  EXPECT_EQ(mine.threads, 4u);
  EXPECT_EQ(mine.rows, 11u);
  EXPECT_EQ(mine.mem_bytes, 4096u);
  EXPECT_EQ(mine.mem_peak_bytes, 4096u);
  EXPECT_FALSE(mine.cancel_requested);
}

TEST(TaskRegistryTest, KillCancelsInFlightQuery) {
  QueryContext q;
  TaskRegistry::Guard guard(&q);
  EXPECT_TRUE(TaskRegistry::Global().Kill(q.id()).ok());
  EXPECT_TRUE(q.cancel_requested());
  Status st = q.CheckPoint();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("was killed"), std::string::npos)
      << st.ToString();
}

TEST(TaskRegistryTest, KillUnknownIdIsNotFound) {
  Status st = TaskRegistry::Global().Kill(0);
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
}

TEST(TaskRegistryTest, EnforceLimitsCancelsPastDeadline) {
  QueryContext q;
  q.set_deadline_after_ns(1);  // effectively already expired
  TaskRegistry::Guard guard(&q);
  EXPECT_GE(TaskRegistry::Global().EnforceLimits(), 1u);
  EXPECT_TRUE(q.cancel_requested());
  EXPECT_EQ(q.CheckPoint().code(), StatusCode::kDeadlineExceeded);
  // A second sweep skips already-cancelled tasks.
  EXPECT_EQ(TaskRegistry::Global().EnforceLimits(), 0u);
}

TEST(TaskRegistryTest, EnforceLimitsCancelsOverMemoryBudget) {
  QueryContext q;
  q.set_mem_limit_bytes(100);
  q.AddMem(1000);
  TaskRegistry::Guard guard(&q);
  EXPECT_GE(TaskRegistry::Global().EnforceLimits(), 1u);
  EXPECT_EQ(q.CheckPoint().code(), StatusCode::kCancelled);
}

TEST(TaskRegistryTest, TextAndJsonRenderings) {
  QueryContext q;
  q.set_plan_text("scan [family]");
  TaskRegistry::Guard guard(&q);
  std::string text = TaskRegistry::Global().ToText();
  EXPECT_NE(text.find("elapsed_ms"), std::string::npos) << text;
  EXPECT_NE(text.find("scan [family]"), std::string::npos) << text;
  std::string json = TaskRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"tasks\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":" + std::to_string(q.id())), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cancel_requested\":false"), std::string::npos);
}

#else  // AQUA_OBS_DISABLED

TEST(TaskRegistryStubTest, NothingRegisters) {
  TaskRegistry& reg = TaskRegistry::Global();
  QueryContext q;
  TaskRegistry::Guard guard(&q);
  EXPECT_EQ(reg.active(), 0u);
  EXPECT_TRUE(reg.Snapshot().empty());
  EXPECT_EQ(reg.Kill(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(reg.EnforceLimits(), 0u);
  EXPECT_EQ(reg.ToJson(), "{\"tasks\":[]}");
}

#endif  // AQUA_OBS_DISABLED

}  // namespace
}  // namespace aqua::obs
