#include "obs/json.h"

#include <gtest/gtest.h>

namespace aqua::obs {
namespace {

TEST(JsonEscapeTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NestedContainersAndEscaping) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("a\"b\\c\n");
  w.Key("n").Int(-5);
  w.Key("u").Uint(5);
  w.Key("d").Double(1.5);
  w.Key("b").Bool(true);
  w.Key("z").Null();
  w.Key("arr").BeginArray().Uint(1).Uint(2).EndArray();
  w.Key("obj").BeginObject().Key("k").String("v").EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"n\":-5,\"u\":5,\"d\":1.5,"
            "\"b\":true,\"z\":null,\"arr\":[1,2],\"obj\":{\"k\":\"v\"}}");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").BeginArray().EndArray();
  w.Key("o").BeginObject().EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":[],\"o\":{}}");
}

TEST(JsonWriterTest, ArrayOfObjects) {
  JsonWriter w;
  w.BeginArray();
  w.BeginObject().Key("i").Int(1).EndObject();
  w.BeginObject().Key("i").Int(2).EndObject();
  w.EndArray();
  EXPECT_EQ(w.str(), "[{\"i\":1},{\"i\":2}]");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray().Double(1.0 / 0.0).Double(-1.0 / 0.0).EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriterTest, TakeStringMoves) {
  JsonWriter w;
  w.BeginArray().Uint(7).EndArray();
  EXPECT_EQ(w.TakeString(), "[7]");
}

}  // namespace
}  // namespace aqua::obs
