#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace aqua::obs {
namespace {

TEST(SpanTest, NestingFollowsScopes) {
  Trace trace;
  trace.set_enabled(true);
  {
    Span root(&trace, "root");
    {
      Span child(&trace, "child");
      Span grandchild(&trace, "grandchild");
      grandchild.AddAttr("out", 7);
    }
    Span sibling(&trace, "sibling");
  }
  ASSERT_EQ(trace.size(), 4u);
  const auto& spans = trace.spans();
  // Spans appear in open order; parents precede children.
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent, SpanRecord::kNoParent);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].name, "grandchild");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].parent, 0u);
  ASSERT_EQ(spans[2].attrs.size(), 1u);
  EXPECT_EQ(spans[2].attrs[0].first, "out");
  EXPECT_EQ(spans[2].attrs[0].second, 7);
  // A child closes within its parent's interval.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].dur_ns,
            spans[0].start_ns + spans[0].dur_ns);
}

TEST(SpanTest, DisabledTraceRecordsNothingButStillTimes) {
  Trace trace;  // enabled defaults to false
  Span span(&trace, "ignored");
  EXPECT_TRUE(trace.empty());
  EXPECT_GE(span.ElapsedNs(), 0u);
  EXPECT_GE(span.ElapsedMs(), 0.0);
  // A null trace is a pure scoped timer.
  Span timer(nullptr, "timer");
  EXPECT_GE(timer.ElapsedNs(), 0u);
}

TEST(SpanTest, ClearResetsTheTree) {
  Trace trace;
  trace.set_enabled(true);
  { Span s(&trace, "a"); }
  EXPECT_EQ(trace.size(), 1u);
  trace.Clear();
  EXPECT_TRUE(trace.empty());
  { Span s(&trace, "b"); }
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "b");
  EXPECT_EQ(trace.spans()[0].parent, SpanRecord::kNoParent);
}

TEST(TraceTest, TextReportIndentsChildren) {
  Trace trace;
  trace.set_enabled(true);
  {
    Span root(&trace, "Execute");
    Span child(&trace, "ScanTree");
    child.AddAttr("out", 42);
  }
  std::string report = trace.ToTextReport();
  EXPECT_NE(report.find("Execute"), std::string::npos);
  EXPECT_NE(report.find("  ScanTree"), std::string::npos);
  EXPECT_NE(report.find("ms"), std::string::npos);
  EXPECT_NE(report.find("[out=42]"), std::string::npos) << report;
}

TEST(TraceTest, SpliceKeepsMorselOrderWhenBuffersFinishOutOfOrder) {
  // Two morsel buffers that *complete* in reverse order (buffer 1 closes its
  // span before buffer 0, as a fast later morsel does under skew). The
  // stitched tree must still list them in splice (= morsel) order, so the
  // report is deterministic run to run.
  Trace late;
  late.set_enabled(true);
  Trace early;
  early.set_enabled(true);
  {
    Span slow(&late, "Morsel");  // opened first...
    {
      Span fast(&early, "Morsel");  // ...but `early` closes first
      fast.AddAttr("begin", 10);
    }
    slow.AddAttr("begin", 0);
  }

  Trace query;
  query.set_enabled(true);
  {
    Span fanout(&query, "FanOut");
    query.Splice(late);   // morsel 0
    query.Splice(early);  // morsel 1
  }
  ASSERT_EQ(query.size(), 3u);
  const auto& spans = query.spans();
  EXPECT_EQ(spans[0].name, "FanOut");
  // Children appear in splice order under the fan-out span, regardless of
  // which buffer's wall-clock interval came first.
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].parent, 0u);
  ASSERT_FALSE(spans[1].attrs.empty());
  ASSERT_FALSE(spans[2].attrs.empty());
  EXPECT_EQ(spans[1].attrs[0].second, 0);   // late buffer spliced first
  EXPECT_EQ(spans[2].attrs[0].second, 10);  // early buffer second
  // Rebasing preserves the true wall-clock relationship: the early span
  // started after the late one even though it is listed second.
  EXPECT_GE(spans[2].start_ns, spans[1].start_ns);
}

TEST(TraceTest, SpliceRebasesOntoEpochAndNestsUnderOpenSpan) {
  Trace sub;
  sub.set_enabled(true);
  {
    Span outer(&sub, "outer");
    Span inner(&sub, "inner");
  }
  Trace query;
  query.set_enabled(true);
  {
    Span root(&query, "root");
    query.Splice(sub);
  }
  ASSERT_EQ(query.size(), 3u);
  const auto& spans = query.spans();
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].name, "inner");
  EXPECT_EQ(spans[2].parent, 1u);  // sub-tree structure is preserved
}

TEST(TraceTest, ChromeJsonHasEventsAndEmbeddedCounters) {
  Trace trace;
  trace.set_enabled(true);
  {
    Span root(&trace, "Execute");
    Span child(&trace, "Scan\"List");  // name needing escaping
  }
  Counter* c = Registry::Global().GetCounter("test.trace_embed");
  c->Reset();
  c->Add(9);
  Snapshot snap = Registry::Global().Snap();
  std::string json = trace.ToChromeJson(&snap);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Execute\""), std::string::npos);
  EXPECT_NE(json.find("\"Scan\\\"List\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"test.trace_embed\":9"), std::string::npos);
  // Without a snapshot the document still parses as events-only.
  std::string bare = trace.ToChromeJson();
  EXPECT_NE(bare.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(bare.find("test.trace_embed"), std::string::npos);
}

}  // namespace
}  // namespace aqua::obs
