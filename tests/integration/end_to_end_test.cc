// Full-stack scenario: a database is generated, indexed, queried through
// the optimizer, persisted, restored, and re-queried — every layer of the
// system in one flow, with validation and EXPLAIN ANALYZE along the way.
#include <gtest/gtest.h>

#include "query/builder.h"
#include "test_util.h"

namespace aqua {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterPersonType(db_.store()));
    ASSERT_OK(RegisterItemType(db_.store()));

    // Collections: the paper's family tree, a bigger genealogy, a song.
    ASSERT_OK_AND_ASSIGN(Tree figure3, MakePaperFamilyTree(db_.store()));
    ASSERT_OK(db_.RegisterTree("figure3", std::move(figure3)));
    FamilyTreeSpec spec;
    spec.num_people = 500;
    spec.brazil_fraction = 0.2;
    ASSERT_OK_AND_ASSIGN(Tree big, MakeFamilyTree(db_.store(), spec));
    ASSERT_OK(db_.RegisterTree("genealogy", std::move(big)));
    ASSERT_OK(RegisterNoteType(db_.store()));
    SongSpec song_spec;
    song_spec.num_notes = 120;
    ASSERT_OK_AND_ASSIGN(List song, MakeSong(db_.store(), song_spec));
    ASSERT_OK(db_.RegisterList("song", std::move(song)));

    ASSERT_OK(db_.CreateIndex("genealogy", "citizen"));
    ASSERT_OK(db_.CreateIndex("song", "pitch"));

    env_.Bind("Brazil",
              Predicate::AttrEquals("citizen", Value::String("Brazil")));
    env_.Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));
  }

  TreePatternRef TP(const std::string& p) {
    PatternParserOptions opts;
    opts.env = &env_;
    auto tp = ParseTreePattern(p, opts);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }

  Database db_;
  PredicateEnv env_;
};

TEST_F(EndToEndTest, OptimizedQueryOverGenealogyThenPersistence) {
  auto pattern = TP("Brazil(!?* USA !?*)");
  PlanRef plan = Q::TreeSubSelect(Q::ScanTree("genealogy"), pattern);

  // The optimizer must validate (§3.1 footnote 2) and rewrite to the index.
  ASSERT_OK(ValidatePlanPatterns(db_, plan));
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  ASSERT_EQ(optimized->op, PlanOp::kIndexedSubSelect);

  Executor naive_exec(&db_), opt_exec(&db_);
  ASSERT_OK_AND_ASSIGN(Datum naive, naive_exec.Execute(plan));
  ASSERT_OK_AND_ASSIGN(Datum fast, opt_exec.Execute(optimized));
  EXPECT_TRUE(naive.Equals(fast));
  EXPECT_GT(fast.size(), 0u);
  // The probe visited only the Brazilian fraction of the tree.
  EXPECT_LT(opt_exec.stats().index_candidates, 500u / 2);
  EXPECT_NE(opt_exec.ExplainAnalyze(optimized).find("1 call"),
            std::string::npos);

  // Persist, restore, and the optimized query still answers identically.
  ASSERT_OK_AND_ASSIGN(std::string dump, DumpDatabase(db_));
  Database restored;
  ASSERT_OK(LoadDatabase(dump, &restored));
  Rewriter rewriter2(&restored);
  rewriter2.AddDefaultRules();
  ASSERT_OK_AND_ASSIGN(PlanRef optimized2, rewriter2.Optimize(plan));
  EXPECT_EQ(optimized2->op, PlanOp::kIndexedSubSelect);
  Executor exec2(&restored);
  ASSERT_OK_AND_ASSIGN(Datum after, exec2.Execute(optimized2));
  EXPECT_TRUE(after.Equals(naive));
}

TEST_F(EndToEndTest, Figure4ThroughThePlannedPath) {
  // The split query as a plan, with the exact Figure 4 pieces coming back.
  SplitFn tuple3 = [](const Tree& x, const Tree& y,
                      const std::vector<Tree>& z) -> Result<Datum> {
    std::vector<Datum> zs;
    for (const Tree& t : z) zs.push_back(Datum::Of(t));
    return Datum::Tuple(
        {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
  };
  Executor exec(&db_);
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      exec.Execute(Q::TreeSplit(Q::ScanTree("figure3"),
                                TP("Brazil(!?* USA !?*)"), tuple3)));
  ASSERT_EQ(result.size(), 1u);
  LabelFn name = AttrLabelFn(&db_.store(), "name");
  EXPECT_EQ(PrintTree(result.at(0).at(0).tree(), name), "Ted(Ann @a Ray)");
  EXPECT_EQ(PrintTree(result.at(0).at(1).tree(), name),
            "Gen(@a1 John(@a2))");
}

TEST_F(EndToEndTest, MelodySearchThroughListAnchorRewrite) {
  PatternParserOptions opts;
  PredicateEnv notes;
  notes.Bind("A", Predicate::AttrEquals("pitch", Value::String("A")));
  notes.Bind("F", Predicate::AttrEquals("pitch", Value::String("F")));
  opts.env = &notes;
  ASSERT_OK_AND_ASSIGN(AnchoredListPattern melody,
                       ParseListPattern("A ? ? F", opts));

  PlanRef plan = Q::ListSubSelect(Q::ScanList("song"), melody);
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  EXPECT_EQ(optimized->op, PlanOp::kIndexedListSubSelect);

  Executor e1(&db_), e2(&db_);
  ASSERT_OK_AND_ASSIGN(Datum naive, e1.Execute(plan));
  ASSERT_OK_AND_ASSIGN(Datum fast, e2.Execute(optimized));
  EXPECT_TRUE(naive.Equals(fast));
}

TEST_F(EndToEndTest, StructuralUpdateThenRequery) {
  // Graft a new Brazilian branch onto Figure 3, re-register, and the match
  // count rises accordingly.
  ASSERT_OK_AND_ASSIGN(const Tree* figure3, db_.GetTree("figure3"));
  ASSERT_OK_AND_ASSIGN(
      Oid nova, db_.store().Create("Person",
                                   {{"name", Value::String("Nova")},
                                    {"citizen", Value::String("Brazil")}}));
  ASSERT_OK_AND_ASSIGN(
      Oid liam, db_.store().Create("Person",
                                   {{"name", Value::String("Liam")},
                                    {"citizen", Value::String("USA")}}));
  Tree branch = Tree::Node(NodePayload::Cell(nova),
                           {Tree::Leaf(NodePayload::Cell(liam))});
  ASSERT_OK_AND_ASSIGN(Tree updated,
                       InsertSubtree(*figure3, {}, 0, branch));
  ASSERT_OK(db_.RegisterTree("figure3v2", std::move(updated)));

  auto pattern = TP("Brazil(!?* USA !?*)");
  Executor exec(&db_);
  ASSERT_OK_AND_ASSIGN(
      Datum before,
      exec.Execute(Q::TreeSubSelect(Q::ScanTree("figure3"), pattern)));
  ASSERT_OK_AND_ASSIGN(
      Datum after,
      exec.Execute(Q::TreeSubSelect(Q::ScanTree("figure3v2"), pattern)));
  EXPECT_EQ(before.size(), 1u);
  EXPECT_EQ(after.size(), 2u);
}

}  // namespace
}  // namespace aqua
