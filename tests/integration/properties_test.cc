// Property-based tests over randomized workloads:
//  * split pieces always reassemble to the original tree/list;
//  * derived operators agree with their split-based definitions;
//  * the NFA/DFA boolean engines agree with the backtracking matcher;
//  * select is order-stable (matched nodes keep their preorder order);
//  * list operators agree with tree operators through the §6 mapping.
#include <gtest/gtest.h>

#include <random>

#include "test_util.h"

namespace aqua {
namespace {

/// A seeded generator of random list patterns over a tiny label alphabet —
/// the fuzz driver for cross-engine agreement.
ListPatternRef RandomListPattern(std::mt19937_64& rng, int depth) {
  auto atom = [&]() -> ListPatternRef {
    switch (rng() % 3) {
      case 0:
        return ListPattern::Any();
      case 1:
        return ListPattern::Pred(
            Predicate::AttrEquals("name", Value::String("a")));
      default:
        return ListPattern::Pred(
            Predicate::AttrEquals("name", Value::String("b")));
    }
  };
  if (depth <= 0) return atom();
  switch (rng() % 6) {
    case 0: {
      std::vector<ListPatternRef> parts;
      size_t n = 2 + rng() % 2;
      for (size_t i = 0; i < n; ++i) {
        parts.push_back(RandomListPattern(rng, depth - 1));
      }
      return ListPattern::Concat(std::move(parts));
    }
    case 1:
      return ListPattern::Alt({RandomListPattern(rng, depth - 1),
                               RandomListPattern(rng, depth - 1)});
    case 2:
      return ListPattern::Star(RandomListPattern(rng, depth - 1));
    case 3:
      return ListPattern::Plus(RandomListPattern(rng, depth - 1));
    case 4:
      return ListPattern::Prune(RandomListPattern(rng, depth - 1));
    default:
      return atom();
  }
}

/// A seeded generator of random tree patterns (leaves, nodes with child
/// sequences, disjunctions, prunes).
TreePatternRef RandomTreePattern(std::mt19937_64& rng, int depth) {
  auto pred = [&]() -> PredicateRef {
    switch (rng() % 3) {
      case 0:
        return nullptr;  // ?
      case 1:
        return Predicate::AttrEquals("name", Value::String("a"));
      default:
        return Predicate::AttrEquals("name", Value::String("b"));
    }
  };
  if (depth <= 0) return TreePattern::Leaf(pred());
  switch (rng() % 4) {
    case 0: {
      // A node with a small child sequence padded by ?*.
      std::vector<ListPatternRef> seq;
      seq.push_back(ListPattern::AnyStar());
      seq.push_back(
          ListPattern::TreeAtom(RandomTreePattern(rng, depth - 1)));
      if (rng() % 2 == 0) {
        seq.push_back(
            ListPattern::TreeAtom(RandomTreePattern(rng, depth - 1)));
      }
      seq.push_back(ListPattern::AnyStar());
      return TreePattern::Node(pred(), ListPattern::Concat(std::move(seq)));
    }
    case 1:
      return TreePattern::Alt({RandomTreePattern(rng, depth - 1),
                               RandomTreePattern(rng, depth - 1)});
    case 2:
      return TreePattern::Prune(RandomTreePattern(rng, depth - 1));
    default:
      return TreePattern::Leaf(pred());
  }
}

class PropertiesTest : public testing::AquaTestBase,
                       public ::testing::WithParamInterface<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PropertiesTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(PropertiesTest, SplitReassemblesRandomTrees) {
  RandomTreeSpec spec;
  spec.num_nodes = 120;
  spec.seed = GetParam();
  ASSERT_OK_AND_ASSIGN(Tree t, MakeRandomTree(store_, spec));

  const char* kPatterns[] = {"a", "b(?*)", "a(!?* b ?*)", "c(?* !? ?*)",
                             "a(b ?*) | b(a ?*)"};
  for (const char* pat : kPatterns) {
    TreeMatchOptions mopts;
    mopts.max_matches = 20;
    TreeMatcher matcher(store_, t, mopts);
    ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(TP(pat)));
    for (const TreeMatch& m : matches) {
      ASSERT_OK_AND_ASSIGN(SplitPieces pieces,
                           MakeSplitPieces(t, m, SplitOptions{}));
      EXPECT_OK(pieces.x.Validate());
      EXPECT_OK(pieces.y.Validate());
      Tree reassembled = ReassembleSplit(pieces);
      ASSERT_TRUE(reassembled.StructurallyEquals(t))
          << pat << " seed=" << GetParam();
    }
  }
}

TEST_P(PropertiesTest, ListSplitReassembles) {
  ASSERT_OK_AND_ASSIGN(
      List l, MakeRandomList(store_, 60, {"a", "b", "c"}, GetParam()));
  const char* kPatterns[] = {"a", "a ? b", "a !?+ c", "[[a | b]]+", "^?* c"};
  for (const char* pat : kPatterns) {
    ListMatcher matcher(store_, l);
    ListMatchOptions mopts;
    mopts.max_matches = 30;
    ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(LP(pat), mopts));
    for (const ListMatch& m : matches) {
      ListSplitPieces pieces = MakeListSplitPieces(l, m);
      List reassembled = ReassembleListSplit(pieces);
      ASSERT_TRUE(reassembled == l) << pat << " seed=" << GetParam();
    }
  }
}

TEST_P(PropertiesTest, DerivedOperatorsAgreeWithSplitForms) {
  RandomTreeSpec spec;
  spec.num_nodes = 80;
  spec.seed = GetParam();
  ASSERT_OK_AND_ASSIGN(Tree t, MakeRandomTree(store_, spec));
  for (const char* pat : {"a(?* b ?*)", "b", "c(!?*)"}) {
    auto tp = TP(pat);
    ASSERT_OK_AND_ASSIGN(Datum direct, TreeSubSelect(store_, t, tp));
    ASSERT_OK_AND_ASSIGN(Datum derived, TreeSubSelectViaSplit(store_, t, tp));
    EXPECT_TRUE(direct.Equals(derived)) << pat << " seed=" << GetParam();
  }
}

TEST_P(PropertiesTest, IndexedSubSelectAgreesWithNaive) {
  RandomTreeSpec spec;
  spec.num_nodes = 150;
  spec.seed = GetParam();
  ASSERT_OK_AND_ASSIGN(Tree t, MakeRandomTree(store_, spec));
  ASSERT_OK_AND_ASSIGN(AttributeIndex index,
                       AttributeIndex::BuildForTree(store_, t, "name"));
  for (const char* pat : {"a(?* b ?*)", "b(? ?)", "c"}) {
    auto tp = TP(pat);
    ASSERT_OK_AND_ASSIGN(Datum naive, TreeSubSelect(store_, t, tp));
    ASSERT_OK_AND_ASSIGN(Datum indexed,
                         TreeSubSelectIndexed(store_, t, tp, index));
    EXPECT_TRUE(naive.Equals(indexed)) << pat << " seed=" << GetParam();
  }
}

TEST_P(PropertiesTest, NfaAgreesWithBacktrackerOnRandomLists) {
  ASSERT_OK_AND_ASSIGN(
      List l, MakeRandomList(store_, 40, {"a", "b"}, GetParam()));
  const char* kPatterns[] = {"a b",       "a* b a*", "[[a | b b]]+",
                             "a ?* b ?*", "b+ a+",   "[[a b]]*"};
  for (const char* pat : kPatterns) {
    auto body = LP(pat).body;
    ListMatcher matcher(store_, l);
    ASSERT_OK_AND_ASSIGN(bool expected, matcher.MatchesWhole(body));
    ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::Compile(body));
    EXPECT_EQ(nfa.MatchesWhole(store_, l), expected) << pat;
    ASSERT_OK_AND_ASSIGN(LazyDfa dfa, LazyDfa::Make(&nfa));
    EXPECT_EQ(dfa.MatchesWhole(store_, l), expected) << pat;
  }
}

TEST_P(PropertiesTest, SelectIsOrderAndAncestryStable) {
  RandomTreeSpec spec;
  spec.num_nodes = 100;
  spec.seed = GetParam();
  ASSERT_OK_AND_ASSIGN(Tree t, MakeRandomTree(store_, spec));
  auto pred = P("name == \"a\" || name == \"b\"");
  ASSERT_OK_AND_ASSIGN(auto forest, TreeSelect(store_, t, pred));

  // Flatten the forest's node names in preorder; they must equal the
  // satisfying nodes of the input in input preorder (stability).
  std::vector<std::string> result_names;
  for (const Tree& piece : forest) {
    EXPECT_OK(piece.Validate());
    for (NodeId v : piece.Preorder()) {
      result_names.push_back(label_(piece.payload(v).oid()));
    }
  }
  std::vector<std::string> expected;
  for (NodeId v : t.Preorder()) {
    if (pred->Eval(store_, t.payload(v).oid())) {
      expected.push_back(label_(t.payload(v).oid()));
    }
  }
  // Preorder of contracted pieces preserves relative order of kept nodes.
  EXPECT_EQ(result_names, expected);
  // Every kept node satisfies the predicate.
  for (const auto& name : result_names) {
    EXPECT_TRUE(name == "a" || name == "b");
  }
}

TEST_P(PropertiesTest, ListOpsAgreeWithTreeOpsThroughTheMapping) {
  // §6: select/apply on a list equal select/apply on its list-like tree.
  ASSERT_OK_AND_ASSIGN(
      List l, MakeRandomList(store_, 30, {"a", "b", "c"}, GetParam()));
  ASSERT_OK_AND_ASSIGN(Tree chain, ListToTree(l));
  auto pred = P("name == \"a\"");

  ASSERT_OK_AND_ASSIGN(List list_selected, ListSelect(store_, l, pred));
  ASSERT_OK_AND_ASSIGN(auto tree_forest, TreeSelect(store_, chain, pred));
  // The tree select of a chain yields one chain (or none) whose node
  // sequence equals the filtered list.
  List from_tree;
  if (!tree_forest.empty()) {
    ASSERT_EQ(tree_forest.size(), 1u);
    ASSERT_OK_AND_ASSIGN(from_tree, TreeToList(tree_forest[0]));
  }
  EXPECT_TRUE(from_tree == list_selected)
      << Str(from_tree) << " vs " << Str(list_selected);

  auto mapper = [this](ObjectStore& store, Oid oid) -> Result<Oid> {
    AQUA_ASSIGN_OR_RETURN(Value name, store.GetAttr(oid, "name"));
    return store.Create("Item",
                        {{"name", Value::String(name.string_value() + "x")},
                         {"val", Value::Int(0)}});
  };
  ASSERT_OK_AND_ASSIGN(List list_mapped, ListApply(store_, l, mapper));
  ASSERT_OK_AND_ASSIGN(Tree tree_mapped, TreeApply(store_, chain, mapper));
  ASSERT_OK_AND_ASSIGN(List tree_mapped_list, TreeToList(tree_mapped));
  // Oids differ (apply creates fresh objects) but names must align.
  ASSERT_EQ(tree_mapped_list.size(), list_mapped.size());
  EXPECT_EQ(Str(tree_mapped_list), Str(list_mapped));
}

TEST_P(PropertiesTest, FuzzedListPatternsAgreeAcrossEngines) {
  std::mt19937_64 rng(GetParam() * 7919);
  ASSERT_OK_AND_ASSIGN(List l,
                       MakeRandomList(store_, 18, {"a", "b"}, GetParam()));
  ListMatchOptions budgeted;
  budgeted.max_matches = 1;
  budgeted.max_steps = 100000;  // skip patterns whose backtracking explodes
  size_t compared = 0;
  for (int round = 0; round < 30; ++round) {
    ListPatternRef body = RandomListPattern(rng, 3);
    AnchoredListPattern anchored{body, true, true};
    ListMatcher matcher(store_, l);
    auto matches = matcher.FindAll(anchored, budgeted);
    if (!matches.ok()) continue;  // budget blown: exponential shape
    bool expected = !matches->empty();
    ++compared;
    ASSERT_OK_AND_ASSIGN(Nfa nfa, Nfa::Compile(body));
    EXPECT_EQ(nfa.MatchesWhole(store_, l), expected)
        << body->ToString() << " seed=" << GetParam();
    ASSERT_OK_AND_ASSIGN(LazyDfa dfa, LazyDfa::Make(&nfa));
    EXPECT_EQ(dfa.MatchesWhole(store_, l), expected) << body->ToString();
    // Simplification preserves the language.
    AnchoredListPattern simplified{SimplifyListPattern(body), true, true};
    ListMatcher matcher2(store_, l);
    auto simplified_matches = matcher2.FindAll(simplified, budgeted);
    if (simplified_matches.ok()) {
      EXPECT_EQ(!simplified_matches->empty(), expected)
          << body->ToString() << " simplified to "
          << simplified.body->ToString();
    }
  }
  EXPECT_GT(compared, 5u);  // the budget must not skip everything
}

TEST_P(PropertiesTest, FuzzedTreePatternsSatisfyMatchInvariants) {
  std::mt19937_64 rng(GetParam() * 104729);
  RandomTreeSpec spec;
  spec.num_nodes = 40;
  spec.labels = {"a", "b"};
  spec.seed = GetParam();
  ASSERT_OK_AND_ASSIGN(Tree t, MakeRandomTree(store_, spec));
  for (int round = 0; round < 15; ++round) {
    TreePatternRef tp = RandomTreePattern(rng, 2);
    TreeMatchOptions opts;
    opts.max_matches = 25;
    TreeMatcher matcher(store_, t, opts);
    ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(tp));
    for (const TreeMatch& m : matches) {
      // Matched nodes and cuts are valid, disjoint node sets.
      ASSERT_LT(m.root, t.size());
      for (NodeId v : m.matched) ASSERT_LT(v, t.size());
      for (const TreeCut& cut : m.cuts) {
        ASSERT_LT(cut.node, t.size());
        for (NodeId v : m.matched) {
          EXPECT_NE(v, cut.node) << tp->ToString();
        }
      }
      // Pieces reassemble to the original tree.
      ASSERT_OK_AND_ASSIGN(SplitPieces pieces,
                           MakeSplitPieces(t, m, SplitOptions{}));
      ASSERT_TRUE(ReassembleSplit(pieces).StructurallyEquals(t))
          << tp->ToString() << " seed=" << GetParam();
    }
    // Boolean and enumeration views agree on existence.
    TreeMatcher bool_matcher(store_, t);
    ASSERT_OK_AND_ASSIGN(bool anywhere, bool_matcher.MatchesAnywhere(tp));
    EXPECT_EQ(anywhere, !matches.empty()) << tp->ToString();
  }
}

TEST_P(PropertiesTest, MatchPiecesContainOnlyMatchedPayloads) {
  RandomTreeSpec spec;
  spec.num_nodes = 90;
  spec.seed = GetParam();
  ASSERT_OK_AND_ASSIGN(Tree t, MakeRandomTree(store_, spec));
  TreeMatchOptions mopts;
  mopts.max_matches = 10;
  TreeMatcher matcher(store_, t, mopts);
  ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(TP("a(?* b ?*)")));
  for (const TreeMatch& m : matches) {
    ASSERT_OK_AND_ASSIGN(Tree y, MakeMatchPiece(t, m, SplitOptions{}));
    // y's root carries the same object as the match root.
    EXPECT_EQ(y.payload(y.root()).oid(), t.payload(m.root).oid());
    // The number of cells in y equals the number of matched nodes.
    size_t cells = 0;
    for (NodeId v : y.Preorder()) {
      if (y.payload(v).is_cell()) ++cells;
    }
    EXPECT_EQ(cells, m.matched.size());
    // Points in y correspond 1:1 to cuts, labelled a1..an in order.
    auto labels = y.PointLabels();
    ASSERT_EQ(labels.size(), m.cuts.size());
    for (size_t i = 0; i < labels.size(); ++i) {
      EXPECT_EQ(labels[i], "a" + std::to_string(i + 1));
    }
  }
}

}  // namespace
}  // namespace aqua
