// End-to-end reproductions of every worked example in the paper:
//   Figure 1 — concatenation points in tree patterns (§3.3)
//   Figure 2 — iterative self-concatenation (§3.3)
//   Figures 3/4 — the family tree and the split example (§4)
//   §4 "Why Split?" — the index-assisted sub_select rewrite
//   Figure 5 / §5 — rewriting a query parse tree with the algebra itself
//   §5 — variable-arity printf query
//   §6 — the music database queries
#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class PaperExamplesTest : public testing::AquaTestBase {};

TEST_F(PaperExamplesTest, Figure1ConcatenationPoints) {
  // a(b(d(f g) e) c) written as [[a(α1 α2) ∘α1 [[b(d(f g) e)]]]] ∘α2 c.
  Tree direct = T("a(b(d(f g) e) c)");
  Tree composed =
      ConcatAt(ConcatAt(T("a(@1 @2)"), "1", T("b(d(f g) e)")), "2", T("c"));
  EXPECT_TRUE(direct.StructurallyEquals(composed));

  // The equivalent *pattern* matches exactly the composed tree, at its root.
  TreeMatcher matcher(store_, direct);
  ASSERT_OK_AND_ASSIGN(
      auto matches,
      matcher.FindAll(TP("[[a(@1 @2) .@1 [[b(d(f g) e)]]]] .@2 c")));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].root, direct.root());
}

TEST_F(PaperExamplesTest, Figure2SelfConcatenation) {
  // Four elements of the language of [[a(b c α)]]*α.
  Tree body = T("a(b c @x)");
  std::vector<std::string> elements;
  for (size_t k = 0; k < 4; ++k) {
    elements.push_back(Str(SelfConcatElement(body, "x", k)));
  }
  EXPECT_EQ(elements[0], "nil");
  EXPECT_EQ(elements[1], "a(b c)");
  EXPECT_EQ(elements[2], "a(b c a(b c))");
  EXPECT_EQ(elements[3], "a(b c a(b c a(b c)))");

  // Every non-nil element matches the closure pattern at its root.
  auto closure = TP("^[[a(b c @x)]]*@x");
  for (size_t k = 1; k < 4; ++k) {
    Tree element = SelfConcatElement(body, "x", k);
    TreeMatcher matcher(store_, element);
    ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(closure));
    EXPECT_EQ(matches.size(), 1u) << "k=" << k;
  }
}

TEST_F(PaperExamplesTest, Figure4FamilyTreeSplit) {
  // split(Brazil(!?* USA !?*), λ(x,y,z)⟨x,y,z⟩)(T).
  ASSERT_OK_AND_ASSIGN(Tree family, MakePaperFamilyTree(store_));
  env_.Bind("Brazil",
            Predicate::AttrEquals("citizen", Value::String("Brazil")));
  env_.Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));

  ASSERT_OK_AND_ASSIGN(
      Datum result,
      TreeSplit(store_, family, TP("Brazil(!?* USA !?*)"),
                [](const Tree& x, const Tree& y,
                   const std::vector<Tree>& z) -> Result<Datum> {
                  std::vector<Datum> zs;
                  for (const Tree& t : z) zs.push_back(Datum::Of(t));
                  return Datum::Tuple({Datum::Of(x), Datum::Of(y),
                                       Datum::Tuple(std::move(zs))});
                }));
  ASSERT_EQ(result.size(), 1u);  // "a set containing one tuple"
  LabelFn name = AttrLabelFn(&store_, "name");
  const Datum& tuple = result.at(0);
  EXPECT_EQ(PrintTree(tuple.at(0).tree(), name), "Ted(Ann @a Ray)");
  EXPECT_EQ(PrintTree(tuple.at(1).tree(), name), "Gen(@a1 John(@a2))");
  EXPECT_EQ(PrintTree(tuple.at(2).at(0).tree(), name), "Joe(Bob)");
  EXPECT_EQ(PrintTree(tuple.at(2).at(1).tree(), name), "Mary");
}

TEST_F(PaperExamplesTest, WhySplitRewriteEquivalence) {
  // §4: sub_select(d(e(h i) j))(T) ==
  //     apply(sub_select(⊤d(e(h i) j)))(split(d, λ(x,y,z) y ∘_{αi} z)(T))
  Tree t = T("r(d(e(h i) j) q(d(e(h i) j)) d(x))");
  auto tp = TP("d(e(h i) j)");
  ASSERT_OK_AND_ASSIGN(Datum naive, TreeSubSelect(store_, t, tp));
  ASSERT_OK_AND_ASSIGN(AttributeIndex index,
                       AttributeIndex::BuildForTree(store_, t, "name"));
  ASSERT_OK_AND_ASSIGN(Datum rewrite,
                       TreeSubSelectSplitRewrite(store_, t, tp, index));
  ASSERT_OK_AND_ASSIGN(Datum fused,
                       TreeSubSelectIndexed(store_, t, tp, index));
  EXPECT_TRUE(naive.Equals(rewrite));
  EXPECT_TRUE(naive.Equals(fused));
  EXPECT_EQ(naive.size(), 1u);  // the two occurrences are identical subgraphs
}

TEST_F(PaperExamplesTest, Figure5ParseTreeRewrite) {
  // §5: find select(R, and(p1,p2)) with its context via
  // split(select(!? and), f) and rebuild select(select(R,p1),p2).
  env_.Bind("select", Predicate::AttrEquals("name", Value::String("select")));
  env_.Bind("and", Predicate::AttrEquals("name", Value::String("and")));

  Tree parse_tree = T("join(select(scanR and(p1 p2)) scanS)");

  auto rewrite_fn = [this](const Tree& x, const Tree& y,
                           const std::vector<Tree>& z) -> Result<Datum> {
    // y ≗ A(B C(D E)): A = select, B = @a1 (R), C = and, D/E = @a2/@a3.
    if (z.size() != 3) {
      return Status::InvalidArgument("expected exactly and(p1 p2)");
    }
    // tree(A(A(B D) E)): a new select-over-select piece.
    AQUA_ASSIGN_OR_RETURN(Oid outer_sel, atom_("select"));
    Tree piece = Tree::Node(
        NodePayload::Cell(outer_sel),
        {Tree::Node(NodePayload::Cell(outer_sel),
                    {Tree::Point("a1"), Tree::Point("a2")}),
         Tree::Point("a3")});
    (void)y;
    // x ∘α piece ∘α1 z1 ∘α2 z2 ∘α3 z3.
    Tree out = ConcatAt(x, "a", piece);
    for (size_t i = 0; i < z.size(); ++i) {
      out = ConcatAt(out, "a" + std::to_string(i + 1), z[i]);
    }
    return Datum::Of(std::move(out));
  };

  ASSERT_OK_AND_ASSIGN(
      Datum rewritten,
      TreeSplit(store_, parse_tree, TP("select(!? and)"), rewrite_fn));
  ASSERT_EQ(rewritten.size(), 1u);
  EXPECT_EQ(Str(rewritten.at(0).tree()),
            "join(select(select(scanR p1) p2) scanS)");
}

TEST_F(PaperExamplesTest, VariableArityPrintfQuery) {
  // §5: sub_select(printf(?* LargeData ?* LargeData ?*))(T).
  Tree t = T("block(printf(fmt LargeData i LargeData) "
             "printf(fmt LargeData) call(printf(LargeData x LargeData)))");
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      TreeSubSelect(store_, t,
                    TP("printf(?* LargeData ?* LargeData ?*)")));
  // Two printf calls reference LargeData at least twice.
  EXPECT_EQ(result.size(), 2u);
}

TEST_F(PaperExamplesTest, MusicMelodyQueries) {
  // §6: sub_select([A??F])(L) and all_anc([A??F], λ(x,y)⟨x,y⟩)(L).
  ASSERT_OK(RegisterNoteType(store_));
  List song;
  auto add = [&](const std::string& pitch) {
    auto note = store_.Create("Note", {{"pitch", Value::String(pitch)},
                                       {"duration", Value::Int(4)}});
    ASSERT_OK(note);
    song.Append(NodePayload::Cell(*note));
  };
  for (const char* p : {"C", "A", "B", "B", "F", "G"}) add(p);

  PredicateEnv env;
  env.Bind("A", Predicate::AttrEquals("pitch", Value::String("A")));
  env.Bind("F", Predicate::AttrEquals("pitch", Value::String("F")));
  PatternParserOptions popts;
  popts.env = &env;
  ASSERT_OK_AND_ASSIGN(AnchoredListPattern melody,
                       ParseListPattern("A ? ? F", popts));

  ASSERT_OK_AND_ASSIGN(Datum phrases, ListSubSelect(store_, song, melody));
  LabelFn pitch = AttrLabelFn(&store_, "pitch");
  ASSERT_EQ(phrases.size(), 1u);
  EXPECT_EQ(PrintList(phrases.at(0).list(), pitch), "[A B B F]");

  ASSERT_OK_AND_ASSIGN(
      Datum with_context,
      ListAllAnc(store_, song, melody,
                 [](const List& x, const List& y) -> Result<Datum> {
                   return Datum::Tuple({Datum::Of(x), Datum::Of(y)});
                 }));
  ASSERT_EQ(with_context.size(), 1u);
  EXPECT_EQ(PrintList(with_context.at(0).at(0).list(), pitch), "[C @a]");
  EXPECT_EQ(PrintList(with_context.at(0).at(1).list(), pitch), "[A B B F]");
}

TEST_F(PaperExamplesTest, SelectOnFamilyTreeIsOrderStable) {
  // §4 select: all Brazilian descendants, ancestry preserved.
  ASSERT_OK_AND_ASSIGN(Tree family, MakePaperFamilyTree(store_));
  auto brazil = Predicate::AttrEquals("citizen", Value::String("Brazil"));
  ASSERT_OK_AND_ASSIGN(auto forest, TreeSelect(store_, family, brazil));
  LabelFn name = AttrLabelFn(&store_, "name");
  ASSERT_EQ(forest.size(), 1u);
  EXPECT_EQ(PrintTree(forest[0], name), "Gen(Joe(Bob))");
}

TEST_F(PaperExamplesTest, ApplyOnFamilyTree) {
  // §4 apply: an isomorphic tree of (say) anonymized persons.
  ASSERT_OK_AND_ASSIGN(Tree family, MakePaperFamilyTree(store_));
  auto anonymize = [](ObjectStore& store, Oid oid) -> Result<Oid> {
    AQUA_ASSIGN_OR_RETURN(Value citizen, store.GetAttr(oid, "citizen"));
    return store.Create("Person", {{"name", Value::String("anon")},
                                   {"citizen", citizen}});
  };
  ASSERT_OK_AND_ASSIGN(Tree anon, TreeApply(store_, family, anonymize));
  EXPECT_EQ(anon.size(), family.size());
  LabelFn citizen = AttrLabelFn(&store_, "citizen");
  EXPECT_EQ(PrintTree(anon, citizen), PrintTree(family, citizen));
}

}  // namespace
}  // namespace aqua
