#include "bulk/node.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(NodePayloadTest, CellAccessors) {
  NodePayload cell = NodePayload::Cell(Oid(7));
  EXPECT_TRUE(cell.is_cell());
  EXPECT_FALSE(cell.is_concat_point());
  EXPECT_EQ(cell.kind(), NodePayload::Kind::kCell);
  EXPECT_EQ(cell.oid(), Oid(7));
  EXPECT_EQ(cell.label(), "");
}

TEST(NodePayloadTest, PointAccessors) {
  NodePayload point = NodePayload::ConcatPoint("a1");
  EXPECT_FALSE(point.is_cell());
  EXPECT_TRUE(point.is_concat_point());
  EXPECT_EQ(point.label(), "a1");
  EXPECT_TRUE(point.oid().IsNull());
}

TEST(NodePayloadTest, EqualityComparesContents) {
  EXPECT_EQ(NodePayload::Cell(Oid(1)), NodePayload::Cell(Oid(1)));
  EXPECT_NE(NodePayload::Cell(Oid(1)), NodePayload::Cell(Oid(2)));
  EXPECT_EQ(NodePayload::ConcatPoint("x"), NodePayload::ConcatPoint("x"));
  EXPECT_NE(NodePayload::ConcatPoint("x"), NodePayload::ConcatPoint("y"));
  EXPECT_NE(NodePayload::Cell(Oid(1)), NodePayload::ConcatPoint("x"));
}

TEST(OidTest, NullAndOrdering) {
  EXPECT_TRUE(Oid::Null().IsNull());
  EXPECT_FALSE(Oid(1).IsNull());
  EXPECT_LT(Oid(1), Oid(2));
  EXPECT_EQ(std::hash<Oid>{}(Oid(5)), std::hash<Oid>{}(Oid(5)));
}

}  // namespace
}  // namespace aqua
