#include "bulk/tree.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

using TreeTest = testing::AquaTestBase;

TEST_F(TreeTest, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_OK(t.Validate());
  EXPECT_EQ(Str(t), "nil");
}

TEST_F(TreeTest, LeafAndNodeComposition) {
  Tree t = T("a(b c(d e) f)");
  EXPECT_EQ(t.size(), 6u);
  EXPECT_OK(t.Validate());
  EXPECT_EQ(Str(t), "a(b c(d e) f)");
  EXPECT_EQ(t.arity(t.root()), 3u);
  EXPECT_EQ(t.Height(), 2u);
  EXPECT_EQ(t.MaxArity(), 3u);
}

TEST_F(TreeTest, NodeSkipsEmptyChildren) {
  Tree t = Tree::Node(NodePayload::Cell(Oid(1)), {Tree(), Tree()});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.is_leaf(t.root()));
}

TEST_F(TreeTest, PreorderFollowsPaperNotation) {
  Tree t = T("b(d(f g) e)");
  auto order = t.Preorder();
  ASSERT_EQ(order.size(), 5u);
  std::string names;
  for (NodeId n : order) names += label_(t.payload(n).oid());
  EXPECT_EQ(names, "bdfge");
}

TEST_F(TreeTest, ParentAndDepth) {
  Tree t = T("a(b(c))");
  NodeId root = t.root();
  NodeId b = t.children(root)[0];
  NodeId c = t.children(b)[0];
  EXPECT_EQ(t.parent(root), kInvalidNode);
  EXPECT_EQ(t.parent(c), b);
  EXPECT_EQ(t.DepthOf(c), 2u);
  EXPECT_TRUE(t.IsAncestorOf(root, c));
  EXPECT_TRUE(t.IsAncestorOf(c, c));
  EXPECT_FALSE(t.IsAncestorOf(c, root));
}

TEST_F(TreeTest, ChildIndex) {
  Tree t = T("a(b c d)");
  NodeId root = t.root();
  auto idx = t.ChildIndex(root, t.children(root)[2]);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_TRUE(t.ChildIndex(t.children(root)[0], root).status().IsOutOfRange());
}

TEST_F(TreeTest, IncrementalConstructionGuards) {
  Tree t;
  NodeId a = t.AddNode(NodePayload::Cell(Oid(1)));
  NodeId b = t.AddNode(NodePayload::Cell(Oid(2)));
  ASSERT_OK(t.AddChild(a, b));
  ASSERT_OK(t.SetRoot(a));
  // b already has a parent.
  EXPECT_TRUE(t.AddChild(a, b).IsInvalidArgument());
  // Cycle guard.
  EXPECT_TRUE(t.AddChild(b, a).IsInvalidArgument());
  // Root must be parentless.
  EXPECT_TRUE(t.SetRoot(b).IsInvalidArgument());
  EXPECT_TRUE(t.AddChild(a, 99).IsOutOfRange());
  EXPECT_OK(t.Validate());
}

TEST_F(TreeTest, SubtreeCopy) {
  Tree t = T("a(b(c d) e)");
  NodeId b = t.children(t.root())[0];
  Tree sub = t.SubtreeCopy(b);
  EXPECT_EQ(Str(sub), "b(c d)");
  EXPECT_OK(sub.Validate());
  EXPECT_EQ(sub.size(), 3u);
}

TEST_F(TreeTest, CopyWithSubtreeReplacedByPoint) {
  Tree t = T("a(b(c) d)");
  NodeId b = t.children(t.root())[0];
  Tree ctx = t.CopyWithSubtreeReplacedByPoint(b, "a");
  EXPECT_EQ(Str(ctx), "a(@a d)");
  EXPECT_OK(ctx.Validate());
  // Replacing the root yields a bare point.
  Tree all = t.CopyWithSubtreeReplacedByPoint(t.root(), "x");
  EXPECT_EQ(Str(all), "@x");
}

TEST_F(TreeTest, CopyWithSubtreeRemoved) {
  Tree t = T("a(b(c) d)");
  NodeId b = t.children(t.root())[0];
  Tree rest = t.CopyWithSubtreeRemoved(b);
  EXPECT_EQ(Str(rest), "a(d)");
  EXPECT_TRUE(t.CopyWithSubtreeRemoved(t.root()).empty());
}

TEST_F(TreeTest, PointQueries) {
  Tree t = T("a(@x b(@y) @x)");
  EXPECT_TRUE(t.HasPoint("x"));
  EXPECT_TRUE(t.HasPoint("y"));
  EXPECT_FALSE(t.HasPoint("z"));
  EXPECT_EQ(t.FindPoints("x").size(), 2u);
  auto labels = t.PointLabels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "x");
  EXPECT_EQ(labels[1], "y");
  EXPECT_EQ(labels[2], "x");
}

TEST_F(TreeTest, StructuralEquality) {
  EXPECT_TRUE(T("a(b c)").StructurallyEquals(T("a(b c)")));
  EXPECT_FALSE(T("a(b c)").StructurallyEquals(T("a(c b)")));
  EXPECT_FALSE(T("a(b c)").StructurallyEquals(T("a(b)")));
  EXPECT_FALSE(T("a").StructurallyEquals(Tree()));
  EXPECT_TRUE(Tree().StructurallyEquals(Tree()));
  // Same label at different positions uses the same interned object, so
  // payload equality holds structurally.
  EXPECT_TRUE(T("a(a(a))").StructurallyEquals(T("a(a(a))")));
}

TEST_F(TreeTest, ValidateRejectsConcatPointWithChildren) {
  Tree t;
  NodeId p = t.AddNode(NodePayload::ConcatPoint("a"));
  NodeId c = t.AddNode(NodePayload::Cell(Oid(1)));
  ASSERT_OK(t.AddChild(p, c));
  ASSERT_OK(t.SetRoot(p));
  EXPECT_TRUE(t.Validate().IsInternal());
}

TEST_F(TreeTest, ValidateRejectsUnreachableNodes) {
  Tree t;
  NodeId a = t.AddNode(NodePayload::Cell(Oid(1)));
  t.AddNode(NodePayload::Cell(Oid(2)));  // never attached
  ASSERT_OK(t.SetRoot(a));
  EXPECT_TRUE(t.Validate().IsInternal());
}

TEST_F(TreeTest, DeepChainHeight) {
  Tree t = T("a(b(c(d(e))))");
  EXPECT_EQ(t.Height(), 4u);
  EXPECT_EQ(t.MaxArity(), 1u);
}

}  // namespace
}  // namespace aqua
