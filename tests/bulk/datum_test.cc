#include "bulk/datum.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

using DatumTest = testing::AquaTestBase;

TEST_F(DatumTest, Kinds) {
  EXPECT_TRUE(Datum().is_null());
  EXPECT_TRUE(Datum::Scalar(Value::Int(1)).is_scalar());
  EXPECT_TRUE(Datum::Of(T("a")).is_tree());
  EXPECT_TRUE(Datum::Of(L("[a]")).is_list());
  EXPECT_TRUE(Datum::Tuple({}).is_tuple());
  EXPECT_TRUE(Datum::Set({}).is_set());
}

TEST_F(DatumTest, SetDeduplicatesStructurally) {
  Datum s = Datum::Set({Datum::Of(T("a(b)")), Datum::Of(T("a(b)")),
                        Datum::Of(T("a(c)"))});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.SetContains(Datum::Of(T("a(b)"))));
  EXPECT_FALSE(s.SetContains(Datum::Of(T("b(a)"))));
}

TEST_F(DatumTest, SetEqualityIsOrderInsensitive) {
  Datum s1 = Datum::Set({Datum::Scalar(Value::Int(1)),
                         Datum::Scalar(Value::Int(2))});
  Datum s2 = Datum::Set({Datum::Scalar(Value::Int(2)),
                         Datum::Scalar(Value::Int(1))});
  EXPECT_TRUE(s1.Equals(s2));
  Datum s3 = Datum::Set({Datum::Scalar(Value::Int(1))});
  EXPECT_FALSE(s1.Equals(s3));
}

TEST_F(DatumTest, TupleEqualityIsPositional) {
  Datum t1 = Datum::Tuple({Datum::Scalar(Value::Int(1)),
                           Datum::Scalar(Value::Int(2))});
  Datum t2 = Datum::Tuple({Datum::Scalar(Value::Int(2)),
                           Datum::Scalar(Value::Int(1))});
  EXPECT_FALSE(t1.Equals(t2));
  EXPECT_TRUE(t1.Equals(Datum::Tuple(
      {Datum::Scalar(Value::Int(1)), Datum::Scalar(Value::Int(2))})));
}

TEST_F(DatumTest, MixedKindsNeverEqual) {
  EXPECT_FALSE(Datum::Of(T("a")).Equals(Datum::Of(L("[a]"))));
  EXPECT_FALSE(Datum().Equals(Datum::Set({})));
}

TEST_F(DatumTest, ListAndTreeEqualityDelegate) {
  EXPECT_TRUE(Datum::Of(L("[a b]")).Equals(Datum::Of(L("[a b]"))));
  EXPECT_FALSE(Datum::Of(L("[a b]")).Equals(Datum::Of(L("[b a]"))));
}

TEST_F(DatumTest, BuildersMutate) {
  Datum s = Datum::Set({});
  s.SetInsert(Datum::Scalar(Value::Int(1)));
  s.SetInsert(Datum::Scalar(Value::Int(1)));
  EXPECT_EQ(s.size(), 1u);
  Datum t = Datum::Tuple({});
  t.TupleAppend(Datum::Scalar(Value::Int(1)));
  EXPECT_EQ(t.size(), 1u);
}

TEST_F(DatumTest, ToStringForms) {
  EXPECT_EQ(Datum().ToString(label_), "null");
  EXPECT_EQ(Datum::Scalar(Value::Int(3)).ToString(label_), "3");
  EXPECT_EQ(Datum::Of(T("a(b)")).ToString(label_), "a(b)");
  EXPECT_EQ(Datum::Of(L("[a]")).ToString(label_), "[a]");
  Datum tup = Datum::Tuple({Datum::Of(T("a")), Datum::Of(L("[b]"))});
  EXPECT_EQ(tup.ToString(label_), "<a, [b]>");
  Datum set = Datum::Set({Datum::Scalar(Value::Int(1))});
  EXPECT_EQ(set.ToString(label_), "{1}");
}

}  // namespace
}  // namespace aqua
