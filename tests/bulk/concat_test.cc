#include "bulk/concat.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

using ConcatTest = testing::AquaTestBase;

TEST_F(ConcatTest, TreeConcatSubstitutesAtPoint) {
  Tree base = T("a(@1 c)");
  Tree attach = T("b(d e)");
  EXPECT_EQ(Str(ConcatAt(base, "1", attach)), "a(b(d e) c)");
}

TEST_F(ConcatTest, Figure1Composition) {
  // [[a(α1 α2) ∘_α1 b(d(f g) e)]] ∘_α2 c  =  a(b(d(f g) e) c)
  Tree step1 = ConcatAt(T("a(@1 @2)"), "1", T("b(d(f g) e)"));
  Tree result = ConcatAt(step1, "2", T("c"));
  EXPECT_TRUE(result.StructurallyEquals(T("a(b(d(f g) e) c)")));
  EXPECT_OK(result.Validate());
}

TEST_F(ConcatTest, MissingPointLeavesBaseUnchanged) {
  // Paper §3.3: no α1 in the first tree -> result is the first tree.
  Tree base = T("a(b)");
  Tree result = ConcatAt(base, "zz", T("c"));
  EXPECT_TRUE(result.StructurallyEquals(base));
}

TEST_F(ConcatTest, NilAttachmentDeletesPoint) {
  EXPECT_EQ(Str(ConcatNilAt(T("a(@1 c)"), "1")), "a(c)");
  // Deleting a root point yields nil.
  EXPECT_TRUE(ConcatAt(T("@1"), "1", Tree()).empty());
}

TEST_F(ConcatTest, MultipleSameLabelPointsAllSubstituted) {
  Tree result = ConcatAt(T("a(@1 b @1)"), "1", T("x"));
  EXPECT_EQ(Str(result), "a(x b x)");
}

TEST_F(ConcatTest, CloseAllPointsTree) {
  Tree t = T("a(@1 b(@2) @3)");
  EXPECT_EQ(Str(CloseAllPoints(t)), "a(b)");
  // No points: unchanged.
  EXPECT_EQ(Str(CloseAllPoints(T("a(b)"))), "a(b)");
}

TEST_F(ConcatTest, ConcatAtRootPoint) {
  EXPECT_EQ(Str(ConcatAt(T("@r"), "r", T("a(b)"))), "a(b)");
}

TEST_F(ConcatTest, SelfConcatElements) {
  // Figure 2: [[a(b c α)]]*α — elements for k = 0..3.
  Tree body = T("a(b c @x)");
  EXPECT_TRUE(SelfConcatElement(body, "x", 0).empty());
  EXPECT_EQ(Str(SelfConcatElement(body, "x", 1)), "a(b c)");
  EXPECT_EQ(Str(SelfConcatElement(body, "x", 2)), "a(b c a(b c))");
  EXPECT_EQ(Str(SelfConcatElement(body, "x", 3)), "a(b c a(b c a(b c)))");
}

TEST_F(ConcatTest, ListConcatAppends) {
  EXPECT_EQ(Str(Concat(L("[a b c]"), L("[c b a]"))), "[a b c c b a]");
  EXPECT_EQ(Str(Concat(L("[]"), L("[a]"))), "[a]");
}

TEST_F(ConcatTest, ListConcatAtPoint) {
  EXPECT_EQ(Str(ConcatAt(L("[a @m c]"), "m", L("[x y]"))), "[a x y c]");
  EXPECT_EQ(Str(ConcatNilAt(L("[a @m c]"), "m")), "[a c]");
  // Missing label: unchanged.
  EXPECT_TRUE(ConcatAt(L("[a b]"), "m", L("[x]")) == L("[a b]"));
}

TEST_F(ConcatTest, CloseAllPointsList) {
  EXPECT_EQ(Str(CloseAllPoints(L("[@1 a @2 b @3]"))), "[a b]");
}

TEST_F(ConcatTest, ListToTreeRoundTrip) {
  List l = L("[a b c @x]");
  ASSERT_OK_AND_ASSIGN(Tree t, ListToTree(l));
  EXPECT_TRUE(IsListLike(t));
  EXPECT_EQ(Str(t), "a(b(c(@x)))");
  EXPECT_OK(t.Validate());
  auto back = TreeToList(t);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == l);
}

TEST_F(ConcatTest, ListToTreeRejectsInteriorPoint) {
  // §6: list-like trees can have a concatenation point only at the leaf.
  EXPECT_TRUE(ListToTree(L("[a @x c]")).status().IsInvalidArgument());
}

TEST_F(ConcatTest, EmptyListMapsToNil) {
  ASSERT_OK_AND_ASSIGN(Tree t, ListToTree(List()));
  EXPECT_TRUE(t.empty());
  auto back = TreeToList(Tree());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST_F(ConcatTest, TreeToListRejectsBranching) {
  EXPECT_TRUE(TreeToList(T("a(b c)")).status().IsInvalidArgument());
  EXPECT_FALSE(IsListLike(T("a(b c)")));
  EXPECT_TRUE(IsListLike(T("a(b(c))")));
}

TEST_F(ConcatTest, ListTreeConcatCorrespondence) {
  // §6: [abc] ∘ [cba]  ==  a(b(c(α))) ∘_α c(b(a)) under the mapping.
  List la = L("[a b c]");
  List lb = L("[c b a]");
  List lcat = Concat(la, lb);

  List la_pt = la;
  la_pt.Append(NodePayload::ConcatPoint("t"));
  ASSERT_OK_AND_ASSIGN(Tree ta, ListToTree(la_pt));
  ASSERT_OK_AND_ASSIGN(Tree tb, ListToTree(lb));
  Tree tcat = ConcatAt(ta, "t", tb);

  auto back = TreeToList(tcat);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == lcat);
}

}  // namespace
}  // namespace aqua
