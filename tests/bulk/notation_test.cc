#include "bulk/notation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

using NotationTest = testing::AquaTestBase;

TEST_F(NotationTest, TreeRoundTrip) {
  for (const char* lit :
       {"a", "a(b)", "a(b c)", "b(d(f g) e)", "a(@1 b(@2 c) @3)"}) {
    Tree t = T(lit);
    EXPECT_EQ(Str(t), lit);
    EXPECT_OK(t.Validate());
  }
}

TEST_F(NotationTest, ListRoundTrip) {
  for (const char* lit : {"[]", "[a]", "[a b c]", "[a @x b]"}) {
    EXPECT_EQ(Str(L(lit)), lit);
  }
}

TEST_F(NotationTest, NilParsesToEmpty) {
  auto t = ParseTreeLiteral("nil", atom_);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->empty());
}

TEST_F(NotationTest, QuotedAtoms) {
  auto t = ParseTreeLiteral("\"hello world\"(a)", atom_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Str(*t), "hello world(a)");
}

TEST_F(NotationTest, NumericAtoms) {
  auto t = ParseTreeLiteral("1(2 3)", atom_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Str(*t), "1(2 3)");
}

TEST_F(NotationTest, WhitespaceIsFlexible) {
  Tree t = T("  a ( b   c(d) ) ");
  EXPECT_EQ(Str(t), "a(b c(d))");
}

TEST_F(NotationTest, AtomsInternSameObject) {
  Tree t = T("a(a)");
  EXPECT_EQ(t.payload(t.root()).oid(),
            t.payload(t.children(t.root())[0]).oid());
}

TEST_F(NotationTest, ParseErrors) {
  EXPECT_TRUE(ParseTreeLiteral("a(b", atom_).status().IsParseError());
  EXPECT_TRUE(ParseTreeLiteral("a)b", atom_).status().IsParseError());
  EXPECT_TRUE(ParseTreeLiteral("", atom_).status().IsParseError());
  EXPECT_TRUE(ParseTreeLiteral("@", atom_).status().IsParseError());
  EXPECT_TRUE(ParseTreeLiteral("@x(a)", atom_).status().IsParseError());
  EXPECT_TRUE(ParseTreeLiteral("\"abc", atom_).status().IsParseError());
  EXPECT_TRUE(ParseListLiteral("a b]", atom_).status().IsParseError());
  EXPECT_TRUE(ParseListLiteral("[a b", atom_).status().IsParseError());
  EXPECT_TRUE(ParseListLiteral("[a] x", atom_).status().IsParseError());
}

TEST_F(NotationTest, LabelFnFallsBackToOid) {
  LabelFn fallback = AttrLabelFn(&store_, "no_such_attr");
  Tree t = T("a");
  std::string printed = PrintTree(t, fallback);
  EXPECT_EQ(printed.rfind("oid:", 0), 0u) << printed;
}

TEST_F(NotationTest, NonStringAttributesPrintAsValues) {
  ASSERT_OK_AND_ASSIGN(
      Oid item, store_.Create("Item", {{"name", Value::String("n")},
                                       {"val", Value::Int(7)}}));
  LabelFn by_val = AttrLabelFn(&store_, "val");
  Tree t = Tree::Leaf(NodePayload::Cell(item));
  EXPECT_EQ(PrintTree(t, by_val), "7");
}

}  // namespace
}  // namespace aqua
