#include "bulk/list.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

using ListTest = testing::AquaTestBase;

TEST_F(ListTest, EmptyList) {
  List l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.size(), 0u);
  EXPECT_EQ(Str(l), "[]");
}

TEST_F(ListTest, LiteralAndPrint) {
  List l = L("[a b c]");
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(Str(l), "[a b c]");
  EXPECT_TRUE(l.at(0).is_cell());
}

TEST_F(ListTest, DuplicatesShareObjects) {
  // The paper's Cell[T] rationale: nodes are distinct, contents may repeat.
  List l = L("[a b a]");
  EXPECT_EQ(l.at(0).oid(), l.at(2).oid());
  EXPECT_NE(l.at(0).oid(), l.at(1).oid());
}

TEST_F(ListTest, OfOids) {
  List l = List::OfOids({Oid(1), Oid(2)});
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(l.at(1).oid(), Oid(2));
}

TEST_F(ListTest, Sublist) {
  List l = L("[a b c d]");
  EXPECT_EQ(Str(l.Sublist(1, 3)), "[b c]");
  EXPECT_EQ(Str(l.Sublist(0, 0)), "[]");
  EXPECT_EQ(Str(l.Sublist(3, 2)), "[]");   // inverted range -> empty
  EXPECT_EQ(Str(l.Sublist(2, 99)), "[]");  // out of range -> empty
}

TEST_F(ListTest, Points) {
  List l = L("[a @x b @y @x]");
  EXPECT_TRUE(l.HasPoint("x"));
  EXPECT_FALSE(l.HasPoint("z"));
  auto xs = l.FindPoints("x");
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0], 1u);
  EXPECT_EQ(xs[1], 4u);
  EXPECT_EQ(l.PointLabels().size(), 3u);
  EXPECT_EQ(Str(l), "[a @x b @y @x]");
}

TEST_F(ListTest, Equality) {
  EXPECT_TRUE(L("[a b]") == L("[a b]"));
  EXPECT_TRUE(L("[a b]") != L("[b a]"));
  EXPECT_TRUE(L("[a]") != L("[a a]"));
  EXPECT_TRUE(L("[@x]") == L("[@x]"));
  EXPECT_TRUE(L("[@x]") != L("[@y]"));
}

}  // namespace
}  // namespace aqua
