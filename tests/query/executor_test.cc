#include "query/executor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/digest.h"
#include "obs/recorder.h"
#include "query/builder.h"
#include "test_util.h"

namespace aqua {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(db_.store()));
    atom_ = MakeInterningAtomFn(&db_.store(), "Item", "name");
    label_ = AttrLabelFn(&db_.store(), "name");
    ASSERT_OK_AND_ASSIGN(Tree t,
                         ParseTreeLiteral("r(b(d e) x(b(d f)))", atom_));
    ASSERT_OK(db_.RegisterTree("t", std::move(t)));
    ASSERT_OK_AND_ASSIGN(List l, ParseListLiteral("[a x a y]", atom_));
    ASSERT_OK(db_.RegisterList("l", std::move(l)));
  }

  TreePatternRef TP(const std::string& p) {
    auto tp = ParseTreePattern(p);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    auto lp = ParseListPattern(p);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }
  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }
  std::string Str(const Datum& d) { return d.ToString(label_); }

  Database db_;
  AtomFn atom_;
  LabelFn label_;
};

TEST_F(ExecutorTest, ScanReturnsCollection) {
  Executor exec(&db_);
  ASSERT_OK_AND_ASSIGN(Datum tree, exec.Execute(Q::ScanTree("t")));
  EXPECT_TRUE(tree.is_tree());
  ASSERT_OK_AND_ASSIGN(Datum list, exec.Execute(Q::ScanList("l")));
  EXPECT_TRUE(list.is_list());
  EXPECT_TRUE(
      exec.Execute(Q::ScanTree("missing")).status().IsNotFound());
  // A tree name is not a list name.
  EXPECT_TRUE(exec.Execute(Q::ScanList("t")).status().IsNotFound());
}

TEST_F(ExecutorTest, TreeSubSelectOverScan) {
  Executor exec(&db_);
  ASSERT_OK_AND_ASSIGN(Datum out,
                       exec.Execute(Q::TreeSubSelect(Q::ScanTree("t"),
                                                     TP("b(d ?)"))));
  ASSERT_TRUE(out.is_set());
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(ExecutorTest, OperatorsMapOverForestInputs) {
  // select produces a forest; sub_select then maps over it.
  Executor exec(&db_);
  auto plan = Q::TreeSubSelect(
      Q::TreeSelect(Q::ScanTree("t"), P("name != \"r\"")), TP("b(d ?)"));
  ASSERT_OK_AND_ASSIGN(Datum out, exec.Execute(plan));
  EXPECT_EQ(out.size(), 2u);
  EXPECT_GE(exec.stats().trees_processed, 2u);
}

TEST_F(ExecutorTest, TreeSelectProducesForestSet) {
  Executor exec(&db_);
  ASSERT_OK_AND_ASSIGN(
      Datum out,
      exec.Execute(Q::TreeSelect(Q::ScanTree("t"), P("name == \"b\""))));
  ASSERT_TRUE(out.is_set());
  EXPECT_EQ(out.size(), 1u);  // two identical b-trees collapse in a set
}

TEST_F(ExecutorTest, TreeApplyOverScan) {
  Executor exec(&db_);
  NodeFn fn = [](ObjectStore& store, Oid oid) -> Result<Oid> {
    AQUA_ASSIGN_OR_RETURN(Value name, store.GetAttr(oid, "name"));
    return store.Create("Item",
                        {{"name", Value::String(name.string_value() + "!")},
                         {"val", Value::Null()}});
  };
  ASSERT_OK_AND_ASSIGN(Datum out,
                       exec.Execute(Q::TreeApply(Q::ScanTree("t"), fn)));
  ASSERT_TRUE(out.is_tree());
  EXPECT_EQ(Str(out), "r!(b!(d! e!) x!(b!(d! f!)))");
}

TEST_F(ExecutorTest, TreeSplitPlan) {
  Executor exec(&db_);
  SplitFn fn = [](const Tree& x, const Tree& y,
                  const std::vector<Tree>& z) -> Result<Datum> {
    (void)x;
    (void)z;
    return Datum::Scalar(Value::Int(static_cast<int64_t>(y.size())));
  };
  ASSERT_OK_AND_ASSIGN(
      Datum out, exec.Execute(Q::TreeSplit(Q::ScanTree("t"), TP("b"), fn)));
  ASSERT_TRUE(out.is_set());
  ASSERT_EQ(out.size(), 1u);  // both matches give y of size 3 (b + 2 cuts)
  EXPECT_EQ(out.at(0).scalar().int_value(), 3);
}

TEST_F(ExecutorTest, AllAncAllDescPlans) {
  Executor exec(&db_);
  AncFn anc = [](const Tree& x, const Tree& y) -> Result<Datum> {
    return Datum::Tuple({Datum::Of(x), Datum::Of(y)});
  };
  ASSERT_OK_AND_ASSIGN(
      Datum anc_out,
      exec.Execute(Q::TreeAllAnc(Q::ScanTree("t"), TP("d"), anc)));
  EXPECT_EQ(anc_out.size(), 2u);

  DescFn desc = [](const Tree& y, const std::vector<Tree>& z) -> Result<Datum> {
    return Datum::Tuple(
        {Datum::Of(y), Datum::Scalar(Value::Int(static_cast<int64_t>(
                           z.size())))});
  };
  ASSERT_OK_AND_ASSIGN(
      Datum desc_out,
      exec.Execute(Q::TreeAllDesc(Q::ScanTree("t"), TP("b"), desc)));
  EXPECT_EQ(desc_out.size(), 1u);
}

TEST_F(ExecutorTest, IndexedSubSelectPlan) {
  ASSERT_OK(db_.CreateIndex("t", "name"));
  Executor exec(&db_);
  auto plan = Q::IndexedSubSelect("t", "name", P("name == \"b\""),
                                  TP("b(d ?)"));
  ASSERT_OK_AND_ASSIGN(Datum indexed, exec.Execute(plan));
  EXPECT_EQ(exec.stats().index_probes, 1u);
  EXPECT_EQ(exec.stats().index_candidates, 2u);

  Executor exec2(&db_);
  ASSERT_OK_AND_ASSIGN(
      Datum naive,
      exec2.Execute(Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"))));
  EXPECT_TRUE(indexed.Equals(naive));
}

TEST_F(ExecutorTest, ListPlans) {
  Executor exec(&db_);
  ASSERT_OK_AND_ASSIGN(
      Datum filtered,
      exec.Execute(Q::ListSelect(Q::ScanList("l"), P("name == \"a\""))));
  ASSERT_TRUE(filtered.is_list());
  EXPECT_EQ(filtered.list().size(), 2u);

  ASSERT_OK_AND_ASSIGN(
      Datum sub, exec.Execute(Q::ListSubSelect(Q::ScanList("l"), LP("a ?"))));
  ASSERT_TRUE(sub.is_set());
  EXPECT_EQ(sub.size(), 2u);  // [a x] and [a y]

  ListSplitFn fn = [](const List& x, const List& y,
                      const std::vector<List>& z) -> Result<Datum> {
    (void)x;
    (void)z;
    return Datum::Scalar(Value::Int(static_cast<int64_t>(y.size())));
  };
  ASSERT_OK_AND_ASSIGN(
      Datum split,
      exec.Execute(Q::ListSplit(Q::ScanList("l"), LP("^a"), fn)));
  EXPECT_EQ(split.size(), 1u);

  ListNodeFn map = [](ObjectStore&, Oid oid) -> Result<Oid> { return oid; };
  ASSERT_OK_AND_ASSIGN(Datum mapped,
                       exec.Execute(Q::ListApply(Q::ScanList("l"), map)));
  EXPECT_TRUE(mapped.is_list());
}

TEST_F(ExecutorTest, ListAllAncAllDescPlans) {
  Executor exec(&db_);
  ListAncFn anc = [](const List& x, const List& y) -> Result<Datum> {
    return Datum::Tuple({Datum::Of(x), Datum::Of(y)});
  };
  ASSERT_OK_AND_ASSIGN(
      Datum anc_out,
      exec.Execute(Q::ListAllAnc(Q::ScanList("l"), LP("y$"), anc)));
  EXPECT_EQ(anc_out.size(), 1u);

  ListDescFn desc = [](const List& y,
                       const std::vector<List>& z) -> Result<Datum> {
    return Datum::Tuple({Datum::Of(y), Datum::Scalar(Value::Int(
                                           static_cast<int64_t>(z.size())))});
  };
  ASSERT_OK_AND_ASSIGN(
      Datum desc_out,
      exec.Execute(Q::ListAllDesc(Q::ScanList("l"), LP("^a"), desc)));
  EXPECT_EQ(desc_out.size(), 1u);
}

TEST_F(ExecutorTest, IndexedListSubSelectPlan) {
  ASSERT_OK(db_.CreateIndex("l", "name"));
  Executor exec(&db_);
  auto plan = Q::IndexedListSubSelect("l", "name", P("name == \"a\""),
                                      LP("a ?"));
  ASSERT_OK_AND_ASSIGN(Datum indexed, exec.Execute(plan));
  EXPECT_EQ(exec.stats().index_probes, 1u);
  Executor exec2(&db_);
  ASSERT_OK_AND_ASSIGN(
      Datum naive, exec2.Execute(Q::ListSubSelect(Q::ScanList("l"),
                                                  LP("a ?"))));
  EXPECT_TRUE(indexed.Equals(naive));
}

TEST_F(ExecutorTest, ExplainAnalyzeAnnotatesExecutedPlan) {
  Executor exec(&db_);
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  ASSERT_OK(exec.Execute(plan).status());
  std::string analyzed = exec.ExplainAnalyze(plan);
  EXPECT_NE(analyzed.find("TreeSubSelect"), std::string::npos);
  EXPECT_NE(analyzed.find("1 call"), std::string::npos);
  EXPECT_NE(analyzed.find("ms"), std::string::npos);
  EXPECT_NE(analyzed.find("out=2"), std::string::npos) << analyzed;
  // A different (unexecuted) plan renders as not executed.
  auto other = Q::ScanTree("t");
  EXPECT_NE(exec.ExplainAnalyze(other).find("not executed"),
            std::string::npos);
}

TEST_F(ExecutorTest, ExplainAnalyzeShowsEstimateActualAndQError) {
  Executor exec(&db_);
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  ASSERT_OK(exec.Execute(plan).status());
  std::string analyzed = exec.ExplainAnalyze(plan);
  // Every estimatable executed op carries est-vs-actual with its Q-error.
  EXPECT_NE(analyzed.find("est="), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("act="), std::string::npos) << analyzed;
  EXPECT_NE(analyzed.find("q="), std::string::npos) << analyzed;
  // The scan is estimated exactly: est == act == 8 nodes, q == 1.00.
  EXPECT_NE(analyzed.find("est=8, act=8, q=1.00"), std::string::npos)
      << analyzed;
}

#ifndef AQUA_OBS_DISABLED
TEST_F(ExecutorTest, ExecuteHarvestsPerOpRowsIntoStatsWarehouse) {
  obs::StatsWarehouse& wh = obs::StatsWarehouse::Global();
  wh.Reset();
  Executor exec(&db_);
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  ASSERT_OK(exec.Execute(plan).status());

  uint64_t fp = obs::FingerprintPlan(plan);
  std::vector<obs::OpStatsRow> rows = wh.RowsFor(fp);
  ASSERT_EQ(rows.size(), 2u);  // sub_select + scan, preorder paths
  EXPECT_EQ(rows[0].path, "0");
  EXPECT_EQ(rows[1].path, "0.0");
  EXPECT_EQ(rows[0].calls, 1u);
  // Scan emitted 8 nodes into the sub_select, which kept 2 subtrees.
  EXPECT_DOUBLE_EQ(rows[1].out_rows, 8.0);
  EXPECT_DOUBLE_EQ(rows[0].in_rows, 8.0);
  EXPECT_DOUBLE_EQ(rows[0].out_rows, 2.0);
  EXPECT_NEAR(rows[0].selectivity, 2.0 / 8.0, 1e-9);

  // A second run of the same shape folds into the same rows.
  ASSERT_OK(exec.Execute(plan).status());
  rows = wh.RowsFor(fp);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].calls, 2u);

  // The learned index answers by subplan fingerprint.
  double sel = 0;
  uint64_t calls = 0;
  ASSERT_TRUE(wh.LearnedSelectivity(fp, &sel, &calls));
  EXPECT_EQ(calls, 2u);
  EXPECT_NEAR(sel, 2.0 / 8.0, 1e-9);
  wh.Reset();
}
#endif  // AQUA_OBS_DISABLED

TEST_F(ExecutorTest, PerOperatorStatsResetEachExecute) {
  Executor exec(&db_);
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  ASSERT_OK(exec.Execute(plan).status());
  ASSERT_OK(exec.Execute(plan).status());
  // Stats describe the most recent Execute only: 1 call each, not 2.
  std::string analyzed = exec.ExplainAnalyze(plan);
  EXPECT_NE(analyzed.find("(1 call,"), std::string::npos) << analyzed;
  EXPECT_EQ(analyzed.find("2 calls"), std::string::npos) << analyzed;
  // Executing a different plan drops the previous plan's annotations
  // and aggregate stats.
  ASSERT_OK(exec.Execute(Q::ScanList("l")).status());
  EXPECT_NE(exec.ExplainAnalyze(plan).find("not executed"),
            std::string::npos);
  EXPECT_EQ(exec.stats().operators_evaluated, 1u);
}

TEST_F(ExecutorTest, TraceCapturesSpanTreePerExecute) {
  Executor exec(&db_);
  EXPECT_FALSE(exec.trace_enabled());
  exec.set_trace_enabled(true);
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  ASSERT_OK(exec.Execute(plan).status());
  // Execute -> TreeSubSelect -> ScanTree.
  ASSERT_EQ(exec.trace().size(), 3u);
  const auto& spans = exec.trace().spans();
  EXPECT_EQ(spans[0].name, "Execute");
  EXPECT_EQ(spans[1].name, "TreeSubSelect");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].name, "ScanTree");
  EXPECT_EQ(spans[2].parent, 1u);
  std::string report = exec.TraceReport();
  EXPECT_NE(report.find("Execute"), std::string::npos);
  EXPECT_NE(report.find("  TreeSubSelect"), std::string::npos);
  EXPECT_NE(report.find("    ScanTree"), std::string::npos);
  EXPECT_NE(report.find("[out=2]"), std::string::npos) << report;
  // Each Execute replaces the previous tree; disabling stops collection.
  ASSERT_OK(exec.Execute(Q::ScanList("l")).status());
  EXPECT_EQ(exec.trace().size(), 2u);
  exec.set_trace_enabled(false);
  ASSERT_OK(exec.Execute(plan).status());
  EXPECT_TRUE(exec.trace().empty());
}

#ifndef AQUA_OBS_DISABLED
TEST_F(ExecutorTest, IndexedListSubSelectAttributesLayerCounters) {
  ASSERT_OK(db_.CreateIndex("l", "name"));
  Executor exec(&db_);
  exec.set_trace_enabled(true);
  auto plan = Q::IndexedListSubSelect("l", "name", P("name == \"a\""),
                                      LP("a ?"));
  ASSERT_OK_AND_ASSIGN(Datum out, exec.Execute(plan));
  EXPECT_EQ(out.size(), 2u);
  ASSERT_EQ(exec.trace().size(), 2u);
  EXPECT_EQ(exec.trace().spans()[1].name, "IndexedListSubSelect");
  // The counter delta attributed to this execution shows the layers that
  // did the work: the index probe and the NFA prefilter under sub_select.
  const obs::Snapshot& delta = exec.last_counters();
  EXPECT_GT(delta.CounterValue("index.probes"), 0u);
  EXPECT_GT(delta.CounterValue("pattern.nfa_steps"), 0u);
  EXPECT_GT(delta.CounterValue("pattern.list_match_calls"), 0u);
  EXPECT_EQ(delta.CounterValue("exec.executes"), 1u);
  EXPECT_EQ(delta.CounterValue("exec.operators_evaluated"), 1u);
  // The Chrome-trace export carries the span tree and those counters.
  std::string json = exec.TraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"IndexedListSubSelect\""), std::string::npos);
  EXPECT_NE(json.find("\"pattern.nfa_steps\""), std::string::npos);
  EXPECT_NE(json.find("\"index.probes\""), std::string::npos);
}
TEST_F(ExecutorTest, ExecutePopulatesDigestTableAndFlightRecorder) {
  obs::DigestTable::Global().Reset();
  obs::FlightRecorder::Global().Clear();
  Executor exec(&db_);
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  ASSERT_OK(exec.Execute(plan).status());
  ASSERT_OK(exec.Execute(plan).status());

  // The digest table accumulates both runs under one normalized fingerprint.
  uint64_t fp = obs::FingerprintPlan(plan);
  obs::DigestRow row = obs::DigestTable::Global().Row(fp);
  EXPECT_EQ(row.calls, 2u);
  EXPECT_GT(row.total_ns, 0u);
  EXPECT_LE(row.min_ns, row.max_ns);
  EXPECT_NE(row.text.find("TreeSubSelect"), std::string::npos) << row.text;

  // The flight recorder retains one execute event per run, keyed by the
  // same fingerprint, with the counter-delta highlights filled in.
  std::vector<obs::FlightEvent> events = obs::FlightRecorder::Global().Dump();
  ASSERT_EQ(events.size(), 2u);
  for (const obs::FlightEvent& e : events) {
    EXPECT_EQ(e.kind, static_cast<uint32_t>(obs::FlightEventKind::kExecute));
    EXPECT_EQ(e.fingerprint, fp);
    EXPECT_EQ(e.ok, 1u);
    EXPECT_GT(e.wall_ns, 0u);
    EXPECT_GT(e.tree_steps, 0u);
  }

  // A failing execute records ok=0.
  EXPECT_FALSE(exec.Execute(Q::ScanTree("missing")).ok());
  events = obs::FlightRecorder::Global().Dump();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.back().ok, 0u);
  obs::DigestTable::Global().Reset();
  obs::FlightRecorder::Global().Clear();
}

TEST_F(ExecutorTest, SlowQueryThresholdAppendsToLog) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  std::string path = ::testing::TempDir() + "/aqua_executor_slow.log";
  std::remove(path.c_str());
  std::string saved_path = rec.slow_query_log_path();
  uint64_t saved_threshold = rec.slow_query_threshold_ns();
  rec.set_slow_query_log_path(path);
  rec.set_slow_query_threshold_ns(1);  // every query is "slow"

  Executor exec(&db_);
  exec.set_trace_enabled(true);
  uint64_t before = rec.slow_queries_logged();
  ASSERT_OK(exec.Execute(Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)")))
                .status());
  EXPECT_EQ(rec.slow_queries_logged(), before + 1);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string log = buf.str();
  EXPECT_NE(log.find("slow query:"), std::string::npos) << log;
  EXPECT_NE(log.find("TreeSubSelect"), std::string::npos);  // plan + spans
  EXPECT_NE(log.find("exec.executes"), std::string::npos);  // counter delta

  rec.set_slow_query_log_path(saved_path);
  rec.set_slow_query_threshold_ns(saved_threshold);
  std::remove(path.c_str());
}
#endif  // AQUA_OBS_DISABLED

TEST_F(ExecutorTest, TypeErrorsSurface) {
  Executor exec(&db_);
  // Tree operator over a list scan.
  auto bad = Q::TreeSubSelect(Q::ScanList("l"), TP("a"));
  EXPECT_TRUE(exec.Execute(bad).status().IsTypeError());
  auto bad2 = Q::ListSelect(Q::ScanTree("t"), P("true"));
  EXPECT_TRUE(exec.Execute(bad2).status().IsTypeError());
  EXPECT_TRUE(exec.Execute(nullptr).status().IsInvalidArgument());
}

}  // namespace
}  // namespace aqua
