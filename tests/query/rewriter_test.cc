#include "query/rewriter.h"

#include <gtest/gtest.h>

#include "query/builder.h"
#include "query/executor.h"
#include "test_util.h"

namespace aqua {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(db_.store()));
    RandomTreeSpec spec;
    spec.num_nodes = 300;
    spec.seed = 11;
    ASSERT_OK_AND_ASSIGN(Tree t, MakeRandomTree(db_.store(), spec));
    ASSERT_OK(db_.RegisterTree("t", std::move(t)));
    ASSERT_OK(db_.CreateIndex("t", "name"));
  }

  TreePatternRef TP(const std::string& p) {
    auto tp = ParseTreePattern(p);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }

  Database db_;
};

TEST_F(RewriterTest, SplitAnchorRewriteFires) {
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"),
                               TP("{name == \"a\"}(?* {name == \"b\"} ?*)"));
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  EXPECT_EQ(optimized->op, PlanOp::kIndexedSubSelect);
  EXPECT_EQ(optimized->attr, "name");
  ASSERT_FALSE(rewriter.applied().empty());
  EXPECT_EQ(rewriter.applied()[0], "split-anchor");
}

TEST_F(RewriterTest, RewrittenPlanGivesSameAnswer) {
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"),
                               TP("{name == \"a\"}(?* {name == \"b\"} ?*)"));
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  ASSERT_FALSE(PlanEquals(plan, optimized));

  Executor e1(&db_), e2(&db_);
  ASSERT_OK_AND_ASSIGN(Datum naive, e1.Execute(plan));
  ASSERT_OK_AND_ASSIGN(Datum opt, e2.Execute(optimized));
  EXPECT_TRUE(naive.Equals(opt));
  EXPECT_GT(naive.size(), 0u);
}

TEST_F(RewriterTest, NoIndexNoRewrite) {
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  // `val` is not indexed.
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("{val > 50}(?*)"));
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  EXPECT_EQ(optimized->op, PlanOp::kTreeSubSelect);
  EXPECT_TRUE(rewriter.applied().empty());
}

TEST_F(RewriterTest, UnconstrainedRootNoRewrite) {
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("?(?*)"));
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  EXPECT_EQ(optimized->op, PlanOp::kTreeSubSelect);
}

TEST_F(RewriterTest, ConjunctAnchorIsFound) {
  // Only one conjunct of the root predicate is indexable; the rewrite
  // probes it and verifies the whole pattern (predicate decomposition, §4).
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  auto plan = Q::TreeSubSelect(
      Q::ScanTree("t"), TP("{val > 50 && name == \"c\"}(?*)"));
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  ASSERT_EQ(optimized->op, PlanOp::kIndexedSubSelect);
  EXPECT_EQ(optimized->anchor->ToString(), "name == \"c\"");

  Executor e1(&db_), e2(&db_);
  ASSERT_OK_AND_ASSIGN(Datum naive, e1.Execute(plan));
  ASSERT_OK_AND_ASSIGN(Datum opt, e2.Execute(optimized));
  EXPECT_TRUE(naive.Equals(opt));
}

TEST_F(RewriterTest, SelectCascadeRule) {
  Rewriter rewriter(&db_);
  rewriter.AddRule(MakeSelectCascadeRule());
  auto plan =
      Q::TreeSelect(Q::ScanTree("t"), P("name == \"a\" && val > 50"));
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  ASSERT_EQ(optimized->op, PlanOp::kTreeSelect);
  ASSERT_EQ(optimized->children[0]->op, PlanOp::kTreeSelect);
  EXPECT_EQ(optimized->pred->ToString(), "val > 50");
  EXPECT_EQ(optimized->children[0]->pred->ToString(), "name == \"a\"");

  Executor e1(&db_), e2(&db_);
  ASSERT_OK_AND_ASSIGN(Datum naive, e1.Execute(plan));
  ASSERT_OK_AND_ASSIGN(Datum opt, e2.Execute(optimized));
  EXPECT_TRUE(naive.Equals(opt));
}

TEST_F(RewriterTest, CheapPredicateFirstReordersCascade) {
  Rewriter rewriter(&db_);
  rewriter.AddRule(MakeCheapPredicateFirstRule());
  auto heavy = P("val > 1 && val < 99 && name != \"q\"");
  auto light = P("name == \"a\"");
  auto plan = Q::TreeSelect(Q::TreeSelect(Q::ScanTree("t"), heavy), light);
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  // The cheap predicate now runs first (innermost).
  EXPECT_EQ(optimized->children[0]->pred->ToString(), "name == \"a\"");
}

TEST_F(RewriterTest, FindIndexableConjunct) {
  ASSERT_OK_AND_ASSIGN(
      PredicateRef hit,
      FindIndexableConjunct(db_, "t", P("val > 1 && name == \"a\"")));
  EXPECT_EQ(hit->ToString(), "name == \"a\"");
  EXPECT_TRUE(
      FindIndexableConjunct(db_, "t", P("val > 1")).status().IsNotFound());
  EXPECT_TRUE(FindIndexableConjunct(db_, "t", P("name != \"a\""))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(FindIndexableConjunct(db_, "t", nullptr).status().IsNotFound());
}

TEST_F(RewriterTest, ListAnchorRuleFires) {
  ASSERT_OK_AND_ASSIGN(
      List l, MakeRandomList(db_.store(), 400, {"a", "b", "c", "d"}, 23));
  ASSERT_OK(db_.RegisterList("l", std::move(l)));
  ASSERT_OK(db_.CreateIndex("l", "name"));
  auto lp = ParseListPattern("{name == \"a\"} ? {name == \"b\"}");
  ASSERT_TRUE(lp.ok());
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  auto plan = Q::ListSubSelect(Q::ScanList("l"), *lp);
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  ASSERT_EQ(optimized->op, PlanOp::kIndexedListSubSelect);
  EXPECT_EQ(optimized->anchor->ToString(), "name == \"a\"");

  Executor e1(&db_), e2(&db_);
  ASSERT_OK_AND_ASSIGN(Datum naive, e1.Execute(plan));
  ASSERT_OK_AND_ASSIGN(Datum opt, e2.Execute(optimized));
  EXPECT_TRUE(naive.Equals(opt));
  EXPECT_GT(e2.stats().index_probes, 0u);
}

TEST_F(RewriterTest, ListAnchorRuleSkipsUnanchorablePatterns) {
  ASSERT_OK_AND_ASSIGN(List l,
                       MakeRandomList(db_.store(), 50, {"a", "b"}, 2));
  ASSERT_OK(db_.RegisterList("l2", std::move(l)));
  ASSERT_OK(db_.CreateIndex("l2", "name"));
  auto lp = ParseListPattern("?* {name == \"a\"}");  // nullable head
  ASSERT_TRUE(lp.ok());
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  ASSERT_OK_AND_ASSIGN(PlanRef optimized,
                       rewriter.Optimize(Q::ListSubSelect(Q::ScanList("l2"),
                                                          *lp)));
  EXPECT_EQ(optimized->op, PlanOp::kListSubSelect);
}

TEST_F(RewriterTest, ApplyFusionRule) {
  NodeFn bump = [](ObjectStore& store, Oid oid) -> Result<Oid> {
    AQUA_ASSIGN_OR_RETURN(Value v, store.GetAttr(oid, "val"));
    return store.Create("Item",
                        {{"name", Value::String("x")},
                         {"val", Value::Int(v.is_null() ? 1
                                                        : v.int_value() + 1)}});
  };
  Rewriter rewriter(&db_);
  rewriter.AddRule(MakeApplyFusionRule());
  auto plan = Q::TreeApply(Q::TreeApply(Q::ScanTree("t"), bump), bump);
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  ASSERT_EQ(optimized->op, PlanOp::kTreeApply);
  ASSERT_EQ(optimized->children[0]->op, PlanOp::kScanTree);  // fused

  Executor e1(&db_), e2(&db_);
  ASSERT_OK_AND_ASSIGN(Datum twice, e1.Execute(plan));
  ASSERT_OK_AND_ASSIGN(Datum fused, e2.Execute(optimized));
  // Object identities differ (apply creates objects), but shapes and the
  // twice-bumped values agree.
  ASSERT_TRUE(twice.is_tree());
  ASSERT_TRUE(fused.is_tree());
  EXPECT_EQ(twice.tree().size(), fused.tree().size());
  LabelFn by_val = AttrLabelFn(&db_.store(), "val");
  EXPECT_EQ(PrintTree(twice.tree(), by_val), PrintTree(fused.tree(), by_val));
}

TEST_F(RewriterTest, PatternSimplifyRuleFires) {
  Rewriter rewriter(&db_);
  rewriter.AddRule(MakePatternSimplifyRule());
  // `a | a` costs as a disjunction until simplified.
  auto plan = Q::TreeSubSelect(
      Q::ScanTree("t"),
      TP("{name == \"a\"}(?*) | {name == \"a\"}(?*)"));
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(plan));
  ASSERT_EQ(optimized->op, PlanOp::kTreeSubSelect);
  EXPECT_EQ(optimized->tpattern->kind(), TreePattern::Kind::kNode);

  Executor e1(&db_), e2(&db_);
  ASSERT_OK_AND_ASSIGN(Datum before, e1.Execute(plan));
  ASSERT_OK_AND_ASSIGN(Datum after, e2.Execute(optimized));
  EXPECT_TRUE(before.Equals(after));
}

TEST_F(RewriterTest, OptimizeIsIdempotent) {
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("{name == \"a\"}(?*)"));
  ASSERT_OK_AND_ASSIGN(PlanRef once, rewriter.Optimize(plan));
  Rewriter rewriter2(&db_);
  rewriter2.AddDefaultRules();
  ASSERT_OK_AND_ASSIGN(PlanRef twice, rewriter2.Optimize(once));
  EXPECT_TRUE(PlanEquals(once, twice));
}

}  // namespace
}  // namespace aqua
