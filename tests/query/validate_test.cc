#include "query/validate.h"

#include <gtest/gtest.h>

#include "query/builder.h"
#include "test_util.h"

namespace aqua {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A type with one stored and one computed attribute (§3.1 footnote 2).
    ASSERT_OK(db_.store()
                  .schema()
                  .RegisterType("Doc", {{"title", ValueType::kString, true},
                                        {"word_count", ValueType::kInt,
                                         /*stored=*/false}})
                  .status());
    ASSERT_OK_AND_ASSIGN(
        Oid a, db_.store().Create("Doc", {{"title", Value::String("a")}}));
    ASSERT_OK_AND_ASSIGN(
        Oid b, db_.store().Create("Doc", {{"title", Value::String("b")}}));
    tree_ = Tree::Node(NodePayload::Cell(a),
                       {Tree::Leaf(NodePayload::Cell(b))});
    ASSERT_OK(db_.RegisterTree("docs", tree_));
    List l;
    l.Append(NodePayload::Cell(a));
    l.Append(NodePayload::Cell(b));
    list_ = l;
    ASSERT_OK(db_.RegisterList("doclist", std::move(l)));
  }

  TreePatternRef TP(const std::string& p) {
    PatternParserOptions opts;
    opts.default_attr = "title";
    auto tp = ParseTreePattern(p, opts);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    PatternParserOptions opts;
    opts.default_attr = "title";
    auto lp = ParseListPattern(p, opts);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }

  Database db_;
  Tree tree_;
  List list_;
};

TEST_F(ValidateTest, StoredAttributePasses) {
  EXPECT_OK(ValidateTreePatternAgainst(db_.store(), tree_,
                                       TP("{title == \"a\"}(?*)")));
  EXPECT_OK(ValidateListPatternAgainst(db_.store(), list_,
                                       LP("{title == \"a\"} ?")));
}

TEST_F(ValidateTest, ComputedAttributeRejected) {
  Status st = ValidateTreePatternAgainst(db_.store(), tree_,
                                         TP("{word_count > 100}(?*)"));
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("word_count"), std::string::npos);
  EXPECT_TRUE(ValidateListPatternAgainst(db_.store(), list_,
                                         LP("{word_count > 100}"))
                  .IsInvalidArgument());
}

TEST_F(ValidateTest, ComputedAttributeInsideStructureRejected) {
  // Nested in a child sequence / conjunction / prune — still found.
  EXPECT_TRUE(ValidateTreePatternAgainst(
                  db_.store(), tree_,
                  TP("{title == \"a\"}(!{word_count > 1} ?*)"))
                  .IsInvalidArgument());
  EXPECT_TRUE(ValidateTreePatternAgainst(
                  db_.store(), tree_,
                  TP("{title == \"a\" && word_count > 1}"))
                  .IsInvalidArgument());
}

TEST_F(ValidateTest, UnknownAttributeIsAllowed) {
  // Predicates on attributes no present type declares simply never match;
  // they are not a stored-ness violation.
  EXPECT_OK(ValidateTreePatternAgainst(db_.store(), tree_,
                                       TP("{citizen == \"USA\"}")));
}

TEST_F(ValidateTest, PlanValidationWalksScans) {
  auto good = Q::TreeSubSelect(Q::ScanTree("docs"), TP("{title == \"a\"}"));
  EXPECT_OK(ValidatePlanPatterns(db_, good));

  auto bad = Q::TreeSubSelect(Q::ScanTree("docs"), TP("{word_count > 1}"));
  EXPECT_TRUE(ValidatePlanPatterns(db_, bad).IsInvalidArgument());

  auto bad_select =
      Q::TreeSelect(Q::ScanTree("docs"),
                    Predicate::Compare("word_count", CmpOp::kGt,
                                       Value::Int(0)));
  EXPECT_TRUE(ValidatePlanPatterns(db_, bad_select).IsInvalidArgument());

  auto bad_list = Q::ListSubSelect(Q::ScanList("doclist"),
                                   LP("{word_count > 1}"));
  EXPECT_TRUE(ValidatePlanPatterns(db_, bad_list).IsInvalidArgument());

  EXPECT_TRUE(ValidatePlanPatterns(db_, nullptr).IsInvalidArgument());
}

TEST_F(ValidateTest, NullPatternsRejected) {
  EXPECT_TRUE(ValidateTreePatternAgainst(db_.store(), tree_, nullptr)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ValidateListPatternAgainst(db_.store(), list_, AnchoredListPattern{})
          .IsInvalidArgument());
}

}  // namespace
}  // namespace aqua
