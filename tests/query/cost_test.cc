#include "query/cost.h"

#include <gtest/gtest.h>

#include "obs/digest.h"
#include "obs/metrics.h"
#include "query/builder.h"
#include "test_util.h"

namespace aqua {
namespace {

class CostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(db_.store()));
    RandomTreeSpec spec;
    spec.num_nodes = 500;
    ASSERT_OK_AND_ASSIGN(Tree t, MakeRandomTree(db_.store(), spec));
    ASSERT_OK(db_.RegisterTree("t", std::move(t)));
    ASSERT_OK(db_.CreateIndex("t", "name"));
  }

  TreePatternRef TP(const std::string& pattern) {
    auto tp = ParseTreePattern(pattern);
    EXPECT_TRUE(tp.ok());
    return tp.ok() ? *tp : nullptr;
  }

  Database db_;
};

TEST_F(CostTest, ScanCostIsCollectionSize) {
  CostModel model(&db_);
  ASSERT_OK_AND_ASSIGN(CostEstimate est, model.Estimate(Q::ScanTree("t")));
  EXPECT_DOUBLE_EQ(est.out_nodes, 500.0);
}

TEST_F(CostTest, UnknownCollectionFails) {
  CostModel model(&db_);
  EXPECT_TRUE(model.Estimate(Q::ScanTree("nope")).status().IsNotFound());
  EXPECT_TRUE(model.Estimate(nullptr).status().IsInvalidArgument());
}

TEST_F(CostTest, SubSelectCostGrowsWithPatternSize) {
  CostModel model(&db_);
  ASSERT_OK_AND_ASSIGN(
      CostEstimate small,
      model.Estimate(Q::TreeSubSelect(Q::ScanTree("t"), TP("a"))));
  ASSERT_OK_AND_ASSIGN(
      CostEstimate big,
      model.Estimate(Q::TreeSubSelect(Q::ScanTree("t"), TP("a(b c d e)"))));
  EXPECT_LT(small.cost, big.cost);
}

TEST_F(CostTest, ClosuresMultiplyPatternWork) {
  EXPECT_LT(CostModel::PatternWork(TP("a(b)")),
            CostModel::PatternWork(TP("a(b*)")));
  EXPECT_LT(CostModel::PatternWork(TP("a(b*)")),
            CostModel::PatternWork(TP("a(b* c*)")));
}

TEST_F(CostTest, IndexedSubSelectIsCheaperForSelectiveAnchors) {
  CostModel model(&db_);
  auto tp = TP("{name == \"a\"}(?*)");
  auto anchor = ParsePredicate("name == \"a\"");
  ASSERT_TRUE(anchor.ok());
  ASSERT_OK_AND_ASSIGN(
      CostEstimate naive,
      model.Estimate(Q::TreeSubSelect(Q::ScanTree("t"), tp)));
  ASSERT_OK_AND_ASSIGN(
      CostEstimate indexed,
      model.Estimate(Q::IndexedSubSelect("t", "name", *anchor, tp)));
  // Selectivity of one label out of five is ~0.2; the probe wins.
  EXPECT_LT(indexed.cost, naive.cost);
}

TEST_F(CostTest, SelectCascadeCostsAreComparable) {
  CostModel model(&db_);
  auto conj = ParsePredicate("name == \"a\" && val > 10");
  ASSERT_TRUE(conj.ok());
  ASSERT_OK_AND_ASSIGN(
      CostEstimate one,
      model.Estimate(Q::TreeSelect(Q::ScanTree("t"), *conj)));
  auto p1 = ParsePredicate("name == \"a\"");
  auto p2 = ParsePredicate("val > 10");
  ASSERT_OK_AND_ASSIGN(
      CostEstimate cascade,
      model.Estimate(
          Q::TreeSelect(Q::TreeSelect(Q::ScanTree("t"), *p1), *p2)));
  // The cascade runs the second predicate on a reduced input.
  EXPECT_LT(cascade.cost, one.cost + 1500);
}

#ifndef AQUA_OBS_DISABLED

TEST_F(CostTest, LearnedSelectivityOverridesStaticDefault) {
  auto tp = TP("{name == \"a\"}(?*)");
  PlanRef plan = Q::TreeSubSelect(Q::ScanTree("t"), tp);
  CostModel statics(&db_);
  ASSERT_OK_AND_ASSIGN(CostEstimate cold, statics.Estimate(plan));

  // Teach the warehouse that this subplan keeps almost everything.
  obs::StatsWarehouse wh(/*capacity=*/64);
  obs::OpSample s;
  s.op_name = "sub_select";
  s.path = "0";
  s.node_fp = obs::FingerprintPlan(plan);
  s.calls = 1;
  s.in_rows = 500;
  s.out_rows = 450;
  s.wall_ns = 1000;
  for (int i = 0; i < 2; ++i) wh.Harvest(0x1, {s});  // reach kMinConfidence

  CostModel learned(&db_, &wh);
  ASSERT_OK_AND_ASSIGN(CostEstimate warm, learned.Estimate(plan));
  EXPECT_GT(warm.out_nodes, cold.out_nodes);
  EXPECT_NEAR(warm.out_nodes, 500 * 0.9, 500 * 0.9 * 0.5);
}

TEST_F(CostTest, LearnedSelectivityRequiresConfidence) {
  auto tp = TP("{name == \"a\"}(?*)");
  PlanRef plan = Q::TreeSubSelect(Q::ScanTree("t"), tp);
  obs::OpSample s;
  s.op_name = "sub_select";
  s.path = "0";
  s.node_fp = obs::FingerprintPlan(plan);
  s.calls = 1;
  s.in_rows = 500;
  s.out_rows = 500;
  obs::StatsWarehouse wh(/*capacity=*/64);
  wh.Harvest(0x1, {s});  // one harvest < kMinConfidence

  CostModel statics(&db_);
  CostModel learned(&db_, &wh);
  ASSERT_OK_AND_ASSIGN(CostEstimate cold, statics.Estimate(plan));
  ASSERT_OK_AND_ASSIGN(CostEstimate warm, learned.Estimate(plan));
  EXPECT_DOUBLE_EQ(warm.out_nodes, cold.out_nodes);  // fell back
}

TEST_F(CostTest, LearnedCandidatesFeedIndexedProbeEstimate) {
  auto tp = TP("{name == \"a\"}(?*)");
  auto anchor = ParsePredicate("name == \"a\"");
  ASSERT_TRUE(anchor.ok());
  PlanRef plan = Q::IndexedSubSelect("t", "name", *anchor, tp);

  CostModel statics(&db_);
  ASSERT_OK_AND_ASSIGN(CostEstimate cold, statics.Estimate(plan));

  // Observed: each probe returns just 2 candidates (static guess: ~100).
  obs::OpSample s;
  s.op_name = "indexed_sub_select";
  s.path = "0";
  s.node_fp = obs::FingerprintPlan(plan);
  s.calls = 1;
  s.in_rows = 2;
  s.out_rows = 1;
  s.probes = 1;
  s.candidates = 2;
  obs::StatsWarehouse wh(/*capacity=*/64);
  for (int i = 0; i < 2; ++i) wh.Harvest(0x1, {s});

  CostModel learned(&db_, &wh);
  ASSERT_OK_AND_ASSIGN(CostEstimate warm, learned.Estimate(plan));
  EXPECT_LT(warm.cost, cold.cost);
}

TEST_F(CostTest, LearnedModeBumpsHitAndMissCounters) {
  obs::Snapshot before = obs::Registry::Global().Snap();
  auto tp = TP("{name == \"a\"}(?*)");
  PlanRef plan = Q::TreeSubSelect(Q::ScanTree("t"), tp);

  obs::StatsWarehouse wh(/*capacity=*/64);
  CostModel learned(&db_, &wh);
  ASSERT_OK(learned.Estimate(plan).status());  // empty warehouse: misses
  obs::OpSample s;
  s.op_name = "sub_select";
  s.path = "0";
  s.node_fp = obs::FingerprintPlan(plan);
  s.calls = 1;
  s.in_rows = 100;
  s.out_rows = 50;
  for (int i = 0; i < 2; ++i) wh.Harvest(0x1, {s});
  ASSERT_OK(learned.Estimate(plan).status());  // now a hit

  obs::Snapshot delta = obs::Registry::Global().Snap().DeltaSince(before);
  EXPECT_GE(delta.CounterValue("cost.learned_misses"), 1u);
  EXPECT_GE(delta.CounterValue("cost.learned_hits"), 1u);

  // The static model must touch neither counter.
  obs::Snapshot before2 = obs::Registry::Global().Snap();
  CostModel statics(&db_);
  ASSERT_OK(statics.Estimate(plan).status());
  obs::Snapshot d2 = obs::Registry::Global().Snap().DeltaSince(before2);
  EXPECT_EQ(d2.CounterValue("cost.learned_hits"), 0u);
  EXPECT_EQ(d2.CounterValue("cost.learned_misses"), 0u);
}

#endif  // AQUA_OBS_DISABLED

TEST_F(CostTest, ListPlanEstimates) {
  ASSERT_OK_AND_ASSIGN(List l,
                       MakeRandomList(db_.store(), 100, {"a", "b"}, 1));
  ASSERT_OK(db_.RegisterList("songs", std::move(l)));
  CostModel model(&db_);
  auto lp = ParseListPattern("a ? b");
  ASSERT_TRUE(lp.ok());
  ASSERT_OK_AND_ASSIGN(
      CostEstimate est,
      model.Estimate(Q::ListSubSelect(Q::ScanList("songs"), *lp)));
  EXPECT_GT(est.cost, 100.0);
}

}  // namespace
}  // namespace aqua
