#include "query/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(db_.store()));
    atom_ = MakeInterningAtomFn(&db_.store(), "Item", "name");
  }

  Database db_;
  AtomFn atom_;
};

TEST_F(DatabaseTest, RegisterAndGet) {
  ASSERT_OK_AND_ASSIGN(Tree t, ParseTreeLiteral("a(b)", atom_));
  ASSERT_OK(db_.RegisterTree("t", std::move(t)));
  ASSERT_OK_AND_ASSIGN(List l, ParseListLiteral("[a b]", atom_));
  ASSERT_OK(db_.RegisterList("l", std::move(l)));

  EXPECT_TRUE(db_.HasTree("t"));
  EXPECT_FALSE(db_.HasTree("l"));
  EXPECT_TRUE(db_.HasList("l"));
  ASSERT_OK_AND_ASSIGN(const Tree* tree, db_.GetTree("t"));
  EXPECT_EQ(tree->size(), 2u);
  EXPECT_TRUE(db_.GetTree("l").status().IsNotFound());
  EXPECT_TRUE(db_.GetList("t").status().IsNotFound());
}

TEST_F(DatabaseTest, NamesAreUniqueAcrossKinds) {
  ASSERT_OK_AND_ASSIGN(Tree t, ParseTreeLiteral("a", atom_));
  ASSERT_OK(db_.RegisterTree("x", std::move(t)));
  ASSERT_OK_AND_ASSIGN(List l, ParseListLiteral("[a]", atom_));
  EXPECT_TRUE(db_.RegisterList("x", std::move(l)).IsAlreadyExists());
  ASSERT_OK_AND_ASSIGN(Tree t2, ParseTreeLiteral("b", atom_));
  EXPECT_TRUE(db_.RegisterTree("x", std::move(t2)).IsAlreadyExists());
}

TEST_F(DatabaseTest, RegisterValidatesTrees) {
  Tree broken;
  broken.AddNode(NodePayload::Cell(Oid(1)));  // arena node, no root
  EXPECT_FALSE(db_.RegisterTree("broken", std::move(broken)).ok());
}

TEST_F(DatabaseTest, CreateIndexDispatchesOnKind) {
  ASSERT_OK_AND_ASSIGN(Tree t, ParseTreeLiteral("a(b)", atom_));
  ASSERT_OK(db_.RegisterTree("t", std::move(t)));
  ASSERT_OK_AND_ASSIGN(List l, ParseListLiteral("[a b]", atom_));
  ASSERT_OK(db_.RegisterList("l", std::move(l)));

  ASSERT_OK(db_.CreateIndex("t", "name"));
  ASSERT_OK(db_.CreateIndex("l", "name"));
  EXPECT_TRUE(db_.indexes().Has("t", "name"));
  EXPECT_TRUE(db_.indexes().Has("l", "name"));
  EXPECT_TRUE(db_.CreateIndex("nope", "name").IsNotFound());
  EXPECT_TRUE(db_.CreateIndex("t", "name").IsAlreadyExists());
}

TEST_F(DatabaseTest, NameListings) {
  ASSERT_OK_AND_ASSIGN(Tree t, ParseTreeLiteral("a", atom_));
  ASSERT_OK(db_.RegisterTree("t1", std::move(t)));
  ASSERT_OK_AND_ASSIGN(List l, ParseListLiteral("[a]", atom_));
  ASSERT_OK(db_.RegisterList("l1", std::move(l)));
  EXPECT_EQ(db_.TreeNames(), std::vector<std::string>{"t1"});
  EXPECT_EQ(db_.ListNames(), std::vector<std::string>{"l1"});
  EXPECT_EQ(db_.CollectionNames().size(), 2u);
}

TEST_F(DatabaseTest, EmptyTreeIsRegistrable) {
  ASSERT_OK(db_.RegisterTree("empty", Tree()));
  ASSERT_OK_AND_ASSIGN(const Tree* tree, db_.GetTree("empty"));
  EXPECT_TRUE(tree->empty());
}

}  // namespace
}  // namespace aqua
