#include "query/plan.h"

#include <gtest/gtest.h>

#include "query/builder.h"
#include "test_util.h"

namespace aqua {
namespace {

class PlanTest : public testing::AquaTestBase {};

TEST_F(PlanTest, BuilderWiresChildrenAndParams) {
  auto plan = Q::TreeSubSelect(Q::ScanTree("family"), TP("a(b)"));
  EXPECT_EQ(plan->op, PlanOp::kTreeSubSelect);
  ASSERT_EQ(plan->children.size(), 1u);
  EXPECT_EQ(plan->children[0]->op, PlanOp::kScanTree);
  EXPECT_EQ(plan->children[0]->collection, "family");
  ASSERT_NE(plan->tpattern, nullptr);
}

TEST_F(PlanTest, ExplainRendersTree) {
  auto plan = Q::TreeSelect(Q::ScanTree("family"), P("age > 25"));
  std::string explained = Explain(plan);
  EXPECT_NE(explained.find("TreeSelect"), std::string::npos);
  EXPECT_NE(explained.find("age > 25"), std::string::npos);
  EXPECT_NE(explained.find("ScanTree [family]"), std::string::npos);
  // Child is indented under parent.
  EXPECT_LT(explained.find("TreeSelect"), explained.find("ScanTree"));
}

TEST_F(PlanTest, ExplainIndexedSubSelect) {
  auto plan = Q::IndexedSubSelect("family", "citizen",
                                  P("citizen == \"Brazil\""), TP("a"));
  std::string explained = Explain(plan);
  EXPECT_NE(explained.find("IndexedSubSelect"), std::string::npos);
  EXPECT_NE(explained.find("index=citizen"), std::string::npos);
  EXPECT_NE(explained.find("anchor="), std::string::npos);
}

TEST_F(PlanTest, ExplainHandlesNull) {
  EXPECT_EQ(Explain(nullptr), "(null)\n");
}

TEST_F(PlanTest, PlanEqualsStructural) {
  auto p1 = Q::TreeSubSelect(Q::ScanTree("t"), TP("a(b)"));
  auto p2 = Q::TreeSubSelect(Q::ScanTree("t"), TP("a(b)"));
  auto p3 = Q::TreeSubSelect(Q::ScanTree("t"), TP("a(c)"));
  auto p4 = Q::TreeSubSelect(Q::ScanTree("u"), TP("a(b)"));
  EXPECT_TRUE(PlanEquals(p1, p2));
  EXPECT_FALSE(PlanEquals(p1, p3));
  EXPECT_FALSE(PlanEquals(p1, p4));
  EXPECT_FALSE(PlanEquals(p1, nullptr));
  EXPECT_TRUE(PlanEquals(nullptr, nullptr));
}

TEST_F(PlanTest, PlanOpNamesAreDistinct) {
  EXPECT_STRNE(PlanOpToString(PlanOp::kTreeSelect),
               PlanOpToString(PlanOp::kListSelect));
  EXPECT_STRNE(PlanOpToString(PlanOp::kTreeSubSelect),
               PlanOpToString(PlanOp::kIndexedSubSelect));
}

TEST_F(PlanTest, ListPlanShapes) {
  auto plan = Q::ListSubSelect(Q::ScanList("songs"), LP("a ? b"));
  EXPECT_EQ(plan->op, PlanOp::kListSubSelect);
  EXPECT_NE(plan->lpattern.body, nullptr);
  std::string explained = Explain(plan);
  EXPECT_NE(explained.find("ListSubSelect"), std::string::npos);
}

}  // namespace
}  // namespace aqua
