#include <gtest/gtest.h>

#include <algorithm>

#include "query/builder.h"
#include "query/executor.h"
#include "query/rewriter.h"
#include "query/rules.h"
#include "test_util.h"

namespace aqua {
namespace {

class EmptyFoldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(db_.store()));
    atom_ = MakeInterningAtomFn(&db_.store(), "Item", "name");
    ASSERT_OK_AND_ASSIGN(Tree t,
                         ParseTreeLiteral("r(b(d e) x(b(d f)))", atom_));
    ASSERT_OK(db_.RegisterTree("t", std::move(t)));
    ASSERT_OK_AND_ASSIGN(List l, ParseListLiteral("[a x a y]", atom_));
    ASSERT_OK(db_.RegisterList("l", std::move(l)));
  }

  TreePatternRef TP(const std::string& p) {
    auto tp = ParseTreePattern(p);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    auto lp = ParseListPattern(p);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }
  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }

  /// Optimizes with the default rule set and reports whether the
  /// empty-fold rule fired.
  PlanRef Optimize(const PlanRef& plan, bool* folded = nullptr) {
    Rewriter rewriter(&db_);
    rewriter.AddDefaultRules();
    auto optimized = rewriter.Optimize(plan);
    EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
    if (folded != nullptr) {
      const auto& applied = rewriter.applied();
      *folded = std::find(applied.begin(), applied.end(), "empty-fold") !=
                applied.end();
    }
    return optimized.ok() ? *optimized : nullptr;
  }

  Database db_;
  AtomFn atom_;
};

TEST_F(EmptyFoldTest, EmptyConstantsExecute) {
  Executor exec(&db_);
  ASSERT_OK_AND_ASSIGN(Datum set, exec.Execute(Q::EmptySet()));
  EXPECT_TRUE(set.is_set());
  EXPECT_EQ(set.size(), 0u);
  ASSERT_OK_AND_ASSIGN(Datum list, exec.Execute(Q::EmptyList()));
  EXPECT_TRUE(list.is_list());
}

TEST_F(EmptyFoldTest, UnsatisfiableTreeSelectFoldsToEmptySet) {
  bool folded = false;
  PlanRef plan = Optimize(
      Q::TreeSelect(Q::ScanTree("t"), P("name == \"a\" && name == \"b\"")),
      &folded);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(folded);
  EXPECT_EQ(plan->op, PlanOp::kEmptySet);
  Executor exec(&db_);
  ASSERT_OK_AND_ASSIGN(Datum out, exec.Execute(plan));
  EXPECT_EQ(out.size(), 0u);
  // The whole input subtree was skipped.
  EXPECT_EQ(exec.stats().trees_processed, 0u);
}

TEST_F(EmptyFoldTest, EmptyTreePatternFoldsToEmptySet) {
  bool folded = false;
  PlanRef plan = Optimize(
      Q::TreeSubSelect(Q::ScanTree("t"), TP("{x > 3 && x < 1}(?*)")),
      &folded);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(folded);
  EXPECT_EQ(plan->op, PlanOp::kEmptySet);
}

TEST_F(EmptyFoldTest, EmptyListPatternFoldsToEmptySet) {
  bool folded = false;
  PlanRef plan = Optimize(
      Q::ListSubSelect(Q::ScanList("l"), LP("a {x > 3 && x < 1}")), &folded);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(folded);
  EXPECT_EQ(plan->op, PlanOp::kEmptySet);
}

TEST_F(EmptyFoldTest, UnsatisfiableListSelectOverScanFoldsToEmptyList) {
  // ListSelect over a single scanned list yields a list, so the fold must
  // preserve that shape.
  bool folded = false;
  PlanRef plan = Optimize(
      Q::ListSelect(Q::ScanList("l"), P("name == \"a\" && name == \"b\"")),
      &folded);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(folded);
  EXPECT_EQ(plan->op, PlanOp::kEmptyList);
  Executor exec(&db_);
  ASSERT_OK_AND_ASSIGN(Datum out, exec.Execute(plan));
  EXPECT_TRUE(out.is_list());
}

TEST_F(EmptyFoldTest, SatisfiablePlansAreNotFolded) {
  bool folded = false;
  PlanRef plan =
      Optimize(Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)")), &folded);
  ASSERT_NE(plan, nullptr);
  EXPECT_FALSE(folded);
  Executor exec(&db_);
  ASSERT_OK_AND_ASSIGN(Datum out, exec.Execute(plan));
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace aqua
