#include "common/str_util.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("abc", ',')[0], "abc");
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("\t a b \n"), "a b");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StrUtilTest, IdentChars) {
  EXPECT_TRUE(IsIdentStart('a'));
  EXPECT_TRUE(IsIdentStart('_'));
  EXPECT_FALSE(IsIdentStart('1'));
  EXPECT_TRUE(IsIdentChar('1'));
  EXPECT_FALSE(IsIdentChar('-'));
}

}  // namespace
}  // namespace aqua
