#include "common/value.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::Ref(Oid(7)).ref_value(), Oid(7));
}

TEST(ValueTest, NumericCoercionInEquals) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Double(3.0)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::Double(3.5)));
  EXPECT_TRUE(Value::Int(3) == Value::Int(3));
  EXPECT_TRUE(Value::Int(3) != Value::Int(4));
}

TEST(ValueTest, CrossTypeEqualsIsFalseNotError) {
  EXPECT_FALSE(Value::Int(1).Equals(Value::String("1")));
  EXPECT_FALSE(Value::Bool(true).Equals(Value::Int(1)));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
}

TEST(ValueTest, CompareWithinFamilies) {
  auto cmp = [](const Value& a, const Value& b) {
    auto r = a.Compare(b);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : -99;
  };
  EXPECT_LT(cmp(Value::Int(1), Value::Int(2)), 0);
  EXPECT_GT(cmp(Value::Double(2.5), Value::Int(2)), 0);
  EXPECT_EQ(cmp(Value::String("abc"), Value::String("abc")), 0);
  EXPECT_LT(cmp(Value::String("abc"), Value::String("abd")), 0);
  EXPECT_LT(cmp(Value::Bool(false), Value::Bool(true)), 0);
  EXPECT_LT(cmp(Value::Ref(Oid(1)), Value::Ref(Oid(2))), 0);
}

TEST(ValueTest, CompareAcrossFamiliesIsTypeError) {
  EXPECT_TRUE(Value::Int(1).Compare(Value::String("a")).status().IsTypeError());
  EXPECT_TRUE(
      Value::Bool(true).Compare(Value::Ref(Oid(1))).status().IsTypeError());
}

TEST(ValueTest, NullSortsFirstInCompare) {
  ASSERT_TRUE(Value::Null().Compare(Value::Int(0)).ok());
  EXPECT_LT(*Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(*Value::Int(0).Compare(Value::Null()), 0);
  EXPECT_EQ(*Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, TotalLessIsAStrictWeakOrderAcrossTypes) {
  std::vector<Value> vals = {Value::Null(),        Value::Bool(true),
                             Value::Int(5),        Value::Double(1.5),
                             Value::String("x"),   Value::Ref(Oid(3)),
                             Value::Int(-2),       Value::String("a")};
  std::sort(vals.begin(), vals.end(),
            [](const Value& a, const Value& b) { return a.TotalLess(b); });
  // Irreflexivity on the sorted sequence.
  for (size_t i = 0; i + 1 < vals.size(); ++i) {
    EXPECT_FALSE(vals[i + 1].TotalLess(vals[i]))
        << vals[i + 1].ToString() << " < " << vals[i].ToString();
  }
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::String("abc").Hash(), Value::String("abd").Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Ref(Oid(9)).ToString(), "@oid:9");
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeToString(ValueType::kRef), "ref");
}

}  // namespace
}  // namespace aqua
