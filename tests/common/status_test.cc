#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace aqua {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesSetMatchingCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  AQUA_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AQUA_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, ValueAndErrorStates) {
  Result<int> ok = 5;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.ValueOr(-1), 5);

  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnChains) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
}

TEST(ResultTest, ConstructingFromOkStatusIsInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).ValueUnsafe();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace aqua
