#include "algebra/list_ops.h"

#include <gtest/gtest.h>

#include "bulk/concat.h"
#include "test_util.h"

namespace aqua {
namespace {

class ListOpsTest : public testing::AquaTestBase {};

TEST_F(ListOpsTest, SelectIsAStableFilter) {
  List l = L("[a x a y a]");
  ASSERT_OK_AND_ASSIGN(List out,
                       ListSelect(store_, l, P("name == \"a\"")));
  EXPECT_EQ(Str(out), "[a a a]");
}

TEST_F(ListOpsTest, SelectDropsInstancePoints) {
  List l = L("[a @p a]");
  ASSERT_OK_AND_ASSIGN(List out, ListSelect(store_, l, Predicate::True()));
  EXPECT_EQ(Str(out), "[a a]");
}

TEST_F(ListOpsTest, SelectRejectsNullPredicate) {
  EXPECT_TRUE(ListSelect(store_, List(), nullptr).status().IsInvalidArgument());
}

TEST_F(ListOpsTest, ApplyMapsCellsKeepsPoints) {
  List l = L("[a @p b]");
  auto fn = [this](ObjectStore& store, Oid oid) -> Result<Oid> {
    AQUA_ASSIGN_OR_RETURN(Value name, store.GetAttr(oid, "name"));
    return store.Create("Item",
                        {{"name", Value::String(name.string_value() + "m")},
                         {"val", Value::Int(0)}});
  };
  ASSERT_OK_AND_ASSIGN(List out, ListApply(store_, l, fn));
  EXPECT_EQ(Str(out), "[am @p bm]");
}

TEST_F(ListOpsTest, SplitPiecesShape) {
  // Match [m1 m2] inside [p1 p2 m1 m2 s1 s2].
  List l = L("[p1 p2 m1 m2 s1 s2]");
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      ListSplit(store_, l, LP("m1 m2"),
                [](const List& x, const List& y,
                   const std::vector<List>& z) -> Result<Datum> {
                  std::vector<Datum> zs;
                  for (const List& piece : z) zs.push_back(Datum::Of(piece));
                  return Datum::Tuple({Datum::Of(x), Datum::Of(y),
                                       Datum::Tuple(std::move(zs))});
                }));
  ASSERT_EQ(result.size(), 1u);
  const Datum& tuple = result.at(0);
  EXPECT_EQ(Str(tuple.at(0).list()), "[p1 p2 @a]");
  EXPECT_EQ(Str(tuple.at(1).list()), "[m1 m2 @a1]");
  ASSERT_EQ(tuple.at(2).size(), 1u);
  EXPECT_EQ(Str(tuple.at(2).at(0).list()), "[s1 s2]");
}

TEST_F(ListOpsTest, SplitAtEndHasNoTrailingCut) {
  List l = L("[p m]");
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      ListSplit(store_, l, LP("m"),
                [](const List& x, const List& y,
                   const std::vector<List>& z) -> Result<Datum> {
                  return Datum::Tuple(
                      {Datum::Of(x), Datum::Of(y),
                       Datum::Scalar(Value::Int(static_cast<int64_t>(
                           z.size())))});
                }));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(Str(result.at(0).at(0).list()), "[p @a]");
  EXPECT_EQ(Str(result.at(0).at(1).list()), "[m]");
  EXPECT_EQ(result.at(0).at(2).scalar().int_value(), 0);
}

TEST_F(ListOpsTest, SplitWithPrunedRun) {
  List l = L("[a x y b t]");
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      ListSplit(store_, l, LP("a !?+ b"),
                [](const List& x, const List& y,
                   const std::vector<List>& z) -> Result<Datum> {
                  std::vector<Datum> zs;
                  for (const List& piece : z) zs.push_back(Datum::Of(piece));
                  return Datum::Tuple({Datum::Of(x), Datum::Of(y),
                                       Datum::Tuple(std::move(zs))});
                }));
  ASSERT_EQ(result.size(), 1u);
  const Datum& tuple = result.at(0);
  EXPECT_EQ(Str(tuple.at(0).list()), "[@a]");
  EXPECT_EQ(Str(tuple.at(1).list()), "[a @a1 b @a2]");
  ASSERT_EQ(tuple.at(2).size(), 2u);
  EXPECT_EQ(Str(tuple.at(2).at(0).list()), "[x y]");  // pruned run
  EXPECT_EQ(Str(tuple.at(2).at(1).list()), "[t]");    // suffix
}

TEST_F(ListOpsTest, SplitPiecesReassemble) {
  List l = L("[p a x b s1 s2]");
  ListMatcher matcher(store_, l);
  ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(LP("a !? b")));
  ASSERT_EQ(matches.size(), 1u);
  ListSplitPieces pieces = MakeListSplitPieces(l, matches[0]);
  List reassembled = ReassembleListSplit(pieces);
  EXPECT_TRUE(reassembled == l) << Str(reassembled) << " vs " << Str(l);
}

TEST_F(ListOpsTest, SubSelectMelody) {
  // §6: sub_select([A??F])(L) over a song.
  ASSERT_OK(RegisterNoteType(store_));
  List song;
  for (const char* pitch : {"G", "A", "B", "C", "F", "E", "A", "D", "E", "F"}) {
    ASSERT_OK_AND_ASSIGN(
        Oid note, store_.Create("Note", {{"pitch", Value::String(pitch)},
                                         {"duration", Value::Int(4)}}));
    song.Append(NodePayload::Cell(note));
  }
  auto melody = LP("{pitch == \"A\"} ? ? {pitch == \"F\"}");
  ASSERT_OK_AND_ASSIGN(Datum result, ListSubSelect(store_, song, melody));
  ASSERT_EQ(result.size(), 2u);
  LabelFn pitch_label = AttrLabelFn(&store_, "pitch");
  EXPECT_EQ(result.at(0).list().size(), 4u);
  EXPECT_EQ(PrintList(result.at(0).list(), pitch_label), "[A B C F]");
  EXPECT_EQ(PrintList(result.at(1).list(), pitch_label), "[A D E F]");
}

TEST_F(ListOpsTest, SubSelectRemovesPrunedRuns) {
  List l = L("[a x b]");
  ASSERT_OK_AND_ASSIGN(Datum result,
                       ListSubSelect(store_, l, LP("a !? b")));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(Str(result.at(0).list()), "[a b]");
}

TEST_F(ListOpsTest, SubSelectIsASet) {
  List l = L("[a b a b]");
  ASSERT_OK_AND_ASSIGN(Datum result, ListSubSelect(store_, l, LP("a b")));
  EXPECT_EQ(result.size(), 1u);  // identical sublists collapse
}

TEST_F(ListOpsTest, AllAncMelodyContext) {
  // §6: all_anc([A??F], λ(x,y)⟨x,y⟩) — notes before the melody + the melody.
  List l = L("[g g m e l o]");
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      ListAllAnc(store_, l, LP("m e l"),
                 [](const List& prefix, const List& match) -> Result<Datum> {
                   return Datum::Tuple({Datum::Of(prefix), Datum::Of(match)});
                 }));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(Str(result.at(0).at(0).list()), "[g g @a]");
  EXPECT_EQ(Str(result.at(0).at(1).list()), "[m e l]");
}

TEST_F(ListOpsTest, AllDescGivesMatchAndSuffix) {
  List l = L("[m a t r e s t]");
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      ListAllDesc(store_, l, LP("^m a t"),
                  [](const List& match,
                     const std::vector<List>& desc) -> Result<Datum> {
                    std::vector<Datum> ds;
                    for (const List& d : desc) ds.push_back(Datum::Of(d));
                    return Datum::Tuple(
                        {Datum::Of(match), Datum::Tuple(std::move(ds))});
                  }));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(Str(result.at(0).at(0).list()), "[m a t @a1]");
  ASSERT_EQ(result.at(0).at(1).size(), 1u);
  EXPECT_EQ(Str(result.at(0).at(1).at(0).list()), "[r e s t]");
}

TEST_F(ListOpsTest, SplitFnErrorsPropagate) {
  List l = L("[a]");
  auto res = ListSplit(store_, l, LP("a"),
                       [](const List&, const List&,
                          const std::vector<List>&) -> Result<Datum> {
                         return Status::Internal("boom");
                       });
  EXPECT_TRUE(res.status().IsInternal());
}

}  // namespace
}  // namespace aqua
