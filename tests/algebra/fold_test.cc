#include "algebra/fold.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class FoldTest : public testing::AquaTestBase {
 protected:
  /// Counts cell nodes via a catamorphism.
  TreeFoldFn CountCells() {
    return [](const NodePayload& p,
              const std::vector<Value>& kids) -> Result<Value> {
      int64_t total = p.is_cell() ? 1 : 0;
      for (const Value& v : kids) total += v.int_value();
      return Value::Int(total);
    };
  }
};

TEST_F(FoldTest, TreeFoldCountsNodes) {
  ASSERT_OK_AND_ASSIGN(Value n, TreeFold(T("a(b(c d) e)"), CountCells()));
  EXPECT_EQ(n.int_value(), 5);
  ASSERT_OK_AND_ASSIGN(Value with_point,
                       TreeFold(T("a(@p b)"), CountCells()));
  EXPECT_EQ(with_point.int_value(), 2);  // points do not count
}

TEST_F(FoldTest, TreeFoldEmptyUsesEmptyValue) {
  ASSERT_OK_AND_ASSIGN(Value v,
                       TreeFold(Tree(), CountCells(), Value::Int(-7)));
  EXPECT_EQ(v.int_value(), -7);
  ASSERT_OK_AND_ASSIGN(Value null_default, TreeFold(Tree(), CountCells()));
  EXPECT_TRUE(null_default.is_null());
}

TEST_F(FoldTest, TreeFoldComputesHeight) {
  auto height = [](const NodePayload&,
                   const std::vector<Value>& kids) -> Result<Value> {
    int64_t best = -1;
    for (const Value& v : kids) best = std::max(best, v.int_value());
    return Value::Int(best + 1);
  };
  ASSERT_OK_AND_ASSIGN(Value h, TreeFold(T("a(b(c(d)) e)"), height));
  EXPECT_EQ(h.int_value(), 3);
}

TEST_F(FoldTest, TreeFoldPropagatesErrors) {
  auto fail = [](const NodePayload&,
                 const std::vector<Value>&) -> Result<Value> {
    return Status::Internal("boom");
  };
  EXPECT_TRUE(TreeFold(T("a"), fail).status().IsInternal());
  EXPECT_TRUE(TreeFold(T("a"), nullptr).status().IsInvalidArgument());
}

TEST_F(FoldTest, ListFoldLeftConcatenatesInOrder) {
  auto step = [this](const Value& acc,
                     const NodePayload& e) -> Result<Value> {
    std::string token = e.is_cell() ? label_(e.oid()) : "@" + e.label();
    return Value::String(acc.string_value() + token);
  };
  ASSERT_OK_AND_ASSIGN(Value out,
                       ListFoldLeft(L("[a b @x c]"), Value::String(""), step));
  EXPECT_EQ(out.string_value(), "ab@xc");
}

TEST_F(FoldTest, ListFoldRightReverses) {
  auto step = [this](const NodePayload& e,
                     const Value& acc) -> Result<Value> {
    return Value::String(acc.string_value() + label_(e.oid()));
  };
  ASSERT_OK_AND_ASSIGN(Value out,
                       ListFoldRight(L("[a b c]"), Value::String(""), step));
  EXPECT_EQ(out.string_value(), "cba");
}

TEST_F(FoldTest, ListFoldEmpty) {
  auto step = [](const Value& acc, const NodePayload&) -> Result<Value> {
    return Value::Int(acc.int_value() + 1);
  };
  ASSERT_OK_AND_ASSIGN(Value out, ListFoldLeft(List(), Value::Int(0), step));
  EXPECT_EQ(out.int_value(), 0);
  EXPECT_TRUE(ListFoldLeft(List(), Value::Int(0), nullptr)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace aqua
