#include "algebra/structural.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class StructuralTest : public testing::AquaTestBase {};

TEST_F(StructuralTest, NodeAtPathAndBack) {
  Tree t = T("a(b(c d) e)");
  ASSERT_OK_AND_ASSIGN(NodeId root, NodeAtPath(t, {}));
  EXPECT_EQ(root, t.root());
  ASSERT_OK_AND_ASSIGN(NodeId d, NodeAtPath(t, {0, 1}));
  EXPECT_EQ(label_(t.payload(d).oid()), "d");
  ASSERT_OK_AND_ASSIGN(TreePath path, PathToNode(t, d));
  EXPECT_EQ(path, (TreePath{0, 1}));
  EXPECT_TRUE(NodeAtPath(t, {0, 5}).status().IsOutOfRange());
  EXPECT_TRUE(NodeAtPath(Tree(), {}).status().IsOutOfRange());
  EXPECT_TRUE(PathToNode(t, 999).status().IsOutOfRange());
}

TEST_F(StructuralTest, SubtreeAtPath) {
  Tree t = T("a(b(c d) e)");
  ASSERT_OK_AND_ASSIGN(Tree sub, SubtreeAtPath(t, {0}));
  EXPECT_EQ(Str(sub), "b(c d)");
}

TEST_F(StructuralTest, FrontierAndPreorderList) {
  Tree t = T("a(b(c d) @p e)");
  EXPECT_EQ(Str(Frontier(t)), "[c d @p e]");
  EXPECT_EQ(Str(PreorderList(t)), "[a b c d @p e]");
  EXPECT_TRUE(Frontier(Tree()).empty());
}

TEST_F(StructuralTest, ArityHistogramAndStats) {
  Tree t = T("a(b(c d) e)");
  auto hist = ArityHistogram(t);
  EXPECT_EQ(hist[0], 3u);  // c, d, e
  EXPECT_EQ(hist[2], 2u);  // a, b
  TreeStats stats = ComputeTreeStats(t);
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_EQ(stats.num_leaves, 3u);
  EXPECT_EQ(stats.num_points, 0u);
  EXPECT_EQ(stats.height, 2u);
  EXPECT_EQ(stats.max_arity, 2u);
  EXPECT_TRUE(stats.fixed_arity);  // both internal nodes have arity 2

  TreeStats varied = ComputeTreeStats(T("a(b(c) d e)"));
  EXPECT_FALSE(varied.fixed_arity);  // arities 3 and 1

  TreeStats empty = ComputeTreeStats(Tree());
  EXPECT_EQ(empty.num_nodes, 0u);
}

TEST_F(StructuralTest, CountSatisfying) {
  Tree t = T("a(b a(a))");
  EXPECT_EQ(CountSatisfying(store_, t, P("name == \"a\"")), 3u);
  EXPECT_EQ(CountSatisfying(store_, t, nullptr), 0u);
}

TEST_F(StructuralTest, InsertSubtree) {
  Tree t = T("a(b d)");
  ASSERT_OK_AND_ASSIGN(Tree inserted, InsertSubtree(t, {}, 1, T("c(x)")));
  EXPECT_EQ(Str(inserted), "a(b c(x) d)");
  EXPECT_OK(inserted.Validate());
  // Clamped position appends.
  ASSERT_OK_AND_ASSIGN(Tree appended, InsertSubtree(t, {}, 99, T("z")));
  EXPECT_EQ(Str(appended), "a(b d z)");
  // Inserting nil is a no-op.
  ASSERT_OK_AND_ASSIGN(Tree unchanged, InsertSubtree(t, {}, 0, Tree()));
  EXPECT_TRUE(unchanged.StructurallyEquals(t));
  // Under a point: rejected.
  Tree with_point = T("a(@p)");
  EXPECT_TRUE(
      InsertSubtree(with_point, {0}, 0, T("x")).status().IsInvalidArgument());
}

TEST_F(StructuralTest, DeleteAndReplaceSubtree) {
  Tree t = T("a(b(c) d)");
  ASSERT_OK_AND_ASSIGN(Tree deleted, DeleteSubtree(t, {0}));
  EXPECT_EQ(Str(deleted), "a(d)");
  ASSERT_OK_AND_ASSIGN(Tree gone, DeleteSubtree(t, {}));
  EXPECT_TRUE(gone.empty());
  ASSERT_OK_AND_ASSIGN(Tree replaced, ReplaceSubtree(t, {0}, T("x(y)")));
  EXPECT_EQ(Str(replaced), "a(x(y) d)");
  ASSERT_OK_AND_ASSIGN(Tree emptied, ReplaceSubtree(t, {0}, Tree()));
  EXPECT_EQ(Str(emptied), "a(d)");
  ASSERT_OK_AND_ASSIGN(Tree new_root, ReplaceSubtree(t, {}, T("q")));
  EXPECT_EQ(Str(new_root), "q");
}

TEST_F(StructuralTest, RewriteFirstMatch) {
  // Swap every m(x y) into w, keeping context and reattaching cuts.
  Tree t = T("r(m(x y) k)");
  auto fn = [this](const SplitPieces& pieces) -> Result<Tree> {
    EXPECT_EQ(Str(pieces.y), "m(@a1 @a2)");
    return T("w(@a1 @a2)");
  };
  ASSERT_OK_AND_ASSIGN(std::optional<Tree> rewritten,
                       RewriteFirstMatch(store_, t, TP("m(!? !?)"), fn));
  ASSERT_TRUE(rewritten.has_value());
  EXPECT_EQ(Str(*rewritten), "r(w(x y) k)");
  // No match -> nullopt.
  ASSERT_OK_AND_ASSIGN(std::optional<Tree> none,
                       RewriteFirstMatch(store_, t, TP("zz"), fn));
  EXPECT_FALSE(none.has_value());
}

TEST_F(StructuralTest, RewriteToFixpoint) {
  // Collapse every m(child) to its child: m(m(m(x))) -> x. The `!?` prune
  // turns the child into cut @a1, so the rewrite is just "emit @a1".
  Tree t = T("r(m(m(m(x))))");
  auto unwrap = [](const SplitPieces& pieces) -> Result<Tree> {
    (void)pieces;
    return Tree::Point("a1");  // the pruned child replaces the match
  };
  size_t passes = 0;
  ASSERT_OK_AND_ASSIGN(
      Tree out, RewriteToFixpoint(store_, t, TP("m(!?)"), unwrap, {}, 100,
                                  &passes));
  EXPECT_EQ(Str(out), "r(x)");
  EXPECT_EQ(passes, 3u);
}

TEST_F(StructuralTest, RewriteToFixpointDivergenceIsAnError) {
  Tree t = T("r(m)");
  // Rewrites m to m(m): strictly growing, never converges.
  auto grow = [this](const SplitPieces&) -> Result<Tree> {
    return T("m(m)");
  };
  EXPECT_TRUE(RewriteToFixpoint(store_, t, TP("m"), grow, {}, 10)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(StructuralTest, ListEdits) {
  List l = L("[a b c]");
  ASSERT_OK_AND_ASSIGN(List inserted,
                       ListInsert(l, 1, NodePayload::ConcatPoint("x")));
  EXPECT_EQ(Str(inserted), "[a @x b c]");
  ASSERT_OK_AND_ASSIGN(List appended,
                       ListInsert(l, 3, NodePayload::ConcatPoint("x")));
  EXPECT_EQ(Str(appended), "[a b c @x]");
  EXPECT_TRUE(
      ListInsert(l, 4, NodePayload::ConcatPoint("x")).status().IsOutOfRange());
  ASSERT_OK_AND_ASSIGN(List deleted, ListDelete(l, 1));
  EXPECT_EQ(Str(deleted), "[a c]");
  EXPECT_TRUE(ListDelete(l, 3).status().IsOutOfRange());
  ASSERT_OK_AND_ASSIGN(List replaced,
                       ListReplace(l, 0, NodePayload::ConcatPoint("z")));
  EXPECT_EQ(Str(replaced), "[@z b c]");
  EXPECT_EQ(Str(ListReverse(l)), "[c b a]");
  EXPECT_TRUE(ListReverse(List()).empty());
}

}  // namespace
}  // namespace aqua
