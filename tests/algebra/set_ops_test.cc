#include "algebra/set_ops.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class SetOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(store_));
    // Two distinct objects with equal values, plus a third different one.
    ASSERT_OK_AND_ASSIGN(a1_, Make("a", 1));
    ASSERT_OK_AND_ASSIGN(a2_, Make("a", 1));
    ASSERT_OK_AND_ASSIGN(b_, Make("b", 2));
  }

  Result<Oid> Make(const std::string& name, int64_t val) {
    return store_.Create("Item", {{"name", Value::String(name)},
                                  {"val", Value::Int(val)}});
  }

  ObjectStore store_;
  Oid a1_, a2_, b_;
};

TEST_F(SetOpsTest, IdentityVsValueEquality) {
  // §2: equality is a parameter. Under identity, a1 and a2 differ; under
  // shallow value equality they coincide.
  EqFn id = IdentityEq();
  EqFn val = ShallowValueEq(&store_);
  EXPECT_FALSE(id(a1_, a2_));
  EXPECT_TRUE(val(a1_, a2_));
  EXPECT_TRUE(id(a1_, a1_));
  EXPECT_FALSE(val(a1_, b_));
}

TEST_F(SetOpsTest, UnionUnderBothEqualities) {
  OidSet s1 = {a1_, b_};
  OidSet s2 = {a2_};
  EXPECT_EQ(SetUnion(s1, s2, IdentityEq()).size(), 3u);
  EXPECT_EQ(SetUnion(s1, s2, ShallowValueEq(&store_)).size(), 2u);
}

TEST_F(SetOpsTest, IntersectAndDifference) {
  OidSet s1 = {a1_, b_};
  OidSet s2 = {a2_, b_};
  EXPECT_EQ(SetIntersect(s1, s2, IdentityEq()).size(), 1u);  // just b
  EXPECT_EQ(SetIntersect(s1, s2, ShallowValueEq(&store_)).size(), 2u);
  EXPECT_EQ(SetDifference(s1, s2, IdentityEq()).size(), 1u);  // a1
  EXPECT_TRUE(SetDifference(s1, s2, ShallowValueEq(&store_)).empty());
}

TEST_F(SetOpsTest, DistinctKeepsFirstOccurrences) {
  OidBag bag = {a1_, a2_, a1_, b_};
  OidSet by_id = SetDistinct(bag, IdentityEq());
  ASSERT_EQ(by_id.size(), 3u);
  EXPECT_EQ(by_id[0], a1_);
  OidSet by_val = SetDistinct(bag, ShallowValueEq(&store_));
  ASSERT_EQ(by_val.size(), 2u);
  EXPECT_EQ(by_val[0], a1_);
  EXPECT_EQ(by_val[1], b_);
}

TEST_F(SetOpsTest, SelectPreservesOrder) {
  auto pred = Predicate::Compare("val", CmpOp::kLt, Value::Int(2));
  OidSet out = SetSelect(store_, {b_, a1_, a2_}, pred);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], a1_);
  EXPECT_EQ(out[1], a2_);
}

TEST_F(SetOpsTest, ApplyCreatesMappedObjects) {
  auto doubler = [](ObjectStore& store, Oid oid) -> Result<Oid> {
    AQUA_ASSIGN_OR_RETURN(Value v, store.GetAttr(oid, "val"));
    return store.Create("Item", {{"name", Value::String("2x")},
                                 {"val", Value::Int(v.int_value() * 2)}});
  };
  ASSERT_OK_AND_ASSIGN(OidSet mapped, SetApply(store_, {a1_, b_}, doubler));
  ASSERT_EQ(mapped.size(), 2u);
  ASSERT_OK_AND_ASSIGN(Value v, store_.GetAttr(mapped[1], "val"));
  EXPECT_EQ(v.int_value(), 4);
}

TEST_F(SetOpsTest, ApplyPropagatesErrors) {
  auto fail = [](ObjectStore&, Oid) -> Result<Oid> {
    return Status::Internal("boom");
  };
  EXPECT_TRUE(SetApply(store_, {a1_}, fail).status().IsInternal());
}

TEST_F(SetOpsTest, FoldSumsValues) {
  auto sum = [this](const Value& acc, Oid oid) -> Result<Value> {
    AQUA_ASSIGN_OR_RETURN(Value v, store_.GetAttr(oid, "val"));
    return Value::Int(acc.int_value() + v.int_value());
  };
  ASSERT_OK_AND_ASSIGN(Value total,
                       SetFold(store_, {a1_, a2_, b_}, Value::Int(0), sum));
  EXPECT_EQ(total.int_value(), 4);
}

TEST_F(SetOpsTest, BagOperations) {
  OidBag b1 = {a1_, a1_, b_};
  OidBag b2 = {a1_, b_, b_};
  EXPECT_EQ(BagUnion(b1, b2).size(), 6u);  // additive
  // Intersection takes minimum multiplicities: one a1, one b.
  EXPECT_EQ(BagIntersect(b1, b2, IdentityEq()).size(), 2u);
  // Difference is saturating: {a1, a1, b} - {a1, b, b} = {a1}.
  OidBag diff = BagDifference(b1, b2, IdentityEq());
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], a1_);
}

TEST_F(SetOpsTest, BagIntersectUnderValueEquality) {
  OidBag b1 = {a1_, a2_};
  OidBag b2 = {a2_};
  EXPECT_EQ(BagIntersect(b1, b2, ShallowValueEq(&store_)).size(), 1u);
}

TEST_F(SetOpsTest, BagSelect) {
  auto pred = Predicate::AttrEquals("name", Value::String("a"));
  EXPECT_EQ(BagSelect(store_, {a1_, b_, a2_, a1_}, pred).size(), 3u);
}

TEST_F(SetOpsTest, EmptyInputs) {
  EqFn id = IdentityEq();
  EXPECT_TRUE(SetUnion({}, {}, id).empty());
  EXPECT_TRUE(SetIntersect({a1_}, {}, id).empty());
  EXPECT_EQ(SetDifference({a1_}, {}, id).size(), 1u);
  EXPECT_TRUE(BagIntersect({}, {a1_}, id).empty());
}

}  // namespace
}  // namespace aqua
