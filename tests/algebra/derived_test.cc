#include "algebra/derived.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class DerivedTest : public testing::AquaTestBase {
 protected:
  void SetUp() override {
    AquaTestBase::SetUp();
    tree_ = T("r(b(d e) x(b(d f)) b(q))");
  }

  Tree tree_;
};

TEST_F(DerivedTest, SubSelectViaSplitAgreesWithDirect) {
  for (const char* pat : {"b(d ?)", "b", "b(?*)", "x(b(d f))"}) {
    auto tp = TP(pat);
    ASSERT_OK_AND_ASSIGN(Datum direct, TreeSubSelect(store_, tree_, tp));
    ASSERT_OK_AND_ASSIGN(Datum via_split,
                         TreeSubSelectViaSplit(store_, tree_, tp));
    EXPECT_TRUE(direct.Equals(via_split))
        << pat << ": " << Str(direct) << " vs " << Str(via_split);
  }
}

TEST_F(DerivedTest, AllAncViaSplitAgreesWithDirect) {
  auto tp = TP("b(d ?)");
  auto fn = [](const Tree& anc, const Tree& match) -> Result<Datum> {
    return Datum::Tuple({Datum::Of(anc), Datum::Of(match)});
  };
  ASSERT_OK_AND_ASSIGN(Datum direct, TreeAllAnc(store_, tree_, tp, fn));
  ASSERT_OK_AND_ASSIGN(Datum via_split,
                       TreeAllAncViaSplit(store_, tree_, tp, fn));
  EXPECT_TRUE(direct.Equals(via_split))
      << Str(direct) << " vs " << Str(via_split);
  EXPECT_EQ(direct.size(), 2u);
}

TEST_F(DerivedTest, AllDescViaSplitAgreesWithDirect) {
  auto tp = TP("b");
  auto fn = [](const Tree& match,
               const std::vector<Tree>& desc) -> Result<Datum> {
    std::vector<Datum> ds;
    for (const Tree& d : desc) ds.push_back(Datum::Of(d));
    return Datum::Tuple({Datum::Of(match), Datum::Tuple(std::move(ds))});
  };
  ASSERT_OK_AND_ASSIGN(Datum direct, TreeAllDesc(store_, tree_, tp, fn));
  ASSERT_OK_AND_ASSIGN(Datum via_split,
                       TreeAllDescViaSplit(store_, tree_, tp, fn));
  EXPECT_TRUE(direct.Equals(via_split))
      << Str(direct) << " vs " << Str(via_split);
}

TEST_F(DerivedTest, ExtractRootPredicate) {
  ASSERT_OK_AND_ASSIGN(PredicateRef p1, ExtractRootPredicate(TP("b(d e)")));
  EXPECT_EQ(p1->ToString(), "name == \"b\"");
  ASSERT_OK_AND_ASSIGN(PredicateRef p2, ExtractRootPredicate(TP("^!b")));
  EXPECT_EQ(p2->ToString(), "name == \"b\"");
  ASSERT_OK_AND_ASSIGN(PredicateRef p3, ExtractRootPredicate(TP("b .@x c")));
  EXPECT_EQ(p3->ToString(), "name == \"b\"");
  EXPECT_TRUE(ExtractRootPredicate(TP("?")).status().IsNotFound());
  EXPECT_TRUE(ExtractRootPredicate(TP("@x")).status().IsNotFound());
  EXPECT_TRUE(ExtractRootPredicate(TP("a | b")).status().IsNotFound());
  EXPECT_TRUE(ExtractRootPredicate(TP("[[a(@x)]]*@x")).status().IsNotFound());
  EXPECT_TRUE(ExtractRootPredicate(nullptr).status().IsInvalidArgument());
}

TEST_F(DerivedTest, IndexedSubSelectAgreesWithNaive) {
  ASSERT_OK_AND_ASSIGN(AttributeIndex index,
                       AttributeIndex::BuildForTree(store_, tree_, "name"));
  for (const char* pat : {"b(d ?)", "b", "b(q)"}) {
    auto tp = TP(pat);
    ASSERT_OK_AND_ASSIGN(Datum naive, TreeSubSelect(store_, tree_, tp));
    ASSERT_OK_AND_ASSIGN(Datum indexed,
                         TreeSubSelectIndexed(store_, tree_, tp, index));
    ASSERT_OK_AND_ASSIGN(Datum rewrite,
                         TreeSubSelectSplitRewrite(store_, tree_, tp, index));
    EXPECT_TRUE(naive.Equals(indexed)) << pat;
    EXPECT_TRUE(naive.Equals(rewrite)) << pat;
  }
}

TEST_F(DerivedTest, IndexedSubSelectOnBiggerRandomTree) {
  RandomTreeSpec spec;
  spec.num_nodes = 400;
  spec.seed = 7;
  ASSERT_OK_AND_ASSIGN(Tree big, MakeRandomTree(store_, spec));
  ASSERT_OK_AND_ASSIGN(AttributeIndex index,
                       AttributeIndex::BuildForTree(store_, big, "name"));
  auto tp = TP("a(?* b ?*)");
  ASSERT_OK_AND_ASSIGN(Datum naive, TreeSubSelect(store_, big, tp));
  ASSERT_OK_AND_ASSIGN(Datum indexed,
                       TreeSubSelectIndexed(store_, big, tp, index));
  EXPECT_TRUE(naive.Equals(indexed));
  EXPECT_FALSE(naive.size() == 0);  // the workload actually exercises it
}

TEST_F(DerivedTest, ExtractHeadPredicate) {
  ASSERT_OK_AND_ASSIGN(PredicateRef p1, ExtractHeadPredicate(LP("a ? b").body));
  EXPECT_EQ(p1->ToString(), "name == \"a\"");
  ASSERT_OK_AND_ASSIGN(PredicateRef p2, ExtractHeadPredicate(LP("a+ b").body));
  EXPECT_EQ(p2->ToString(), "name == \"a\"");
  ASSERT_OK_AND_ASSIGN(PredicateRef p3, ExtractHeadPredicate(LP("!a b").body));
  EXPECT_EQ(p3->ToString(), "name == \"a\"");
  // Nullable or unconstrained heads are not extractable.
  EXPECT_TRUE(ExtractHeadPredicate(LP("?* a").body).status().IsNotFound());
  EXPECT_TRUE(ExtractHeadPredicate(LP("? a").body).status().IsNotFound());
  EXPECT_TRUE(ExtractHeadPredicate(LP("a | b").body).status().IsNotFound());
  EXPECT_TRUE(ExtractHeadPredicate(LP("@x a").body).status().IsNotFound());
  EXPECT_TRUE(ExtractHeadPredicate(nullptr).status().IsInvalidArgument());
}

TEST_F(DerivedTest, IndexedListSubSelectAgreesWithNaive) {
  ASSERT_OK_AND_ASSIGN(List l,
                       MakeRandomList(store_, 300, {"a", "b", "c"}, 17));
  ASSERT_OK_AND_ASSIGN(AttributeIndex index,
                       AttributeIndex::BuildForList(store_, l, "name"));
  for (const char* pat : {"a ? b", "a+ c", "b !? b"}) {
    auto lp = LP(pat);
    ASSERT_OK_AND_ASSIGN(Datum naive, ListSubSelect(store_, l, lp));
    ASSERT_OK_AND_ASSIGN(Datum indexed,
                         ListSubSelectIndexed(store_, l, lp, index));
    EXPECT_TRUE(naive.Equals(indexed)) << pat;
    EXPECT_GT(naive.size(), 0u) << pat;
  }
}

TEST_F(DerivedTest, IndexedListSubSelectRespectsBeginAnchor) {
  List l = L("[a x a y]");
  ASSERT_OK_AND_ASSIGN(AttributeIndex index,
                       AttributeIndex::BuildForList(store_, l, "name"));
  auto lp = LP("^a ?");
  ASSERT_OK_AND_ASSIGN(Datum naive, ListSubSelect(store_, l, lp));
  ASSERT_OK_AND_ASSIGN(Datum indexed,
                       ListSubSelectIndexed(store_, l, lp, index));
  EXPECT_TRUE(naive.Equals(indexed));
  EXPECT_EQ(indexed.size(), 1u);  // only [a x], not [a y]
}

TEST_F(DerivedTest, IndexedSubSelectNeedsExtractableRoot) {
  ASSERT_OK_AND_ASSIGN(AttributeIndex index,
                       AttributeIndex::BuildForTree(store_, tree_, "name"));
  EXPECT_TRUE(TreeSubSelectIndexed(store_, tree_, TP("?"), index)
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace aqua
