#include "algebra/tree_ops.h"

#include <gtest/gtest.h>

#include "bulk/concat.h"
#include "test_util.h"

namespace aqua {
namespace {

class TreeOpsTest : public testing::AquaTestBase {
 protected:
  PredicateRef ByName(const std::string& name) {
    return Predicate::AttrEquals("name", Value::String(name));
  }

  std::vector<std::string> ForestStrings(const std::vector<Tree>& forest) {
    std::vector<std::string> out;
    for (const Tree& t : forest) out.push_back(Str(t));
    return out;
  }
};

TEST_F(TreeOpsTest, SelectKeepsSatisfyingNodesWithAncestryContraction) {
  // Nodes named "k" are kept; paths through non-matching nodes contract.
  Tree t = T("k1(x(k2(y k3)) k4)");
  auto keep = P("name == \"k1\" || name == \"k2\" || name == \"k3\" || "
                "name == \"k4\"");
  ASSERT_OK_AND_ASSIGN(auto forest, TreeSelect(store_, t, keep));
  ASSERT_EQ(forest.size(), 1u);
  EXPECT_EQ(Str(forest[0]), "k1(k2(k3) k4)");
  EXPECT_OK(forest[0].Validate());
}

TEST_F(TreeOpsTest, SelectReturnsForestWhenRootFails) {
  Tree t = T("x(a(b) y(a))");
  ASSERT_OK_AND_ASSIGN(auto forest, TreeSelect(store_, t, ByName("a")));
  auto strs = ForestStrings(forest);
  ASSERT_EQ(strs.size(), 2u);
  EXPECT_EQ(strs[0], "a");  // first a loses its non-matching child b
  EXPECT_EQ(strs[1], "a");
}

TEST_F(TreeOpsTest, SelectPreservesRelativeOrderOfSiblings) {
  Tree t = T("r(x(a1) a2 x(a3))");
  auto keep = P("name == \"a1\" || name == \"a2\" || name == \"a3\"");
  ASSERT_OK_AND_ASSIGN(auto forest, TreeSelect(store_, t, keep));
  auto strs = ForestStrings(forest);
  ASSERT_EQ(strs.size(), 3u);
  EXPECT_EQ(strs[0], "a1");
  EXPECT_EQ(strs[1], "a2");
  EXPECT_EQ(strs[2], "a3");
}

TEST_F(TreeOpsTest, SelectContractsThroughInstancePoints) {
  // Concatenation points are invisible to predicates (§3.5) and contract.
  Tree t = T("a(@p x(a))");
  ASSERT_OK_AND_ASSIGN(auto forest, TreeSelect(store_, t, ByName("a")));
  ASSERT_EQ(forest.size(), 1u);
  EXPECT_EQ(Str(forest[0]), "a(a)");
}

TEST_F(TreeOpsTest, SelectOnEmptyTree) {
  ASSERT_OK_AND_ASSIGN(auto forest, TreeSelect(store_, Tree(), ByName("a")));
  EXPECT_TRUE(forest.empty());
  EXPECT_TRUE(TreeSelect(store_, Tree(), nullptr).status().IsInvalidArgument());
}

TEST_F(TreeOpsTest, ApplyIsIsomorphic) {
  Tree t = T("a(b(c) @p d)");
  // Map every item to a fresh object with an uppercase-ish marker name.
  auto fn = [this](ObjectStore& store, Oid oid) -> Result<Oid> {
    AQUA_ASSIGN_OR_RETURN(Value name, store.GetAttr(oid, "name"));
    return store.Create("Item",
                        {{"name", Value::String(name.string_value() + "m")},
                         {"val", Value::Int(0)}});
  };
  ASSERT_OK_AND_ASSIGN(Tree mapped, TreeApply(store_, t, fn));
  EXPECT_EQ(Str(mapped), "am(bm(cm) @p dm)");
  EXPECT_EQ(mapped.size(), t.size());
  EXPECT_OK(mapped.Validate());
}

TEST_F(TreeOpsTest, ApplyOnEmptyTree) {
  auto fn = [](ObjectStore&, Oid oid) -> Result<Oid> { return oid; };
  ASSERT_OK_AND_ASSIGN(Tree mapped, TreeApply(store_, Tree(), fn));
  EXPECT_TRUE(mapped.empty());
}

TEST_F(TreeOpsTest, Figure4Split) {
  // split(Brazil(!?* USA !?*), λ(x,y,z)⟨x,y,z⟩)(T) over the Figure 3 tree.
  ASSERT_OK_AND_ASSIGN(Tree family, MakePaperFamilyTree(store_));
  env_.Bind("Brazil",
            Predicate::AttrEquals("citizen", Value::String("Brazil")));
  env_.Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));
  auto tp = TP("Brazil(!?* USA !?*)");

  ASSERT_OK_AND_ASSIGN(
      Datum result,
      TreeSplit(store_, family, tp,
                [](const Tree& x, const Tree& y,
                   const std::vector<Tree>& z) -> Result<Datum> {
                  std::vector<Datum> zs;
                  for (const Tree& t : z) zs.push_back(Datum::Of(t));
                  return Datum::Tuple({Datum::Of(x), Datum::Of(y),
                                       Datum::Tuple(std::move(zs))});
                }));
  // "The result of this query is a set containing one tuple" (§4).
  ASSERT_EQ(result.size(), 1u);
  const Datum& tuple = result.at(0);
  EXPECT_EQ(Str(tuple.at(0).tree()), "Ted(Ann @a Ray)");
  EXPECT_EQ(Str(tuple.at(1).tree()), "Gen(@a1 John(@a2))");
  ASSERT_EQ(tuple.at(2).size(), 2u);
  EXPECT_EQ(Str(tuple.at(2).at(0).tree()), "Joe(Bob)");
  EXPECT_EQ(Str(tuple.at(2).at(1).tree()), "Mary");
}

TEST_F(TreeOpsTest, SplitPiecesReassembleToOriginal) {
  ASSERT_OK_AND_ASSIGN(Tree family, MakePaperFamilyTree(store_));
  env_.Bind("Brazil",
            Predicate::AttrEquals("citizen", Value::String("Brazil")));
  env_.Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));
  TreeMatcher matcher(store_, family);
  ASSERT_OK_AND_ASSIGN(auto matches,
                       matcher.FindAll(TP("Brazil(!?* USA !?*)")));
  ASSERT_EQ(matches.size(), 1u);
  ASSERT_OK_AND_ASSIGN(SplitPieces pieces,
                       MakeSplitPieces(family, matches[0], SplitOptions{}));
  Tree reassembled = ReassembleSplit(pieces);
  EXPECT_TRUE(reassembled.StructurallyEquals(family))
      << Str(reassembled) << " vs " << Str(family);
}

TEST_F(TreeOpsTest, SplitAtRootHasPointContext) {
  Tree t = T("a(b c)");
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      TreeSplit(store_, t, TP("a(!?*)"),
                [](const Tree& x, const Tree& y,
                   const std::vector<Tree>& z) -> Result<Datum> {
                  return Datum::Tuple({Datum::Of(x), Datum::Of(y),
                                       Datum::Scalar(Value::Int(
                                           static_cast<int64_t>(z.size())))});
                }));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(Str(result.at(0).at(0).tree()), "@a");
  EXPECT_EQ(Str(result.at(0).at(1).tree()), "a(@a1 @a2)");
  EXPECT_EQ(result.at(0).at(2).scalar().int_value(), 2);
}

TEST_F(TreeOpsTest, SplitCustomLabels) {
  SplitOptions opts;
  opts.context_label = "ctx";
  opts.cut_prefix = "cut";
  Tree t = T("r(m(x))");
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      TreeSplit(store_, t, TP("m"),
                [](const Tree& x, const Tree& y,
                   const std::vector<Tree>&) -> Result<Datum> {
                  return Datum::Tuple({Datum::Of(x), Datum::Of(y)});
                },
                opts));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(Str(result.at(0).at(0).tree()), "r(@ctx)");
  EXPECT_EQ(Str(result.at(0).at(1).tree()), "m(@cut1)");
}

TEST_F(TreeOpsTest, SplitFnErrorsPropagate) {
  Tree t = T("a");
  auto res = TreeSplit(store_, t, TP("a"),
                       [](const Tree&, const Tree&,
                          const std::vector<Tree>&) -> Result<Datum> {
                         return Status::Internal("user fn failed");
                       });
  EXPECT_TRUE(res.status().IsInternal());
}

TEST_F(TreeOpsTest, SubSelectClosesPoints) {
  Tree t = T("r(b(d e) b(d f))");
  ASSERT_OK_AND_ASSIGN(Datum result, TreeSubSelect(store_, t, TP("b(d ?)")));
  ASSERT_EQ(result.size(), 2u);
  EXPECT_TRUE(result.SetContains(Datum::Of(T("b(d e)"))));
  EXPECT_TRUE(result.SetContains(Datum::Of(T("b(d f)"))));
}

TEST_F(TreeOpsTest, SubSelectDropsDescendantsOfLeafMatches) {
  Tree t = T("r(b(d(deep) e))");
  ASSERT_OK_AND_ASSIGN(Datum result, TreeSubSelect(store_, t, TP("b(d ?)")));
  ASSERT_EQ(result.size(), 1u);
  // d's subtree (deep) is cut and closed away.
  EXPECT_TRUE(result.SetContains(Datum::Of(T("b(d e)"))));
}

TEST_F(TreeOpsTest, SubSelectResultIsASet) {
  // Two occurrences of an identical subgraph collapse to one set element.
  Tree t = T("r(b(d) b(d))");
  ASSERT_OK_AND_ASSIGN(Datum result, TreeSubSelect(store_, t, TP("b(d)")));
  EXPECT_EQ(result.size(), 1u);
}

TEST_F(TreeOpsTest, AllAncGivesContextAndClosedMatch) {
  Tree t = T("r(x(m(q)))");
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      TreeAllAnc(store_, t, TP("m"),
                 [](const Tree& anc, const Tree& match) -> Result<Datum> {
                   return Datum::Tuple({Datum::Of(anc), Datum::Of(match)});
                 }));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(Str(result.at(0).at(0).tree()), "r(x(@a))");
  EXPECT_EQ(Str(result.at(0).at(1).tree()), "m");  // q cut + closed
}

TEST_F(TreeOpsTest, AllDescGivesMatchAndDescendants) {
  Tree t = T("r(m(q1 q2))");
  ASSERT_OK_AND_ASSIGN(
      Datum result,
      TreeAllDesc(store_, t, TP("m"),
                  [](const Tree& match,
                     const std::vector<Tree>& desc) -> Result<Datum> {
                    std::vector<Datum> ds;
                    for (const Tree& d : desc) ds.push_back(Datum::Of(d));
                    return Datum::Tuple(
                        {Datum::Of(match), Datum::Tuple(std::move(ds))});
                  }));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(Str(result.at(0).at(0).tree()), "m(@a1 @a2)");
  ASSERT_EQ(result.at(0).at(1).size(), 2u);
  EXPECT_EQ(Str(result.at(0).at(1).at(0).tree()), "q1");
  EXPECT_EQ(Str(result.at(0).at(1).at(1).tree()), "q2");
}

TEST_F(TreeOpsTest, MakeMatchPieceMatchesSplitY) {
  Tree t = T("r(m(a b))");
  TreeMatcher matcher(store_, t);
  ASSERT_OK_AND_ASSIGN(auto matches, matcher.FindAll(TP("m")));
  ASSERT_EQ(matches.size(), 1u);
  ASSERT_OK_AND_ASSIGN(Tree y, MakeMatchPiece(t, matches[0], SplitOptions{}));
  ASSERT_OK_AND_ASSIGN(SplitPieces pieces,
                       MakeSplitPieces(t, matches[0], SplitOptions{}));
  EXPECT_TRUE(y.StructurallyEquals(pieces.y));
}

}  // namespace
}  // namespace aqua
