// The structured apply-expression IR: effect inference by induction and
// Eval agreement with the semantics each kind documents.
#include "algebra/fn_expr.h"

#include <gtest/gtest.h>

#include "pattern/predicate_parser.h"
#include "test_util.h"

namespace aqua {
namespace {

class FnExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(store_.schema()
                  .RegisterType("P", {{"name", ValueType::kString, true},
                                      {"age", ValueType::kInt, true}})
                  .status());
    ASSERT_OK_AND_ASSIGN(young_,
                         store_.Create("P", {{"name", Value::String("kid")},
                                             {"age", Value::Int(9)}}));
    ASSERT_OK_AND_ASSIGN(old_,
                         store_.Create("P", {{"name", Value::String("elder")},
                                             {"age", Value::Int(80)}}));
  }

  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }

  ObjectStore store_;
  Oid young_, old_;
};

TEST_F(FnExprTest, EffectLattice) {
  EXPECT_EQ(FnExpr::Identity()->effect(), FnEffect::kPure);
  EXPECT_EQ(FnExpr::Const(young_)->effect(), FnEffect::kPure);
  // A guard reads attributes: read-only, still parallel-safe.
  auto guarded = FnExpr::Choose(P("age > 60"), FnExpr::Const(old_), nullptr);
  EXPECT_EQ(guarded->effect(), FnEffect::kReadOnly);
  EXPECT_TRUE(FnEffectParallelSafe(guarded->effect()));
  // An update writes the store: not parallel-safe.
  auto update = FnExpr::Update({{"age", Value::Int(0)}});
  EXPECT_EQ(update->effect(), FnEffect::kStoreWrite);
  EXPECT_FALSE(FnEffectParallelSafe(update->effect()));
  // Composition takes the max.
  EXPECT_EQ(FnExpr::Compose(guarded, update)->effect(),
            FnEffect::kStoreWrite);
  // Null expression (a bare std::function): opaque.
  EXPECT_EQ(FnExprEffect(nullptr), FnEffect::kOpaque);
  EXPECT_FALSE(FnEffectParallelSafe(FnEffect::kOpaque));
}

TEST_F(FnExprTest, EvalIdentityAndConst) {
  ASSERT_OK_AND_ASSIGN(Oid same, FnExpr::Identity()->Eval(store_, young_));
  EXPECT_EQ(same, young_);
  ASSERT_OK_AND_ASSIGN(Oid c, FnExpr::Const(old_)->Eval(store_, young_));
  EXPECT_EQ(c, old_);
}

TEST_F(FnExprTest, EvalChoosePicksByGuard) {
  auto expr = FnExpr::Choose(P("age > 60"), FnExpr::Const(young_), nullptr);
  ASSERT_OK_AND_ASSIGN(Oid taken, expr->Eval(store_, old_));
  EXPECT_EQ(taken, young_);  // guard true: then-branch
  ASSERT_OK_AND_ASSIGN(Oid kept, expr->Eval(store_, young_));
  EXPECT_EQ(kept, young_);  // guard false: null else = identity
}

TEST_F(FnExprTest, EvalUpdateCreatesFreshCopy) {
  auto expr = FnExpr::Update({{"age", Value::Int(0)}});
  ASSERT_OK_AND_ASSIGN(Oid fresh, expr->Eval(store_, old_));
  EXPECT_NE(fresh, old_);  // a copy, never in-place
  ASSERT_OK_AND_ASSIGN(const Object* copy, store_.Get(fresh));
  ASSERT_OK_AND_ASSIGN(const Object* orig, store_.Get(old_));
  EXPECT_EQ(copy->type(), orig->type());
  ASSERT_OK_AND_ASSIGN(Value age, store_.GetAttr(fresh, "age"));
  EXPECT_EQ(age.int_value(), 0);
  ASSERT_OK_AND_ASSIGN(Value name, store_.GetAttr(fresh, "name"));
  EXPECT_EQ(name.string_value(), "elder");  // untouched attrs carry over
}

TEST_F(FnExprTest, EvalComposeRunsInnerThenOuter) {
  auto expr = FnExpr::Compose(FnExpr::Update({{"age", Value::Int(1)}}),
                              FnExpr::Const(old_));
  ASSERT_OK_AND_ASSIGN(Oid out, expr->Eval(store_, young_));
  ASSERT_OK_AND_ASSIGN(Value age, store_.GetAttr(out, "age"));
  EXPECT_EQ(age.int_value(), 1);
  ASSERT_OK_AND_ASSIGN(Value name, store_.GetAttr(out, "name"));
  EXPECT_EQ(name.string_value(), "elder");  // inner picked `old_` first
}

TEST_F(FnExprTest, ComposeNormalizesIdentity) {
  auto f = FnExpr::Const(young_);
  EXPECT_EQ(FnExpr::Compose(FnExpr::Identity(), f), f);
  EXPECT_EQ(FnExpr::Compose(f, FnExpr::Identity()), f);
  EXPECT_EQ(FnExpr::Compose(nullptr, nullptr)->kind(),
            FnExpr::Kind::kIdentity);
}

TEST_F(FnExprTest, ToStringIsCompact) {
  EXPECT_EQ(FnExpr::Identity()->ToString(), "id");
  auto expr = FnExpr::Choose(P("age > 60"),
                             FnExpr::Update({{"age", Value::Int(0)}}),
                             nullptr);
  std::string s = expr->ToString();
  EXPECT_NE(s.find("choose("), std::string::npos) << s;
  EXPECT_NE(s.find("update(age="), std::string::npos) << s;
}

}  // namespace
}  // namespace aqua
