#include "approx/approx_ops.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class ApproxOpsTest : public testing::AquaTestBase {
 protected:
  EditCosts Costs() { return AttrEditCosts(&store_, "name"); }
};

TEST_F(ApproxOpsTest, ExactThresholdFindsExactSubtrees) {
  Tree t = T("r(q(b(d e)) b(d e) b(d f))");
  ASSERT_OK_AND_ASSIGN(
      Datum exact, TreeSubSelectApprox(store_, t, T("b(d e)"), 0, Costs()));
  ASSERT_EQ(exact.size(), 1u);  // two identical subtrees collapse in a set
  EXPECT_TRUE(exact.SetContains(Datum::Of(T("b(d e)"))));
}

TEST_F(ApproxOpsTest, ThresholdOneAdmitsNearMisses) {
  Tree t = T("r(b(d e) b(d f) b(d) x(y z))");
  ASSERT_OK_AND_ASSIGN(
      Datum close, TreeSubSelectApprox(store_, t, T("b(d e)"), 1, Costs()));
  // b(d e) at 0, b(d f) (one rename), b(d) (one delete); not x(y z).
  EXPECT_EQ(close.size(), 3u);
  EXPECT_FALSE(close.SetContains(Datum::Of(T("x(y z)"))));
}

TEST_F(ApproxOpsTest, LargeThresholdAdmitsEverything) {
  Tree t = T("r(a b)");
  ASSERT_OK_AND_ASSIGN(Datum all,
                       TreeSubSelectApprox(store_, t, T("q"), 100, Costs()));
  EXPECT_EQ(all.size(), 3u);  // r(a b), a, b
}

TEST_F(ApproxOpsTest, NegativeThresholdRejected) {
  EXPECT_TRUE(TreeSubSelectApprox(store_, T("a"), T("a"), -1, Costs())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ApproxOpsTest, EmptyTreeYieldsEmptySet) {
  ASSERT_OK_AND_ASSIGN(Datum none,
                       TreeSubSelectApprox(store_, Tree(), T("a"), 5, Costs()));
  EXPECT_EQ(none.size(), 0u);
}

TEST_F(ApproxOpsTest, SizeBoundPruningPreservesAnswers) {
  // The size-delta lower bound must not change results vs brute force.
  RandomTreeSpec spec;
  spec.num_nodes = 60;
  spec.labels = {"a", "b", "c"};
  spec.seed = 3;
  ASSERT_OK_AND_ASSIGN(Tree t, MakeRandomTree(store_, spec));
  Tree query = T("a(b c)");
  ASSERT_OK_AND_ASSIGN(Datum pruned,
                       TreeSubSelectApprox(store_, t, query, 2, Costs()));
  // Brute force via NearestSubtrees (no pruning).
  ASSERT_OK_AND_ASSIGN(auto ranked,
                       NearestSubtrees(store_, t, query, t.size(), Costs()));
  Datum brute = Datum::Set({});
  for (const auto& s : ranked) {
    if (s.distance <= 2) brute.SetInsert(Datum::Of(s.subtree));
  }
  EXPECT_TRUE(pruned.Equals(brute));
}

TEST_F(ApproxOpsTest, NearestSubtreesRanksAscending) {
  Tree t = T("r(b(d e) b(d f) x)");
  ASSERT_OK_AND_ASSIGN(auto ranked,
                       NearestSubtrees(store_, t, T("b(d e)"), 3, Costs()));
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_DOUBLE_EQ(ranked[0].distance, 0);
  EXPECT_EQ(Str(ranked[0].subtree), "b(d e)");
  EXPECT_DOUBLE_EQ(ranked[1].distance, 1);
  EXPECT_EQ(Str(ranked[1].subtree), "b(d f)");
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].distance, ranked[i].distance);
  }
}

TEST_F(ApproxOpsTest, NearestSubtreesTopNLimits) {
  Tree t = T("r(a b c d)");
  ASSERT_OK_AND_ASSIGN(auto two, NearestSubtrees(store_, t, T("a"), 2,
                                                 Costs()));
  EXPECT_EQ(two.size(), 2u);
  ASSERT_OK_AND_ASSIGN(auto none, NearestSubtrees(store_, t, T("a"), 0,
                                                  Costs()));
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace aqua
