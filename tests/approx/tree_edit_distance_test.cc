#include "approx/tree_edit_distance.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class TedTest : public testing::AquaTestBase {
 protected:
  double Dist(const std::string& a, const std::string& b) {
    auto d = TreeEditDistance(T(a), T(b), AttrEditCosts(&store_, "name"));
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return d.ok() ? *d : -1;
  }
};

TEST_F(TedTest, IdenticalTreesAreAtDistanceZero) {
  EXPECT_DOUBLE_EQ(Dist("a", "a"), 0);
  EXPECT_DOUBLE_EQ(Dist("a(b c)", "a(b c)"), 0);
  EXPECT_DOUBLE_EQ(Dist("a(b(c d) e)", "a(b(c d) e)"), 0);
}

TEST_F(TedTest, EmptyTreeCases) {
  ASSERT_OK_AND_ASSIGN(double both, TreeEditDistance(Tree(), Tree()));
  EXPECT_DOUBLE_EQ(both, 0);
  ASSERT_OK_AND_ASSIGN(double ins, TreeEditDistance(Tree(), T("a(b c)")));
  EXPECT_DOUBLE_EQ(ins, 3);  // insert all
  ASSERT_OK_AND_ASSIGN(double del, TreeEditDistance(T("a(b c)"), Tree()));
  EXPECT_DOUBLE_EQ(del, 3);  // delete all
}

TEST_F(TedTest, SingleRename) {
  EXPECT_DOUBLE_EQ(Dist("a", "b"), 1);
  EXPECT_DOUBLE_EQ(Dist("a(b c)", "a(b d)"), 1);
  EXPECT_DOUBLE_EQ(Dist("a(b c)", "x(y z)"), 3);
}

TEST_F(TedTest, InsertAndDelete) {
  EXPECT_DOUBLE_EQ(Dist("a(b)", "a(b c)"), 1);   // insert leaf
  EXPECT_DOUBLE_EQ(Dist("a(b c)", "a(c)"), 1);   // delete leaf
  EXPECT_DOUBLE_EQ(Dist("a(b(c))", "a(c)"), 1);  // delete interior b
  EXPECT_DOUBLE_EQ(Dist("a(c)", "a(b(c))"), 1);  // insert interior b
}

TEST_F(TedTest, SymmetryUnderUnitCosts) {
  const char* kTrees[] = {"a", "a(b c)", "a(b(c) d)", "x(y)",
                          "a(b(c d e) f)"};
  for (const char* x : kTrees) {
    for (const char* y : kTrees) {
      EXPECT_DOUBLE_EQ(Dist(x, y), Dist(y, x)) << x << " / " << y;
    }
  }
}

TEST_F(TedTest, TriangleInequalityOnSamples) {
  const char* kTrees[] = {"a", "a(b)", "a(b c)", "x(b c)", "a(b(c))"};
  for (const char* x : kTrees) {
    for (const char* y : kTrees) {
      for (const char* z : kTrees) {
        EXPECT_LE(Dist(x, z), Dist(x, y) + Dist(y, z) + 1e-9)
            << x << " " << y << " " << z;
      }
    }
  }
}

TEST_F(TedTest, OrderSensitivity) {
  // Ordered distance distinguishes sibling orders (two renames here).
  EXPECT_GT(Dist("a(b c)", "a(c b)"), 0);
}

TEST_F(TedTest, ClassicZhangShashaExample) {
  // f(d(a c(b)) e) vs f(c(d(a b)) e): the canonical example, distance 2
  // (delete c under d, insert c above d).
  EXPECT_DOUBLE_EQ(Dist("f(d(a c(b)) e)", "f(c(d(a b)) e)"), 2);
}

TEST_F(TedTest, CustomCosts) {
  EditCosts costs = AttrEditCosts(&store_, "name");
  costs.insert_cost = [](const NodePayload&) { return 10.0; };
  costs.delete_cost = [](const NodePayload&) { return 10.0; };
  // Rename (1) now beats delete+insert (20).
  ASSERT_OK_AND_ASSIGN(double d, TreeEditDistance(T("a"), T("b"), costs));
  EXPECT_DOUBLE_EQ(d, 1);
  // Growing by one node costs an insert.
  ASSERT_OK_AND_ASSIGN(double d2,
                       TreeEditDistance(T("a"), T("a(b)"), costs));
  EXPECT_DOUBLE_EQ(d2, 10);
}

TEST_F(TedTest, DefaultCostsCompareCellIdentity) {
  // Without AttrEditCosts, cells compare by object identity: two distinct
  // objects with the same name are different.
  ASSERT_OK_AND_ASSIGN(Oid o1, store_.Create("Item", {{"name",
                                                       Value::String("a")}}));
  ASSERT_OK_AND_ASSIGN(Oid o2, store_.Create("Item", {{"name",
                                                       Value::String("a")}}));
  Tree t1 = Tree::Leaf(NodePayload::Cell(o1));
  Tree t2 = Tree::Leaf(NodePayload::Cell(o2));
  ASSERT_OK_AND_ASSIGN(double d, TreeEditDistance(t1, t2));
  EXPECT_DOUBLE_EQ(d, 1);
  ASSERT_OK_AND_ASSIGN(double same, TreeEditDistance(t1, t1));
  EXPECT_DOUBLE_EQ(same, 0);
}

TEST_F(TedTest, PointsParticipate) {
  ASSERT_OK_AND_ASSIGN(double d, TreeEditDistance(T("a(@x)"), T("a(@x)")));
  EXPECT_DOUBLE_EQ(d, 0);
  ASSERT_OK_AND_ASSIGN(double d2, TreeEditDistance(T("a(@x)"), T("a(@y)")));
  EXPECT_DOUBLE_EQ(d2, 1);
}

TEST_F(TedTest, NullCostFunctionsRejected) {
  EditCosts broken;
  broken.rename_cost = nullptr;
  EXPECT_TRUE(
      TreeEditDistance(T("a"), T("b"), broken).status().IsInvalidArgument());
}

}  // namespace
}  // namespace aqua
