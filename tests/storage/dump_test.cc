#include "storage/dump.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "test_util.h"

namespace aqua {
namespace {

class DumpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterPersonType(db_.store()));
    ASSERT_OK(RegisterItemType(db_.store()));
    ASSERT_OK_AND_ASSIGN(Tree family, MakePaperFamilyTree(db_.store()));
    ASSERT_OK(db_.RegisterTree("family", std::move(family)));
    atom_ = MakeInterningAtomFn(&db_.store(), "Item", "name");
    ASSERT_OK_AND_ASSIGN(List song, ParseListLiteral("[a b @x c]", atom_));
    ASSERT_OK(db_.RegisterList("song", std::move(song)));
    ASSERT_OK_AND_ASSIGN(
        Tree with_point, ParseTreeLiteral("root(a @cut b)", atom_));
    ASSERT_OK(db_.RegisterTree("pointed", std::move(with_point)));
    ASSERT_OK(db_.CreateIndex("family", "citizen"));
    ASSERT_OK(db_.CreateIndex("song", "name"));
  }

  Database db_;
  AtomFn atom_;
};

TEST_F(DumpTest, DumpHasExpectedSections) {
  ASSERT_OK_AND_ASSIGN(std::string text, DumpDatabase(db_));
  EXPECT_NE(text.find("AQUA-DUMP 1"), std::string::npos);
  EXPECT_NE(text.find("TYPE Person"), std::string::npos);
  EXPECT_NE(text.find("OBJ 1 Person"), std::string::npos);
  EXPECT_NE(text.find("TREE family"), std::string::npos);
  EXPECT_NE(text.find("LIST song"), std::string::npos);
  EXPECT_NE(text.find("INDEX family citizen"), std::string::npos);
  EXPECT_NE(text.find("P:x"), std::string::npos);   // list point
  EXPECT_NE(text.find("P:cut"), std::string::npos); // tree point
  EXPECT_NE(text.find("END"), std::string::npos);
}

TEST_F(DumpTest, RoundTripPreservesEverything) {
  ASSERT_OK_AND_ASSIGN(std::string text, DumpDatabase(db_));
  Database loaded;
  ASSERT_OK(LoadDatabase(text, &loaded));

  // Schema.
  EXPECT_EQ(loaded.store().schema().num_types(),
            db_.store().schema().num_types());
  // Objects (same count, same attribute values by oid).
  ASSERT_EQ(loaded.store().num_objects(), db_.store().num_objects());
  for (uint64_t raw = 1; raw <= db_.store().num_objects(); ++raw) {
    ASSERT_OK_AND_ASSIGN(const Object* orig, db_.store().Get(Oid(raw)));
    ASSERT_OK_AND_ASSIGN(const Object* copy, loaded.store().Get(Oid(raw)));
    ASSERT_EQ(orig->attrs().size(), copy->attrs().size());
    for (size_t i = 0; i < orig->attrs().size(); ++i) {
      EXPECT_TRUE(orig->attr_at(i).Equals(copy->attr_at(i)))
          << "oid " << raw << " attr " << i;
    }
  }
  // Collections.
  ASSERT_OK_AND_ASSIGN(const Tree* family, db_.GetTree("family"));
  ASSERT_OK_AND_ASSIGN(const Tree* family2, loaded.GetTree("family"));
  EXPECT_TRUE(family->StructurallyEquals(*family2));
  ASSERT_OK_AND_ASSIGN(const Tree* pointed2, loaded.GetTree("pointed"));
  ASSERT_OK_AND_ASSIGN(const Tree* pointed, db_.GetTree("pointed"));
  EXPECT_TRUE(pointed->StructurallyEquals(*pointed2));
  ASSERT_OK_AND_ASSIGN(const List* song, db_.GetList("song"));
  ASSERT_OK_AND_ASSIGN(const List* song2, loaded.GetList("song"));
  EXPECT_TRUE(*song == *song2);
  // Index catalog (rebuilt).
  EXPECT_TRUE(loaded.indexes().Has("family", "citizen"));
  EXPECT_TRUE(loaded.indexes().Has("song", "name"));
  EXPECT_EQ(loaded.indexes().num_indexes(), 2u);
}

TEST_F(DumpTest, DoubleRoundTripIsStable) {
  ASSERT_OK_AND_ASSIGN(std::string once, DumpDatabase(db_));
  Database loaded;
  ASSERT_OK(LoadDatabase(once, &loaded));
  ASSERT_OK_AND_ASSIGN(std::string twice, DumpDatabase(loaded));
  EXPECT_EQ(once, twice);
}

TEST_F(DumpTest, QueriesAgreeAfterRoundTrip) {
  ASSERT_OK_AND_ASSIGN(std::string text, DumpDatabase(db_));
  Database loaded;
  ASSERT_OK(LoadDatabase(text, &loaded));
  PredicateEnv env;
  env.Bind("Brazil",
           Predicate::AttrEquals("citizen", Value::String("Brazil")));
  env.Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));
  PatternParserOptions popts;
  popts.env = &env;
  ASSERT_OK_AND_ASSIGN(TreePatternRef tp,
                       ParseTreePattern("Brazil(!?* USA !?*)", popts));
  ASSERT_OK_AND_ASSIGN(const Tree* t1, db_.GetTree("family"));
  ASSERT_OK_AND_ASSIGN(const Tree* t2, loaded.GetTree("family"));
  ASSERT_OK_AND_ASSIGN(Datum r1, TreeSubSelect(db_.store(), *t1, tp));
  ASSERT_OK_AND_ASSIGN(Datum r2, TreeSubSelect(loaded.store(), *t2, tp));
  EXPECT_TRUE(r1.Equals(r2));
  EXPECT_EQ(r1.size(), 1u);
}

TEST_F(DumpTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/aqua_dump_test.txt";
  ASSERT_OK(DumpDatabaseToFile(db_, path));
  Database loaded;
  ASSERT_OK(LoadDatabaseFromFile(path, &loaded));
  EXPECT_EQ(loaded.store().num_objects(), db_.store().num_objects());
  std::remove(path.c_str());
  EXPECT_TRUE(
      LoadDatabaseFromFile("/nonexistent/nope", &loaded).IsNotFound());
}

TEST_F(DumpTest, EscapedStringsSurvive) {
  ASSERT_OK_AND_ASSIGN(
      Oid odd, db_.store().Create(
                   "Item", {{"name", Value::String("we\"ird\\na\nme")}}));
  List l;
  l.Append(NodePayload::Cell(odd));
  ASSERT_OK(db_.RegisterList("odd", std::move(l)));
  ASSERT_OK_AND_ASSIGN(std::string text, DumpDatabase(db_));
  Database loaded;
  ASSERT_OK(LoadDatabase(text, &loaded));
  ASSERT_OK_AND_ASSIGN(Value name, loaded.store().GetAttr(odd, "name"));
  EXPECT_EQ(name.string_value(), "we\"ird\\na\nme");
}

TEST_F(DumpTest, LoadRejectsNonEmptyDatabase) {
  ASSERT_OK_AND_ASSIGN(std::string text, DumpDatabase(db_));
  EXPECT_TRUE(LoadDatabase(text, &db_).IsInvalidArgument());
  EXPECT_TRUE(LoadDatabase(text, nullptr).IsInvalidArgument());
}

TEST_F(DumpTest, LoadRejectsGarbage) {
  Database fresh1, fresh2, fresh3;
  EXPECT_TRUE(LoadDatabase("not a dump", &fresh1).IsParseError());
  EXPECT_TRUE(LoadDatabase("AQUA-DUMP 1\nBOGUS line\nEND\n", &fresh2)
                  .IsParseError());
  // Missing END.
  EXPECT_TRUE(LoadDatabase("AQUA-DUMP 1\n", &fresh3).IsParseError());
}

TEST_F(DumpTest, EmptyDatabaseRoundTrips) {
  Database empty, loaded;
  ASSERT_OK_AND_ASSIGN(std::string text, DumpDatabase(empty));
  ASSERT_OK(LoadDatabase(text, &loaded));
  EXPECT_EQ(loaded.store().num_objects(), 0u);
  EXPECT_TRUE(loaded.CollectionNames().empty());
}

}  // namespace
}  // namespace aqua
