#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "exec/morsel.h"
#include "exec/worker_local.h"
#include "test_util.h"

namespace aqua::exec {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.workers(), 2u);

  constexpr int kTasks = 64;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == kTasks) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done == kTasks; }));
  EXPECT_EQ(done, kTasks);
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.workers(), 3u);
  pool.EnsureWorkers(2);  // smaller request is a no-op
  EXPECT_EQ(pool.workers(), 3u);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.workers(), 3u);
}

TEST(ThreadPoolTest, ZeroWorkerPoolIsValid) {
  // A thread-free pool must construct and destruct cleanly: a caller that
  // gets no helpers runs everything inline (see morsel.h).
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
}

TEST(WorkerLocalTest, SlotsAreIndependent) {
  WorkerLocal<int> slots(4);
  ASSERT_EQ(slots.size(), 4u);
  for (size_t i = 0; i < slots.size(); ++i) slots.at(i) = static_cast<int>(i);
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots.at(i), static_cast<int>(i));
    for (size_t j = i + 1; j < slots.size(); ++j) {
      EXPECT_NE(&slots.at(i), &slots.at(j));
    }
  }
}

// Every partition must tile [0, n) exactly: contiguous, ascending, no gaps.
void CheckCovers(const std::vector<std::pair<size_t, size_t>>& ranges,
                 size_t n) {
  size_t expect_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_LT(begin, end);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, n);
}

TEST(PartitionMorselsTest, CoversRangeContiguously) {
  for (size_t n : {1u, 2u, 7u, 100u, 1001u}) {
    for (size_t threads : {1u, 2u, 4u, 16u}) {
      for (size_t min_items : {1u, 8u, 64u}) {
        auto ranges = PartitionMorsels(n, threads, min_items);
        CheckCovers(ranges, n);
        // All but the last morsel respect the grain floor.
        for (size_t i = 0; i + 1 < ranges.size(); ++i) {
          EXPECT_GE(ranges[i].second - ranges[i].first, min_items);
        }
      }
    }
  }
}

TEST(PartitionMorselsTest, EmptyInputYieldsNoMorsels) {
  EXPECT_TRUE(PartitionMorsels(0, 4, 1).empty());
}

TEST(PartitionMorselsTest, ProducesSkewHeadroom) {
  // With small grains there should be more morsels than participants, so
  // the claim loop can rebalance a skewed workload.
  auto ranges = PartitionMorsels(1000, 4, 1);
  EXPECT_GT(ranges.size(), 4u);
}

TEST(RunMorselsTest, InlineWhenSingleThreaded) {
  ThreadPool pool(0);
  FanOutOptions opts;
  opts.threads = 1;
  std::vector<size_t> seen;
  ASSERT_OK(RunMorsels(pool, 10, opts, [&](const Morsel& m) {
    EXPECT_EQ(m.worker, 0u);  // inline: everything on the caller
    for (size_t i = m.begin; i < m.end; ++i) seen.push_back(i);
    return Status::OK();
  }));
  ASSERT_EQ(seen.size(), 10u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(RunMorselsTest, InlineStopsAtFirstError) {
  ThreadPool pool(0);
  FanOutOptions opts;
  opts.threads = 1;
  std::vector<size_t> seen;
  Status st = RunMorsels(pool, 100, opts, [&](const Morsel& m) {
    seen.push_back(m.index);
    if (m.begin >= 3) return Status::Internal("boom");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "boom");
  // Serial semantics: nothing after the failing morsel runs.
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_EQ(seen[i], seen[i - 1] + 1);
  EXPECT_LT(seen.size(), 100u);
}

TEST(RunMorselsTest, ParallelCoversEveryItemExactlyOnce) {
  ThreadPool pool(4);
  FanOutOptions opts;
  opts.threads = 4;
  constexpr size_t kItems = 500;
  std::vector<std::atomic<int>> hits(kItems);
  ASSERT_OK(RunMorsels(pool, kItems, opts, [&](const Morsel& m) {
    EXPECT_LT(m.worker, 4u);
    for (size_t i = m.begin; i < m.end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
    return Status::OK();
  }));
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(RunMorselsTest, ParallelUsesDistinctWorkerSlots) {
  ThreadPool pool(4);
  FanOutOptions opts;
  opts.threads = 4;
  std::mutex mu;
  std::set<size_t> workers;
  ASSERT_OK(RunMorsels(pool, 64, opts, [&](const Morsel& m) {
    // A short stall makes it overwhelmingly likely helpers claim morsels.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    workers.insert(m.worker);
    return Status::OK();
  }));
  // Worker slot 0 (the caller) always participates; with 4 helpers and a
  // stalling body at least one helper should have claimed work too.
  EXPECT_TRUE(workers.count(0));
  EXPECT_GE(workers.size(), 2u);
}

TEST(RunMorselsTest, ParallelErrorIsLowestFailingMorsel) {
  ThreadPool pool(4);
  FanOutOptions opts;
  opts.threads = 4;
  // Every morsel from index 2 on fails with a message naming its index; the
  // serial-equivalent error is the lowest failing one.
  for (int round = 0; round < 20; ++round) {
    Status st = RunMorsels(pool, 64, opts, [&](const Morsel& m) {
      if (m.index >= 2) {
        return Status::Internal("fail at " + std::to_string(m.index));
      }
      return Status::OK();
    });
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(), "fail at 2");
  }
}

TEST(RunMorselsTest, ParallelSkipsPastKnownFailure) {
  ThreadPool pool(4);
  FanOutOptions opts;
  opts.threads = 4;
  // Once morsel 0's failure is recorded, higher-indexed morsels may be
  // skipped — but morsel 0 itself always runs and its error always wins.
  std::atomic<size_t> ran{0};
  Status st = RunMorsels(pool, 10000, opts, [&](const Morsel& m) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (m.index == 0) return Status::InvalidArgument("first");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "first");
  EXPECT_GE(ran.load(), 1u);
}

}  // namespace
}  // namespace aqua::exec
