#include "exec/physical_op.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/compile.h"
#include "obs/digest.h"
#include "exec/thread_pool.h"
#include "query/builder.h"
#include "query/executor.h"
#include "test_util.h"

namespace aqua {
namespace {

class PhysicalOpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(db_.store()));
    atom_ = MakeInterningAtomFn(&db_.store(), "Item", "name");
    label_ = AttrLabelFn(&db_.store(), "name");
    ASSERT_OK_AND_ASSIGN(Tree t,
                         ParseTreeLiteral("r(b(d e) x(b(d f)))", atom_));
    ASSERT_OK(db_.RegisterTree("t", std::move(t)));
    ASSERT_OK_AND_ASSIGN(List l, ParseListLiteral("[a x a y]", atom_));
    ASSERT_OK(db_.RegisterList("l", std::move(l)));
  }

  TreePatternRef TP(const std::string& p) {
    auto tp = ParseTreePattern(p);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    auto lp = ParseListPattern(p);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }
  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }
  std::string Str(const Datum& d) { return d.ToString(label_); }

  /// A plan whose fan-out input is a set of two trees (the two `b(d ?)`
  /// match pieces), so TreeSelect maps over a real forest.
  PlanRef ForestFanOut() {
    return Q::TreeSelect(Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)")),
                         P("name != \"zzz\""));
  }

  Database db_;
  AtomFn atom_;
  LabelFn label_;
};

TEST_F(PhysicalOpTest, CompileNeverReturnsNull) {
  auto op = exec::Compile(nullptr);
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->plan(), nullptr);

  exec::ExecContext ctx;
  ctx.db = &db_;
  auto r = op->Run(ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  // The null op does not count as an evaluated operator (interpreter parity).
  EXPECT_EQ(ctx.operators_evaluated.load(), 0u);
}

TEST_F(PhysicalOpTest, CompiledTreeMirrorsPlanShape) {
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  auto op = exec::Compile(plan);
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->plan(), plan.get());
  ASSERT_EQ(op->children().size(), 1u);
  EXPECT_EQ(op->children()[0]->plan(), plan->children[0].get());
}

TEST_F(PhysicalOpTest, RunRecordsPerOpMeasurements) {
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  auto op = exec::Compile(plan);
  exec::ExecContext ctx;
  ctx.db = &db_;
  ASSERT_OK(op->Prepare(ctx));
  ASSERT_OK_AND_ASSIGN(Datum out, op->Run(ctx));
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(op->invocations(), 1u);
  EXPECT_EQ(op->last_output_size(), 2u);
  EXPECT_EQ(op->children()[0]->invocations(), 1u);
  EXPECT_EQ(ctx.operators_evaluated.load(), 2u);
}

// Regression: every ExecStats field and the per-op tables must be reset at
// the top of Execute, so stats always describe the *last* call only.
TEST_F(PhysicalOpTest, ExecStatsResetBetweenExecutes) {
  Executor exec(&db_);
  auto tree_plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  ASSERT_OK(exec.Execute(tree_plan).status());
  EXPECT_GT(exec.stats().operators_evaluated, 0u);
  EXPECT_GT(exec.stats().trees_processed, 0u);
  EXPECT_EQ(exec.stats().lists_processed, 0u);

  // A list-only query afterwards must not inherit the tree counters.
  auto list_plan = Q::ListSelect(Q::ScanList("l"), P("name == \"a\""));
  ASSERT_OK(exec.Execute(list_plan).status());
  EXPECT_EQ(exec.stats().trees_processed, 0u);
  EXPECT_GT(exec.stats().lists_processed, 0u);
  EXPECT_EQ(exec.stats().index_probes, 0u);
  EXPECT_EQ(exec.stats().index_candidates, 0u);

  // Per-op stats follow the same rule: the old plan now renders unexecuted.
  std::string analyzed = exec.ExplainAnalyze(tree_plan);
  EXPECT_NE(analyzed.find("(not executed)"), std::string::npos);

  // A failing Execute also resets: no stale counts survive the error.
  ASSERT_FALSE(exec.Execute(Q::ScanTree("missing")).ok());
  EXPECT_EQ(exec.stats().lists_processed, 0u);
  EXPECT_EQ(exec.stats().trees_processed, 0u);
}

TEST_F(PhysicalOpTest, ParallelFanOutMatchesSerialByteForByte) {
  auto plan = ForestFanOut();
  Executor serial(&db_);
  serial.set_threads(1);
  ASSERT_OK_AND_ASSIGN(Datum want, serial.Execute(plan));

  Executor parallel(&db_);
  parallel.set_threads(4);
  ASSERT_OK_AND_ASSIGN(Datum got, parallel.Execute(plan));
  EXPECT_EQ(Str(got), Str(want));
}

TEST_F(PhysicalOpTest, ParallelFanOutEmitsMorselSpans) {
  Executor exec(&db_);
  exec.set_threads(4);
  exec.set_trace_enabled(true);
  ASSERT_OK(exec.Execute(ForestFanOut()).status());

  // The fan-out (TreeSelect over 2 match pieces) runs morsel-parallel; its
  // per-morsel span buffers are stitched under the TreeSelect span.
  const auto& spans = exec.trace().spans();
  size_t select_idx = obs::SpanRecord::kNoParent;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "TreeSelect") select_idx = i;
  }
  ASSERT_NE(select_idx, obs::SpanRecord::kNoParent);
  size_t morsels = 0;
  for (const auto& s : spans) {
    if (s.name == "Morsel") {
      ++morsels;
      EXPECT_EQ(s.parent, select_idx);
    }
  }
  EXPECT_GE(morsels, 2u);

#ifndef AQUA_OBS_DISABLED
  // Morsel metrics surface in the per-execute counter delta (the count
  // macros expand to nothing when observability is compiled out).
  const obs::Snapshot& delta = exec.last_counters();
  EXPECT_GE(delta.CounterValue("exec.tasks_run"), 2u);
  bool saw_morsel_ms = false;
  for (const auto& h : delta.histograms) {
    if (h.name == "exec.morsel_ms" && h.count > 0) saw_morsel_ms = true;
  }
  EXPECT_TRUE(saw_morsel_ms);
#endif
}

TEST_F(PhysicalOpTest, SerialExecutionEmitsNoMorselSpans) {
  Executor exec(&db_);
  exec.set_threads(1);
  exec.set_trace_enabled(true);
  ASSERT_OK(exec.Execute(ForestFanOut()).status());
  for (const auto& s : exec.trace().spans()) {
    EXPECT_NE(s.name, "Morsel");
  }
  EXPECT_EQ(exec.last_counters().CounterValue("exec.tasks_run"), 0u);
}

TEST_F(PhysicalOpTest, ListSubSelectSharesNfaAcrossWorkers) {
  // Nested list sub_select: the inner one produces a set of sublists, the
  // outer fans out over them with one per-worker lazy DFA over a shared
  // search NFA (compiled once in Prepare).
  auto plan = Q::ListSubSelect(Q::ListSubSelect(Q::ScanList("l"), LP("? ?")),
                               LP("a"));
  Executor serial(&db_);
  serial.set_threads(1);
  ASSERT_OK_AND_ASSIGN(Datum want, serial.Execute(plan));
  ASSERT_TRUE(want.is_set());

  Executor parallel(&db_);
  parallel.set_threads(4);
  ASSERT_OK_AND_ASSIGN(Datum got, parallel.Execute(plan));
  EXPECT_EQ(Str(got), Str(want));
}

TEST_F(PhysicalOpTest, ParallelErrorMatchesSerialError) {
  // Map a tree operator over a set that contains non-tree items: the error
  // text must be the serial one regardless of thread count.
  auto bad = Q::TreeSubSelect(Q::ListSubSelect(Q::ScanList("l"), LP("? ?")),
                              TP("b(d ?)"));
  Executor serial(&db_);
  serial.set_threads(1);
  Status want = serial.Execute(bad).status();
  ASSERT_FALSE(want.ok());

  Executor parallel(&db_);
  parallel.set_threads(4);
  Status got = parallel.Execute(bad).status();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.ToString(), want.ToString());
}

TEST_F(PhysicalOpTest, ExplainAnalyzeCountsOncePerExecute) {
  // Ops are compiled fresh per Execute, so invocation counts never
  // accumulate across calls.
  Executor exec(&db_);
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  ASSERT_OK(exec.Execute(plan).status());
  ASSERT_OK(exec.Execute(plan).status());
  std::string analyzed = exec.ExplainAnalyze(plan);
  EXPECT_NE(analyzed.find("(1 call,"), std::string::npos);
  EXPECT_EQ(analyzed.find("2 calls"), std::string::npos);
}

TEST_F(PhysicalOpTest, CollectOpSamplesWalksPreorderWithStablePaths) {
  // select(sub_select(scan)) -> paths 0, 0.0, 0.0.0 in preorder.
  auto plan = ForestFanOut();
  auto op = exec::Compile(plan);
  exec::ExecContext ctx;
  ctx.db = &db_;
  ASSERT_OK(op->Run(ctx).status());

  std::vector<obs::OpSample> samples;
  exec::CollectOpSamples(op, &samples);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].path, "0");
  EXPECT_EQ(samples[0].op_name, std::string("TreeSelect"));
  EXPECT_EQ(samples[1].path, "0.0");
  EXPECT_EQ(samples[1].op_name, std::string("TreeSubSelect"));
  EXPECT_EQ(samples[2].path, "0.0.0");
  EXPECT_EQ(samples[2].op_name, std::string("ScanTree"));
  // Each sample's node fingerprint is the fingerprint of its subplan.
  EXPECT_EQ(samples[0].node_fp, obs::FingerprintPlan(plan));
  EXPECT_EQ(samples[1].node_fp, obs::FingerprintPlan(plan->children[0]));
  // in_rows chains outputs: scan emits 8 nodes, sub_select keeps 2 trees.
  EXPECT_EQ(samples[2].out_rows, 8u);
  EXPECT_EQ(samples[1].in_rows, 8u);
  EXPECT_EQ(samples[1].out_rows, 2u);
  EXPECT_EQ(samples[1].in_rows, samples[2].out_rows);
  EXPECT_EQ(samples[0].in_rows, samples[1].out_rows);
  EXPECT_EQ(samples[0].calls, 1u);
  EXPECT_EQ(samples[0].probes, 0u);  // nothing indexed in this plan
}

TEST_F(PhysicalOpTest, CollectOpSamplesSkipsNeverRanOps) {
  auto plan = Q::TreeSubSelect(Q::ScanTree("t"), TP("b(d ?)"));
  auto op = exec::Compile(plan);
  std::vector<obs::OpSample> samples;
  exec::CollectOpSamples(op, &samples);
  EXPECT_TRUE(samples.empty());  // compiled but never executed
}

TEST_F(PhysicalOpTest, IndexedProbeAttributesCandidatesToItsOp) {
  ASSERT_OK(db_.CreateIndex("t", "name"));
  auto tp = TP("{name == \"b\"}(?*)");
  auto plan = Q::IndexedSubSelect("t", "name", P("name == \"b\""), tp);
  auto op = exec::Compile(plan);
  exec::ExecContext ctx;
  ctx.db = &db_;
  ASSERT_OK(op->Run(ctx).status());

  std::vector<obs::OpSample> samples;
  exec::CollectOpSamples(op, &samples);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_GE(samples[0].probes, 1u);
  EXPECT_EQ(samples[0].candidates, 2u);   // two b-labeled anchors
  EXPECT_EQ(samples[0].in_rows, 2u);      // probe consumes its candidates
}

}  // namespace
}  // namespace aqua
