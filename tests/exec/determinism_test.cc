// Serial-vs-parallel determinism: every query must produce byte-identical
// results at any thread count. The morsel fan-out partitions items in order
// and merges per-item results in that same order (see exec/morsel.h), so
// `set_threads(16)` is observationally equivalent to the serial
// interpreter — this suite pins that contract over the paper's workloads,
// including §4 rewrite pairs (original vs optimized plan).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/builder.h"
#include "query/executor.h"
#include "query/rewriter.h"
#include "test_util.h"

namespace aqua {
namespace {

const size_t kThreadCounts[] = {1, 4, 16};

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(db_.store()));
    ASSERT_OK(RegisterPersonType(db_.store()));
    label_ = AttrLabelFn(&db_.store(), "name");

    FamilyTreeSpec family;
    family.num_people = 200;
    family.seed = 7;
    ASSERT_OK_AND_ASSIGN(Tree f, MakeFamilyTree(db_.store(), family));
    ASSERT_OK(db_.RegisterTree("family", std::move(f)));

    RandomTreeSpec rand;
    rand.num_nodes = 800;
    rand.seed = 11;
    ASSERT_OK_AND_ASSIGN(Tree r, MakeRandomTree(db_.store(), rand));
    ASSERT_OK(db_.RegisterTree("rand", std::move(r)));
    ASSERT_OK(db_.CreateIndex("rand", "name"));

    ASSERT_OK_AND_ASSIGN(
        List items,
        MakeRandomList(db_.store(), 200, {"a", "b", "c", "d"}, 13));
    ASSERT_OK(db_.RegisterList("items", std::move(items)));
  }

  TreePatternRef TP(const std::string& p) {
    auto tp = ParseTreePattern(p);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    auto lp = ParseListPattern(p);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }
  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }

  /// Executes `plan` at the given thread count and dumps the result.
  Result<std::string> Dump(const PlanRef& plan, size_t threads) {
    Executor exec(&db_);
    exec.set_threads(threads);
    AQUA_ASSIGN_OR_RETURN(Datum out, exec.Execute(plan));
    return out.ToString(label_);
  }

  /// Asserts the plan's output is identical at every thread count.
  void CheckDeterministic(const PlanRef& plan, const std::string& what) {
    ASSERT_OK_AND_ASSIGN(std::string want, Dump(plan, 1));
    for (size_t threads : kThreadCounts) {
      ASSERT_OK_AND_ASSIGN(std::string got, Dump(plan, threads));
      EXPECT_EQ(got, want) << what << " diverged at threads=" << threads;
    }
  }

  Database db_;
  LabelFn label_;
};

TEST_F(DeterminismTest, FamilyTreeSubSelect) {
  // The paper's Figure 4 query: Brazilians with an American child.
  auto plan = Q::TreeSubSelect(
      Q::ScanTree("family"),
      TP("{citizen == \"Brazil\"}(?* {citizen == \"USA\"} ?*)"));
  CheckDeterministic(plan, "family sub_select");
}

TEST_F(DeterminismTest, ForestFanOutSelect) {
  // select over a sub_select forest: the canonical parallel fan-out.
  auto plan = Q::TreeSelect(
      Q::TreeSubSelect(Q::ScanTree("rand"),
                       TP("{name == \"a\"}(?* {name == \"b\"} ?*)")),
      P("val < 90"));
  CheckDeterministic(plan, "forest select");
}

TEST_F(DeterminismTest, NestedTreeSubSelect) {
  // sub_select over a sub_select forest: fan-out feeding fan-out.
  auto plan = Q::TreeSubSelect(
      Q::TreeSubSelect(Q::ScanTree("rand"),
                       TP("{name == \"a\"}(?* ? ?*)")),
      TP("{name == \"b\"}"));
  CheckDeterministic(plan, "nested sub_select");
}

TEST_F(DeterminismTest, NestedListSubSelect) {
  // The outer fan-out exercises the shared-NFA / per-worker-DFA prefilter.
  auto plan = Q::ListSubSelect(
      Q::ListSubSelect(Q::ScanList("items"), LP("a ?* b")), LP("a ? b"));
  CheckDeterministic(plan, "nested list sub_select");
}

TEST_F(DeterminismTest, ListSelectOverSublists) {
  auto plan = Q::ListSelect(
      Q::ListSubSelect(Q::ScanList("items"), LP("a ? ?")),
      P("name != \"d\""));
  CheckDeterministic(plan, "list select over sublists");
}

TEST_F(DeterminismTest, RewritePairAgreesAtEveryThreadCount) {
  // §4 rewrite pair: the logical plan and its optimizer output (the indexed
  // physical form on the indexed collection) must agree with each other and
  // with themselves across thread counts.
  auto logical = Q::TreeSubSelect(
      Q::ScanTree("rand"), TP("{name == \"a\"}(?* {name == \"b\"} ?*)"));
  Rewriter rewriter(&db_);
  rewriter.AddDefaultRules();
  ASSERT_OK_AND_ASSIGN(PlanRef optimized, rewriter.Optimize(logical));

  ASSERT_OK_AND_ASSIGN(std::string want, Dump(logical, 1));
  for (size_t threads : kThreadCounts) {
    ASSERT_OK_AND_ASSIGN(std::string got_logical, Dump(logical, threads));
    ASSERT_OK_AND_ASSIGN(std::string got_opt, Dump(optimized, threads));
    EXPECT_EQ(got_logical, want) << "logical plan at threads=" << threads;
    EXPECT_EQ(got_opt, want) << "optimized plan at threads=" << threads;
  }
}

TEST_F(DeterminismTest, StatsCountersAreThreadCountInvariant) {
  // Success-path ExecStats are exact counts of work items, independent of
  // how morsels were scheduled.
  auto plan = Q::TreeSelect(
      Q::TreeSubSelect(Q::ScanTree("rand"),
                       TP("{name == \"a\"}(?* ? ?*)")),
      P("val < 50"));
  Executor serial(&db_);
  serial.set_threads(1);
  ASSERT_OK(serial.Execute(plan).status());
  ExecStats want = serial.stats();

  for (size_t threads : kThreadCounts) {
    Executor exec(&db_);
    exec.set_threads(threads);
    ASSERT_OK(exec.Execute(plan).status());
    EXPECT_EQ(exec.stats().operators_evaluated, want.operators_evaluated);
    EXPECT_EQ(exec.stats().trees_processed, want.trees_processed);
    EXPECT_EQ(exec.stats().lists_processed, want.lists_processed);
  }
}

#ifndef AQUA_OBS_DISABLED
TEST_F(DeterminismTest, StatsWarmedPlanIsByteIdenticalAtEveryThreadCount) {
  // Learned statistics may change WHICH plan the rewriter picks — never
  // WHAT it returns. Warm the warehouse with real executions, re-optimize,
  // and pin the warmed plan's output against the logical plan's serial
  // result at every thread count.
  PlanRef logical = Q::TreeSubSelect(
      Q::ScanTree("rand"), TP("{name == \"a\"}(?* {name == \"b\"} ?*)"));
  obs::StatsWarehouse::Global().Reset();
  Rewriter cold(&db_, &obs::StatsWarehouse::Global());
  cold.AddDefaultRules();
  ASSERT_OK_AND_ASSIGN(PlanRef cold_plan, cold.Optimize(logical));
  ASSERT_OK_AND_ASSIGN(std::string want, Dump(logical, 1));
  for (int i = 0; i < 3; ++i) {  // past kMinConfidence for both shapes
    ASSERT_OK(Dump(logical, 1).status());
    ASSERT_OK(Dump(cold_plan, 1).status());
  }
  Rewriter warm(&db_, &obs::StatsWarehouse::Global());
  warm.AddDefaultRules();
  ASSERT_OK_AND_ASSIGN(PlanRef warm_plan, warm.Optimize(logical));
  for (size_t threads : kThreadCounts) {
    ASSERT_OK_AND_ASSIGN(std::string got, Dump(warm_plan, threads));
    EXPECT_EQ(got, want) << "stats-warmed plan diverged at threads="
                         << threads;
  }
  obs::StatsWarehouse::Global().Reset();
}
#endif  // AQUA_OBS_DISABLED

}  // namespace
}  // namespace aqua
