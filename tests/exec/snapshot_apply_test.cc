// Store-mutating applies under snapshot isolation: the certified parallel
// path (DeltaTxn per item + order-stable CommitBatch) must leave both the
// query result and the whole object store byte-identical to serial
// execution at every thread count — including the oids of objects the
// function creates. Each run gets a fresh, deterministically seeded
// database so serial and parallel runs mutate from the same starting state.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/compile.h"
#include "query/builder.h"
#include "query/executor.h"
#include "test_util.h"

namespace aqua {
namespace {

const size_t kThreadCounts[] = {1, 4, 16};

/// Oid-exact printer: byte equality of dumps implies the parallel path
/// allocated exactly the oids serial evaluation would have.
LabelFn OidLabel() {
  return [](Oid oid) { return "#" + std::to_string(oid.value); };
}

/// Every object in creation order, types and attribute values spelled out.
std::string FingerprintStore(const ObjectStore& store) {
  std::string out;
  for (uint64_t o = 1; o <= store.num_objects(); ++o) {
    auto obj = store.Get(Oid(o));
    if (!obj.ok()) return "error: " + obj.status().ToString();
    out += "#" + std::to_string(o) + " t" + std::to_string((*obj)->type());
    for (const Value& v : (*obj)->attrs()) out += " " + v.ToString();
    out += "\n";
  }
  return out;
}

class SnapshotApplyTest : public ::testing::Test {
 protected:
  /// The paper workloads every run starts from, seeded identically.
  static Status Populate(Database& db) {
    AQUA_RETURN_IF_ERROR(RegisterItemType(db.store()));
    AQUA_RETURN_IF_ERROR(RegisterPersonType(db.store()));

    FamilyTreeSpec family;
    family.num_people = 150;
    family.seed = 7;
    AQUA_ASSIGN_OR_RETURN(Tree f, MakeFamilyTree(db.store(), family));
    AQUA_RETURN_IF_ERROR(db.RegisterTree("family", std::move(f)));

    RandomTreeSpec rand;
    rand.num_nodes = 500;
    rand.seed = 11;
    AQUA_ASSIGN_OR_RETURN(Tree r, MakeRandomTree(db.store(), rand));
    AQUA_RETURN_IF_ERROR(db.RegisterTree("rand", std::move(r)));

    AQUA_ASSIGN_OR_RETURN(
        List items,
        MakeRandomList(db.store(), 150, {"a", "b", "c", "d"}, 13));
    return db.RegisterList("items", std::move(items));
  }

  struct RunOutcome {
    std::string result;  ///< oid-exact dump of the query output
    std::string store;   ///< full post-run store fingerprint
    uint64_t commits = 0;  ///< exec.apply_snapshot_commits this execute
  };

  Result<RunOutcome> Run(const PlanRef& plan, size_t threads) {
    Database db;
    AQUA_RETURN_IF_ERROR(Populate(db));
    Executor exec(&db);
    exec.set_threads(threads);
    AQUA_ASSIGN_OR_RETURN(Datum out, exec.Execute(plan));
    RunOutcome o;
    o.result = out.ToString(OidLabel());
    o.store = FingerprintStore(db.store());
    o.commits =
        exec.last_counters().CounterValue("exec.apply_snapshot_commits");
    return o;
  }

  /// Serial is ground truth; every thread count must reproduce both the
  /// result bytes and the store bytes.
  void CheckMutatingDeterministic(const PlanRef& plan,
                                  const std::string& what) {
    ASSERT_OK_AND_ASSIGN(RunOutcome want, Run(plan, 1));
    for (size_t threads : kThreadCounts) {
      ASSERT_OK_AND_ASSIGN(RunOutcome got, Run(plan, threads));
      EXPECT_EQ(got.result, want.result)
          << what << ": result diverged at threads=" << threads;
      EXPECT_EQ(got.store, want.store)
          << what << ": store state diverged at threads=" << threads;
#ifndef AQUA_OBS_DISABLED
      // Counter sites compile out with the obs layer; the byte-identity
      // checks above still cover the no-obs build.
      EXPECT_EQ(got.commits, 1u)
          << what << ": expected one batch commit at threads=" << threads;
#endif
    }
  }

  TreePatternRef TP(const std::string& p) {
    auto tp = ParseTreePattern(p);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    auto lp = ParseListPattern(p);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }
  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }
};

TEST_F(SnapshotApplyTest, UpdateOnlyTreeApplyByteIdentical) {
  // `update` creates a fresh copy per cell, so the result trees are full of
  // newly allocated oids — the hardest case for oid-sequence identity.
  auto plan = Q::TreeApplyExpr(
      Q::TreeSubSelect(Q::ScanTree("rand"),
                       TP("{name == \"a\"}(?* {name == \"b\"} ?*)")),
      FnExpr::Update({{"val", Value::Int(0)}}));
  ASSERT_TRUE(exec::ApplySnapshotWriteCertified(plan));
  ASSERT_FALSE(exec::ApplyParallelCertified(plan));
  CheckMutatingDeterministic(plan, "update-only tree apply");
}

TEST_F(SnapshotApplyTest, GuardedUpdateDisjointAttrsByteIdentical) {
  // Guard reads `citizen`, the update writes nothing in place (fresh
  // copies only): disjoint, so the snapshot-write certification holds.
  auto plan = Q::TreeApplyExpr(
      Q::TreeSubSelect(
          Q::ScanTree("family"),
          TP("{citizen == \"Brazil\"}(?* {citizen == \"USA\"} ?*)")),
      FnExpr::Choose(P("citizen == \"USA\""),
                     FnExpr::Update({{"education", Value::String("Abroad")}}),
                     nullptr));
  ASSERT_TRUE(exec::ApplySnapshotWriteCertified(plan));
  CheckMutatingDeterministic(plan, "guarded disjoint update");
}

TEST_F(SnapshotApplyTest, GuardedSetAttrDisjointByteIdentical) {
  // In-place writes to `val` with a guard over `name`: the in-place write
  // set and read set are disjoint, so item-order folding is serial-exact.
  auto plan = Q::TreeApplyExpr(
      Q::TreeSubSelect(Q::ScanTree("rand"), TP("{name == \"a\"}(?*)")),
      FnExpr::Choose(P("name == \"c\""),
                     FnExpr::SetAttr({{"val", Value::Int(-5)}}), nullptr));
  ASSERT_TRUE(exec::ApplySnapshotWriteCertified(plan));
  CheckMutatingDeterministic(plan, "guarded disjoint set_attr");
}

TEST_F(SnapshotApplyTest, UpdateOnlyListApplyByteIdentical) {
  auto plan = Q::ListApplyExpr(
      Q::ListSubSelect(Q::ScanList("items"), LP("a ?* b")),
      FnExpr::Update({{"val", Value::Int(1)}}));
  ASSERT_TRUE(exec::ApplySnapshotWriteCertified(plan));
  CheckMutatingDeterministic(plan, "update-only list apply");
}

TEST_F(SnapshotApplyTest, SplitByteIdenticalAcrossThreads) {
  // `split` runs serially against the query snapshot, but its output must
  // still be byte-stable across thread settings.
  SplitFn tuple3 = [](const Tree& x, const Tree& y,
                      const std::vector<Tree>& z) -> Result<Datum> {
    std::vector<Datum> zs;
    for (const Tree& t : z) zs.push_back(Datum::Of(t));
    return Datum::Tuple(
        {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
  };
  auto plan = Q::TreeSplit(Q::ScanTree("rand"),
                           TP("{name == \"a\"}(?* {name == \"b\"} ?*)"),
                           tuple3);
  ASSERT_OK_AND_ASSIGN(RunOutcome want, Run(plan, 1));
  for (size_t threads : kThreadCounts) {
    ASSERT_OK_AND_ASSIGN(RunOutcome got, Run(plan, threads));
    EXPECT_EQ(got.result, want.result)
        << "split diverged at threads=" << threads;
    EXPECT_EQ(got.store, want.store);
  }
}

TEST_F(SnapshotApplyTest, ListSplitByteIdenticalAcrossThreads) {
  ListSplitFn tuple3 = [](const List& x, const List& y,
                          const std::vector<List>& z) -> Result<Datum> {
    std::vector<Datum> zs;
    for (const List& l : z) zs.push_back(Datum::Of(l));
    return Datum::Tuple(
        {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
  };
  auto plan = Q::ListSplit(Q::ScanList("items"), LP("a ?* b"), tuple3);
  ASSERT_OK_AND_ASSIGN(RunOutcome want, Run(plan, 1));
  for (size_t threads : kThreadCounts) {
    ASSERT_OK_AND_ASSIGN(RunOutcome got, Run(plan, threads));
    EXPECT_EQ(got.result, want.result)
        << "list split diverged at threads=" << threads;
  }
}

TEST_F(SnapshotApplyTest, CertifiedApplyIsAllOrNothing) {
  // A certified apply whose function fails on some items must not commit
  // anything: deltas from the items that succeeded are discarded. (This is
  // a documented divergence from the serial path, which mutates the head
  // as it goes and leaves partial effects behind on error.)
  Database db;
  ASSERT_OK(Populate(db));
  std::string before = FingerprintStore(db.store());
  uint64_t epoch_before = db.store().epoch();

  // Writing a string into the int attr `val` fails eager validation at
  // evaluation time, but only on cells the guard accepts.
  auto plan = Q::TreeApplyExpr(
      Q::TreeSubSelect(Q::ScanTree("rand"),
                       TP("{name == \"a\"}(?* {name == \"b\"} ?*)")),
      FnExpr::Choose(P("name == \"b\""),
                     FnExpr::SetAttr({{"val", Value::String("boom")}}),
                     nullptr));
  ASSERT_TRUE(exec::ApplySnapshotWriteCertified(plan));

  for (size_t threads : kThreadCounts) {
    Executor exec(&db);
    exec.set_threads(threads);
    EXPECT_FALSE(exec.Execute(plan).ok());
    EXPECT_EQ(
        exec.last_counters().CounterValue("exec.apply_snapshot_commits"), 0u);
  }
  EXPECT_EQ(FingerprintStore(db.store()), before);
  EXPECT_EQ(db.store().epoch(), epoch_before);
}

TEST_F(SnapshotApplyTest, SuccessfulMutatingApplyBumpsOneEpoch) {
  Database db;
  ASSERT_OK(Populate(db));
  auto plan = Q::TreeApplyExpr(
      Q::TreeSubSelect(Q::ScanTree("rand"), TP("{name == \"a\"}(?*)")),
      FnExpr::Update({{"val", Value::Int(0)}}));

  Executor exec(&db);
  exec.set_threads(4);
  uint64_t epoch_before = db.store().epoch();
  ASSERT_OK(exec.Execute(plan).status());
  // One batch commit, one epoch: every object the apply created is stamped
  // into a single new version.
  EXPECT_EQ(db.store().epoch(), epoch_before + 1);
#ifndef AQUA_OBS_DISABLED
  EXPECT_EQ(
      exec.last_counters().CounterValue("exec.apply_snapshot_commits"), 1u);
#endif
}

// The query-level storm scripts/snapshot_storm.sh drives under TSan:
// certified mutating applies commit new store versions while concurrent
// read-only queries answer from whatever epoch they pinned. Update-only
// writes never touch pre-existing objects, so every reader must see the
// exact same result bytes no matter how many commits land mid-query.
TEST_F(SnapshotApplyTest, ConcurrentQueryStorm) {
  Database db;
  ASSERT_OK(Populate(db));

  auto read_plan = Q::TreeSubSelect(
      Q::ScanTree("rand"), TP("{name == \"a\"}(?* {name == \"b\"} ?*)"));
  auto write_plan = Q::TreeApplyExpr(
      Q::TreeSubSelect(Q::ScanTree("rand"), TP("{name == \"a\"}(?*)")),
      FnExpr::Update({{"val", Value::Int(0)}}));
  ASSERT_TRUE(exec::ApplySnapshotWriteCertified(write_plan));

  std::string want;
  {
    Executor exec(&db);
    ASSERT_OK_AND_ASSIGN(Datum out, exec.Execute(read_plan));
    want = out.ToString(OidLabel());
  }

  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};
  std::thread writer([&] {
    for (int i = 0; i < 6; ++i) {
      Executor exec(&db);
      exec.set_threads(2);
      if (!exec.Execute(write_plan).ok()) ++failures;
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load()) {
        Executor exec(&db);
        exec.set_threads(2);
        auto out = exec.Execute(read_plan);
        if (!out.ok() || out->ToString(OidLabel()) != want) ++failures;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace aqua
