// Certified parallel apply: an `apply` whose function the effect analysis
// proves read-only fans out morsel-parallel, and its output must stay
// byte-identical to serial execution at every thread count (the same
// contract tests/exec/determinism_test pins for the select operators).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/compile.h"
#include "lint/effects.h"
#include "query/builder.h"
#include "query/executor.h"
#include "test_util.h"

namespace aqua {
namespace {

const size_t kThreadCounts[] = {1, 4, 16};

class ApplyParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(db_.store()));
    ASSERT_OK(RegisterPersonType(db_.store()));
    label_ = AttrLabelFn(&db_.store(), "name");

    FamilyTreeSpec family;
    family.num_people = 200;
    family.seed = 7;
    ASSERT_OK_AND_ASSIGN(Tree f, MakeFamilyTree(db_.store(), family));
    ASSERT_OK(db_.RegisterTree("family", std::move(f)));

    RandomTreeSpec rand;
    rand.num_nodes = 800;
    rand.seed = 11;
    ASSERT_OK_AND_ASSIGN(Tree r, MakeRandomTree(db_.store(), rand));
    ASSERT_OK(db_.RegisterTree("rand", std::move(r)));

    ASSERT_OK_AND_ASSIGN(
        List items,
        MakeRandomList(db_.store(), 200, {"a", "b", "c", "d"}, 13));
    ASSERT_OK(db_.RegisterList("items", std::move(items)));

    // A marker object certified const-applies map cells onto.
    ASSERT_OK_AND_ASSIGN(
        marker_,
        db_.store().Create("Item", {{"name", Value::String("MARK")},
                                    {"val", Value::Int(-1)}}));
  }

  TreePatternRef TP(const std::string& p) {
    auto tp = ParseTreePattern(p);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    auto lp = ParseListPattern(p);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }
  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }

  Result<std::string> Dump(const PlanRef& plan, size_t threads) {
    Executor exec(&db_);
    exec.set_threads(threads);
    AQUA_ASSIGN_OR_RETURN(Datum out, exec.Execute(plan));
    return out.ToString(label_);
  }

  void CheckDeterministic(const PlanRef& plan, const std::string& what) {
    ASSERT_OK_AND_ASSIGN(std::string want, Dump(plan, 1));
    for (size_t threads : kThreadCounts) {
      ASSERT_OK_AND_ASSIGN(std::string got, Dump(plan, threads));
      EXPECT_EQ(got, want) << what << " diverged at threads=" << threads;
    }
  }

  /// The read-only expression the certified tests run: mark every node the
  /// guard accepts, keep the rest.
  FnExprRef MarkIf(const std::string& pred) {
    return FnExpr::Choose(P(pred), FnExpr::Const(marker_), nullptr);
  }

  Database db_;
  LabelFn label_;
  Oid marker_;
};

TEST_F(ApplyParallelTest, CertificationPredicate) {
  auto forest = Q::TreeSubSelect(Q::ScanTree("rand"), TP("{name == \"a\"}"));
  // Read-only expressions certify.
  EXPECT_TRUE(exec::ApplyParallelCertified(
      Q::TreeApplyExpr(forest, MarkIf("val > 50"))));
  EXPECT_TRUE(exec::ApplyParallelCertified(
      Q::TreeApplyExpr(forest, FnExpr::Identity())));
  EXPECT_TRUE(exec::ApplyParallelCertified(
      Q::ListApplyExpr(Q::ScanList("items"), FnExpr::Const(marker_))));
  // Store-mutating expressions and bare std::functions do not.
  EXPECT_FALSE(exec::ApplyParallelCertified(Q::TreeApplyExpr(
      forest, FnExpr::Update({{"val", Value::Int(0)}}))));
  EXPECT_FALSE(exec::ApplyParallelCertified(Q::TreeApply(
      forest, [](ObjectStore&, Oid oid) -> Result<Oid> { return oid; })));
  // Non-apply operators never certify.
  EXPECT_FALSE(exec::ApplyParallelCertified(forest));
  EXPECT_FALSE(exec::ApplyParallelCertified(nullptr));
}

TEST_F(ApplyParallelTest, CertifiedTreeApplyOverFamilyForest) {
  // The paper's Figure 4 fan-out with a certified apply on top: mark the
  // American members of every matching piece.
  auto plan = Q::TreeApplyExpr(
      Q::TreeSubSelect(
          Q::ScanTree("family"),
          TP("{citizen == \"Brazil\"}(?* {citizen == \"USA\"} ?*)")),
      MarkIf("citizen == \"USA\""));
  ASSERT_TRUE(exec::ApplyParallelCertified(plan));
  CheckDeterministic(plan, "certified tree apply");
}

TEST_F(ApplyParallelTest, CertifiedTreeApplyOverLargeForest) {
  auto plan = Q::TreeApplyExpr(
      Q::TreeSubSelect(Q::ScanTree("rand"),
                       TP("{name == \"a\"}(?* {name == \"b\"} ?*)")),
      MarkIf("val < 40"));
  ASSERT_TRUE(exec::ApplyParallelCertified(plan));
  CheckDeterministic(plan, "certified tree apply over rand forest");
}

TEST_F(ApplyParallelTest, CertifiedListApplyOverSublists) {
  auto plan = Q::ListApplyExpr(
      Q::ListSubSelect(Q::ScanList("items"), LP("a ?* b")),
      MarkIf("val > 20"));
  ASSERT_TRUE(exec::ApplyParallelCertified(plan));
  CheckDeterministic(plan, "certified list apply");
}

TEST_F(ApplyParallelTest, CertifiedApplyMatchesOpaqueSerialApply) {
  // The parallel certified path must compute exactly what the serial
  // opaque-closure path computes for the same function.
  auto input = Q::TreeSubSelect(
      Q::ScanTree("rand"), TP("{name == \"a\"}(?* {name == \"b\"} ?*)"));
  auto certified = Q::TreeApplyExpr(input, MarkIf("val < 40"));
  Oid marker = marker_;
  ObjectStore* store = &db_.store();
  auto opaque = Q::TreeApply(
      input, [marker, store](ObjectStore&, Oid oid) -> Result<Oid> {
        AQUA_ASSIGN_OR_RETURN(Value val, store->GetAttr(oid, "val"));
        return val.is_int() && val.int_value() < 40 ? marker : oid;
      });
  ASSERT_TRUE(exec::ApplyParallelCertified(certified));
  ASSERT_FALSE(exec::ApplyParallelCertified(opaque));
  ASSERT_OK_AND_ASSIGN(std::string want, Dump(opaque, 1));
  for (size_t threads : kThreadCounts) {
    ASSERT_OK_AND_ASSIGN(std::string got, Dump(certified, threads));
    EXPECT_EQ(got, want) << "certified apply diverged from opaque serial at "
                         << threads << " threads";
  }
}

TEST_F(ApplyParallelTest, OrderDependentApplyStaysDeterministic) {
  // An order-dependent write (the guard reads the attribute set_attr
  // writes in place) fails snapshot-write certification and keeps the
  // serial path — and therefore stays byte-identical trivially.
  auto plan = Q::TreeApplyExpr(
      Q::TreeSubSelect(Q::ScanTree("family"), TP("{citizen == \"Brazil\"}")),
      FnExpr::Choose(P("education == \"College\""),
                     FnExpr::SetAttr({{"education", Value::String("PhD")}}),
                     nullptr));
  ASSERT_FALSE(exec::ApplyParallelCertified(plan));
  ASSERT_FALSE(exec::ApplySnapshotWriteCertified(plan));
  for (size_t threads : kThreadCounts) {
    ASSERT_OK(Dump(plan, threads).status());
  }
}

TEST_F(ApplyParallelTest, EffectSummaryCountsCertifiedApplies) {
  // The outer update-only apply is snapshot-write-certified; the opaque
  // closure stays serial.
  auto plan = Q::TreeApply(
      Q::TreeApplyExpr(
          Q::TreeSubSelect(Q::ScanTree("rand"), TP("{name == \"a\"}")),
          FnExpr::Update({{"val", Value::Int(0)}})),
      [](ObjectStore&, Oid oid) -> Result<Oid> { return oid; });
  lint::EffectSummary summary = lint::AnalyzeEffects(plan);
  EXPECT_EQ(summary.fn_nodes, 2u);
  EXPECT_EQ(summary.certified_applies, 1u);
  EXPECT_EQ(summary.uncertified_applies, 1u);
  EXPECT_EQ(summary.plan_effect, FnEffect::kOpaque);
  std::string s = summary.ToString();
  EXPECT_NE(s.find("parallel=certified-snapshot"), std::string::npos) << s;
  EXPECT_NE(s.find("parallel=serial"), std::string::npos) << s;
}

}  // namespace
}  // namespace aqua
