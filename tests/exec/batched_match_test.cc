#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/compile.h"
#include "query/builder.h"
#include "query/executor.h"
#include "test_util.h"
#include "workload/generators.h"

namespace aqua {
namespace {

// The query-group fast path must be invisible: for every plan in the batch,
// `ExecuteBatch` returns byte-for-byte what a standalone `Execute` of that
// plan returns, at any thread count.
class BatchedMatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(RegisterItemType(db_.store()));
    atom_ = MakeInterningAtomFn(&db_.store(), "Item", "name");
    ASSERT_OK_AND_ASSIGN(
        Tree t, ParseTreeLiteral("r(b(d e) x(b(d f)) b(g))", atom_));
    ASSERT_OK(db_.RegisterTree("t", std::move(t)));
    ASSERT_OK_AND_ASSIGN(List l,
                         ParseListLiteral("[a b c a b d a]", atom_));
    ASSERT_OK(db_.RegisterList("l", std::move(l)));
  }

  TreePatternRef TP(const std::string& p) {
    auto tp = ParseTreePattern(p);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    auto lp = ParseListPattern(p);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }
  PredicateRef P(const std::string& p) {
    auto pred = ParsePredicate(p);
    EXPECT_TRUE(pred.ok()) << pred.status().ToString();
    return pred.ok() ? *pred : nullptr;
  }

  /// Runs the batch and N standalone executes at `threads` and asserts the
  /// results agree plan by plan (values and error statuses both).
  void CheckBatchEqualsSequential(const std::vector<PlanRef>& plans,
                                  size_t threads) {
    Executor batch_exec(&db_);
    batch_exec.set_threads(threads);
    std::vector<Result<Datum>> batched = batch_exec.ExecuteBatch(plans);
    ASSERT_EQ(batched.size(), plans.size());

    // The reference runs serial (threads=1): fan-out merges are
    // order-stable, so any thread count must reproduce this exactly.
    Executor ref_exec(&db_);
    ref_exec.set_threads(1);
    for (size_t j = 0; j < plans.size(); ++j) {
      Result<Datum> expected = ref_exec.Execute(plans[j]);
      ASSERT_EQ(batched[j].ok(), expected.ok())
          << "plan " << j << " at threads=" << threads << ": batched="
          << (batched[j].ok() ? "ok" : batched[j].status().ToString())
          << " expected="
          << (expected.ok() ? "ok" : expected.status().ToString());
      if (expected.ok()) {
        EXPECT_TRUE(batched[j]->Equals(*expected))
            << "plan " << j << " diverged at threads=" << threads;
      } else {
        EXPECT_EQ(batched[j].status().code(), expected.status().code());
        EXPECT_EQ(batched[j].status().message(),
                  expected.status().message());
      }
    }
  }

  Database db_;
  AtomFn atom_;
};

TEST_F(BatchedMatchTest, TreeGroupMatchesSequentialAtAllThreadCounts) {
  PlanRef scan = Q::ScanTree("t");
  std::vector<PlanRef> plans = {
      Q::TreeSubSelect(scan, TP("b(d ?)")), Q::TreeSubSelect(scan, TP("b")),
      Q::TreeSubSelect(scan, TP("x")),
      Q::TreeSubSelect(scan, TP("nomatch")),
      Q::TreeSubSelect(scan, TP("b(d ?)")),  // duplicate pattern
  };
  for (size_t threads : {1u, 4u, 16u}) {
    CheckBatchEqualsSequential(plans, threads);
  }
}

TEST_F(BatchedMatchTest, ListGroupMatchesSequentialAtAllThreadCounts) {
  PlanRef scan = Q::ScanList("l");
  std::vector<PlanRef> plans = {
      Q::ListSubSelect(scan, LP("a b")), Q::ListSubSelect(scan, LP("b c")),
      Q::ListSubSelect(scan, LP("a ?* d")),
      Q::ListSubSelect(scan, LP("zz")),
      Q::ListSubSelect(scan, LP("[[a | b]]+")),
  };
  for (size_t threads : {1u, 4u, 16u}) {
    CheckBatchEqualsSequential(plans, threads);
  }
}

TEST_F(BatchedMatchTest, ForestInputsFanOutPerItem) {
  // sub_select over a select's forest output: the batch shares the forest
  // scan and probes every subtree item once for all patterns.
  PlanRef forest = Q::TreeSelect(Q::ScanTree("t"), P("name != \"r\""));
  std::vector<PlanRef> plans = {
      Q::TreeSubSelect(forest, TP("b(d ?)")),
      Q::TreeSubSelect(forest, TP("d")),
      Q::TreeSubSelect(forest, TP("g")),
  };
  for (size_t threads : {1u, 4u, 16u}) {
    CheckBatchEqualsSequential(plans, threads);
  }
}

TEST_F(BatchedMatchTest, StructurallyEqualChildrenGroupTogether) {
  // Children built separately (distinct PlanRefs, equal structure) must
  // still group — the fingerprint pre-key is verified with PlanEquals.
  std::vector<PlanRef> plans = {
      Q::TreeSubSelect(Q::ScanTree("t"), TP("b")),
      Q::TreeSubSelect(Q::ScanTree("t"), TP("x")),
  };
  ASSERT_NE(plans[0]->children[0].get(), plans[1]->children[0].get());
  auto op = exec::CompileBatch(plans);
  EXPECT_NE(op, nullptr);
  EXPECT_EQ(op->num_plans(), 2u);
  CheckBatchEqualsSequential(plans, 4);
}

TEST_F(BatchedMatchTest, MixedGroupsAndSinglesAllAnswerCorrectly) {
  // Two tree plans over "t", two list plans over "l", one unbatchable
  // select, one lone sub_select over a different input: every result is
  // still positional and standalone-identical.
  PlanRef tscan = Q::ScanTree("t");
  PlanRef lscan = Q::ScanList("l");
  std::vector<PlanRef> plans = {
      Q::TreeSubSelect(tscan, TP("b")),
      Q::ListSubSelect(lscan, LP("a b")),
      Q::TreeSelect(tscan, P("name == \"b\"")),  // not a sub_select
      Q::TreeSubSelect(tscan, TP("x")),
      Q::ListSubSelect(lscan, LP("c a")),
      Q::TreeSubSelect(Q::TreeSelect(tscan, P("name != \"r\"")), TP("d")),
  };
  for (size_t threads : {1u, 4u}) {
    CheckBatchEqualsSequential(plans, threads);
  }
}

TEST_F(BatchedMatchTest, PerPlanErrorsMatchStandaloneExecution) {
  // A null pattern errors inside the matcher for exactly that plan; the
  // healthy plans in the group still answer.
  PlanRef scan = Q::ScanTree("t");
  std::vector<PlanRef> plans = {
      Q::TreeSubSelect(scan, TP("b")),
      Q::TreeSubSelect(scan, nullptr),
      Q::TreeSubSelect(scan, TP("x")),
  };
  CheckBatchEqualsSequential(plans, 4);
}

TEST_F(BatchedMatchTest, SharedInputErrorsAreBatchFatal) {
  PlanRef scan = Q::ScanTree("missing");
  std::vector<PlanRef> plans = {
      Q::TreeSubSelect(scan, TP("b")),
      Q::TreeSubSelect(scan, TP("x")),
  };
  Executor exec(&db_);
  std::vector<Result<Datum>> out = exec.ExecuteBatch(plans);
  ASSERT_EQ(out.size(), 2u);
  for (const auto& r : out) {
    EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
  }
}

TEST_F(BatchedMatchTest, CompileBatchRejectsNonGroups) {
  PlanRef scan = Q::ScanTree("t");
  PlanRef other = Q::ScanList("l");
  // Too few plans.
  EXPECT_EQ(exec::CompileBatch({Q::TreeSubSelect(scan, TP("b"))}), nullptr);
  // Mixed operators.
  EXPECT_EQ(exec::CompileBatch({Q::TreeSubSelect(scan, TP("b")),
                                Q::ListSubSelect(other, LP("a"))}),
            nullptr);
  // Different inputs.
  EXPECT_EQ(
      exec::CompileBatch({Q::TreeSubSelect(Q::ScanTree("t"), TP("b")),
                          Q::TreeSubSelect(Q::ScanTree("t2"), TP("b"))}),
      nullptr);
  // Non-pattern operators.
  EXPECT_EQ(exec::CompileBatch({Q::TreeSelect(scan, P("name == \"b\"")),
                                Q::TreeSelect(scan, P("name == \"x\""))}),
            nullptr);
}

// ---------------------------------------------------------------------------
// Randomized property test over generated workloads.
// ---------------------------------------------------------------------------

class BatchedMatchRandomTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FamilyTreeSpec spec;
    spec.num_people = 300;
    spec.brazil_fraction = 0.15;
    spec.seed = 20260809;
    ASSERT_OK_AND_ASSIGN(Tree family, MakeFamilyTree(db_.store(), spec));
    ASSERT_OK(db_.RegisterTree("family", std::move(family)));

    SongSpec song_spec;
    song_spec.num_notes = 400;
    song_spec.seed = 20260809;
    ASSERT_OK_AND_ASSIGN(List song, MakeSong(db_.store(), song_spec));
    ASSERT_OK(db_.RegisterList("song", std::move(song)));
  }

  TreePatternRef TP(const std::string& p) {
    auto tp = ParseTreePattern(p);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    return tp.ok() ? *tp : nullptr;
  }
  AnchoredListPattern LP(const std::string& p) {
    auto lp = ParseListPattern(p);
    EXPECT_TRUE(lp.ok()) << lp.status().ToString();
    return lp.ok() ? *lp : AnchoredListPattern{};
  }

  Database db_;
};

TEST_F(BatchedMatchRandomTest, FamilyPatternBatteryIsByteIdentical) {
  PlanRef scan = Q::ScanTree("family");
  std::vector<PlanRef> plans;
  const char* kPatterns[] = {
      "{citizen == \"Brazil\"}",
      "{citizen == \"USA\"}({citizen == \"Brazil\"} ?*)",
      "{age > 60}",
      "{citizen == \"Brazil\"}(?* {age < 10} ?*)",
      "{eyes == \"brown\"}",
      "{citizen == \"France\"}",
      "{age > 30}({age > 60})",
      "{name == \"P3\"}",
  };
  for (const char* p : kPatterns) {
    plans.push_back(Q::TreeSubSelect(scan, TP(p)));
  }
  Executor ref(&db_);
  ref.set_threads(1);
  std::vector<Result<Datum>> expected;
  for (const auto& p : plans) expected.push_back(ref.Execute(p));

  for (size_t threads : {1u, 4u, 16u}) {
    Executor exec(&db_);
    exec.set_threads(threads);
    std::vector<Result<Datum>> out = exec.ExecuteBatch(plans);
    ASSERT_EQ(out.size(), plans.size());
    for (size_t j = 0; j < plans.size(); ++j) {
      ASSERT_OK(expected[j]);
      ASSERT_OK(out[j]);
      EXPECT_TRUE(out[j]->Equals(*expected[j]))
          << kPatterns[j] << " at threads=" << threads;
    }
  }
}

TEST_F(BatchedMatchRandomTest, SongPatternBatteryIsByteIdentical) {
  PlanRef scan = Q::ScanList("song");
  std::vector<PlanRef> plans;
  const char* kPatterns[] = {
      "{pitch == \"A\"} {pitch == \"B\"}",
      "{pitch == \"C\"}+",
      "{pitch == \"G\"} ?* {pitch == \"A\"}",
      "{duration > 6} {duration > 6}",
      "{pitch == \"E\"} {pitch == \"F\"} {pitch == \"G\"}",
      "{pitch == \"Z\"}",
  };
  for (const char* p : kPatterns) {
    plans.push_back(Q::ListSubSelect(scan, LP(p)));
  }
  Executor ref(&db_);
  ref.set_threads(1);
  std::vector<Result<Datum>> expected;
  for (const auto& p : plans) expected.push_back(ref.Execute(p));

  for (size_t threads : {1u, 4u, 16u}) {
    Executor exec(&db_);
    exec.set_threads(threads);
    std::vector<Result<Datum>> out = exec.ExecuteBatch(plans);
    ASSERT_EQ(out.size(), plans.size());
    for (size_t j = 0; j < plans.size(); ++j) {
      ASSERT_OK(expected[j]);
      ASSERT_OK(out[j]);
      EXPECT_TRUE(out[j]->Equals(*expected[j]))
          << kPatterns[j] << " at threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace aqua
