// Lifecycle tests for cooperative cancellation: a runaway unmemoized
// Kleene-closure query (the paper's footnote-3 exponential workload) must
// stop within the latency budget when killed, when its deadline expires,
// and when it breaches its memory budget — at 1, 4, and 16 threads — and a
// cancelled fan-out must not leak queued pool tasks. The storm test is the
// TSan target run by scripts/cancel_smoke.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "aqua.h"
#include "exec/thread_pool.h"
#include "obs/query_context.h"
#include "obs/tasks.h"
#include "query/builder.h"
#include "test_util.h"

#ifndef AQUA_OBS_DISABLED

namespace aqua {
namespace {

/// A chain of `depth` nodes named "a" with a final "z": every decomposition
/// of the ambiguous closure below fails only at the very end, so the
/// unmemoized search is Fibonacci in the depth — effectively unbounded for
/// the depths used here. (Same shape as bench_tree_kleene.cc.)
Result<Tree> MakePoisonedChain(ObjectStore& store, size_t depth) {
  Tree t;
  NodeId prev = kInvalidNode;
  for (size_t i = 0; i <= depth; ++i) {
    const char* name = i == depth ? "z" : "a";
    AQUA_ASSIGN_OR_RETURN(
        Oid oid, store.Create("Item", {{"name", Value::String(name)},
                                       {"val", Value::Int(0)}}));
    NodeId node = t.AddNode(NodePayload::Cell(oid));
    if (prev == kInvalidNode) {
      AQUA_RETURN_IF_ERROR(t.SetRoot(node));
    } else {
      AQUA_RETURN_IF_ERROR(t.AddChild(prev, node));
    }
    prev = node;
  }
  return t;
}

/// Fixture: a "chains" collection of poisoned chains under a sentinel root,
/// and the unmemoized-closure plan over it. With `memoize = false` a single
/// chain of depth 40 alone takes (far) longer than any test timeout, so a
/// query over this plan never finishes on its own — it must be cancelled.
class CancelTest : public ::testing::Test {
 protected:
  static constexpr size_t kChains = 32;
  static constexpr size_t kDepth = 40;

  void SetUp() override {
    ASSERT_TRUE(RegisterItemType(db_.store()).ok());
    std::vector<Tree> chains;
    for (size_t i = 0; i < kChains; ++i) {
      auto chain = MakePoisonedChain(db_.store(), kDepth);
      ASSERT_TRUE(chain.ok()) << chain.status();
      chains.push_back(*std::move(chain));
    }
    auto sentinel = db_.store().Create(
        "Item", {{"name", Value::String("root")}, {"val", Value::Int(0)}});
    ASSERT_TRUE(sentinel.ok()) << sentinel.status();
    ASSERT_TRUE(db_.RegisterTree("chains",
                                 Tree::Node(NodePayload::Cell(*sentinel),
                                            chains))
                    .ok());

    auto closure = ParseTreePattern("^[[a(@x) | a(a(@x))]]*@x");
    ASSERT_TRUE(closure.ok()) << closure.status();
    SplitOptions opts;
    opts.match.memoize = false;
    runaway_plan_ = Q::TreeSubSelect(
        Q::TreeSelect(
            Q::ScanTree("chains"),
            Predicate::Not(
                Predicate::AttrEquals("name", Value::String("root")))),
        *closure, opts);
  }

  /// Runs the runaway plan on `threads` workers and, once it shows up in
  /// the task registry, kills it. Returns the wall time from the kill to
  /// the executor returning.
  void RunAndKill(size_t threads) {
    Executor exec(&db_);
    exec.set_threads(threads);
    std::atomic<bool> killed{false};
    std::atomic<uint64_t> kill_ns{0};
    std::thread killer([&] {
      obs::TaskRegistry& reg = obs::TaskRegistry::Global();
      while (!killed.load()) {
        for (const obs::TaskRow& row : reg.Snapshot()) {
          kill_ns.store(obs::QueryContext::NowNs());
          if (reg.Kill(row.id).ok()) {
            killed.store(true);
            return;
          }
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    Result<Datum> out = exec.Execute(runaway_plan_);
    uint64_t done_ns = obs::QueryContext::NowNs();
    killed.store(true);
    killer.join();

    ASSERT_FALSE(out.ok()) << "runaway query finished?!";
    EXPECT_EQ(out.status().code(), StatusCode::kCancelled)
        << out.status().ToString();
    EXPECT_NE(out.status().message().find("was killed"), std::string::npos)
        << out.status().ToString();
    // Kill-to-return latency: the 50 ms acceptance budget.
    ASSERT_GT(kill_ns.load(), 0u);
    double latency_ms =
        static_cast<double>(done_ns - kill_ns.load()) / 1e6;
    EXPECT_LT(latency_ms, 50.0) << "threads=" << threads;
    ExpectNoLeakedPoolTasks();
    // The registry entry is gone: the guard unregistered on unwind.
    EXPECT_EQ(obs::TaskRegistry::Global().active(), 0u);
  }

  /// A cancelled fan-out must consume (not orphan) every queued morsel
  /// task: helpers observe the claim cursor / cancel flag and return.
  void ExpectNoLeakedPoolTasks() {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(5);
    while (exec::ThreadPool::Shared().pending() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(exec::ThreadPool::Shared().pending(), 0u);
  }

  Database db_;
  PlanRef runaway_plan_;
};

TEST_F(CancelTest, KillReturnsWithin50MsOneThread) { RunAndKill(1); }
TEST_F(CancelTest, KillReturnsWithin50MsFourThreads) { RunAndKill(4); }
TEST_F(CancelTest, KillReturnsWithin50MsSixteenThreads) { RunAndKill(16); }

TEST_F(CancelTest, DeadlineExpiresWithin50Ms) {
  for (size_t threads : {size_t{1}, size_t{4}, size_t{16}}) {
    Executor exec(&db_);
    exec.set_threads(threads);
    exec.set_timeout_ms(20);
    uint64_t t0 = obs::QueryContext::NowNs();
    Result<Datum> out = exec.Execute(runaway_plan_);
    double wall_ms =
        static_cast<double>(obs::QueryContext::NowNs() - t0) / 1e6;
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded)
        << out.status().ToString();
    // 20 ms deadline + 50 ms cancellation budget.
    EXPECT_LT(wall_ms, 70.0) << "threads=" << threads;
    ExpectNoLeakedPoolTasks();
  }
}

TEST_F(CancelTest, MemLimitUnwindsAsCancelled) {
  Executor exec(&db_);
  exec.set_threads(4);
  // Well below the ~63 KB the materialized chain forest charges, so the
  // breach is certain regardless of matcher scratch size.
  exec.set_mem_limit_bytes(32 * 1024);
  Result<Datum> out = exec.Execute(runaway_plan_);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled)
      << out.status().ToString();
  EXPECT_NE(out.status().message().find("memory limit"), std::string::npos)
      << out.status().ToString();
  ExpectNoLeakedPoolTasks();
}

TEST_F(CancelTest, StatsReportLifecycleCounters) {
  Executor exec(&db_);
  exec.set_threads(4);
  exec.set_timeout_ms(20);
  (void)exec.Execute(runaway_plan_);
  EXPECT_GT(exec.stats().query_id, 0u);
  EXPECT_GT(exec.stats().cpu_ns, 0u);
  EXPECT_GT(exec.stats().mem_peak_bytes, 0u);
}

/// Serial-vs-parallel byte-equality is not disturbed by the lifecycle
/// plumbing: an uncancelled query returns identical results at any thread
/// count, with a deadline armed but never hit.
TEST_F(CancelTest, UncancelledQueriesStayByteIdentical) {
  auto finite = ParseTreePattern("a(a(?*))");
  ASSERT_TRUE(finite.ok()) << finite.status();
  PlanRef plan = Q::TreeSubSelect(
      Q::TreeSelect(Q::ScanTree("chains"),
                    Predicate::Not(
                        Predicate::AttrEquals("name", Value::String("root")))),
      *finite);
  LabelFn label = AttrLabelFn(&db_.store(), "name");
  std::string baseline;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{16}}) {
    Executor exec(&db_);
    exec.set_threads(threads);
    exec.set_timeout_ms(60000);  // armed, never hit
    Result<Datum> out = exec.Execute(plan);
    ASSERT_TRUE(out.ok()) << out.status();
    std::string rendered = out->ToString(label);
    if (threads == 1) {
      baseline = rendered;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(rendered, baseline) << "threads=" << threads;
    }
  }
}

/// The TSan target (scripts/cancel_smoke.sh): several runaway executions
/// hammered concurrently by a killer thread issuing `Kill` against
/// whatever is in flight, plus deadline expiries, for ~1.5 s. Clean under
/// TSan means the cancel/checkpoint/accounting paths are race-free.
TEST_F(CancelTest, CancellationStorm) {
  constexpr int kRunners = 4;
  std::atomic<bool> stop{false};
  std::atomic<bool> runners_done{false};
  std::atomic<int> cancelled_runs{0};

  // The killer must outlive the runners: a runner can enter one final
  // Execute after `stop` flips, and without a timeout that runaway query
  // only ends when someone kills it.
  std::thread killer([&] {
    while (!runners_done.load()) {
      for (const obs::TaskRow& row : obs::TaskRegistry::Global().Snapshot()) {
        (void)obs::TaskRegistry::Global().Kill(row.id);
      }
      obs::TaskRegistry::Global().EnforceLimits();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::vector<std::thread> runners;
  for (int r = 0; r < kRunners; ++r) {
    runners.emplace_back([&, r] {
      while (!stop.load()) {
        Executor exec(&db_);
        exec.set_threads(1 + (r % 4));
        if (r % 2 == 0) exec.set_timeout_ms(5);
        Result<Datum> out = exec.Execute(runaway_plan_);
        if (!out.ok() && (out.status().IsCancelled() ||
                          out.status().IsDeadlineExceeded())) {
          cancelled_runs.fetch_add(1);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true);
  for (std::thread& t : runners) t.join();
  runners_done.store(true);
  killer.join();

  EXPECT_GT(cancelled_runs.load(), 0);
  ExpectNoLeakedPoolTasks();
  EXPECT_EQ(obs::TaskRegistry::Global().active(), 0u);
}

}  // namespace
}  // namespace aqua

#else  // AQUA_OBS_DISABLED

namespace aqua {
namespace {

// With observability compiled out there is no cancellation to test; the
// suite still builds and runs so the no-obs CI job exercises this binary.
TEST(CancelTest, ObservabilityCompiledOut) { SUCCEED(); }

}  // namespace
}  // namespace aqua

#endif  // AQUA_OBS_DISABLED
