#include "object/object_store.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

class ObjectStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = store_.schema().RegisterType(
        "Person", {{"name", ValueType::kString, true},
                   {"age", ValueType::kInt, true},
                   {"height", ValueType::kDouble, true}});
    ASSERT_TRUE(id.ok());
    person_ = *id;
  }

  ObjectStore store_;
  TypeId person_ = kInvalidType;
};

TEST_F(ObjectStoreTest, CreateAndGetPositional) {
  auto oid = store_.Create(
      person_, {Value::String("Ann"), Value::Int(30), Value::Double(1.7)});
  ASSERT_TRUE(oid.ok());
  EXPECT_FALSE(oid->IsNull());

  auto obj = store_.Get(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->attr_at(0).string_value(), "Ann");
  EXPECT_EQ(store_.num_objects(), 1u);
  EXPECT_TRUE(store_.Contains(*oid));
}

TEST_F(ObjectStoreTest, CreateByNameWithDefaults) {
  auto oid = store_.Create("Person", {{"name", Value::String("Bo")}});
  ASSERT_TRUE(oid.ok());
  auto age = store_.GetAttr(*oid, "age");
  ASSERT_TRUE(age.ok());
  EXPECT_TRUE(age->is_null());
}

TEST_F(ObjectStoreTest, IntWidensToDouble) {
  auto oid = store_.Create("Person", {{"height", Value::Int(2)}});
  ASSERT_TRUE(oid.ok());
  auto h = store_.GetAttr(*oid, "height");
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->is_double());
  EXPECT_DOUBLE_EQ(h->double_value(), 2.0);
}

TEST_F(ObjectStoreTest, TypeMismatchRejected) {
  auto oid = store_.Create("Person", {{"age", Value::String("old")}});
  EXPECT_TRUE(oid.status().IsTypeError());
}

TEST_F(ObjectStoreTest, WrongArityRejected) {
  auto oid = store_.Create(person_, {Value::String("x")});
  EXPECT_TRUE(oid.status().IsInvalidArgument());
}

TEST_F(ObjectStoreTest, UnknownAttrRejected) {
  auto oid = store_.Create("Person", {{"nope", Value::Int(1)}});
  EXPECT_TRUE(oid.status().IsNotFound());
}

TEST_F(ObjectStoreTest, SetAttr) {
  auto oid = store_.Create("Person", {{"name", Value::String("Cy")}});
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store_.SetAttr(*oid, "age", Value::Int(9)).ok());
  auto age = store_.GetAttr(*oid, "age");
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(age->int_value(), 9);
  EXPECT_TRUE(
      store_.SetAttr(*oid, "age", Value::String("x")).IsTypeError());
}

TEST_F(ObjectStoreTest, GetInvalidOid) {
  EXPECT_TRUE(store_.Get(Oid::Null()).status().IsNotFound());
  EXPECT_TRUE(store_.Get(Oid(999)).status().IsNotFound());
  EXPECT_FALSE(store_.Contains(Oid(999)));
}

TEST_F(ObjectStoreTest, ExtentsTrackCreationOrder) {
  auto a = store_.Create("Person", {{"name", Value::String("A")}});
  auto b = store_.Create("Person", {{"name", Value::String("B")}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto extent = store_.Extent("Person");
  ASSERT_TRUE(extent.ok());
  ASSERT_EQ((*extent)->size(), 2u);
  EXPECT_EQ((**extent)[0], *a);
  EXPECT_EQ((**extent)[1], *b);
}

TEST_F(ObjectStoreTest, EmptyExtentForFreshType) {
  auto id = store_.schema().RegisterType("Empty", {});
  ASSERT_TRUE(id.ok());
  auto extent = store_.Extent(*id);
  ASSERT_TRUE(extent.ok());
  EXPECT_TRUE((*extent)->empty());
  EXPECT_TRUE(store_.Extent("Nope").status().IsNotFound());
}

}  // namespace
}  // namespace aqua
