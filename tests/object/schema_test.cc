#include "object/schema.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(SchemaTest, RegisterAndLookup) {
  Schema schema;
  auto id = schema.RegisterType("Person", {{"name", ValueType::kString, true},
                                           {"age", ValueType::kInt, true}});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(schema.num_types(), 1u);

  auto by_name = schema.TypeIdOf("Person");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(*by_name, *id);

  auto def = schema.GetType(*id);
  ASSERT_TRUE(def.ok());
  EXPECT_EQ((*def)->name(), "Person");
  EXPECT_EQ((*def)->num_attrs(), 2u);
}

TEST(SchemaTest, DuplicateTypeNameRejected) {
  Schema schema;
  ASSERT_TRUE(schema.RegisterType("T", {}).ok());
  EXPECT_TRUE(schema.RegisterType("T", {}).status().IsAlreadyExists());
}

TEST(SchemaTest, DuplicateAttributeRejected) {
  Schema schema;
  auto id = schema.RegisterType("T", {{"x", ValueType::kInt, true},
                                      {"x", ValueType::kString, true}});
  EXPECT_TRUE(id.status().IsInvalidArgument());
}

TEST(SchemaTest, UnknownLookupsFail) {
  Schema schema;
  EXPECT_TRUE(schema.TypeIdOf("Nope").status().IsNotFound());
  EXPECT_TRUE(schema.GetType(99).status().IsNotFound());
  EXPECT_TRUE(schema.GetType("Nope").status().IsNotFound());
}

TEST(TypeDefTest, AttrIndexAndHasAttr) {
  TypeDef def("T", {{"a", ValueType::kInt, true},
                    {"b", ValueType::kString, false}});
  auto idx = def.AttrIndex("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(def.HasAttr("a"));
  EXPECT_FALSE(def.HasAttr("c"));
  EXPECT_TRUE(def.AttrIndex("c").status().IsNotFound());
  EXPECT_FALSE(def.attrs()[1].stored);
}

}  // namespace
}  // namespace aqua
