// Versioned-store semantics: snapshot isolation, epoch discipline,
// copy-on-write granularity, pointer/extent stability across growth, and
// the delta-commit path (`DeltaTxn` + `CommitBatch`) that backs the
// morsel-parallel mutating apply.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "object/object_store.h"
#include "object/store_txn.h"
#include "object/store_version.h"
#include "object/store_view.h"

namespace aqua {
namespace {

class StoreVersionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = store_.schema().RegisterType(
        "Person", {{"name", ValueType::kString, true},
                   {"age", ValueType::kInt, true},
                   {"boss", ValueType::kRef, true}});
    ASSERT_TRUE(id.ok());
    person_ = *id;
  }

  Oid MustCreate(const std::string& name, int64_t age) {
    auto oid = store_.Create(
        person_, {Value::String(name), Value::Int(age), Value::Null()});
    EXPECT_TRUE(oid.ok()) << oid.status().ToString();
    return oid.ok() ? *oid : Oid();
  }

  ObjectStore store_;
  TypeId person_ = kInvalidType;
};

TEST_F(StoreVersionTest, SnapshotDoesNotSeeLaterCreates) {
  Oid ann = MustCreate("Ann", 30);
  StoreView before = store_.Snapshot();
  Oid bo = MustCreate("Bo", 40);

  EXPECT_EQ(before.num_objects(), 1u);
  EXPECT_TRUE(before.Contains(ann));
  EXPECT_FALSE(before.Contains(bo));
  EXPECT_FALSE(before.Get(bo).ok());

  StoreView after = store_.Snapshot();
  EXPECT_EQ(after.num_objects(), 2u);
  auto name = after.GetAttr(bo, "name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->string_value(), "Bo");
}

TEST_F(StoreVersionTest, SnapshotKeepsPreWriteValueAfterSetAttr) {
  Oid ann = MustCreate("Ann", 30);
  StoreView before = store_.Snapshot();
  uint64_t cow_before = store_.cow_copies();
  ASSERT_TRUE(store_.SetAttr(ann, "age", Value::Int(31)).ok());

  // The write copy-on-wrote the chunk the snapshot pins.
  EXPECT_GT(store_.cow_copies(), cow_before);
  auto old_age = before.GetAttr(ann, "age");
  ASSERT_TRUE(old_age.ok());
  EXPECT_EQ(old_age->int_value(), 30);
  auto new_age = store_.GetAttr(ann, "age");
  ASSERT_TRUE(new_age.ok());
  EXPECT_EQ(new_age->int_value(), 31);
}

TEST_F(StoreVersionTest, UnchangedHeadSharesOneVersion) {
  MustCreate("Ann", 30);
  StoreView a = store_.Snapshot();
  StoreView b = store_.Snapshot();
  // Repeated snapshots of an unchanged head are free: same StoreVersion.
  EXPECT_EQ(a.version().get(), b.version().get());
  EXPECT_EQ(store_.versions_live(), 1u);
}

TEST_F(StoreVersionTest, EpochBumpsOncePerMutationBurst) {
  EXPECT_EQ(store_.epoch(), 1u);
  // No snapshot handed out yet: mutations stay within epoch 1.
  MustCreate("Ann", 30);
  MustCreate("Bo", 40);
  EXPECT_EQ(store_.epoch(), 1u);

  StoreView v1 = store_.Snapshot();
  EXPECT_EQ(v1.epoch(), 1u);
  // First mutation after the snapshot opens a new epoch; the rest of the
  // burst stays inside it.
  MustCreate("Cy", 50);
  EXPECT_EQ(store_.epoch(), 2u);
  MustCreate("Di", 60);
  ASSERT_TRUE(store_.SetAttr(Oid(1), "age", Value::Int(31)).ok());
  EXPECT_EQ(store_.epoch(), 2u);

  StoreView v2 = store_.Snapshot();
  EXPECT_EQ(v2.epoch(), 2u);
  MustCreate("Ed", 70);
  EXPECT_EQ(store_.epoch(), 3u);
}

TEST_F(StoreVersionTest, CommitBatchIsOneEpoch) {
  StoreView pinned = store_.Snapshot();
  std::vector<ItemDelta> deltas(3);
  for (size_t i = 0; i < deltas.size(); ++i) {
    deltas[i].created.emplace_back(
        MakeProvisionalOid(0), person_,
        std::vector<Value>{Value::String("p"), Value::Int(static_cast<int64_t>(i)),
                           Value::Null()});
  }
  auto finals = store_.CommitBatch(std::move(deltas));
  ASSERT_TRUE(finals.ok());
  EXPECT_EQ(store_.epoch(), 2u);
  EXPECT_EQ(store_.num_objects(), 3u);
}

// Regression for the historical single-vector heap: `Get` pointers must
// survive `Create`-driven growth across chunk boundaries.
TEST_F(StoreVersionTest, GetPointerStableAcrossChunkGrowth) {
  Oid first = MustCreate("First", 1);
  auto held = store_.Get(first);
  ASSERT_TRUE(held.ok());
  const Object* p = *held;

  // Grow well past several chunk boundaries while the read is held.
  for (size_t i = 0; i < 3 * kStoreChunkSize + 5; ++i) {
    MustCreate("Filler", static_cast<int64_t>(i));
  }
  EXPECT_EQ(p->oid(), first);
  EXPECT_EQ(p->attr_at(0).string_value(), "First");
  EXPECT_EQ(p->attr_at(1).int_value(), 1);

  // Same for a pointer taken at the tail end of a chunk.
  Oid near_edge(kStoreChunkSize);
  auto edge = store_.Get(near_edge);
  ASSERT_TRUE(edge.ok());
  const Object* q = *edge;
  for (size_t i = 0; i < kStoreChunkSize; ++i) {
    MustCreate("More", static_cast<int64_t>(i));
  }
  EXPECT_EQ(q->oid(), near_edge);
  EXPECT_EQ(q->attr_at(0).string_value(), "Filler");
}

TEST_F(StoreVersionTest, GetMutableDoesNotLeakIntoSnapshot) {
  Oid ann = MustCreate("Ann", 30);
  StoreView before = store_.Snapshot();
  auto obj = store_.GetMutable(ann);
  ASSERT_TRUE(obj.ok());
  (*obj)->set_attr_at(1, Value::Int(99));

  auto old_age = before.GetAttr(ann, "age");
  ASSERT_TRUE(old_age.ok());
  EXPECT_EQ(old_age->int_value(), 30);
  auto new_age = store_.GetAttr(ann, "age");
  ASSERT_TRUE(new_age.ok());
  EXPECT_EQ(new_age->int_value(), 99);
}

TEST_F(StoreVersionTest, ExtentRefStableAcrossLaterCreates) {
  MustCreate("Ann", 30);
  MustCreate("Bo", 40);
  auto held = store_.Extent(person_);
  ASSERT_TRUE(held.ok());
  ExtentRef extent = *held;
  ASSERT_EQ((*extent).size(), 2u);

  for (int i = 0; i < 10; ++i) MustCreate("Filler", i);
  // The held extent still shows the pre-growth oid list...
  EXPECT_EQ((*extent).size(), 2u);
  EXPECT_EQ((*extent)[0], Oid(1));
  EXPECT_EQ((*extent)[1], Oid(2));
  // ...while a fresh lookup sees everything.
  auto fresh = store_.Extent(person_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((**fresh).size(), 12u);
}

TEST_F(StoreVersionTest, SnapshotExtentPinsOidListOfItsEpoch) {
  MustCreate("Ann", 30);
  StoreView view = store_.Snapshot();
  MustCreate("Bo", 40);
  auto extent = view.Extent("Person");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ((**extent).size(), 1u);
}

TEST_F(StoreVersionTest, VersionAccountingAndReclamation) {
  MustCreate("Ann", 30);
  EXPECT_EQ(store_.versions_live(), 0u);
  EXPECT_EQ(store_.snapshot_pins(), 0u);

  {
    StoreView pinned = store_.Snapshot();
    EXPECT_EQ(store_.versions_live(), 1u);
    EXPECT_EQ(store_.snapshot_pins(), 1u);

    // Superseding the pinned chunk starts retaining bytes for the old view.
    ASSERT_TRUE(store_.SetAttr(Oid(1), "age", Value::Int(31)).ok());
    EXPECT_GT(store_.retained_bytes(), 0u);
    StoreView head = store_.Snapshot();
    EXPECT_EQ(store_.versions_live(), 2u);
    EXPECT_EQ(store_.snapshot_pins(), 2u);
  }
  // Dropping the views reclaims the superseded version; the head cache may
  // keep the current one alive, but it retains nothing beyond the head.
  EXPECT_LE(store_.versions_live(), 1u);
  EXPECT_EQ(store_.snapshot_pins(), 0u);
  EXPECT_EQ(store_.retained_bytes(), 0u);
}

TEST_F(StoreVersionTest, DeltaTxnBuffersWritesWithReadYourWrites) {
  Oid ann = MustCreate("Ann", 30);
  DeltaTxn txn(store_.Snapshot());

  // In-place write: visible inside the txn, invisible to the head.
  ASSERT_TRUE(txn.SetAttr(ann, "age", Value::Int(31)).ok());
  auto inside = txn.GetAttr(ann, "age");
  ASSERT_TRUE(inside.ok());
  EXPECT_EQ(inside->int_value(), 31);
  auto outside = store_.GetAttr(ann, "age");
  ASSERT_TRUE(outside.ok());
  EXPECT_EQ(outside->int_value(), 30);

  // Creation: provisional oid, readable back through the txn.
  auto bo = txn.Create(person_, {Value::String("Bo"), Value::Int(40),
                                 Value::Ref(ann)});
  ASSERT_TRUE(bo.ok());
  EXPECT_TRUE(IsProvisionalOid(*bo));
  auto created = txn.Get(*bo);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ((*created)->attr_at(0).string_value(), "Bo");
  EXPECT_FALSE(store_.Contains(*bo));

  ItemDelta delta = txn.Take();
  EXPECT_EQ(delta.created.size(), 1u);
  EXPECT_EQ(delta.writes.size(), 1u);
  EXPECT_FALSE(txn.has_effects());
}

TEST_F(StoreVersionTest, DeltaTxnValidatesEagerly) {
  Oid ann = MustCreate("Ann", 30);
  DeltaTxn txn(store_.Snapshot());
  // Same type checks as the head path, so a clean delta cannot fail later.
  EXPECT_FALSE(txn.SetAttr(ann, "age", Value::String("old")).ok());
  EXPECT_FALSE(
      txn.Create(person_, {Value::Int(1), Value::Int(2), Value::Null()}).ok());
  EXPECT_FALSE(txn.has_effects());
}

TEST_F(StoreVersionTest, CommitBatchReplaysSerialOidOrder) {
  Oid ann = MustCreate("Ann", 30);

  // Two items, evaluated as if concurrently against the same snapshot.
  StoreView view = store_.Snapshot();
  DeltaTxn item0(view);
  DeltaTxn item1(view);
  auto p0 = item1.Create(person_, {Value::String("Cy"), Value::Int(50),
                                   Value::Null()});  // item 1 first: order
  auto p1 = item0.Create(person_, {Value::String("Bo"), Value::Int(40),
                                   Value::Null()});  // must not depend on it
  ASSERT_TRUE(p0.ok() && p1.ok());
  ASSERT_TRUE(item0.SetAttr(ann, "boss", Value::Ref(*p1)).ok());

  std::vector<ItemDelta> deltas;
  deltas.push_back(item0.Take());
  deltas.push_back(item1.Take());
  auto finals = store_.CommitBatch(std::move(deltas));
  ASSERT_TRUE(finals.ok());

  // Item order decides final oids: item 0's "Bo" folds before item 1's
  // "Cy", exactly as serial left-to-right evaluation would allocate.
  ASSERT_EQ(finals->size(), 2u);
  ASSERT_EQ((*finals)[0].size(), 1u);
  ASSERT_EQ((*finals)[1].size(), 1u);
  Oid bo = (*finals)[0][0];
  Oid cy = (*finals)[1][0];
  EXPECT_EQ(bo, Oid(2));
  EXPECT_EQ(cy, Oid(3));
  auto bo_name = store_.GetAttr(bo, "name");
  ASSERT_TRUE(bo_name.ok());
  EXPECT_EQ(bo_name->string_value(), "Bo");
  auto cy_name = store_.GetAttr(cy, "name");
  ASSERT_TRUE(cy_name.ok());
  EXPECT_EQ(cy_name->string_value(), "Cy");

  // The provisional ref buffered in item 0's write was rewritten to Bo's
  // final oid.
  auto boss = store_.GetAttr(ann, "boss");
  ASSERT_TRUE(boss.ok());
  ASSERT_TRUE(boss->is_ref());
  EXPECT_EQ(boss->ref_value(), bo);
}

TEST_F(StoreVersionTest, CommitBatchMatchesSerialDirectTxn) {
  // The same per-item program run (a) serially through DirectTxn and
  // (b) buffered through DeltaTxn + CommitBatch must leave two stores in
  // identical states — the delta-merge determinism rule.
  auto program = [this](StoreTxn& txn, int64_t i) {
    auto oid = txn.Create(person_, {Value::String("p"), Value::Int(i),
                                    Value::Null()});
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(txn.SetAttr(Oid(1), "boss", Value::Ref(*oid)).ok());
  };

  ObjectStore serial;
  auto id = serial.schema().RegisterType(
      "Person", {{"name", ValueType::kString, true},
                 {"age", ValueType::kInt, true},
                 {"boss", ValueType::kRef, true}});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(serial
                  .Create(person_, {Value::String("Ann"), Value::Int(30),
                                    Value::Null()})
                  .ok());
  MustCreate("Ann", 30);

  DirectTxn direct(&serial);
  for (int64_t i = 0; i < 4; ++i) program(direct, i);

  StoreView view = store_.Snapshot();
  std::vector<ItemDelta> deltas;
  for (int64_t i = 0; i < 4; ++i) {
    DeltaTxn txn(view);
    program(txn, i);
    deltas.push_back(txn.Take());
  }
  ASSERT_TRUE(store_.CommitBatch(std::move(deltas)).ok());

  ASSERT_EQ(store_.num_objects(), serial.num_objects());
  for (uint64_t o = 1; o <= serial.num_objects(); ++o) {
    auto a = store_.Get(Oid(o));
    auto b = serial.Get(Oid(o));
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ((*a)->type(), (*b)->type());
    ASSERT_EQ((*a)->attrs().size(), (*b)->attrs().size());
    for (size_t i = 0; i < (*a)->attrs().size(); ++i) {
      EXPECT_EQ((*a)->attr_at(i).ToString(), (*b)->attr_at(i).ToString())
          << "oid " << o << " attr " << i;
    }
  }
}

// The reader/writer storm scripts/snapshot_storm.sh drives under TSan:
// writers hammer the head (creates, in-place writes, batch commits) while
// readers continuously open snapshots and check each one is internally
// frozen — same oid reads the same value twice, the extent never outgrows
// the view, and epochs only move forward.
TEST_F(StoreVersionTest, ConcurrentReadersAndWritersStorm) {
  constexpr size_t kSeed = 64;
  constexpr size_t kWriterRounds = 200;
  constexpr size_t kReaders = 4;
  for (size_t i = 0; i < kSeed; ++i) {
    MustCreate("seed", static_cast<int64_t>(i));
  }

  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};

  std::thread writer([&] {
    for (size_t i = 0; i < kWriterRounds; ++i) {
      auto oid = store_.Create(
          person_, {Value::String("w"), Value::Int(static_cast<int64_t>(i)),
                    Value::Null()});
      if (!oid.ok()) ++failures;
      Oid target(1 + i % kSeed);
      if (!store_.SetAttr(target, "age", Value::Int(static_cast<int64_t>(i)))
               .ok()) {
        ++failures;
      }
      if (i % 16 == 0) {
        // Batch commits interleave with plain head writes.
        std::vector<ItemDelta> deltas(1);
        DeltaTxn txn(store_.Snapshot());
        auto created = txn.Create(
            person_, {Value::String("batch"),
                      Value::Int(static_cast<int64_t>(i)), Value::Null()});
        if (!created.ok()) ++failures;
        deltas[0] = txn.Take();
        if (!store_.CommitBatch(std::move(deltas)).ok()) ++failures;
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!done.load()) {
        StoreView view = store_.Snapshot();
        if (view.epoch() < last_epoch) ++failures;  // epochs are monotonic
        last_epoch = view.epoch();
        for (uint64_t o = 1; o <= kSeed; ++o) {
          auto first = view.GetAttr(Oid(o), "age");
          auto second = view.GetAttr(Oid(o), "age");
          if (!first.ok() || !second.ok() ||
              first->int_value() != second->int_value()) {
            ++failures;  // a snapshot is frozen: re-reads never move
          }
        }
        auto extent = view.Extent("Person");
        if (!extent.ok() || (**extent).size() > view.num_objects()) {
          ++failures;
        }
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(store_.num_objects(),
            kSeed + kWriterRounds + kWriterRounds / 16);
}

}  // namespace
}  // namespace aqua
