#include "odmg/array.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace aqua {
namespace {

class OdmgArrayTest : public testing::AquaTestBase {
 protected:
  void SetUp() override {
    AquaTestBase::SetUp();
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK_AND_ASSIGN(
          Oid oid,
          store_.Create("Item", {{"name", Value::String("e" +
                                                        std::to_string(i))},
                                 {"val", Value::Int(i)}}));
      oids_.push_back(oid);
    }
  }

  std::vector<Oid> oids_;
};

TEST_F(OdmgArrayTest, ConstructionAndAccess) {
  OdmgArray arr = OdmgArray::Of({oids_[0], oids_[1], oids_[2]});
  EXPECT_EQ(arr.cardinality(), 3u);
  EXPECT_FALSE(arr.is_empty());
  ASSERT_OK_AND_ASSIGN(Oid mid, arr.RetrieveAt(1));
  EXPECT_EQ(mid, oids_[1]);
  EXPECT_TRUE(arr.RetrieveAt(3).status().IsOutOfRange());
  EXPECT_TRUE(OdmgArray().is_empty());
}

TEST_F(OdmgArrayTest, ReplaceInsertRemove) {
  OdmgArray arr = OdmgArray::Of({oids_[0], oids_[1]});
  ASSERT_OK(arr.ReplaceAt(0, oids_[4]));
  ASSERT_OK_AND_ASSIGN(Oid head, arr.RetrieveAt(0));
  EXPECT_EQ(head, oids_[4]);

  ASSERT_OK(arr.InsertAt(1, oids_[2]));
  EXPECT_EQ(arr.cardinality(), 3u);
  ASSERT_OK_AND_ASSIGN(Oid inserted, arr.RetrieveAt(1));
  EXPECT_EQ(inserted, oids_[2]);

  ASSERT_OK(arr.RemoveAt(0));
  EXPECT_EQ(arr.cardinality(), 2u);
  ASSERT_OK_AND_ASSIGN(Oid new_head, arr.RetrieveAt(0));
  EXPECT_EQ(new_head, oids_[2]);

  EXPECT_TRUE(arr.ReplaceAt(9, oids_[0]).IsOutOfRange());
  EXPECT_TRUE(arr.RemoveAt(9).IsOutOfRange());
}

TEST_F(OdmgArrayTest, AppendAndFind) {
  OdmgArray arr;
  arr.Append(oids_[0]);
  arr.Append(oids_[1]);
  arr.Append(oids_[0]);
  ASSERT_OK_AND_ASSIGN(size_t first, arr.IndexOf(oids_[0]));
  EXPECT_EQ(first, 0u);
  ASSERT_OK_AND_ASSIGN(size_t second, arr.IndexOf(oids_[0], 1));
  EXPECT_EQ(second, 2u);
  EXPECT_TRUE(arr.IndexOf(oids_[3]).status().IsNotFound());
  EXPECT_TRUE(arr.Contains(oids_[1]));
  EXPECT_FALSE(arr.Contains(oids_[4]));
}

TEST_F(OdmgArrayTest, ConcatMatchesAquaListConcat) {
  OdmgArray a = OdmgArray::Of({oids_[0], oids_[1]});
  OdmgArray b = OdmgArray::Of({oids_[2]});
  OdmgArray cat = a.Concat(b);
  EXPECT_EQ(cat.cardinality(), 3u);
  EXPECT_TRUE(cat.aqua_list() == Concat(a.aqua_list(), b.aqua_list()));
}

TEST_F(OdmgArrayTest, SelectIsStable) {
  OdmgArray arr = OdmgArray::Of(oids_);
  ASSERT_OK_AND_ASSIGN(OdmgArray even,
                       arr.Select(store_, P("val == 0 || val == 2 || "
                                            "val == 4")));
  ASSERT_EQ(even.cardinality(), 3u);
  ASSERT_OK_AND_ASSIGN(Oid e0, even.RetrieveAt(0));
  ASSERT_OK_AND_ASSIGN(Oid e2, even.RetrieveAt(2));
  EXPECT_EQ(e0, oids_[0]);
  EXPECT_EQ(e2, oids_[4]);
}

TEST_F(OdmgArrayTest, SubSelectBringsPatternPredicates) {
  // The §8 upgrade: a regular-expression query over an ODMG array.
  OdmgArray arr = OdmgArray::Of(oids_);
  ASSERT_OK_AND_ASSIGN(Datum runs,
                       arr.SubSelect(store_, LP("{val >= 1} {val >= 1}")));
  // Adjacent pairs with val >= 1: (e1,e2), (e2,e3), (e3,e4).
  EXPECT_EQ(runs.size(), 3u);
}

TEST_F(OdmgArrayTest, RetrieveAtPointIsTypeError) {
  List with_point = L("[a @x b]");
  OdmgArray arr{with_point};
  EXPECT_TRUE(arr.RetrieveAt(1).status().IsTypeError());
}

}  // namespace
}  // namespace aqua
