#ifndef AQUA_EXAMPLES_EXAMPLE_UTIL_H_
#define AQUA_EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <utility>

#include "aqua.h"

namespace aqua::examples {

/// Unwraps a Result in example code, aborting with a message on error.
template <typename T>
T OrDie(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

inline void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace aqua::examples

#endif  // AQUA_EXAMPLES_EXAMPLE_UTIL_H_
