// Quickstart: build a tree of objects, write patterns, run the core
// operators. Compile & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdlib>
#include <iostream>

#include "aqua.h"

using namespace aqua;

namespace {

// Unwraps a Result in example code, aborting with a message on error.
template <typename T>
T OrDie(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. An object store with one type. Every node of a list or tree is a
  //    cell referencing an object by identity (§2 of the paper).
  ObjectStore store;
  Check(RegisterItemType(store));

  // 2. Literals: the `a(b c)` preorder notation from the paper. Atoms are
  //    interned as Item objects keyed by their `name` attribute.
  AtomFn atom = MakeInterningAtomFn(&store, "Item", "name");
  LabelFn label = AttrLabelFn(&store, "name");
  Tree tree = OrDie(ParseTreeLiteral("r(a(x y) b a(z))", atom));
  std::cout << "tree          : " << PrintTree(tree, label) << "\n";

  // 3. select(p): order-stable filtering with ancestry contraction (§4).
  PredicateRef not_inner = OrDie(ParsePredicate("name != \"a\""));
  std::vector<Tree> forest = OrDie(TreeSelect(store, tree, not_inner));
  std::cout << "select !a     : ";
  for (const Tree& piece : forest) std::cout << PrintTree(piece, label) << " ";
  std::cout << "\n";

  // 4. sub_select(tp): pattern-matching retrieval. `a(?*)` is "an a node
  //    with any children".
  TreePatternRef tp = OrDie(ParseTreePattern("a(?*)"));
  Datum subgraphs = OrDie(TreeSubSelect(store, tree, tp));
  std::cout << "sub_select a  : " << subgraphs.ToString(label) << "\n";

  // 5. split(tp, f): the primitive operator — context, match, descendants.
  Datum pieces = OrDie(TreeSplit(
      store, tree, OrDie(ParseTreePattern("a")),
      [](const Tree& x, const Tree& y,
         const std::vector<Tree>& z) -> Result<Datum> {
        std::vector<Datum> zs;
        for (const Tree& t : z) zs.push_back(Datum::Of(t));
        return Datum::Tuple(
            {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
      }));
  std::cout << "split on a    : " << pieces.ToString(label) << "\n";

  // 6. Lists work the same way (§6).
  List list = OrDie(ParseListLiteral("[x a b a y]", atom));
  AnchoredListPattern lp = OrDie(ParseListPattern("a ? a"));
  Datum sublists = OrDie(ListSubSelect(store, list, lp));
  std::cout << "list matches  : " << sublists.ToString(label) << "\n";

  std::cout << "done.\n";
  return 0;
}
