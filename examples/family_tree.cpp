// The paper's running example (§4, Figures 3 and 4): a family tree queried
// with order-sensitive tree patterns.
//
//   ./build/examples/example_family_tree
#include <iostream>

#include "example_util.h"

using namespace aqua;
using aqua::examples::Check;
using aqua::examples::OrDie;

int main() {
  ObjectStore store;
  Tree family = OrDie(MakePaperFamilyTree(store));
  LabelFn name = AttrLabelFn(&store, "name");
  LabelFn citizen = AttrLabelFn(&store, "citizen");

  std::cout << "Family tree (Figure 3)\n";
  std::cout << "  by name   : " << PrintTree(family, name) << "\n";
  std::cout << "  by citizen: " << PrintTree(family, citizen) << "\n\n";

  // The paper's named predicate shorthands.
  PredicateEnv env;
  env.Bind("Brazil", Predicate::AttrEquals("citizen", Value::String("Brazil")));
  env.Bind("USA", Predicate::AttrEquals("citizen", Value::String("USA")));
  PatternParserOptions popts;
  popts.env = &env;
  popts.default_attr = "name";

  // select: all Brazilian descendants, ancestry preserved (§4).
  std::cout << "select(Brazil)(T):\n";
  auto brazil = OrDie(env.Lookup("Brazil"));
  for (const Tree& piece : OrDie(TreeSelect(store, family, brazil))) {
    std::cout << "  " << PrintTree(piece, name) << "\n";
  }

  // split on "parent is Brazilian, one child is American" — Figure 4.
  std::cout << "\nsplit(Brazil(!?* USA !?*), λ(x,y,z)<x,y,z>)(T):\n";
  TreePatternRef pattern =
      OrDie(ParseTreePattern("Brazil(!?* USA !?*)", popts));
  Datum split_result = OrDie(TreeSplit(
      store, family, pattern,
      [](const Tree& x, const Tree& y,
         const std::vector<Tree>& z) -> Result<Datum> {
        std::vector<Datum> zs;
        for (const Tree& t : z) zs.push_back(Datum::Of(t));
        return Datum::Tuple(
            {Datum::Of(x), Datum::Of(y), Datum::Tuple(std::move(zs))});
      }));
  for (const Datum& tuple : split_result.children()) {
    std::cout << "  x (ancestors)  : " << tuple.at(0).ToString(name) << "\n";
    std::cout << "  y (match)      : " << tuple.at(1).ToString(name) << "\n";
    std::cout << "  z (descendants): " << tuple.at(2).ToString(name) << "\n";
  }

  // The pieces reassemble to the original tree: x ∘α y ∘αi zi = T.
  TreeMatcher matcher(store, family);
  auto matches = OrDie(matcher.FindAll(pattern));
  SplitPieces pieces = OrDie(MakeSplitPieces(family, matches[0], {}));
  Tree reassembled = ReassembleSplit(pieces);
  std::cout << "\nreassembled == T : " << std::boolalpha
            << reassembled.StructurallyEquals(family) << "\n";

  // all_anc / all_desc, the derived context operators.
  std::cout << "\nall_anc(USA-with-children, <x,y>):\n";
  TreePatternRef usa_parent = OrDie(ParseTreePattern("USA(?+)", popts));
  Datum anc = OrDie(TreeAllAnc(
      store, family, usa_parent,
      [](const Tree& x, const Tree& y) -> Result<Datum> {
        return Datum::Tuple({Datum::Of(x), Datum::Of(y)});
      }));
  for (const Datum& tuple : anc.children()) {
    std::cout << "  " << tuple.ToString(name) << "\n";
  }

  // sub_select with an attribute index (the §4 "Why Split?" access path).
  AttributeIndex index =
      OrDie(AttributeIndex::BuildForTree(store, family, "citizen"));
  Datum indexed = OrDie(TreeSubSelectIndexed(store, family, pattern, index));
  std::cout << "\nindexed sub_select(Brazil(!?* USA !?*)): "
            << indexed.ToString(name) << "\n";
  return 0;
}
