// The molecular-biology motivation (§1 cites RNA-sequences; §7 points at
// Shapiro & Zhang's tree comparison of RNA secondary structures and notes
// that distance metrics "are easily accommodated in our formalisms").
//
// RNA secondary structure as a tree of structural elements — stems (S),
// hairpin loops (H), bulges (B), internal loops (I), multiloops (M) —
// queried with exact tree patterns and with edit-distance-based
// approximate retrieval.
//
//   ./build/examples/example_rna_structures
#include <iostream>
#include <random>

#include "example_util.h"

using namespace aqua;
using aqua::examples::Check;
using aqua::examples::OrDie;

namespace {

/// Grows a random secondary-structure tree: stems contain loops; multiloops
/// branch into further stems.
Result<Tree> GrowStructure(ObjectStore& store, std::mt19937_64& rng,
                           size_t depth) {
  auto element = [&](const std::string& kind, int64_t size) -> Result<Oid> {
    return store.Create("RnaElem", {{"kind", Value::String(kind)},
                                    {"bases", Value::Int(size)}});
  };
  AQUA_ASSIGN_OR_RETURN(Oid stem,
                        element("S", static_cast<int64_t>(3 + rng() % 8)));
  if (depth == 0) {
    AQUA_ASSIGN_OR_RETURN(Oid hairpin,
                          element("H", static_cast<int64_t>(3 + rng() % 5)));
    return Tree::Node(NodePayload::Cell(stem),
                      {Tree::Leaf(NodePayload::Cell(hairpin))});
  }
  double coin = std::uniform_real_distribution<double>(0, 1)(rng);
  if (coin < 0.35) {
    // Stem closed by a hairpin loop.
    AQUA_ASSIGN_OR_RETURN(Oid hairpin,
                          element("H", static_cast<int64_t>(3 + rng() % 5)));
    return Tree::Node(NodePayload::Cell(stem),
                      {Tree::Leaf(NodePayload::Cell(hairpin))});
  }
  if (coin < 0.65) {
    // Bulge or internal loop, then a continued stem.
    AQUA_ASSIGN_OR_RETURN(
        Oid interruption,
        element(coin < 0.5 ? "B" : "I", static_cast<int64_t>(1 + rng() % 4)));
    AQUA_ASSIGN_OR_RETURN(Tree continued,
                          GrowStructure(store, rng, depth - 1));
    return Tree::Node(
        NodePayload::Cell(stem),
        {Tree::Node(NodePayload::Cell(interruption), {continued})});
  }
  // Multiloop with 2-3 branches.
  AQUA_ASSIGN_OR_RETURN(Oid multi,
                        element("M", static_cast<int64_t>(2 + rng() % 3)));
  std::vector<Tree> branches;
  size_t arms = 2 + rng() % 2;
  for (size_t i = 0; i < arms; ++i) {
    AQUA_ASSIGN_OR_RETURN(Tree branch, GrowStructure(store, rng, depth - 1));
    branches.push_back(std::move(branch));
  }
  return Tree::Node(NodePayload::Cell(stem),
                    {Tree::Node(NodePayload::Cell(multi), branches)});
}

}  // namespace

int main() {
  ObjectStore store;
  Check(store.schema()
            .RegisterType("RnaElem", {{"kind", ValueType::kString, true},
                                      {"bases", ValueType::kInt, true}})
            .status());
  LabelFn kind = AttrLabelFn(&store, "kind");

  // A small structure database.
  std::mt19937_64 rng(7);
  std::vector<Tree> molecules;
  for (int i = 0; i < 12; ++i) {
    molecules.push_back(OrDie(GrowStructure(store, rng, 4)));
  }
  std::cout << "molecule 0: " << PrintTree(molecules[0], kind) << "\n";
  std::cout << "molecule 1: " << PrintTree(molecules[1], kind) << "\n\n";

  // Exact motif query: a multiloop whose arms are all hairpin-closed stems
  // ("cloverleaf-like"): M( [[S(H)]]+ ).
  PredicateEnv env;
  for (const char* k : {"S", "H", "B", "I", "M"}) {
    env.Bind(k, Predicate::AttrEquals("kind", Value::String(k)));
  }
  PatternParserOptions popts;
  popts.env = &env;
  TreePatternRef cloverleaf = OrDie(ParseTreePattern("M([[S(H)]]+)", popts));
  size_t cloverleaves = 0;
  for (const Tree& molecule : molecules) {
    cloverleaves +=
        OrDie(TreeSubSelect(store, molecule, cloverleaf)).size();
  }
  std::cout << "cloverleaf motifs (M of only hairpin stems): "
            << cloverleaves << "\n";

  // Order-sensitive query: a bulge on the 5' side before an internal loop
  // deeper in the same stem — ancestry expressed by nesting.
  TreePatternRef bulge_then_internal =
      OrDie(ParseTreePattern("B(S(I(?*)))", popts));
  size_t nested = 0;
  for (const Tree& molecule : molecules) {
    nested +=
        OrDie(TreeSubSelect(store, molecule, bulge_then_internal)).size();
  }
  std::cout << "bulge-over-internal-loop nestings: " << nested << "\n\n";

  // Approximate retrieval (§7): find structures whose shape is within edit
  // distance k of a reference motif — the Shapiro/Zhang-style query.
  Tree reference = molecules[0];
  EditCosts costs = AttrEditCosts(&store, "kind");
  std::cout << "distance of each molecule to molecule 0:\n  ";
  for (const Tree& molecule : molecules) {
    std::cout << OrDie(TreeEditDistance(molecule, reference, costs)) << " ";
  }
  std::cout << "\n";

  AtomFn atom = [&](const std::string& token) -> Result<Oid> {
    return store.Create("RnaElem",
                        {{"kind", Value::String(token)},
                         {"bases", Value::Int(4)}});
  };
  Tree motif = OrDie(ParseTreeLiteral("S(M(S(H) S(H)))", atom));
  std::cout << "\nsubstructures within distance 2 of S(M(S(H) S(H))):\n";
  size_t near_hits = 0;
  for (size_t i = 0; i < molecules.size(); ++i) {
    Datum near_set = OrDie(
        TreeSubSelectApprox(store, molecules[i], motif, 2, costs));
    if (near_set.size() > 0) {
      std::cout << "  molecule " << i << ": " << near_set.size()
                << " substructure(s)\n";
      near_hits += near_set.size();
    }
  }
  std::cout << "total: " << near_hits << "\n";
  return 0;
}
