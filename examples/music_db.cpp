// The §6 music database: songs are lists of notes; melodies are list
// patterns. Shows sub_select / all_anc over lists and the NFA/DFA boolean
// engines for corpus scans.
//
//   ./build/examples/example_music_db
#include <iostream>

#include "example_util.h"

using namespace aqua;
using aqua::examples::Check;
using aqua::examples::OrDie;

int main() {
  ObjectStore store;
  Check(RegisterNoteType(store));
  LabelFn pitch = AttrLabelFn(&store, "pitch");

  // A small corpus of deterministic random songs.
  std::vector<List> corpus;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SongSpec spec;
    spec.num_notes = 64;
    spec.seed = seed;
    corpus.push_back(OrDie(MakeSong(store, spec)));
  }
  std::cout << "corpus: " << corpus.size() << " songs x 64 notes\n";
  std::cout << "song 1: " << PrintList(corpus[0], pitch) << "\n\n";

  // The paper's melody [A??F]: an A, two arbitrary notes, an F.
  PredicateEnv env;
  env.Bind("A", Predicate::AttrEquals("pitch", Value::String("A")));
  env.Bind("F", Predicate::AttrEquals("pitch", Value::String("F")));
  PatternParserOptions popts;
  popts.env = &env;
  AnchoredListPattern melody = OrDie(ParseListPattern("A ? ? F", popts));

  // sub_select([A??F])(L): every phrase in every song.
  size_t total_phrases = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    Datum phrases = OrDie(ListSubSelect(store, corpus[i], melody));
    total_phrases += phrases.size();
    if (i == 0) {
      std::cout << "phrases in song 1: " << phrases.ToString(pitch) << "\n";
    }
  }
  std::cout << "phrases in corpus: " << total_phrases << "\n\n";

  // all_anc: the melody plus everything played before it.
  Datum contexts = OrDie(ListAllAnc(
      store, corpus[0], melody,
      [](const List& before, const List& match) -> Result<Datum> {
        return Datum::Tuple(
            {Datum::Scalar(Value::Int(static_cast<int64_t>(before.size() - 1))),
             Datum::Of(match)});
      }));
  std::cout << "melody positions in song 1 (notes-before, melody):\n  "
            << contexts.ToString(pitch) << "\n\n";

  // Boolean corpus scan: which songs contain the melody at all? The NFA
  // runs in O(notes x states); the lazy DFA amortizes to a table lookup
  // per note across the corpus.
  Nfa nfa = OrDie(Nfa::CompileSearch(melody.body));
  LazyDfa dfa = OrDie(LazyDfa::Make(&nfa));
  size_t nfa_hits = 0, dfa_hits = 0;
  for (const List& song : corpus) {
    if (nfa.ExistsMatch(store, song)) ++nfa_hits;
    if (dfa.ExistsMatch(store, song)) ++dfa_hits;
  }
  std::cout << "songs containing [A??F]: " << nfa_hits << "/" << corpus.size()
            << " (NFA) == " << dfa_hits << " (DFA), "
            << dfa.num_states() << " DFA states materialized\n\n";

  // A richer pattern: an A-major-ish run — A, then notes above C, then E.
  AnchoredListPattern run = OrDie(ParseListPattern(
      "{pitch == \"A\"} [[{pitch != \"A\" && pitch != \"B\"}]]+ "
      "{pitch == \"E\"}",
      popts));
  Datum runs = OrDie(ListSubSelect(store, corpus[1], run));
  std::cout << "runs in song 2: " << runs.size() << "\n";

  // Duration-sensitive pattern: a long note followed by a short one.
  AnchoredListPattern rhythm =
      OrDie(ParseListPattern("{duration >= 6} {duration <= 2}", popts));
  size_t rhythm_hits = 0;
  for (const List& song : corpus) {
    rhythm_hits += OrDie(ListSubSelect(store, song, rhythm)).size();
  }
  std::cout << "long-short pairs in corpus: " << rhythm_hits << "\n";
  return 0;
}
