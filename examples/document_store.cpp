// The introduction's multimedia motivation: documents are trees of
// components. This example drives the full query stack — Database,
// plan builder, cost-based rewriter (EXPLAIN before/after), executor —
// over a synthetic document corpus.
//
//   ./build/examples/example_document_store
#include <iostream>
#include <random>

#include "example_util.h"
#include "query/builder.h"

using namespace aqua;
using aqua::examples::Check;
using aqua::examples::OrDie;

namespace {

/// Builds a random document: doc -> sections -> paragraphs/figures/captions.
Result<Tree> MakeDocument(ObjectStore& store, uint64_t seed, size_t sections) {
  std::mt19937_64 rng(seed);
  auto node = [&](const std::string& kind, int64_t words) -> Result<Oid> {
    return store.Create("Component", {{"kind", Value::String(kind)},
                                      {"words", Value::Int(words)}});
  };
  AQUA_ASSIGN_OR_RETURN(Oid doc, node("doc", 0));
  std::vector<Tree> section_trees;
  for (size_t s = 0; s < sections; ++s) {
    AQUA_ASSIGN_OR_RETURN(Oid sec, node("section", 0));
    std::vector<Tree> kids;
    AQUA_ASSIGN_OR_RETURN(Oid title, node("title", 5));
    kids.push_back(Tree::Leaf(NodePayload::Cell(title)));
    size_t blocks = 2 + rng() % 5;
    for (size_t b = 0; b < blocks; ++b) {
      double coin = std::uniform_real_distribution<double>(0, 1)(rng);
      if (coin < 0.2) {
        // A figure, usually followed by its caption.
        AQUA_ASSIGN_OR_RETURN(Oid fig, node("figure", 0));
        kids.push_back(Tree::Leaf(NodePayload::Cell(fig)));
        if (coin < 0.15) {
          AQUA_ASSIGN_OR_RETURN(Oid cap, node("caption", 12));
          kids.push_back(Tree::Leaf(NodePayload::Cell(cap)));
        }
      } else {
        AQUA_ASSIGN_OR_RETURN(
            Oid para, node("para", static_cast<int64_t>(20 + rng() % 300)));
        kids.push_back(Tree::Leaf(NodePayload::Cell(para)));
      }
    }
    section_trees.push_back(Tree::Node(NodePayload::Cell(sec), kids));
  }
  return Tree::Node(NodePayload::Cell(doc), section_trees);
}

}  // namespace

int main() {
  Database db;
  Check(db.store()
            .schema()
            .RegisterType("Component", {{"kind", ValueType::kString, true},
                                        {"words", ValueType::kInt, true}})
            .status());
  Check(db.RegisterTree("doc", OrDie(MakeDocument(db.store(), 42, 40))));
  Check(db.CreateIndex("doc", "kind"));

  LabelFn kind = AttrLabelFn(&db.store(), "kind");
  const Tree& doc = *OrDie(db.GetTree("doc"));
  std::cout << "document: " << doc.size() << " components, height "
            << doc.Height() << ", max fanout " << doc.MaxArity() << "\n\n";

  // Query 1: "sections in which a figure is immediately followed by a
  // caption" — an order-sensitive query sets cannot express (§1).
  PredicateEnv env;
  env.Bind("section", Predicate::AttrEquals("kind", Value::String("section")));
  env.Bind("figure", Predicate::AttrEquals("kind", Value::String("figure")));
  env.Bind("caption", Predicate::AttrEquals("kind", Value::String("caption")));
  PatternParserOptions popts;
  popts.env = &env;
  TreePatternRef captioned =
      OrDie(ParseTreePattern("section(?* figure caption ?*)", popts));

  PlanRef plan = Q::TreeSubSelect(Q::ScanTree("doc"), captioned);
  std::cout << "plan:\n" << Explain(plan);

  Rewriter rewriter(&db);
  rewriter.AddDefaultRules();
  PlanRef optimized = OrDie(rewriter.Optimize(plan));
  std::cout << "optimized plan (rules:";
  for (const auto& rule : rewriter.applied()) std::cout << " " << rule;
  std::cout << "):\n" << Explain(optimized);

  Executor naive_exec(&db), opt_exec(&db);
  Datum naive = OrDie(naive_exec.Execute(plan));
  Datum optimized_result = OrDie(opt_exec.Execute(optimized));
  std::cout << "captioned-figure sections: " << optimized_result.size()
            << " (naive agrees: " << std::boolalpha
            << naive.Equals(optimized_result) << ")\n";
  std::cout << "index probe candidates: " << opt_exec.stats().index_candidates
            << " of " << doc.size() << " nodes\n\n";

  // Query 2: an uncaptioned figure at the end of a section (leaf anchor
  // irrelevant here; the $-free pattern ends at the child list's end).
  TreePatternRef dangling =
      OrDie(ParseTreePattern("section(?* figure)", popts));
  Datum dangling_sections =
      OrDie(opt_exec.Execute(Q::TreeSubSelect(Q::ScanTree("doc"), dangling)));
  std::cout << "sections ending in a bare figure: " << dangling_sections.size()
            << "\n";

  // Query 3: split out the heaviest paragraphs (> 250 words) with their
  // section context, via the primitive operator.
  TreePatternRef heavy = OrDie(ParseTreePattern("{words > 250}", popts));
  Datum heavy_paras = OrDie(opt_exec.Execute(Q::TreeAllAnc(
      Q::ScanTree("doc"), heavy,
      [](const Tree& context, const Tree& match) -> Result<Datum> {
        (void)context;
        return Datum::Of(match);
      })));
  std::cout << "paragraphs over 250 words: " << heavy_paras.size() << "\n";

  // Query 4 (list view): inside one section, find figure-then-caption as a
  // list pattern over the section's children.
  std::cout << "\nfirst section children: ";
  NodeId first_section = doc.children(doc.root())[0];
  List children;
  for (NodeId c : doc.children(first_section)) {
    children.Append(doc.payload(c));
  }
  std::cout << PrintList(children, kind) << "\n";
  AnchoredListPattern fig_cap =
      OrDie(ParseListPattern("figure caption", popts));
  Datum pairs = OrDie(ListSubSelect(db.store(), children, fig_cap));
  std::cout << "figure-caption pairs in it: " << pairs.size() << "\n";
  return 0;
}
