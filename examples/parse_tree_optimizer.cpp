// §5 of the paper: using the tree algebra to build a rewrite-based query
// optimizer *over its own parse trees*. The rewrite rule
//
//     select(R, and(p1, p2))  ≡  select(select(R, p1), p2)
//
// is implemented as split(select(!? and), f) where f reattaches the pieces
// around a rebuilt select-over-select, and applied to a fixpoint.
//
//   ./build/examples/example_parse_tree_optimizer
#include <iostream>

#include "example_util.h"

using namespace aqua;
using aqua::examples::Check;
using aqua::examples::OrDie;

namespace {

/// One pass of the §5 rewrite: returns the first rewritten tree, or the
/// input when no select(R, and(p1,p2)) occurs.
Result<Tree> RewriteOnce(ObjectStore& store, const Tree& parse_tree,
                         const TreePatternRef& pattern, bool* changed) {
  TreeMatcher matcher(store, parse_tree);
  AQUA_ASSIGN_OR_RETURN(std::vector<TreeMatch> matches,
                        matcher.FindAll(pattern));
  for (const TreeMatch& m : matches) {
    AQUA_ASSIGN_OR_RETURN(SplitPieces p, MakeSplitPieces(parse_tree, m, {}));
    // The match y is select(@a1 and(@a2 @a3)); only rewrite exact and/2.
    if (p.z.size() != 3) continue;
    AQUA_ASSIGN_OR_RETURN(
        Oid select_op,
        store.Create("ParseNode", {{"op", Value::String("select")}}));
    Tree piece = Tree::Node(
        NodePayload::Cell(select_op),
        {Tree::Node(NodePayload::Cell(select_op),
                    {Tree::Point("a1"), Tree::Point("a2")}),
         Tree::Point("a3")});
    Tree out = ConcatAt(p.x, "a", piece);
    for (size_t i = 0; i < p.z.size(); ++i) {
      out = ConcatAt(out, "a" + std::to_string(i + 1), p.z[i]);
    }
    *changed = true;
    return out;
  }
  *changed = false;
  return parse_tree;
}

size_t CountOp(const ObjectStore& store, const Tree& t,
               const std::string& op) {
  size_t n = 0;
  for (NodeId v : t.Preorder()) {
    if (!t.payload(v).is_cell()) continue;
    auto val = store.GetAttr(t.payload(v).oid(), "op");
    if (val.ok() && val->is_string() && val->string_value() == op) ++n;
  }
  return n;
}

}  // namespace

int main() {
  ObjectStore store;
  Check(RegisterParseNodeType(store));
  LabelFn op = AttrLabelFn(&store, "op");

  // A random algebra parse tree with plenty of select(_, and(_,_)) targets.
  ParseTreeSpec spec;
  spec.num_exprs = 24;
  spec.and_fraction = 0.8;
  spec.seed = 5;
  Tree parse_tree = OrDie(MakeQueryParseTree(store, spec));
  std::cout << "input parse tree (" << parse_tree.size() << " nodes):\n  "
            << PrintTree(parse_tree, op) << "\n\n";

  PredicateEnv env;
  env.Bind("select", Predicate::AttrEquals("op", Value::String("select")));
  env.Bind("and", Predicate::AttrEquals("op", Value::String("and")));
  PatternParserOptions popts;
  popts.env = &env;
  TreePatternRef pattern = OrDie(ParseTreePattern("select(!? and)", popts));

  size_t before = CountOp(store, parse_tree, "and");
  std::cout << "conjunctive select predicates before: " << before << "\n";

  // Apply the rule to a fixpoint (each pass splits one conjunction).
  size_t passes = 0;
  bool changed = true;
  while (changed) {
    parse_tree = OrDie(RewriteOnce(store, parse_tree, pattern, &changed));
    if (changed) ++passes;
    if (passes > 200) break;  // safety net
  }

  std::cout << "rewrite passes applied: " << passes << "\n";
  std::cout << "select(_, and(_, _)) occurrences after: "
            << [&] {
                 TreeMatcher matcher(store, parse_tree);
                 auto matches = matcher.FindAll(pattern);
                 return matches.ok() ? matches->size() : size_t{0};
               }()
            << "\n";
  std::cout << "select operators after: "
            << CountOp(store, parse_tree, "select") << "\n\n";
  std::cout << "optimized parse tree (" << parse_tree.size() << " nodes):\n  "
            << PrintTree(parse_tree, op) << "\n";
  Check(parse_tree.Validate());
  return 0;
}
