#include "lint/automaton.h"

#include <cstdint>
#include <vector>

#include "lint/interval.h"
#include "pattern/nfa.h"

namespace aqua::lint {

namespace {

using Transition = Nfa::Transition;

/// Whether an edge can ever be taken by any element.
bool EdgeLive(const Transition& t, const std::vector<bool>& pred_sat) {
  if (t.kind == Transition::Kind::kPred) return pred_sat[t.index];
  return true;  // ε, `?`, and point edges are always takeable.
}

/// BFS over live edges from `from`, following `states[s][i].target` (or the
/// reversed adjacency when provided).
std::vector<bool> Reach(
    size_t num_states, uint32_t from,
    const std::vector<std::vector<std::pair<uint32_t, bool>>>& adj) {
  std::vector<bool> seen(num_states, false);
  std::vector<uint32_t> stack = {from};
  seen[from] = true;
  while (!stack.empty()) {
    uint32_t s = stack.back();
    stack.pop_back();
    for (const auto& [target, live] : adj[s]) {
      if (!live || seen[target]) continue;
      seen[target] = true;
      stack.push_back(target);
    }
  }
  return seen;
}

/// DFS 3-coloring over ε-edges restricted to `live` states; true when a
/// back edge closes an ε-cycle.
bool HasEpsCycle(const Nfa& nfa, const std::vector<bool>& live) {
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(nfa.num_states(), kWhite);
  // Iterative DFS: (state, next edge index) frames.
  for (uint32_t root = 0; root < nfa.num_states(); ++root) {
    if (!live[root] || color[root] != kWhite) continue;
    std::vector<std::pair<uint32_t, size_t>> stack = {{root, 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [s, i] = stack.back();
      const auto& edges = nfa.states()[s];
      if (i >= edges.size()) {
        color[s] = kBlack;
        stack.pop_back();
        continue;
      }
      const Transition& t = edges[i++];
      if (t.kind != Transition::Kind::kEpsilon || !live[t.target]) continue;
      if (color[t.target] == kGray) return true;
      if (color[t.target] == kWhite) {
        color[t.target] = kGray;
        stack.emplace_back(t.target, 0);
      }
    }
  }
  return false;
}

}  // namespace

AutomatonFacts AnalyzeListPatternAutomaton(const ListPatternRef& body) {
  AutomatonFacts facts;
  if (body == nullptr) return facts;
  Result<Nfa> compiled = Nfa::Compile(body);
  if (!compiled.ok()) return facts;
  const Nfa& nfa = *compiled;
  facts.compiled = true;

  std::vector<bool> pred_sat(nfa.num_predicates(), true);
  for (size_t i = 0; i < nfa.num_predicates(); ++i) {
    pred_sat[i] =
        AnalyzePredicateSat(nfa.preds()[i]) != PredSat::kUnsatisfiable;
  }

  // Forward and reverse adjacency with per-edge liveness.
  std::vector<std::vector<std::pair<uint32_t, bool>>> fwd(nfa.num_states());
  std::vector<std::vector<std::pair<uint32_t, bool>>> rev(nfa.num_states());
  for (uint32_t s = 0; s < nfa.num_states(); ++s) {
    for (const Transition& t : nfa.states()[s]) {
      bool live = EdgeLive(t, pred_sat);
      fwd[s].emplace_back(t.target, live);
      rev[t.target].emplace_back(s, live);
    }
  }

  std::vector<bool> from_start = Reach(nfa.num_states(), nfa.start(), fwd);
  std::vector<bool> to_accept = Reach(nfa.num_states(), nfa.accept(), rev);
  facts.language_empty = !from_start[nfa.accept()];

  std::vector<bool> eps(nfa.num_states(), false);
  eps[nfa.start()] = true;
  nfa.EpsClosure(&eps);
  facts.accepts_empty = eps[nfa.accept()];

  std::vector<bool> live(nfa.num_states(), false);
  for (uint32_t s = 0; s < nfa.num_states(); ++s) {
    live[s] = from_start[s] && to_accept[s];
  }
  facts.has_live_eps_cycle = HasEpsCycle(nfa, live);
  return facts;
}

}  // namespace aqua::lint
