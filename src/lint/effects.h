#ifndef AQUA_LINT_EFFECTS_H_
#define AQUA_LINT_EFFECTS_H_

#include <cstddef>
#include <map>
#include <string>

#include "algebra/fn_expr.h"
#include "query/plan.h"

namespace aqua::lint {

/// Effect/purity analysis of a plan's function parameters (the second half
/// of lint v2). Every operator that takes a function — `apply`, `split`,
/// `all_anc`, `all_desc` and their list forms — is classified on the
/// `FnEffect` lattice:
///
///   * `apply` built via `Q::TreeApplyExpr`/`Q::ListApplyExpr` carries a
///     structured `FnExpr`, whose effect is decided by induction
///     (fn_expr.h): identity/const are pure, predicate guards are
///     read-only, updates are store-mutating.
///   * a bare `std::function` (the classic builder path, and all
///     split-family callbacks today) is opaque — nothing is known.
///
/// `exec::Compile` consults this summary: an `apply` whose effect is at
/// most read-only is *certified* and fans out morsel-parallel like the
/// select operators (byte-identical to serial); everything else keeps the
/// pessimistic serial path.
struct EffectSummary {
  /// Effect of each node's own function parameter; nodes without function
  /// parameters are absent.
  std::map<const PlanNode*, FnEffect> node_effects;
  /// Nodes carrying any function parameter.
  size_t fn_nodes = 0;
  /// `apply` nodes whose function is certified parallel-safe.
  size_t certified_applies = 0;
  /// `apply` nodes that stay serial (opaque or store-mutating function).
  size_t uncertified_applies = 0;
  /// Max effect across the plan (kPure when no node has a function).
  FnEffect plan_effect = FnEffect::kPure;

  /// One line per function-carrying node, e.g.
  /// `TreeApply fn=choose(...) effect=read-only parallel=certified`.
  std::string ToString() const;
};

/// True when `node` takes a function parameter at all.
bool NodeHasFn(const PlanNode& node);

/// Effect of `node`'s own function parameter. kPure for operators without
/// one; kOpaque for any bare `std::function`; the expression's inferred
/// effect for structured applies.
FnEffect NodeFnEffect(const PlanNode& node);

/// True when `node` is a tree/list `apply` whose function is certified for
/// the morsel-parallel fan-out (effect at most read-only). This is the
/// exact predicate `exec::Compile` uses to flip the apply operators from
/// serial to parallel.
bool NodeParallelCertified(const PlanNode& node);

/// True when `node` is a *store-mutating* tree/list `apply` certified for
/// the snapshot-delta parallel path: a structured expression of effect
/// kStoreWrite whose order-dependence analysis (`FnExprSnapshotSafety`)
/// finds no overlap between what it reads and what it writes in place.
/// Each worker then evaluates against the query snapshot into a
/// thread-local delta, and the item-order delta fold commits a result
/// byte-identical to serial execution.
bool NodeSnapshotWriteCertified(const PlanNode& node);

/// Classifies every node of `plan`. Emits the `lint.effects_analyzed`
/// counter once per call and `lint.applies_certified` per certified apply.
EffectSummary AnalyzeEffects(const PlanRef& plan);

}  // namespace aqua::lint

#endif  // AQUA_LINT_EFFECTS_H_
