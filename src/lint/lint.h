#ifndef AQUA_LINT_LINT_H_
#define AQUA_LINT_LINT_H_

#include <string>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/pattern_lint.h"
#include "query/database.h"
#include "query/plan.h"

namespace aqua::lint {

struct PlanLintOptions {
  /// Source text of the pattern/predicate parameters, when the plan was
  /// built from one piece of text (the shell's case); rendered under carets.
  std::string pattern_source;
};

/// The static-analysis pass between parse and execute: walks the plan and
/// emits every pattern-, predicate-, and plan-level finding.
///
/// Plan-level checks (the `LintPlan` extension of `ValidatePlanPatterns`):
///  * AQL012 — scans naming collections the database does not have;
///  * AQL010 — equality-parameter mismatches across operators: tree
///    operators fed by list scans (and vice versa), indexed operators whose
///    anchor predicate is not a comparison on the indexed attribute or
///    whose index does not exist;
///  * AQL009 — operators that provably yield no result (unsatisfiable
///    select predicates, empty pattern languages, dead index probes);
///  * AQL011 — alphabet-predicates reading computed attributes (§3.1,
///    footnote 2), via `PlanNodeStoredAttrViolations`;
///  * plus every pattern-level finding (AQL001–AQL008) from
///    `LintListPattern` / `LintTreePattern`, tagged with the operator name.
///
/// Emits `lint.diag_emitted` and per-code `lint.diag.AQLnnn` obs counters.
std::vector<Diagnostic> LintPlan(const Database& db, const PlanRef& plan,
                                 const PlanLintOptions& opts = {});

}  // namespace aqua::lint

namespace aqua {

/// Builder-level convenience: `Lint(db, plan)` with default options.
inline std::vector<lint::Diagnostic> Lint(const Database& db,
                                          const PlanRef& plan) {
  return lint::LintPlan(db, plan);
}

}  // namespace aqua

#endif  // AQUA_LINT_LINT_H_
