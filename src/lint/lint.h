#ifndef AQUA_LINT_LINT_H_
#define AQUA_LINT_LINT_H_

#include <string>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/pattern_lint.h"
#include "query/database.h"
#include "query/plan.h"

namespace aqua::lint {

struct PlanLintOptions {
  /// Source text of the pattern/predicate parameters, when the plan was
  /// built from one piece of text (the shell's case); rendered under carets.
  std::string pattern_source;
  /// Run the abstract-interpretation pass (AQL013–AQL019) on top of the
  /// base checks. On by default; tests that want only the base findings
  /// turn it off.
  bool absint = true;
};

/// How much the lint pass is allowed to interfere with execution:
///
///  * `kOff`   — plans are not linted before execution at all;
///  * `kWarn`  — findings are surfaced (the shell banner) but never block;
///  * `kError` — the executor refuses to run a plan carrying any
///               error-severity diagnostic.
enum class Level { kOff, kWarn, kError };

const char* LevelToString(Level level);

/// Parses `"off"` / `"warn"` / `"error"` (anything else: no value).
bool ParseLevel(const std::string& text, Level* out);

/// The process-wide enforcement level: the programmatic override when one
/// was set, else the `AQUA_LINT` environment variable, else `kWarn`.
Level EnforcementLevel();

/// Programmatic override of the enforcement level (the shell's
/// `\lint level` command). Takes precedence over the environment.
void set_enforcement_level(Level level);

/// True when `diags` holds any error-severity finding (what `kError`
/// refuses to execute).
bool HasErrors(const std::vector<Diagnostic>& diags);

/// The static-analysis pass between parse and execute: walks the plan and
/// emits every pattern-, predicate-, and plan-level finding.
///
/// Plan-level checks (the `LintPlan` extension of `ValidatePlanPatterns`):
///  * AQL012 — scans naming collections the database does not have;
///  * AQL010 — equality-parameter mismatches across operators: tree
///    operators fed by list scans (and vice versa), indexed operators whose
///    anchor predicate is not a comparison on the indexed attribute or
///    whose index does not exist;
///  * AQL009 — operators that provably yield no result (unsatisfiable
///    select predicates, empty pattern languages, dead index probes);
///  * AQL011 — alphabet-predicates reading computed attributes (§3.1,
///    footnote 2), via `PlanNodeStoredAttrViolations`;
///  * plus every pattern-level finding (AQL001–AQL008) from
///    `LintListPattern` / `LintTreePattern`, tagged with the operator name;
///  * plus, when `opts.absint` (the default), the abstract-interpretation
///    findings AQL013–AQL019 from `lint/absint.h` — kind-flow mismatches,
///    empty flows, tautological selects, degenerate applies, and the
///    effect pass's serial-apply notes.
///
/// Emits `lint.diag_emitted` and per-code `lint.diag.AQLnnn` obs counters.
std::vector<Diagnostic> LintPlan(const Database& db, const PlanRef& plan,
                                 const PlanLintOptions& opts = {});

}  // namespace aqua::lint

namespace aqua {

/// Builder-level convenience: `Lint(db, plan)` with default options.
inline std::vector<lint::Diagnostic> Lint(const Database& db,
                                          const PlanRef& plan) {
  return lint::LintPlan(db, plan);
}

}  // namespace aqua

#endif  // AQUA_LINT_LINT_H_
