#ifndef AQUA_LINT_DIAGNOSTIC_H_
#define AQUA_LINT_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "pattern/source_span.h"

namespace aqua::lint {

/// Stable diagnostic codes of the static-analysis pass. The numeric suffix
/// in the `AQLnnn` identifier is `static_cast<int>(code)`; codes are
/// append-only so tooling can match on them across versions.
enum class DiagCode {
  kEmptyPattern = 1,         ///< AQL001: pattern language is provably empty
  kVacuousPattern = 2,       ///< AQL002: pattern matches everything
  kDivergentClosure = 3,     ///< AQL003: closure over a nullable body
  kDeadAltBranch = 4,        ///< AQL004: alternation branch never taken
  kContradictoryPredicate = 5,  ///< AQL005: predicate is unsatisfiable
  kPointArityMismatch = 6,   ///< AQL006: concatenation point unused/misused
  kUnreachableAnchor = 7,    ///< AQL007: ⊤/⊥ anchor can never match
  kIneffectivePrune = 8,     ///< AQL008: `!` subpattern prunes nothing/all
  kEmptyOperator = 9,        ///< AQL009: operator provably yields no result
  kOperatorParamMismatch = 10,  ///< AQL010: operator parameters inconsistent
  kComputedAttribute = 11,   ///< AQL011: predicate reads a computed attribute
  kUnknownCollection = 12,   ///< AQL012: plan names an unknown collection
  // Codes 13..20 are emitted by the abstract-interpretation pass
  // (lint/absint.h), which propagates per-node facts — element kind,
  // cardinality intervals, duplicate-freeness, order, function effects —
  // through the plan.
  kKindFlowMismatch = 13,    ///< AQL013: operator consumes wrong element kind
  kEmptyInputFlow = 14,      ///< AQL014: input is provably empty
  kTautologicalSelect = 15,  ///< AQL015: select keeps everything (no-op)
  kIdentityApply = 16,       ///< AQL016: apply maps every cell to itself
  kConstantApplyCollapse = 17,  ///< AQL017: const apply collapses a set
  kUncertifiedSerialFn = 18, ///< AQL018: fn not certified; apply runs serial
  kEmptyResultFlow = 19,     ///< AQL019: whole plan provably returns empty
  kUnsafeRewrite = 20,       ///< AQL020: rewrite contradicts inferred facts
  /// AQL021: a store-writing apply expression whose snapshot-isolated
  /// parallel fold would diverge from serial (an in-place write overlaps
  /// what the expression reads), so the apply stays serial.
  kSnapshotWriteConflict = 21,
};

enum class Severity { kNote, kWarning, kError };

/// `"AQL001"` .. `"AQL021"`.
const char* DiagCodeId(DiagCode code);
/// Short kebab-case name, e.g. `"empty-pattern"`.
const char* DiagCodeName(DiagCode code);
/// The severity a diagnostic of this code is emitted with.
Severity DefaultSeverity(DiagCode code);
const char* SeverityToString(Severity severity);

/// One structured finding of the lint pass (§3 patterns, §4 plans).
struct Diagnostic {
  DiagCode code = DiagCode::kEmptyPattern;
  Severity severity = Severity::kWarning;
  std::string message;
  /// Byte range into `source`; invalid (0,0) when the construct was built
  /// programmatically or the source text is unknown.
  SourceSpan span;
  /// The pattern/predicate text `span` indexes; may be empty.
  std::string source;
  /// Where the finding was made, e.g. a plan operator name ("TreeSubSelect");
  /// empty for bare pattern lints.
  std::string context;
};

/// True when `d.span` genuinely indexes `d.source` — a valid range lying
/// entirely inside the text. Diagnostics from programmatically built plans
/// carry spans into text the caller never supplied (or no span at all);
/// those must render spanless rather than caret into the wrong string.
bool SpanAddressesSource(const Diagnostic& d);

/// One line: `warning AQL003 [divergent-closure] <message>`, with
/// ` (at offset B..E)` appended only when the span addresses the source
/// (offsets into text nobody can see are noise, not location).
std::string FormatDiagnostic(const Diagnostic& d);

/// Multi-line rendering with the source line and a `^~~~` caret underline
/// when the span addresses the source; falls back to `FormatDiagnostic`
/// otherwise — never an empty or misaligned caret block.
std::string RenderDiagnostic(const Diagnostic& d);

/// Renders a batch, one `RenderDiagnostic` per entry.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diags);

}  // namespace aqua::lint

#endif  // AQUA_LINT_DIAGNOSTIC_H_
