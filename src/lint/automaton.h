#ifndef AQUA_LINT_AUTOMATON_H_
#define AQUA_LINT_AUTOMATON_H_

#include "pattern/list_pattern.h"

namespace aqua::lint {

/// Facts derived from the Thompson NFA of a list pattern, with predicate
/// transitions weighted by `AnalyzePredicateSat`: an edge guarded by an
/// unsatisfiable predicate is dead.
struct AutomatonFacts {
  /// False when the pattern could not be compiled (it contains tree-pattern
  /// atoms); the other fields are then meaningless.
  bool compiled = false;
  /// No string of elements reaches the accept state over live edges.
  bool language_empty = false;
  /// The empty sequence is accepted (accept ∈ ε-closure(start)).
  bool accepts_empty = false;
  /// A cycle of ε-edges among live states (reachable from start *and*
  /// co-reachable to accept): the match relation diverges — the NFA
  /// simulation is safe, but a backtracking matcher can re-derive the same
  /// empty iteration forever. Produced by closures over nullable bodies.
  bool has_live_eps_cycle = false;
};

/// Compiles `body` and analyzes it. Never fails: an uncompilable pattern
/// yields `compiled == false`.
AutomatonFacts AnalyzeListPatternAutomaton(const ListPatternRef& body);

}  // namespace aqua::lint

#endif  // AQUA_LINT_AUTOMATON_H_
