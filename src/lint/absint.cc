#include "lint/absint.h"

#include <algorithm>
#include <utility>

#include "lint/effects.h"
#include "lint/interval.h"
#include "lint/pattern_lint.h"
#include "obs/metrics.h"

namespace aqua::lint {

namespace {

uint64_t MinU(uint64_t a, uint64_t b) { return a < b ? a : b; }

bool RequiresTreeElems(PlanOp op) {
  switch (op) {
    case PlanOp::kTreeSelect:
    case PlanOp::kTreeApply:
    case PlanOp::kTreeSubSelect:
    case PlanOp::kTreeSplit:
    case PlanOp::kTreeAllAnc:
    case PlanOp::kTreeAllDesc:
      return true;
    default:
      return false;
  }
}

bool RequiresListElems(PlanOp op) {
  switch (op) {
    case PlanOp::kListSelect:
    case PlanOp::kListApply:
    case PlanOp::kListSubSelect:
    case PlanOp::kListSplit:
    case PlanOp::kListAllAnc:
    case PlanOp::kListAllDesc:
      return true;
    default:
      return false;
  }
}

bool IsApplyOp(PlanOp op) {
  return op == PlanOp::kTreeApply || op == PlanOp::kListApply;
}

/// Cardinality of an apply's output given its input. An isomorphic map
/// keeps a single collection single; over a *set* input the images are
/// re-inserted into a set, so a non-injective expression may collapse
/// distinct inputs onto one image: the lower bound drops to one.
CardInterval ApplyCard(const PlanFacts& in, const FnExprRef& expr) {
  if (!in.is_set) return in.card;
  if (in.card.provably_empty()) return CardInterval::Empty();
  if (expr != nullptr && expr->kind() == FnExpr::Kind::kIdentity) {
    return in.card;  // injective: the set maps onto itself
  }
  CardInterval out;
  out.lo = MinU(in.card.lo, 1);
  if (expr != nullptr && expr->kind() == FnExpr::Kind::kConst) {
    // Every cell maps to the same oid, so every input collection maps to
    // the same collection: the set holds at most one element.
    out.hi = MinU(in.card.hi, 1);
  } else {
    out.hi = in.card.hi;
  }
  return out;
}

/// The abstract interpreter: one bottom-up pass assigning `PlanFacts` to
/// every node and emitting AQL013–AQL019 along the way.
class AbsInterpreter {
 public:
  AbsInterpreter(const Database& db, std::string pattern_source,
                 AbsIntResult* out)
      : db_(db), pattern_source_(std::move(pattern_source)), out_(out) {}

  PlanFacts Walk(const PlanRef& node) {
    if (node == nullptr) return PlanFacts{};
    PlanFacts in;  // facts of the (first) input, defaults when a leaf
    bool has_input = !node->children.empty() && node->children[0] != nullptr;
    if (has_input) in = Walk(node->children[0]);
    PlanFacts facts = Transfer(*node, in, has_input);
    Diagnose(*node, in, has_input, facts);
    out_->facts.emplace(node.get(), facts);
    return facts;
  }

 private:
  void Emit(const PlanNode& node, DiagCode code, std::string msg,
            SourceSpan span = {}) {
    Diagnostic d;
    d.code = code;
    d.severity = DefaultSeverity(code);
    d.message = std::move(msg);
    d.span = span;
    d.source = pattern_source_;
    d.context = PlanOpToString(node.op);
    out_->diags.push_back(std::move(d));
  }

  /// Facts of a scan leaf over `collection` expected to hold a tree/list.
  /// Unknown collections (AQL012 territory) get conservative defaults.
  PlanFacts ScanFacts(const std::string& collection, bool wants_tree) const {
    PlanFacts f;
    f.is_set = false;
    f.card = CardInterval::Exact(1);
    if (wants_tree) {
      f.elem = ElemKind::kTree;
      if (auto tree = db_.GetTree(collection); tree.ok()) {
        f.nodes_hi = static_cast<uint64_t>((*tree)->size());
      }
    } else {
      f.elem = ElemKind::kList;
      if (auto list = db_.GetList(collection); list.ok()) {
        f.nodes_hi = static_cast<uint64_t>((*list)->size());
      }
    }
    return f;
  }

  /// The transfer function: output facts of `node` from its input facts.
  PlanFacts Transfer(const PlanNode& node, const PlanFacts& in,
                     bool has_input) {
    PlanFacts out;
    switch (node.op) {
      case PlanOp::kScanTree:
        return ScanFacts(node.collection, /*wants_tree=*/true);
      case PlanOp::kScanList:
        return ScanFacts(node.collection, /*wants_tree=*/false);
      case PlanOp::kEmptySet:
        out.is_set = true;
        out.elem = ElemKind::kNone;
        out.card = CardInterval::Empty();
        out.nodes_hi = 0;
        return out;
      case PlanOp::kEmptyList:
        // One list with no cells — a real (single) collection.
        out.is_set = false;
        out.elem = ElemKind::kList;
        out.card = CardInterval::Exact(1);
        out.nodes_hi = 0;
        return out;

      case PlanOp::kTreeSelect: {
        // Forest result: the maximal selected subtrees of every input tree.
        out.is_set = true;
        out.elem = ElemKind::kTree;
        out.nodes_hi = in.nodes_hi;
        if (in.card.provably_empty()) {
          out.card = CardInterval::Empty();
          out.nodes_hi = 0;
          return out;
        }
        switch (AnalyzePredicateSat(node.pred)) {
          case PredSat::kUnsatisfiable:
            out.card = CardInterval::Empty();
            out.nodes_hi = 0;
            break;
          case PredSat::kTautological:
            // Every tree survives whole; set insertion of already
            // duplicate-free inputs keeps the count.
            out.card = in.card;
            break;
          case PredSat::kSatisfiable:
            // Each selected subtree is rooted at a distinct input node.
            out.card = in.nodes_hi == CardInterval::kUnbounded
                           ? CardInterval::Unknown()
                           : CardInterval::AtMost(in.nodes_hi);
            break;
        }
        return out;
      }

      case PlanOp::kListSelect: {
        // Filters cells within each list: one (possibly empty) list per
        // input list.
        out.is_set = in.is_set;
        out.elem = ElemKind::kList;
        out.nodes_hi = in.nodes_hi;
        if (in.card.provably_empty()) {
          out.card = CardInterval::Empty();
          out.nodes_hi = 0;
          return out;
        }
        switch (AnalyzePredicateSat(node.pred)) {
          case PredSat::kUnsatisfiable:
            // Every list filters to the empty list; a set input collapses
            // onto that one element.
            out.card = in.is_set
                           ? CardInterval{MinU(in.card.lo, 1),
                                          MinU(in.card.hi, 1)}
                           : in.card;
            out.nodes_hi = 0;
            break;
          case PredSat::kTautological:
            out.card = in.card;
            break;
          case PredSat::kSatisfiable:
            // Distinct lists may filter to the same list.
            out.card = in.is_set
                           ? CardInterval{MinU(in.card.lo, 1), in.card.hi}
                           : in.card;
            break;
        }
        return out;
      }

      case PlanOp::kTreeApply:
      case PlanOp::kListApply: {
        // Isomorphic map: shape and node counts carry over.
        out.is_set = in.is_set;
        out.elem =
            node.op == PlanOp::kTreeApply ? ElemKind::kTree : ElemKind::kList;
        out.card = has_input ? ApplyCard(in, node.fn_expr)
                             : CardInterval::Unknown();
        out.nodes_hi = in.nodes_hi;
        out.effect = NodeFnEffect(node);
        out.parallel_certified =
            NodeParallelCertified(node) || NodeSnapshotWriteCertified(node);
        if (in.card.provably_empty()) out.nodes_hi = 0;
        return out;
      }

      case PlanOp::kTreeSubSelect:
      case PlanOp::kIndexedSubSelect: {
        out.is_set = true;
        out.elem = ElemKind::kTree;
        PlanFacts base = node.op == PlanOp::kIndexedSubSelect
                             ? ScanFacts(node.collection, /*wants_tree=*/true)
                             : in;
        bool dead = base.card.provably_empty() ||
                    TreePatternProvablyEmpty(node.tpattern) ||
                    (node.anchor != nullptr &&
                     AnalyzePredicateSat(node.anchor) ==
                         PredSat::kUnsatisfiable);
        if (dead) {
          out.card = CardInterval::Empty();
          out.nodes_hi = 0;
          return out;
        }
        // Each matching subgraph is rooted at a distinct node, but the
        // pieces may overlap — the total cell count is unbounded.
        out.card = base.nodes_hi == CardInterval::kUnbounded
                       ? CardInterval::Unknown()
                       : CardInterval::AtMost(base.nodes_hi);
        return out;
      }

      case PlanOp::kListSubSelect:
      case PlanOp::kIndexedListSubSelect: {
        out.is_set = true;
        out.elem = ElemKind::kList;
        PlanFacts base =
            node.op == PlanOp::kIndexedListSubSelect
                ? ScanFacts(node.collection, /*wants_tree=*/false)
                : in;
        bool dead = base.card.provably_empty() ||
                    ListPatternProvablyEmpty(node.lpattern.body) ||
                    (node.anchor != nullptr &&
                     AnalyzePredicateSat(node.anchor) ==
                         PredSat::kUnsatisfiable);
        if (dead) {
          out.card = CardInterval::Empty();
          out.nodes_hi = 0;
        }
        // Matching sublists are (start, end) ranges: quadratically many.
        return out;
      }

      case PlanOp::kTreeSplit:
      case PlanOp::kTreeAllAnc:
      case PlanOp::kTreeAllDesc: {
        out.is_set = true;
        out.elem = ElemKind::kUnknown;  // f builds arbitrary datums
        out.effect = NodeFnEffect(node);
        if (in.card.provably_empty() ||
            TreePatternProvablyEmpty(node.tpattern)) {
          out.card = CardInterval::Empty();
          out.nodes_hi = 0;
        }
        return out;
      }
      case PlanOp::kListSplit:
      case PlanOp::kListAllAnc:
      case PlanOp::kListAllDesc: {
        out.is_set = true;
        out.elem = ElemKind::kUnknown;
        out.effect = NodeFnEffect(node);
        if (in.card.provably_empty() ||
            ListPatternProvablyEmpty(node.lpattern.body)) {
          out.card = CardInterval::Empty();
          out.nodes_hi = 0;
        }
        return out;
      }
    }
    return out;
  }

  /// AQL013–AQL018: per-node findings against the computed facts.
  void Diagnose(const PlanNode& node, const PlanFacts& in, bool has_input,
                const PlanFacts& facts) {
    // AQL013: the *flow* delivers elements of the wrong kind. Direct scan
    // mismatches stay AQL010 (operator-param-mismatch) in the base linter;
    // this rule fires on derived inputs, where only the inferred element
    // kind reveals the contradiction.
    if (has_input && node.children[0]->op != PlanOp::kScanTree &&
        node.children[0]->op != PlanOp::kScanList) {
      const char* from = PlanOpToString(node.children[0]->op);
      if (RequiresTreeElems(node.op) && in.elem == ElemKind::kList) {
        Emit(node, DiagCode::kKindFlowMismatch,
             std::string("tree operator consumes lists: its input (") + from +
                 ") produces list elements");
      } else if (RequiresListElems(node.op) && in.elem == ElemKind::kTree) {
        Emit(node, DiagCode::kKindFlowMismatch,
             std::string("list operator consumes trees: its input (") + from +
                 ") produces tree elements");
      }
    }

    // AQL014: the input can never deliver an element. Fires at the first
    // consumer only — where the emptiness *originates* is AQL009's job.
    if (has_input && in.card.provably_empty() && !GrandchildEmpty(node)) {
      Emit(node, DiagCode::kEmptyInputFlow,
           std::string("operator input (") +
               PlanOpToString(node.children[0]->op) +
               ") is provably empty: this operator can never see an element");
    }

    // AQL015: a select that keeps everything. An explicit `true` predicate
    // is idiomatic "no filter"; a *derived* tautology is the surprise.
    if ((node.op == PlanOp::kTreeSelect || node.op == PlanOp::kListSelect) &&
        node.pred != nullptr && node.pred->kind() != Predicate::Kind::kTrue &&
        AnalyzePredicateSat(node.pred) == PredSat::kTautological) {
      Emit(node, DiagCode::kTautologicalSelect,
           "select predicate " + node.pred->ToString() +
               " is provably true of every object: the operator keeps "
               "everything",
           node.pred->span());
    }

    if (IsApplyOp(node.op)) {
      // AQL016/AQL017: degenerate structured expressions.
      if (node.fn_expr != nullptr) {
        if (node.fn_expr->kind() == FnExpr::Kind::kIdentity) {
          Emit(node, DiagCode::kIdentityApply,
               "apply maps every cell to itself: the operator is a no-op");
        } else if (node.fn_expr->kind() == FnExpr::Kind::kConst &&
                   in.is_set && in.card.hi > 1) {
          Emit(node, DiagCode::kConstantApplyCollapse,
               "constant apply over a set input: every collection maps to "
               "the same image, so set insertion collapses the result to at "
               "most one element (input card " +
                   in.card.ToString() + ")");
        }
      }
      // AQL018/AQL021: why this apply runs serial. An opaque function is
      // AQL018 (nothing to analyze); a structured store-writing expression
      // that failed the snapshot order-dependence analysis is AQL021, with
      // the conflict witness (store-writing expressions that *pass* are
      // certified for the snapshot-delta parallel path and emit nothing).
      if (!facts.parallel_certified) {
        if (node.fn_expr == nullptr) {
          Emit(node, DiagCode::kUncertifiedSerialFn,
               "apply function is an opaque std::function: effects "
               "are unknown, so the apply runs serial (build it via "
               "TreeApplyExpr/ListApplyExpr to certify it)");
        } else {
          FnSnapshotSafety safety = FnExprSnapshotSafety(node.fn_expr);
          Emit(node, DiagCode::kSnapshotWriteConflict,
               "apply expression " + node.fn_expr->ToString() +
                   " writes the store with an order dependence (" +
                   safety.conflict +
                   "): a snapshot-parallel fold would diverge from serial, "
                   "so the apply runs serial");
        }
      }
    }
  }

  /// True when emptiness already held *below* `node`'s input — i.e. the
  /// input merely propagated it (dedups the AQL014 cascade).
  bool GrandchildEmpty(const PlanNode& node) const {
    for (const PlanRef& gc : node.children[0]->children) {
      if (gc == nullptr) continue;
      auto it = out_->facts.find(gc.get());
      if (it != out_->facts.end() && it->second.card.provably_empty()) {
        return true;
      }
    }
    return false;
  }

  const Database& db_;
  std::string pattern_source_;
  AbsIntResult* out_;
};

void RenderNode(const AbsIntResult& result, const PlanRef& node, int depth,
                std::string* out) {
  if (node == nullptr) return;
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += DescribeNode(*node);
  auto it = result.facts.find(node.get());
  if (it != result.facts.end()) {
    *out += "  :: ";
    *out += it->second.ToString();
  }
  *out += '\n';
  for (const PlanRef& child : node->children) {
    RenderNode(result, child, depth + 1, out);
  }
}

}  // namespace

std::string CardInterval::ToString() const {
  if (lo == hi) return std::to_string(lo);
  if (hi == kUnbounded) return std::to_string(lo) + "..*";
  return std::to_string(lo) + ".." + std::to_string(hi);
}

const char* ElemKindToString(ElemKind kind) {
  switch (kind) {
    case ElemKind::kTree:
      return "trees";
    case ElemKind::kList:
      return "lists";
    case ElemKind::kNone:
      return "nothing";
    case ElemKind::kUnknown:
      return "data";
  }
  return "data";
}

std::string PlanFacts::ToString() const {
  std::string out = is_set ? "set of " : "single ";
  if (!is_set) {
    // Singular form for the one-collection shapes.
    switch (elem) {
      case ElemKind::kTree:
        out += "tree";
        break;
      case ElemKind::kList:
        out += "list";
        break;
      default:
        out += "collection";
        break;
    }
  } else {
    out += ElemKindToString(elem);
  }
  out += ", card " + card.ToString();
  if (nodes_hi != CardInterval::kUnbounded) {
    out += ", <=" + std::to_string(nodes_hi) + " nodes";
  }
  if (!duplicate_free) out += ", may-duplicate";
  if (!order_preserving) out += ", unordered";
  if (effect != FnEffect::kPure) {
    out += ", effect=";
    out += FnEffectToString(effect);
  }
  if (parallel_certified) out += ", parallel-certified";
  return out;
}

AbsIntResult AnalyzePlan(const Database& db, const PlanRef& plan,
                         const std::string& pattern_source) {
  AbsIntResult result;
  AbsInterpreter interp(db, pattern_source, &result);
  result.root = interp.Walk(plan);

  // AQL019: provable emptiness flowed all the way up. Only fires when a
  // direct child is already empty — emptiness originating at the root
  // itself is AQL009's finding.
  if (plan != nullptr && result.root.card.provably_empty() &&
      !plan->children.empty()) {
    for (const PlanRef& child : plan->children) {
      if (child == nullptr) continue;
      auto it = result.facts.find(child.get());
      if (it != result.facts.end() && it->second.card.provably_empty()) {
        Diagnostic d;
        d.code = DiagCode::kEmptyResultFlow;
        d.severity = DefaultSeverity(d.code);
        d.message =
            "provable emptiness reaches the plan root: the whole query "
            "returns no result";
        d.source = pattern_source;
        d.context = PlanOpToString(plan->op);
        result.diags.push_back(std::move(d));
        break;
      }
    }
  }

  AQUA_OBS_COUNT("lint.absint_facts", result.facts.size());
  return result;
}

std::vector<Diagnostic> CheckRewriteSafety(const Database& db,
                                           const PlanRef& before,
                                           const PlanRef& after,
                                           const std::string& rule_name) {
  std::vector<Diagnostic> out;
  AbsIntResult b = AnalyzePlan(db, before);
  AbsIntResult a = AnalyzePlan(db, after);
  auto emit = [&](std::string msg) {
    Diagnostic d;
    d.code = DiagCode::kUnsafeRewrite;
    d.severity = DefaultSeverity(d.code);
    d.message = std::move(msg);
    d.context = rule_name;
    out.push_back(std::move(d));
  };

  // Shape: a set-of-collections result must stay one. Folding to the
  // constant empty set/list keeps the shape by construction, so a mismatch
  // here is a genuine rule bug.
  if (b.root.is_set != a.root.is_set) {
    emit(std::string("rewrite changes the result shape: ") +
         (b.root.is_set ? "set" : "single collection") + " before, " +
         (a.root.is_set ? "set" : "single collection") + " after");
  }
  // Element kind: only contradictory when both sides prove a (different)
  // concrete kind; kNone (provably empty) and kUnknown are compatible with
  // anything.
  auto concrete = [](ElemKind k) {
    return k == ElemKind::kTree || k == ElemKind::kList;
  };
  if (concrete(b.root.elem) && concrete(a.root.elem) &&
      b.root.elem != a.root.elem) {
    emit(std::string("rewrite changes the element kind: ") +
         ElemKindToString(b.root.elem) + " before, " +
         ElemKindToString(a.root.elem) + " after");
  }
  // Cardinality: the intervals must overlap — a rewrite cannot change how
  // many collections the query returns.
  if (b.root.card.Disjoint(a.root.card)) {
    emit("rewrite contradicts the inferred cardinality: card " +
         b.root.card.ToString() + " before is disjoint from card " +
         a.root.card.ToString() + " after");
  }
  // Invariants the algebra guarantees must not be lost by a rule.
  if (b.root.duplicate_free && !a.root.duplicate_free) {
    emit("rewrite loses duplicate-freeness");
  }
  if (b.root.order_preserving && !a.root.order_preserving) {
    emit("rewrite loses order preservation");
  }
  return out;
}

std::string RenderFacts(const Database& db, const PlanRef& plan) {
  AbsIntResult result = AnalyzePlan(db, plan);
  std::string out;
  RenderNode(result, plan, 0, &out);
  return out;
}

}  // namespace aqua::lint
