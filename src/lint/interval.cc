#include "lint/interval.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace aqua::lint {

namespace {

/// Constant families within which `Value::Compare` is total. One stored
/// attribute value belongs to exactly one family, so positive comparisons
/// against constants from two different families cannot both hold.
enum class Family { kNull, kBool, kNumeric, kString, kRef };

Family FamilyOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return Family::kNull;
    case ValueType::kBool:
      return Family::kBool;
    case ValueType::kInt:
    case ValueType::kDouble:
      return Family::kNumeric;
    case ValueType::kString:
      return Family::kString;
    case ValueType::kRef:
      return Family::kRef;
  }
  return Family::kNull;
}

/// Mirrors the comparison step of `Predicate::Eval` for a present, non-null
/// attribute value `v`: equality is total, ordering is false when the
/// operands are incomparable.
bool EvalCmp(const Value& v, CmpOp op, const Value& c) {
  if (op == CmpOp::kEq) return v.Equals(c);
  if (op == CmpOp::kNe) return !v.Equals(c);
  Result<int> cmp = v.Compare(c);
  if (!cmp.ok()) return false;
  switch (op) {
    case CmpOp::kLt:
      return *cmp < 0;
    case CmpOp::kLe:
      return *cmp <= 0;
    case CmpOp::kGt:
      return *cmp > 0;
    case CmpOp::kGe:
      return *cmp >= 0;
    default:
      return false;
  }
}

bool IsOrdered(CmpOp op) {
  return op == CmpOp::kLt || op == CmpOp::kLe || op == CmpOp::kGt ||
         op == CmpOp::kGe;
}

struct Literal {
  CmpOp op;
  const Value* constant;
};

/// Per-attribute positive and negated literals of one conjunction.
struct AttrLiterals {
  std::vector<Literal> pos;
  std::vector<Literal> neg;
};

void FlattenAnd(const PredicateRef& p, std::vector<PredicateRef>* out) {
  if (p == nullptr) return;
  if (p->kind() == Predicate::Kind::kAnd) {
    FlattenAnd(p->left(), out);
    FlattenAnd(p->right(), out);
    return;
  }
  out->push_back(p);
}

/// One-sided bound of the interval an attribute is confined to.
struct Bound {
  const Value* value = nullptr;
  bool strict = false;
};

/// Tightens `b` to the stronger of itself and (`v`, `strict`); `lower`
/// selects the max-of-lower-bounds vs min-of-upper-bounds direction.
/// Incomparable candidates are ignored (family splits are caught earlier).
void Tighten(Bound* b, const Value* v, bool strict, bool lower) {
  if (b->value == nullptr) {
    b->value = v;
    b->strict = strict;
    return;
  }
  Result<int> cmp = v->Compare(*b->value);
  if (!cmp.ok()) return;
  int c = lower ? *cmp : -*cmp;
  if (c > 0 || (c == 0 && strict && !b->strict)) {
    b->value = v;
    b->strict = strict;
  }
}

/// Decides unsatisfiability of the literals on one attribute.
bool AttrUnsat(const AttrLiterals& lits) {
  // Structural complements: `X && !X`.
  for (const Literal& p : lits.pos) {
    for (const Literal& n : lits.neg) {
      if (p.op == n.op && p.constant->Equals(*n.constant)) return true;
    }
  }

  // `x == null` is never satisfied: null attribute values do not match any
  // comparison (§3.1 evaluation semantics).
  for (const Literal& p : lits.pos) {
    if (p.op == CmpOp::kEq && p.constant->is_null()) return true;
  }

  // The constant family the attribute's value is pinned to by positive
  // equality/ordering literals. Two families → unsatisfiable.
  std::optional<Family> family;
  bool family_split = false;
  for (const Literal& p : lits.pos) {
    if (p.op != CmpOp::kEq && !IsOrdered(p.op)) continue;
    if (p.constant->is_null()) continue;
    Family f = FamilyOf(*p.constant);
    if (family.has_value() && *family != f) family_split = true;
    family = f;
  }
  if (family_split) return true;

  // Equality pinning: evaluate every other literal at the pinned value.
  const Value* pinned = nullptr;
  for (const Literal& p : lits.pos) {
    if (p.op == CmpOp::kEq) {
      pinned = p.constant;
      break;
    }
  }
  if (pinned != nullptr) {
    for (const Literal& p : lits.pos) {
      if (!EvalCmp(*pinned, p.op, *p.constant)) return true;
    }
    for (const Literal& n : lits.neg) {
      // Negated literal at a pinned present value: `!(x op c)` holds iff
      // the comparison evaluates false.
      if (EvalCmp(*pinned, n.op, *n.constant)) return true;
    }
    return false;
  }

  // Interval emptiness over ordered literals. Negated same-family ordered
  // literals fold in as their complements: presence is forced by the
  // positive literals and comparability by the pinned family.
  if (!family.has_value()) return false;
  Bound lo, hi;
  for (const Literal& p : lits.pos) {
    switch (p.op) {
      case CmpOp::kGt:
        Tighten(&lo, p.constant, /*strict=*/true, /*lower=*/true);
        break;
      case CmpOp::kGe:
        Tighten(&lo, p.constant, /*strict=*/false, /*lower=*/true);
        break;
      case CmpOp::kLt:
        Tighten(&hi, p.constant, /*strict=*/true, /*lower=*/false);
        break;
      case CmpOp::kLe:
        Tighten(&hi, p.constant, /*strict=*/false, /*lower=*/false);
        break;
      default:
        break;
    }
  }
  for (const Literal& n : lits.neg) {
    if (!IsOrdered(n.op) || FamilyOf(*n.constant) != *family) continue;
    switch (n.op) {
      case CmpOp::kLt:  // !(x < c) → x >= c
        Tighten(&lo, n.constant, /*strict=*/false, /*lower=*/true);
        break;
      case CmpOp::kLe:  // !(x <= c) → x > c
        Tighten(&lo, n.constant, /*strict=*/true, /*lower=*/true);
        break;
      case CmpOp::kGt:  // !(x > c) → x <= c
        Tighten(&hi, n.constant, /*strict=*/false, /*lower=*/false);
        break;
      case CmpOp::kGe:  // !(x >= c) → x < c
        Tighten(&hi, n.constant, /*strict=*/true, /*lower=*/false);
        break;
      default:
        break;
    }
  }
  if (lo.value != nullptr && hi.value != nullptr) {
    Result<int> cmp = lo.value->Compare(*hi.value);
    if (cmp.ok()) {
      if (*cmp > 0) return true;
      if (*cmp == 0) {
        if (lo.strict || hi.strict) return true;
        // Point interval [v, v]: excluded by `x != v` / `!(x == v)`.
        for (const Literal& p : lits.pos) {
          if (p.op == CmpOp::kNe && p.constant->Equals(*lo.value)) return true;
        }
        for (const Literal& n : lits.neg) {
          if (n.op == CmpOp::kEq && n.constant->Equals(*lo.value)) return true;
        }
      }
    }
  }
  return false;
}

bool ConjunctionUnsat(const std::vector<PredicateRef>& conjuncts) {
  std::map<std::string, AttrLiterals> by_attr;
  for (const PredicateRef& c : conjuncts) {
    if (c->kind() == Predicate::Kind::kCompare) {
      by_attr[c->attr()].pos.push_back({c->op(), &c->constant()});
    } else if (c->kind() == Predicate::Kind::kNot &&
               c->left()->kind() == Predicate::Kind::kCompare) {
      const Predicate& inner = *c->left();
      by_attr[inner.attr()].neg.push_back({inner.op(), &inner.constant()});
    }
  }
  for (const auto& [attr, lits] : by_attr) {
    if (AttrUnsat(lits)) return true;
  }
  return false;
}

}  // namespace

PredSat AnalyzePredicateSat(const PredicateRef& pred) {
  if (pred == nullptr) return PredSat::kTautological;
  switch (pred->kind()) {
    case Predicate::Kind::kTrue:
      return PredSat::kTautological;
    case Predicate::Kind::kCompare:
      if (pred->op() == CmpOp::kEq && pred->constant().is_null()) {
        return PredSat::kUnsatisfiable;
      }
      return PredSat::kSatisfiable;
    case Predicate::Kind::kNot: {
      PredSat inner = AnalyzePredicateSat(pred->left());
      if (inner == PredSat::kTautological) return PredSat::kUnsatisfiable;
      if (inner == PredSat::kUnsatisfiable) return PredSat::kTautological;
      return PredSat::kSatisfiable;
    }
    case Predicate::Kind::kOr: {
      PredSat a = AnalyzePredicateSat(pred->left());
      PredSat b = AnalyzePredicateSat(pred->right());
      if (a == PredSat::kTautological || b == PredSat::kTautological) {
        return PredSat::kTautological;
      }
      if (a == PredSat::kUnsatisfiable && b == PredSat::kUnsatisfiable) {
        return PredSat::kUnsatisfiable;
      }
      return PredSat::kSatisfiable;
    }
    case Predicate::Kind::kAnd: {
      PredSat a = AnalyzePredicateSat(pred->left());
      PredSat b = AnalyzePredicateSat(pred->right());
      if (a == PredSat::kUnsatisfiable || b == PredSat::kUnsatisfiable) {
        return PredSat::kUnsatisfiable;
      }
      std::vector<PredicateRef> conjuncts;
      FlattenAnd(pred, &conjuncts);
      if (ConjunctionUnsat(conjuncts)) return PredSat::kUnsatisfiable;
      if (a == PredSat::kTautological && b == PredSat::kTautological) {
        return PredSat::kTautological;
      }
      return PredSat::kSatisfiable;
    }
  }
  return PredSat::kSatisfiable;
}

}  // namespace aqua::lint
