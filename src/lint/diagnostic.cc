#include "lint/diagnostic.h"

#include <algorithm>

namespace aqua::lint {

const char* DiagCodeId(DiagCode code) {
  switch (code) {
    case DiagCode::kEmptyPattern:
      return "AQL001";
    case DiagCode::kVacuousPattern:
      return "AQL002";
    case DiagCode::kDivergentClosure:
      return "AQL003";
    case DiagCode::kDeadAltBranch:
      return "AQL004";
    case DiagCode::kContradictoryPredicate:
      return "AQL005";
    case DiagCode::kPointArityMismatch:
      return "AQL006";
    case DiagCode::kUnreachableAnchor:
      return "AQL007";
    case DiagCode::kIneffectivePrune:
      return "AQL008";
    case DiagCode::kEmptyOperator:
      return "AQL009";
    case DiagCode::kOperatorParamMismatch:
      return "AQL010";
    case DiagCode::kComputedAttribute:
      return "AQL011";
    case DiagCode::kUnknownCollection:
      return "AQL012";
  }
  return "AQL000";
}

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kEmptyPattern:
      return "empty-pattern";
    case DiagCode::kVacuousPattern:
      return "vacuous-pattern";
    case DiagCode::kDivergentClosure:
      return "divergent-closure";
    case DiagCode::kDeadAltBranch:
      return "dead-alt-branch";
    case DiagCode::kContradictoryPredicate:
      return "contradictory-predicate";
    case DiagCode::kPointArityMismatch:
      return "point-arity-mismatch";
    case DiagCode::kUnreachableAnchor:
      return "unreachable-anchor";
    case DiagCode::kIneffectivePrune:
      return "ineffective-prune";
    case DiagCode::kEmptyOperator:
      return "empty-operator";
    case DiagCode::kOperatorParamMismatch:
      return "operator-param-mismatch";
    case DiagCode::kComputedAttribute:
      return "computed-attribute";
    case DiagCode::kUnknownCollection:
      return "unknown-collection";
  }
  return "unknown";
}

Severity DefaultSeverity(DiagCode code) {
  switch (code) {
    // Findings that make execution fail or violate §3.1 outright.
    case DiagCode::kUnreachableAnchor:
    case DiagCode::kOperatorParamMismatch:
    case DiagCode::kComputedAttribute:
    case DiagCode::kUnknownCollection:
      return Severity::kError;
    default:
      return Severity::kWarning;
  }
}

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::string out = SeverityToString(d.severity);
  out += ' ';
  out += DiagCodeId(d.code);
  out += " [";
  out += DiagCodeName(d.code);
  out += "]";
  if (!d.context.empty()) {
    out += " in ";
    out += d.context;
  }
  out += ": ";
  out += d.message;
  if (d.span.valid()) {
    out += " (at ";
    out += d.span.ToString();
    out += ")";
  }
  return out;
}

std::string RenderDiagnostic(const Diagnostic& d) {
  std::string out = FormatDiagnostic(d);
  if (!d.span.valid() || d.source.empty() || d.span.begin >= d.source.size()) {
    return out;
  }
  size_t end = std::min<size_t>(d.span.end, d.source.size());
  out += "\n  | ";
  out += d.source;
  out += "\n  | ";
  out.append(d.span.begin, ' ');
  out += '^';
  if (end > d.span.begin + 1) out.append(end - d.span.begin - 1, '~');
  return out;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += RenderDiagnostic(d);
    out += '\n';
  }
  return out;
}

}  // namespace aqua::lint
