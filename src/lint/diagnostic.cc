#include "lint/diagnostic.h"

#include <algorithm>

namespace aqua::lint {

const char* DiagCodeId(DiagCode code) {
  switch (code) {
    case DiagCode::kEmptyPattern:
      return "AQL001";
    case DiagCode::kVacuousPattern:
      return "AQL002";
    case DiagCode::kDivergentClosure:
      return "AQL003";
    case DiagCode::kDeadAltBranch:
      return "AQL004";
    case DiagCode::kContradictoryPredicate:
      return "AQL005";
    case DiagCode::kPointArityMismatch:
      return "AQL006";
    case DiagCode::kUnreachableAnchor:
      return "AQL007";
    case DiagCode::kIneffectivePrune:
      return "AQL008";
    case DiagCode::kEmptyOperator:
      return "AQL009";
    case DiagCode::kOperatorParamMismatch:
      return "AQL010";
    case DiagCode::kComputedAttribute:
      return "AQL011";
    case DiagCode::kUnknownCollection:
      return "AQL012";
    case DiagCode::kKindFlowMismatch:
      return "AQL013";
    case DiagCode::kEmptyInputFlow:
      return "AQL014";
    case DiagCode::kTautologicalSelect:
      return "AQL015";
    case DiagCode::kIdentityApply:
      return "AQL016";
    case DiagCode::kConstantApplyCollapse:
      return "AQL017";
    case DiagCode::kUncertifiedSerialFn:
      return "AQL018";
    case DiagCode::kEmptyResultFlow:
      return "AQL019";
    case DiagCode::kUnsafeRewrite:
      return "AQL020";
    case DiagCode::kSnapshotWriteConflict:
      return "AQL021";
  }
  return "AQL000";
}

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kEmptyPattern:
      return "empty-pattern";
    case DiagCode::kVacuousPattern:
      return "vacuous-pattern";
    case DiagCode::kDivergentClosure:
      return "divergent-closure";
    case DiagCode::kDeadAltBranch:
      return "dead-alt-branch";
    case DiagCode::kContradictoryPredicate:
      return "contradictory-predicate";
    case DiagCode::kPointArityMismatch:
      return "point-arity-mismatch";
    case DiagCode::kUnreachableAnchor:
      return "unreachable-anchor";
    case DiagCode::kIneffectivePrune:
      return "ineffective-prune";
    case DiagCode::kEmptyOperator:
      return "empty-operator";
    case DiagCode::kOperatorParamMismatch:
      return "operator-param-mismatch";
    case DiagCode::kComputedAttribute:
      return "computed-attribute";
    case DiagCode::kUnknownCollection:
      return "unknown-collection";
    case DiagCode::kKindFlowMismatch:
      return "kind-flow-mismatch";
    case DiagCode::kEmptyInputFlow:
      return "empty-input-flow";
    case DiagCode::kTautologicalSelect:
      return "tautological-select";
    case DiagCode::kIdentityApply:
      return "identity-apply";
    case DiagCode::kConstantApplyCollapse:
      return "constant-apply-collapse";
    case DiagCode::kUncertifiedSerialFn:
      return "uncertified-serial-fn";
    case DiagCode::kEmptyResultFlow:
      return "empty-result-flow";
    case DiagCode::kUnsafeRewrite:
      return "unsafe-rewrite";
    case DiagCode::kSnapshotWriteConflict:
      return "snapshot-write-conflict";
  }
  return "unknown";
}

Severity DefaultSeverity(DiagCode code) {
  switch (code) {
    // Findings that make execution fail or violate §3.1 outright.
    case DiagCode::kUnreachableAnchor:
    case DiagCode::kOperatorParamMismatch:
    case DiagCode::kComputedAttribute:
    case DiagCode::kUnknownCollection:
    // Inferred-fact contradictions: the plan (or a rewrite of it) cannot
    // mean what it says.
    case DiagCode::kKindFlowMismatch:
    case DiagCode::kUnsafeRewrite:
      return Severity::kError;
    // Informational: the effect analysis explaining a scheduling decision,
    // not a defect in the query.
    case DiagCode::kUncertifiedSerialFn:
      return Severity::kNote;
    default:
      return Severity::kWarning;
  }
}

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

bool SpanAddressesSource(const Diagnostic& d) {
  return d.span.valid() && !d.source.empty() &&
         d.span.end <= d.source.size();
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::string out = SeverityToString(d.severity);
  out += ' ';
  out += DiagCodeId(d.code);
  out += " [";
  out += DiagCodeName(d.code);
  out += "]";
  if (!d.context.empty()) {
    out += " in ";
    out += d.context;
  }
  out += ": ";
  out += d.message;
  // Offsets are only printed when they index the attached source text.
  // Builder-API plans parse predicates from strings the caller never
  // passes along; their spans would point into text nobody can see.
  if (SpanAddressesSource(d)) {
    out += " (at ";
    out += d.span.ToString();
    out += ")";
  }
  return out;
}

std::string RenderDiagnostic(const Diagnostic& d) {
  std::string out = FormatDiagnostic(d);
  if (!SpanAddressesSource(d)) return out;
  out += "\n  | ";
  out += d.source;
  out += "\n  | ";
  out.append(d.span.begin, ' ');
  out += '^';
  if (d.span.end > d.span.begin + 1) {
    out.append(d.span.end - d.span.begin - 1, '~');
  }
  return out;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += RenderDiagnostic(d);
    out += '\n';
  }
  return out;
}

}  // namespace aqua::lint
