#ifndef AQUA_LINT_PATTERN_LINT_H_
#define AQUA_LINT_PATTERN_LINT_H_

#include <string>
#include <vector>

#include "lint/diagnostic.h"
#include "pattern/list_pattern.h"
#include "pattern/tree_pattern.h"

namespace aqua::lint {

struct PatternLintOptions {
  /// The text the pattern was parsed from; copied into diagnostics so they
  /// can render caret underlines. Empty for programmatic patterns.
  std::string source;
  /// True when the pattern is a whole query parameter: whole-pattern
  /// findings (emptiness AQL001, vacuity AQL002, whole-match prune AQL008)
  /// apply only then — a nullable *sub*pattern is not vacuous.
  bool query_level = true;
};

/// Lints a list pattern (§3.2): emptiness (automaton-backed), vacuity,
/// divergent closures, dead alternation branches, contradictory predicates,
/// and ineffective prunes.
std::vector<Diagnostic> LintListPattern(const AnchoredListPattern& lp,
                                        const PatternLintOptions& opts = {});

/// Lints a tree pattern (§3.3): the list checks on children sequences plus
/// concatenation-point arity (AQL006), unreachable anchors (AQL007), and
/// tree-level emptiness/prune findings.
std::vector<Diagnostic> LintTreePattern(const TreePatternRef& tp,
                                        const PatternLintOptions& opts = {});

/// Conservative AST-level emptiness: true only when no list can match.
bool ListPatternProvablyEmpty(const ListPatternRef& body);
/// True only when no tree can match.
bool TreePatternProvablyEmpty(const TreePatternRef& tp);

}  // namespace aqua::lint

#endif  // AQUA_LINT_PATTERN_LINT_H_
