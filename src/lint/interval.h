#ifndef AQUA_LINT_INTERVAL_H_
#define AQUA_LINT_INTERVAL_H_

#include "pattern/predicate.h"

namespace aqua::lint {

/// Static satisfiability of an alphabet-predicate (§3.1) under the
/// matcher's evaluation semantics (`Predicate::Eval`): a comparison whose
/// attribute is absent or null, or whose operand types are incomparable,
/// evaluates to *false*.
///
///  * `kTautological` — true of every object (only `true` and boolean
///    combinations that reduce to it; a bare comparison is never a
///    tautology because it fails on objects lacking the attribute).
///  * `kUnsatisfiable` — provably false of every object.
///  * `kSatisfiable` — everything else (the analysis is conservative: a
///    predicate it cannot refute is reported satisfiable).
enum class PredSat { kSatisfiable, kUnsatisfiable, kTautological };

/// Analyzes `pred`. A null ref (the `?` metacharacter / absent root
/// predicate) is tautological. The analysis folds through AND/OR/NOT and
/// decides conjunctions per attribute:
///
///  * structural complements (`X && !X`),
///  * equality pinning (`x == 3 && x > 7`, `x == 1 && x == 2`),
///  * comparable-family splits (`x == "a" && x < 3` — one stored value
///    cannot satisfy comparisons against incomparable constant families),
///  * interval emptiness over ordered literals, with negated same-family
///    literals folded in as their complements (`x > 5 && !(x > 3)`),
///  * point-interval exclusion (`x >= 3 && x <= 3 && x != 3`),
///  * `x == null` (never satisfied: null attribute values do not match).
PredSat AnalyzePredicateSat(const PredicateRef& pred);

}  // namespace aqua::lint

#endif  // AQUA_LINT_INTERVAL_H_
