#include "lint/pattern_lint.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "lint/automaton.h"
#include "lint/interval.h"

namespace aqua::lint {

namespace {

using LKind = ListPattern::Kind;
using TKind = TreePattern::Kind;

bool EmptyT(const TreePattern& t);

/// AST-level language emptiness (conservative: `true` is a proof).
bool EmptyL(const ListPattern& p) {
  switch (p.kind()) {
    case LKind::kPred:
      return AnalyzePredicateSat(p.pred()) == PredSat::kUnsatisfiable;
    case LKind::kAny:
    case LKind::kPoint:
      return false;
    case LKind::kConcat:
      return std::any_of(p.parts().begin(), p.parts().end(),
                         [](const ListPatternRef& q) { return EmptyL(*q); });
    case LKind::kAlt:
      return std::all_of(p.parts().begin(), p.parts().end(),
                         [](const ListPatternRef& q) { return EmptyL(*q); });
    case LKind::kStar:
      return false;  // always contains ε
    case LKind::kPlus:
    case LKind::kPrune:
      return EmptyL(*p.inner());
    case LKind::kTreeAtom:
      return EmptyT(*p.tree_atom());
  }
  return false;
}

bool EmptyT(const TreePattern& t) {
  switch (t.kind()) {
    case TKind::kLeaf:
      return t.pred() != nullptr &&
             AnalyzePredicateSat(t.pred()) == PredSat::kUnsatisfiable;
    case TKind::kNode:
      // The children sequence must match the node's *entire* child list; an
      // empty children language admits no node at all.
      if (t.pred() != nullptr &&
          AnalyzePredicateSat(t.pred()) == PredSat::kUnsatisfiable) {
        return true;
      }
      return EmptyL(*t.children());
    case TKind::kPoint:
      return false;
    case TKind::kAlt:
      return std::all_of(t.alts().begin(), t.alts().end(),
                         [](const TreePatternRef& q) { return EmptyT(*q); });
    case TKind::kConcatAt:
      return EmptyT(*t.first());
    case TKind::kStarAt:
    case TKind::kPlusAt:
    case TKind::kRootAnchor:
    case TKind::kLeafAnchor:
    case TKind::kPrune:
      return EmptyT(*t.inner());
  }
  return false;
}

/// Language ⊆ {ε}: the pattern can match at most the empty sequence.
bool OnlyEmptyL(const ListPattern& p) {
  switch (p.kind()) {
    case LKind::kConcat:
      return std::all_of(
          p.parts().begin(), p.parts().end(),
          [](const ListPatternRef& q) { return OnlyEmptyL(*q); });
    case LKind::kAlt:
      return std::all_of(
          p.parts().begin(), p.parts().end(),
          [](const ListPatternRef& q) { return OnlyEmptyL(*q); });
    case LKind::kStar:
    case LKind::kPlus:
    case LKind::kPrune:
      return OnlyEmptyL(*p.inner());
    case LKind::kPred:
    case LKind::kAny:
    case LKind::kPoint:
    case LKind::kTreeAtom:
      // Single-element atoms never contain ε; ⊆ {ε} iff the language is
      // empty outright.
      return EmptyL(p);
  }
  return false;
}

/// Language ⊇ Σ: matches any single element.
bool CoversAnyElement(const ListPattern& p) {
  switch (p.kind()) {
    case LKind::kAny:
      return true;
    case LKind::kPred:
      return AnalyzePredicateSat(p.pred()) == PredSat::kTautological;
    case LKind::kAlt:
      return std::any_of(
          p.parts().begin(), p.parts().end(),
          [](const ListPatternRef& q) { return CoversAnyElement(*q); });
    case LKind::kPrune:
      return CoversAnyElement(*p.inner());
    default:
      return false;
  }
}

/// Language ⊇ Σ*: matches every sequence.
bool CoversEverySequence(const ListPattern& p) {
  switch (p.kind()) {
    case LKind::kStar:
      return CoversAnyElement(*p.inner()) || CoversEverySequence(*p.inner());
    case LKind::kConcat:
      return !p.parts().empty() &&
             std::all_of(
                 p.parts().begin(), p.parts().end(),
                 [](const ListPatternRef& q) { return CoversEverySequence(*q); });
    case LKind::kAlt:
      return std::any_of(
          p.parts().begin(), p.parts().end(),
          [](const ListPatternRef& q) { return CoversEverySequence(*q); });
    case LKind::kPrune:
      return CoversEverySequence(*p.inner());
    default:
      return false;
  }
}

class PatternLinter {
 public:
  PatternLinter(const PatternLintOptions& opts, std::vector<Diagnostic>* out)
      : opts_(opts), out_(out) {}

  void LintAnchored(const AnchoredListPattern& lp) {
    if (lp.body == nullptr) return;
    if (opts_.query_level) {
      AutomatonFacts facts = AnalyzeListPatternAutomaton(lp.body);
      bool empty = facts.compiled ? facts.language_empty : EmptyL(*lp.body);
      if (empty) {
        Emit(DiagCode::kEmptyPattern,
             "pattern language is empty: no list can ever match",
             lp.body->span());
      } else if (!lp.anchor_begin && !lp.anchor_end && lp.body->Nullable()) {
        Emit(DiagCode::kVacuousPattern,
             "unanchored pattern matches the empty sublist, so it matches "
             "somewhere in every list; anchor it (^ / $) or require at "
             "least one element",
             lp.body->span());
      } else if (CoversEverySequence(*lp.body)) {
        Emit(DiagCode::kVacuousPattern, "pattern matches every list",
             lp.body->span());
      }
      if (lp.body->kind() == LKind::kPrune) {
        Emit(DiagCode::kIneffectivePrune,
             "the entire match is pruned: every matched sublist is cut away",
             lp.body->span());
      }
      size_t before = out_->size();
      WalkList(lp.body);
      // Automaton backstop: a live ε-cycle not already explained by a
      // closure-over-nullable finding.
      bool reported = std::any_of(
          out_->begin() + static_cast<long>(before), out_->end(),
          [](const Diagnostic& d) {
            return d.code == DiagCode::kDivergentClosure;
          });
      if (facts.compiled && facts.has_live_eps_cycle && !reported) {
        Emit(DiagCode::kDivergentClosure,
             "the pattern's automaton has a live ε-cycle: matching can "
             "re-derive the same empty iteration forever",
             lp.body->span());
      }
      return;
    }
    WalkList(lp.body);
  }

  void LintTree(const TreePatternRef& tp) {
    if (tp == nullptr) return;
    if (opts_.query_level) {
      if (EmptyT(*tp)) {
        Emit(DiagCode::kEmptyPattern,
             "tree pattern language is empty: no tree can ever match",
             tp->span());
      } else {
        // Unwrap ⊤ only: `?$` (leaf-anchored any) genuinely restricts.
        const TreePattern* core = tp.get();
        while (core->kind() == TKind::kRootAnchor) core = core->inner().get();
        if (core->kind() == TKind::kLeaf && core->is_any()) {
          Emit(DiagCode::kVacuousPattern,
               "the any-leaf pattern `?` matches at every node of every tree",
               tp->span());
        }
      }
      const TreePattern* core = tp.get();
      while (core->kind() == TKind::kRootAnchor ||
             core->kind() == TKind::kLeafAnchor) {
        core = core->inner().get();
      }
      if (core->kind() == TKind::kPrune) {
        Emit(DiagCode::kIneffectivePrune,
             "the entire match is pruned: every matched subtree is cut away",
             tp->span());
      }
    }
    WalkTree(tp, /*at_root=*/true);
  }

 private:
  void Emit(DiagCode code, std::string msg, SourceSpan span) {
    Diagnostic d;
    d.code = code;
    d.severity = DefaultSeverity(code);
    d.message = std::move(msg);
    d.span = span;
    d.source = opts_.source;
    out_->push_back(std::move(d));
  }

  /// Reports the smallest unsatisfiable subtrees of a predicate; returns
  /// true when anything under `p` (or `p` itself) was reported.
  bool LintPredicate(const PredicateRef& p, SourceSpan fallback) {
    if (p == nullptr) return false;
    bool in_child = false;
    if (p->kind() == Predicate::Kind::kAnd ||
        p->kind() == Predicate::Kind::kOr ||
        p->kind() == Predicate::Kind::kNot) {
      bool l = LintPredicate(p->left(), fallback);
      bool r = LintPredicate(p->right(), fallback);
      in_child = l || r;
    }
    if (in_child) return true;
    if (AnalyzePredicateSat(p) == PredSat::kUnsatisfiable) {
      Emit(DiagCode::kContradictoryPredicate,
           "predicate " + p->ToString() +
               " is unsatisfiable: it is false for every object",
           p->span().valid() ? p->span() : fallback);
      return true;
    }
    return false;
  }

  void WalkList(const ListPatternRef& p) {
    switch (p->kind()) {
      case LKind::kPred:
        LintPredicate(p->pred(), p->span());
        return;
      case LKind::kAny:
      case LKind::kPoint:
        return;
      case LKind::kConcat:
        for (const ListPatternRef& part : p->parts()) WalkList(part);
        return;
      case LKind::kAlt: {
        std::set<std::string> seen;
        for (const ListPatternRef& part : p->parts()) {
          if (EmptyL(*part)) {
            Emit(DiagCode::kDeadAltBranch,
                 "alternation branch can never match", part->span());
          } else if (!seen.insert(part->ToString()).second) {
            Emit(DiagCode::kDeadAltBranch,
                 "alternation branch duplicates an earlier branch",
                 part->span());
          }
          WalkList(part);
        }
        return;
      }
      case LKind::kStar:
      case LKind::kPlus:
        if (p->inner()->Nullable()) {
          Emit(DiagCode::kDivergentClosure,
               "closure over a pattern that matches the empty sequence "
               "diverges: the empty iteration can repeat forever",
               p->span());
        }
        WalkList(p->inner());
        return;
      case LKind::kPrune:
        if (p->inner()->kind() == LKind::kPrune) {
          Emit(DiagCode::kIneffectivePrune, "nested prune `!!` is redundant",
               p->span());
        } else if (OnlyEmptyL(*p->inner()) && !EmptyL(*p->inner())) {
          Emit(DiagCode::kIneffectivePrune,
               "prune of a pattern that only matches the empty sequence "
               "removes nothing",
               p->span());
        }
        WalkList(p->inner());
        return;
      case LKind::kTreeAtom:
        WalkTree(p->tree_atom(), /*at_root=*/false);
        return;
    }
  }

  void WalkTree(const TreePatternRef& t, bool at_root) {
    switch (t->kind()) {
      case TKind::kLeaf:
        if (t->pred() != nullptr) LintPredicate(t->pred(), t->span());
        return;
      case TKind::kNode:
        if (t->pred() != nullptr) LintPredicate(t->pred(), t->span());
        WalkList(t->children());
        return;
      case TKind::kPoint:
        return;
      case TKind::kAlt: {
        std::set<std::string> seen;
        for (const TreePatternRef& part : t->alts()) {
          if (EmptyT(*part)) {
            Emit(DiagCode::kDeadAltBranch,
                 "alternation branch can never match", part->span());
          } else if (!seen.insert(part->ToString()).second) {
            Emit(DiagCode::kDeadAltBranch,
                 "alternation branch duplicates an earlier branch",
                 part->span());
          }
          WalkTree(part, at_root);
        }
        return;
      }
      case TKind::kConcatAt:
        if (!t->first()->HasFreePoint(t->label())) {
          Emit(DiagCode::kPointArityMismatch,
               "left operand of concatenation at @" + t->label() +
                   " has no free point @" + t->label() +
                   ": the concatenation is the identity and the right "
                   "operand is dead (§3.3)",
               t->span());
        }
        WalkTree(t->first(), at_root);
        WalkTree(t->second(), /*at_root=*/false);
        return;
      case TKind::kStarAt:
      case TKind::kPlusAt:
        if (t->inner()->kind() == TKind::kPoint &&
            t->inner()->label() == t->label()) {
          Emit(DiagCode::kDivergentClosure,
               "closure at @" + t->label() + " over the bare point @" +
                   t->label() + " diverges: each iteration substitutes "
                   "itself",
               t->span());
        } else if (!t->inner()->HasFreePoint(t->label())) {
          Emit(DiagCode::kPointArityMismatch,
               "closure at @" + t->label() +
                   " over a pattern with no free point @" + t->label() +
                   " degenerates to a single iteration",
               t->span());
        }
        WalkTree(t->inner(), at_root);
        return;
      case TKind::kRootAnchor:
        if (!at_root) {
          Emit(DiagCode::kUnreachableAnchor,
               "root anchor (^ / ⊤) below the pattern root can never match",
               t->span());
        }
        WalkTree(t->inner(), at_root);
        return;
      case TKind::kLeafAnchor:
        WalkTree(t->inner(), at_root);
        return;
      case TKind::kPrune:
        if (t->inner()->kind() == TKind::kPrune) {
          Emit(DiagCode::kIneffectivePrune, "nested prune `!!` is redundant",
               t->span());
        }
        WalkTree(t->inner(), at_root);
        return;
    }
  }

  const PatternLintOptions& opts_;
  std::vector<Diagnostic>* out_;
};

}  // namespace

std::vector<Diagnostic> LintListPattern(const AnchoredListPattern& lp,
                                        const PatternLintOptions& opts) {
  std::vector<Diagnostic> out;
  PatternLinter(opts, &out).LintAnchored(lp);
  return out;
}

std::vector<Diagnostic> LintTreePattern(const TreePatternRef& tp,
                                        const PatternLintOptions& opts) {
  std::vector<Diagnostic> out;
  PatternLinter(opts, &out).LintTree(tp);
  return out;
}

bool ListPatternProvablyEmpty(const ListPatternRef& body) {
  if (body == nullptr) return false;
  AutomatonFacts facts = AnalyzeListPatternAutomaton(body);
  if (facts.compiled) return facts.language_empty;
  return EmptyL(*body);
}

bool TreePatternProvablyEmpty(const TreePatternRef& tp) {
  return tp != nullptr && EmptyT(*tp);
}

}  // namespace aqua::lint
