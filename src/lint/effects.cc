#include "lint/effects.h"

#include "obs/metrics.h"

namespace aqua::lint {

namespace {

FnEffect MaxEffect(FnEffect a, FnEffect b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

void WalkEffects(const PlanRef& node, EffectSummary* out) {
  if (node == nullptr) return;
  if (NodeHasFn(*node)) {
    FnEffect e = NodeFnEffect(*node);
    out->node_effects.emplace(node.get(), e);
    ++out->fn_nodes;
    out->plan_effect = MaxEffect(out->plan_effect, e);
    if (node->op == PlanOp::kTreeApply || node->op == PlanOp::kListApply) {
      if (NodeParallelCertified(*node) || NodeSnapshotWriteCertified(*node)) {
        ++out->certified_applies;
      } else {
        ++out->uncertified_applies;
      }
    }
  }
  for (const PlanRef& child : node->children) WalkEffects(child, out);
}

}  // namespace

bool NodeHasFn(const PlanNode& node) {
  switch (node.op) {
    case PlanOp::kTreeApply:
      return true;  // node_fn (possibly materialized from fn_expr)
    case PlanOp::kTreeSplit:
      return node.split_fn != nullptr;
    case PlanOp::kTreeAllAnc:
      return node.anc_fn != nullptr;
    case PlanOp::kTreeAllDesc:
      return node.desc_fn != nullptr;
    case PlanOp::kListApply:
      return true;
    case PlanOp::kListSplit:
      return node.lsplit_fn != nullptr;
    case PlanOp::kListAllAnc:
      return node.lanc_fn != nullptr;
    case PlanOp::kListAllDesc:
      return node.ldesc_fn != nullptr;
    default:
      return false;
  }
}

FnEffect NodeFnEffect(const PlanNode& node) {
  if (!NodeHasFn(node)) return FnEffect::kPure;
  if (node.op == PlanOp::kTreeApply || node.op == PlanOp::kListApply) {
    // A structured expression decides its own effect; a bare std::function
    // is opaque — there is nothing to inspect.
    return FnExprEffect(node.fn_expr);
  }
  // The split family only exists in bare-callback form today.
  return FnEffect::kOpaque;
}

bool NodeParallelCertified(const PlanNode& node) {
  if (node.op != PlanOp::kTreeApply && node.op != PlanOp::kListApply) {
    return false;
  }
  return FnEffectParallelSafe(NodeFnEffect(node));
}

bool NodeSnapshotWriteCertified(const PlanNode& node) {
  if (node.op != PlanOp::kTreeApply && node.op != PlanOp::kListApply) {
    return false;
  }
  if (NodeFnEffect(node) != FnEffect::kStoreWrite) return false;
  return FnExprSnapshotSafety(node.fn_expr).safe;
}

EffectSummary AnalyzeEffects(const PlanRef& plan) {
  EffectSummary out;
  WalkEffects(plan, &out);
  AQUA_OBS_COUNT("lint.effects_analyzed", 1);
  AQUA_OBS_COUNT("lint.applies_certified", out.certified_applies);
  return out;
}

std::string EffectSummary::ToString() const {
  std::string out = "effects: plan=" +
                    std::string(FnEffectToString(plan_effect)) + ", " +
                    std::to_string(fn_nodes) + " fn node(s), " +
                    std::to_string(certified_applies) +
                    " certified parallel apply\n";
  for (const auto& [node, effect] : node_effects) {
    out += "  ";
    out += PlanOpToString(node->op);
    if (node->fn_expr != nullptr) {
      out += " fn=" + node->fn_expr->ToString();
    } else {
      out += " fn=<opaque std::function>";
    }
    out += " effect=";
    out += FnEffectToString(effect);
    if (node->op == PlanOp::kTreeApply || node->op == PlanOp::kListApply) {
      if (NodeParallelCertified(*node)) {
        out += " parallel=certified";
      } else if (NodeSnapshotWriteCertified(*node)) {
        out += " parallel=certified-snapshot";
      } else {
        out += " parallel=serial";
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace aqua::lint
