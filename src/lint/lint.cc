#include "lint/lint.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "lint/absint.h"
#include "lint/interval.h"
#include "obs/metrics.h"
#include "query/validate.h"

namespace aqua::lint {

namespace {

/// -1 = no programmatic override; else static_cast<int>(Level).
std::atomic<int> g_level_override{-1};

bool IsTreePatternOp(PlanOp op) {
  switch (op) {
    case PlanOp::kTreeSelect:
    case PlanOp::kTreeApply:
    case PlanOp::kTreeSubSelect:
    case PlanOp::kTreeSplit:
    case PlanOp::kTreeAllAnc:
    case PlanOp::kTreeAllDesc:
      return true;
    default:
      return false;
  }
}

bool IsListPatternOp(PlanOp op) {
  switch (op) {
    case PlanOp::kListSelect:
    case PlanOp::kListApply:
    case PlanOp::kListSubSelect:
    case PlanOp::kListSplit:
    case PlanOp::kListAllAnc:
    case PlanOp::kListAllDesc:
      return true;
    default:
      return false;
  }
}

class PlanLinter {
 public:
  PlanLinter(const Database& db, const PlanLintOptions& opts,
             std::vector<Diagnostic>* out)
      : db_(db), opts_(opts), out_(out) {}

  void Walk(const PlanRef& node) {
    if (node == nullptr) return;
    LintNode(node);
    for (const PlanRef& child : node->children) Walk(child);
  }

 private:
  void Emit(const char* context, DiagCode code, std::string msg,
            SourceSpan span = {}) {
    Diagnostic d;
    d.code = code;
    d.severity = DefaultSeverity(code);
    d.message = std::move(msg);
    d.span = span;
    d.source = opts_.pattern_source;
    d.context = context;
    out_->push_back(std::move(d));
  }

  void CheckCollection(const char* ctx, const PlanNode& node,
                       bool wants_tree) {
    const std::string& name = node.collection;
    bool is_tree = db_.HasTree(name);
    bool is_list = db_.HasList(name);
    if (!is_tree && !is_list) {
      Emit(ctx, DiagCode::kUnknownCollection,
           "unknown collection '" + name + "'");
      return;
    }
    if (wants_tree && !is_tree) {
      Emit(ctx, DiagCode::kOperatorParamMismatch,
           "operator requires a tree collection but '" + name +
               "' is a list collection");
    } else if (!wants_tree && !is_list) {
      Emit(ctx, DiagCode::kOperatorParamMismatch,
           "operator requires a list collection but '" + name +
               "' is a tree collection");
    }
  }

  void CheckIndexedOp(const char* ctx, const PlanNode& node) {
    if (node.attr.empty()) {
      Emit(ctx, DiagCode::kOperatorParamMismatch,
           "indexed operator has no indexed attribute");
    } else if (!db_.indexes().Has(node.collection, node.attr)) {
      Emit(ctx, DiagCode::kOperatorParamMismatch,
           "no index on " + node.collection + "." + node.attr +
               ": the probe cannot run");
    }
    if (node.anchor == nullptr) {
      Emit(ctx, DiagCode::kOperatorParamMismatch,
           "indexed operator has no anchor predicate to probe with");
    } else if (node.anchor->kind() != Predicate::Kind::kCompare ||
               node.anchor->attr() != node.attr) {
      // The equality parameters of the §4 split-anchor rewrite must agree:
      // the probe predicate reads exactly the indexed attribute.
      Emit(ctx, DiagCode::kOperatorParamMismatch,
           "anchor predicate " + node.anchor->ToString() +
               " is not a comparison on the indexed attribute '" + node.attr +
               "'",
           node.anchor->span());
    }
  }

  void LintNode(const PlanRef& node) {
    const char* ctx = PlanOpToString(node->op);
    switch (node->op) {
      case PlanOp::kScanTree:
      case PlanOp::kIndexedSubSelect:
        CheckCollection(ctx, *node, /*wants_tree=*/true);
        break;
      case PlanOp::kScanList:
      case PlanOp::kIndexedListSubSelect:
        CheckCollection(ctx, *node, /*wants_tree=*/false);
        break;
      default:
        break;
    }
    if (node->op == PlanOp::kIndexedSubSelect ||
        node->op == PlanOp::kIndexedListSubSelect) {
      CheckIndexedOp(ctx, *node);
    }

    // Operators over the wrong scan kind: the executor rejects a list datum
    // fed to a tree operator (and vice versa) at runtime; flag it now.
    for (const PlanRef& child : node->children) {
      if (child == nullptr) continue;
      if (IsTreePatternOp(node->op) && child->op == PlanOp::kScanList) {
        Emit(ctx, DiagCode::kOperatorParamMismatch,
             "tree operator consumes the list scan of '" + child->collection +
                 "'");
      } else if (IsListPatternOp(node->op) &&
                 child->op == PlanOp::kScanTree) {
        Emit(ctx, DiagCode::kOperatorParamMismatch,
             "list operator consumes the tree scan of '" + child->collection +
                 "'");
      }
    }

    if (node->pred != nullptr &&
        AnalyzePredicateSat(node->pred) == PredSat::kUnsatisfiable) {
      Emit(ctx, DiagCode::kContradictoryPredicate,
           "select predicate " + node->pred->ToString() +
               " is unsatisfiable: it is false for every object",
           node->pred->span());
      Emit(ctx, DiagCode::kEmptyOperator,
           "select keeps nothing: its predicate is unsatisfiable (the "
           "rewriter folds this operator to an empty result)");
    }
    if (node->anchor != nullptr &&
        AnalyzePredicateSat(node->anchor) == PredSat::kUnsatisfiable) {
      Emit(ctx, DiagCode::kContradictoryPredicate,
           "anchor predicate " + node->anchor->ToString() +
               " is unsatisfiable: it is false for every object",
           node->anchor->span());
      Emit(ctx, DiagCode::kEmptyOperator,
           "index probe can never produce candidates");
    }

    PatternLintOptions popts;
    popts.source = opts_.pattern_source;
    popts.query_level = true;
    if (node->tpattern != nullptr) {
      for (Diagnostic& d : LintTreePattern(node->tpattern, popts)) {
        d.context = ctx;
        out_->push_back(std::move(d));
      }
      if (TreePatternProvablyEmpty(node->tpattern)) {
        Emit(ctx, DiagCode::kEmptyOperator,
             "pattern operator provably yields no result: its tree pattern "
             "matches nothing (the rewriter folds this operator to an empty "
             "result)");
      }
    }
    if (node->lpattern.body != nullptr) {
      for (Diagnostic& d : LintListPattern(node->lpattern, popts)) {
        d.context = ctx;
        out_->push_back(std::move(d));
      }
      if (ListPatternProvablyEmpty(node->lpattern.body)) {
        Emit(ctx, DiagCode::kEmptyOperator,
             "pattern operator provably yields no result: its list pattern "
             "matches nothing (the rewriter folds this operator to an empty "
             "result)");
      }
    }

    // §3.1, footnote 2: stored-attribute-only predicates.
    for (Diagnostic& d : PlanNodeStoredAttrViolations(db_, node)) {
      d.context = ctx;
      d.source = opts_.pattern_source;
      out_->push_back(std::move(d));
    }
  }

  const Database& db_;
  const PlanLintOptions& opts_;
  std::vector<Diagnostic>* out_;
};

}  // namespace

const char* LevelToString(Level level) {
  switch (level) {
    case Level::kOff:
      return "off";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
  }
  return "warn";
}

bool ParseLevel(const std::string& text, Level* out) {
  if (text == "off") {
    *out = Level::kOff;
  } else if (text == "warn") {
    *out = Level::kWarn;
  } else if (text == "error") {
    *out = Level::kError;
  } else {
    return false;
  }
  return true;
}

Level EnforcementLevel() {
  int override = g_level_override.load(std::memory_order_relaxed);
  if (override >= 0) return static_cast<Level>(override);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv; the knob is
  // fixed at process start and the override above is the mutable path.
  if (const char* env = std::getenv("AQUA_LINT")) {
    Level level;
    if (ParseLevel(env, &level)) return level;
  }
  return Level::kWarn;
}

void set_enforcement_level(Level level) {
  g_level_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::vector<Diagnostic> LintPlan(const Database& db, const PlanRef& plan,
                                 const PlanLintOptions& opts) {
  std::vector<Diagnostic> out;
  PlanLinter(db, opts, &out).Walk(plan);
  if (opts.absint) {
    AbsIntResult facts = AnalyzePlan(db, plan, opts.pattern_source);
    for (Diagnostic& d : facts.diags) out.push_back(std::move(d));
  }
  AQUA_OBS_COUNT("lint.diag_emitted", out.size());
#ifndef AQUA_OBS_DISABLED
  if (obs::Registry::enabled()) {
    for (const Diagnostic& d : out) {
      obs::Registry::Global()
          .GetCounter(std::string("lint.diag.") + DiagCodeId(d.code))
          ->Add(1);
    }
  }
#endif
  return out;
}

}  // namespace aqua::lint
