#ifndef AQUA_LINT_ABSINT_H_
#define AQUA_LINT_ABSINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algebra/fn_expr.h"
#include "lint/diagnostic.h"
#include "query/database.h"
#include "query/plan.h"

namespace aqua::lint {

/// Interval of collection counts `[lo, hi]` with an unbounded upper
/// sentinel. The unit is *collections* (trees/lists in a result set; a
/// single-collection result is exactly [1, 1]), matching what the cost
/// model calls `out_collections`.
struct CardInterval {
  static constexpr uint64_t kUnbounded = UINT64_MAX;

  uint64_t lo = 0;
  uint64_t hi = kUnbounded;

  static CardInterval Exact(uint64_t n) { return {n, n}; }
  static CardInterval Empty() { return {0, 0}; }
  static CardInterval AtMost(uint64_t n) { return {0, n}; }
  static CardInterval Unknown() { return {0, kUnbounded}; }

  bool provably_empty() const { return hi == 0; }
  bool bounded() const { return hi != kUnbounded; }
  /// True when the intervals share no point — the core contradiction test
  /// of the rewrite-safety checker.
  bool Disjoint(const CardInterval& other) const {
    return hi < other.lo || other.hi < lo;
  }
  /// Rendered as `0..*`, `1`, or `0..48`.
  std::string ToString() const;
};

/// What kind of element a plan node's result holds.
enum class ElemKind {
  kTree,     ///< ordered trees
  kList,     ///< ordered lists
  kNone,     ///< the empty set: no elements to have a kind
  kUnknown,  ///< split-family outputs (arbitrary `Datum`s from callbacks)
};

const char* ElemKindToString(ElemKind kind);

/// The abstract value one plan node evaluates to: the fact domain of the
/// abstract interpreter. Every field is a *proved* property — the analysis
/// is conservative and falls back to the unknown element of each domain.
struct PlanFacts {
  /// Set-of-collections result (fan-out ops) vs a single collection.
  bool is_set = false;
  ElemKind elem = ElemKind::kUnknown;
  /// Collections in the result.
  CardInterval card;
  /// Upper bound on total cells across the result's collections
  /// (`kUnbounded` when unknown). Exact for scans; apply preserves it.
  uint64_t nodes_hi = CardInterval::kUnbounded;
  /// Set results are duplicate-free by construction (set insertion
  /// deduplicates); single collections trivially so. Stays true through
  /// every operator in the algebra — recorded so the rewrite checker can
  /// assert no rule output loses it.
  bool duplicate_free = true;
  /// Result enumeration order is derived from document order (selects,
  /// matches in enumeration order). All current operators preserve it;
  /// the checker asserts rewrites do too.
  bool order_preserving = true;
  /// Effect of this node's own function parameter (kPure when none).
  FnEffect effect = FnEffect::kPure;
  /// This node is an `apply` certified for morsel-parallel fan-out.
  bool parallel_certified = false;

  /// e.g. `set of trees, card 0..48, <=200 nodes, effect=read-only`.
  std::string ToString() const;
};

/// Everything one `AnalyzePlan` pass produced.
struct AbsIntResult {
  /// Facts per plan node (absent for null subtrees).
  std::map<const PlanNode*, PlanFacts> facts;
  /// AQL013–AQL019 findings (AQL020 comes from `CheckRewriteSafety`).
  std::vector<Diagnostic> diags;

  /// Facts of the root node (defaults when the plan was null).
  PlanFacts root;
};

/// Runs the abstract interpreter over `plan`: propagates `PlanFacts`
/// bottom-up through every operator and surfaces contradictions and
/// provably-degenerate subplans:
///
///  * AQL013 `kind-flow-mismatch`   — an operator consumes elements of the
///    wrong kind through the flow (e.g. a tree select over the set-of-lists
///    output of a list sub_select); direct scan mismatches stay AQL010.
///  * AQL014 `empty-input-flow`     — the input is provably empty, so the
///    operator (however well-formed) can never see an element.
///  * AQL015 `tautological-select`  — a select whose predicate is provably
///    true of every object: the operator keeps everything.
///  * AQL016 `identity-apply`      — an apply whose expression is identity.
///  * AQL017 `constant-apply-collapse` — a constant apply over a set input:
///    set insertion collapses the output to at most one element.
///  * AQL018 `uncertified-serial-fn` (note) — an apply whose function is
///    opaque or store-mutating, forcing the serial path.
///  * AQL019 `empty-result-flow`    — provable emptiness reached the root:
///    the whole query returns nothing.
///
/// `pattern_source` is threaded onto diagnostics exactly as in `LintPlan`.
/// Emits `lint.absint_facts` (nodes analyzed) per pass.
AbsIntResult AnalyzePlan(const Database& db, const PlanRef& plan,
                         const std::string& pattern_source = {});

/// Asserts the §4 rewrite `before → after` against the inferred facts and
/// returns AQL020 `unsafe-rewrite` diagnostics for every contradiction: a
/// result-shape change (set vs single), an element-kind change, disjoint
/// cardinality intervals, or a lost duplicate-freeness/order invariant.
/// The rewriter rejects any candidate this reports on (and counts it in
/// `lint.rewrites_rejected`); an empty result certifies the rewrite.
std::vector<Diagnostic> CheckRewriteSafety(const Database& db,
                                           const PlanRef& before,
                                           const PlanRef& after,
                                           const std::string& rule_name);

/// `Explain`-style rendering of the plan with each node annotated by its
/// facts — what the shell's `\lint` shows.
std::string RenderFacts(const Database& db, const PlanRef& plan);

}  // namespace aqua::lint

#endif  // AQUA_LINT_ABSINT_H_
