#include "approx/approx_ops.h"

#include <algorithm>
#include <cmath>

namespace aqua {

namespace {

/// Lower bound on edit distance under unit-cost models: the size delta
/// (every surplus node must be inserted or deleted). Holds as long as the
/// user costs are >= 1 per insert/delete, which we do not verify — the
/// bound is only used when `use_bound` is true (unit default costs).
double SizeLowerBound(size_t a, size_t b) {
  return a > b ? static_cast<double>(a - b) : static_cast<double>(b - a);
}

}  // namespace

Result<Datum> TreeSubSelectApprox(const StoreView& store, const Tree& tree,
                                  const Tree& query, double max_distance,
                                  const EditCosts& costs) {
  (void)store;
  if (max_distance < 0) {
    return Status::InvalidArgument("max_distance must be non-negative");
  }
  Datum out = Datum::Set({});
  if (tree.empty()) return out;
  for (NodeId v : tree.Preorder()) {
    // Candidate pruning: subtree sizes further apart than the threshold
    // cannot be within it (unit-cost lower bound).
    size_t sub_size = tree.PreorderFrom(v).size();
    if (SizeLowerBound(sub_size, query.size()) > max_distance) continue;
    Tree candidate = tree.SubtreeCopy(v);
    AQUA_ASSIGN_OR_RETURN(double dist,
                          TreeEditDistance(candidate, query, costs));
    if (dist <= max_distance) out.SetInsert(Datum::Of(std::move(candidate)));
  }
  return out;
}

Result<std::vector<ScoredSubtree>> NearestSubtrees(const StoreView& store,
                                                   const Tree& tree,
                                                   const Tree& query,
                                                   size_t top_n,
                                                   const EditCosts& costs) {
  (void)store;
  std::vector<ScoredSubtree> scored;
  if (tree.empty() || top_n == 0) return scored;
  for (NodeId v : tree.Preorder()) {
    Tree candidate = tree.SubtreeCopy(v);
    AQUA_ASSIGN_OR_RETURN(double dist,
                          TreeEditDistance(candidate, query, costs));
    scored.push_back(ScoredSubtree{dist, std::move(candidate)});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredSubtree& a, const ScoredSubtree& b) {
                     return a.distance < b.distance;
                   });
  if (scored.size() > top_n) scored.resize(top_n);
  return scored;
}

}  // namespace aqua
