#ifndef AQUA_APPROX_TREE_EDIT_DISTANCE_H_
#define AQUA_APPROX_TREE_EDIT_DISTANCE_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "object/object_store.h"
#include "bulk/tree.h"

namespace aqua {

/// Cost model for tree edit operations (insert, delete, rename).
///
/// §7 of the paper points at Wang/Shasha/Zhang's distance-based tree
/// queries ("give me all the subtrees of T which almost satisfy P") and
/// notes "such metrics are easily accommodated in our formalisms"; this
/// module supplies the metric. Costs must be non-negative; rename of equal
/// payloads should be 0 for a proper metric.
struct EditCosts {
  std::function<double(const NodePayload&)> insert_cost =
      [](const NodePayload&) { return 1.0; };
  std::function<double(const NodePayload&)> delete_cost =
      [](const NodePayload&) { return 1.0; };
  std::function<double(const NodePayload&, const NodePayload&)> rename_cost =
      [](const NodePayload& a, const NodePayload& b) {
        return a == b ? 0.0 : 1.0;
      };
};

/// An `EditCosts` whose rename compares one stored attribute of the cell
/// objects (points compare by label); unit insert/delete. The returned
/// costs retain `store`, which must outlive them.
EditCosts AttrEditCosts(const ObjectStore* store, std::string attr);

/// Ordered tree edit distance (Zhang–Shasha): the minimum total cost of
/// node insertions, deletions, and renames transforming `a` into `b`,
/// preserving sibling order and ancestry.
///
/// O(|a|·|b|·min(depth,leaves)²) time, O(|a|·|b|) space.
Result<double> TreeEditDistance(const Tree& a, const Tree& b,
                                const EditCosts& costs = {});

}  // namespace aqua

#endif  // AQUA_APPROX_TREE_EDIT_DISTANCE_H_
