#ifndef AQUA_APPROX_APPROX_OPS_H_
#define AQUA_APPROX_APPROX_OPS_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "approx/tree_edit_distance.h"
#include "bulk/datum.h"
#include "bulk/tree.h"
#include "object/object_store.h"

namespace aqua {

/// The §7 query "give me all the subtrees of T which almost satisfy
/// pattern P", with the pattern given by example (a query tree) and
/// "almost" by an edit-distance threshold.
///
/// Returns the set of subtrees of `tree` whose distance to `query` is at
/// most `max_distance`. A cheap size-difference lower bound prunes
/// candidates before the full O(n·m) distance computation.
Result<Datum> TreeSubSelectApprox(const StoreView& store, const Tree& tree,
                                  const Tree& query, double max_distance,
                                  const EditCosts& costs = {});

/// One scored candidate of a nearest-subtree search.
struct ScoredSubtree {
  double distance = 0;
  Tree subtree;
};

/// The `top_n` subtrees of `tree` closest to `query` under the metric,
/// ascending by distance (ties broken by preorder position).
Result<std::vector<ScoredSubtree>> NearestSubtrees(const StoreView& store,
                                                   const Tree& tree,
                                                   const Tree& query,
                                                   size_t top_n,
                                                   const EditCosts& costs = {});

}  // namespace aqua

#endif  // AQUA_APPROX_APPROX_OPS_H_
