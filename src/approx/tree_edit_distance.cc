#include "approx/tree_edit_distance.h"

#include <algorithm>
#include <vector>

namespace aqua {

EditCosts AttrEditCosts(const ObjectStore* store, std::string attr) {
  EditCosts costs;
  costs.rename_cost = [store, attr = std::move(attr)](
                          const NodePayload& a, const NodePayload& b) {
    if (a.is_concat_point() || b.is_concat_point()) {
      return a == b ? 0.0 : 1.0;
    }
    auto va = store->GetAttr(a.oid(), attr);
    auto vb = store->GetAttr(b.oid(), attr);
    if (!va.ok() || !vb.ok()) return a == b ? 0.0 : 1.0;
    return va->Equals(*vb) ? 0.0 : 1.0;
  };
  return costs;
}

namespace {

/// Postorder view of a tree for the Zhang–Shasha algorithm: nodes numbered
/// 1..n in postorder, with l(i) = postorder number of the leftmost leaf of
/// the subtree rooted at i, and the LR-keyroots.
struct PostorderView {
  std::vector<NodePayload> payload;  // 1-based
  std::vector<size_t> leftmost;      // 1-based: l(i)
  std::vector<size_t> keyroots;      // ascending

  explicit PostorderView(const Tree& tree) {
    payload.push_back(NodePayload::ConcatPoint(""));  // 1-based padding
    leftmost.push_back(0);
    if (tree.empty()) return;
    Walk(tree, tree.root());
    // Keyroots: nodes that are not the leftmost child of their parent —
    // equivalently, the maximum postorder index for each distinct l value.
    size_t n = payload.size() - 1;
    std::vector<bool> seen_l(n + 1, false);
    for (size_t i = n; i >= 1; --i) {
      if (!seen_l[leftmost[i]]) {
        seen_l[leftmost[i]] = true;
        keyroots.push_back(i);
      }
    }
    std::sort(keyroots.begin(), keyroots.end());
  }

  size_t size() const { return payload.size() - 1; }

 private:
  // Returns (postorder index of root of the walked subtree, its l()).
  std::pair<size_t, size_t> Walk(const Tree& tree, NodeId v) {
    size_t my_l = 0;
    bool first = true;
    for (NodeId c : tree.children(v)) {
      auto [child_idx, child_l] = Walk(tree, c);
      (void)child_idx;
      if (first) {
        my_l = child_l;
        first = false;
      }
    }
    payload.push_back(tree.payload(v));
    leftmost.push_back(0);
    size_t my_idx = payload.size() - 1;
    if (first) my_l = my_idx;  // leaf: leftmost leaf is itself
    leftmost[my_idx] = my_l;
    return {my_idx, my_l};
  }
};

class ZhangShasha {
 public:
  ZhangShasha(const PostorderView& a, const PostorderView& b,
              const EditCosts& costs)
      : a_(a),
        b_(b),
        costs_(costs),
        treedist_(a.size() + 1, std::vector<double>(b.size() + 1, 0)) {}

  double Run() {
    if (a_.size() == 0 && b_.size() == 0) return 0;
    if (a_.size() == 0) return InsertAll();
    if (b_.size() == 0) return DeleteAll();
    for (size_t i : a_.keyroots) {
      for (size_t j : b_.keyroots) {
        ForestDist(i, j);
      }
    }
    return treedist_[a_.size()][b_.size()];
  }

 private:
  double InsertAll() {
    double total = 0;
    for (size_t j = 1; j <= b_.size(); ++j) {
      total += costs_.insert_cost(b_.payload[j]);
    }
    return total;
  }

  double DeleteAll() {
    double total = 0;
    for (size_t i = 1; i <= a_.size(); ++i) {
      total += costs_.delete_cost(a_.payload[i]);
    }
    return total;
  }

  void ForestDist(size_t i, size_t j) {
    size_t li = a_.leftmost[i], lj = b_.leftmost[j];
    size_t rows = i - li + 2, cols = j - lj + 2;
    // fd[x][y]: distance between forests a[li..li+x-1] and b[lj..lj+y-1].
    std::vector<std::vector<double>> fd(rows, std::vector<double>(cols, 0));
    for (size_t x = 1; x < rows; ++x) {
      fd[x][0] = fd[x - 1][0] + costs_.delete_cost(a_.payload[li + x - 1]);
    }
    for (size_t y = 1; y < cols; ++y) {
      fd[0][y] = fd[0][y - 1] + costs_.insert_cost(b_.payload[lj + y - 1]);
    }
    for (size_t x = 1; x < rows; ++x) {
      size_t di = li + x - 1;  // node index in a
      for (size_t y = 1; y < cols; ++y) {
        size_t dj = lj + y - 1;  // node index in b
        double del = fd[x - 1][y] + costs_.delete_cost(a_.payload[di]);
        double ins = fd[x][y - 1] + costs_.insert_cost(b_.payload[dj]);
        if (a_.leftmost[di] == li && b_.leftmost[dj] == lj) {
          // Both prefixes are whole trees: rename is admissible and this
          // entry doubles as treedist(di, dj).
          double ren = fd[x - 1][y - 1] +
                       costs_.rename_cost(a_.payload[di], b_.payload[dj]);
          fd[x][y] = std::min({del, ins, ren});
          treedist_[di][dj] = fd[x][y];
        } else {
          // Splice in the precomputed subtree distance.
          size_t px = a_.leftmost[di] - li;  // forest boundary before di's tree
          size_t py = b_.leftmost[dj] - lj;
          double sub = fd[px][py] + treedist_[di][dj];
          fd[x][y] = std::min({del, ins, sub});
        }
      }
    }
  }

  const PostorderView& a_;
  const PostorderView& b_;
  const EditCosts& costs_;
  std::vector<std::vector<double>> treedist_;
};

}  // namespace

Result<double> TreeEditDistance(const Tree& a, const Tree& b,
                                const EditCosts& costs) {
  if (!costs.insert_cost || !costs.delete_cost || !costs.rename_cost) {
    return Status::InvalidArgument("edit cost functions must all be set");
  }
  PostorderView va(a), vb(b);
  ZhangShasha zs(va, vb, costs);
  return zs.Run();
}

}  // namespace aqua
