#include "pattern/predicate.h"

namespace aqua {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

PredicateRef Predicate::True() {
  static const PredicateRef kTrue = [] {
    auto p = std::shared_ptr<Predicate>(new Predicate());
    p->kind_ = Kind::kTrue;
    return p;
  }();
  return kTrue;
}

PredicateRef Predicate::Compare(std::string attr, CmpOp op, Value constant) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kCompare;
  p->attr_ = std::move(attr);
  p->op_ = op;
  p->constant_ = std::move(constant);
  return p;
}

PredicateRef Predicate::AttrEquals(std::string attr, Value constant) {
  return Compare(std::move(attr), CmpOp::kEq, std::move(constant));
}

PredicateRef Predicate::And(PredicateRef a, PredicateRef b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return p;
}

PredicateRef Predicate::Or(PredicateRef a, PredicateRef b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return p;
}

PredicateRef Predicate::Not(PredicateRef a) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->left_ = std::move(a);
  return p;
}

namespace {

// One body for the three store surfaces (snapshot view, head, txn overlay);
// each instantiation resolves GetAttr non-virtually except StoreTxn.
template <typename Src>
bool EvalOn(const Predicate& p, const Src& store, Oid oid) {
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kCompare: {
      auto value = store.GetAttr(oid, p.attr());
      if (!value.ok() || value->is_null()) return false;
      switch (p.op()) {
        case CmpOp::kEq:
          return value->Equals(p.constant());
        case CmpOp::kNe:
          return !value->Equals(p.constant());
        default: {
          auto cmp = value->Compare(p.constant());
          if (!cmp.ok()) return false;
          switch (p.op()) {
            case CmpOp::kLt:
              return *cmp < 0;
            case CmpOp::kLe:
              return *cmp <= 0;
            case CmpOp::kGt:
              return *cmp > 0;
            case CmpOp::kGe:
              return *cmp >= 0;
            default:
              return false;
          }
        }
      }
    }
    case Predicate::Kind::kAnd:
      return EvalOn(*p.left(), store, oid) && EvalOn(*p.right(), store, oid);
    case Predicate::Kind::kOr:
      return EvalOn(*p.left(), store, oid) || EvalOn(*p.right(), store, oid);
    case Predicate::Kind::kNot:
      return !EvalOn(*p.left(), store, oid);
  }
  return false;
}

}  // namespace

bool Predicate::Eval(const StoreView& store, Oid oid) const {
  return EvalOn(*this, store, oid);
}

bool Predicate::Eval(const ObjectStore& store, Oid oid) const {
  return EvalOn(*this, store, oid);
}

bool Predicate::Eval(const StoreTxn& store, Oid oid) const {
  return EvalOn(*this, store, oid);
}

Status Predicate::ValidateAgainst(const TypeDef& type) const {
  switch (kind_) {
    case Kind::kTrue:
      return Status::OK();
    case Kind::kCompare: {
      AQUA_ASSIGN_OR_RETURN(size_t idx, type.AttrIndex(attr_));
      if (!type.attrs()[idx].stored) {
        return Status::InvalidArgument(
            "alphabet-predicates may only use stored attributes; '" + attr_ +
            "' of type '" + type.name() + "' is computed (§3.1)");
      }
      return Status::OK();
    }
    case Kind::kAnd:
    case Kind::kOr:
      AQUA_RETURN_IF_ERROR(left_->ValidateAgainst(type));
      return right_->ValidateAgainst(type);
    case Kind::kNot:
      return left_->ValidateAgainst(type);
  }
  return Status::OK();
}

void Predicate::CollectAttrs(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kTrue:
      return;
    case Kind::kCompare:
      out->push_back(attr_);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left_->CollectAttrs(out);
      right_->CollectAttrs(out);
      return;
    case Kind::kNot:
      left_->CollectAttrs(out);
      return;
  }
}

size_t Predicate::SizeInNodes() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kCompare:
      return 1;
    case Kind::kAnd:
    case Kind::kOr:
      return 1 + left_->SizeInNodes() + right_->SizeInNodes();
    case Kind::kNot:
      return 1 + left_->SizeInNodes();
  }
  return 1;
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kCompare:
      return attr_ + " " + CmpOpToString(op_) + " " + constant_.ToString();
    case Kind::kAnd:
      return "(" + left_->ToString() + " && " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " || " + right_->ToString() + ")";
    case Kind::kNot:
      return "!(" + left_->ToString() + ")";
  }
  return "?";
}

void PredicateEnv::Bind(std::string name, PredicateRef pred) {
  for (auto& kv : bindings_) {
    if (kv.first == name) {
      kv.second = std::move(pred);
      return;
    }
  }
  bindings_.emplace_back(std::move(name), std::move(pred));
}

Result<PredicateRef> PredicateEnv::Lookup(const std::string& name) const {
  for (const auto& kv : bindings_) {
    if (kv.first == name) return kv.second;
  }
  return Status::NotFound("no predicate named '" + name + "'");
}

bool PredicateEnv::Has(const std::string& name) const {
  for (const auto& kv : bindings_) {
    if (kv.first == name) return true;
  }
  return false;
}

}  // namespace aqua
