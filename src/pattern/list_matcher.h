#ifndef AQUA_PATTERN_LIST_MATCHER_H_
#define AQUA_PATTERN_LIST_MATCHER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/result.h"
#include "object/object_store.h"
#include "bulk/list.h"
#include "pattern/list_pattern.h"

namespace aqua {

/// One way a list pattern matches a sublist (§3.4).
struct ListMatch {
  /// Matched sublist is `[begin, end)`.
  size_t begin = 0;
  size_t end = 0;
  /// Positions inside `[begin, end)` consumed under a `!` scope, sorted.
  /// These elements are pruned from the result and become cut pieces.
  std::vector<size_t> pruned;

  /// Maximal runs of pruned positions, as `[first, last)` ranges in order.
  std::vector<std::pair<size_t, size_t>> PruneRanges() const;

  friend bool operator==(const ListMatch& a, const ListMatch& b) {
    return a.begin == b.begin && a.end == b.end && a.pruned == b.pruned;
  }
  friend bool operator<(const ListMatch& a, const ListMatch& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    if (a.end != b.end) return a.end < b.end;
    return a.pruned < b.pruned;
  }
};

/// Options bounding match enumeration.
struct ListMatchOptions {
  /// Stop after this many matches (0 = unlimited).
  size_t max_matches = 0;
  /// Keep only the first derivation found per (begin, end) extent; distinct
  /// prune decompositions of the same extent are dropped.
  bool distinct_extents_only = false;
  /// Abort with InvalidArgument after this many atom probes (0 = unlimited).
  /// Backtracking over ambiguous closures can be exponential (the paper's
  /// footnote 3); a budget turns a runaway query into an error the caller
  /// can handle (e.g. by falling back to the NFA for boolean questions).
  size_t max_steps = 0;
};

/// Backtracking pattern matcher over a list instance.
///
/// Elements that are concatenation points (§3.5) are invisible to
/// alphabet-predicates and `?`; they are matched only by pattern points with
/// the same label. A pattern point may also match the empty string (a NULL
/// closing, §3.3), so `@a` in a pattern consumes either one same-labeled
/// instance point or nothing.
///
/// Thread model: a ListMatcher carries per-call mutable state (`steps_`)
/// and must not be shared between threads; the algebra layer constructs
/// one per (list, call). Concurrent matchers over different lists are safe
/// — each holds a `StoreView` pinning one immutable store epoch (passing
/// an `ObjectStore` snapshots it at construction).
class ListMatcher {
 public:
  ListMatcher(StoreView store, const List& list)
      : store_(std::move(store)), list_(list) {}

  /// Enumerates all matches (all begin positions unless anchored, all
  /// derivations deduplicated), ordered by (begin, end, prunes).
  Result<std::vector<ListMatch>> FindAll(const AnchoredListPattern& pattern,
                                         const ListMatchOptions& opts = {});

  /// Enumerates matches beginning only at the given positions (the physical
  /// operator behind index-anchored list sub_select). `begins` must be
  /// sorted ascending; a `^` anchor further restricts to position 0.
  Result<std::vector<ListMatch>> FindAllAtBegins(
      const AnchoredListPattern& pattern, const std::vector<size_t>& begins,
      const ListMatchOptions& opts = {});

  /// True when the entire list is in the pattern's language.
  Result<bool> MatchesWhole(const ListPatternRef& body);

  /// Atom probes executed by the last call (work measure for benchmarks).
  size_t steps() const { return steps_; }

 private:
  Status ValidateListPattern(const ListPattern& p) const;

  StoreView store_;
  const List& list_;
  size_t steps_ = 0;
};

}  // namespace aqua

#endif  // AQUA_PATTERN_LIST_MATCHER_H_
