#include "pattern/tree_pattern.h"

namespace aqua {

TreePatternRef TreePattern::Leaf(PredicateRef pred) {
  auto p = std::shared_ptr<TreePattern>(new TreePattern());
  p->kind_ = Kind::kLeaf;
  p->pred_ = std::move(pred);
  return p;
}

TreePatternRef TreePattern::AnyLeaf() { return Leaf(nullptr); }

TreePatternRef TreePattern::Node(PredicateRef pred, ListPatternRef children) {
  auto p = std::shared_ptr<TreePattern>(new TreePattern());
  p->kind_ = Kind::kNode;
  p->pred_ = std::move(pred);
  p->children_ = std::move(children);
  return p;
}

TreePatternRef TreePattern::Point(std::string label) {
  auto p = std::shared_ptr<TreePattern>(new TreePattern());
  p->kind_ = Kind::kPoint;
  p->label_ = std::move(label);
  return p;
}

TreePatternRef TreePattern::Alt(std::vector<TreePatternRef> alts) {
  auto p = std::shared_ptr<TreePattern>(new TreePattern());
  p->kind_ = Kind::kAlt;
  p->parts_ = std::move(alts);
  return p;
}

TreePatternRef TreePattern::ConcatAt(TreePatternRef first, std::string label,
                                     TreePatternRef second) {
  auto p = std::shared_ptr<TreePattern>(new TreePattern());
  p->kind_ = Kind::kConcatAt;
  p->label_ = std::move(label);
  p->parts_ = {std::move(first), std::move(second)};
  return p;
}

TreePatternRef TreePattern::StarAt(TreePatternRef inner, std::string label) {
  auto p = std::shared_ptr<TreePattern>(new TreePattern());
  p->kind_ = Kind::kStarAt;
  p->label_ = std::move(label);
  p->parts_ = {std::move(inner)};
  return p;
}

TreePatternRef TreePattern::PlusAt(TreePatternRef inner, std::string label) {
  auto p = std::shared_ptr<TreePattern>(new TreePattern());
  p->kind_ = Kind::kPlusAt;
  p->label_ = label;
  p->star_form_ = StarAt(inner, label);
  p->parts_ = {std::move(inner)};
  return p;
}

TreePatternRef TreePattern::RootAnchor(TreePatternRef inner) {
  auto p = std::shared_ptr<TreePattern>(new TreePattern());
  p->kind_ = Kind::kRootAnchor;
  p->parts_ = {std::move(inner)};
  return p;
}

TreePatternRef TreePattern::LeafAnchor(TreePatternRef inner) {
  auto p = std::shared_ptr<TreePattern>(new TreePattern());
  p->kind_ = Kind::kLeafAnchor;
  p->parts_ = {std::move(inner)};
  return p;
}

TreePatternRef TreePattern::Prune(TreePatternRef inner) {
  auto p = std::shared_ptr<TreePattern>(new TreePattern());
  p->kind_ = Kind::kPrune;
  p->parts_ = {std::move(inner)};
  return p;
}

namespace {

size_t ListPatternTreeSize(const ListPattern& lp);

size_t TreeSize(const TreePattern& tp) {
  switch (tp.kind()) {
    case TreePattern::Kind::kLeaf:
    case TreePattern::Kind::kPoint:
      return 1;
    case TreePattern::Kind::kNode:
      return 1 + ListPatternTreeSize(*tp.children());
    default: {
      size_t n = 1;
      for (const auto& part : tp.alts()) n += TreeSize(*part);
      return n;
    }
  }
}

size_t ListPatternTreeSize(const ListPattern& lp) {
  if (lp.kind() == ListPattern::Kind::kTreeAtom) {
    return TreeSize(*lp.tree_atom());
  }
  size_t n = 1;
  for (const auto& part : lp.parts()) n += ListPatternTreeSize(*part);
  return n;
}

bool ListHasFreePoint(const ListPattern& lp, const std::string& label);

bool TreeHasFreePoint(const TreePattern& tp, const std::string& label) {
  switch (tp.kind()) {
    case TreePattern::Kind::kLeaf:
      return false;
    case TreePattern::Kind::kPoint:
      return tp.label() == label;
    case TreePattern::Kind::kNode:
      return ListHasFreePoint(*tp.children(), label);
    case TreePattern::Kind::kConcatAt: {
      bool in_first =
          tp.label() == label ? false : TreeHasFreePoint(*tp.first(), label);
      return in_first || TreeHasFreePoint(*tp.second(), label);
    }
    case TreePattern::Kind::kStarAt:
    case TreePattern::Kind::kPlusAt:
      // The closure itself exposes its point for further concatenation
      // (`[ac]* ∘ [b]` passes through the closure's point).
      if (tp.label() == label) return true;
      return TreeHasFreePoint(*tp.inner(), label);
    case TreePattern::Kind::kAlt: {
      for (const auto& part : tp.alts()) {
        if (TreeHasFreePoint(*part, label)) return true;
      }
      return false;
    }
    case TreePattern::Kind::kRootAnchor:
    case TreePattern::Kind::kLeafAnchor:
    case TreePattern::Kind::kPrune:
      return TreeHasFreePoint(*tp.inner(), label);
  }
  return false;
}

bool ListHasFreePoint(const ListPattern& lp, const std::string& label) {
  switch (lp.kind()) {
    case ListPattern::Kind::kPoint:
      return lp.label() == label;
    case ListPattern::Kind::kTreeAtom:
      return TreeHasFreePoint(*lp.tree_atom(), label);
    default: {
      for (const auto& part : lp.parts()) {
        if (ListHasFreePoint(*part, label)) return true;
      }
      return false;
    }
  }
}

std::string PredToString(const PredicateRef& pred) {
  if (pred == nullptr) return "?";
  return "{" + pred->ToString() + "}";
}

}  // namespace

size_t TreePattern::SizeInNodes() const { return TreeSize(*this); }

bool TreePattern::HasFreePoint(const std::string& label) const {
  return TreeHasFreePoint(*this, label);
}

std::string TreePattern::ToString() const {
  switch (kind_) {
    case Kind::kLeaf:
      return PredToString(pred_);
    case Kind::kNode:
      return PredToString(pred_) + "(" + children_->ToString() + ")";
    case Kind::kPoint:
      return "@" + label_;
    case Kind::kAlt: {
      std::string out = "[[";
      for (size_t i = 0; i < parts_.size(); ++i) {
        if (i > 0) out += " | ";
        out += parts_[i]->ToString();
      }
      return out + "]]";
    }
    case Kind::kConcatAt:
      return "[[" + parts_[0]->ToString() + " .@" + label_ + " " +
             parts_[1]->ToString() + "]]";
    case Kind::kStarAt:
      return "[[" + parts_[0]->ToString() + "]]*@" + label_;
    case Kind::kPlusAt:
      return "[[" + parts_[0]->ToString() + "]]+@" + label_;
    case Kind::kRootAnchor:
      return "^" + parts_[0]->ToString();
    case Kind::kLeafAnchor:
      return "[[" + parts_[0]->ToString() + "]]$";
    case Kind::kPrune:
      return "!" + parts_[0]->ToString();
  }
  return "?";
}

}  // namespace aqua
