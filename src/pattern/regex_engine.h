#ifndef AQUA_PATTERN_REGEX_ENGINE_H_
#define AQUA_PATTERN_REGEX_ENGINE_H_

#include <functional>

#include "pattern/list_pattern.h"

namespace aqua {

/// Continuation invoked with the position reached after a (partial) match.
using RegexCont = std::function<void(size_t)>;

/// Backtracking interpreter for the `ListPattern` regular-expression
/// structure, parameterized over how *atoms* are matched.
///
/// The engine handles the structural kinds (`kConcat`, `kAlt`, `kStar`,
/// `kPlus`, `kPrune`) and delegates every atom kind (`kPred`, `kAny`,
/// `kPoint`, `kTreeAtom`) to `atom`, which must invoke the continuation once
/// per way the atom can match starting at `pos` (typically `cont(pos + 1)`
/// after consuming one element; a pattern concatenation point may consume
/// zero). The `pruned` flag is true inside a `!` scope (§3.4): elements
/// consumed there are pruned from results and become cut pieces.
///
/// `kStar`/`kPlus` iterations are required to consume at least one element,
/// which keeps nullable-body closures from looping forever without changing
/// the recognized language.
///
/// All derivations are enumerated (the caller deduplicates results); the
/// engine itself is linear in pattern size per derivation step but may
/// explore exponentially many derivations for ambiguous patterns — the
/// paper's footnote 3 acknowledges this, and `pattern/nfa.h` provides the
/// efficient boolean path.
template <typename AtomMatcher>
class RegexEngine {
 public:
  explicit RegexEngine(const AtomMatcher& atom) : atom_(atom) {}

  void Run(const ListPattern* p, size_t pos, bool pruned,
           const RegexCont& cont) const {
    switch (p->kind()) {
      case ListPattern::Kind::kConcat:
        RunSeq(p->parts(), 0, pos, pruned, cont);
        return;
      case ListPattern::Kind::kAlt: {
        for (const auto& alt : p->parts()) {
          Run(alt.get(), pos, pruned, cont);
        }
        return;
      }
      case ListPattern::Kind::kStar:
        RunStar(p->inner().get(), pos, pruned, cont);
        return;
      case ListPattern::Kind::kPlus: {
        const ListPattern* body = p->inner().get();
        Run(body, pos, pruned, [this, body, pruned, &cont](size_t next) {
          RunStar(body, next, pruned, cont);
        });
        return;
      }
      case ListPattern::Kind::kPrune:
        Run(p->inner().get(), pos, /*pruned=*/true, cont);
        return;
      case ListPattern::Kind::kPred:
      case ListPattern::Kind::kAny:
      case ListPattern::Kind::kPoint:
      case ListPattern::Kind::kTreeAtom:
        atom_(*p, pos, pruned, cont);
        return;
    }
  }

 private:
  void RunSeq(const std::vector<ListPatternRef>& parts, size_t i, size_t pos,
              bool pruned, const RegexCont& cont) const {
    if (i == parts.size()) {
      cont(pos);
      return;
    }
    Run(parts[i].get(), pos, pruned,
        [this, &parts, i, pruned, &cont](size_t next) {
          RunSeq(parts, i + 1, next, pruned, cont);
        });
  }

  void RunStar(const ListPattern* body, size_t pos, bool pruned,
               const RegexCont& cont) const {
    cont(pos);
    Run(body, pos, pruned, [this, body, pos, pruned, &cont](size_t next) {
      if (next > pos) RunStar(body, next, pruned, cont);
    });
  }

  const AtomMatcher& atom_;
};

}  // namespace aqua

#endif  // AQUA_PATTERN_REGEX_ENGINE_H_
