#ifndef AQUA_PATTERN_SIMPLIFY_H_
#define AQUA_PATTERN_SIMPLIFY_H_

#include "pattern/list_pattern.h"
#include "pattern/tree_pattern.h"

namespace aqua {

class PredicateInterner;

/// Language-preserving normalization of list patterns, applied by the
/// optimizer before costing (smaller patterns → tighter estimates and less
/// backtracking):
///
///  * nested concatenations and disjunctions flatten;
///  * single-part concatenations/disjunctions unwrap;
///  * duplicate disjunction branches collapse;
///  * `x**`, `(x+)*`, `(x*)+` → `x*`;  `x++` → `x+`;  `!!x` → `!x`;
///  * structurally identical predicate subtrees dedupe to one shared
///    `PredicateRef` (the first occurrence stays pointer-identical; later
///    duplicates alias it), so downstream alphabet extraction
///    (`pattern/alphabet.h`) and NFA compilation see one predicate.
ListPatternRef SimplifyListPattern(const ListPatternRef& pattern);

/// As above, interning predicate leaves through `interner` (nullable: no
/// deduplication then). Passing one interner across several patterns makes
/// duplicate predicates alias *across* the batch — how
/// `exec::CompileBatch` shares alphabet slots between grouped queries.
ListPatternRef SimplifyListPattern(const ListPatternRef& pattern,
                                   PredicateInterner* interner);

/// Tree-pattern normalization:
///
///  * disjunctions flatten/dedupe/unwrap;
///  * `^^x` → `^x`, double leaf anchors and double prunes collapse;
///  * `t1 ∘_α t2` → `t1` when `t1` has no free point `α` (the identity
///    §3.3 states outright);
///  * children sequences are simplified recursively;
///  * node/leaf predicates dedupe structurally, as in the list form.
TreePatternRef SimplifyTreePattern(const TreePatternRef& pattern);

/// As above with a caller-supplied (nullable) predicate interner.
TreePatternRef SimplifyTreePattern(const TreePatternRef& pattern,
                                   PredicateInterner* interner);

}  // namespace aqua

#endif  // AQUA_PATTERN_SIMPLIFY_H_
