#ifndef AQUA_PATTERN_SIMPLIFY_H_
#define AQUA_PATTERN_SIMPLIFY_H_

#include "pattern/list_pattern.h"
#include "pattern/tree_pattern.h"

namespace aqua {

/// Language-preserving normalization of list patterns, applied by the
/// optimizer before costing (smaller patterns → tighter estimates and less
/// backtracking):
///
///  * nested concatenations and disjunctions flatten;
///  * single-part concatenations/disjunctions unwrap;
///  * duplicate disjunction branches collapse;
///  * `x**`, `(x+)*`, `(x*)+` → `x*`;  `x++` → `x+`;  `!!x` → `!x`.
ListPatternRef SimplifyListPattern(const ListPatternRef& pattern);

/// Tree-pattern normalization:
///
///  * disjunctions flatten/dedupe/unwrap;
///  * `^^x` → `^x`, double leaf anchors and double prunes collapse;
///  * `t1 ∘_α t2` → `t1` when `t1` has no free point `α` (the identity
///    §3.3 states outright);
///  * children sequences are simplified recursively.
TreePatternRef SimplifyTreePattern(const TreePatternRef& pattern);

}  // namespace aqua

#endif  // AQUA_PATTERN_SIMPLIFY_H_
