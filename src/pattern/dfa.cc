#include "pattern/dfa.h"

namespace aqua {

Result<LazyDfa> LazyDfa::Make(const Nfa* nfa) {
  if (nfa == nullptr) return Status::InvalidArgument("null NFA");
  if (nfa->num_predicates() > 58) {
    return Status::InvalidArgument(
        "lazy DFA supports at most 58 distinct predicates per pattern");
  }
  return LazyDfa(nfa);
}

LazyDfa::LazyDfa(const Nfa* nfa) : nfa_(nfa) {
  std::vector<bool> init(nfa_->num_states(), false);
  init[nfa_->start()] = true;
  nfa_->EpsClosure(&init);
  start_state_ = InternState(init);
}

uint64_t LazyDfa::Signature(const Nfa::ElementFacts& facts) const {
  uint64_t sig = 0;
  for (size_t i = 0; i < facts.pred_sat.size(); ++i) {
    if (facts.pred_sat[i]) sig |= (uint64_t{1} << i);
  }
  size_t base = facts.pred_sat.size();
  if (facts.is_cell) sig |= (uint64_t{1} << base);
  if (facts.label_index != Nfa::ElementFacts::kNoLabel) {
    // Point labels are few; fold the index into the high bits.
    sig |= (uint64_t{facts.label_index} + 2) << (base + 1);
  }
  return sig;
}

uint32_t LazyDfa::InternState(const std::vector<bool>& set) {
  auto it = state_ids_.find(set);
  if (it != state_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(dfa_states_.size());
  state_ids_.emplace(set, id);
  dfa_states_.push_back(set);
  accepting_.push_back(set[nfa_->accept()]);
  return id;
}

uint32_t LazyDfa::StepState(uint32_t state, const ObjectStore& store,
                            const NodePayload& e) {
  Nfa::ElementFacts facts = nfa_->Facts(store, e);
  uint64_t sig = Signature(facts);
  auto key = std::make_pair(state, sig);
  auto it = trans_.find(key);
  if (it != trans_.end()) return it->second;
  std::vector<bool> next = nfa_->Step(dfa_states_[state], facts);
  uint32_t next_id = InternState(next);
  trans_.emplace(key, next_id);
  return next_id;
}

bool LazyDfa::MatchesWhole(const ObjectStore& store, const List& list) {
  uint32_t cur = start_state_;
  for (size_t i = 0; i < list.size(); ++i) {
    cur = StepState(cur, store, list.at(i));
  }
  return accepting_[cur];
}

bool LazyDfa::ExistsMatch(const ObjectStore& store, const List& list) {
  uint32_t cur = start_state_;
  if (accepting_[cur]) return true;
  bool search = nfa_->search_mode();
  for (size_t i = 0; i < list.size(); ++i) {
    cur = StepState(cur, store, list.at(i));
    if (!search) {
      // Re-inject the start set: union current with the initial closure.
      std::vector<bool> merged = dfa_states_[cur];
      const std::vector<bool>& init = dfa_states_[start_state_];
      for (size_t s = 0; s < merged.size(); ++s) {
        if (init[s]) merged[s] = true;
      }
      cur = InternState(merged);
    }
    if (accepting_[cur]) return true;
  }
  return false;
}

}  // namespace aqua
