#include "pattern/dfa.h"

#include "obs/metrics.h"

namespace aqua {

namespace {

/// Flushes the cache hit/miss deltas of one public-API call to the
/// registry on every exit path.
struct DfaStatFlush {
  const uint64_t* hits;
  const uint64_t* misses;
  uint64_t hits0;
  uint64_t misses0;
  DfaStatFlush(const uint64_t* h, const uint64_t* m)
      : hits(h), misses(m), hits0(*h), misses0(*m) {}
  ~DfaStatFlush() {
    if (*hits > hits0) AQUA_OBS_COUNT("pattern.dfa_hits", *hits - hits0);
    if (*misses > misses0) {
      AQUA_OBS_COUNT("pattern.dfa_misses", *misses - misses0);
      // Each miss fell back to one NFA simulation step.
      AQUA_OBS_COUNT("pattern.nfa_steps", *misses - misses0);
    }
  }
};

}  // namespace

Result<LazyDfa> LazyDfa::Make(const Nfa* nfa) {
  if (nfa == nullptr) return Status::InvalidArgument("null NFA");
  if (nfa->num_predicates() > 58) {
    return Status::InvalidArgument(
        "lazy DFA supports at most 58 distinct predicates per pattern");
  }
  return LazyDfa(nfa);
}

LazyDfa::LazyDfa(const Nfa* nfa) : nfa_(nfa) {
  std::vector<bool> init(nfa_->num_states(), false);
  init[nfa_->start()] = true;
  nfa_->EpsClosure(&init);
  start_state_ = InternState(init);
}

uint64_t LazyDfa::Signature(const Nfa::ElementFacts& facts) const {
  uint64_t sig = 0;
  for (size_t i = 0; i < facts.pred_sat.size(); ++i) {
    if (facts.pred_sat[i]) sig |= (uint64_t{1} << i);
  }
  size_t base = facts.pred_sat.size();
  if (facts.is_cell) sig |= (uint64_t{1} << base);
  if (facts.label_index != Nfa::ElementFacts::kNoLabel) {
    // Point labels are few; fold the index into the high bits.
    sig |= (uint64_t{facts.label_index} + 2) << (base + 1);
  }
  return sig;
}

uint32_t LazyDfa::InternState(const std::vector<bool>& set) {
  auto it = state_ids_.find(set);
  if (it != state_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(dfa_states_.size());
  state_ids_.emplace(set, id);
  dfa_states_.push_back(set);
  accepting_.push_back(set[nfa_->accept()]);
  return id;
}

uint32_t LazyDfa::StepState(uint32_t state, const StoreView& store,
                            const NodePayload& e) {
  Nfa::ElementFacts facts = nfa_->Facts(store, e);
  uint64_t sig = Signature(facts);
  auto key = std::make_pair(state, sig);
  auto it = trans_.find(key);
  if (it != trans_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  std::vector<bool> next = nfa_->Step(dfa_states_[state], facts);
  uint32_t next_id = InternState(next);
  trans_.emplace(key, next_id);
  return next_id;
}

bool LazyDfa::MatchesWhole(const StoreView& store, const List& list) {
  DfaStatFlush flush(&hits_, &misses_);
  uint32_t cur = start_state_;
  for (size_t i = 0; i < list.size(); ++i) {
    cur = StepState(cur, store, list.at(i));
  }
  return accepting_[cur];
}

bool LazyDfa::ExistsMatch(const StoreView& store, const List& list) {
  DfaStatFlush flush(&hits_, &misses_);
  uint32_t cur = start_state_;
  if (accepting_[cur]) return true;
  bool search = nfa_->search_mode();
  for (size_t i = 0; i < list.size(); ++i) {
    cur = StepState(cur, store, list.at(i));
    if (!search) {
      // Re-inject the start set: union current with the initial closure.
      std::vector<bool> merged = dfa_states_[cur];
      const std::vector<bool>& init = dfa_states_[start_state_];
      for (size_t s = 0; s < merged.size(); ++s) {
        if (init[s]) merged[s] = true;
      }
      cur = InternState(merged);
    }
    if (accepting_[cur]) return true;
  }
  return false;
}

}  // namespace aqua
