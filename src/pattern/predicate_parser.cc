#include "pattern/predicate_parser.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace aqua {

namespace {

class PredParser {
 public:
  explicit PredParser(std::string_view text) : text_(text) {}

  Result<PredicateRef> Parse() {
    SkipSpace();
    bool braced = Eat('{');
    AQUA_ASSIGN_OR_RETURN(PredicateRef p, ParseOr());
    SkipSpace();
    if (braced && !Eat('}')) return Status::ParseError("expected '}'");
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing input in predicate at position " +
                                std::to_string(pos_));
    }
    return p;
  }

 private:
  Result<PredicateRef> ParseOr() {
    AQUA_ASSIGN_OR_RETURN(PredicateRef lhs, ParseAnd());
    while (true) {
      SkipSpace();
      if (!EatToken("||")) return lhs;
      AQUA_ASSIGN_OR_RETURN(PredicateRef rhs, ParseAnd());
      lhs = Predicate::Or(std::move(lhs), std::move(rhs));
    }
  }

  Result<PredicateRef> ParseAnd() {
    AQUA_ASSIGN_OR_RETURN(PredicateRef lhs, ParseUnary());
    while (true) {
      SkipSpace();
      if (!EatToken("&&")) return lhs;
      AQUA_ASSIGN_OR_RETURN(PredicateRef rhs, ParseUnary());
      lhs = Predicate::And(std::move(lhs), std::move(rhs));
    }
  }

  Result<PredicateRef> ParseUnary() {
    SkipSpace();
    if (Eat('!')) {
      // Distinguish `!=` misuse from negation.
      if (!AtEnd() && Peek() == '=') {
        return Status::ParseError("unexpected '!=' without left operand");
      }
      AQUA_ASSIGN_OR_RETURN(PredicateRef inner, ParseUnary());
      return Predicate::Not(std::move(inner));
    }
    if (Eat('(')) {
      AQUA_ASSIGN_OR_RETURN(PredicateRef inner, ParseOr());
      SkipSpace();
      if (!Eat(')')) return Status::ParseError("expected ')'");
      return inner;
    }
    if (AtEnd() || !IsIdentStart(Peek())) {
      return Status::ParseError("expected an attribute name");
    }
    std::string ident = LexIdent();
    if (ident == "true") return Predicate::True();
    SkipSpace();
    auto op = LexCmpOp();
    if (!op.ok()) {
      // Bare identifier: shorthand for `ident == true`.
      return Predicate::AttrEquals(ident, Value::Bool(true));
    }
    AQUA_ASSIGN_OR_RETURN(Value lit, LexLiteral());
    return Predicate::Compare(std::move(ident), *op, std::move(lit));
  }

  Result<CmpOp> LexCmpOp() {
    if (EatToken("==")) return CmpOp::kEq;
    if (EatToken("!=")) return CmpOp::kNe;
    if (EatToken("<=")) return CmpOp::kLe;
    if (EatToken(">=")) return CmpOp::kGe;
    // '<' and '>' must not consume '<=' / '>=' (handled above).
    if (!AtEnd() && Peek() == '<') {
      ++pos_;
      return CmpOp::kLt;
    }
    if (!AtEnd() && Peek() == '>') {
      ++pos_;
      return CmpOp::kGt;
    }
    return Status::ParseError("no comparison operator");
  }

  Result<Value> LexLiteral() {
    SkipSpace();
    if (AtEnd()) return Status::ParseError("expected a literal");
    char c = Peek();
    if (c == '"') {
      ++pos_;
      std::string s;
      while (!AtEnd() && Peek() != '"') s += text_[pos_++];
      if (!Eat('"')) return Status::ParseError("unterminated string literal");
      return Value::String(std::move(s));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      size_t start = pos_;
      if (c == '-' || c == '+') ++pos_;
      bool is_double = false;
      while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                          Peek() == '.')) {
        if (Peek() == '.') is_double = true;
        ++pos_;
      }
      std::string num(text_.substr(start, pos_ - start));
      if (num.empty() || num == "-" || num == "+") {
        return Status::ParseError("malformed number literal");
      }
      if (is_double) return Value::Double(std::strtod(num.c_str(), nullptr));
      return Value::Int(std::strtoll(num.c_str(), nullptr, 10));
    }
    if (IsIdentStart(c)) {
      std::string ident = LexIdent();
      if (ident == "true") return Value::Bool(true);
      if (ident == "false") return Value::Bool(false);
      if (ident == "null") return Value::Null();
      return Status::ParseError("unknown literal '" + ident + "'");
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' in literal");
  }

  std::string LexIdent() {
    std::string out;
    while (!AtEnd() && IsIdentChar(Peek())) out += text_[pos_++];
    return out;
  }

  bool EatToken(std::string_view tok) {
    SkipSpace();
    if (text_.substr(pos_).substr(0, tok.size()) == tok) {
      pos_ += tok.size();
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Eat(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<PredicateRef> ParsePredicate(std::string_view text) {
  return PredParser(text).Parse();
}

}  // namespace aqua
