#include "pattern/predicate_parser.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace aqua {

namespace {

class PredParser {
 public:
  PredParser(std::string_view text, size_t span_offset)
      : text_(text), offset_(span_offset) {}

  Result<PredicateRef> Parse() {
    SkipSpace();
    bool braced = Eat('{');
    AQUA_ASSIGN_OR_RETURN(PredicateRef p, ParseOr());
    SkipSpace();
    if (braced && !Eat('}')) return Err("expected '}'");
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing input in predicate");
    }
    return p;
  }

 private:
  /// Stamps the span `[start, pos_)` (shifted by the caller's offset) onto a
  /// node this parser just built and still solely owns. `Predicate::True()`
  /// is a process-wide singleton and must keep its default span.
  PredicateRef Spanned(PredicateRef p, size_t start) {
    if (p->kind() == Predicate::Kind::kTrue) return p;
    const_cast<Predicate*>(p.get())->set_span(
        {static_cast<uint32_t>(offset_ + start),
         static_cast<uint32_t>(offset_ + pos_)});
    return p;
  }

  Result<PredicateRef> ParseOr() {
    SkipSpace();
    size_t start = pos_;
    AQUA_ASSIGN_OR_RETURN(PredicateRef lhs, ParseAnd());
    while (true) {
      SkipSpace();
      if (!EatToken("||")) return lhs;
      AQUA_ASSIGN_OR_RETURN(PredicateRef rhs, ParseAnd());
      lhs = Spanned(Predicate::Or(std::move(lhs), std::move(rhs)), start);
    }
  }

  Result<PredicateRef> ParseAnd() {
    SkipSpace();
    size_t start = pos_;
    AQUA_ASSIGN_OR_RETURN(PredicateRef lhs, ParseUnary());
    while (true) {
      SkipSpace();
      if (!EatToken("&&")) return lhs;
      AQUA_ASSIGN_OR_RETURN(PredicateRef rhs, ParseUnary());
      lhs = Spanned(Predicate::And(std::move(lhs), std::move(rhs)), start);
    }
  }

  Result<PredicateRef> ParseUnary() {
    SkipSpace();
    size_t start = pos_;
    if (Eat('!')) {
      // Distinguish `!=` misuse from negation.
      if (!AtEnd() && Peek() == '=') {
        return Err("unexpected '!=' without left operand");
      }
      AQUA_ASSIGN_OR_RETURN(PredicateRef inner, ParseUnary());
      return Spanned(Predicate::Not(std::move(inner)), start);
    }
    if (Eat('(')) {
      AQUA_ASSIGN_OR_RETURN(PredicateRef inner, ParseOr());
      SkipSpace();
      if (!Eat(')')) return Err("expected ')'");
      return Spanned(std::move(inner), start);
    }
    if (AtEnd() || !IsIdentStart(Peek())) {
      return Err("expected an attribute name");
    }
    std::string ident = LexIdent();
    if (ident == "true") return Spanned(Predicate::True(), start);
    SkipSpace();
    auto op = LexCmpOp();
    if (!op.ok()) {
      // Bare identifier: shorthand for `ident == true`.
      return Spanned(Predicate::AttrEquals(ident, Value::Bool(true)), start);
    }
    AQUA_ASSIGN_OR_RETURN(Value lit, LexLiteral());
    return Spanned(Predicate::Compare(std::move(ident), *op, std::move(lit)),
                   start);
  }

  Result<CmpOp> LexCmpOp() {
    if (EatToken("==")) return CmpOp::kEq;
    if (EatToken("!=")) return CmpOp::kNe;
    if (EatToken("<=")) return CmpOp::kLe;
    if (EatToken(">=")) return CmpOp::kGe;
    // '<' and '>' must not consume '<=' / '>=' (handled above).
    if (!AtEnd() && Peek() == '<') {
      ++pos_;
      return CmpOp::kLt;
    }
    if (!AtEnd() && Peek() == '>') {
      ++pos_;
      return CmpOp::kGt;
    }
    return Status::ParseError("no comparison operator");
  }

  Result<Value> LexLiteral() {
    SkipSpace();
    if (AtEnd()) return Err("expected a literal");
    char c = Peek();
    if (c == '"') {
      ++pos_;
      std::string s;
      while (!AtEnd() && Peek() != '"') s += text_[pos_++];
      if (!Eat('"')) return Err("unterminated string literal");
      return Value::String(std::move(s));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      size_t start = pos_;
      if (c == '-' || c == '+') ++pos_;
      bool is_double = false;
      while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                          Peek() == '.')) {
        if (Peek() == '.') is_double = true;
        ++pos_;
      }
      std::string num(text_.substr(start, pos_ - start));
      if (num.empty() || num == "-" || num == "+") {
        return Err("malformed number literal");
      }
      if (is_double) return Value::Double(std::strtod(num.c_str(), nullptr));
      return Value::Int(std::strtoll(num.c_str(), nullptr, 10));
    }
    if (IsIdentStart(c)) {
      std::string ident = LexIdent();
      if (ident == "true") return Value::Bool(true);
      if (ident == "false") return Value::Bool(false);
      if (ident == "null") return Value::Null();
      return Err("unknown literal '" + ident + "'");
    }
    return Err(std::string("unexpected character '") + c + "' in literal");
  }

  std::string LexIdent() {
    std::string out;
    while (!AtEnd() && IsIdentChar(Peek())) out += text_[pos_++];
    return out;
  }

  bool EatToken(std::string_view tok) {
    SkipSpace();
    if (text_.substr(pos_).substr(0, tok.size()) == tok) {
      pos_ += tok.size();
      return true;
    }
    return false;
  }

  /// Parse error pointing at the current position (shifted so it indexes the
  /// enclosing pattern text when this predicate is a `{...}` atom).
  Status Err(std::string msg) const {
    return Status::ParseError(std::move(msg) + " at offset " +
                              std::to_string(offset_ + pos_));
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Eat(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  std::string_view text_;
  size_t offset_ = 0;
  size_t pos_ = 0;
};

}  // namespace

Result<PredicateRef> ParsePredicate(std::string_view text,
                                    size_t span_offset) {
  return PredParser(text, span_offset).Parse();
}

}  // namespace aqua
