#include "pattern/list_matcher.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/query_context.h"
#include "pattern/regex_engine.h"

namespace aqua {

namespace {

/// Flushes one matcher call's backtracking work to the registry on every
/// exit path (including step-budget errors).
struct ListMatchFlush {
  const size_t* steps;
  explicit ListMatchFlush(const size_t* s) : steps(s) {}
  ~ListMatchFlush() {
    AQUA_OBS_COUNT("pattern.list_match_calls", 1);
    if (*steps > 0) AQUA_OBS_COUNT("pattern.list_steps", *steps);
  }
};

}  // namespace

std::vector<std::pair<size_t, size_t>> ListMatch::PruneRanges() const {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t p : pruned) {
    if (!out.empty() && out.back().second == p) {
      ++out.back().second;
    } else {
      out.push_back({p, p + 1});
    }
  }
  return out;
}

Status ListMatcher::ValidateListPattern(const ListPattern& p) const {
  if (p.kind() == ListPattern::Kind::kTreeAtom) {
    return Status::InvalidArgument(
        "tree-pattern atoms are not allowed in a list pattern");
  }
  for (const auto& part : p.parts()) {
    AQUA_RETURN_IF_ERROR(ValidateListPattern(*part));
  }
  return Status::OK();
}

Result<std::vector<ListMatch>> ListMatcher::FindAll(
    const AnchoredListPattern& pattern, const ListMatchOptions& opts) {
  std::vector<size_t> begins;
  if (pattern.anchor_begin) {
    begins.push_back(0);
  } else {
    begins.reserve(list_.size() + 1);
    for (size_t i = 0; i <= list_.size(); ++i) begins.push_back(i);
  }
  return FindAllAtBegins(pattern, begins, opts);
}

Result<std::vector<ListMatch>> ListMatcher::FindAllAtBegins(
    const AnchoredListPattern& pattern, const std::vector<size_t>& begins,
    const ListMatchOptions& opts) {
  if (pattern.body == nullptr) {
    return Status::InvalidArgument("null list pattern");
  }
  AQUA_RETURN_IF_ERROR(ValidateListPattern(*pattern.body));
  steps_ = 0;
  ListMatchFlush flush(&steps_);

  std::vector<ListMatch> out;
  std::vector<size_t> prune_stack;
  bool hit_limit = false;
  bool over_budget = false;
  obs::QueryContext* query = obs::QueryContext::Current();
  Status cancel = Status::OK();

  auto atom = [&](const ListPattern& p, size_t pos, bool pruned,
                  const RegexCont& cont) {
    if (hit_limit || over_budget || !cancel.ok()) return;
    ++steps_;
    if (query != nullptr &&
        (steps_ & (obs::QueryContext::kCheckStride - 1)) == 0) {
      query->AddNodes(obs::QueryContext::kCheckStride);
      cancel = query->CheckPoint();
      if (!cancel.ok()) return;
    }
    if (opts.max_steps > 0 && steps_ > opts.max_steps) {
      over_budget = true;
      return;
    }
    switch (p.kind()) {
      case ListPattern::Kind::kPred: {
        if (pos >= list_.size()) return;
        const NodePayload& e = list_.at(pos);
        if (!e.is_cell() || !p.pred()->Eval(store_, e.oid())) return;
        break;
      }
      case ListPattern::Kind::kAny: {
        if (pos >= list_.size() || !list_.at(pos).is_cell()) return;
        break;
      }
      case ListPattern::Kind::kPoint: {
        // Alternative 1: close with NULL (consume nothing).
        cont(pos);
        // Alternative 2: consume one same-labeled instance point.
        if (pos >= list_.size()) return;
        const NodePayload& e = list_.at(pos);
        if (!e.is_concat_point() || e.label() != p.label()) return;
        break;
      }
      default:
        return;  // kTreeAtom was rejected by validation.
    }
    if (pruned) {
      prune_stack.push_back(pos);
      cont(pos + 1);
      prune_stack.pop_back();
    } else {
      cont(pos + 1);
    }
  };

  RegexEngine<decltype(atom)> engine(atom);

  for (size_t begin : begins) {
    if (hit_limit || over_budget || !cancel.ok()) break;
    if (begin > list_.size()) {
      return Status::OutOfRange("begin position beyond list end");
    }
    if (pattern.anchor_begin && begin != 0) continue;
    engine.Run(pattern.body.get(), begin, /*pruned=*/false,
               [&](size_t end) {
                 if (hit_limit) return;
                 if (pattern.anchor_end && end != list_.size()) return;
                 ListMatch m;
                 m.begin = begin;
                 m.end = end;
                 m.pruned = prune_stack;
                 std::sort(m.pruned.begin(), m.pruned.end());
                 out.push_back(std::move(m));
                 if (opts.max_matches > 0 &&
                     out.size() >= 4 * opts.max_matches + 64) {
                   // Soft stop; exact trimming happens after dedup below.
                   hit_limit = true;
                 }
               });
  }

  if (!cancel.ok()) return cancel;
  if (over_budget) {
    return Status::InvalidArgument(
        "list match exceeded the step budget of " +
        std::to_string(opts.max_steps) + " atom probes");
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (opts.distinct_extents_only) {
    std::vector<ListMatch> dedup;
    for (auto& m : out) {
      if (!dedup.empty() && dedup.back().begin == m.begin &&
          dedup.back().end == m.end) {
        continue;
      }
      dedup.push_back(std::move(m));
    }
    out = std::move(dedup);
  }
  if (opts.max_matches > 0 && out.size() > opts.max_matches) {
    out.resize(opts.max_matches);
  }
  return out;
}

Result<bool> ListMatcher::MatchesWhole(const ListPatternRef& body) {
  AnchoredListPattern anchored{body, /*anchor_begin=*/true,
                               /*anchor_end=*/true};
  ListMatchOptions opts;
  opts.max_matches = 1;
  AQUA_ASSIGN_OR_RETURN(std::vector<ListMatch> matches,
                        FindAll(anchored, opts));
  return !matches.empty();
}

}  // namespace aqua
