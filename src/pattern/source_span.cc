#include "pattern/source_span.h"

namespace aqua {

std::string SourceSpan::ToString() const {
  if (!valid()) return "unknown location";
  return "offset " + std::to_string(begin) + ".." + std::to_string(end);
}

std::string SpanText(const std::string& source, const SourceSpan& span) {
  if (!span.valid() || span.begin >= source.size()) return "";
  size_t end = span.end < source.size() ? span.end : source.size();
  return source.substr(span.begin, end - span.begin);
}

}  // namespace aqua
