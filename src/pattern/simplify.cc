#include "pattern/simplify.h"

#include <utility>
#include <vector>

#include "pattern/alphabet.h"

namespace aqua {

namespace {

bool SameRendering(const ListPatternRef& a, const ListPatternRef& b) {
  return a->ToString() == b->ToString();
}

/// Dedupes a predicate leaf through the (nullable) interner. Returns the
/// input ref unchanged when it is the canonical occurrence, so first
/// occurrences stay pointer-identical.
PredicateRef InternPred(const PredicateRef& pred, PredicateInterner* interner) {
  if (interner == nullptr || pred == nullptr) return pred;
  return interner->Intern(pred);
}

}  // namespace

ListPatternRef SimplifyListPattern(const ListPatternRef& pattern) {
  PredicateInterner interner;
  return SimplifyListPattern(pattern, &interner);
}

ListPatternRef SimplifyListPattern(const ListPatternRef& pattern,
                                   PredicateInterner* interner) {
  if (pattern == nullptr) return pattern;
  using K = ListPattern::Kind;
  switch (pattern->kind()) {
    case K::kPred: {
      PredicateRef interned = InternPred(pattern->pred(), interner);
      if (interned == pattern->pred()) return pattern;
      return ListPattern::Pred(std::move(interned));
    }
    case K::kAny:
    case K::kPoint:
      return pattern;
    case K::kTreeAtom:
      return ListPattern::TreeAtom(
          SimplifyTreePattern(pattern->tree_atom(), interner));
    case K::kConcat: {
      std::vector<ListPatternRef> parts;
      for (const auto& part : pattern->parts()) {
        ListPatternRef simplified = SimplifyListPattern(part, interner);
        if (simplified->kind() == K::kConcat) {
          for (const auto& sub : simplified->parts()) parts.push_back(sub);
        } else {
          parts.push_back(std::move(simplified));
        }
      }
      if (parts.size() == 1) return parts[0];
      return ListPattern::Concat(std::move(parts));
    }
    case K::kAlt: {
      std::vector<ListPatternRef> alts;
      for (const auto& alt : pattern->parts()) {
        ListPatternRef simplified = SimplifyListPattern(alt, interner);
        std::vector<ListPatternRef> flat;
        if (simplified->kind() == K::kAlt) {
          flat = simplified->parts();
        } else {
          flat.push_back(std::move(simplified));
        }
        for (auto& candidate : flat) {
          bool duplicate = false;
          for (const auto& existing : alts) {
            if (SameRendering(existing, candidate)) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) alts.push_back(std::move(candidate));
        }
      }
      if (alts.size() == 1) return alts[0];
      return ListPattern::Alt(std::move(alts));
    }
    case K::kStar: {
      ListPatternRef inner = SimplifyListPattern(pattern->inner(), interner);
      // (x*)* = (x+)* = x*.
      if (inner->kind() == K::kStar || inner->kind() == K::kPlus) {
        return ListPattern::Star(inner->inner());
      }
      return ListPattern::Star(std::move(inner));
    }
    case K::kPlus: {
      ListPatternRef inner = SimplifyListPattern(pattern->inner(), interner);
      // (x*)+ = x*;  (x+)+ = x+.
      if (inner->kind() == K::kStar) return inner;
      if (inner->kind() == K::kPlus) return inner;
      return ListPattern::Plus(std::move(inner));
    }
    case K::kPrune: {
      ListPatternRef inner = SimplifyListPattern(pattern->inner(), interner);
      if (inner->kind() == K::kPrune) return inner;
      return ListPattern::Prune(std::move(inner));
    }
  }
  return pattern;
}

TreePatternRef SimplifyTreePattern(const TreePatternRef& pattern) {
  PredicateInterner interner;
  return SimplifyTreePattern(pattern, &interner);
}

TreePatternRef SimplifyTreePattern(const TreePatternRef& pattern,
                                   PredicateInterner* interner) {
  if (pattern == nullptr) return pattern;
  using K = TreePattern::Kind;
  switch (pattern->kind()) {
    case K::kLeaf: {
      PredicateRef interned = InternPred(pattern->pred(), interner);
      if (interned == pattern->pred()) return pattern;
      return TreePattern::Leaf(std::move(interned));
    }
    case K::kPoint:
      return pattern;
    case K::kNode:
      return TreePattern::Node(
          InternPred(pattern->pred(), interner),
          SimplifyListPattern(pattern->children(), interner));
    case K::kAlt: {
      std::vector<TreePatternRef> alts;
      for (const auto& alt : pattern->alts()) {
        TreePatternRef simplified = SimplifyTreePattern(alt, interner);
        std::vector<TreePatternRef> flat;
        if (simplified->kind() == K::kAlt) {
          flat = simplified->alts();
        } else {
          flat.push_back(std::move(simplified));
        }
        for (auto& candidate : flat) {
          bool duplicate = false;
          for (const auto& existing : alts) {
            if (existing->ToString() == candidate->ToString()) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) alts.push_back(std::move(candidate));
        }
      }
      if (alts.size() == 1) return alts[0];
      return TreePattern::Alt(std::move(alts));
    }
    case K::kConcatAt: {
      TreePatternRef first = SimplifyTreePattern(pattern->first(), interner);
      // §3.3: "If two trees are concatenated with a concatenation point α1
      // and there is no α1 in the first tree, the result is just the first
      // tree."
      if (!first->HasFreePoint(pattern->label())) return first;
      return TreePattern::ConcatAt(
          std::move(first), pattern->label(),
          SimplifyTreePattern(pattern->second(), interner));
    }
    case K::kStarAt:
      return TreePattern::StarAt(
          SimplifyTreePattern(pattern->inner(), interner), pattern->label());
    case K::kPlusAt:
      return TreePattern::PlusAt(
          SimplifyTreePattern(pattern->inner(), interner), pattern->label());
    case K::kRootAnchor: {
      TreePatternRef inner = SimplifyTreePattern(pattern->inner(), interner);
      if (inner->kind() == K::kRootAnchor) return inner;
      return TreePattern::RootAnchor(std::move(inner));
    }
    case K::kLeafAnchor: {
      TreePatternRef inner = SimplifyTreePattern(pattern->inner(), interner);
      if (inner->kind() == K::kLeafAnchor) return inner;
      return TreePattern::LeafAnchor(std::move(inner));
    }
    case K::kPrune: {
      TreePatternRef inner = SimplifyTreePattern(pattern->inner(), interner);
      if (inner->kind() == K::kPrune) return inner;
      return TreePattern::Prune(std::move(inner));
    }
  }
  return pattern;
}

}  // namespace aqua
