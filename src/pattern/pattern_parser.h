#ifndef AQUA_PATTERN_PATTERN_PARSER_H_
#define AQUA_PATTERN_PATTERN_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "pattern/list_pattern.h"
#include "pattern/predicate.h"
#include "pattern/tree_pattern.h"

namespace aqua {

/// Options for the pattern parsers.
struct PatternParserOptions {
  /// Named predicate bindings (the paper's `Brazil` shorthand). Looked up
  /// first for bare identifiers.
  const PredicateEnv* env = nullptr;
  /// A bare identifier not bound in `env` is sugar for
  /// `{<default_attr> == "<identifier>"}`; set to "" to make unbound
  /// identifiers an error.
  std::string default_attr = "name";
};

/// Parses the ASCII rendering of the paper's list-pattern language (§3.2):
///
///   `^`/`$`       anchors (prefix / suffix, outermost only)
///   `{...}`       alphabet-predicate (see `ParsePredicate`)
///   `ident`       named or default-attribute predicate
///   `?`           any element
///   `@label`      concatenation point
///   juxtaposition concatenation;  `|` disjunction (binds loosest)
///   `*` `+`       postfix closure;  `!` prefix prune;  `[[ ... ]]` grouping
///
/// Example: `^!?* {pitch == "A"} ? ? {pitch == "F"}`.
Result<AnchoredListPattern> ParseListPattern(
    std::string_view text, const PatternParserOptions& opts = {});

/// Parses the ASCII rendering of the paper's tree-pattern language (§3.3):
///
///   `atom`            single-node pattern (its children become cuts)
///   `atom( tlp )`     node whose entire child sequence matches `tlp`, a
///                     list pattern whose atoms are tree patterns
///   `@label`          concatenation point
///   `tp1 .@x tp2`     concatenation at point `x` (left-associative)
///   `[[tp]]*@x`       Kleene closure at `x`;  `+@x` one-or-more
///   `^tp`             root anchor (the paper's ⊤)
///   `tp$`             leaf anchor (the paper's ⊥)
///   `!tp`             prune
///   `[[ ... ]]`       grouping;  `|` disjunction
///
/// Examples: `Brazil(!?* USA !?*)`, `[[a(b c @x)]]*@x`,
/// `select(!? and)`, `printf(?* LargeData ?* LargeData ?*)`.
Result<TreePatternRef> ParseTreePattern(std::string_view text,
                                        const PatternParserOptions& opts = {});

}  // namespace aqua

#endif  // AQUA_PATTERN_PATTERN_PARSER_H_
