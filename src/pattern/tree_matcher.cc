#include "pattern/tree_matcher.h"

#include <algorithm>

#include "obs/metrics.h"
#include "pattern/regex_engine.h"

namespace aqua {

namespace {

/// Flushes one matcher call's work counters to the registry on every exit
/// path (including depth-limit errors).
struct TreeMatchFlush {
  const size_t* steps;
  const size_t* memo_hits;
  TreeMatchFlush(const size_t* s, const size_t* m) : steps(s), memo_hits(m) {}
  ~TreeMatchFlush() {
    AQUA_OBS_COUNT("pattern.tree_match_calls", 1);
    if (*steps > 0) AQUA_OBS_COUNT("pattern.tree_steps", *steps);
    if (*memo_hits > 0) AQUA_OBS_COUNT("pattern.tree_memo_hits", *memo_hits);
    AQUA_OBS_RECORD("pattern.tree_steps_per_call", *steps);
  }
};

/// Releases the scratch bytes a matcher call charged to its query on every
/// exit path, so a cancelled match does not leave a phantom allocation in
/// the query's live-bytes estimate.
struct ScratchRelease {
  obs::QueryContext** query;
  size_t* charged;
  ~ScratchRelease() {
    if (*query != nullptr && *charged > 0) {
      (*query)->AddMem(-static_cast<int64_t>(*charged));
    }
    *charged = 0;
  }
};

}  // namespace

TreeMatcher::TreeMatcher(StoreView store, const Tree& tree,
                         TreeMatchOptions opts)
    : store_(std::move(store)), tree_(tree), opts_(opts) {}

size_t TreeMatcher::ScratchBytes() const {
  // Rough per-entry footprints (key + value + hash/map overhead); only the
  // *scaling* matters — these structures are what a footnote-3 exponential
  // without memoization actually grows.
  return memo_.size() * 56 + env_arena_.size() * sizeof(PointEnv) +
         env_intern_.size() * 64 +
         matched_stack_.capacity() * sizeof(NodeId) +
         cut_stack_.capacity() * sizeof(TreeCut);
}

void TreeMatcher::LifecycleCheck() {
  if (query_ == nullptr ||
      (steps_ & (obs::QueryContext::kCheckStride - 1)) != 0) {
    return;
  }
  size_t est = ScratchBytes();
  if (est > mem_charged_) {
    query_->AddMem(static_cast<int64_t>(est - mem_charged_));
    mem_charged_ = est;
  }
  query_->AddNodes(obs::QueryContext::kCheckStride);
  if (error_.ok()) {
    Status st = query_->CheckPoint();
    if (!st.ok()) error_ = std::move(st);
  }
}

const TreeMatcher::PointEnv* TreeMatcher::Bind(const std::string& label,
                                               const TreePattern* pattern,
                                               const PointEnv* pattern_env,
                                               const PointEnv* outer) {
  // Intern environments: closure iterations re-create semantically identical
  // bindings, and interning makes the boolean memo effective across them.
  EnvKey key{&label, pattern, pattern_env == nullptr ? 0 : pattern_env->id,
             outer == nullptr ? 0 : outer->id};
  auto it = env_intern_.find(key);
  if (it != env_intern_.end()) return it->second;
  env_arena_.push_back(
      PointEnv{&label, pattern, pattern_env, outer, next_env_id_++});
  const PointEnv* env = &env_arena_.back();
  env_intern_.emplace(key, env);
  return env;
}

const TreeMatcher::PointEnv* TreeMatcher::Lookup(const PointEnv* env,
                                                 const std::string& label) {
  for (const PointEnv* e = env; e != nullptr; e = e->next) {
    if (*e->label == label) return e;
  }
  return nullptr;
}

bool TreeMatcher::CheckDepth() {
  if (depth_ > opts_.max_depth) {
    if (error_.ok()) {
      error_ = Status::InvalidArgument(
          "tree pattern match exceeded the backtracking depth limit "
          "(degenerate closure nesting?)");
    }
    return false;
  }
  return true;
}

void TreeMatcher::RecordLeafCuts(NodeId v, const Cont& cont) {
  const auto& kids = tree_.children(v);
  for (NodeId c : kids) cut_stack_.push_back(TreeCut{c, false});
  cont();
  cut_stack_.resize(cut_stack_.size() - kids.size());
}

void TreeMatcher::MatchAt(const TreePattern* tp, const PointEnv* env, NodeId v,
                          bool leaf_strict, const Cont& cont) {
  if (!error_.ok() || (in_bool_mode_ && bool_mode_found_)) return;
  if (in_bool_mode_ && opts_.memoize) {
    // Boolean question: collapse to the memoized subtree-match oracle.
    if (ExistsAt(tp, env, v, leaf_strict)) cont();
    return;
  }
  MatchAtImpl(tp, env, v, leaf_strict, cont);
}

void TreeMatcher::MatchAtImpl(const TreePattern* tp, const PointEnv* env,
                              NodeId v, bool leaf_strict, const Cont& cont) {
  if (!error_.ok() || (in_bool_mode_ && bool_mode_found_)) return;
  ++steps_;
  LifecycleCheck();
  if (!error_.ok()) return;
  ++depth_;
  if (!CheckDepth()) {
    --depth_;
    return;
  }
  const NodePayload& payload = tree_.payload(v);
  switch (tp->kind()) {
    case TreePattern::Kind::kLeaf: {
      if (!payload.is_cell()) break;
      if (tp->pred() != nullptr && !tp->pred()->Eval(store_, payload.oid())) {
        break;
      }
      if (leaf_strict && !tree_.is_leaf(v)) break;
      matched_stack_.push_back(v);
      RecordLeafCuts(v, cont);
      matched_stack_.pop_back();
      break;
    }
    case TreePattern::Kind::kNode: {
      if (!payload.is_cell()) break;
      if (tp->pred() != nullptr && !tp->pred()->Eval(store_, payload.oid())) {
        break;
      }
      matched_stack_.push_back(v);
      MatchChildren(tp->children().get(), env, v, 0, leaf_strict,
                    [this, v, &cont](size_t end) {
                      if (end == tree_.arity(v)) cont();
                    });
      matched_stack_.pop_back();
      break;
    }
    case TreePattern::Kind::kPoint: {
      const PointEnv* binding = Lookup(env, tp->label());
      if (binding != nullptr) {
        MatchAt(binding->pattern, binding->pattern_env, v, leaf_strict, cont);
        break;
      }
      if (payload.is_concat_point() && payload.label() == tp->label()) {
        matched_stack_.push_back(v);
        cont();
        matched_stack_.pop_back();
      }
      break;
    }
    case TreePattern::Kind::kAlt: {
      for (const auto& alt : tp->alts()) {
        MatchAt(alt.get(), env, v, leaf_strict, cont);
      }
      break;
    }
    case TreePattern::Kind::kConcatAt: {
      // Lazy substitution: when the first operand has no such point the
      // binding is simply never used (result is the first operand, §3.3).
      const PointEnv* inner_env =
          Bind(tp->label(), tp->second().get(), env, env);
      MatchAt(tp->first().get(), inner_env, v, leaf_strict, cont);
      break;
    }
    case TreePattern::Kind::kStarAt: {
      // Exit: the closure behaves as its point, resolved in the outer env.
      const PointEnv* binding = Lookup(env, tp->label());
      if (binding != nullptr) {
        MatchAt(binding->pattern, binding->pattern_env, v, leaf_strict, cont);
      } else if (payload.is_concat_point() &&
                 payload.label() == tp->label()) {
        matched_stack_.push_back(v);
        cont();
        matched_stack_.pop_back();
      }
      // Iterate: one more copy of the body; its points continue the closure.
      const PointEnv* iter_env = Bind(tp->label(), tp, env, env);
      MatchAt(tp->inner().get(), iter_env, v, leaf_strict, cont);
      break;
    }
    case TreePattern::Kind::kPlusAt: {
      const PointEnv* iter_env =
          Bind(tp->label(), tp->star_form().get(), env, env);
      MatchAt(tp->inner().get(), iter_env, v, leaf_strict, cont);
      break;
    }
    case TreePattern::Kind::kRootAnchor: {
      if (v == tree_.root()) {
        MatchAt(tp->inner().get(), env, v, leaf_strict, cont);
      }
      break;
    }
    case TreePattern::Kind::kLeafAnchor: {
      MatchAt(tp->inner().get(), env, v, /*leaf_strict=*/true, cont);
      break;
    }
    case TreePattern::Kind::kPrune: {
      if (ExistsAt(tp->inner().get(), env, v, leaf_strict)) {
        cut_stack_.push_back(TreeCut{v, true});
        cont();
        cut_stack_.pop_back();
      }
      break;
    }
  }
  --depth_;
}

void TreeMatcher::MatchAtomPattern(const TreePattern* tp, const PointEnv* env,
                                   NodeId parent, size_t pos, bool pruned,
                                   bool leaf_strict, const PosCont& cont) {
  if (!error_.ok() || (in_bool_mode_ && bool_mode_found_)) return;
  ++steps_;
  LifecycleCheck();
  if (!error_.ok()) return;
  ++depth_;
  if (!CheckDepth()) {
    --depth_;
    return;
  }
  const auto& kids = tree_.children(parent);
  NodeId child = pos < kids.size() ? kids[pos] : kInvalidNode;
  switch (tp->kind()) {
    case TreePattern::Kind::kPoint: {
      const PointEnv* binding = Lookup(env, tp->label());
      if (binding != nullptr) {
        MatchAtomPattern(binding->pattern, binding->pattern_env, parent, pos,
                         pruned, leaf_strict, cont);
        break;
      }
      // Free point: close with NULL (consume nothing) ...
      cont(pos);
      // ... or consume one same-labeled instance point.
      if (child != kInvalidNode && tree_.payload(child).is_concat_point() &&
          tree_.payload(child).label() == tp->label()) {
        if (pruned) {
          cont(pos + 1);  // pruning a NULL leaves no trace
        } else {
          matched_stack_.push_back(child);
          cont(pos + 1);
          matched_stack_.pop_back();
        }
      }
      break;
    }
    case TreePattern::Kind::kStarAt: {
      const PointEnv* binding = Lookup(env, tp->label());
      if (binding != nullptr) {
        MatchAtomPattern(binding->pattern, binding->pattern_env, parent, pos,
                         pruned, leaf_strict, cont);
      } else {
        cont(pos);
        if (child != kInvalidNode &&
            tree_.payload(child).is_concat_point() &&
            tree_.payload(child).label() == tp->label()) {
          if (pruned) {
            cont(pos + 1);
          } else {
            matched_stack_.push_back(child);
            cont(pos + 1);
            matched_stack_.pop_back();
          }
        }
      }
      const PointEnv* iter_env = Bind(tp->label(), tp, env, env);
      MatchAtomPattern(tp->inner().get(), iter_env, parent, pos, pruned,
                       leaf_strict, cont);
      break;
    }
    case TreePattern::Kind::kPlusAt: {
      const PointEnv* iter_env =
          Bind(tp->label(), tp->star_form().get(), env, env);
      MatchAtomPattern(tp->inner().get(), iter_env, parent, pos, pruned,
                       leaf_strict, cont);
      break;
    }
    case TreePattern::Kind::kConcatAt: {
      const PointEnv* inner_env =
          Bind(tp->label(), tp->second().get(), env, env);
      MatchAtomPattern(tp->first().get(), inner_env, parent, pos, pruned,
                       leaf_strict, cont);
      break;
    }
    case TreePattern::Kind::kAlt: {
      for (const auto& alt : tp->alts()) {
        MatchAtomPattern(alt.get(), env, parent, pos, pruned, leaf_strict,
                         cont);
      }
      break;
    }
    case TreePattern::Kind::kLeafAnchor: {
      MatchAtomPattern(tp->inner().get(), env, parent, pos, pruned,
                       /*leaf_strict=*/true, cont);
      break;
    }
    case TreePattern::Kind::kRootAnchor:
      break;  // a child position is never the tree root
    case TreePattern::Kind::kPrune: {
      if (child == kInvalidNode) break;
      if (ExistsAt(tp->inner().get(), env, child, leaf_strict)) {
        cut_stack_.push_back(TreeCut{child, true});
        cont(pos + 1);
        cut_stack_.pop_back();
      }
      break;
    }
    case TreePattern::Kind::kLeaf:
    case TreePattern::Kind::kNode: {
      if (child == kInvalidNode) break;
      if (pruned) {
        // Inside a `!` scope the whole subtree rooted at the matching node
        // is cut; only a boolean check of the pattern is needed.
        if (ExistsAt(tp, env, child, leaf_strict)) {
          cut_stack_.push_back(TreeCut{child, true});
          cont(pos + 1);
          cut_stack_.pop_back();
        }
      } else {
        MatchAt(tp, env, child, leaf_strict,
                [pos, &cont]() { cont(pos + 1); });
      }
      break;
    }
  }
  --depth_;
}

void TreeMatcher::MatchChildren(const ListPattern* lp, const PointEnv* env,
                                NodeId parent, size_t pos, bool leaf_strict,
                                const PosCont& cont) {
  auto atom = [this, env, parent, leaf_strict](
                  const ListPattern& p, size_t apos, bool pruned,
                  const RegexCont& rcont) {
    if (!error_.ok() || (in_bool_mode_ && bool_mode_found_)) return;
    ++steps_;
    LifecycleCheck();
    if (!error_.ok()) return;
    const auto& kids = tree_.children(parent);
    NodeId child = apos < kids.size() ? kids[apos] : kInvalidNode;
    switch (p.kind()) {
      case ListPattern::Kind::kPred:
      case ListPattern::Kind::kAny: {
        if (child == kInvalidNode) return;
        const NodePayload& payload = tree_.payload(child);
        if (!payload.is_cell()) return;
        if (p.kind() == ListPattern::Kind::kPred &&
            !p.pred()->Eval(store_, payload.oid())) {
          return;
        }
        if (pruned) {
          cut_stack_.push_back(TreeCut{child, true});
          rcont(apos + 1);
          cut_stack_.pop_back();
        } else {
          if (leaf_strict && !tree_.is_leaf(child)) return;
          matched_stack_.push_back(child);
          RecordLeafCuts(child, [apos, &rcont]() { rcont(apos + 1); });
          matched_stack_.pop_back();
        }
        return;
      }
      case ListPattern::Kind::kPoint: {
        const PointEnv* binding = Lookup(env, p.label());
        if (binding != nullptr) {
          MatchAtomPattern(binding->pattern, binding->pattern_env, parent,
                           apos, pruned, leaf_strict, rcont);
          return;
        }
        rcont(apos);
        if (child != kInvalidNode &&
            tree_.payload(child).is_concat_point() &&
            tree_.payload(child).label() == p.label()) {
          if (pruned) {
            rcont(apos + 1);
          } else {
            matched_stack_.push_back(child);
            rcont(apos + 1);
            matched_stack_.pop_back();
          }
        }
        return;
      }
      case ListPattern::Kind::kTreeAtom: {
        MatchAtomPattern(p.tree_atom().get(), env, parent, apos, pruned,
                         leaf_strict, rcont);
        return;
      }
      default:
        return;
    }
  };
  RegexEngine<decltype(atom)> engine(atom);
  engine.Run(lp, pos, /*pruned=*/false, [&cont](size_t end) { cont(end); });
}

bool TreeMatcher::ExistsAt(const TreePattern* tp, const PointEnv* env,
                           NodeId v, bool leaf_strict) {
  if (!error_.ok()) return false;
  MemoKey key{tp, env == nullptr ? 0 : env->id, v, leaf_strict};
  if (opts_.memoize) {
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++memo_hits_;
      if (it->second == 2) {
        // This very question is already being computed higher in the stack
        // (a derivation cycle through closures/points). A true match always
        // has a finite, acyclic derivation, so answering "no" here only
        // prunes self-referential proofs; the taint flag keeps the open
        // ancestors from caching a possibly-spurious negative.
        touched_in_progress_ = true;
        return false;
      }
      return it->second == 1;
    }
    memo_.emplace(key, int8_t{2});
  }
  bool saved_mode = in_bool_mode_;
  bool saved_found = bool_mode_found_;
  bool saved_touched = touched_in_progress_;
  in_bool_mode_ = true;
  bool_mode_found_ = false;
  touched_in_progress_ = false;
  MatchAtImpl(tp, env, v, leaf_strict, [this]() { bool_mode_found_ = true; });
  bool result = bool_mode_found_;
  bool tainted = touched_in_progress_;
  in_bool_mode_ = saved_mode;
  bool_mode_found_ = saved_found;
  touched_in_progress_ = saved_touched || tainted;
  if (opts_.memoize) {
    if (error_.ok() && (result || !tainted)) {
      // Positive results are safe to cache even when tainted (a found
      // derivation is a proof); negatives are cached only when no open
      // question was consulted.
      memo_[key] = result ? int8_t{1} : int8_t{0};
    } else {
      memo_.erase(key);
    }
  }
  return result;
}

Result<std::vector<TreeMatch>> TreeMatcher::FindAll(const TreePatternRef& tp) {
  if (tree_.empty()) return std::vector<TreeMatch>{};
  return FindAllAtRoots(tp, tree_.Preorder());
}

Result<std::vector<TreeMatch>> TreeMatcher::FindAllAtRoots(
    const TreePatternRef& tp, const std::vector<NodeId>& roots) {
  if (tp == nullptr) return Status::InvalidArgument("null tree pattern");
  if (tree_.empty()) return std::vector<TreeMatch>{};
  env_arena_.clear();
  env_intern_.clear();
  next_env_id_ = 1;
  memo_.clear();
  matched_stack_.clear();
  cut_stack_.clear();
  steps_ = 0;
  memo_hits_ = 0;
  depth_ = 0;
  error_ = Status::OK();
  in_bool_mode_ = false;
  bool_mode_found_ = false;
  query_ = obs::QueryContext::Current();
  mem_charged_ = 0;
  TreeMatchFlush flush(&steps_, &memo_hits_);
  ScratchRelease scratch{&query_, &mem_charged_};

  std::vector<TreeMatch> out;
  bool stop = false;
  for (NodeId v : roots) {
    if (v >= tree_.size()) return Status::OutOfRange("root node out of range");
    if (stop) break;
    bool found_here = false;
    MatchAt(tp.get(), nullptr, v, /*leaf_strict=*/false,
            [this, v, &out, &stop, &found_here]() {
              if (stop) return;
              if (opts_.first_derivation_per_root && found_here) return;
              found_here = true;
              TreeMatch m;
              m.root = v;
              m.matched = matched_stack_;
              m.cuts = cut_stack_;
              out.push_back(std::move(m));
              if (opts_.max_matches > 0 &&
                  out.size() >= 8 * opts_.max_matches + 64) {
                stop = true;
              }
            });
    if (!error_.ok()) return error_;
  }

  // Deduplicate identical derivations, keeping document order by root.
  std::vector<size_t> pos_of(tree_.size(), 0);
  {
    size_t i = 0;
    for (NodeId v : tree_.Preorder()) pos_of[v] = i++;
  }
  auto less = [&pos_of](const TreeMatch& a, const TreeMatch& b) {
    if (a.root != b.root) return pos_of[a.root] < pos_of[b.root];
    if (a.matched != b.matched) return a.matched < b.matched;
    return std::lexicographical_compare(
        a.cuts.begin(), a.cuts.end(), b.cuts.begin(), b.cuts.end(),
        [](const TreeCut& x, const TreeCut& y) {
          return std::tie(x.node, x.from_prune) < std::tie(y.node, y.from_prune);
        });
  };
  std::sort(out.begin(), out.end(), less);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (opts_.max_matches > 0 && out.size() > opts_.max_matches) {
    out.resize(opts_.max_matches);
  }
  return out;
}

Result<bool> TreeMatcher::MatchesAt(const TreePatternRef& tp, NodeId v) {
  if (tp == nullptr) return Status::InvalidArgument("null tree pattern");
  if (tree_.empty() || v >= tree_.size()) {
    return Status::OutOfRange("node out of range");
  }
  env_arena_.clear();
  env_intern_.clear();
  next_env_id_ = 1;
  memo_.clear();
  steps_ = 0;
  memo_hits_ = 0;
  depth_ = 0;
  error_ = Status::OK();
  query_ = obs::QueryContext::Current();
  mem_charged_ = 0;
  TreeMatchFlush flush(&steps_, &memo_hits_);
  ScratchRelease scratch{&query_, &mem_charged_};
  bool result = ExistsAt(tp.get(), nullptr, v, /*leaf_strict=*/false);
  if (!error_.ok()) return error_;
  return result;
}

Result<bool> TreeMatcher::MatchesAnywhere(const TreePatternRef& tp) {
  if (tp == nullptr) return Status::InvalidArgument("null tree pattern");
  if (tree_.empty()) return false;
  env_arena_.clear();
  env_intern_.clear();
  next_env_id_ = 1;
  memo_.clear();
  steps_ = 0;
  memo_hits_ = 0;
  depth_ = 0;
  error_ = Status::OK();
  query_ = obs::QueryContext::Current();
  mem_charged_ = 0;
  TreeMatchFlush flush(&steps_, &memo_hits_);
  ScratchRelease scratch{&query_, &mem_charged_};
  for (NodeId v : tree_.Preorder()) {
    if (ExistsAt(tp.get(), nullptr, v, /*leaf_strict=*/false)) return true;
    if (!error_.ok()) return error_;
  }
  return false;
}

}  // namespace aqua
