#ifndef AQUA_PATTERN_MULTI_H_
#define AQUA_PATTERN_MULTI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bulk/list.h"
#include "common/result.h"
#include "pattern/alphabet.h"
#include "pattern/list_pattern.h"

namespace aqua {

/// A merged product automaton answering up to 64 list patterns in one scan.
///
/// Compilation interns every pattern predicate into one shared
/// `PredicateAlphabet` (structural dedup, so `{citizen=="Brazil"}` appearing
/// in five patterns is one slot), trie-merges the patterns' common leading
/// atoms into shared states, and Thompson-compiles each remainder. Every
/// state carries an *accept mask*: bit j set means pattern j's accept state
/// is reachable here. Matching is the search-mode existence scan
/// (`Nfa::ExistsMatch` over `CompileSearch`) run once for all patterns:
/// element facts come from one columnar `PredicateAlphabet::EvalBatch` per
/// chunk instead of N× per-pattern `Predicate::Eval` store walks, and the
/// scan OR-accumulates the accept masks it touches, early-exiting once every
/// pattern has matched.
///
/// Thread model: a compiled MultiNfa is immutable and freely shared; the
/// mutable per-call buffers live in the caller-provided `AlphabetScratch`
/// (one per worker, like `LazyDfa`).
class MultiNfa {
 public:
  /// Compiles `?* merged(patterns)` for single-pass existence search.
  /// Fails on empty input, more than 64 patterns, or tree-pattern atoms.
  static Result<MultiNfa> CompileSearch(
      const std::vector<ListPatternRef>& patterns);

  /// Returns the bitset of patterns with some matching sublist in `list`
  /// (bit j = patterns[j]); the answer for each bit is exactly
  /// `Nfa::CompileSearch(patterns[j]) -> ExistsMatch(store, list)`.
  uint64_t MatchAll(const StoreView& store, const List& list,
                    AlphabetScratch* scratch) const;

  size_t num_patterns() const { return num_patterns_; }
  size_t num_states() const { return states_.size(); }
  const PredicateAlphabet& alphabet() const { return alphabet_; }
  /// All-patterns-matched mask (bit j set for every pattern j).
  uint64_t full_mask() const { return full_mask_; }
  /// States shared by trie-merging pattern prefixes (0 when all patterns
  /// start differently); a direct measure of the product-automaton win.
  size_t trie_shared_states() const { return trie_shared_states_; }

  struct Transition {
    enum class Kind { kEpsilon, kPred, kAnyCell, kPoint };
    Kind kind;
    uint32_t target;
    uint32_t index;  // alphabet slot (kPred) or label index (kPoint)
  };

  const std::vector<std::vector<Transition>>& states() const {
    return states_;
  }
  const std::vector<uint64_t>& accept_masks() const { return accept_masks_; }
  const std::vector<std::string>& point_labels() const {
    return point_labels_;
  }
  uint32_t start() const { return start_; }

  /// Epsilon-closure of a state bitset, in place.
  void EpsClosure(std::vector<bool>* set) const;

  /// OR of the accept masks of all states in `set`.
  uint64_t AcceptMask(const std::vector<bool>& set) const;

  /// One simulation step over a cell whose alphabet signature starts at
  /// `sig` (sig_stride words), or over a point with `label_index`
  /// (`kNoLabel` for an unknown label). Closure included.
  static constexpr uint32_t kNoLabel = static_cast<uint32_t>(-1);
  std::vector<bool> StepCell(const std::vector<bool>& from,
                             const uint64_t* sig) const;
  std::vector<bool> StepPoint(const std::vector<bool>& from,
                              uint32_t label_index) const;

 private:
  struct Frag {
    uint32_t start;
    uint32_t accept;
  };

  uint32_t NewState();
  void AddEdge(uint32_t from, Transition t);
  uint32_t InternLabel(const std::string& label);
  Result<Frag> Build(const ListPattern& p);
  Status AddPattern(const ListPatternRef& pattern, uint32_t index,
                    uint32_t trie_root);
  uint32_t LabelIndex(const std::string& label) const;

  std::vector<std::vector<Transition>> states_;
  std::vector<uint64_t> accept_masks_;
  std::vector<std::string> point_labels_;
  PredicateAlphabet alphabet_;
  uint32_t start_ = 0;
  uint64_t full_mask_ = 0;
  size_t num_patterns_ = 0;
  size_t trie_shared_states_ = 0;

  /// Trie edges: (parent state, atom key) -> child state. Only used during
  /// compilation. The atom key packs (kind, index).
  std::map<std::pair<uint32_t, uint64_t>, uint32_t> trie_;
};

/// Lazily determinized product automaton over a `MultiNfa`, mirroring
/// `LazyDfa`: each distinct element signature seen at a DFA state
/// materializes one cached transition, and each DFA state caches the OR of
/// its NFA states' accept masks, so a hot scan approaches one table lookup
/// plus one mask OR per element.
///
/// Thread model: matching MUTATES the caches — per-worker instances only,
/// over one shared const `MultiNfa`.
class LazyMultiDfa {
 public:
  /// `nfa` must outlive the DFA. At most 58 alphabet predicates are
  /// supported (signatures pack into 64 bits, like `LazyDfa`).
  static Result<LazyMultiDfa> Make(const MultiNfa* nfa);

  /// Same contract as `MultiNfa::MatchAll`.
  uint64_t MatchAll(const StoreView& store, const List& list,
                    AlphabetScratch* scratch);

  size_t num_states() const { return dfa_states_.size(); }
  size_t num_transitions() const { return trans_.size(); }
  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }

 private:
  explicit LazyMultiDfa(const MultiNfa* nfa);

  uint32_t InternState(const std::vector<bool>& set);
  uint32_t StepState(uint32_t state, uint64_t sig, bool is_cell,
                     uint32_t label_index);

  const MultiNfa* nfa_;
  std::vector<std::vector<bool>> dfa_states_;  // NFA state sets
  std::vector<uint64_t> state_accept_masks_;
  std::map<std::vector<bool>, uint32_t> state_ids_;
  std::map<std::pair<uint32_t, uint64_t>, uint32_t> trans_;
  uint32_t start_state_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace aqua

#endif  // AQUA_PATTERN_MULTI_H_
