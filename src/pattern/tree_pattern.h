#ifndef AQUA_PATTERN_TREE_PATTERN_H_
#define AQUA_PATTERN_TREE_PATTERN_H_

#include <memory>
#include <string>
#include <vector>

#include "pattern/list_pattern.h"
#include "pattern/predicate.h"
#include "pattern/source_span.h"

namespace aqua {

/// A tree pattern (§3.3): a regular tree expression over
/// alphabet-predicates with concatenation points.
///
/// Kinds:
///  * `kLeaf`   — a single-node pattern: an alphabet-predicate or `?`. The
///                matched tree node may have children; they are *cut* and
///                become descendant pieces (§3.4/§4).
///  * `kNode`   — a root predicate followed by a children-sequence pattern
///                (a `ListPattern` whose atoms are tree patterns), which
///                must describe the node's *entire* child sequence — the
///                paper's examples pad with `?*` explicitly.
///  * `kPoint`  — a concatenation point `α`. Bound points (introduced by
///                `∘_α` / closures) match their substituted pattern; a free
///                point matches a same-labeled instance NULL, or nothing.
///  * `kAlt`    — disjunction.
///  * `kConcatAt` — `tp1 ∘_α tp2`: substitutes `tp2` at every `α` in `tp1`
///                (lazily, via a point environment; when `tp1` has no `α`
///                the result is just `tp1`, per §3.3).
///  * `kStarAt` / `kPlusAt` — iterative self-concatenation `tp*_α` /
///                `tp+_α`; the final iteration closes `α` with NULL.
///  * `kRootAnchor` — `⊤tp` (spelled `^tp`): matches only at the root.
///  * `kLeafAnchor` — `tp⊥` (spelled `tp$`): every leaf of the pattern must
///                match a leaf of the tree (no descendant cuts under them).
///  * `kPrune`  — `!tp`: matches like `tp`, but the largest subtree rooted
///                at the node matching `tp`'s root is pruned from the match
///                and becomes a cut piece.
class TreePattern {
 public:
  enum class Kind {
    kLeaf,
    kNode,
    kPoint,
    kAlt,
    kConcatAt,
    kStarAt,
    kPlusAt,
    kRootAnchor,
    kLeafAnchor,
    kPrune,
  };

  static TreePatternRef Leaf(PredicateRef pred);
  static TreePatternRef AnyLeaf();
  static TreePatternRef Node(PredicateRef pred, ListPatternRef children);
  static TreePatternRef Point(std::string label);
  static TreePatternRef Alt(std::vector<TreePatternRef> alts);
  static TreePatternRef ConcatAt(TreePatternRef first, std::string label,
                                 TreePatternRef second);
  static TreePatternRef StarAt(TreePatternRef inner, std::string label);
  static TreePatternRef PlusAt(TreePatternRef inner, std::string label);
  static TreePatternRef RootAnchor(TreePatternRef inner);
  static TreePatternRef LeafAnchor(TreePatternRef inner);
  static TreePatternRef Prune(TreePatternRef inner);

  Kind kind() const { return kind_; }
  /// Root predicate (kLeaf/kNode); null for `?`.
  const PredicateRef& pred() const { return pred_; }
  bool is_any() const { return pred_ == nullptr; }
  const ListPatternRef& children() const { return children_; }
  const std::string& label() const { return label_; }
  const std::vector<TreePatternRef>& alts() const { return parts_; }
  const TreePatternRef& first() const { return parts_[0]; }
  const TreePatternRef& second() const { return parts_[1]; }
  const TreePatternRef& inner() const { return parts_[0]; }
  /// For kPlusAt: the `tp*_α` continuation pattern (built eagerly).
  const TreePatternRef& star_form() const { return star_form_; }

  /// Number of pattern nodes (children sequences included).
  size_t SizeInNodes() const;

  /// True when some (possibly nested) point with `label` occurs free in the
  /// pattern (not shadowed by an enclosing binder of the same label).
  bool HasFreePoint(const std::string& label) const;

  /// Renders the pattern in the ASCII syntax of the pattern parser, e.g.
  /// `{citizen == "Brazil"}(!?* {citizen == "USA"} !?*)`.
  std::string ToString() const;

  /// Source range this node was parsed from (invalid when built
  /// programmatically). Set once by the parser on the freshly built node.
  const SourceSpan& span() const { return span_; }
  void set_span(SourceSpan span) { span_ = span; }

 private:
  TreePattern() = default;

  Kind kind_ = Kind::kLeaf;
  PredicateRef pred_;
  ListPatternRef children_;
  std::string label_;
  std::vector<TreePatternRef> parts_;
  TreePatternRef star_form_;
  SourceSpan span_;
};

}  // namespace aqua

#endif  // AQUA_PATTERN_TREE_PATTERN_H_
