#ifndef AQUA_PATTERN_SOURCE_SPAN_H_
#define AQUA_PATTERN_SOURCE_SPAN_H_

#include <cstdint>
#include <string>

namespace aqua {

/// Half-open byte range `[begin, end)` into the pattern/predicate source a
/// node was parsed from. Parsers attach one to every AST node they build, so
/// downstream diagnostics (parse errors, `aqua::lint`) can point at the
/// offending substring. Programmatically built nodes carry the default
/// (invalid) span.
struct SourceSpan {
  uint32_t begin = 0;
  uint32_t end = 0;

  bool valid() const { return end > begin; }

  /// Renders `offset B..E`; "unknown location" when invalid.
  std::string ToString() const;

  friend bool operator==(const SourceSpan& a, const SourceSpan& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// The substring of `source` a valid span covers (empty otherwise).
std::string SpanText(const std::string& source, const SourceSpan& span);

}  // namespace aqua

#endif  // AQUA_PATTERN_SOURCE_SPAN_H_
