#ifndef AQUA_PATTERN_ALPHABET_H_
#define AQUA_PATTERN_ALPHABET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "object/store_view.h"
#include "pattern/predicate.h"

namespace aqua {

/// Structural hash of a predicate AST: kind, attribute names, comparison
/// operators, and constants all contribute; source spans do not. Two
/// structurally equal predicates hash equal (constants are hashed through
/// `Value::Hash`, which already collapses numerically equal int/double).
size_t PredicateStructuralHash(const Predicate& p);

/// Structural equality over predicate ASTs (same shape, attributes,
/// operators, and `Value::Equals`-equal constants; spans ignored).
bool PredicateStructuralEquals(const Predicate& a, const Predicate& b);

/// Canonicalizes structurally equal predicate subtrees to one shared
/// `PredicateRef`. Interning works bottom-up, so a duplicated subtree deep
/// inside two different conjunctions still collapses to one node. Used by
/// the pattern simplifier (so downstream pointer-keyed caches — the NFA's
/// per-pointer predicate slots, lint's interval analysis — see each
/// distinct predicate once) and by `PredicateAlphabet` extraction.
class PredicateInterner {
 public:
  /// Returns the canonical node for `pred` (the first structurally equal
  /// predicate seen), interning every subtree along the way.
  PredicateRef Intern(const PredicateRef& pred);

  /// Number of distinct predicate nodes interned so far.
  size_t size() const { return size_; }

 private:
  std::unordered_map<size_t, std::vector<PredicateRef>> buckets_;
  size_t size_ = 0;
};

/// Reusable buffers for one columnar alphabet evaluation. Matching mutates
/// the scratch, so instances are per-worker (mirroring `LazyDfa`); the
/// buffers and the attribute-position cache then amortize across all the
/// morsels one worker scans.
struct AlphabetScratch {
  /// Struct-of-arrays gather of one attribute over the batch. `tag` is the
  /// type tag per item (kNone when the object, the attribute, or the value
  /// is absent/null — exactly the cases `Predicate::Eval` maps to false).
  enum Tag : uint8_t {
    kNone = 0,
    kInt = 1,
    kDouble = 2,
    kString = 3,
    kBool = 4,
    kRef = 5,
  };
  struct Column {
    std::vector<uint8_t> tag;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<const std::string*> str;  // borrowed from the pinned view
    std::vector<uint8_t> b;
    std::vector<uint64_t> ref;
  };
  std::vector<Column> cols;

  /// Per-leaf and per-program verdict vectors (0/1 bytes).
  std::vector<std::vector<uint8_t>> leaf_sat;
  std::vector<std::vector<uint8_t>> stack;

  /// Packed result: `stride` words per item, bit p = alphabet predicate p.
  std::vector<uint64_t> sigs;

  /// Attribute-position cache: per alphabet attribute, the attr index in
  /// each `TypeId`'s `TypeDef` (-1 when the type lacks the attribute).
  /// Valid for one schema; reset when a different schema shows up.
  std::vector<std::vector<int32_t>> attr_pos;
  const void* schema_key = nullptr;

  /// Element staging used by the multi-pattern list scan (`MultiNfa`).
  std::vector<Oid> oids;
};

/// A shared predicate alphabet over a batch of compiled patterns: every
/// distinct predicate (deduped by structural hash) gets one slot, and the
/// whole alphabet evaluates over an oid batch in one columnar pass —
/// gather each referenced attribute from the pinned `StoreView` into
/// struct-of-arrays scratch once, run each distinct leaf comparison as a
/// tight branch-free loop over the column, combine with vectorized boolean
/// ops, and pack per-item bitsets. The per-item bitset is exactly
/// `Predicate::Eval` of every slot (contract-tested bit for bit), so a
/// merged automaton driven by these signatures answers all patterns with
/// the store-read work of one.
class PredicateAlphabet {
 public:
  /// Interns a predicate (structural dedup) and returns its slot. Must not
  /// be called after `Seal`.
  uint32_t Intern(const PredicateRef& pred);

  /// Compiles the columnar kernels: distinct attribute columns, distinct
  /// leaf comparisons, and one postfix combine program per slot. Counts
  /// the final slot count in `pattern.alphabet_preds`.
  void Seal();

  bool sealed() const { return sealed_; }
  size_t size() const { return preds_.size(); }
  const std::vector<PredicateRef>& preds() const { return preds_; }
  size_t num_attrs() const { return attrs_.size(); }
  size_t num_leaves() const { return leaves_.size(); }

  /// Words per item in the packed signature output.
  size_t sig_stride() const { return (preds_.size() + 63) / 64; }

  /// Evaluates every alphabet predicate over `oids[0..n)`, leaving the
  /// packed per-item bitsets in `scratch->sigs` (n * sig_stride() words).
  /// Requires `Seal()` first.
  void EvalBatch(const StoreView& store, const Oid* oids, size_t n,
                 AlphabetScratch* scratch) const;

 private:
  struct Leaf {
    uint32_t attr_col;
    CmpOp op;
    Value constant;
  };
  struct Instr {
    enum Op : uint8_t { kLeaf, kTrue, kAnd, kOr, kNot };
    Op op;
    uint32_t arg;
  };

  uint32_t InternAttr(const std::string& attr);
  uint32_t InternLeaf(const std::string& attr, CmpOp op, const Value& c);
  void CompileProgram(const Predicate& p, std::vector<Instr>* prog);
  void Gather(const StoreView& store, const Oid* oids, size_t n,
              AlphabetScratch* s) const;
  void EvalLeaf(const Leaf& leaf, const AlphabetScratch::Column& col,
                size_t n, uint8_t* out) const;

  PredicateInterner interner_;
  std::vector<PredicateRef> preds_;
  std::unordered_map<const Predicate*, uint32_t> slot_of_;
  std::vector<std::string> attrs_;
  std::unordered_map<std::string, uint32_t> attr_col_;
  std::vector<Leaf> leaves_;
  std::unordered_map<std::string, uint32_t> leaf_key_;
  std::vector<std::vector<Instr>> progs_;
  bool sealed_ = false;
};

}  // namespace aqua

#endif  // AQUA_PATTERN_ALPHABET_H_
