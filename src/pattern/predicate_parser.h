#ifndef AQUA_PATTERN_PREDICATE_PARSER_H_
#define AQUA_PATTERN_PREDICATE_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "pattern/predicate.h"

namespace aqua {

/// Parses the textual form of an alphabet-predicate (§3.1), e.g.
///
///   `citizen == "Brazil"`, `age > 25 && eyes != "blue"`, `!(n < 3) || flag`
///
/// Grammar (attribute names are identifiers; a bare identifier is shorthand
/// for `ident == true` unless followed by a comparison operator):
///
///   pred   := or
///   or     := and ('||' and)*
///   and    := unary ('&&' unary)*
///   unary  := '!' unary | '(' or ')' | 'true' | comparison
///   comparison := ident op literal
///   op     := '==' '!=' '<' '<=' '>' '>='
///   literal := int | double | '"'string'"' | true | false
///
/// An optional surrounding `{ ... }` is accepted and ignored so predicates
/// can be pasted directly out of pattern syntax.
///
/// Every node of the returned AST carries a `SourceSpan`. `span_offset`
/// shifts those spans (and the positions in error messages): the pattern
/// parser passes the offset of the `{...}` atom within the enclosing
/// pattern, so predicate spans index the *pattern* text.
Result<PredicateRef> ParsePredicate(std::string_view text,
                                    size_t span_offset = 0);

}  // namespace aqua

#endif  // AQUA_PATTERN_PREDICATE_PARSER_H_
