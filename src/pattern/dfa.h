#ifndef AQUA_PATTERN_DFA_H_
#define AQUA_PATTERN_DFA_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "object/object_store.h"
#include "bulk/list.h"
#include "pattern/nfa.h"

namespace aqua {

/// Lazily determinized automaton over an `Nfa`.
///
/// The input alphabet of a list pattern is *symbolic* (predicate outcomes),
/// so classical ahead-of-time determinization would enumerate predicate
/// minterms. Instead the DFA determinizes on demand: each distinct element
/// signature (bitset of satisfied predicates + cell/point facts) seen at a
/// DFA state materializes one transition, which is then cached across calls.
/// Repeated matching over a corpus therefore approaches one table lookup per
/// element (the classic DFA payoff measured in `bench_list_match`).
///
/// Thread model: matching MUTATES the DFA (it grows the state/transition
/// caches and bumps the hit/miss counters), so a LazyDfa must never be
/// shared between threads. Parallel execution gives each worker slot its
/// own instance over one shared const `Nfa` (see `exec/compile.cc`); the
/// cache then amortizes across the lists that worker scans.
class LazyDfa {
 public:
  /// `nfa` must outlive the DFA. At most 58 distinct predicates are
  /// supported (signatures are packed into 64 bits).
  static Result<LazyDfa> Make(const Nfa* nfa);

  /// True when the entire list is in the language.
  bool MatchesWhole(const StoreView& store, const List& list);

  /// True when any sublist is in the language (use a search-compiled NFA
  /// for single-pass behavior, mirroring `Nfa::ExistsMatch`).
  bool ExistsMatch(const StoreView& store, const List& list);

  /// Number of materialized DFA states so far.
  size_t num_states() const { return dfa_states_.size(); }
  /// Number of cached transitions so far.
  size_t num_transitions() const { return trans_.size(); }
  /// Transition-cache hits/misses over this DFA's lifetime. A miss falls
  /// back to one NFA simulation step; the hit rate is the "DFA payoff"
  /// measured by `bench_list_match` (mirrored to the registry as
  /// `pattern.dfa_hits` / `pattern.dfa_misses`).
  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }

 private:
  explicit LazyDfa(const Nfa* nfa);

  uint64_t Signature(const Nfa::ElementFacts& facts) const;
  uint32_t InternState(const std::vector<bool>& set);
  uint32_t StepState(uint32_t state, const StoreView& store,
                     const NodePayload& e);

  const Nfa* nfa_;
  std::vector<std::vector<bool>> dfa_states_;  // NFA state sets
  std::vector<bool> accepting_;
  std::map<std::vector<bool>, uint32_t> state_ids_;
  std::map<std::pair<uint32_t, uint64_t>, uint32_t> trans_;
  uint32_t start_state_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace aqua

#endif  // AQUA_PATTERN_DFA_H_
