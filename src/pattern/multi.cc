#include "pattern/multi.h"

#include <algorithm>
#include <deque>

#include "obs/metrics.h"

namespace aqua {

namespace {

/// Unwraps prune markers: `!lp` matches like `lp` (§3.4 separates result
/// shaping from matching), so the merged automaton sees through them.
const ListPattern* UnwrapPrune(const ListPattern* p) {
  while (p->kind() == ListPattern::Kind::kPrune) p = p->inner().get();
  return p;
}

/// Flattens top-level concatenation (through prune markers) into a part
/// sequence, so trie merging sees each leading atom individually.
void FlattenConcat(const ListPattern* p, std::vector<const ListPattern*>* out) {
  p = UnwrapPrune(p);
  if (p->kind() == ListPattern::Kind::kConcat) {
    for (const auto& part : p->parts()) FlattenConcat(part.get(), out);
    return;
  }
  out->push_back(p);
}

bool IsSimpleAtom(const ListPattern* p) {
  switch (p->kind()) {
    case ListPattern::Kind::kPred:
    case ListPattern::Kind::kAny:
    case ListPattern::Kind::kPoint:
      return true;
    default:
      return false;
  }
}

}  // namespace

uint32_t MultiNfa::NewState() {
  states_.emplace_back();
  accept_masks_.push_back(0);
  return static_cast<uint32_t>(states_.size() - 1);
}

void MultiNfa::AddEdge(uint32_t from, Transition t) {
  states_[from].push_back(t);
}

uint32_t MultiNfa::InternLabel(const std::string& label) {
  for (size_t i = 0; i < point_labels_.size(); ++i) {
    if (point_labels_[i] == label) return static_cast<uint32_t>(i);
  }
  point_labels_.push_back(label);
  return static_cast<uint32_t>(point_labels_.size() - 1);
}

uint32_t MultiNfa::LabelIndex(const std::string& label) const {
  for (size_t i = 0; i < point_labels_.size(); ++i) {
    if (point_labels_[i] == label) return static_cast<uint32_t>(i);
  }
  return kNoLabel;
}

Result<MultiNfa::Frag> MultiNfa::Build(const ListPattern& p) {
  switch (p.kind()) {
    case ListPattern::Kind::kPred: {
      Frag f{NewState(), NewState()};
      AddEdge(f.start,
              {Transition::Kind::kPred, f.accept, alphabet_.Intern(p.pred())});
      return f;
    }
    case ListPattern::Kind::kAny: {
      Frag f{NewState(), NewState()};
      AddEdge(f.start, {Transition::Kind::kAnyCell, f.accept, 0});
      return f;
    }
    case ListPattern::Kind::kPoint: {
      Frag f{NewState(), NewState()};
      // A pattern point closes with NULL (epsilon) or consumes one
      // same-labeled instance point.
      AddEdge(f.start, {Transition::Kind::kEpsilon, f.accept, 0});
      AddEdge(f.start,
              {Transition::Kind::kPoint, f.accept, InternLabel(p.label())});
      return f;
    }
    case ListPattern::Kind::kConcat: {
      Frag f{NewState(), 0};
      uint32_t cur = f.start;
      for (const auto& part : p.parts()) {
        AQUA_ASSIGN_OR_RETURN(Frag sub, Build(*part));
        AddEdge(cur, {Transition::Kind::kEpsilon, sub.start, 0});
        cur = sub.accept;
      }
      f.accept = cur;
      return f;
    }
    case ListPattern::Kind::kAlt: {
      Frag f{NewState(), NewState()};
      for (const auto& part : p.parts()) {
        AQUA_ASSIGN_OR_RETURN(Frag sub, Build(*part));
        AddEdge(f.start, {Transition::Kind::kEpsilon, sub.start, 0});
        AddEdge(sub.accept, {Transition::Kind::kEpsilon, f.accept, 0});
      }
      return f;
    }
    case ListPattern::Kind::kStar: {
      AQUA_ASSIGN_OR_RETURN(Frag body, Build(*p.inner()));
      Frag f{NewState(), NewState()};
      AddEdge(f.start, {Transition::Kind::kEpsilon, f.accept, 0});
      AddEdge(f.start, {Transition::Kind::kEpsilon, body.start, 0});
      AddEdge(body.accept, {Transition::Kind::kEpsilon, body.start, 0});
      AddEdge(body.accept, {Transition::Kind::kEpsilon, f.accept, 0});
      return f;
    }
    case ListPattern::Kind::kPlus: {
      AQUA_ASSIGN_OR_RETURN(Frag body, Build(*p.inner()));
      Frag f{NewState(), NewState()};
      AddEdge(f.start, {Transition::Kind::kEpsilon, body.start, 0});
      AddEdge(body.accept, {Transition::Kind::kEpsilon, body.start, 0});
      AddEdge(body.accept, {Transition::Kind::kEpsilon, f.accept, 0});
      return f;
    }
    case ListPattern::Kind::kPrune:
      return Build(*p.inner());
    case ListPattern::Kind::kTreeAtom:
      return Status::InvalidArgument(
          "tree-pattern atoms cannot be compiled to a list NFA");
  }
  return Status::Internal("unreachable in MultiNfa::Build");
}

Status MultiNfa::AddPattern(const ListPatternRef& pattern, uint32_t index,
                            uint32_t trie_root) {
  if (pattern == nullptr) return Status::InvalidArgument("null pattern");
  std::vector<const ListPattern*> parts;
  FlattenConcat(pattern.get(), &parts);

  // Walk the trie over the leading run of simple atoms, reusing states that
  // an earlier pattern with the same prefix already created.
  uint32_t cur = trie_root;
  size_t consumed = 0;
  for (; consumed < parts.size(); ++consumed) {
    const ListPattern* atom = UnwrapPrune(parts[consumed]);
    if (!IsSimpleAtom(atom)) break;
    uint64_t key = 0;
    switch (atom->kind()) {
      case ListPattern::Kind::kPred:
        key = (1ULL << 32) | alphabet_.Intern(atom->pred());
        break;
      case ListPattern::Kind::kAny:
        key = 2ULL << 32;
        break;
      case ListPattern::Kind::kPoint:
        key = (3ULL << 32) | InternLabel(atom->label());
        break;
      default:
        break;
    }
    auto it = trie_.find({cur, key});
    if (it != trie_.end()) {
      cur = it->second;
      ++trie_shared_states_;
      continue;
    }
    uint32_t child = NewState();
    switch (atom->kind()) {
      case ListPattern::Kind::kPred:
        AddEdge(cur, {Transition::Kind::kPred, child,
                      static_cast<uint32_t>(key & 0xffffffffu)});
        break;
      case ListPattern::Kind::kAny:
        AddEdge(cur, {Transition::Kind::kAnyCell, child, 0});
        break;
      case ListPattern::Kind::kPoint:
        AddEdge(cur, {Transition::Kind::kEpsilon, child, 0});
        AddEdge(cur, {Transition::Kind::kPoint, child,
                      static_cast<uint32_t>(key & 0xffffffffu)});
        break;
      default:
        break;
    }
    trie_.emplace(std::make_pair(cur, key), child);
    cur = child;
  }

  // Thompson-compile the non-trivial remainder, if any.
  for (; consumed < parts.size(); ++consumed) {
    AQUA_ASSIGN_OR_RETURN(Frag sub, Build(*parts[consumed]));
    AddEdge(cur, {Transition::Kind::kEpsilon, sub.start, 0});
    cur = sub.accept;
  }
  accept_masks_[cur] |= 1ULL << index;
  return Status::OK();
}

Result<MultiNfa> MultiNfa::CompileSearch(
    const std::vector<ListPatternRef>& patterns) {
  if (patterns.empty()) {
    return Status::InvalidArgument("empty pattern batch");
  }
  if (patterns.size() > 64) {
    return Status::InvalidArgument(
        "at most 64 patterns per merged automaton");
  }
  MultiNfa nfa;
  // One shared search loop feeding one shared trie root: matches may begin
  // at any position, discovered in a single left-to-right pass.
  uint32_t loop = nfa.NewState();
  uint32_t root = nfa.NewState();
  nfa.AddEdge(loop, {Transition::Kind::kAnyCell, loop, 0});
  nfa.AddEdge(loop, {Transition::Kind::kEpsilon, root, 0});
  nfa.start_ = loop;
  for (size_t j = 0; j < patterns.size(); ++j) {
    AQUA_RETURN_IF_ERROR(
        nfa.AddPattern(patterns[j], static_cast<uint32_t>(j), root));
  }
  nfa.num_patterns_ = patterns.size();
  nfa.full_mask_ = patterns.size() == 64
                       ? ~0ULL
                       : (1ULL << patterns.size()) - 1;
  nfa.alphabet_.Seal();
  nfa.trie_.clear();
  return nfa;
}

void MultiNfa::EpsClosure(std::vector<bool>* set) const {
  std::deque<uint32_t> work;
  for (uint32_t s = 0; s < set->size(); ++s) {
    if ((*set)[s]) work.push_back(s);
  }
  while (!work.empty()) {
    uint32_t s = work.front();
    work.pop_front();
    for (const Transition& t : states_[s]) {
      if (t.kind == Transition::Kind::kEpsilon && !(*set)[t.target]) {
        (*set)[t.target] = true;
        work.push_back(t.target);
      }
    }
  }
}

uint64_t MultiNfa::AcceptMask(const std::vector<bool>& set) const {
  uint64_t mask = 0;
  for (uint32_t s = 0; s < set.size(); ++s) {
    if (set[s]) mask |= accept_masks_[s];
  }
  return mask;
}

std::vector<bool> MultiNfa::StepCell(const std::vector<bool>& from,
                                     const uint64_t* sig) const {
  std::vector<bool> next(states_.size(), false);
  for (uint32_t s = 0; s < from.size(); ++s) {
    if (!from[s]) continue;
    for (const Transition& t : states_[s]) {
      switch (t.kind) {
        case Transition::Kind::kEpsilon:
        case Transition::Kind::kPoint:
          break;
        case Transition::Kind::kPred:
          if ((sig[t.index >> 6] >> (t.index & 63)) & 1) {
            next[t.target] = true;
          }
          break;
        case Transition::Kind::kAnyCell:
          next[t.target] = true;
          break;
      }
    }
  }
  EpsClosure(&next);
  return next;
}

std::vector<bool> MultiNfa::StepPoint(const std::vector<bool>& from,
                                      uint32_t label_index) const {
  std::vector<bool> next(states_.size(), false);
  for (uint32_t s = 0; s < from.size(); ++s) {
    if (!from[s]) continue;
    for (const Transition& t : states_[s]) {
      if (t.kind == Transition::Kind::kPoint && t.index == label_index) {
        next[t.target] = true;
      }
    }
  }
  EpsClosure(&next);
  return next;
}

uint64_t MultiNfa::MatchAll(const StoreView& store, const List& list,
                            AlphabetScratch* scratch) const {
  uint64_t matched = 0;
  std::vector<bool> cur(states_.size(), false);
  cur[start_] = true;
  EpsClosure(&cur);
  matched |= AcceptMask(cur);

  const size_t stride = alphabet_.sig_stride();
  size_t rows = 0;
  constexpr size_t kChunk = 256;
  for (size_t base = 0; base < list.size() && matched != full_mask_;
       base += kChunk) {
    const size_t end = std::min(base + kChunk, list.size());
    scratch->oids.clear();
    for (size_t i = base; i < end; ++i) {
      const NodePayload& e = list.at(i);
      if (e.is_cell()) scratch->oids.push_back(e.oid());
    }
    alphabet_.EvalBatch(store, scratch->oids.data(), scratch->oids.size(),
                        scratch);
    rows += end - base;
    size_t cell_pos = 0;
    for (size_t i = base; i < end; ++i) {
      const NodePayload& e = list.at(i);
      if (e.is_cell()) {
        cur = StepCell(cur, scratch->sigs.data() + cell_pos * stride);
        ++cell_pos;
      } else {
        cur = StepPoint(cur, LabelIndex(e.label()));
      }
      matched |= AcceptMask(cur);
      if (matched == full_mask_) break;
    }
  }
  if (rows > 0) AQUA_OBS_COUNT("exec.batch_scan_rows", rows);
  return matched;
}

LazyMultiDfa::LazyMultiDfa(const MultiNfa* nfa) : nfa_(nfa) {
  std::vector<bool> start(nfa_->num_states(), false);
  start[nfa_->start()] = true;
  nfa_->EpsClosure(&start);
  start_state_ = InternState(start);
}

Result<LazyMultiDfa> LazyMultiDfa::Make(const MultiNfa* nfa) {
  if (nfa == nullptr) return Status::InvalidArgument("null MultiNfa");
  if (nfa->alphabet().size() > 58) {
    return Status::InvalidArgument(
        "too many alphabet predicates for 64-bit signatures");
  }
  return LazyMultiDfa(nfa);
}

uint32_t LazyMultiDfa::InternState(const std::vector<bool>& set) {
  auto it = state_ids_.find(set);
  if (it != state_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(dfa_states_.size());
  dfa_states_.push_back(set);
  state_accept_masks_.push_back(nfa_->AcceptMask(set));
  state_ids_.emplace(set, id);
  return id;
}

uint32_t LazyMultiDfa::StepState(uint32_t state, uint64_t sig, bool is_cell,
                                 uint32_t label_index) {
  // Cell signatures set bit 63 over the (≤58-bit) predicate word; point
  // signatures encode label+1 (so an unknown label is distinct from any
  // cell and from every known label).
  const uint64_t key =
      is_cell ? (1ULL << 63) | sig
              : static_cast<uint64_t>(label_index) + 1;
  auto it = trans_.find({state, key});
  if (it != trans_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  std::vector<bool> next =
      is_cell ? nfa_->StepCell(dfa_states_[state], &sig)
              : nfa_->StepPoint(dfa_states_[state], label_index);
  uint32_t id = InternState(next);
  trans_.emplace(std::make_pair(state, key), id);
  return id;
}

uint64_t LazyMultiDfa::MatchAll(const StoreView& store, const List& list,
                                AlphabetScratch* scratch) {
  uint64_t matched = state_accept_masks_[start_state_];
  const uint64_t full = nfa_->full_mask();
  const PredicateAlphabet& alphabet = nfa_->alphabet();
  uint32_t state = start_state_;
  size_t rows = 0;
  constexpr size_t kChunk = 256;
  for (size_t base = 0; base < list.size() && matched != full;
       base += kChunk) {
    const size_t end = std::min(base + kChunk, list.size());
    scratch->oids.clear();
    for (size_t i = base; i < end; ++i) {
      const NodePayload& e = list.at(i);
      if (e.is_cell()) scratch->oids.push_back(e.oid());
    }
    alphabet.EvalBatch(store, scratch->oids.data(), scratch->oids.size(),
                       scratch);
    rows += end - base;
    size_t cell_pos = 0;
    for (size_t i = base; i < end; ++i) {
      const NodePayload& e = list.at(i);
      if (e.is_cell()) {
        state = StepState(state, scratch->sigs[cell_pos], true, 0);
        ++cell_pos;
      } else {
        uint32_t label = MultiNfa::kNoLabel;
        const std::vector<std::string>& labels = nfa_->point_labels();
        for (size_t l = 0; l < labels.size(); ++l) {
          if (labels[l] == e.label()) {
            label = static_cast<uint32_t>(l);
            break;
          }
        }
        state = StepState(state, 0, false, label);
      }
      matched |= state_accept_masks_[state];
      if (matched == full) break;
    }
  }
  if (rows > 0) AQUA_OBS_COUNT("exec.batch_scan_rows", rows);
  return matched;
}

}  // namespace aqua
