#include "pattern/nfa.h"

#include <deque>

#include "obs/metrics.h"

namespace aqua {

namespace {

/// Flushes the simulation step count of one public-API call to the
/// registry on every exit path.
struct NfaStepFlush {
  size_t steps = 0;
  ~NfaStepFlush() {
    if (steps > 0) AQUA_OBS_COUNT("pattern.nfa_steps", steps);
  }
};

}  // namespace

uint32_t Nfa::NewState() {
  states_.emplace_back();
  return static_cast<uint32_t>(states_.size() - 1);
}

void Nfa::AddEdge(uint32_t from, Transition t) {
  states_[from].push_back(t);
}

uint32_t Nfa::InternPred(const PredicateRef& pred) {
  // Predicates are interned by pointer identity; structurally equal but
  // distinct predicate objects get separate slots, which only costs a
  // little duplicate evaluation.
  for (size_t i = 0; i < preds_.size(); ++i) {
    if (preds_[i] == pred) return static_cast<uint32_t>(i);
  }
  preds_.push_back(pred);
  return static_cast<uint32_t>(preds_.size() - 1);
}

uint32_t Nfa::InternLabel(const std::string& label) {
  for (size_t i = 0; i < point_labels_.size(); ++i) {
    if (point_labels_[i] == label) return static_cast<uint32_t>(i);
  }
  point_labels_.push_back(label);
  return static_cast<uint32_t>(point_labels_.size() - 1);
}

Result<Nfa::Frag> Nfa::Build(const ListPattern& p) {
  switch (p.kind()) {
    case ListPattern::Kind::kPred: {
      Frag f{NewState(), NewState()};
      AddEdge(f.start,
              {Transition::Kind::kPred, f.accept, InternPred(p.pred())});
      return f;
    }
    case ListPattern::Kind::kAny: {
      Frag f{NewState(), NewState()};
      AddEdge(f.start, {Transition::Kind::kAnyCell, f.accept, 0});
      return f;
    }
    case ListPattern::Kind::kPoint: {
      Frag f{NewState(), NewState()};
      // A pattern point closes with NULL (epsilon) or consumes one
      // same-labeled instance point.
      AddEdge(f.start, {Transition::Kind::kEpsilon, f.accept, 0});
      AddEdge(f.start,
              {Transition::Kind::kPoint, f.accept, InternLabel(p.label())});
      return f;
    }
    case ListPattern::Kind::kConcat: {
      Frag f{NewState(), 0};
      uint32_t cur = f.start;
      for (const auto& part : p.parts()) {
        AQUA_ASSIGN_OR_RETURN(Frag sub, Build(*part));
        AddEdge(cur, {Transition::Kind::kEpsilon, sub.start, 0});
        cur = sub.accept;
      }
      f.accept = cur;
      return f;
    }
    case ListPattern::Kind::kAlt: {
      Frag f{NewState(), NewState()};
      for (const auto& part : p.parts()) {
        AQUA_ASSIGN_OR_RETURN(Frag sub, Build(*part));
        AddEdge(f.start, {Transition::Kind::kEpsilon, sub.start, 0});
        AddEdge(sub.accept, {Transition::Kind::kEpsilon, f.accept, 0});
      }
      return f;
    }
    case ListPattern::Kind::kStar: {
      AQUA_ASSIGN_OR_RETURN(Frag body, Build(*p.inner()));
      Frag f{NewState(), NewState()};
      AddEdge(f.start, {Transition::Kind::kEpsilon, f.accept, 0});
      AddEdge(f.start, {Transition::Kind::kEpsilon, body.start, 0});
      AddEdge(body.accept, {Transition::Kind::kEpsilon, body.start, 0});
      AddEdge(body.accept, {Transition::Kind::kEpsilon, f.accept, 0});
      return f;
    }
    case ListPattern::Kind::kPlus: {
      AQUA_ASSIGN_OR_RETURN(Frag body, Build(*p.inner()));
      Frag f{NewState(), NewState()};
      AddEdge(f.start, {Transition::Kind::kEpsilon, body.start, 0});
      AddEdge(body.accept, {Transition::Kind::kEpsilon, body.start, 0});
      AddEdge(body.accept, {Transition::Kind::kEpsilon, f.accept, 0});
      return f;
    }
    case ListPattern::Kind::kPrune:
      // Pruning shapes the result, not the language.
      return Build(*p.inner());
    case ListPattern::Kind::kTreeAtom:
      return Status::InvalidArgument(
          "tree-pattern atoms cannot be compiled to a list NFA");
  }
  return Status::Internal("unreachable in Nfa::Build");
}

Result<Nfa> Nfa::Compile(const ListPatternRef& pattern) {
  if (pattern == nullptr) return Status::InvalidArgument("null pattern");
  Nfa nfa;
  AQUA_ASSIGN_OR_RETURN(Frag f, nfa.Build(*pattern));
  nfa.start_ = f.start;
  nfa.accept_ = f.accept;
  return nfa;
}

Result<Nfa> Nfa::CompileSearch(const ListPatternRef& pattern) {
  AQUA_ASSIGN_OR_RETURN(Nfa nfa, Compile(pattern));
  // Prefix with an any-element loop: start' -any-> start' -eps-> start.
  uint32_t loop = nfa.NewState();
  nfa.AddEdge(loop, {Transition::Kind::kAnyCell, loop, 0});
  nfa.AddEdge(loop, {Transition::Kind::kEpsilon, nfa.start_, 0});
  nfa.start_ = loop;
  nfa.search_mode_ = true;
  return nfa;
}

void Nfa::EpsClosure(std::vector<bool>* set) const {
  std::deque<uint32_t> work;
  for (uint32_t s = 0; s < set->size(); ++s) {
    if ((*set)[s]) work.push_back(s);
  }
  while (!work.empty()) {
    uint32_t s = work.front();
    work.pop_front();
    for (const Transition& t : states_[s]) {
      if (t.kind == Transition::Kind::kEpsilon && !(*set)[t.target]) {
        (*set)[t.target] = true;
        work.push_back(t.target);
      }
    }
  }
}

Nfa::ElementFacts Nfa::Facts(const StoreView& store,
                             const NodePayload& e) const {
  ElementFacts facts;
  facts.pred_sat.assign(preds_.size(), false);
  if (e.is_cell()) {
    facts.is_cell = true;
    for (size_t i = 0; i < preds_.size(); ++i) {
      facts.pred_sat[i] = preds_[i]->Eval(store, e.oid());
    }
  } else {
    for (size_t i = 0; i < point_labels_.size(); ++i) {
      if (point_labels_[i] == e.label()) {
        facts.label_index = static_cast<uint32_t>(i);
        break;
      }
    }
  }
  return facts;
}

std::vector<bool> Nfa::Step(const std::vector<bool>& from,
                            const ElementFacts& facts) const {
  std::vector<bool> next(states_.size(), false);
  for (uint32_t s = 0; s < from.size(); ++s) {
    if (!from[s]) continue;
    for (const Transition& t : states_[s]) {
      switch (t.kind) {
        case Transition::Kind::kEpsilon:
          break;
        case Transition::Kind::kPred:
          if (facts.is_cell && facts.pred_sat[t.index]) {
            next[t.target] = true;
          }
          break;
        case Transition::Kind::kAnyCell:
          if (facts.is_cell) next[t.target] = true;
          break;
        case Transition::Kind::kPoint:
          if (!facts.is_cell && facts.label_index == t.index) {
            next[t.target] = true;
          }
          break;
      }
    }
  }
  EpsClosure(&next);
  return next;
}

bool Nfa::MatchesWhole(const StoreView& store, const List& list) const {
  NfaStepFlush flush;
  std::vector<bool> cur(states_.size(), false);
  cur[start_] = true;
  EpsClosure(&cur);
  for (size_t i = 0; i < list.size(); ++i) {
    ++flush.steps;
    cur = Step(cur, Facts(store, list.at(i)));
  }
  return cur[accept_];
}

bool Nfa::ExistsMatch(const StoreView& store, const List& list) const {
  NfaStepFlush flush;
  std::vector<bool> cur(states_.size(), false);
  cur[start_] = true;
  EpsClosure(&cur);
  if (cur[accept_]) return true;
  for (size_t i = 0; i < list.size(); ++i) {
    ++flush.steps;
    cur = Step(cur, Facts(store, list.at(i)));
    if (!search_mode_) {
      // Restart a potential match at every position.
      cur[start_] = true;
      EpsClosure(&cur);
    }
    if (cur[accept_]) return true;
  }
  return false;
}

size_t Nfa::CountMatchEnds(const StoreView& store, const List& list) const {
  NfaStepFlush flush;
  std::vector<bool> cur(states_.size(), false);
  cur[start_] = true;
  EpsClosure(&cur);
  size_t count = cur[accept_] ? 1 : 0;
  for (size_t i = 0; i < list.size(); ++i) {
    ++flush.steps;
    cur = Step(cur, Facts(store, list.at(i)));
    if (!search_mode_) {
      cur[start_] = true;
      EpsClosure(&cur);
    }
    if (cur[accept_]) ++count;
  }
  return count;
}

}  // namespace aqua
