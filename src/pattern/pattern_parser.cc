#include "pattern/pattern_parser.h"

#include <cctype>

#include "common/str_util.h"
#include "pattern/predicate_parser.h"

namespace aqua {

namespace {

/// Recursive-descent parser for both pattern languages. The two share the
/// lexical layer and the regex combinators; they differ in what an atom is.
///
/// Every AST node built here is stamped with the `SourceSpan` of the bytes
/// it was parsed from, so lint diagnostics and parse errors can point at the
/// offending substring. Nodes that are *shared* rather than built — named
/// predicates looked up in `opts.env` — keep whatever span they already
/// carry (they may be referenced from many patterns at once).
class PatternParser {
 public:
  PatternParser(std::string_view text, const PatternParserOptions& opts)
      : text_(text), opts_(opts) {}

  Result<AnchoredListPattern> ParseListTop() {
    AnchoredListPattern out;
    SkipSpace();
    if (Eat('^')) out.anchor_begin = true;
    AQUA_ASSIGN_OR_RETURN(out.body, ParseAlt(/*tree_atoms=*/false));
    SkipSpace();
    if (Eat('$')) out.anchor_end = true;
    SkipSpace();
    if (!AtEnd()) {
      return Err("trailing input in list pattern");
    }
    return out;
  }

  Result<TreePatternRef> ParseTreeTop() {
    SkipSpace();
    bool root_anchor = Eat('^');
    AQUA_ASSIGN_OR_RETURN(TreePatternRef tp, ParseTreeAlt());
    SkipSpace();
    if (Eat('$')) tp = Spanned(TreePattern::LeafAnchor(std::move(tp)), 0);
    SkipSpace();
    if (!AtEnd()) {
      return Err("trailing input in tree pattern");
    }
    if (root_anchor) {
      tp = Spanned(TreePattern::RootAnchor(std::move(tp)), 0);
    }
    return tp;
  }

 private:
  /// Stamps the span `[start, pos_)` onto a freshly built node.
  ListPatternRef Spanned(ListPatternRef node, size_t start) {
    const_cast<ListPattern*>(node.get())->set_span(
        {static_cast<uint32_t>(start), static_cast<uint32_t>(pos_)});
    return node;
  }
  TreePatternRef Spanned(TreePatternRef node, size_t start) {
    const_cast<TreePattern*>(node.get())->set_span(
        {static_cast<uint32_t>(start), static_cast<uint32_t>(pos_)});
    return node;
  }
  PredicateRef Spanned(PredicateRef node, size_t start) {
    const_cast<Predicate*>(node.get())->set_span(
        {static_cast<uint32_t>(start), static_cast<uint32_t>(pos_)});
    return node;
  }

  /// Parse error pointing at the offending position and substring.
  Status Err(std::string msg) const {
    std::string where = " at offset " + std::to_string(pos_);
    if (pos_ < text_.size()) {
      std::string_view rest = text_.substr(pos_);
      where += " near '";
      where += rest.substr(0, rest.size() < 16 ? rest.size() : 16);
      where += "'";
    }
    return Status::ParseError(std::move(msg) + where);
  }

  // -------------------------------------------------------------------
  // Shared regex layer over list-pattern structure.

  Result<ListPatternRef> ParseAlt(bool tree_atoms) {
    SkipSpace();
    size_t start = pos_;
    AQUA_ASSIGN_OR_RETURN(ListPatternRef lhs, ParseCat(tree_atoms));
    std::vector<ListPatternRef> alts = {std::move(lhs)};
    while (true) {
      SkipSpace();
      if (!Eat('|')) break;
      AQUA_ASSIGN_OR_RETURN(ListPatternRef rhs, ParseCat(tree_atoms));
      alts.push_back(std::move(rhs));
    }
    if (alts.size() == 1) return alts[0];
    return Spanned(ListPattern::Alt(std::move(alts)), start);
  }

  Result<ListPatternRef> ParseCat(bool tree_atoms) {
    SkipSpace();
    size_t start = pos_;
    std::vector<ListPatternRef> parts;
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek() == '|' || Peek() == ')' || Peek() == '$' ||
          LookingAt("]]")) {
        break;
      }
      AQUA_ASSIGN_OR_RETURN(ListPatternRef part, ParsePost(tree_atoms));
      parts.push_back(std::move(part));
    }
    if (parts.empty()) {
      // The empty sequence: Concat of nothing (matches zero elements).
      return Spanned(ListPattern::Concat({}), start);
    }
    if (parts.size() == 1) return parts[0];
    return Spanned(ListPattern::Concat(std::move(parts)), start);
  }

  Result<ListPatternRef> ParsePost(bool tree_atoms) {
    SkipSpace();
    size_t start = pos_;
    AQUA_ASSIGN_OR_RETURN(ListPatternRef prim, ParsePrim(tree_atoms));
    while (true) {
      SkipSpace();
      if (Peek1('*') && !LookingAt("*@")) {
        Eat('*');
        prim = Spanned(ListPattern::Star(std::move(prim)), start);
      } else if (Peek1('+') && !LookingAt("+@")) {
        Eat('+');
        prim = Spanned(ListPattern::Plus(std::move(prim)), start);
      } else if (tree_atoms && (LookingAt("*@") || LookingAt("+@"))) {
        // Tree closure applied to a tree atom inside a children sequence.
        bool star = Peek() == '*';
        pos_ += 2;
        AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
        if (prim->kind() != ListPattern::Kind::kTreeAtom) {
          return Err("a '*@'/'+@' tree closure needs a tree-pattern operand");
        }
        TreePatternRef t = prim->tree_atom();
        t = star ? TreePattern::StarAt(std::move(t), std::move(label))
                 : TreePattern::PlusAt(std::move(t), std::move(label));
        prim = Spanned(ListPattern::TreeAtom(Spanned(std::move(t), start)),
                       start);
      } else {
        break;
      }
    }
    return prim;
  }

  Result<ListPatternRef> ParsePrim(bool tree_atoms) {
    SkipSpace();
    size_t start = pos_;
    if (AtEnd()) return Err("unexpected end of pattern");
    if (Eat('!')) {
      AQUA_ASSIGN_OR_RETURN(ListPatternRef inner, ParsePost(tree_atoms));
      return Spanned(ListPattern::Prune(std::move(inner)), start);
    }
    if (LookingAt("[[")) {
      pos_ += 2;
      AQUA_ASSIGN_OR_RETURN(ListPatternRef inner, ParseAlt(tree_atoms));
      SkipSpace();
      if (!LookingAt("]]")) return Err("expected ']]'");
      pos_ += 2;
      return inner;
    }
    if (tree_atoms) {
      // In a children sequence, any primary is a tree pattern; plain atoms
      // (`?`, predicates, points) stay list-level unless they have children.
      return ParseChildAtom();
    }
    if (Peek() == '@') {
      Eat('@');
      AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
      return Spanned(ListPattern::Point(std::move(label)), start);
    }
    if (Eat('?')) return Spanned(ListPattern::Any(), start);
    AQUA_ASSIGN_OR_RETURN(PredicateRef pred, ParseAtomPredicate());
    return Spanned(ListPattern::Pred(std::move(pred)), start);
  }

  /// One atom of a children sequence: a tree pattern primary. Keeps simple
  /// node-less atoms at the list level so the common case stays cheap.
  Result<ListPatternRef> ParseChildAtom() {
    SkipSpace();
    size_t start = pos_;
    if (Peek() == '@') {
      Eat('@');
      AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
      return Spanned(ListPattern::Point(std::move(label)), start);
    }
    size_t save = pos_;
    // Try a bare `?` or predicate atom without children first.
    if (Eat('?')) {
      SkipSpace();
      if (!Peek1('(')) return Spanned(ListPattern::Any(), start);
      pos_ = save;
    } else if (Peek() == '{' || Peek() == '"' || IsIdentStart(Peek())) {
      AQUA_ASSIGN_OR_RETURN(PredicateRef pred, ParseAtomPredicate());
      SkipSpace();
      if (!Peek1('(')) {
        return Spanned(ListPattern::Pred(std::move(pred)), start);
      }
      pos_ = save;
    }
    AQUA_ASSIGN_OR_RETURN(TreePatternRef tp, ParseTreePrim());
    return Spanned(ListPattern::TreeAtom(std::move(tp)), start);
  }

  // -------------------------------------------------------------------
  // Tree-pattern layer.

  Result<TreePatternRef> ParseTreeAlt() {
    SkipSpace();
    size_t start = pos_;
    AQUA_ASSIGN_OR_RETURN(TreePatternRef lhs, ParseTreeCat());
    std::vector<TreePatternRef> alts = {std::move(lhs)};
    while (true) {
      SkipSpace();
      if (!Eat('|')) break;
      AQUA_ASSIGN_OR_RETURN(TreePatternRef rhs, ParseTreeCat());
      alts.push_back(std::move(rhs));
    }
    if (alts.size() == 1) return alts[0];
    return Spanned(TreePattern::Alt(std::move(alts)), start);
  }

  Result<TreePatternRef> ParseTreeCat() {
    SkipSpace();
    size_t start = pos_;
    AQUA_ASSIGN_OR_RETURN(TreePatternRef lhs, ParseTreePost());
    while (true) {
      SkipSpace();
      if (!LookingAt(".@")) break;
      pos_ += 2;
      AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
      AQUA_ASSIGN_OR_RETURN(TreePatternRef rhs, ParseTreePost());
      lhs = Spanned(TreePattern::ConcatAt(std::move(lhs), std::move(label),
                                          std::move(rhs)),
                    start);
    }
    return lhs;
  }

  Result<TreePatternRef> ParseTreePost() {
    SkipSpace();
    size_t start = pos_;
    AQUA_ASSIGN_OR_RETURN(TreePatternRef prim, ParseTreePrim());
    while (true) {
      SkipSpace();
      if (LookingAt("*@") || LookingAt("+@")) {
        bool star = Peek() == '*';
        pos_ += 2;
        AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
        prim = star ? TreePattern::StarAt(std::move(prim), std::move(label))
                    : TreePattern::PlusAt(std::move(prim), std::move(label));
        prim = Spanned(std::move(prim), start);
      } else {
        break;
      }
    }
    return prim;
  }

  Result<TreePatternRef> ParseTreePrim() {
    SkipSpace();
    size_t start = pos_;
    if (AtEnd()) return Err("unexpected end of tree pattern");
    if (Eat('!')) {
      AQUA_ASSIGN_OR_RETURN(TreePatternRef inner, ParseTreePost());
      return Spanned(TreePattern::Prune(std::move(inner)), start);
    }
    if (LookingAt("[[")) {
      pos_ += 2;
      AQUA_ASSIGN_OR_RETURN(TreePatternRef inner, ParseTreeAlt());
      SkipSpace();
      if (Eat('$')) {
        inner = Spanned(TreePattern::LeafAnchor(std::move(inner)), start);
      }
      SkipSpace();
      if (!LookingAt("]]")) return Err("expected ']]'");
      pos_ += 2;
      return inner;
    }
    if (Peek() == '@') {
      Eat('@');
      AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
      return Spanned(TreePattern::Point(std::move(label)), start);
    }
    PredicateRef pred;
    if (Eat('?')) {
      pred = nullptr;  // any
    } else {
      AQUA_ASSIGN_OR_RETURN(pred, ParseAtomPredicate());
    }
    SkipSpace();
    if (Eat('(')) {
      AQUA_ASSIGN_OR_RETURN(ListPatternRef children,
                            ParseAlt(/*tree_atoms=*/true));
      SkipSpace();
      if (!Eat(')')) return Err("expected ')'");
      return Spanned(TreePattern::Node(std::move(pred), std::move(children)),
                     start);
    }
    return Spanned(TreePattern::Leaf(std::move(pred)), start);
  }

  // -------------------------------------------------------------------
  // Atoms.

  Result<PredicateRef> ParseAtomPredicate() {
    SkipSpace();
    if (AtEnd()) return Err("expected a predicate atom");
    char c = Peek();
    if (c == '{') {
      size_t depth = 0;
      size_t start = pos_;
      while (!AtEnd()) {
        if (Peek() == '{') ++depth;
        if (Peek() == '}') {
          --depth;
          if (depth == 0) break;
        }
        ++pos_;
      }
      if (AtEnd()) return Err("unterminated '{' predicate");
      ++pos_;  // consume '}'
      // The predicate parser shifts its spans by `start`, so they index
      // this pattern's text.
      return ParsePredicate(text_.substr(start, pos_ - start), start);
    }
    size_t start = pos_;
    std::string token;
    if (c == '"') {
      ++pos_;
      while (!AtEnd() && Peek() != '"') token += text_[pos_++];
      if (!Eat('"')) return Err("unterminated string atom");
    } else if (IsIdentStart(c)) {
      token = LexIdent();
    } else {
      return Err(std::string("unexpected character '") + c + "' in pattern");
    }
    if (opts_.env != nullptr && opts_.env->Has(token)) {
      // Shared named predicate: do not restamp its span.
      return opts_.env->Lookup(token);
    }
    if (opts_.default_attr.empty()) {
      return Err("unbound predicate name '" + token + "'");
    }
    return Spanned(Predicate::AttrEquals(opts_.default_attr,
                                         Value::String(std::move(token))),
                   start);
  }

  Result<std::string> LexLabel() {
    if (AtEnd() || !IsIdentChar(Peek())) {
      return Err("expected a concatenation-point label");
    }
    std::string out;
    while (!AtEnd() && IsIdentChar(Peek())) out += text_[pos_++];
    return out;
  }

  std::string LexIdent() {
    std::string out;
    while (!AtEnd() && IsIdentChar(Peek())) out += text_[pos_++];
    return out;
  }

  bool LookingAt(std::string_view tok) const {
    return text_.substr(pos_).substr(0, tok.size()) == tok;
  }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  bool Peek1(char c) const { return !AtEnd() && text_[pos_] == c; }
  bool Eat(char c) {
    if (!Peek1(c)) return false;
    ++pos_;
    return true;
  }

  std::string_view text_;
  const PatternParserOptions& opts_;
  size_t pos_ = 0;
};

}  // namespace

Result<AnchoredListPattern> ParseListPattern(std::string_view text,
                                             const PatternParserOptions& opts) {
  return PatternParser(text, opts).ParseListTop();
}

Result<TreePatternRef> ParseTreePattern(std::string_view text,
                                        const PatternParserOptions& opts) {
  return PatternParser(text, opts).ParseTreeTop();
}

}  // namespace aqua
