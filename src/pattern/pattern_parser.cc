#include "pattern/pattern_parser.h"

#include <cctype>

#include "common/str_util.h"
#include "pattern/predicate_parser.h"

namespace aqua {

namespace {

/// Recursive-descent parser for both pattern languages. The two share the
/// lexical layer and the regex combinators; they differ in what an atom is.
class PatternParser {
 public:
  PatternParser(std::string_view text, const PatternParserOptions& opts)
      : text_(text), opts_(opts) {}

  Result<AnchoredListPattern> ParseListTop() {
    AnchoredListPattern out;
    SkipSpace();
    if (Eat('^')) out.anchor_begin = true;
    AQUA_ASSIGN_OR_RETURN(out.body, ParseAlt(/*tree_atoms=*/false));
    SkipSpace();
    if (Eat('$')) out.anchor_end = true;
    SkipSpace();
    if (!AtEnd()) {
      return Status::ParseError("trailing input in list pattern at position " +
                                std::to_string(pos_));
    }
    return out;
  }

  Result<TreePatternRef> ParseTreeTop() {
    SkipSpace();
    bool root_anchor = Eat('^');
    AQUA_ASSIGN_OR_RETURN(TreePatternRef tp, ParseTreeAlt());
    SkipSpace();
    if (Eat('$')) tp = TreePattern::LeafAnchor(std::move(tp));
    SkipSpace();
    if (!AtEnd()) {
      return Status::ParseError("trailing input in tree pattern at position " +
                                std::to_string(pos_));
    }
    if (root_anchor) tp = TreePattern::RootAnchor(std::move(tp));
    return tp;
  }

 private:
  // -------------------------------------------------------------------
  // Shared regex layer over list-pattern structure.

  Result<ListPatternRef> ParseAlt(bool tree_atoms) {
    AQUA_ASSIGN_OR_RETURN(ListPatternRef lhs, ParseCat(tree_atoms));
    std::vector<ListPatternRef> alts = {std::move(lhs)};
    while (true) {
      SkipSpace();
      if (!Eat('|')) break;
      AQUA_ASSIGN_OR_RETURN(ListPatternRef rhs, ParseCat(tree_atoms));
      alts.push_back(std::move(rhs));
    }
    if (alts.size() == 1) return alts[0];
    return ListPattern::Alt(std::move(alts));
  }

  Result<ListPatternRef> ParseCat(bool tree_atoms) {
    std::vector<ListPatternRef> parts;
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek() == '|' || Peek() == ')' || Peek() == '$' ||
          LookingAt("]]")) {
        break;
      }
      AQUA_ASSIGN_OR_RETURN(ListPatternRef part, ParsePost(tree_atoms));
      parts.push_back(std::move(part));
    }
    if (parts.empty()) {
      // The empty sequence: Concat of nothing (matches zero elements).
      return ListPattern::Concat({});
    }
    if (parts.size() == 1) return parts[0];
    return ListPattern::Concat(std::move(parts));
  }

  Result<ListPatternRef> ParsePost(bool tree_atoms) {
    AQUA_ASSIGN_OR_RETURN(ListPatternRef prim, ParsePrim(tree_atoms));
    while (true) {
      SkipSpace();
      if (Peek1('*') && !LookingAt("*@")) {
        Eat('*');
        prim = ListPattern::Star(std::move(prim));
      } else if (Peek1('+') && !LookingAt("+@")) {
        Eat('+');
        prim = ListPattern::Plus(std::move(prim));
      } else if (tree_atoms && (LookingAt("*@") || LookingAt("+@"))) {
        // Tree closure applied to a tree atom inside a children sequence.
        bool star = Peek() == '*';
        pos_ += 2;
        AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
        if (prim->kind() != ListPattern::Kind::kTreeAtom) {
          return Status::ParseError(
              "a '*@'/'+@' tree closure needs a tree-pattern operand");
        }
        TreePatternRef t = prim->tree_atom();
        t = star ? TreePattern::StarAt(std::move(t), std::move(label))
                 : TreePattern::PlusAt(std::move(t), std::move(label));
        prim = ListPattern::TreeAtom(std::move(t));
      } else {
        break;
      }
    }
    return prim;
  }

  Result<ListPatternRef> ParsePrim(bool tree_atoms) {
    SkipSpace();
    if (AtEnd()) return Status::ParseError("unexpected end of pattern");
    if (Eat('!')) {
      AQUA_ASSIGN_OR_RETURN(ListPatternRef inner, ParsePost(tree_atoms));
      return ListPattern::Prune(std::move(inner));
    }
    if (LookingAt("[[")) {
      pos_ += 2;
      AQUA_ASSIGN_OR_RETURN(ListPatternRef inner, ParseAlt(tree_atoms));
      SkipSpace();
      if (!LookingAt("]]")) return Status::ParseError("expected ']]'");
      pos_ += 2;
      return inner;
    }
    if (tree_atoms) {
      // In a children sequence, any primary is a tree pattern; plain atoms
      // (`?`, predicates, points) stay list-level unless they have children.
      return ParseChildAtom();
    }
    if (Peek() == '@') {
      Eat('@');
      AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
      return ListPattern::Point(std::move(label));
    }
    if (Eat('?')) return ListPattern::Any();
    AQUA_ASSIGN_OR_RETURN(PredicateRef pred, ParseAtomPredicate());
    return ListPattern::Pred(std::move(pred));
  }

  /// One atom of a children sequence: a tree pattern primary. Keeps simple
  /// node-less atoms at the list level so the common case stays cheap.
  Result<ListPatternRef> ParseChildAtom() {
    SkipSpace();
    if (Peek() == '@') {
      Eat('@');
      AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
      return ListPattern::Point(std::move(label));
    }
    size_t save = pos_;
    // Try a bare `?` or predicate atom without children first.
    if (Eat('?')) {
      SkipSpace();
      if (!Peek1('(')) return ListPattern::Any();
      pos_ = save;
    } else if (Peek() == '{' || Peek() == '"' || IsIdentStart(Peek())) {
      AQUA_ASSIGN_OR_RETURN(PredicateRef pred, ParseAtomPredicate());
      SkipSpace();
      if (!Peek1('(')) return ListPattern::Pred(std::move(pred));
      pos_ = save;
    }
    AQUA_ASSIGN_OR_RETURN(TreePatternRef tp, ParseTreePrim());
    return ListPattern::TreeAtom(std::move(tp));
  }

  // -------------------------------------------------------------------
  // Tree-pattern layer.

  Result<TreePatternRef> ParseTreeAlt() {
    AQUA_ASSIGN_OR_RETURN(TreePatternRef lhs, ParseTreeCat());
    std::vector<TreePatternRef> alts = {std::move(lhs)};
    while (true) {
      SkipSpace();
      if (!Eat('|')) break;
      AQUA_ASSIGN_OR_RETURN(TreePatternRef rhs, ParseTreeCat());
      alts.push_back(std::move(rhs));
    }
    if (alts.size() == 1) return alts[0];
    return TreePattern::Alt(std::move(alts));
  }

  Result<TreePatternRef> ParseTreeCat() {
    AQUA_ASSIGN_OR_RETURN(TreePatternRef lhs, ParseTreePost());
    while (true) {
      SkipSpace();
      if (!LookingAt(".@")) break;
      pos_ += 2;
      AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
      AQUA_ASSIGN_OR_RETURN(TreePatternRef rhs, ParseTreePost());
      lhs = TreePattern::ConcatAt(std::move(lhs), std::move(label),
                                  std::move(rhs));
    }
    return lhs;
  }

  Result<TreePatternRef> ParseTreePost() {
    AQUA_ASSIGN_OR_RETURN(TreePatternRef prim, ParseTreePrim());
    while (true) {
      SkipSpace();
      if (LookingAt("*@") || LookingAt("+@")) {
        bool star = Peek() == '*';
        pos_ += 2;
        AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
        prim = star ? TreePattern::StarAt(std::move(prim), std::move(label))
                    : TreePattern::PlusAt(std::move(prim), std::move(label));
      } else {
        break;
      }
    }
    return prim;
  }

  Result<TreePatternRef> ParseTreePrim() {
    SkipSpace();
    if (AtEnd()) return Status::ParseError("unexpected end of tree pattern");
    if (Eat('!')) {
      AQUA_ASSIGN_OR_RETURN(TreePatternRef inner, ParseTreePost());
      return TreePattern::Prune(std::move(inner));
    }
    if (LookingAt("[[")) {
      pos_ += 2;
      AQUA_ASSIGN_OR_RETURN(TreePatternRef inner, ParseTreeAlt());
      SkipSpace();
      if (Eat('$')) inner = TreePattern::LeafAnchor(std::move(inner));
      SkipSpace();
      if (!LookingAt("]]")) return Status::ParseError("expected ']]'");
      pos_ += 2;
      return inner;
    }
    if (Peek() == '@') {
      Eat('@');
      AQUA_ASSIGN_OR_RETURN(std::string label, LexLabel());
      return TreePattern::Point(std::move(label));
    }
    PredicateRef pred;
    if (Eat('?')) {
      pred = nullptr;  // any
    } else {
      AQUA_ASSIGN_OR_RETURN(pred, ParseAtomPredicate());
    }
    SkipSpace();
    if (Eat('(')) {
      AQUA_ASSIGN_OR_RETURN(ListPatternRef children,
                            ParseAlt(/*tree_atoms=*/true));
      SkipSpace();
      if (!Eat(')')) return Status::ParseError("expected ')'");
      return TreePattern::Node(std::move(pred), std::move(children));
    }
    return TreePattern::Leaf(std::move(pred));
  }

  // -------------------------------------------------------------------
  // Atoms.

  Result<PredicateRef> ParseAtomPredicate() {
    SkipSpace();
    if (AtEnd()) return Status::ParseError("expected a predicate atom");
    char c = Peek();
    if (c == '{') {
      size_t depth = 0;
      size_t start = pos_;
      while (!AtEnd()) {
        if (Peek() == '{') ++depth;
        if (Peek() == '}') {
          --depth;
          if (depth == 0) break;
        }
        ++pos_;
      }
      if (AtEnd()) return Status::ParseError("unterminated '{' predicate");
      ++pos_;  // consume '}'
      return ParsePredicate(text_.substr(start, pos_ - start));
    }
    std::string token;
    if (c == '"') {
      ++pos_;
      while (!AtEnd() && Peek() != '"') token += text_[pos_++];
      if (!Eat('"')) return Status::ParseError("unterminated string atom");
    } else if (IsIdentStart(c)) {
      token = LexIdent();
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in pattern");
    }
    if (opts_.env != nullptr && opts_.env->Has(token)) {
      return opts_.env->Lookup(token);
    }
    if (opts_.default_attr.empty()) {
      return Status::ParseError("unbound predicate name '" + token + "'");
    }
    return Predicate::AttrEquals(opts_.default_attr,
                                 Value::String(std::move(token)));
  }

  Result<std::string> LexLabel() {
    if (AtEnd() || !IsIdentChar(Peek())) {
      return Status::ParseError("expected a concatenation-point label");
    }
    std::string out;
    while (!AtEnd() && IsIdentChar(Peek())) out += text_[pos_++];
    return out;
  }

  std::string LexIdent() {
    std::string out;
    while (!AtEnd() && IsIdentChar(Peek())) out += text_[pos_++];
    return out;
  }

  bool LookingAt(std::string_view tok) const {
    return text_.substr(pos_).substr(0, tok.size()) == tok;
  }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  bool Peek1(char c) const { return !AtEnd() && text_[pos_] == c; }
  bool Eat(char c) {
    if (!Peek1(c)) return false;
    ++pos_;
    return true;
  }

  std::string_view text_;
  const PatternParserOptions& opts_;
  size_t pos_ = 0;
};

}  // namespace

Result<AnchoredListPattern> ParseListPattern(std::string_view text,
                                             const PatternParserOptions& opts) {
  return PatternParser(text, opts).ParseListTop();
}

Result<TreePatternRef> ParseTreePattern(std::string_view text,
                                        const PatternParserOptions& opts) {
  return PatternParser(text, opts).ParseTreeTop();
}

}  // namespace aqua
