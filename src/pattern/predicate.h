#ifndef AQUA_PATTERN_PREDICATE_H_
#define AQUA_PATTERN_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "object/object_store.h"
#include "object/schema.h"
#include "pattern/source_span.h"

namespace aqua {

/// Comparison operators usable in alphabet-predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpToString(CmpOp op);

class Predicate;
using PredicateRef = std::shared_ptr<const Predicate>;

/// An alphabet-predicate (§3.1): a unary boolean function over one object,
/// built only from stored attributes, constants, comparisons, and AND / OR /
/// NOT — which bounds its evaluation cost by its (constant) size.
///
/// Semantics on heterogeneous inputs: a comparison whose attribute is absent
/// from the object's type, or whose operand types are incomparable, is
/// *false* — the lambda `(λ(Person) Person.age > 25)` simply does not match a
/// non-Person object. (`Not` inverts that as ordinary boolean negation.)
class Predicate {
 public:
  enum class Kind { kTrue, kCompare, kAnd, kOr, kNot };

  /// The always-true predicate (the `?` metacharacter).
  static PredicateRef True();
  /// `attr op constant`.
  static PredicateRef Compare(std::string attr, CmpOp op, Value constant);
  /// Shorthand for `attr == constant`.
  static PredicateRef AttrEquals(std::string attr, Value constant);
  static PredicateRef And(PredicateRef a, PredicateRef b);
  static PredicateRef Or(PredicateRef a, PredicateRef b);
  static PredicateRef Not(PredicateRef a);

  Kind kind() const { return kind_; }
  // Compare accessors.
  const std::string& attr() const { return attr_; }
  CmpOp op() const { return op_; }
  const Value& constant() const { return constant_; }
  // Boolean-combination accessors.
  const PredicateRef& left() const { return left_; }
  const PredicateRef& right() const { return right_; }

  /// Evaluates against the object `oid` (constant time in predicate size).
  /// The `StoreView` overload is the hot path: it reads one pinned epoch
  /// lock-free. The `ObjectStore` overload reads the head (locked), and the
  /// `StoreTxn` overload lets `FnExpr` guards see a transaction's own
  /// uncommitted effects.
  bool Eval(const StoreView& store, Oid oid) const;
  bool Eval(const ObjectStore& store, Oid oid) const;
  bool Eval(const StoreTxn& store, Oid oid) const;

  /// Verifies the §3.1 restriction against a type: every referenced
  /// attribute must be declared *and stored* (footnote 2: the optimizer, not
  /// the user, checks this).
  Status ValidateAgainst(const TypeDef& type) const;

  /// Appends the names of all attributes this predicate reads.
  void CollectAttrs(std::vector<std::string>* out) const;

  /// Number of AST nodes.
  size_t SizeInNodes() const;

  /// Renders e.g. `{citizen == "Brazil" && age > 25}` (no braces inside).
  std::string ToString() const;

  /// Source range this node was parsed from (invalid when built
  /// programmatically). Set once by the parser on the freshly built node.
  const SourceSpan& span() const { return span_; }
  void set_span(SourceSpan span) { span_ = span; }

 private:
  Predicate() = default;

  Kind kind_ = Kind::kTrue;
  std::string attr_;
  CmpOp op_ = CmpOp::kEq;
  Value constant_;
  PredicateRef left_;
  PredicateRef right_;
  SourceSpan span_;
};

/// A registry of named predicates, used by the pattern parser so queries can
/// use the paper's shorthand (e.g. `Brazil` for
/// `(λ(p) p.citizen = "Brazil")`).
class PredicateEnv {
 public:
  void Bind(std::string name, PredicateRef pred);
  Result<PredicateRef> Lookup(const std::string& name) const;
  bool Has(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, PredicateRef>> bindings_;
};

}  // namespace aqua

#endif  // AQUA_PATTERN_PREDICATE_H_
