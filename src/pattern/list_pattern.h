#ifndef AQUA_PATTERN_LIST_PATTERN_H_
#define AQUA_PATTERN_LIST_PATTERN_H_

#include <memory>
#include <string>
#include <vector>

#include "pattern/predicate.h"
#include "pattern/source_span.h"

namespace aqua {

class TreePattern;
using TreePatternRef = std::shared_ptr<const TreePattern>;

class ListPattern;
using ListPatternRef = std::shared_ptr<const ListPattern>;

/// A list pattern (§3.2): a regular expression whose alphabet is
/// alphabet-predicates. The same AST also describes the *children sequence*
/// of a tree-pattern node (§3.3), in which case atoms are tree patterns
/// (`kTreeAtom`).
///
/// Kinds:
///  * `kPred`     — one element satisfying an alphabet-predicate
///  * `kAny`      — `?`, one arbitrary element
///  * `kConcat`   — `lp1 ∘ lp2 ...`
///  * `kAlt`      — `lp1 | lp2 | ...`
///  * `kStar`     — `lp*` (zero or more self-concatenations)
///  * `kPlus`     — `lp+`
///  * `kPrune`    — `!lp`: matches like `lp` but the consumed elements (for
///                  trees: the subtrees rooted at the matched nodes) are
///                  pruned from the result and become cut pieces (§3.4)
///  * `kPoint`    — a concatenation point `@label` appearing in a pattern
///  * `kTreeAtom` — a tree pattern as an atom of a children sequence
///
/// Anchors `^` / `$` (§3.2) apply to a whole pattern and are carried
/// alongside the AST (see `AnchoredListPattern`).
class ListPattern {
 public:
  enum class Kind {
    kPred,
    kAny,
    kConcat,
    kAlt,
    kStar,
    kPlus,
    kPrune,
    kPoint,
    kTreeAtom,
  };

  static ListPatternRef Pred(PredicateRef pred);
  static ListPatternRef Any();
  static ListPatternRef Concat(std::vector<ListPatternRef> parts);
  static ListPatternRef Alt(std::vector<ListPatternRef> alts);
  static ListPatternRef Star(ListPatternRef inner);
  static ListPatternRef Plus(ListPatternRef inner);
  static ListPatternRef Prune(ListPatternRef inner);
  static ListPatternRef Point(std::string label);
  static ListPatternRef TreeAtom(TreePatternRef tree_pattern);

  /// Convenience: `?*` — zero or more arbitrary elements.
  static ListPatternRef AnyStar();

  Kind kind() const { return kind_; }
  const PredicateRef& pred() const { return pred_; }
  const std::vector<ListPatternRef>& parts() const { return parts_; }
  const ListPatternRef& inner() const { return parts_[0]; }
  const std::string& label() const { return label_; }
  const TreePatternRef& tree_atom() const { return tree_atom_; }

  /// True when the pattern can match the empty sequence.
  bool Nullable() const;

  /// Total number of AST nodes (including nested tree-pattern atoms'
  /// children sequences are counted as 1 atom here).
  size_t SizeInNodes() const;

  /// Renders in the paper-flavored ASCII syntax, e.g.
  /// `!?* {citizen == "USA"} !?*`.
  std::string ToString() const;

  /// Source range this node was parsed from (invalid when built
  /// programmatically). Set once by the parser on the freshly built node.
  const SourceSpan& span() const { return span_; }
  void set_span(SourceSpan span) { span_ = span; }

 private:
  ListPattern() = default;

  Kind kind_ = Kind::kAny;
  PredicateRef pred_;
  std::vector<ListPatternRef> parts_;
  std::string label_;
  TreePatternRef tree_atom_;
  SourceSpan span_;
};

/// A top-level list pattern with the paper's `^` / `$` anchors.
struct AnchoredListPattern {
  ListPatternRef body;
  bool anchor_begin = false;
  bool anchor_end = false;

  std::string ToString() const;
};

}  // namespace aqua

#endif  // AQUA_PATTERN_LIST_PATTERN_H_
