#include "pattern/list_pattern.h"

#include "pattern/tree_pattern.h"

namespace aqua {

ListPatternRef ListPattern::Pred(PredicateRef pred) {
  auto p = std::shared_ptr<ListPattern>(new ListPattern());
  p->kind_ = Kind::kPred;
  p->pred_ = std::move(pred);
  return p;
}

ListPatternRef ListPattern::Any() {
  auto p = std::shared_ptr<ListPattern>(new ListPattern());
  p->kind_ = Kind::kAny;
  return p;
}

ListPatternRef ListPattern::Concat(std::vector<ListPatternRef> parts) {
  auto p = std::shared_ptr<ListPattern>(new ListPattern());
  p->kind_ = Kind::kConcat;
  p->parts_ = std::move(parts);
  return p;
}

ListPatternRef ListPattern::Alt(std::vector<ListPatternRef> alts) {
  auto p = std::shared_ptr<ListPattern>(new ListPattern());
  p->kind_ = Kind::kAlt;
  p->parts_ = std::move(alts);
  return p;
}

ListPatternRef ListPattern::Star(ListPatternRef inner) {
  auto p = std::shared_ptr<ListPattern>(new ListPattern());
  p->kind_ = Kind::kStar;
  p->parts_ = {std::move(inner)};
  return p;
}

ListPatternRef ListPattern::Plus(ListPatternRef inner) {
  auto p = std::shared_ptr<ListPattern>(new ListPattern());
  p->kind_ = Kind::kPlus;
  p->parts_ = {std::move(inner)};
  return p;
}

ListPatternRef ListPattern::Prune(ListPatternRef inner) {
  auto p = std::shared_ptr<ListPattern>(new ListPattern());
  p->kind_ = Kind::kPrune;
  p->parts_ = {std::move(inner)};
  return p;
}

ListPatternRef ListPattern::Point(std::string label) {
  auto p = std::shared_ptr<ListPattern>(new ListPattern());
  p->kind_ = Kind::kPoint;
  p->label_ = std::move(label);
  return p;
}

ListPatternRef ListPattern::TreeAtom(TreePatternRef tree_pattern) {
  auto p = std::shared_ptr<ListPattern>(new ListPattern());
  p->kind_ = Kind::kTreeAtom;
  p->tree_atom_ = std::move(tree_pattern);
  return p;
}

ListPatternRef ListPattern::AnyStar() { return Star(Any()); }

bool ListPattern::Nullable() const {
  switch (kind_) {
    case Kind::kPred:
    case Kind::kAny:
    case Kind::kPoint:
    case Kind::kTreeAtom:
      return false;
    case Kind::kConcat: {
      for (const auto& p : parts_) {
        if (!p->Nullable()) return false;
      }
      return true;
    }
    case Kind::kAlt: {
      for (const auto& p : parts_) {
        if (p->Nullable()) return true;
      }
      return false;
    }
    case Kind::kStar:
      return true;
    case Kind::kPlus:
    case Kind::kPrune:
      return parts_[0]->Nullable();
  }
  return false;
}

size_t ListPattern::SizeInNodes() const {
  size_t n = 1;
  for (const auto& p : parts_) n += p->SizeInNodes();
  return n;
}

std::string ListPattern::ToString() const {
  switch (kind_) {
    case Kind::kPred:
      return "{" + pred_->ToString() + "}";
    case Kind::kAny:
      return "?";
    case Kind::kConcat: {
      std::string out;
      for (size_t i = 0; i < parts_.size(); ++i) {
        if (i > 0) out += " ";
        out += parts_[i]->ToString();
      }
      return out;
    }
    case Kind::kAlt: {
      std::string out = "[[";
      for (size_t i = 0; i < parts_.size(); ++i) {
        if (i > 0) out += " | ";
        out += parts_[i]->ToString();
      }
      out += "]]";
      return out;
    }
    case Kind::kStar: {
      const auto& in = parts_[0];
      bool atom = in->parts_.empty();
      return (atom ? in->ToString() : "[[" + in->ToString() + "]]") + "*";
    }
    case Kind::kPlus: {
      const auto& in = parts_[0];
      bool atom = in->parts_.empty();
      return (atom ? in->ToString() : "[[" + in->ToString() + "]]") + "+";
    }
    case Kind::kPrune: {
      const auto& in = parts_[0];
      bool atom = in->parts_.empty() && in->kind_ != Kind::kStar &&
                  in->kind_ != Kind::kPlus;
      // !x* reads fine; only bracket multi-part bodies.
      if (in->kind_ == Kind::kStar || in->kind_ == Kind::kPlus) atom = true;
      return "!" + (atom ? in->ToString() : "[[" + in->ToString() + "]]");
    }
    case Kind::kPoint:
      return "@" + label_;
    case Kind::kTreeAtom:
      return tree_atom_->ToString();
  }
  return "?";
}

std::string AnchoredListPattern::ToString() const {
  std::string out;
  if (anchor_begin) out += "^";
  out += body ? body->ToString() : "";
  if (anchor_end) out += "$";
  return out;
}

}  // namespace aqua
