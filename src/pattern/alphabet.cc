#include "pattern/alphabet.h"

#include <cstring>

#include "object/schema.h"
#include "obs/metrics.h"

namespace aqua {

namespace {

inline size_t HashCombine(size_t seed, size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t PredicateStructuralHash(const Predicate& p) {
  size_t h = static_cast<size_t>(p.kind()) * 0x100000001b3ULL;
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      return h;
    case Predicate::Kind::kCompare:
      h = HashCombine(h, std::hash<std::string>{}(p.attr()));
      h = HashCombine(h, static_cast<size_t>(p.op()));
      return HashCombine(h, p.constant().Hash());
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      h = HashCombine(h, PredicateStructuralHash(*p.left()));
      return HashCombine(h, PredicateStructuralHash(*p.right()));
    case Predicate::Kind::kNot:
      return HashCombine(h, PredicateStructuralHash(*p.left()));
  }
  return h;
}

bool PredicateStructuralEquals(const Predicate& a, const Predicate& b) {
  if (&a == &b) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kCompare:
      return a.op() == b.op() && a.attr() == b.attr() &&
             a.constant().type() == b.constant().type() &&
             a.constant().Equals(b.constant());
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      return PredicateStructuralEquals(*a.left(), *b.left()) &&
             PredicateStructuralEquals(*a.right(), *b.right());
    case Predicate::Kind::kNot:
      return PredicateStructuralEquals(*a.left(), *b.left());
  }
  return false;
}

PredicateRef PredicateInterner::Intern(const PredicateRef& pred) {
  if (pred == nullptr) return pred;
  PredicateRef node = pred;
  switch (pred->kind()) {
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      PredicateRef l = Intern(pred->left());
      PredicateRef r = Intern(pred->right());
      if (l != pred->left() || r != pred->right()) {
        node = pred->kind() == Predicate::Kind::kAnd
                   ? Predicate::And(std::move(l), std::move(r))
                   : Predicate::Or(std::move(l), std::move(r));
      }
      break;
    }
    case Predicate::Kind::kNot: {
      PredicateRef l = Intern(pred->left());
      if (l != pred->left()) node = Predicate::Not(std::move(l));
      break;
    }
    default:
      break;
  }
  std::vector<PredicateRef>& bucket =
      buckets_[PredicateStructuralHash(*node)];
  for (const PredicateRef& existing : bucket) {
    if (PredicateStructuralEquals(*existing, *node)) return existing;
  }
  bucket.push_back(node);
  ++size_;
  return node;
}

uint32_t PredicateAlphabet::InternAttr(const std::string& attr) {
  auto it = attr_col_.find(attr);
  if (it != attr_col_.end()) return it->second;
  uint32_t col = static_cast<uint32_t>(attrs_.size());
  attrs_.push_back(attr);
  attr_col_.emplace(attr, col);
  return col;
}

uint32_t PredicateAlphabet::InternLeaf(const std::string& attr, CmpOp op,
                                       const Value& c) {
  std::string key = attr;
  key += '\x01';
  key += static_cast<char>('0' + static_cast<int>(op));
  key += '\x01';
  key += ValueTypeToString(c.type());
  key += '\x01';
  key += c.ToString();
  auto it = leaf_key_.find(key);
  if (it != leaf_key_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(leaves_.size());
  leaves_.push_back(Leaf{InternAttr(attr), op, c});
  leaf_key_.emplace(std::move(key), id);
  return id;
}

uint32_t PredicateAlphabet::Intern(const PredicateRef& pred) {
  PredicateRef canon = interner_.Intern(pred);
  auto it = slot_of_.find(canon.get());
  if (it != slot_of_.end()) return it->second;
  uint32_t slot = static_cast<uint32_t>(preds_.size());
  preds_.push_back(canon);
  slot_of_.emplace(canon.get(), slot);
  return slot;
}

void PredicateAlphabet::CompileProgram(const Predicate& p,
                                       std::vector<Instr>* prog) {
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      prog->push_back({Instr::kTrue, 0});
      return;
    case Predicate::Kind::kCompare:
      prog->push_back(
          {Instr::kLeaf, InternLeaf(p.attr(), p.op(), p.constant())});
      return;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      CompileProgram(*p.left(), prog);
      CompileProgram(*p.right(), prog);
      prog->push_back(
          {p.kind() == Predicate::Kind::kAnd ? Instr::kAnd : Instr::kOr, 0});
      return;
    case Predicate::Kind::kNot:
      CompileProgram(*p.left(), prog);
      prog->push_back({Instr::kNot, 0});
      return;
  }
}

void PredicateAlphabet::Seal() {
  if (sealed_) return;
  progs_.resize(preds_.size());
  for (size_t i = 0; i < preds_.size(); ++i) {
    CompileProgram(*preds_[i], &progs_[i]);
  }
  sealed_ = true;
  AQUA_OBS_COUNT("pattern.alphabet_preds", preds_.size());
}

void PredicateAlphabet::Gather(const StoreView& store, const Oid* oids,
                               size_t n, AlphabetScratch* s) const {
  s->cols.resize(attrs_.size());
  for (auto& col : s->cols) {
    col.tag.assign(n, AlphabetScratch::kNone);
    col.i64.resize(n);
    col.f64.resize(n);
    col.str.resize(n);
    col.b.resize(n);
    col.ref.resize(n);
  }
  const Schema* schema = store.valid() ? &store.schema() : nullptr;
  if (s->schema_key != schema) {
    s->attr_pos.clear();
    s->schema_key = schema;
  }
  s->attr_pos.resize(attrs_.size());

  for (size_t i = 0; i < n; ++i) {
    Result<const Object*> obj = store.Get(oids[i]);
    if (!obj.ok()) continue;
    TypeId type = (*obj)->type();
    for (size_t c = 0; c < attrs_.size(); ++c) {
      std::vector<int32_t>& pos = s->attr_pos[c];
      if (type >= pos.size()) pos.resize(type + 1, -2);
      int32_t idx = pos[type];
      if (idx == -2) {
        idx = -1;
        if (schema != nullptr) {
          Result<const TypeDef*> def = schema->GetType(type);
          if (def.ok()) {
            Result<size_t> at = (*def)->AttrIndex(attrs_[c]);
            if (at.ok()) idx = static_cast<int32_t>(*at);
          }
        }
        pos[type] = idx;
      }
      if (idx < 0) continue;
      const Value& v = (*obj)->attr_at(static_cast<size_t>(idx));
      AlphabetScratch::Column& col = s->cols[c];
      switch (v.type()) {
        case ValueType::kNull:
          break;  // Eval treats null exactly like absent: false.
        case ValueType::kInt:
          col.tag[i] = AlphabetScratch::kInt;
          col.i64[i] = v.int_value();
          break;
        case ValueType::kDouble:
          col.tag[i] = AlphabetScratch::kDouble;
          col.f64[i] = v.double_value();
          break;
        case ValueType::kString:
          col.tag[i] = AlphabetScratch::kString;
          col.str[i] = &v.string_value();
          break;
        case ValueType::kBool:
          col.tag[i] = AlphabetScratch::kBool;
          col.b[i] = v.bool_value() ? 1 : 0;
          break;
        case ValueType::kRef:
          col.tag[i] = AlphabetScratch::kRef;
          col.ref[i] = v.ref_value().value;
          break;
      }
    }
  }
}

// One leaf comparison over a gathered column, mirroring `Predicate::Eval`
// exactly: absent/null values are false; == / != go through
// `Value::Equals` (numeric coercion, int-int exact); ordered operators go
// through `Value::Compare` (incomparable families are false, and ties —
// including NaN "ties", where neither a<b nor a>b — satisfy <= and >=).
// The constant's type is hoisted out of the loop, so each case is a tight
// per-item pass over the struct-of-arrays scratch.
void PredicateAlphabet::EvalLeaf(const Leaf& leaf,
                                 const AlphabetScratch::Column& col,
                                 size_t n, uint8_t* out) const {
  const Value& c = leaf.constant;
  const uint8_t* tag = col.tag.data();
  const int64_t* i64 = col.i64.data();
  const double* f64 = col.f64.data();
  const std::string* const* str = col.str.data();
  const uint8_t* b = col.b.data();
  const uint64_t* ref = col.ref.data();
  const CmpOp op = leaf.op;

  // Equality verdict per item for the Eq/Ne paths.
  auto emit_eq = [&](auto eq) {
    if (op == CmpOp::kEq) {
      for (size_t i = 0; i < n; ++i) out[i] = eq(i);
    } else {
      for (size_t i = 0; i < n; ++i) {
        out[i] = static_cast<uint8_t>(tag[i] != AlphabetScratch::kNone &&
                                      !eq(i));
      }
    }
  };
  // Three-way verdict per item for the ordered paths: `cmp` yields
  // {-1,0,1}; `valid` gates incomparable items to false.
  auto emit_ord = [&](auto valid, auto cmp) {
    switch (op) {
      case CmpOp::kLt:
        for (size_t i = 0; i < n; ++i)
          out[i] = static_cast<uint8_t>(valid(i) && cmp(i) < 0);
        return;
      case CmpOp::kLe:
        for (size_t i = 0; i < n; ++i)
          out[i] = static_cast<uint8_t>(valid(i) && cmp(i) <= 0);
        return;
      case CmpOp::kGt:
        for (size_t i = 0; i < n; ++i)
          out[i] = static_cast<uint8_t>(valid(i) && cmp(i) > 0);
        return;
      case CmpOp::kGe:
        for (size_t i = 0; i < n; ++i)
          out[i] = static_cast<uint8_t>(valid(i) && cmp(i) >= 0);
        return;
      default:
        return;
    }
  };
  const bool ordered = op != CmpOp::kEq && op != CmpOp::kNe;

  switch (c.type()) {
    case ValueType::kInt: {
      const int64_t ci = c.int_value();
      const double cd = static_cast<double>(ci);
      if (!ordered) {
        emit_eq([&](size_t i) -> uint8_t {
          return tag[i] == AlphabetScratch::kInt    ? i64[i] == ci
                 : tag[i] == AlphabetScratch::kDouble ? f64[i] == cd
                                                      : 0;
        });
      } else {
        emit_ord(
            [&](size_t i) {
              return tag[i] == AlphabetScratch::kInt ||
                     tag[i] == AlphabetScratch::kDouble;
            },
            [&](size_t i) -> int {
              if (tag[i] == AlphabetScratch::kInt) {
                return i64[i] < ci ? -1 : (i64[i] > ci ? 1 : 0);
              }
              return f64[i] < cd ? -1 : (f64[i] > cd ? 1 : 0);
            });
      }
      return;
    }
    case ValueType::kDouble: {
      const double cd = c.double_value();
      auto widened = [&](size_t i) {
        return tag[i] == AlphabetScratch::kInt ? static_cast<double>(i64[i])
                                               : f64[i];
      };
      if (!ordered) {
        emit_eq([&](size_t i) -> uint8_t {
          return (tag[i] == AlphabetScratch::kInt ||
                  tag[i] == AlphabetScratch::kDouble) &&
                 widened(i) == cd;
        });
      } else {
        emit_ord(
            [&](size_t i) {
              return tag[i] == AlphabetScratch::kInt ||
                     tag[i] == AlphabetScratch::kDouble;
            },
            [&](size_t i) -> int {
              double a = widened(i);
              return a < cd ? -1 : (a > cd ? 1 : 0);
            });
      }
      return;
    }
    case ValueType::kString: {
      const std::string& cs = c.string_value();
      if (!ordered) {
        emit_eq([&](size_t i) -> uint8_t {
          return tag[i] == AlphabetScratch::kString && *str[i] == cs;
        });
      } else {
        emit_ord(
            [&](size_t i) { return tag[i] == AlphabetScratch::kString; },
            [&](size_t i) -> int {
              int r = str[i]->compare(cs);
              return r < 0 ? -1 : (r > 0 ? 1 : 0);
            });
      }
      return;
    }
    case ValueType::kBool: {
      const uint8_t cb = c.bool_value() ? 1 : 0;
      if (!ordered) {
        emit_eq([&](size_t i) -> uint8_t {
          return tag[i] == AlphabetScratch::kBool && b[i] == cb;
        });
      } else {
        emit_ord([&](size_t i) { return tag[i] == AlphabetScratch::kBool; },
                 [&](size_t i) -> int { return b[i] - cb; });
      }
      return;
    }
    case ValueType::kRef: {
      const uint64_t cr = c.ref_value().value;
      if (!ordered) {
        emit_eq([&](size_t i) -> uint8_t {
          return tag[i] == AlphabetScratch::kRef && ref[i] == cr;
        });
      } else {
        emit_ord([&](size_t i) { return tag[i] == AlphabetScratch::kRef; },
                 [&](size_t i) -> int {
                   return ref[i] < cr ? -1 : (ref[i] > cr ? 1 : 0);
                 });
      }
      return;
    }
    case ValueType::kNull: {
      // A present value never Equals null and always Compares above it.
      if (!ordered) {
        if (op == CmpOp::kEq) {
          std::memset(out, 0, n);
        } else {
          for (size_t i = 0; i < n; ++i) {
            out[i] =
                static_cast<uint8_t>(tag[i] != AlphabetScratch::kNone);
          }
        }
      } else {
        emit_ord([&](size_t i) { return tag[i] != AlphabetScratch::kNone; },
                 [&](size_t) -> int { return 1; });
      }
      return;
    }
  }
}

void PredicateAlphabet::EvalBatch(const StoreView& store, const Oid* oids,
                                  size_t n, AlphabetScratch* s) const {
  const size_t stride = sig_stride();
  s->sigs.assign(n * stride, 0);
  if (n == 0 || preds_.empty()) return;
  Gather(store, oids, n, s);

  s->leaf_sat.resize(leaves_.size());
  for (size_t l = 0; l < leaves_.size(); ++l) {
    s->leaf_sat[l].resize(n);
    EvalLeaf(leaves_[l], s->cols[leaves_[l].attr_col], n,
             s->leaf_sat[l].data());
  }

  for (size_t p = 0; p < progs_.size(); ++p) {
    const std::vector<Instr>& prog = progs_[p];
    const uint8_t* result = nullptr;
    if (prog.size() == 1 && prog[0].op == Instr::kLeaf) {
      result = s->leaf_sat[prog[0].arg].data();  // alias, no copy
    } else {
      size_t top = 0;  // stack height
      auto push = [&]() -> std::vector<uint8_t>& {
        if (s->stack.size() < ++top) s->stack.resize(top);
        s->stack[top - 1].resize(n);
        return s->stack[top - 1];
      };
      for (const Instr& ins : prog) {
        switch (ins.op) {
          case Instr::kLeaf: {
            std::vector<uint8_t>& dst = push();
            std::memcpy(dst.data(), s->leaf_sat[ins.arg].data(), n);
            break;
          }
          case Instr::kTrue: {
            std::vector<uint8_t>& dst = push();
            std::memset(dst.data(), 1, n);
            break;
          }
          case Instr::kAnd: {
            uint8_t* bb = s->stack[--top].data();
            uint8_t* aa = s->stack[top - 1].data();
            for (size_t i = 0; i < n; ++i) aa[i] &= bb[i];
            break;
          }
          case Instr::kOr: {
            uint8_t* bb = s->stack[--top].data();
            uint8_t* aa = s->stack[top - 1].data();
            for (size_t i = 0; i < n; ++i) aa[i] |= bb[i];
            break;
          }
          case Instr::kNot: {
            uint8_t* aa = s->stack[top - 1].data();
            for (size_t i = 0; i < n; ++i) aa[i] ^= 1;
            break;
          }
        }
      }
      result = s->stack[0].data();
    }
    const size_t word = p >> 6;
    const uint64_t bit = 1ULL << (p & 63);
    uint64_t* sigs = s->sigs.data() + word;
    for (size_t i = 0; i < n; ++i) {
      if (result[i]) sigs[i * stride] |= bit;
    }
  }
}

}  // namespace aqua
