#ifndef AQUA_PATTERN_NFA_H_
#define AQUA_PATTERN_NFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "object/object_store.h"
#include "bulk/list.h"
#include "pattern/list_pattern.h"

namespace aqua {

/// Thompson-constructed nondeterministic finite automaton for the *boolean*
/// list-matching problem ("is some sublist / the whole list in the
/// pattern's language?").
///
/// Prune markers do not change the recognized language (§3.4 separates
/// matching from result shaping), so `!` is transparent here. This is the
/// efficient O(elements × states) counterpart to the backtracking
/// `ListMatcher`, which is needed when match *shapes* (extents, prunes) are
/// required.
///
/// Thread model: a compiled Nfa is immutable — every matching entry point
/// is const — so one instance may be shared freely across threads (e.g.
/// one search NFA per query, probed by every fan-out worker).
class Nfa {
 public:
  /// Compiles a list pattern; fails on tree-pattern atoms.
  static Result<Nfa> Compile(const ListPatternRef& pattern);

  /// Compiles `?* pattern` so that simulation started once at position 0
  /// discovers matches beginning anywhere (the classic search loop).
  static Result<Nfa> CompileSearch(const ListPatternRef& pattern);

  /// True when the entire list is in the language.
  bool MatchesWhole(const StoreView& store, const List& list) const;

  /// True when any sublist is in the language. On a search-compiled NFA this
  /// is a single left-to-right pass; on a plain NFA it restarts at every
  /// position (still polynomial).
  bool ExistsMatch(const StoreView& store, const List& list) const;

  /// Number of matches counted by distinct end positions reached from a
  /// search-compiled NFA (a cheap match-density proxy used by benchmarks).
  size_t CountMatchEnds(const StoreView& store, const List& list) const;

  size_t num_states() const { return states_.size(); }
  size_t num_predicates() const { return preds_.size(); }
  uint32_t start() const { return start_; }
  uint32_t accept() const { return accept_; }
  bool search_mode() const { return search_mode_; }

  /// For each predicate, whether element `payload` satisfies it; used by the
  /// lazy DFA to form element signatures. The final two bits of the
  /// signature encode is-cell and the point-label id (see `dfa.h`).
  struct Transition {
    enum class Kind { kEpsilon, kPred, kAnyCell, kPoint };
    Kind kind;
    uint32_t target;
    uint32_t index;  // predicate index (kPred) or label index (kPoint)
  };

  const std::vector<std::vector<Transition>>& states() const {
    return states_;
  }
  const std::vector<PredicateRef>& preds() const { return preds_; }
  const std::vector<std::string>& point_labels() const {
    return point_labels_;
  }

  /// Epsilon-closure of `set` (bitset of states), in place.
  void EpsClosure(std::vector<bool>* set) const;

  /// Evaluates which predicates / labels an element satisfies.
  struct ElementFacts {
    bool is_cell = false;
    uint32_t label_index = kNoLabel;  // kNoLabel when not a point
    std::vector<bool> pred_sat;
    static constexpr uint32_t kNoLabel = static_cast<uint32_t>(-1);
  };
  ElementFacts Facts(const StoreView& store, const NodePayload& e) const;

  /// One simulation step over an element with known facts.
  std::vector<bool> Step(const std::vector<bool>& from,
                         const ElementFacts& facts) const;

 private:
  struct Frag {
    uint32_t start;
    uint32_t accept;
  };

  uint32_t NewState();
  void AddEdge(uint32_t from, Transition t);
  Result<Frag> Build(const ListPattern& p);
  uint32_t InternPred(const PredicateRef& pred);
  uint32_t InternLabel(const std::string& label);

  std::vector<std::vector<Transition>> states_;
  std::vector<PredicateRef> preds_;
  std::vector<std::string> point_labels_;
  uint32_t start_ = 0;
  uint32_t accept_ = 0;
  bool search_mode_ = false;
};

}  // namespace aqua

#endif  // AQUA_PATTERN_NFA_H_
