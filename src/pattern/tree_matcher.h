#ifndef AQUA_PATTERN_TREE_MATCHER_H_
#define AQUA_PATTERN_TREE_MATCHER_H_

#include <deque>
#include <functional>
#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "object/object_store.h"
#include "obs/query_context.h"
#include "bulk/tree.h"
#include "pattern/tree_pattern.h"

namespace aqua {

/// One cut produced while matching: the root (in the subject tree) of a
/// subtree that is excised from the match piece and replaced by a
/// concatenation point (§3.4, §4).
struct TreeCut {
  NodeId node = kInvalidNode;
  /// True when the cut came from a `!` prune; false when it is an
  /// unmatched-descendant cut (children of a leaf-matched node).
  bool from_prune = false;

  friend bool operator==(const TreeCut& a, const TreeCut& b) {
    return a.node == b.node && a.from_prune == b.from_prune;
  }
};

/// One match of a tree pattern: the matched subgraph plus its cuts.
///
/// `matched` lists the subject-tree nodes included in the match piece in
/// document (preorder) order; `cuts` lists cut subtree roots in the order
/// their concatenation points appear in the match piece — this is the
/// `α1..αn` numbering used by `split` (§4).
struct TreeMatch {
  NodeId root = kInvalidNode;
  std::vector<NodeId> matched;
  std::vector<TreeCut> cuts;

  friend bool operator==(const TreeMatch& a, const TreeMatch& b) {
    return a.root == b.root && a.matched == b.matched && a.cuts == b.cuts;
  }
};

/// Options bounding tree-match enumeration.
struct TreeMatchOptions {
  /// Memoize boolean subtree-match results (pattern × environment × node).
  /// This is the optimization that tames the exponential cases the paper's
  /// footnote 3 concedes; `bench_tree_kleene` ablates it.
  bool memoize = true;
  /// Stop after this many matches (0 = unlimited).
  size_t max_matches = 0;
  /// Keep only the first derivation per match root.
  bool first_derivation_per_root = false;
  /// Backtracking depth guard (defends against degenerate nested closures).
  size_t max_depth = 20000;
};

/// Matcher for tree patterns (§3.3–§3.4) over one subject tree.
///
/// Children sequences must describe a node's entire child list (pad with
/// `?*` as the paper's examples do). A node matched by a *leaf* pattern
/// keeps its node in the match while each of its child subtrees becomes a
/// descendant cut; `!`-pruned nodes contribute their whole subtree as a
/// pruned cut.
///
/// Thread model: a TreeMatcher mutates internal state (the memo cache,
/// step counters) while matching, so one instance must not be shared
/// between threads. It is cheap to construct; the algebra layer builds one
/// per (tree, call), which is what makes tree operators safe to fan out
/// across pool workers — concurrent matchers share only the const `Tree`
/// and each hold a `StoreView` pinning one immutable store epoch (passing
/// an `ObjectStore` snapshots it at construction).
class TreeMatcher {
 public:
  TreeMatcher(StoreView store, const Tree& tree, TreeMatchOptions opts = {});

  /// Enumerates matches rooted anywhere (respects `^` root anchors),
  /// deduplicated, ordered by root preorder position.
  Result<std::vector<TreeMatch>> FindAll(const TreePatternRef& tp);

  /// Enumerates matches rooted at the given candidate nodes only (the
  /// physical operator behind index-accelerated `split`/`sub_select`, §4
  /// "Why Split?").
  Result<std::vector<TreeMatch>> FindAllAtRoots(
      const TreePatternRef& tp, const std::vector<NodeId>& roots);

  /// True when `tp` matches rooted at node `v`.
  Result<bool> MatchesAt(const TreePatternRef& tp, NodeId v);

  /// True when `tp` matches rooted at some node.
  Result<bool> MatchesAnywhere(const TreePatternRef& tp);

  /// Pattern-position probes executed by the last call (work measure).
  size_t steps() const { return steps_; }

  /// Memo-table hits during the last call (how much of the footnote-3
  /// exponential work the cache absorbed).
  size_t memo_hits() const { return memo_hits_; }

 private:
  /// A binding of a concatenation-point label to the pattern substituted at
  /// it (plus the environment that pattern's own points resolve in).
  struct PointEnv {
    const std::string* label;
    const TreePattern* pattern;
    const PointEnv* pattern_env;
    const PointEnv* next;
    uint32_t id;
  };

  using Cont = std::function<void()>;
  using PosCont = std::function<void(size_t)>;

  const PointEnv* Bind(const std::string& label, const TreePattern* pattern,
                       const PointEnv* pattern_env, const PointEnv* outer);
  static const PointEnv* Lookup(const PointEnv* env, const std::string& label);

  /// Ways `tp` matches rooted at node `v`; calls `cont` per derivation.
  /// In boolean mode with memoization enabled this routes through
  /// `ExistsAt`, so repeated subtree questions collapse (the footnote-3
  /// optimization measured by `bench_tree_kleene`).
  void MatchAt(const TreePattern* tp, const PointEnv* env, NodeId v,
               bool leaf_strict, const Cont& cont);

  /// The raw derivation enumerator behind `MatchAt` (no memo interception).
  void MatchAtImpl(const TreePattern* tp, const PointEnv* env, NodeId v,
                   bool leaf_strict, const Cont& cont);

  /// Ways atom pattern `tp` matches at child position `pos` of `parent`'s
  /// child list (may consume zero children for points/closures).
  void MatchAtomPattern(const TreePattern* tp, const PointEnv* env,
                        NodeId parent, size_t pos, bool pruned,
                        bool leaf_strict, const PosCont& cont);

  /// Regex walk of a children-sequence pattern over `parent`'s children.
  void MatchChildren(const ListPattern* lp, const PointEnv* env, NodeId parent,
                     size_t pos, bool leaf_strict, const PosCont& cont);

  /// Boolean: does `tp` match rooted at `v`? Memoized when enabled.
  bool ExistsAt(const TreePattern* tp, const PointEnv* env, NodeId v,
                bool leaf_strict);

  void RecordLeafCuts(NodeId v, const Cont& cont);

  bool CheckDepth();

  /// Cooperative lifecycle probe, called once per `kCheckStride` steps:
  /// charges scratch-memory growth to the query, counts visited nodes, and
  /// turns a pending cancellation / expired deadline / blown memory budget
  /// into `error_`, unwinding the whole match. No-op outside a query.
  void LifecycleCheck();

  /// Estimated bytes of matcher scratch state (memo table, environment
  /// arena, derivation stacks) — what an unmemoized closure explosion
  /// actually grows.
  size_t ScratchBytes() const;

  StoreView store_;
  const Tree& tree_;
  TreeMatchOptions opts_;

  std::deque<PointEnv> env_arena_;
  uint32_t next_env_id_ = 1;

  struct EnvKey {
    const std::string* label;
    const TreePattern* pattern;
    uint32_t pattern_env_id;
    uint32_t outer_id;
    friend bool operator<(const EnvKey& a, const EnvKey& b) {
      return std::tie(a.label, a.pattern, a.pattern_env_id, a.outer_id) <
             std::tie(b.label, b.pattern, b.pattern_env_id, b.outer_id);
    }
  };
  std::map<EnvKey, const PointEnv*> env_intern_;

  // Derivation state (push/pop discipline).
  std::vector<NodeId> matched_stack_;
  std::vector<TreeCut> cut_stack_;
  size_t depth_ = 0;
  size_t steps_ = 0;
  size_t memo_hits_ = 0;
  /// Captured from `obs::QueryContext::Current()` per entry point; null
  /// outside a query (and always in AQUA_OBS_DISABLED builds).
  obs::QueryContext* query_ = nullptr;
  /// Scratch bytes already charged to `query_` (released on exit).
  size_t mem_charged_ = 0;
  bool bool_mode_found_ = false;
  bool in_bool_mode_ = false;
  bool touched_in_progress_ = false;
  Status error_;

  struct MemoKey {
    const TreePattern* tp;
    uint32_t env_id;
    NodeId node;
    bool leaf_strict;
    friend bool operator==(const MemoKey& a, const MemoKey& b) {
      return a.tp == b.tp && a.env_id == b.env_id && a.node == b.node &&
             a.leaf_strict == b.leaf_strict;
    }
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const {
      size_t h = std::hash<const void*>{}(k.tp);
      h = h * 1315423911u ^ k.env_id;
      h = h * 1315423911u ^ k.node;
      h = h * 1315423911u ^ (k.leaf_strict ? 1 : 0);
      return h;
    }
  };
  /// Memo values: 0 = no match, 1 = match, 2 = computation in progress
  /// (treated as "no" while open; see ExistsAt for why that is sound).
  std::unordered_map<MemoKey, int8_t, MemoKeyHash> memo_;
};

}  // namespace aqua

#endif  // AQUA_PATTERN_TREE_MATCHER_H_
