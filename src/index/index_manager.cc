#include "index/index_manager.h"

namespace aqua {

Status IndexManager::CreateTreeIndex(const std::string& collection,
                                     const StoreView& store,
                                     const Tree& tree,
                                     const std::string& attr) {
  auto key = std::make_pair(collection, attr);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index on " + collection + "." + attr +
                                 " already exists");
  }
  AQUA_ASSIGN_OR_RETURN(AttributeIndex index,
                        AttributeIndex::BuildForTree(store, tree, attr));
  indexes_.emplace(std::move(key),
                   std::make_unique<AttributeIndex>(std::move(index)));
  return Status::OK();
}

Status IndexManager::CreateListIndex(const std::string& collection,
                                     const StoreView& store,
                                     const List& list,
                                     const std::string& attr) {
  auto key = std::make_pair(collection, attr);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index on " + collection + "." + attr +
                                 " already exists");
  }
  AQUA_ASSIGN_OR_RETURN(AttributeIndex index,
                        AttributeIndex::BuildForList(store, list, attr));
  indexes_.emplace(std::move(key),
                   std::make_unique<AttributeIndex>(std::move(index)));
  return Status::OK();
}

bool IndexManager::Has(const std::string& collection,
                       const std::string& attr) const {
  return indexes_.count(std::make_pair(collection, attr)) > 0;
}

Result<const AttributeIndex*> IndexManager::Get(const std::string& collection,
                                                const std::string& attr) const {
  auto it = indexes_.find(std::make_pair(collection, attr));
  if (it == indexes_.end()) {
    return Status::NotFound("no index on " + collection + "." + attr);
  }
  return it->second.get();
}

std::vector<std::string> IndexManager::IndexedAttrs(
    const std::string& collection) const {
  std::vector<std::string> out;
  for (const auto& [key, index] : indexes_) {
    if (key.first == collection) out.push_back(key.second);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> IndexManager::AllIndexes()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(indexes_.size());
  for (const auto& [key, index] : indexes_) out.push_back(key);
  return out;
}

Status IndexManager::Drop(const std::string& collection,
                          const std::string& attr) {
  auto it = indexes_.find(std::make_pair(collection, attr));
  if (it == indexes_.end()) {
    return Status::NotFound("no index on " + collection + "." + attr);
  }
  indexes_.erase(it);
  return Status::OK();
}

}  // namespace aqua
