#ifndef AQUA_INDEX_ATTRIBUTE_INDEX_H_
#define AQUA_INDEX_ATTRIBUTE_INDEX_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "object/object_store.h"
#include "bulk/list.h"
#include "bulk/tree.h"
#include "pattern/predicate.h"

namespace aqua {

/// A value → node index over one attribute of the cells of a single list or
/// tree.
///
/// This is the access method §4's "Why Split?" relies on: locating all
/// nodes matching a cheap alphabet-predicate (the decomposition anchor)
/// without walking the whole collection. Entries are kept sorted by value
/// (total order), so both point and range probes are O(log n + answers).
class AttributeIndex {
 public:
  /// Indexes every cell node of `tree` on `attr`. Cells whose object lacks
  /// the attribute (heterogeneous trees) are skipped.
  static Result<AttributeIndex> BuildForTree(const StoreView& store,
                                             const Tree& tree,
                                             const std::string& attr);

  /// Indexes every cell element of `list` on `attr`.
  static Result<AttributeIndex> BuildForList(const StoreView& store,
                                             const List& list,
                                             const std::string& attr);

  const std::string& attr() const { return attr_; }
  /// Number of indexed entries.
  size_t size() const { return entries_.size(); }
  /// Number of nodes in the indexed collection (for selectivity).
  size_t collection_size() const { return collection_size_; }
  /// Number of distinct values.
  size_t num_distinct() const { return num_distinct_; }

  /// Nodes whose attribute equals `v`, in ascending NodeId order.
  std::vector<NodeId> Lookup(const Value& v) const;

  /// Nodes whose attribute lies in the given range (null bounds = open).
  std::vector<NodeId> LookupRange(const Value* lo, bool lo_inclusive,
                                  const Value* hi, bool hi_inclusive) const;

  /// True when `pred` is a single comparison on this attribute that the
  /// index can answer (==, <, <=, >, >=).
  bool CanProbe(const Predicate& pred) const;

  /// Answers an index-supported predicate; InvalidArgument otherwise.
  Result<std::vector<NodeId>> Probe(const Predicate& pred) const;

  /// Estimated fraction of collection nodes satisfying `pred` (exact for
  /// probe-able predicates; 1.0 otherwise).
  double Selectivity(const Predicate& pred) const;

 private:
  static Result<AttributeIndex> Build(
      const StoreView& store, const std::string& attr,
      const std::vector<std::pair<NodeId, Oid>>& cells, size_t total);

  std::string attr_;
  std::vector<std::pair<Value, NodeId>> entries_;  // sorted by (value, node)
  size_t collection_size_ = 0;
  size_t num_distinct_ = 0;
};

}  // namespace aqua

#endif  // AQUA_INDEX_ATTRIBUTE_INDEX_H_
