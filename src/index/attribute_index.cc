#include "index/attribute_index.h"

#include <algorithm>

#include "obs/metrics.h"

namespace aqua {

Result<AttributeIndex> AttributeIndex::Build(
    const StoreView& store, const std::string& attr,
    const std::vector<std::pair<NodeId, Oid>>& cells, size_t total) {
  AttributeIndex index;
  index.attr_ = attr;
  index.collection_size_ = total;
  index.entries_.reserve(cells.size());
  for (const auto& [node, oid] : cells) {
    auto value = store.GetAttr(oid, attr);
    if (!value.ok()) {
      if (value.status().IsNotFound()) continue;  // heterogeneous collection
      return value.status();
    }
    if (value->is_null()) continue;
    index.entries_.emplace_back(std::move(*value), node);
  }
  std::sort(index.entries_.begin(), index.entries_.end(),
            [](const auto& a, const auto& b) {
              if (a.first.TotalLess(b.first)) return true;
              if (b.first.TotalLess(a.first)) return false;
              return a.second < b.second;
            });
  size_t distinct = 0;
  for (size_t i = 0; i < index.entries_.size(); ++i) {
    if (i == 0 || !index.entries_[i].first.Equals(index.entries_[i - 1].first)) {
      ++distinct;
    }
  }
  index.num_distinct_ = distinct;
  return index;
}

Result<AttributeIndex> AttributeIndex::BuildForTree(const StoreView& store,
                                                    const Tree& tree,
                                                    const std::string& attr) {
  std::vector<std::pair<NodeId, Oid>> cells;
  for (NodeId v : tree.Preorder()) {
    const NodePayload& p = tree.payload(v);
    if (p.is_cell()) cells.emplace_back(v, p.oid());
  }
  return Build(store, attr, cells, tree.size());
}

Result<AttributeIndex> AttributeIndex::BuildForList(const StoreView& store,
                                                    const List& list,
                                                    const std::string& attr) {
  std::vector<std::pair<NodeId, Oid>> cells;
  for (size_t i = 0; i < list.size(); ++i) {
    const NodePayload& p = list.at(i);
    if (p.is_cell()) cells.emplace_back(static_cast<NodeId>(i), p.oid());
  }
  return Build(store, attr, cells, list.size());
}

namespace {
/// Comparator matching the index sort order, comparing entry values only.
bool EntryValueLess(const std::pair<Value, NodeId>& entry, const Value& v) {
  return entry.first.TotalLess(v);
}
bool ValueEntryLess(const Value& v, const std::pair<Value, NodeId>& entry) {
  return v.TotalLess(entry.first);
}
}  // namespace

std::vector<NodeId> AttributeIndex::Lookup(const Value& v) const {
  auto lo = std::lower_bound(entries_.begin(), entries_.end(), v,
                             EntryValueLess);
  auto hi = std::upper_bound(entries_.begin(), entries_.end(), v,
                             ValueEntryLess);
  std::vector<NodeId> out;
  out.reserve(hi - lo);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> AttributeIndex::LookupRange(const Value* lo,
                                                bool lo_inclusive,
                                                const Value* hi,
                                                bool hi_inclusive) const {
  auto begin = entries_.begin();
  auto end = entries_.end();
  if (lo != nullptr) {
    begin = lo_inclusive
                ? std::lower_bound(entries_.begin(), entries_.end(), *lo,
                                   EntryValueLess)
                : std::upper_bound(entries_.begin(), entries_.end(), *lo,
                                   ValueEntryLess);
  }
  if (hi != nullptr) {
    end = hi_inclusive
              ? std::upper_bound(entries_.begin(), entries_.end(), *hi,
                                 ValueEntryLess)
              : std::lower_bound(entries_.begin(), entries_.end(), *hi,
                                 EntryValueLess);
  }
  std::vector<NodeId> out;
  for (auto it = begin; it < end; ++it) out.push_back(it->second);
  std::sort(out.begin(), out.end());
  return out;
}

bool AttributeIndex::CanProbe(const Predicate& pred) const {
  if (pred.kind() != Predicate::Kind::kCompare) return false;
  if (pred.attr() != attr_) return false;
  switch (pred.op()) {
    case CmpOp::kEq:
    case CmpOp::kLt:
    case CmpOp::kLe:
    case CmpOp::kGt:
    case CmpOp::kGe:
      return true;
    case CmpOp::kNe:
      return false;
  }
  return false;
}

Result<std::vector<NodeId>> AttributeIndex::Probe(
    const Predicate& pred) const {
  if (!CanProbe(pred)) {
    return Status::InvalidArgument(
        "predicate is not answerable by this index: " + pred.ToString());
  }
  const Value& c = pred.constant();
  std::vector<NodeId> out;
  switch (pred.op()) {
    case CmpOp::kEq:
      out = Lookup(c);
      break;
    case CmpOp::kLt:
      out = LookupRange(nullptr, false, &c, false);
      break;
    case CmpOp::kLe:
      out = LookupRange(nullptr, false, &c, true);
      break;
    case CmpOp::kGt:
      out = LookupRange(&c, false, nullptr, false);
      break;
    case CmpOp::kGe:
      out = LookupRange(&c, true, nullptr, false);
      break;
    default:
      return Status::Internal("unreachable in AttributeIndex::Probe");
  }
  AQUA_OBS_COUNT("index.probes", 1);
  AQUA_OBS_COUNT("index.candidates", out.size());
  AQUA_OBS_RECORD("index.candidates_per_probe", out.size());
  return out;
}

double AttributeIndex::Selectivity(const Predicate& pred) const {
  if (collection_size_ == 0) return 0.0;
  if (!CanProbe(pred)) return 1.0;
  auto nodes = Probe(pred);
  if (!nodes.ok()) return 1.0;
  return static_cast<double>(nodes->size()) /
         static_cast<double>(collection_size_);
}

}  // namespace aqua
