#ifndef AQUA_INDEX_INDEX_MANAGER_H_
#define AQUA_INDEX_INDEX_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/attribute_index.h"

namespace aqua {

/// Registry of attribute indexes, keyed by (collection name, attribute).
///
/// The query optimizer consults this catalog when deciding whether the
/// split-anchor rewrite (§4 "Why Split?") is applicable.
class IndexManager {
 public:
  IndexManager() = default;
  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Builds and registers an index over a tree collection.
  Status CreateTreeIndex(const std::string& collection,
                         const StoreView& store, const Tree& tree,
                         const std::string& attr);

  /// Builds and registers an index over a list collection.
  Status CreateListIndex(const std::string& collection,
                         const StoreView& store, const List& list,
                         const std::string& attr);

  bool Has(const std::string& collection, const std::string& attr) const;

  Result<const AttributeIndex*> Get(const std::string& collection,
                                    const std::string& attr) const;

  /// Attributes indexed for `collection`.
  std::vector<std::string> IndexedAttrs(const std::string& collection) const;

  /// All (collection, attribute) pairs with an index, in catalog order.
  std::vector<std::pair<std::string, std::string>> AllIndexes() const;

  /// Drops one index; NotFound when absent.
  Status Drop(const std::string& collection, const std::string& attr);

  size_t num_indexes() const { return indexes_.size(); }

 private:
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<AttributeIndex>>
      indexes_;
};

}  // namespace aqua

#endif  // AQUA_INDEX_INDEX_MANAGER_H_
