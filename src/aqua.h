#ifndef AQUA_AQUA_H_
#define AQUA_AQUA_H_

/// \file
/// Umbrella header for the AQUA list/tree query algebra library — a
/// reproduction of Subramanian, Leung, Vandenberg & Zdonik, "The AQUA
/// Approach to Querying Lists and Trees in Object-Oriented Databases"
/// (ICDE 1995).
///
/// Layers (bottom-up):
///  * common/    — Status/Result error model, dynamic `Value`s
///  * obs/       — metrics registry + tracing (counters, spans, JSON)
///  * object/    — the object model: schema, objects with identity, store
///  * bulk/      — ordered bulk types: List, Tree, concatenation points
///  * pattern/   — alphabet-predicates, list & tree patterns, matchers
///  * algebra/   — the operators: select, apply, split, sub_select, ...
///  * index/     — attribute indexes (the §4 access method)
///  * query/     — plan IR, cost model, rewrite rules, executor
///  * workload/  — deterministic synthetic data generators

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

#include "obs/obs.h"

#include "object/object.h"
#include "object/object_store.h"
#include "object/schema.h"

#include "bulk/concat.h"
#include "bulk/datum.h"
#include "bulk/list.h"
#include "bulk/node.h"
#include "bulk/notation.h"
#include "bulk/tree.h"

#include "pattern/dfa.h"
#include "pattern/list_matcher.h"
#include "pattern/list_pattern.h"
#include "pattern/nfa.h"
#include "pattern/pattern_parser.h"
#include "pattern/predicate.h"
#include "pattern/predicate_parser.h"
#include "pattern/simplify.h"
#include "pattern/tree_matcher.h"
#include "pattern/tree_pattern.h"

#include "algebra/derived.h"
#include "algebra/fold.h"
#include "algebra/list_ops.h"
#include "algebra/set_ops.h"
#include "algebra/structural.h"
#include "algebra/tree_ops.h"

#include "approx/approx_ops.h"
#include "approx/tree_edit_distance.h"

#include "lint/absint.h"
#include "lint/diagnostic.h"
#include "lint/effects.h"
#include "lint/interval.h"
#include "lint/lint.h"
#include "lint/pattern_lint.h"

#include "odmg/array.h"

#include "storage/dump.h"

#include "index/attribute_index.h"
#include "index/index_manager.h"

#include "query/builder.h"
#include "query/cost.h"
#include "query/database.h"
#include "query/executor.h"
#include "query/plan.h"
#include "query/rewriter.h"
#include "query/rules.h"
#include "query/validate.h"

#include "workload/generators.h"

#endif  // AQUA_AQUA_H_
