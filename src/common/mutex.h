#ifndef AQUA_COMMON_MUTEX_H_
#define AQUA_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace aqua {

/// `std::mutex` wearing Clang capability attributes, so members declared
/// `AQUA_GUARDED_BY(mu_)` are statically checked under `-Wthread-safety`
/// (libstdc++'s std::mutex itself carries no annotations). Zero overhead:
/// every method is an inline forward.
///
/// Lock it with `aqua::MutexLock` (scoped) — bare `lock()`/`unlock()` are
/// available for the rare manual pairing but the scoped form is preferred.
class AQUA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AQUA_ACQUIRE() { mu_.lock(); }
  void unlock() AQUA_RELEASE() { mu_.unlock(); }
  bool try_lock() AQUA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over `aqua::Mutex` — the annotated replacement for
/// `std::lock_guard` (whose acquisition happens inside a template body the
/// analysis does not credit to the caller's scope).
class AQUA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AQUA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AQUA_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with `aqua::Mutex`. `Wait` atomically releases
/// and reacquires the mutex (via `std::condition_variable_any`); it is
/// annotated REQUIRES because the capability is held on entry and on
/// return — the transient release inside is invisible to the analysis,
/// which matches how abseil annotates `CondVar::Wait`. Guarded state read
/// in the wait predicate is therefore correctly considered protected.
/// There is deliberately no predicate overload: a predicate lambda is a
/// separate function to the analysis and its guarded reads would warn.
/// Callers write the standard `while (!cond) cv.Wait(mu);` loop, whose
/// condition reads sit in the annotated scope.
class CondVar {
 public:
  void Wait(Mutex& mu) AQUA_REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace aqua

#endif  // AQUA_COMMON_MUTEX_H_
