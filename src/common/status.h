#ifndef AQUA_COMMON_STATUS_H_
#define AQUA_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace aqua {

/// Error classification for `Status`.
///
/// The AQUA core API reports failures through `Status` / `Result<T>`
/// (Arrow/RocksDB style) instead of exceptions, so that every fallible call
/// site is visible in the code.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kTypeError,
  kParseError,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  /// The query was cancelled cooperatively (task-registry kill, memory
  /// limit, or an explicit `QueryContext::Cancel`).
  kCancelled,
  /// The query ran past its deadline (`AQUA_QUERY_TIMEOUT_MS` or an
  /// explicit per-executor timeout).
  kDeadlineExceeded,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
///
/// `Status` is cheap to pass around: the OK state is a null pointer, so the
/// happy path allocates nothing.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK `Status` from the enclosing function.
#define AQUA_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::aqua::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define AQUA_CONCAT_IMPL(x, y) x##y
#define AQUA_CONCAT(x, y) AQUA_CONCAT_IMPL(x, y)

/// Evaluates a `Result<T>` expression; on success binds the value to `lhs`,
/// otherwise returns the error from the enclosing function.
#define AQUA_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  AQUA_ASSIGN_OR_RETURN_IMPL(AQUA_CONCAT(_aqua_res_, __LINE__), lhs, rexpr)

#define AQUA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)                \
  auto tmp = (rexpr);                                              \
  if (!tmp.ok()) return tmp.status();                              \
  lhs = std::move(tmp).ValueUnsafe()

}  // namespace aqua

#endif  // AQUA_COMMON_STATUS_H_
