#ifndef AQUA_COMMON_RESULT_H_
#define AQUA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace aqua {

/// A value-or-error holder, modelled after `arrow::Result<T>`.
///
/// A `Result<T>` is in exactly one of two states: it holds a `T` (and the
/// status is OK), or it holds a non-OK `Status`. Use `AQUA_ASSIGN_OR_RETURN`
/// to unwrap in fallible code.
template <typename T>
class Result {
 public:
  /// Constructs from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (failure). Constructing from an OK
  /// status is a programming error and is converted to an Internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; must only be called when `ok()`.
  const T& ValueUnsafe() const& {
    assert(ok());
    return *value_;
  }
  T& ValueUnsafe() & {
    assert(ok());
    return *value_;
  }
  T ValueUnsafe() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

  /// Returns the value, or `fallback` when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace aqua

#endif  // AQUA_COMMON_RESULT_H_
