#ifndef AQUA_COMMON_VALUE_H_
#define AQUA_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"

namespace aqua {

/// Runtime type tag of a `Value`.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kRef,  ///< reference to another object (an Oid)
};

const char* ValueTypeToString(ValueType type);

/// A dynamically typed attribute value.
///
/// AQUA objects carry stored attributes (§3.1 restricts alphabet-predicates
/// to stored attributes, constants and comparisons); `Value` is the runtime
/// representation of one attribute or constant.
class Value {
 public:
  /// Constructs the null value.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(std::in_place_index<1>, v)); }
  static Value Int(int64_t v) { return Value(Rep(std::in_place_index<2>, v)); }
  static Value Double(double v) {
    return Value(Rep(std::in_place_index<3>, v));
  }
  static Value String(std::string v) {
    return Value(Rep(std::in_place_index<4>, std::move(v)));
  }
  static Value Ref(Oid oid) { return Value(Rep(std::in_place_index<5>, oid)); }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_ref() const { return type() == ValueType::kRef; }
  /// True for int or double.
  bool is_numeric() const { return is_int() || is_double(); }

  bool bool_value() const { return std::get<1>(rep_); }
  int64_t int_value() const { return std::get<2>(rep_); }
  double double_value() const { return std::get<3>(rep_); }
  const std::string& string_value() const { return std::get<4>(rep_); }
  Oid ref_value() const { return std::get<5>(rep_); }

  /// Numeric value widened to double; valid only when `is_numeric()`.
  double as_double() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }

  /// Deep (value) equality with int/double numeric coercion.
  /// Nulls compare equal to nulls only.
  bool Equals(const Value& other) const;

  /// Three-way comparison for ordering within one comparable family
  /// (numeric with coercion, string, bool, ref by oid; null sorts first).
  /// Returns TypeError when the two values are not comparable.
  Result<int> Compare(const Value& other) const;

  /// A total order usable for canonicalization: orders first by type tag,
  /// then by value. Unlike `Compare` this never fails.
  bool TotalLess(const Value& other) const;

  size_t Hash() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
  friend bool operator!=(const Value& a, const Value& b) {
    return !a.Equals(b);
  }

 private:
  using Rep =
      std::variant<std::monostate, bool, int64_t, double, std::string, Oid>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace aqua

namespace std {
template <>
struct hash<aqua::Value> {
  size_t operator()(const aqua::Value& v) const noexcept { return v.Hash(); }
};
}  // namespace std

#endif  // AQUA_COMMON_VALUE_H_
