#ifndef AQUA_COMMON_IDS_H_
#define AQUA_COMMON_IDS_H_

#include <cstdint>
#include <functional>

namespace aqua {

/// Object identity. Every entity in the AQUA model is an object with
/// identity (§2 of the paper); `Oid` is that identity.
///
/// `Oid` is a strong integer type so that object identities cannot be
/// silently mixed with node indices or attribute offsets.
struct Oid {
  uint64_t value = 0;

  constexpr Oid() = default;
  constexpr explicit Oid(uint64_t v) : value(v) {}

  /// The null object identity; no stored object ever has it.
  static constexpr Oid Null() { return Oid(0); }

  constexpr bool IsNull() const { return value == 0; }

  friend constexpr bool operator==(Oid a, Oid b) { return a.value == b.value; }
  friend constexpr bool operator!=(Oid a, Oid b) { return a.value != b.value; }
  friend constexpr bool operator<(Oid a, Oid b) { return a.value < b.value; }
};

/// Index of a node within a `Tree` arena or a `List`.
using NodeId = uint32_t;

/// Sentinel meaning "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

}  // namespace aqua

namespace std {
template <>
struct hash<aqua::Oid> {
  size_t operator()(aqua::Oid oid) const noexcept {
    return std::hash<uint64_t>{}(oid.value);
  }
};
}  // namespace std

#endif  // AQUA_COMMON_IDS_H_
