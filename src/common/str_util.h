#ifndef AQUA_COMMON_STR_UTIL_H_
#define AQUA_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace aqua {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True when `c` may start an identifier ([A-Za-z_]).
bool IsIdentStart(char c);
/// True when `c` may continue an identifier ([A-Za-z0-9_]).
bool IsIdentChar(char c);

}  // namespace aqua

#endif  // AQUA_COMMON_STR_UTIL_H_
