#ifndef AQUA_COMMON_THREAD_ANNOTATIONS_H_
#define AQUA_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes (-Wthread-safety), in the style
// of abseil's thread_annotations.h. Under any other compiler every macro
// expands to nothing, so annotated code builds identically under GCC.
//
// The analysis is static and intraprocedural: it only understands lock
// acquisitions it can see as attributed calls in the current function.
// libstdc++'s std::mutex carries no capability attributes, so annotated
// classes hold an `aqua::Mutex` (common/mutex.h) instead and take scoped
// locks via `aqua::MutexLock`. CI compiles the tree with clang and
// `-Werror=thread-safety` to keep the annotations honest.

#if defined(__clang__) && (!defined(SWIG))
#define AQUA_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define AQUA_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Data member readable/writable only while the given capability is held.
#define AQUA_GUARDED_BY(x) AQUA_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define AQUA_PT_GUARDED_BY(x) \
  AQUA_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Function that may only be called while holding the capability.
#define AQUA_REQUIRES(...) \
  AQUA_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function that may only be called while NOT holding the capability
/// (it acquires it itself — the non-reentrancy contract).
#define AQUA_EXCLUDES(...) \
  AQUA_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define AQUA_ACQUIRE(...) \
  AQUA_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define AQUA_RELEASE(...) \
  AQUA_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `ret`.
#define AQUA_TRY_ACQUIRE(ret, ...) \
  AQUA_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(ret, __VA_ARGS__))

/// Class that models a lockable resource (a capability).
#define AQUA_CAPABILITY(x) AQUA_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// RAII class whose lifetime equals a critical section.
#define AQUA_SCOPED_CAPABILITY \
  AQUA_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Function return value is a reference to the given capability.
#define AQUA_RETURN_CAPABILITY(x) \
  AQUA_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Use only for code the
/// analysis cannot model (e.g. conditional locking), with a comment.
#define AQUA_NO_THREAD_SAFETY_ANALYSIS \
  AQUA_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // AQUA_COMMON_THREAD_ANNOTATIONS_H_
