#include "common/status.h"

namespace aqua {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace aqua
