#include "common/value.h"

#include <functional>
#include <sstream>

namespace aqua {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kRef:
      return "ref";
  }
  return "unknown";
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return int_value() == other.int_value();
    return as_double() == other.as_double();
  }
  return rep_ == other.rep_;
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = int_value(), b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = as_double(), b = other.as_double();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type()) {
    return Status::TypeError("cannot compare " +
                             std::string(ValueTypeToString(type())) + " with " +
                             ValueTypeToString(other.type()));
  }
  switch (type()) {
    case ValueType::kBool: {
      int a = bool_value() ? 1 : 0, b = other.bool_value() ? 1 : 0;
      return a - b;
    }
    case ValueType::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kRef: {
      uint64_t a = ref_value().value, b = other.ref_value().value;
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default:
      return Status::Internal("unreachable in Value::Compare");
  }
}

bool Value::TotalLess(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    double a = as_double(), b = other.as_double();
    if (a != b) return a < b;
    // Stabilize int-vs-double ties by type tag.
    return type() < other.type();
  }
  if (type() != other.type()) return type() < other.type();
  auto cmp = Compare(other);
  return cmp.ok() && *cmp < 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return std::hash<bool>{}(bool_value());
    case ValueType::kInt:
      // Hash ints via double so numerically equal int/double values that
      // compare Equals() also hash equal.
      return std::hash<double>{}(static_cast<double>(int_value()));
    case ValueType::kDouble:
      return std::hash<double>{}(double_value());
    case ValueType::kString:
      return std::hash<std::string>{}(string_value());
    case ValueType::kRef:
      return std::hash<Oid>{}(ref_value()) ^ 0x517cc1b727220a95ULL;
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case ValueType::kNull:
      os << "null";
      break;
    case ValueType::kBool:
      os << (bool_value() ? "true" : "false");
      break;
    case ValueType::kInt:
      os << int_value();
      break;
    case ValueType::kDouble:
      os << double_value();
      break;
    case ValueType::kString:
      os << '"' << string_value() << '"';
      break;
    case ValueType::kRef:
      os << "@oid:" << ref_value().value;
      break;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace aqua
