#include "query/executor.h"

#include <cstdio>

#include <algorithm>

#include "lint/lint.h"
#include "obs/digest.h"
#include "obs/query_context.h"
#include "obs/recorder.h"
#include "obs/stats.h"
#include "obs/tasks.h"
#include "query/cost.h"

namespace aqua {

Status Executor::LintGate(const PlanRef& plan) {
  // At AQUA_LINT=error the lint pass is a gate: a plan carrying any
  // error-severity finding (kind-flow contradictions, parameter
  // mismatches, unsafe shapes) is refused before compilation.
  if (lint::EnforcementLevel() != lint::Level::kError) return Status::OK();
  std::vector<lint::Diagnostic> diags = lint::LintPlan(*db_, plan);
  if (!lint::HasErrors(diags)) return Status::OK();
  AQUA_OBS_COUNT("exec.lint_refusals", 1);
  std::string msg = "lint refuses to execute the plan (AQUA_LINT=error):";
  for (const lint::Diagnostic& d : diags) {
    if (d.severity != lint::Severity::kError) continue;
    msg += "\n  " + lint::FormatDiagnostic(d);
  }
  return Status::InvalidArgument(std::move(msg));
}

Result<Datum> Executor::Execute(const PlanRef& plan) {
  stats_ = ExecStats{};
  op_stats_.clear();
  trace_.Clear();
  obs::Snapshot before = obs::Registry::Global().Snap();
  AQUA_OBS_COUNT("exec.executes", 1);

  AQUA_RETURN_IF_ERROR(LintGate(plan));

  // Lifecycle context for this call: limits armed from the executor
  // overrides or the env defaults, descriptor filled before registration
  // so the task table shows what is running from the first snapshot.
  obs::QueryContext qctx;
  qctx.set_threads(static_cast<uint32_t>(threads()));
  uint64_t timeout_ns = timeout_ms_ != 0 ? timeout_ms_ * 1000000ull
                                         : obs::DefaultQueryTimeoutNs();
  if (timeout_ns != 0) qctx.set_deadline_after_ns(timeout_ns);
  uint64_t mem_limit = mem_limit_bytes_ != 0
                           ? mem_limit_bytes_
                           : obs::DefaultQueryMemLimitBytes();
  if (mem_limit != 0) qctx.set_mem_limit_bytes(mem_limit);

#ifndef AQUA_OBS_DISABLED
  std::string normalized;
  uint64_t fingerprint = 0;
  if (obs::Registry::enabled()) {
    normalized = obs::NormalizePlan(plan);
    fingerprint = obs::Fnv1a(normalized);
    qctx.set_fingerprint(fingerprint);
    qctx.set_plan_text(normalized);
  }
#endif

  // Compile fresh per call: the physical ops carry this call's per-op
  // measurement atomics, so stats are per-Execute by construction.
  exec::PhysicalOpRef root = exec::Compile(plan);
  exec::ExecContext ctx;
  ctx.db = db_;
  ctx.pool = &exec::ThreadPool::Shared();
  ctx.threads = threads();
  ctx.trace = &trace_;
  ctx.query = &qctx;
  // Pin the read snapshot for the whole Execute: every read path below
  // traverses this version lock-free; mutating operators re-snapshot as
  // they commit. The pinned epoch is part of the task descriptor.
  ctx.view = db_->store();
  uint64_t epoch_before = ctx.view.epoch();
  qctx.set_pinned_epoch(epoch_before);

  obs::Span wall(nullptr, "");  // pure scoped timer for the whole Execute
  Result<Datum> result = [&]() -> Result<Datum> {
    // Installed thread-locally for the matcher checkpoints and registered
    // in the live task table for exactly the duration of the run; the
    // query thread's CPU (its morsel share included) is measured here
    // once, helpers account for their own in the morsel scheduler.
    obs::QueryContext::Scope scope(&qctx);
    obs::TaskRegistry::Guard task(&qctx);
    uint64_t cpu0 = obs::QueryContext::ThreadCpuNs();
    obs::Span root_span(&trace_, "Execute");
    Result<Datum> r = [&]() -> Result<Datum> {
      AQUA_RETURN_IF_ERROR(root->Prepare(ctx));
      return root->Run(ctx);
    }();
    qctx.AddCpuNs(obs::QueryContext::ThreadCpuNs() - cpu0);
    // A cancelled fan-out can surface any status its morsels produced;
    // report the cancellation itself, which is what the caller asked for.
    if (!r.ok() && qctx.cancel_requested()) return qctx.CancelStatus();
    return r;
  }();
  uint64_t wall_ns = wall.ElapsedNs();

  stats_.operators_evaluated =
      ctx.operators_evaluated.load(std::memory_order_relaxed);
  stats_.trees_processed = ctx.trees_processed.load(std::memory_order_relaxed);
  stats_.lists_processed = ctx.lists_processed.load(std::memory_order_relaxed);
  stats_.index_probes = ctx.index_probes.load(std::memory_order_relaxed);
  stats_.index_candidates =
      ctx.index_candidates.load(std::memory_order_relaxed);
  stats_.query_id = qctx.id();
  stats_.cpu_ns = qctx.cpu_ns();
  stats_.mem_peak_bytes = qctx.mem_peak_bytes();
  CollectOpStats(root);

  // Mirror this execution's ExecStats into the registry before the after
  // snapshot so `last_counters_` carries them alongside the layer counters.
  AQUA_OBS_COUNT("exec.operators_evaluated", stats_.operators_evaluated);
  AQUA_OBS_COUNT("exec.trees_processed", stats_.trees_processed);
  AQUA_OBS_COUNT("exec.lists_processed", stats_.lists_processed);
  AQUA_OBS_RECORD("exec.execute_ns", wall_ns);
  // Store-version levels after this Execute (OpenMetrics `\metrics`,
  // `\snapshot`): the epoch, how many versions and pins are alive, and the
  // COW bytes kept only for snapshots.
  const ObjectStore& store = db_->store();
  bool store_commit = store.epoch() != epoch_before;
  (void)store_commit;  // digest input; unused when obs is compiled out
  AQUA_OBS_GAUGE_SET("store.epoch", store.epoch());
  AQUA_OBS_GAUGE_SET("store.versions_live", store.versions_live());
  AQUA_OBS_GAUGE_SET("store.cow_copies", store.cow_copies());
  AQUA_OBS_GAUGE_SET("store.snapshot_pins", store.snapshot_pins());
  AQUA_OBS_GAUGE_SET("store.retained_bytes", store.retained_bytes());
  last_counters_ = obs::Registry::Global().Snap().DeltaSince(before);

#ifndef AQUA_OBS_DISABLED
  if (obs::Registry::enabled()) {
    // Digest table: accumulate under the normalized-plan fingerprint
    // (computed before the run for the task table).
    obs::DigestTable::Global().Record(fingerprint, normalized, wall_ns,
                                      qctx.mem_peak_bytes(),
                                      result.status().code(), store_commit);

    // Stats warehouse: fold this run's per-op observations (cardinalities,
    // candidates-per-probe, wall/CPU) into the learned records the cost
    // model reads back. Keyed by the same fingerprint as the digest row.
    std::vector<obs::OpSample> samples;
    exec::CollectOpSamples(root, &samples);
    obs::StatsWarehouse::Global().Harvest(fingerprint, samples);

    // Flight recorder: one structured event per Execute, with the
    // counter-delta highlights and the parallel-path shape.
    obs::FlightEvent ev;
    ev.kind = static_cast<uint32_t>(obs::FlightEventKind::kExecute);
    ev.ok = result.ok() ? 1 : 0;
    ev.fingerprint = fingerprint;
    ev.wall_ns = wall_ns;
    ev.threads = static_cast<uint32_t>(ctx.threads);
    ev.morsels = static_cast<uint32_t>(
        ctx.morsels_run.load(std::memory_order_relaxed));
    ev.max_morsel_ns = ctx.morsel_max_ns.load(std::memory_order_relaxed);
    ev.tree_steps = last_counters_.CounterValue("pattern.tree_steps");
    ev.list_steps = last_counters_.CounterValue("pattern.list_steps");
    ev.index_probes = last_counters_.CounterValue("index.probes");
    ev.nodes_visited =
        last_counters_.CounterValue("algebra.structural_nodes_visited");
    ev.query_id = qctx.id();
    ev.cpu_ns = qctx.cpu_ns();
    ev.mem_peak = qctx.mem_peak_bytes();
    ev.code = static_cast<uint32_t>(result.status().code());
    ev.pinned_epoch = static_cast<uint32_t>(qctx.pinned_epoch());
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    recorder.Record(ev);

    // Slow-query log: full context (plan text, span tree when tracing was
    // on, counter delta) for any Execute at or above the threshold.
    uint64_t threshold = recorder.slow_query_threshold_ns();
    if (threshold > 0 && wall_ns >= threshold) {
      recorder.AppendSlowQuery(wall_ns, fingerprint, Explain(plan),
                               trace_.ToTextReport(), last_counters_);
    }
  }
#endif
  return result;
}

std::vector<Result<Datum>> Executor::ExecuteBatch(
    const std::vector<PlanRef>& plans) {
  std::vector<Result<Datum>> results(
      plans.size(), Result<Datum>(Status::Internal("not executed")));

  // Group batchable plans by their shared input. The digest fingerprint of
  // the child is the fast pre-key (constants are elided by normalization,
  // so two different scans can collide); `PlanEquals` is the structural
  // verification, constants included.
  struct Group {
    PlanOp op;
    uint64_t child_fp;
    std::vector<size_t> indices;
  };
  std::vector<Group> groups;
  std::vector<size_t> singles;
  for (size_t i = 0; i < plans.size(); ++i) {
    const PlanRef& p = plans[i];
    const bool batchable =
        p != nullptr &&
        (p->op == PlanOp::kListSubSelect || p->op == PlanOp::kTreeSubSelect) &&
        p->children.size() == 1 && p->children[0] != nullptr;
    if (!batchable) {
      singles.push_back(i);
      continue;
    }
    uint64_t fp = obs::FingerprintPlan(p->children[0]);
    bool placed = false;
    for (Group& g : groups) {
      if (g.op != p->op || g.child_fp != fp) continue;
      if (g.indices.size() >= 64) continue;  // chunk oversized groups
      if (!PlanEquals(p->children[0], plans[g.indices[0]]->children[0])) {
        continue;
      }
      g.indices.push_back(i);
      placed = true;
      break;
    }
    if (!placed) groups.push_back(Group{p->op, fp, {i}});
  }

  for (const Group& g : groups) {
    if (g.indices.size() < 2) {
      singles.push_back(g.indices[0]);
      continue;
    }
    ExecuteGroup(plans, g.indices, &results);
  }
  for (size_t i : singles) results[i] = Execute(plans[i]);
  return results;
}

void Executor::ExecuteGroup(const std::vector<PlanRef>& plans,
                            const std::vector<size_t>& indices,
                            std::vector<Result<Datum>>* out) {
  // Lint-gate each member individually: a refused plan gets its refusal as
  // its result and leaves the group; the rest still batch when >= 2 remain.
  std::vector<PlanRef> group;
  std::vector<size_t> members;
  for (size_t i : indices) {
    Status gate = LintGate(plans[i]);
    if (!gate.ok()) {
      (*out)[i] = gate;
      continue;
    }
    group.push_back(plans[i]);
    members.push_back(i);
  }
  if (group.size() < 2) {
    for (size_t i : members) (*out)[i] = Execute(plans[i]);
    return;
  }

  std::shared_ptr<exec::BatchedPatternOp> root = exec::CompileBatch(group);
  if (root == nullptr) {
    for (size_t i : members) (*out)[i] = Execute(plans[i]);
    return;
  }
  // One execute per member plan, answered by one scan.
  AQUA_OBS_COUNT("exec.executes", group.size());

  obs::QueryContext qctx;
  qctx.set_threads(static_cast<uint32_t>(threads()));
  uint64_t timeout_ns = timeout_ms_ != 0 ? timeout_ms_ * 1000000ull
                                         : obs::DefaultQueryTimeoutNs();
  if (timeout_ns != 0) qctx.set_deadline_after_ns(timeout_ns);
  uint64_t mem_limit = mem_limit_bytes_ != 0
                           ? mem_limit_bytes_
                           : obs::DefaultQueryMemLimitBytes();
  if (mem_limit != 0) qctx.set_mem_limit_bytes(mem_limit);

#ifndef AQUA_OBS_DISABLED
  std::vector<std::string> normalized(group.size());
  std::vector<uint64_t> fingerprints(group.size(), 0);
  if (obs::Registry::enabled()) {
    for (size_t j = 0; j < group.size(); ++j) {
      normalized[j] = obs::NormalizePlan(group[j]);
      fingerprints[j] = obs::Fnv1a(normalized[j]);
    }
    // The task table shows the group under its first member's shape.
    qctx.set_fingerprint(fingerprints[0]);
    qctx.set_plan_text(normalized[0]);
  }
#endif

  exec::ExecContext ctx;
  ctx.db = db_;
  ctx.pool = &exec::ThreadPool::Shared();
  ctx.threads = threads();
  ctx.trace = nullptr;  // per-plan tracing is the Execute fallback's job
  ctx.query = &qctx;
  ctx.view = db_->store();
  qctx.set_pinned_epoch(ctx.view.epoch());

  obs::Span wall(nullptr, "");
  Result<Datum> run = [&]() -> Result<Datum> {
    obs::QueryContext::Scope scope(&qctx);
    obs::TaskRegistry::Guard task(&qctx);
    uint64_t cpu0 = obs::QueryContext::ThreadCpuNs();
    Result<Datum> r = [&]() -> Result<Datum> {
      AQUA_RETURN_IF_ERROR(root->Prepare(ctx));
      return root->Run(ctx);
    }();
    qctx.AddCpuNs(obs::QueryContext::ThreadCpuNs() - cpu0);
    if (!r.ok() && qctx.cancel_requested()) return qctx.CancelStatus();
    return r;
  }();
  uint64_t wall_ns = wall.ElapsedNs();
  (void)wall_ns;  // digest input; unused when obs is compiled out

  // Batch-fatal outcomes (shared-input failure, item type error,
  // cancellation, deadline) apply to every member — a standalone Execute
  // of each would have failed the same way. Otherwise each member takes
  // its own per-plan result.
  for (size_t j = 0; j < group.size(); ++j) {
    (*out)[members[j]] =
        run.ok() ? root->plan_results()[j] : Result<Datum>(run.status());
  }

#ifndef AQUA_OBS_DISABLED
  if (obs::Registry::enabled()) {
    // Each member records its own digest row (the `\hot` feed that
    // identifies co-compilable shapes), with the batch wall time
    // attributed evenly across the group.
    for (size_t j = 0; j < group.size(); ++j) {
      StatusCode code = run.ok() ? root->plan_results()[j].status().code()
                                 : run.status().code();
      obs::DigestTable::Global().Record(fingerprints[j], normalized[j],
                                        wall_ns / group.size(),
                                        qctx.mem_peak_bytes(), code,
                                        /*store_commit=*/false);
    }
  }
#endif
}

void Executor::CollectOpStats(const exec::PhysicalOpRef& op) {
  if (op == nullptr || op->plan() == nullptr) return;
  if (op->invocations() > 0) {
    // A plan node shared between two parents compiles to two physical ops;
    // summing reproduces the interpreter's per-node accumulation.
    OperatorStats& os = op_stats_[op->plan()];
    os.invocations += op->invocations();
    os.total_ms += op->total_ms();
    os.last_output_size = op->last_output_size();
    os.cpu_ms += op->cpu_ms();
    os.out_bytes += op->out_bytes();
    os.in_rows = op->in_rows();
    os.probes += op->probes();
    os.candidates += op->candidates();
  }
  for (const exec::PhysicalOpRef& child : op->children()) {
    CollectOpStats(child);
  }
}

namespace {

/// One estimated-rows figure per plan node, from the stats-informed cost
/// model. Nodes the model cannot estimate (e.g. set ops outside its
/// heuristics, or a missing collection) simply carry no estimate.
void CollectEstimates(const CostModel& model, const PlanRef& node,
                      std::map<const PlanNode*, double>* ests) {
  if (node == nullptr) return;
  Result<CostEstimate> est = model.Estimate(node);
  if (est.ok()) (*ests)[node.get()] = est->out_nodes;
  for (const PlanRef& child : node->children) {
    CollectEstimates(model, child, ests);
  }
}

void RenderAnalyzed(const PlanRef& node,
                    const std::map<const PlanNode*, OperatorStats>& stats,
                    const std::map<const PlanNode*, double>& ests,
                    size_t indent, std::string* out) {
  out->append(indent * 2, ' ');
  if (node == nullptr) {
    *out += "(null)\n";
    return;
  }
  *out += DescribeNode(*node);
  auto it = stats.find(node.get());
  if (it != stats.end()) {
    char buf[144];
    std::snprintf(buf, sizeof(buf),
                  "  (%zu call%s, %.3f ms, out=%zu, cpu=%.3f ms, bytes~%zu",
                  it->second.invocations,
                  it->second.invocations == 1 ? "" : "s",
                  it->second.total_ms, it->second.last_output_size,
                  it->second.cpu_ms, it->second.out_bytes);
    *out += buf;
    auto est_it = ests.find(node.get());
    if (est_it != ests.end()) {
      // Q-error: the symmetric misestimation factor, +1-smoothed so empty
      // outputs compare cleanly. 1.00 = perfect.
      double est = est_it->second;
      double act = static_cast<double>(it->second.last_output_size);
      double q = std::max((est + 1.0) / (act + 1.0), (act + 1.0) / (est + 1.0));
      std::snprintf(buf, sizeof(buf), ", est=%.0f, act=%.0f, q=%.2f", est,
                    act, q);
      *out += buf;
    }
    *out += ")";
  } else {
    *out += "  (not executed)";
  }
  *out += "\n";
  for (const PlanRef& child : node->children) {
    RenderAnalyzed(child, stats, ests, indent + 1, out);
  }
}

}  // namespace

std::string Executor::ExplainAnalyze(const PlanRef& plan) const {
  std::map<const PlanNode*, double> ests;
  CostModel model(db_, &obs::StatsWarehouse::Global());
  CollectEstimates(model, plan, &ests);
  std::string out;
  RenderAnalyzed(plan, op_stats_, ests, 0, &out);
  return out;
}

}  // namespace aqua
