#include "query/executor.h"

#include <cstdio>

namespace aqua {

Result<Datum> Executor::Execute(const PlanRef& plan) {
  stats_ = ExecStats{};
  op_stats_.clear();
  trace_.Clear();
  obs::Snapshot before = obs::Registry::Global().Snap();
  AQUA_OBS_COUNT("exec.executes", 1);

  // Compile fresh per call: the physical ops carry this call's per-op
  // measurement atomics, so stats are per-Execute by construction.
  exec::PhysicalOpRef root = exec::Compile(plan);
  exec::ExecContext ctx;
  ctx.db = db_;
  ctx.pool = &exec::ThreadPool::Shared();
  ctx.threads = threads();
  ctx.trace = &trace_;

  Result<Datum> result = [&]() -> Result<Datum> {
    obs::Span root_span(&trace_, "Execute");
    AQUA_RETURN_IF_ERROR(root->Prepare(ctx));
    return root->Run(ctx);
  }();

  stats_.operators_evaluated =
      ctx.operators_evaluated.load(std::memory_order_relaxed);
  stats_.trees_processed = ctx.trees_processed.load(std::memory_order_relaxed);
  stats_.lists_processed = ctx.lists_processed.load(std::memory_order_relaxed);
  stats_.index_probes = ctx.index_probes.load(std::memory_order_relaxed);
  stats_.index_candidates =
      ctx.index_candidates.load(std::memory_order_relaxed);
  CollectOpStats(root);

  // Mirror this execution's ExecStats into the registry before the after
  // snapshot so `last_counters_` carries them alongside the layer counters.
  AQUA_OBS_COUNT("exec.operators_evaluated", stats_.operators_evaluated);
  AQUA_OBS_COUNT("exec.trees_processed", stats_.trees_processed);
  AQUA_OBS_COUNT("exec.lists_processed", stats_.lists_processed);
  last_counters_ = obs::Registry::Global().Snap().DeltaSince(before);
  return result;
}

void Executor::CollectOpStats(const exec::PhysicalOpRef& op) {
  if (op == nullptr || op->plan() == nullptr) return;
  if (op->invocations() > 0) {
    // A plan node shared between two parents compiles to two physical ops;
    // summing reproduces the interpreter's per-node accumulation.
    OperatorStats& os = op_stats_[op->plan()];
    os.invocations += op->invocations();
    os.total_ms += op->total_ms();
    os.last_output_size = op->last_output_size();
  }
  for (const exec::PhysicalOpRef& child : op->children()) {
    CollectOpStats(child);
  }
}

namespace {

void RenderAnalyzed(const PlanRef& node,
                    const std::map<const PlanNode*, OperatorStats>& stats,
                    size_t indent, std::string* out) {
  out->append(indent * 2, ' ');
  if (node == nullptr) {
    *out += "(null)\n";
    return;
  }
  *out += DescribeNode(*node);
  auto it = stats.find(node.get());
  if (it != stats.end()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  (%zu call%s, %.3f ms, out=%zu)",
                  it->second.invocations,
                  it->second.invocations == 1 ? "" : "s",
                  it->second.total_ms, it->second.last_output_size);
    *out += buf;
  } else {
    *out += "  (not executed)";
  }
  *out += "\n";
  for (const PlanRef& child : node->children) {
    RenderAnalyzed(child, stats, indent + 1, out);
  }
}

}  // namespace

std::string Executor::ExplainAnalyze(const PlanRef& plan) const {
  std::string out;
  RenderAnalyzed(plan, op_stats_, 0, &out);
  return out;
}

}  // namespace aqua
