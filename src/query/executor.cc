#include "query/executor.h"

#include <cstdio>

#include "algebra/derived.h"
#include "algebra/list_ops.h"
#include "algebra/tree_ops.h"
#include "bulk/concat.h"

namespace aqua {

namespace {

size_t DatumCardinality(const Datum& d) {
  switch (d.kind()) {
    case Datum::Kind::kSet:
    case Datum::Kind::kTuple:
      return d.size();
    case Datum::Kind::kTree:
      return d.tree().size();
    case Datum::Kind::kList:
      return d.list().size();
    default:
      return 1;
  }
}

}  // namespace

Result<Datum> Executor::Execute(const PlanRef& plan) {
  stats_ = ExecStats{};
  op_stats_.clear();
  trace_.Clear();
  obs::Snapshot before = obs::Registry::Global().Snap();
  AQUA_OBS_COUNT("exec.executes", 1);
  Result<Datum> result = [&]() -> Result<Datum> {
    obs::Span root(&trace_, "Execute");
    return EvalTimed(plan);
  }();
  // Mirror this execution's ExecStats into the registry before the after
  // snapshot so `last_counters_` carries them alongside the layer counters.
  AQUA_OBS_COUNT("exec.operators_evaluated", stats_.operators_evaluated);
  AQUA_OBS_COUNT("exec.trees_processed", stats_.trees_processed);
  AQUA_OBS_COUNT("exec.lists_processed", stats_.lists_processed);
  last_counters_ = obs::Registry::Global().Snap().DeltaSince(before);
  return result;
}

Result<Datum> Executor::EvalTimed(const PlanRef& node) {
  obs::Span span(&trace_,
                 node == nullptr ? "(null)" : PlanOpToString(node->op));
  Result<Datum> result = Eval(node);
  uint64_t ns = span.ElapsedNs();
  AQUA_OBS_RECORD("exec.operator_ns", ns);
  if (node != nullptr) {
    OperatorStats& os = op_stats_[node.get()];
    ++os.invocations;
    os.total_ms += static_cast<double>(ns) / 1e6;
    if (result.ok()) {
      os.last_output_size = DatumCardinality(*result);
      span.AddAttr("out", static_cast<int64_t>(os.last_output_size));
    }
  }
  return result;
}

namespace {

void RenderAnalyzed(const PlanRef& node,
                    const std::map<const PlanNode*, OperatorStats>& stats,
                    size_t indent, std::string* out) {
  out->append(indent * 2, ' ');
  if (node == nullptr) {
    *out += "(null)\n";
    return;
  }
  *out += DescribeNode(*node);
  auto it = stats.find(node.get());
  if (it != stats.end()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  (%zu call%s, %.3f ms, out=%zu)",
                  it->second.invocations,
                  it->second.invocations == 1 ? "" : "s",
                  it->second.total_ms, it->second.last_output_size);
    *out += buf;
  } else {
    *out += "  (not executed)";
  }
  *out += "\n";
  for (const PlanRef& child : node->children) {
    RenderAnalyzed(child, stats, indent + 1, out);
  }
}

}  // namespace

std::string Executor::ExplainAnalyze(const PlanRef& plan) const {
  std::string out;
  RenderAnalyzed(plan, op_stats_, 0, &out);
  return out;
}

Status Executor::ForEachTree(const Datum& input,
                             const std::function<Status(const Tree&)>& fn) {
  if (input.is_tree()) {
    ++stats_.trees_processed;
    return fn(input.tree());
  }
  if (input.is_set()) {
    for (const Datum& d : input.children()) {
      if (!d.is_tree()) {
        return Status::TypeError(
            "tree operator over a set containing a non-tree");
      }
      ++stats_.trees_processed;
      AQUA_RETURN_IF_ERROR(fn(d.tree()));
    }
    return Status::OK();
  }
  return Status::TypeError("tree operator applied to a non-tree datum");
}

Status Executor::ForEachList(const Datum& input,
                             const std::function<Status(const List&)>& fn) {
  if (input.is_list()) {
    ++stats_.lists_processed;
    return fn(input.list());
  }
  if (input.is_set()) {
    for (const Datum& d : input.children()) {
      if (!d.is_list()) {
        return Status::TypeError(
            "list operator over a set containing a non-list");
      }
      ++stats_.lists_processed;
      AQUA_RETURN_IF_ERROR(fn(d.list()));
    }
    return Status::OK();
  }
  return Status::TypeError("list operator applied to a non-list datum");
}

Result<Datum> Executor::Eval(const PlanRef& node) {
  if (node == nullptr) return Status::InvalidArgument("null plan node");
  ++stats_.operators_evaluated;
  const ObjectStore& store = db_->store();

  auto eval_child = [&](size_t i) -> Result<Datum> {
    if (i >= node->children.size()) {
      return Status::Internal("plan node missing input " + std::to_string(i));
    }
    return EvalTimed(node->children[i]);
  };

  switch (node->op) {
    case PlanOp::kEmptySet:
      return Datum::Set({});
    case PlanOp::kEmptyList:
      return Datum::Of(List());
    case PlanOp::kScanTree: {
      AQUA_ASSIGN_OR_RETURN(const Tree* tree, db_->GetTree(node->collection));
      return Datum::Of(*tree);
    }
    case PlanOp::kScanList: {
      AQUA_ASSIGN_OR_RETURN(const List* list, db_->GetList(node->collection));
      return Datum::Of(*list);
    }
    case PlanOp::kTreeSelect: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      Datum out = Datum::Set({});
      AQUA_RETURN_IF_ERROR(ForEachTree(input, [&](const Tree& t) -> Status {
        auto forest = TreeSelect(store, t, node->pred);
        AQUA_RETURN_IF_ERROR(forest.status());
        for (Tree& piece : *forest) out.SetInsert(Datum::Of(std::move(piece)));
        return Status::OK();
      }));
      return out;
    }
    case PlanOp::kTreeApply: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      if (input.is_tree()) {
        ++stats_.trees_processed;
        AQUA_ASSIGN_OR_RETURN(
            Tree mapped, TreeApply(db_->store(), input.tree(), node->node_fn));
        return Datum::Of(std::move(mapped));
      }
      if (input.is_set()) {
        Datum out = Datum::Set({});
        for (const Datum& d : input.children()) {
          if (!d.is_tree()) {
            return Status::TypeError("apply over a set containing a non-tree");
          }
          ++stats_.trees_processed;
          AQUA_ASSIGN_OR_RETURN(
              Tree mapped, TreeApply(db_->store(), d.tree(), node->node_fn));
          out.SetInsert(Datum::Of(std::move(mapped)));
        }
        return out;
      }
      return Status::TypeError("apply over a non-tree datum");
    }
    case PlanOp::kTreeSubSelect: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      Datum out = Datum::Set({});
      AQUA_RETURN_IF_ERROR(ForEachTree(input, [&](const Tree& t) -> Status {
        auto sub = TreeSubSelect(store, t, node->tpattern, node->split_opts);
        AQUA_RETURN_IF_ERROR(sub.status());
        for (const Datum& d : sub->children()) out.SetInsert(d);
        return Status::OK();
      }));
      return out;
    }
    case PlanOp::kTreeSplit: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      Datum out = Datum::Set({});
      AQUA_RETURN_IF_ERROR(ForEachTree(input, [&](const Tree& t) -> Status {
        auto res = TreeSplit(store, t, node->tpattern, node->split_fn,
                             node->split_opts);
        AQUA_RETURN_IF_ERROR(res.status());
        for (const Datum& d : res->children()) out.SetInsert(d);
        return Status::OK();
      }));
      return out;
    }
    case PlanOp::kTreeAllAnc: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      Datum out = Datum::Set({});
      AQUA_RETURN_IF_ERROR(ForEachTree(input, [&](const Tree& t) -> Status {
        auto res =
            TreeAllAnc(store, t, node->tpattern, node->anc_fn,
                       node->split_opts);
        AQUA_RETURN_IF_ERROR(res.status());
        for (const Datum& d : res->children()) out.SetInsert(d);
        return Status::OK();
      }));
      return out;
    }
    case PlanOp::kTreeAllDesc: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      Datum out = Datum::Set({});
      AQUA_RETURN_IF_ERROR(ForEachTree(input, [&](const Tree& t) -> Status {
        auto res = TreeAllDesc(store, t, node->tpattern, node->desc_fn,
                               node->split_opts);
        AQUA_RETURN_IF_ERROR(res.status());
        for (const Datum& d : res->children()) out.SetInsert(d);
        return Status::OK();
      }));
      return out;
    }
    case PlanOp::kIndexedSubSelect: {
      AQUA_ASSIGN_OR_RETURN(const Tree* tree, db_->GetTree(node->collection));
      AQUA_ASSIGN_OR_RETURN(const AttributeIndex* index,
                            db_->indexes().Get(node->collection, node->attr));
      ++stats_.index_probes;
      AQUA_ASSIGN_OR_RETURN(std::vector<NodeId> candidates,
                            index->Probe(*node->anchor));
      stats_.index_candidates += candidates.size();
      TreeMatcher matcher(store, *tree, node->split_opts.match);
      AQUA_ASSIGN_OR_RETURN(std::vector<TreeMatch> matches,
                            matcher.FindAllAtRoots(node->tpattern, candidates));
      Datum out = Datum::Set({});
      for (const TreeMatch& m : matches) {
        AQUA_ASSIGN_OR_RETURN(Tree y,
                              MakeMatchPiece(*tree, m, node->split_opts));
        out.SetInsert(Datum::Of(CloseAllPoints(y)));
      }
      return out;
    }
    case PlanOp::kIndexedListSubSelect: {
      AQUA_ASSIGN_OR_RETURN(const List* list, db_->GetList(node->collection));
      AQUA_ASSIGN_OR_RETURN(const AttributeIndex* index,
                            db_->indexes().Get(node->collection, node->attr));
      ++stats_.index_probes;
      AQUA_ASSIGN_OR_RETURN(std::vector<NodeId> candidates,
                            index->Probe(*node->anchor));
      stats_.index_candidates += candidates.size();
      return ListSubSelectIndexed(store, *list, node->lpattern, *index,
                                  node->lsplit_opts);
    }
    case PlanOp::kListSelect: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      Datum out = Datum::Set({});
      bool single = input.is_list();
      List single_result;
      AQUA_RETURN_IF_ERROR(ForEachList(input, [&](const List& l) -> Status {
        auto filtered = ListSelect(store, l, node->pred);
        AQUA_RETURN_IF_ERROR(filtered.status());
        if (single) {
          single_result = std::move(*filtered);
        } else {
          out.SetInsert(Datum::Of(std::move(*filtered)));
        }
        return Status::OK();
      }));
      if (single) return Datum::Of(std::move(single_result));
      return out;
    }
    case PlanOp::kListApply: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      if (input.is_list()) {
        ++stats_.lists_processed;
        AQUA_ASSIGN_OR_RETURN(
            List mapped,
            ListApply(db_->store(), input.list(), node->lnode_fn));
        return Datum::Of(std::move(mapped));
      }
      if (input.is_set()) {
        Datum out = Datum::Set({});
        for (const Datum& d : input.children()) {
          if (!d.is_list()) {
            return Status::TypeError("apply over a set containing a non-list");
          }
          ++stats_.lists_processed;
          AQUA_ASSIGN_OR_RETURN(
              List mapped, ListApply(db_->store(), d.list(), node->lnode_fn));
          out.SetInsert(Datum::Of(std::move(mapped)));
        }
        return out;
      }
      return Status::TypeError("apply over a non-list datum");
    }
    case PlanOp::kListSubSelect: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      Datum out = Datum::Set({});
      AQUA_RETURN_IF_ERROR(ForEachList(input, [&](const List& l) -> Status {
        auto sub = ListSubSelect(store, l, node->lpattern, node->lsplit_opts);
        AQUA_RETURN_IF_ERROR(sub.status());
        for (const Datum& d : sub->children()) out.SetInsert(d);
        return Status::OK();
      }));
      return out;
    }
    case PlanOp::kListSplit: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      Datum out = Datum::Set({});
      AQUA_RETURN_IF_ERROR(ForEachList(input, [&](const List& l) -> Status {
        auto res = ListSplit(store, l, node->lpattern, node->lsplit_fn,
                             node->lsplit_opts);
        AQUA_RETURN_IF_ERROR(res.status());
        for (const Datum& d : res->children()) out.SetInsert(d);
        return Status::OK();
      }));
      return out;
    }
    case PlanOp::kListAllAnc: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      Datum out = Datum::Set({});
      AQUA_RETURN_IF_ERROR(ForEachList(input, [&](const List& l) -> Status {
        auto res = ListAllAnc(store, l, node->lpattern, node->lanc_fn,
                              node->lsplit_opts);
        AQUA_RETURN_IF_ERROR(res.status());
        for (const Datum& d : res->children()) out.SetInsert(d);
        return Status::OK();
      }));
      return out;
    }
    case PlanOp::kListAllDesc: {
      AQUA_ASSIGN_OR_RETURN(Datum input, eval_child(0));
      Datum out = Datum::Set({});
      AQUA_RETURN_IF_ERROR(ForEachList(input, [&](const List& l) -> Status {
        auto res = ListAllDesc(store, l, node->lpattern, node->ldesc_fn,
                               node->lsplit_opts);
        AQUA_RETURN_IF_ERROR(res.status());
        for (const Datum& d : res->children()) out.SetInsert(d);
        return Status::OK();
      }));
      return out;
    }
  }
  return Status::Internal("unreachable in Executor::Eval");
}

}  // namespace aqua
