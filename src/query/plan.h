#ifndef AQUA_QUERY_PLAN_H_
#define AQUA_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/fn_expr.h"
#include "algebra/list_ops.h"
#include "algebra/tree_ops.h"
#include "pattern/list_pattern.h"
#include "pattern/predicate.h"
#include "pattern/tree_pattern.h"

namespace aqua {

struct PlanNode;
using PlanRef = std::shared_ptr<const PlanNode>;

/// Logical / physical operators of the query IR.
///
/// The IR is deliberately small: it contains the paper's algebra operators
/// plus the physical `kIndexedSubSelect` that the §4 split-anchor rewrite
/// introduces. Data flows as `Datum`s; operators over ordered types accept
/// either one collection or a set of collections (the forest outputs of
/// `select`) and map over the set.
enum class PlanOp {
  kScanTree,         ///< leaf: a named tree collection
  kScanList,         ///< leaf: a named list collection
  kTreeSelect,       ///< order-preserving select (forest result)
  kTreeApply,        ///< isomorphic map
  kTreeSubSelect,    ///< matching subgraphs
  kTreeSplit,        ///< the primitive: f over (x, y, z)
  kTreeAllAnc,       ///< f over (ancestors, match)
  kTreeAllDesc,      ///< f over (match, descendants)
  kIndexedSubSelect, ///< physical: sub_select probing an attribute index
  kIndexedListSubSelect,  ///< physical: list sub_select via head-anchor probe
  kListSelect,
  kListApply,
  kListSubSelect,
  kListSplit,
  kListAllAnc,
  kListAllDesc,
  kEmptySet,   ///< leaf: the constant empty set (lint-proven-empty folds)
  kEmptyList,  ///< leaf: the constant empty list
};

const char* PlanOpToString(PlanOp op);

/// One node of a query plan. Unused parameter fields are empty; `Explain`
/// prints only what an operator uses.
struct PlanNode {
  PlanOp op;
  std::vector<PlanRef> children;

  // Parameters (by operator).
  std::string collection;           // scans; indexed ops remember their scan
  std::string attr;                 // kIndexedSubSelect: indexed attribute
  PredicateRef pred;                // selects
  PredicateRef anchor;              // kIndexedSubSelect: probe predicate
  TreePatternRef tpattern;          // tree pattern ops
  AnchoredListPattern lpattern;     // list pattern ops
  SplitOptions split_opts;          // tree pattern ops
  ListSplitOptions lsplit_opts;     // list pattern ops
  SplitFn split_fn;
  AncFn anc_fn;
  DescFn desc_fn;
  NodeFn node_fn;
  ListSplitFn lsplit_fn;
  ListAncFn lanc_fn;
  ListDescFn ldesc_fn;
  ListNodeFn lnode_fn;
  /// Structured form of `node_fn` / `lnode_fn` when the apply was built
  /// through `Q::TreeApplyExpr` / `Q::ListApplyExpr`. Null for a bare
  /// `std::function`, which lint classifies as opaque (serial execution).
  /// When present, `node_fn`/`lnode_fn` is the materialization of this
  /// expression — the executor only ever runs the function field.
  FnExprRef fn_expr;
};

/// Renders one node as a single line: operator name plus its parameters,
/// e.g. `TreeSubSelect [pattern=...]`.
std::string DescribeNode(const PlanNode& node);

/// Renders the plan as an indented operator tree, e.g.
///
///   TreeSubSelect [pattern={citizen == "Brazil"}(!?* ...)]
///     ScanTree [family]
std::string Explain(const PlanRef& plan);

/// Structural plan equality over operators and parameters (functions are
/// compared by presence only).
bool PlanEquals(const PlanRef& a, const PlanRef& b);

}  // namespace aqua

#endif  // AQUA_QUERY_PLAN_H_
