#include "query/plan.h"

namespace aqua {

const char* PlanOpToString(PlanOp op) {
  switch (op) {
    case PlanOp::kScanTree:
      return "ScanTree";
    case PlanOp::kScanList:
      return "ScanList";
    case PlanOp::kTreeSelect:
      return "TreeSelect";
    case PlanOp::kTreeApply:
      return "TreeApply";
    case PlanOp::kTreeSubSelect:
      return "TreeSubSelect";
    case PlanOp::kTreeSplit:
      return "TreeSplit";
    case PlanOp::kTreeAllAnc:
      return "TreeAllAnc";
    case PlanOp::kTreeAllDesc:
      return "TreeAllDesc";
    case PlanOp::kIndexedSubSelect:
      return "IndexedSubSelect";
    case PlanOp::kIndexedListSubSelect:
      return "IndexedListSubSelect";
    case PlanOp::kListSelect:
      return "ListSelect";
    case PlanOp::kListApply:
      return "ListApply";
    case PlanOp::kListSubSelect:
      return "ListSubSelect";
    case PlanOp::kListSplit:
      return "ListSplit";
    case PlanOp::kListAllAnc:
      return "ListAllAnc";
    case PlanOp::kListAllDesc:
      return "ListAllDesc";
    case PlanOp::kEmptySet:
      return "EmptySet";
    case PlanOp::kEmptyList:
      return "EmptyList";
  }
  return "?";
}

std::string DescribeNode(const PlanNode& node) {
  std::string out = PlanOpToString(node.op);
  std::vector<std::string> params;
  if (!node.collection.empty()) params.push_back(node.collection);
  if (!node.attr.empty()) params.push_back("index=" + node.attr);
  if (node.pred != nullptr) {
    params.push_back("pred={" + node.pred->ToString() + "}");
  }
  if (node.anchor != nullptr) {
    params.push_back("anchor={" + node.anchor->ToString() + "}");
  }
  if (node.tpattern != nullptr) {
    params.push_back("pattern=" + node.tpattern->ToString());
  }
  if (node.lpattern.body != nullptr) {
    params.push_back("pattern=" + node.lpattern.ToString());
  }
  if (node.fn_expr != nullptr) {
    params.push_back("fn=" + node.fn_expr->ToString());
  }
  if (!params.empty()) {
    out += " [";
    for (size_t i = 0; i < params.size(); ++i) {
      if (i > 0) out += ", ";
      out += params[i];
    }
    out += "]";
  }
  return out;
}

namespace {

void ExplainNode(const PlanRef& node, size_t indent, std::string* out) {
  out->append(indent * 2, ' ');
  if (node == nullptr) {
    *out += "(null)\n";
    return;
  }
  *out += DescribeNode(*node);
  *out += "\n";
  for (const PlanRef& child : node->children) {
    ExplainNode(child, indent + 1, out);
  }
}

}  // namespace

std::string Explain(const PlanRef& plan) {
  std::string out;
  ExplainNode(plan, 0, &out);
  return out;
}

bool PlanEquals(const PlanRef& a, const PlanRef& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->op != b->op || a->collection != b->collection || a->attr != b->attr) {
    return false;
  }
  auto pred_eq = [](const PredicateRef& x, const PredicateRef& y) {
    if ((x == nullptr) != (y == nullptr)) return false;
    return x == nullptr || x->ToString() == y->ToString();
  };
  if (!pred_eq(a->pred, b->pred) || !pred_eq(a->anchor, b->anchor)) {
    return false;
  }
  if ((a->tpattern == nullptr) != (b->tpattern == nullptr)) return false;
  if (a->tpattern != nullptr &&
      a->tpattern->ToString() != b->tpattern->ToString()) {
    return false;
  }
  if ((a->lpattern.body == nullptr) != (b->lpattern.body == nullptr)) {
    return false;
  }
  if (a->lpattern.body != nullptr &&
      a->lpattern.ToString() != b->lpattern.ToString()) {
    return false;
  }
  if ((a->fn_expr == nullptr) != (b->fn_expr == nullptr)) return false;
  if (a->fn_expr != nullptr &&
      a->fn_expr->ToString() != b->fn_expr->ToString()) {
    return false;
  }
  if (a->children.size() != b->children.size()) return false;
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!PlanEquals(a->children[i], b->children[i])) return false;
  }
  return true;
}

}  // namespace aqua
