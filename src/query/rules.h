#ifndef AQUA_QUERY_RULES_H_
#define AQUA_QUERY_RULES_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "query/database.h"
#include "query/plan.h"

namespace aqua {

/// One algebraic rewrite rule. `Apply` returns the rewritten node, or
/// nullptr (wrapped in an OK result) when the rule does not match; the
/// rewriter keeps a rewrite only when the cost model agrees it is cheaper.
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;
  virtual std::string name() const = 0;
  virtual Result<PlanRef> Apply(const PlanRef& node,
                                const Database& db) const = 0;
};

/// §4 "Why Split?": `sub_select(tp)(scan T)` becomes an index-anchored
/// sub_select when some conjunct of the pattern's root predicate is
/// answerable by an existing index on the scanned collection. The full
/// pattern still verifies every candidate, so any indexable conjunct is a
/// sound anchor (predicate decomposition).
std::unique_ptr<RewriteRule> MakeSplitAnchorRule();

/// The §5 example rule at the plan level:
/// `select(and(p1, p2))` ≡ `select(p2)(select(p1))` (select cascade).
std::unique_ptr<RewriteRule> MakeSelectCascadeRule();

/// Re-orders a cascade so the cheaper (smaller) predicate runs first.
std::unique_ptr<RewriteRule> MakeCheapPredicateFirstRule();

/// The list analogue of the split-anchor rule: `sub_select(lp)(scan L)`
/// probes an index for candidate match starts when the pattern begins with
/// a mandatory indexable predicate (its head).
std::unique_ptr<RewriteRule> MakeListAnchorRule();

/// `apply(f)(apply(g)(X))` ≡ `apply(f ∘ g)(X)` — fuses consecutive maps so
/// only one isomorphic copy is materialized (for both trees and lists).
std::unique_ptr<RewriteRule> MakeApplyFusionRule();

/// Normalizes the pattern parameter of pattern operators (see
/// `pattern/simplify.h`): collapsed closures and deduplicated disjunctions
/// shrink the matcher's backtracking and the cost estimate.
std::unique_ptr<RewriteRule> MakePatternSimplifyRule();

/// Folds operators the lint pass proves empty (unsatisfiable select
/// predicates, empty pattern languages) to the constant `EmptySet` /
/// `EmptyList` plans, skipping their whole input subtree.
std::unique_ptr<RewriteRule> MakeEmptyFoldRule();

/// Finds, within `pred` (descending through conjunctions), a comparison
/// that an index on (`collection`, its attribute) can answer. Returns
/// NotFound when none qualifies.
Result<PredicateRef> FindIndexableConjunct(const Database& db,
                                           const std::string& collection,
                                           const PredicateRef& pred);

}  // namespace aqua

#endif  // AQUA_QUERY_RULES_H_
